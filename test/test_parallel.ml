(* Domain-parallel trial engine suite.

   The contract under test: [Plan.run_trials_par] produces byte-identical
   results to the sequential [Plan.run_trials] fold for ANY job count —
   trial RNGs are pre-split sequentially from the master and results are
   merged in trial order, so parallelism never shows in the output.  The
   suite pins that identity across every failure-model constructor, checks
   Obs counter totals are exact under domains, and exercises the Exec
   pool's coverage / shutdown / exception behaviour.

   The "satellites" section holds the regression tests for the latent-bug
   sweep that rode along with the engine: weighted_choice's trailing
   zero-weight fallthrough, Stats.cdf's sorted binary search, the dead
   [?seed] dropped from Recovery.plan, and Mitigation's greedy
   augmentation after the dead-binding cleanup. *)

open Stormsim

let network = lazy (Datasets.Cache.submarine ())

(* Polynomial hash over the dead flags: order-sensitive, so it pins the
   exact per-cable outcome of every trial, not just the count. *)
let hash_dead dead =
  Array.fold_left
    (fun acc d -> Int64.add (Int64.mul acc 1000003L) (if d then 1L else 0L))
    0L
    (Deadset.to_bool_array dead)

let models =
  [
    ("uniform-0.01", Failure_model.uniform 0.01);
    ("s1", Failure_model.s1);
    ("s2", Failure_model.s2);
    ("s1-geomag", Failure_model.s1_geomag);
    ( "geomag-tiered-custom",
      Failure_model.Geomag_tiered
        { high = 0.5; mid = 0.05; low = 0.005;
          mid_threshold = 40.0; high_threshold = 60.0 } );
    ("carrington-physical", Failure_model.carrington_physical);
  ]

(* --- run_trials_par ≡ run_trials, per model, per job count --- *)

let test_par_identity (mname, model) () =
  let network = Lazy.force network in
  let plan = Plan.compile ~network ~model () in
  let trials = 7 and seed = 99 in
  let seq =
    List.rev
      (Plan.run_trials plan ~trials ~seed ~init:[] ~f:(fun acc ~rng:_ ~dead ->
           hash_dead dead :: acc))
  in
  List.iter
    (fun jobs ->
      let par =
        List.rev
          (Plan.run_trials_par ~jobs plan ~trials ~seed ~init:[]
             ~map:(fun ~rng:_ ~dead -> hash_dead dead)
             ~merge:(fun acc h -> h :: acc))
      in
      Alcotest.(check (list int64))
        (Printf.sprintf "%s: jobs=%d dead arrays" mname jobs)
        seq par)
    [ 1; 2; 4 ];
  (* The full float path — per-trial percentages, mean, stddev — must
     also come out bit-equal: the ordered merge preserves accumulation
     order, so not even FP rounding may differ across job counts. *)
  let s1 = Montecarlo.run_plan ~trials ~jobs:1 ~seed plan in
  List.iter
    (fun jobs ->
      let sj = Montecarlo.run_plan ~trials ~jobs ~seed plan in
      Alcotest.(check bool)
        (Printf.sprintf "%s: series jobs=%d = jobs=1" mname jobs)
        true (sj = s1))
    [ 2; 4 ]

(* --- Obs counters are exact (not approximate) under domains --- *)

let counter_value snap name =
  match List.assoc_opt name snap with
  | Some (Obs.Metrics.Counter n) -> n
  | _ -> Alcotest.failf "counter %s missing from snapshot" name

let test_obs_counters_parallel () =
  let network = Lazy.force network in
  let plan = Plan.compile ~network ~model:Failure_model.s1 () in
  let totals jobs =
    Obs.Metrics.reset ();
    ignore (Montecarlo.run_plan ~trials:8 ~jobs ~seed:3 plan);
    let snap = Obs.Metrics.snapshot () in
    (counter_value snap "rng.draws", counter_value snap "plan.trials")
  in
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.reset ();
      Obs.disable ())
    (fun () ->
      let draws1, trials1 = totals 1 in
      let draws4, trials4 = totals 4 in
      Alcotest.(check int) "plan.trials counts the trials" 8 trials1;
      Alcotest.(check int) "plan.trials identical at 4 jobs" trials1 trials4;
      Alcotest.(check bool) "rng.draws saw the sampling" true (draws1 > 0);
      Alcotest.(check int) "rng.draws identical at 4 jobs" draws1 draws4)

(* --- Exec pool: coverage, validation, shutdown --- *)

let test_parallel_for_covers () =
  List.iter
    (fun (jobs, n, chunk) ->
      let hits = Array.make (Int.max n 1) 0 in
      Exec.parallel_for ?chunk ~jobs ~n (fun ~lo ~hi ->
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done);
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d n=%d: every index exactly once" jobs n)
        true
        (Array.for_all (fun h -> h = if n = 0 then 0 else 1)
           (Array.sub hits 0 (Int.max n 1))))
    [ (1, 0, None); (1, 17, None); (2, 1, None); (3, 10, Some 1);
      (4, 1000, None); (4, 5, Some 100); (8, 64, Some 3) ]

let test_exec_validation () =
  let nop ~lo:_ ~hi:_ = () in
  Alcotest.check_raises "jobs <= 0"
    (Invalid_argument "Exec.parallel_for: jobs <= 0")
    (fun () -> Exec.parallel_for ~jobs:0 ~n:1 nop);
  Alcotest.check_raises "n < 0"
    (Invalid_argument "Exec.parallel_for: n < 0")
    (fun () -> Exec.parallel_for ~jobs:1 ~n:(-1) nop);
  Alcotest.check_raises "chunk <= 0"
    (Invalid_argument "Exec.parallel_for: chunk <= 0")
    (fun () -> Exec.parallel_for ~chunk:0 ~jobs:2 ~n:4 nop);
  Alcotest.check_raises "set_default_jobs <= 0"
    (Invalid_argument "Exec.set_default_jobs: jobs <= 0")
    (fun () -> Exec.set_default_jobs 0);
  let network = Lazy.force network in
  let plan = Plan.compile ~network ~model:Failure_model.s1 () in
  let run ~jobs ~trials =
    ignore
      (Plan.run_trials_par ~jobs plan ~trials ~seed:1 ~init:0
         ~map:(fun ~rng:_ ~dead:_ -> 1)
         ~merge:( + ))
  in
  Alcotest.check_raises "run_trials_par: trials <= 0"
    (Invalid_argument "Plan.run_trials_par: trials <= 0")
    (fun () -> run ~jobs:2 ~trials:0);
  Alcotest.check_raises "run_trials_par: jobs <= 0"
    (Invalid_argument "Plan.run_trials_par: jobs <= 0")
    (fun () -> run ~jobs:0 ~trials:2)

exception Boom

let test_exception_shutdown () =
  (* A pooled worker raising must reach the caller, and the pool must
     stay usable afterwards — workers survive the exception, only the
     job dies. *)
  Alcotest.check_raises "worker exception propagates" Boom (fun () ->
      Exec.parallel_for ~jobs:4 ~n:64 ~chunk:1 (fun ~lo ~hi:_ ->
          if lo >= 32 then raise Boom));
  (* Hundreds of further calls reuse the same workers without
     exhausting the runtime's live-domain limit. *)
  for _ = 1 to 100 do
    Exec.parallel_for ~jobs:4 ~n:8 (fun ~lo:_ ~hi:_ -> ())
  done;
  let network = Lazy.force network in
  let plan = Plan.compile ~network ~model:Failure_model.s2 () in
  let count =
    Plan.run_trials_par ~jobs:4 plan ~trials:16 ~seed:2 ~init:0
      ~map:(fun ~rng:_ ~dead:_ -> 1)
      ~merge:( + )
  in
  Alcotest.(check int) "engine still works after the storm" 16 count

let test_pool_reuse () =
  (* The pool is persistent: once the first multi-job call has spawned
     its workers, further calls at the same width reuse them — the
     domain count must not grow with the number of calls. *)
  Exec.parallel_for ~jobs:4 ~n:32 (fun ~lo:_ ~hi:_ -> ());
  let after_first = Exec.pool_size () in
  (* Other suites may have widened the pool already; the cap is what's
     guaranteed, reuse is what's under test. *)
  Alcotest.(check bool) "pool spawned and bounded" true
    (after_first >= 1 && after_first <= 30);
  for _ = 1 to 5 do
    Exec.parallel_for ~jobs:4 ~n:32 (fun ~lo:_ ~hi:_ -> ())
  done;
  Alcotest.(check int) "same workers across calls" after_first (Exec.pool_size ())

let test_nested_parallel_for () =
  (* A body may itself call parallel_for: the caller of the inner loop
     participates in its own job, so nesting cannot deadlock even when
     every pooled worker is busy with the outer loop. *)
  let outer = 4 and inner = 16 in
  let hits = Array.init outer (fun _ -> Array.make inner 0) in
  Exec.parallel_for ~jobs:4 ~n:outer ~chunk:1 (fun ~lo ~hi ->
      for o = lo to hi - 1 do
        Exec.parallel_for ~jobs:2 ~n:inner (fun ~lo ~hi ->
            for i = lo to hi - 1 do
              hits.(o).(i) <- hits.(o).(i) + 1
            done)
      done);
  Alcotest.(check bool) "every inner index exactly once" true
    (Array.for_all (Array.for_all (fun h -> h = 1)) hits)

let test_default_jobs_override () =
  Exec.set_default_jobs 3;
  Alcotest.(check int) "override wins" 3 (Exec.default_jobs ());
  Exec.set_default_jobs 1;
  Alcotest.(check int) "override back to sequential" 1 (Exec.default_jobs ())

(* --- satellites: the latent-bug sweep --- *)

let test_weighted_choice_trailing_zero () =
  (* The scan used to fall through to the LAST entry on FP shortfall,
     zero-weight or not; it must now stop at the last positive weight. *)
  let rng = Rng.create 11 in
  for _ = 1 to 500 do
    Alcotest.(check string) "zero-weight tail never selected" "a"
      (Rng.weighted_choice rng [| ("a", 1.0); ("b", 0.0) |])
  done;
  for _ = 1 to 200 do
    let pick =
      Rng.weighted_choice rng
        [| ("z", 0.0); ("a", 1.0); ("m", 0.0); ("b", 1.0); ("t", 0.0) |]
    in
    Alcotest.(check bool) "only positive-weight entries" true
      (pick = "a" || pick = "b")
  done

let test_cdf_binary_search () =
  let samples = [ 5.0; 1.0; 3.0; 3.0; 2.0; 8.0 ] in
  let n = float_of_int (List.length samples) in
  let naive x =
    float_of_int (List.length (List.filter (fun v -> v <= x) samples)) /. n
  in
  let f = Stats.cdf samples in
  List.iter
    (fun x ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "cdf agrees with the O(n) filter at %g" x)
        (naive x) (f x);
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "cdf_at agrees at %g" x)
        (naive x)
        (Stats.cdf_at samples x))
    [ -1.0; 1.0; 1.5; 2.0; 3.0; 4.5; 5.0; 8.0; 9.0 ];
  Alcotest.(check (float 1e-12)) "empty sample" 0.0 (Stats.cdf_at [] 3.0)

let test_recovery_plan_deterministic () =
  (* Recovery.plan carried a [?seed] it silently ignored; now that the
     signature is honest, pin the behaviour the parameter lied about:
     the plan is a pure function of the network and the dead set. *)
  let network = Lazy.force network in
  let dead =
    Array.init (Infra.Network.nb_cables network) (fun i -> i mod 4 = 0)
  in
  let a = Recovery.plan ~network ~dead () in
  let b = Recovery.plan ~network ~dead () in
  Alcotest.(check bool) "pure function of inputs" true (a = b);
  Alcotest.(check bool) "repairs take time" true (a.Recovery.days_to_90_pct > 0.0)

let test_augmentation_greedy () =
  let network = Lazy.force network in
  let a = Mitigation.plan_augmentation ~budget:2 ~network () in
  let b = Mitigation.plan_augmentation ~budget:2 ~network () in
  Alcotest.(check bool) "deterministic" true (a = b);
  Alcotest.(check bool) "within budget" true (List.length a <= 2);
  List.iter
    (fun (g : Mitigation.augmentation) ->
      Alcotest.(check bool) "every pick gains" true (g.Mitigation.gain > 0.0))
    a;
  Alcotest.(check int) "budget 0 plans nothing" 0
    (List.length (Mitigation.plan_augmentation ~budget:0 ~network ()))

let () =
  let per_model mk =
    List.map (fun (name, _ as m) -> Alcotest.test_case name `Quick (mk m)) models
  in
  Alcotest.run "parallel"
    [
      ("par = seq identity", per_model test_par_identity);
      ( "obs under domains",
        [ Alcotest.test_case "counter totals exact" `Quick test_obs_counters_parallel ] );
      ( "exec pool",
        [ Alcotest.test_case "coverage" `Quick test_parallel_for_covers;
          Alcotest.test_case "validation" `Quick test_exec_validation;
          Alcotest.test_case "exception shutdown" `Quick test_exception_shutdown;
          Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
          Alcotest.test_case "nested parallel_for" `Quick test_nested_parallel_for;
          Alcotest.test_case "default jobs override" `Quick test_default_jobs_override ] );
      ( "satellites",
        [ Alcotest.test_case "weighted_choice trailing zero" `Quick
            test_weighted_choice_trailing_zero;
          Alcotest.test_case "cdf binary search" `Quick test_cdf_binary_search;
          Alcotest.test_case "recovery plan deterministic" `Quick
            test_recovery_plan_deterministic;
          Alcotest.test_case "augmentation greedy" `Quick test_augmentation_greedy ] );
    ]
