(* Tests for Stormsim — the paper's failure models, Monte-Carlo engine,
   figure experiments, country case studies, systems analysis, scenarios
   and mitigation planning. *)

open Stormsim

let check_close eps = Alcotest.(check (float eps))

let submarine = lazy (Datasets.Submarine.build ())
let intertubes = lazy (Datasets.Intertubes.build ())
let itu_small = lazy (Datasets.Itu.build ~scale:0.1 ())

(* --- Stats --- *)

let test_stats_mean_stddev () =
  check_close 1e-9 "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_close 1e-9 "empty mean" 0.0 (Stats.mean []);
  check_close 1e-9 "constant stddev" 0.0 (Stats.stddev [ 5.0; 5.0; 5.0 ]);
  check_close 1e-6 "known stddev" (sqrt (2.0 /. 3.0)) (Stats.stddev [ 1.0; 2.0; 3.0 ])

let test_stats_percentile () =
  let l = [ 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0; 8.0; 9.0; 10.0 ] in
  check_close 1e-9 "median" 5.0 (Stats.percentile l ~p:50.0);
  check_close 1e-9 "p100" 10.0 (Stats.percentile l ~p:100.0);
  check_close 1e-9 "p0 lowest" 1.0 (Stats.percentile l ~p:0.0);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty list")
    (fun () -> ignore (Stats.percentile [] ~p:50.0))

let test_stats_cdf () =
  let points = Stats.cdf_points [ 3.0; 1.0; 2.0 ] in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9)))) "steps"
    [ (1.0, 1.0 /. 3.0); (2.0, 2.0 /. 3.0); (3.0, 1.0) ]
    points;
  check_close 1e-9 "cdf_at" (2.0 /. 3.0) (Stats.cdf_at [ 3.0; 1.0; 2.0 ] 2.5)

let test_stats_histogram () =
  let h = Stats.histogram [ 0.5; 1.5; 9.5; 42.0 ] ~lo:0.0 ~hi:10.0 ~bins:10 in
  Alcotest.(check int) "bin 0" 1 h.(0);
  Alcotest.(check int) "bin 1" 1 h.(1);
  Alcotest.(check int) "out-of-range clamps" 2 h.(9)

(* --- Failure model --- *)

let test_uniform_validation () =
  Alcotest.check_raises "p > 1" (Invalid_argument "Failure_model: probability outside [0, 1]")
    (fun () -> ignore (Failure_model.uniform 1.5))

let test_s1_s2_values () =
  let net = Lazy.force submarine in
  let p1 = Failure_model.compile Failure_model.s1 ~network:net in
  let p2 = Failure_model.compile Failure_model.s2 ~network:net in
  (* A low-tier cable (Singapore-Jakarta region). *)
  let find name =
    let rec scan i =
      if i >= Infra.Network.nb_cables net then Alcotest.fail (name ^ " not found")
      else
        let c = Infra.Network.cable net i in
        if c.Infra.Cable.name = name then c else scan (i + 1)
    in
    scan 0
  in
  let matrix = find "Matrix" in
  check_close 1e-9 "S1 low tier" 0.01 (p1 matrix);
  check_close 1e-9 "S2 low tier" 0.001 (p2 matrix);
  let tat14 = find "TAT-14" in
  check_close 1e-9 "S1 mid tier" 0.1 (p1 tat14);
  let alaska = find "Alaska United East" in
  check_close 1e-9 "S1 high tier (Anchorage 61N)" 1.0 (p1 alaska)

let test_cable_death_prob_formula () =
  let cable =
    Infra.Cable.make ~id:0 ~name:"t" ~kind:Infra.Cable.Submarine
      ~landings:[ (0, Geo.Coord.make ~lat:0.0 ~lon:0.0); (1, Geo.Coord.make ~lat:0.0 ~lon:10.0) ]
      ~length_km:1500.0 ()
  in
  (* 1500 km at 150 km -> 9 repeaters. *)
  check_close 1e-9 "formula" (1.0 -. (0.9 ** 9.0))
    (Failure_model.cable_death_prob ~per_repeater:0.1 ~spacing_km:150.0 cable);
  check_close 1e-9 "p=0 never dies" 0.0
    (Failure_model.cable_death_prob ~per_repeater:0.0 ~spacing_km:150.0 cable);
  check_close 1e-9 "p=1 always dies" 1.0
    (Failure_model.cable_death_prob ~per_repeater:1.0 ~spacing_km:150.0 cable)

let test_unrepeatered_cable_immortal () =
  let cable =
    Infra.Cable.make ~id:0 ~name:"short" ~kind:Infra.Cable.Submarine
      ~landings:[ (0, Geo.Coord.make ~lat:0.0 ~lon:0.0); (1, Geo.Coord.make ~lat:0.0 ~lon:1.0) ]
      ()
  in
  check_close 1e-9 "no repeaters, no death" 0.0
    (Failure_model.cable_death_prob ~per_repeater:1.0 ~spacing_km:150.0 cable)

let test_gic_physical_compiles () =
  let net = Lazy.force intertubes in
  let p = Failure_model.compile Failure_model.carrington_physical ~network:net in
  for i = 0 to 20 do
    let v = p (Infra.Network.cable net i) in
    Alcotest.(check bool) "probability in [0,1]" true (v >= 0.0 && v <= 1.0)
  done

let test_model_to_string () =
  Alcotest.(check string) "uniform" "uniform(0.01)"
    (Failure_model.to_string (Failure_model.uniform 0.01));
  Alcotest.(check string) "s1" "tiered[1; 0.1; 0.01]" (Failure_model.to_string Failure_model.s1)

(* --- Monte Carlo --- *)

let test_mc_p0_no_failures () =
  let net = Lazy.force submarine in
  let s =
    Montecarlo.run ~trials:3 ~seed:1 ~network:net ~spacing_km:150.0
      ~model:(Failure_model.uniform 0.0) ()
  in
  check_close 1e-9 "no cables fail" 0.0 s.Montecarlo.cables_mean;
  check_close 1e-9 "no nodes unreachable" 0.0 s.Montecarlo.nodes_mean

let test_mc_p1_kills_all_repeatered () =
  let net = Lazy.force submarine in
  let s =
    Montecarlo.run ~trials:2 ~seed:1 ~network:net ~spacing_km:150.0
      ~model:(Failure_model.uniform 1.0) ()
  in
  let unrepeatered = Infra.Network.cables_without_repeaters net ~spacing_km:150.0 in
  let expected =
    100.0
    *. float_of_int (Infra.Network.nb_cables net - unrepeatered)
    /. float_of_int (Infra.Network.nb_cables net)
  in
  check_close 1e-6 "exactly the repeatered cables" expected s.Montecarlo.cables_mean;
  check_close 1e-9 "deterministic at p=1" 0.0 s.Montecarlo.cables_std

let test_mc_matches_expectation () =
  let net = Lazy.force submarine in
  let model = Failure_model.uniform 0.01 in
  let expected = Montecarlo.expected_cables_failed_pct ~network:net ~spacing_km:150.0 ~model in
  let s = Montecarlo.run ~trials:60 ~seed:3 ~network:net ~spacing_km:150.0 ~model () in
  Alcotest.(check bool)
    (Printf.sprintf "MC %.1f vs analytic %.1f" s.Montecarlo.cables_mean expected)
    true
    (Float.abs (s.Montecarlo.cables_mean -. expected) < 2.0)

let test_mc_deterministic_in_seed () =
  let net = Lazy.force intertubes in
  let run () =
    Montecarlo.run ~trials:5 ~seed:9 ~network:net ~spacing_km:100.0
      ~model:(Failure_model.uniform 0.05) ()
  in
  let a = run () and b = run () in
  check_close 1e-12 "same mean" a.Montecarlo.cables_mean b.Montecarlo.cables_mean;
  check_close 1e-12 "same std" a.Montecarlo.cables_std b.Montecarlo.cables_std

let test_mc_smaller_spacing_worse () =
  (* More repeaters per cable -> more failures. *)
  let net = Lazy.force submarine in
  let model = Failure_model.uniform 0.01 in
  let at spacing =
    (Montecarlo.run ~trials:10 ~seed:5 ~network:net ~spacing_km:spacing ~model ())
      .Montecarlo.cables_mean
  in
  Alcotest.(check bool) "50 km worse than 150 km" true (at 50.0 > at 150.0)

let test_mc_validation () =
  let net = Lazy.force intertubes in
  Alcotest.check_raises "trials" (Invalid_argument "Montecarlo.run: trials <= 0") (fun () ->
      ignore
        (Montecarlo.run ~trials:0 ~seed:1 ~network:net ~spacing_km:150.0
           ~model:(Failure_model.uniform 0.1) ()))

let test_nodes_unreachable_definition () =
  (* Hand-built network: node 1's only cable dies -> unreachable; node 0
     keeps a live cable. *)
  let coord lat lon = Geo.Coord.make ~lat ~lon in
  let nodes =
    [ { Infra.Network.id = 0; name = "a"; country = "X"; pos = coord 0.0 0.0 };
      { Infra.Network.id = 1; name = "b"; country = "X"; pos = coord 0.0 10.0 };
      { Infra.Network.id = 2; name = "c"; country = "X"; pos = coord 0.0 20.0 } ]
  in
  let cable id a b =
    Infra.Cable.make ~id ~name:(string_of_int id) ~kind:Infra.Cable.Submarine
      ~landings:
        [ (a, (List.nth nodes a).Infra.Network.pos); (b, (List.nth nodes b).Infra.Network.pos) ]
      ()
  in
  let net = Infra.Network.create ~name:"t" ~nodes ~cables:[ cable 0 0 1; cable 1 0 2 ] in
  let pct =
    Montecarlo.nodes_unreachable_pct net (Deadset.of_bool_array [| true; false |])
  in
  (* Node 1 unreachable; nodes 0 and 2 still served: 1/3. *)
  check_close 1e-6 "one of three" (100.0 /. 3.0) pct

(* --- Distribution (Figs 3-5) --- *)

let test_fig3_series () =
  let series = Distribution.fig3 ~submarine:(Lazy.force submarine) in
  Alcotest.(check int) "two series" 2 (List.length series);
  List.iter
    (fun (s : Distribution.pdf_series) ->
      Alcotest.(check int) "90 bins" 90 (List.length s.Distribution.points);
      let total =
        List.fold_left (fun acc (_, d) -> acc +. (d *. 2.0)) 0.0 s.Distribution.points
      in
      check_close 0.5 "integrates to 100%" 100.0 total)
    series

let test_fig4a_ordering_at_40 () =
  (* Paper: submarine 31% < intertubes 40%; population lowest (16%). *)
  let series =
    Distribution.fig4a ~submarine:(Lazy.force submarine) ~intertubes:(Lazy.force intertubes)
  in
  let at40 label =
    let s = List.find (fun (s : Distribution.threshold_series) -> s.Distribution.label = label) series in
    Distribution.fraction_above s 40.0
  in
  Alcotest.(check bool) "submarine < intertubes" true
    (at40 "Submarine endpoints" < at40 "Intertubes endpoints");
  Alcotest.(check bool) "population lowest" true
    (at40 "Population" < at40 "Submarine endpoints");
  Alcotest.(check bool) "one-hop > submarine" true
    (at40 "One-hop endpoints" > at40 "Submarine endpoints")

let test_fig4b_infrastructure_exceeds_population () =
  let routers = Datasets.Caida.router_latitudes (Datasets.Caida.build ~ases:2000 ()) in
  let series =
    Distribution.fig4b ~routers ~ixps:(Datasets.Ixp.build ()) ~dns:(Datasets.Dns_roots.build ())
  in
  let at40 label =
    let s = List.find (fun (s : Distribution.threshold_series) -> s.Distribution.label = label) series in
    Distribution.fraction_above s 40.0
  in
  List.iter
    (fun label ->
      Alcotest.(check bool) (label ^ " > population") true (at40 label > at40 "Population"))
    [ "Internet routers"; "IXPs"; "DNS root servers" ]

let test_fig5_orderings () =
  let series =
    Distribution.fig5 ~submarine:(Lazy.force submarine) ~intertubes:(Lazy.force intertubes)
      ~itu:(Lazy.force itu_small)
  in
  let median label =
    let s = List.find (fun (s : Distribution.cdf_series) -> s.Distribution.label = label) series in
    Stats.median (List.map fst s.Distribution.points)
  in
  (* Paper Fig. 5: submarine lengths an order of magnitude above land. *)
  Alcotest.(check bool) "submarine >> intertubes" true
    (median "Submarine (global)" > 2.0 *. median "Intertubes (US, land)");
  Alcotest.(check bool) "itu shortest" true
    (median "ITU (global, land)" < median "Intertubes (US, land)")

(* --- Resilience (Figs 6-8) --- *)

let networks_small () =
  [ ("Submarine", Lazy.force submarine); ("Intertubes", Lazy.force intertubes) ]

let test_fig6_7_structure () =
  let points =
    Resilience.fig6_7 ~trials:3 ~probabilities:[ 0.01; 1.0 ] ~networks:(networks_small ()) ()
  in
  (* 3 spacings x 2 networks x 2 probabilities. *)
  Alcotest.(check int) "point count" 12 (List.length points)

let test_fig6_submarine_exceeds_land () =
  (* The headline: submarine failures an order of magnitude above land at
     p = 0.01 (paper: 14.9% vs 1.7%). *)
  let points =
    Resilience.fig6_7 ~trials:10 ~probabilities:[ 0.01 ] ~networks:(networks_small ()) ()
  in
  match
    ( Resilience.find_sweep points ~network:"Submarine" ~spacing_km:150.0 ~probability:0.01,
      Resilience.find_sweep points ~network:"Intertubes" ~spacing_km:150.0 ~probability:0.01 )
  with
  | Some sub, Some landp ->
      Alcotest.(check bool)
        (Printf.sprintf "submarine %.1f%% in [9, 20]" sub.Resilience.series.Montecarlo.cables_mean)
        true
        (sub.Resilience.series.Montecarlo.cables_mean > 9.0
        && sub.Resilience.series.Montecarlo.cables_mean < 20.0);
      Alcotest.(check bool)
        (Printf.sprintf "land %.1f%% < 4" landp.Resilience.series.Montecarlo.cables_mean)
        true
        (landp.Resilience.series.Montecarlo.cables_mean < 4.0);
      Alcotest.(check bool) "order of magnitude" true
        (sub.Resilience.series.Montecarlo.cables_mean
        > 4.0 *. landp.Resilience.series.Montecarlo.cables_mean)
  | _ -> Alcotest.fail "sweep points missing"

let test_fig6_monotone_in_probability () =
  let points =
    Resilience.fig6_7 ~trials:5 ~probabilities:[ 0.001; 0.01; 0.1; 1.0 ]
      ~networks:[ ("Submarine", Lazy.force submarine) ] ()
  in
  let at p =
    match Resilience.find_sweep points ~network:"Submarine" ~spacing_km:150.0 ~probability:p with
    | Some pt -> pt.Resilience.series.Montecarlo.cables_mean
    | None -> Alcotest.fail "missing point"
  in
  Alcotest.(check bool) "monotone" true (at 0.001 <= at 0.01 && at 0.01 <= at 0.1 && at 0.1 <= at 1.0)

let test_fig8_s1_exceeds_s2 () =
  let points = Resilience.fig8 ~trials:5 ~networks:(networks_small ()) () in
  match
    ( Resilience.find_tiered points ~network:"Submarine" ~spacing_km:150.0 ~state:"S1",
      Resilience.find_tiered points ~network:"Submarine" ~spacing_km:150.0 ~state:"S2" )
  with
  | Some s1, Some s2 ->
      Alcotest.(check bool) "S1 worse" true
        (s1.Resilience.series.Montecarlo.cables_mean
        > s2.Resilience.series.Montecarlo.cables_mean);
      (* Paper: ~43% (S1) and ~10% (S2) of submarine cables at 150 km. *)
      Alcotest.(check bool)
        (Printf.sprintf "S1 %.1f%% in [18, 50]" s1.Resilience.series.Montecarlo.cables_mean)
        true
        (s1.Resilience.series.Montecarlo.cables_mean > 18.0
        && s1.Resilience.series.Montecarlo.cables_mean < 50.0);
      Alcotest.(check bool)
        (Printf.sprintf "S2 %.1f%% in [4, 16]" s2.Resilience.series.Montecarlo.cables_mean)
        true
        (s2.Resilience.series.Montecarlo.cables_mean > 4.0
        && s2.Resilience.series.Montecarlo.cables_mean < 16.0)
  | _ -> Alcotest.fail "tiered points missing"

let test_fig8_submarine_order_of_magnitude_over_land () =
  let points = Resilience.fig8 ~trials:5 ~networks:(networks_small ()) () in
  match
    ( Resilience.find_tiered points ~network:"Submarine" ~spacing_km:150.0 ~state:"S2",
      Resilience.find_tiered points ~network:"Intertubes" ~spacing_km:150.0 ~state:"S2" )
  with
  | Some sub, Some landp ->
      Alcotest.(check bool) "submarine >> land under S2" true
        (sub.Resilience.series.Montecarlo.cables_mean
        > 3.0 *. Float.max 0.1 landp.Resilience.series.Montecarlo.cables_mean)
  | _ -> Alcotest.fail "points missing"

(* --- Country case studies --- *)

let country_findings =
  lazy (Country.run_all ~trials:40 (Lazy.force submarine))

let finding id =
  List.find
    (fun (f : Country.finding) -> f.Country.spec.Country.id = id)
    (Lazy.force country_findings)

let test_country_all_cases_present () =
  Alcotest.(check int) "case count"
    (List.length Country.paper_case_studies)
    (List.length (Lazy.force country_findings))

let test_country_resolve_groups () =
  let net = Lazy.force submarine in
  List.iter
    (fun (spec : Country.spec) ->
      Alcotest.(check bool) (spec.Country.id ^ " group_a nonempty") true
        (Country.resolve_group net spec.Country.group_a <> []))
    Country.paper_case_studies

let test_country_ne_europe_s1_lost () =
  (* Paper: NE US-Europe fails with probability ~1 under S1. *)
  let f = finding "ne-europe-s1" in
  Alcotest.(check bool)
    (Printf.sprintf "loss %.2f >= 0.9" f.Country.loss_probability)
    true (f.Country.loss_probability >= 0.9)

let test_country_safe_cases () =
  (* Cases the paper reports as retained connectivity. *)
  List.iter
    (fun id ->
      let f = finding id in
      Alcotest.(check bool)
        (Printf.sprintf "%s loss %.2f <= 0.25" id f.Country.loss_probability)
        true
        (f.Country.loss_probability <= 0.25))
    [ "california-pacific-s2"; "florida-south-s2"; "india-hubs-s1"; "singapore-hub-s1";
      "uk-europe-s1"; "southafrica-coasts-s1"; "nz-australia-s1"; "australia-jakarta-s1";
      "alaska-bc-s1" ]

let test_country_lost_cases () =
  List.iter
    (fun id ->
      let f = finding id in
      Alcotest.(check bool)
        (Printf.sprintf "%s loss %.2f >= 0.75" id f.Country.loss_probability)
        true
        (f.Country.loss_probability >= 0.75))
    [ "uk-northamerica-s1" ]

let test_country_brazil_beats_us () =
  (* The Ellalink asymmetry: Brazil keeps Europe more often than the US
     keeps Europe under S1. *)
  let brazil = finding "brazil-europe-s1" in
  let us = finding "us-europe-s1" in
  Alcotest.(check bool)
    (Printf.sprintf "brazil %.2f < us %.2f" brazil.Country.loss_probability
       us.Country.loss_probability)
    true
    (brazil.Country.loss_probability < us.Country.loss_probability)

let test_country_s1_worse_than_s2_for_ne_europe () =
  let s1 = finding "ne-europe-s1" and s2 = finding "ne-europe-s2" in
  Alcotest.(check bool) "S1 >= S2" true
    (s1.Country.loss_probability >= s2.Country.loss_probability)

let test_country_direct_cables_counted () =
  let f = finding "us-europe-s1" in
  Alcotest.(check bool) "transatlantic cables present" true (f.Country.direct_cables >= 10)

(* --- Systems --- *)

let test_systems_as_summary () =
  let ases = Datasets.Caida.build ~ases:3000 () in
  let s = Systems.analyze_ases ases in
  Alcotest.(check int) "total" 3000 s.Systems.total;
  Alcotest.(check int) "curve points" 10 (List.length s.Systems.reach_curve);
  Alcotest.(check bool) "median < p90" true (s.Systems.median_spread_deg < s.Systems.p90_spread_deg)

let test_systems_google_more_resilient () =
  (* The paper's 4.4.2 conclusion. *)
  match Systems.analyze_datacenters () with
  | [ google; facebook ] ->
      Alcotest.(check bool) "google score higher" true
        (google.Systems.resilience_score > facebook.Systems.resilience_score);
      Alcotest.(check bool) "google more continents" true
        (google.Systems.continents > facebook.Systems.continents)
  | _ -> Alcotest.fail "expected two operators"

let test_systems_dns_resilient () =
  let dns = Systems.analyze_dns (Datasets.Dns_roots.build ()) in
  Alcotest.(check int) "13 letters" 13 dns.Systems.letters;
  Alcotest.(check bool) "score above facebook" true
    (match Systems.analyze_datacenters () with
    | [ _; facebook ] -> dns.Systems.resilience_score > facebook.Systems.resilience_score
    | _ -> false)

let test_resilience_score_properties () =
  (* Concentrated above 40 deg -> near zero; spread across bands -> higher. *)
  let concentrated = List.init 20 (fun _ -> (55.0, 1.0)) in
  let spread = [ (-35.0, 1.0); (-5.0, 1.0); (10.0, 1.0); (25.0, 1.0); (35.0, 1.0) ] in
  Alcotest.(check bool) "concentrated ~ 0" true (Systems.resilience_score concentrated < 0.1);
  Alcotest.(check bool) "spread high" true (Systems.resilience_score spread > 0.5);
  check_close 1e-9 "empty" 0.0 (Systems.resilience_score [])

(* --- Scenario --- *)

let test_scenario_model_mapping () =
  let open Spaceweather.Dst in
  Alcotest.(check string) "carrington -> S1" "tiered[1; 0.1; 0.01]"
    (Failure_model.to_string (Scenario.model_for_severity Carrington));
  Alcotest.(check string) "extreme -> S2" "tiered[0.1; 0.01; 0.001]"
    (Failure_model.to_string (Scenario.model_for_severity Extreme))

let test_scenario_run_carrington () =
  let nets = [ ("Intertubes", Lazy.force intertubes) ] in
  let s = Scenario.run ~trials:3 ~cme:Spaceweather.Cme.carrington_1859 ~networks:nets () in
  Alcotest.(check string) "severity" "carrington"
    (Spaceweather.Dst.severity_to_string s.Scenario.severity);
  Alcotest.(check int) "one impact" 1 (List.length s.Scenario.impacts);
  Alcotest.(check bool) "lead time >= 13h" true
    (s.Scenario.timeline.Spaceweather.Forecast.actionable_lead_h >= 13.0)

let test_scenario_weak_cme_harmless () =
  let nets = [ ("Intertubes", Lazy.force intertubes) ] in
  let weak = Spaceweather.Cme.make ~speed_km_s:500.0 ~southward_b_nt:5.0 () in
  let s = Scenario.run ~trials:3 ~cme:weak ~networks:nets () in
  List.iter
    (fun i ->
      Alcotest.(check bool) "negligible failures" true (i.Scenario.cables_failed_pct < 1.0))
    s.Scenario.impacts

let test_scenario_historical_lookup () =
  let nets = [ ("Intertubes", Lazy.force intertubes) ] in
  Alcotest.(check bool) "carrington resolves" true
    (Scenario.historical ~name:"carrington" ~networks:nets <> None);
  Alcotest.(check bool) "unknown" true (Scenario.historical ~name:"zzz" ~networks:nets = None)

let test_scenario_physical_appended () =
  let nets = [ ("Intertubes", Lazy.force intertubes) ] in
  let s =
    Scenario.run ~trials:2 ~use_physical:true ~cme:Spaceweather.Cme.carrington_1859
      ~networks:nets ()
  in
  Alcotest.(check int) "two impacts" 2 (List.length s.Scenario.impacts)

(* --- Mitigation --- *)

let test_shutdown_plan_benefit () =
  let plan =
    Mitigation.shutdown_plan ~cme:Spaceweather.Cme.carrington_1859
      ~network:(Lazy.force submarine) ()
  in
  Alcotest.(check bool) "benefit nonnegative" true (plan.Mitigation.benefit_pct >= 0.0);
  Alcotest.(check bool) "off <= on" true
    (plan.Mitigation.cables_failed_off_pct <= plan.Mitigation.cables_failed_on_pct);
  Alcotest.(check bool) "limited protection (paper 5.2)" true
    (plan.Mitigation.cables_failed_off_pct > 0.0)

let test_shutdown_plan_validation () =
  Alcotest.check_raises "factor" (Invalid_argument "Mitigation.shutdown_plan: factor outside (0, 1]")
    (fun () ->
      ignore
        (Mitigation.shutdown_plan ~power_off_factor:0.0
           ~cme:Spaceweather.Cme.carrington_1859 ~network:(Lazy.force submarine) ()))

let test_augmentation_plan () =
  let augs = Mitigation.plan_augmentation ~budget:2 ~network:(Lazy.force submarine) () in
  Alcotest.(check bool) "at most budget" true (List.length augs <= 2);
  List.iter
    (fun (a : Mitigation.augmentation) ->
      Alcotest.(check bool) "positive gain" true (a.Mitigation.gain > 0.0);
      Alcotest.(check bool) "positive length" true (a.Mitigation.length_km > 0.0))
    augs

let test_augmentation_improves_objective () =
  let net = Lazy.force submarine in
  let base = Mitigation.expected_surviving_pairs ~network:net () in
  let augs = Mitigation.plan_augmentation ~budget:3 ~network:net () in
  let total_gain = List.fold_left (fun acc a -> acc +. a.Mitigation.gain) 0.0 augs in
  Alcotest.(check bool) "strictly better" true (total_gain > 0.0);
  Alcotest.(check bool) "baseline positive" true (base > 0.0)

let test_partitions_under_s1 () =
  let net = Lazy.force submarine in
  let parts = Mitigation.predicted_partitions ~network:net () in
  Alcotest.(check bool) "fragmentation" true (List.length parts > 1);
  (* Partition sizes are sorted descending and cover all nodes. *)
  let total = List.fold_left (fun acc c -> acc + List.length c) 0 parts in
  Alcotest.(check int) "covers all nodes" (Infra.Network.nb_nodes net) total;
  let sizes = List.map List.length parts in
  Alcotest.(check (list int)) "descending" (List.sort (fun a b -> Int.compare b a) sizes) sizes

let test_partitions_cutoff_monotone () =
  let net = Lazy.force submarine in
  let lenient = Mitigation.predicted_partitions ~survival_cutoff:0.01 ~network:net () in
  let strict = Mitigation.predicted_partitions ~survival_cutoff:0.99 ~network:net () in
  (* A stricter survival requirement removes more cables -> more pieces. *)
  Alcotest.(check bool) "more fragments when strict" true
    (List.length strict >= List.length lenient)

(* --- QCheck --- *)

let prop_death_prob_in_unit_interval =
  QCheck.Test.make ~name:"cable death probability in [0,1]" ~count:200
    QCheck.(pair (float_range 0.0 1.0) (float_range 1.0 30000.0))
    (fun (p, length_km) ->
      let cable =
        Infra.Cable.make ~id:0 ~name:"q" ~kind:Infra.Cable.Submarine
          ~landings:
            [ (0, Geo.Coord.make ~lat:0.0 ~lon:0.0); (1, Geo.Coord.make ~lat:1.0 ~lon:1.0) ]
          ~length_km ()
      in
      let d = Failure_model.cable_death_prob ~per_repeater:p ~spacing_km:150.0 cable in
      d >= 0.0 && d <= 1.0)

let prop_death_prob_monotone_in_p =
  QCheck.Test.make ~name:"death probability monotone in repeater p" ~count:200
    QCheck.(pair (float_range 0.0 1.0) (float_range 0.0 1.0))
    (fun (p1, p2) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      let cable =
        Infra.Cable.make ~id:0 ~name:"q" ~kind:Infra.Cable.Submarine
          ~landings:
            [ (0, Geo.Coord.make ~lat:0.0 ~lon:0.0); (1, Geo.Coord.make ~lat:0.0 ~lon:40.0) ]
          ~length_km:5000.0 ()
      in
      Failure_model.cable_death_prob ~per_repeater:lo ~spacing_km:150.0 cable
      <= Failure_model.cable_death_prob ~per_repeater:hi ~spacing_km:150.0 cable +. 1e-12)

let prop_stats_percentile_bounds =
  QCheck.Test.make ~name:"percentile lies within sample range" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 30) (float_range (-100.0) 100.0))
              (float_range 0.0 100.0))
    (fun (l, p) ->
      let v = Stats.percentile l ~p in
      let sorted = List.sort Float.compare l in
      v >= List.hd sorted && v <= List.nth sorted (List.length sorted - 1))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_death_prob_in_unit_interval; prop_death_prob_monotone_in_p;
      prop_stats_percentile_bounds ]

let () =
  Alcotest.run "stormsim"
    [
      ( "stats",
        [ Alcotest.test_case "mean/stddev" `Quick test_stats_mean_stddev;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "cdf" `Quick test_stats_cdf;
          Alcotest.test_case "histogram" `Quick test_stats_histogram ] );
      ( "failure_model",
        [ Alcotest.test_case "uniform validation" `Quick test_uniform_validation;
          Alcotest.test_case "S1/S2 tier values" `Quick test_s1_s2_values;
          Alcotest.test_case "death formula" `Quick test_cable_death_prob_formula;
          Alcotest.test_case "unrepeatered immortal" `Quick test_unrepeatered_cable_immortal;
          Alcotest.test_case "gic-physical compiles" `Quick test_gic_physical_compiles;
          Alcotest.test_case "to_string" `Quick test_model_to_string ] );
      ( "montecarlo",
        [ Alcotest.test_case "p=0" `Quick test_mc_p0_no_failures;
          Alcotest.test_case "p=1" `Quick test_mc_p1_kills_all_repeatered;
          Alcotest.test_case "matches expectation" `Slow test_mc_matches_expectation;
          Alcotest.test_case "deterministic" `Quick test_mc_deterministic_in_seed;
          Alcotest.test_case "spacing effect" `Quick test_mc_smaller_spacing_worse;
          Alcotest.test_case "validation" `Quick test_mc_validation;
          Alcotest.test_case "unreachable definition" `Quick test_nodes_unreachable_definition ] );
      ( "distribution",
        [ Alcotest.test_case "fig3 series" `Quick test_fig3_series;
          Alcotest.test_case "fig4a ordering" `Quick test_fig4a_ordering_at_40;
          Alcotest.test_case "fig4b infra > population" `Quick
            test_fig4b_infrastructure_exceeds_population;
          Alcotest.test_case "fig5 orderings" `Quick test_fig5_orderings ] );
      ( "resilience",
        [ Alcotest.test_case "fig6/7 structure" `Quick test_fig6_7_structure;
          Alcotest.test_case "submarine over land" `Quick test_fig6_submarine_exceeds_land;
          Alcotest.test_case "monotone in p" `Quick test_fig6_monotone_in_probability;
          Alcotest.test_case "fig8 S1 > S2" `Quick test_fig8_s1_exceeds_s2;
          Alcotest.test_case "fig8 submarine over land" `Quick
            test_fig8_submarine_order_of_magnitude_over_land ] );
      ( "country",
        [ Alcotest.test_case "all cases" `Quick test_country_all_cases_present;
          Alcotest.test_case "groups resolve" `Quick test_country_resolve_groups;
          Alcotest.test_case "NE-Europe lost under S1" `Quick test_country_ne_europe_s1_lost;
          Alcotest.test_case "safe cases" `Quick test_country_safe_cases;
          Alcotest.test_case "lost cases" `Quick test_country_lost_cases;
          Alcotest.test_case "brazil beats us" `Quick test_country_brazil_beats_us;
          Alcotest.test_case "S1 worse than S2" `Quick test_country_s1_worse_than_s2_for_ne_europe;
          Alcotest.test_case "direct cables counted" `Quick test_country_direct_cables_counted ] );
      ( "systems",
        [ Alcotest.test_case "AS summary" `Quick test_systems_as_summary;
          Alcotest.test_case "google > facebook" `Quick test_systems_google_more_resilient;
          Alcotest.test_case "dns resilient" `Quick test_systems_dns_resilient;
          Alcotest.test_case "score properties" `Quick test_resilience_score_properties ] );
      ( "scenario",
        [ Alcotest.test_case "model mapping" `Quick test_scenario_model_mapping;
          Alcotest.test_case "carrington run" `Quick test_scenario_run_carrington;
          Alcotest.test_case "weak cme harmless" `Quick test_scenario_weak_cme_harmless;
          Alcotest.test_case "historical lookup" `Quick test_scenario_historical_lookup;
          Alcotest.test_case "physical appended" `Quick test_scenario_physical_appended ] );
      ( "mitigation",
        [ Alcotest.test_case "shutdown benefit" `Quick test_shutdown_plan_benefit;
          Alcotest.test_case "shutdown validation" `Quick test_shutdown_plan_validation;
          Alcotest.test_case "augmentation plan" `Quick test_augmentation_plan;
          Alcotest.test_case "augmentation objective" `Quick test_augmentation_improves_objective;
          Alcotest.test_case "partitions" `Quick test_partitions_under_s1;
          Alcotest.test_case "cutoff monotone" `Quick test_partitions_cutoff_monotone ] );
      ("properties", qcheck_tests);
    ]
