(* Tests for the Report library: tables, ASCII plots, world maps, CSV
   export and the figure harness. *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0

(* Shared small context so the figure harness tests stay fast. *)
let ctx = lazy (Report.Figures.make_context ~itu_scale:0.05 ~caida_ases:1000 ())

(* --- Table --- *)

let test_table_renders_rows () =
  let t = Report.Table.render ~header:[ "name"; "value" ] [ [ "a"; "1" ]; [ "bb"; "22" ] ] in
  Alcotest.(check bool) "has header" true (contains t "name");
  Alcotest.(check bool) "has separator" true (contains t "---");
  Alcotest.(check bool) "has rows" true (contains t "bb")

let test_table_ragged_rows () =
  let t = Report.Table.render [ [ "a" ]; [ "b"; "c"; "d" ] ] in
  Alcotest.(check bool) "renders" true (String.length t > 0)

let test_table_empty () =
  Alcotest.(check string) "empty" "" (Report.Table.render [])

let test_table_floats () =
  let t = Report.Table.render_floats ~fmt:(Printf.sprintf "%.1f") [ ("x", [ 1.25; 2.0 ]) ] in
  Alcotest.(check bool) "formatted" true (contains t "1.2" || contains t "1.3")

(* --- Ascii_plot --- *)

let test_plot_contains_legend_and_axes () =
  let p =
    Report.Ascii_plot.plot ~title:"T" ~x_label:"xx" ~y_label:"yy"
      [ { Report.Ascii_plot.label = "series-one"; points = [ (0.0, 0.0); (1.0, 5.0) ] } ]
  in
  Alcotest.(check bool) "title" true (contains p "T");
  Alcotest.(check bool) "legend" true (contains p "series-one");
  Alcotest.(check bool) "x label" true (contains p "xx");
  Alcotest.(check bool) "y label" true (contains p "yy")

let test_plot_empty_series () =
  Alcotest.(check string) "placeholder" "(empty plot)\n" (Report.Ascii_plot.plot []);
  Alcotest.(check string) "all-empty" "(empty plot)\n"
    (Report.Ascii_plot.plot [ { Report.Ascii_plot.label = "e"; points = [] } ])

let test_plot_log_x_skips_nonpositive () =
  let p =
    Report.Ascii_plot.plot ~log_x:true
      [ { Report.Ascii_plot.label = "s"; points = [ (0.0, 1.0); (10.0, 2.0); (100.0, 3.0) ] } ]
  in
  Alcotest.(check bool) "renders" true (contains p "log scale")

let test_sparkline () =
  Alcotest.(check string) "empty" "" (Report.Ascii_plot.sparkline []);
  Alcotest.(check string) "flat uses low level" "___"
    (Report.Ascii_plot.sparkline [ 5.0; 5.0; 5.0 ]);
  let s = Report.Ascii_plot.sparkline [ 0.0; 10.0; 5.0 ] in
  Alcotest.(check int) "one char per value" 3 (String.length s);
  Alcotest.(check char) "min level" '_' s.[0];
  Alcotest.(check char) "max level" '#' s.[1]

let test_plot_constant_series () =
  let p =
    Report.Ascii_plot.plot
      [ { Report.Ascii_plot.label = "flat"; points = [ (0.0, 5.0); (1.0, 5.0) ] } ]
  in
  Alcotest.(check bool) "no crash on flat data" true (String.length p > 0)

(* --- Worldmap --- *)

let test_worldmap_dimensions () =
  let m = Report.Worldmap.render ~width:60 ~height:20 [] in
  let lines = String.split_on_char '\n' m |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "20 rows" 20 (List.length lines);
  List.iter (fun l -> Alcotest.(check int) "60 cols" 60 (String.length l)) lines

let test_worldmap_has_coastline () =
  let m = Report.Worldmap.render ~width:80 ~height:24 [] in
  Alcotest.(check bool) "land dots present" true (contains m ".")

let test_worldmap_plots_points () =
  let m =
    Report.Worldmap.render ~width:80 ~height:24
      [ Report.Worldmap.Points ('Z', [ Geo.Coord.make ~lat:48.86 ~lon:2.35 ]) ]
  in
  Alcotest.(check bool) "glyph present" true (contains m "Z")

let test_worldmap_network_layers () =
  let ctx = Lazy.force ctx in
  let layers = Report.Worldmap.network_layers (Report.Figures.intertubes ctx) in
  Alcotest.(check int) "two layers" 2 (List.length layers)

(* --- Csv --- *)

let test_csv_escape () =
  Alcotest.(check string) "plain" "abc" (Report.Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Report.Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Report.Csv.escape "a\"b")

let test_csv_of_series () =
  let c = Report.Csv.of_series ~header:("x", "y") [ (1.0, 2.0); (3.5, 4.25) ] in
  Alcotest.(check bool) "header" true (contains c "x,y");
  Alcotest.(check bool) "row" true (contains c "3.5,4.25")

let test_csv_write_file () =
  let path = Filename.temp_file "stormcsv" ".csv" in
  Report.Csv.write_file ~path "a,b\n1,2\n";
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "written" "a,b" line

(* --- Figures --- *)

let test_figures_all_nonempty () =
  let figs = Report.Figures.all ~trials:2 (Lazy.force ctx) in
  Alcotest.(check int) "23 outputs" 23 (List.length figs);
  List.iter
    (fun (id, text) ->
      Alcotest.(check bool) (id ^ " nonempty") true (String.length text > 40))
    figs

let test_fig8_mentions_states () =
  let text = Report.Figures.fig8 ~trials:2 (Lazy.force ctx) in
  Alcotest.(check bool) "S1" true (contains text "S1");
  Alcotest.(check bool) "S2" true (contains text "S2");
  Alcotest.(check bool) "both networks" true
    (contains text "Submarine" && contains text "Intertubes")

let test_countries_table_has_cases () =
  let text = Report.Figures.countries ~trials:5 (Lazy.force ctx) in
  List.iter
    (fun case -> Alcotest.(check bool) case true (contains text case))
    [ "us-europe-s1"; "singapore-hub-s1"; "brazil-europe-s1" ]

let test_probability_table_values () =
  let text = Report.Figures.probability () in
  Alcotest.(check bool) "kirchen" true (contains text "0.016");
  Alcotest.(check bool) "bernoulli" true (contains text "0.096")

let test_systems_output () =
  let text = Report.Figures.systems (Lazy.force ctx) in
  Alcotest.(check bool) "google" true (contains text "Google");
  Alcotest.(check bool) "facebook" true (contains text "Facebook");
  Alcotest.(check bool) "dns" true (contains text "DNS")

let () =
  Alcotest.run "report"
    [
      ( "table",
        [ Alcotest.test_case "renders" `Quick test_table_renders_rows;
          Alcotest.test_case "ragged" `Quick test_table_ragged_rows;
          Alcotest.test_case "empty" `Quick test_table_empty;
          Alcotest.test_case "floats" `Quick test_table_floats ] );
      ( "ascii_plot",
        [ Alcotest.test_case "legend and axes" `Quick test_plot_contains_legend_and_axes;
          Alcotest.test_case "empty series" `Quick test_plot_empty_series;
          Alcotest.test_case "log x" `Quick test_plot_log_x_skips_nonpositive;
          Alcotest.test_case "constant series" `Quick test_plot_constant_series;
          Alcotest.test_case "sparkline" `Quick test_sparkline ] );
      ( "worldmap",
        [ Alcotest.test_case "dimensions" `Quick test_worldmap_dimensions;
          Alcotest.test_case "coastline" `Quick test_worldmap_has_coastline;
          Alcotest.test_case "points" `Quick test_worldmap_plots_points;
          Alcotest.test_case "network layers" `Quick test_worldmap_network_layers ] );
      ( "csv",
        [ Alcotest.test_case "escape" `Quick test_csv_escape;
          Alcotest.test_case "of_series" `Quick test_csv_of_series;
          Alcotest.test_case "write_file" `Quick test_csv_write_file ] );
      ( "figures",
        [ Alcotest.test_case "all nonempty" `Slow test_figures_all_nonempty;
          Alcotest.test_case "fig8 states" `Quick test_fig8_mentions_states;
          Alcotest.test_case "countries table" `Quick test_countries_table_has_cases;
          Alcotest.test_case "probability table" `Quick test_probability_table_values;
          Alcotest.test_case "systems output" `Quick test_systems_output ] );
    ]
