(* Sweep engine suite: grid expansion goldens (cartesian order, first
   axis slowest), axis validation, plan/batch dedup exactness (counter
   asserted), byte-identical streaming for any jobs count, and
   CLI-vs-HTTP parity — the de-chunked [POST /sweep] body must equal the
   concatenated [row_line]s the CLI prints for the same grid. *)

open Stormsim

let axis spec =
  match Sweep.axis_of_spec spec with
  | Ok a -> a
  | Error msg -> Alcotest.fail (Printf.sprintf "axis %s rejected: %s" spec msg)

let expand_ok specs =
  match Sweep.expand (List.map axis specs) with
  | Ok cells -> cells
  | Error msg -> Alcotest.fail ("expand failed: " ^ msg)

let counter_value name =
  match List.assoc_opt name (Obs.Metrics.snapshot ()) with
  | Some (Obs.Metrics.Counter n) -> n
  | _ -> 0

(* Counters and the server result cache are process-global; start every
   test clean and leave the layer off. *)
let with_state f =
  Obs.reset ();
  Obs.enable ();
  Server.Api.reset ();
  Fun.protect
    ~finally:(fun () ->
      Server.Api.reset ();
      Obs.disable ();
      Obs.reset ())
    f

(* --- expansion goldens --- *)

let test_expand_cartesian_order () =
  let cells = expand_ok [ "network=submarine,intertubes"; "trials=1,2" ] in
  Alcotest.(check int) "4 cells" 4 (Array.length cells);
  let got =
    Array.to_list
      (Array.map
         (fun (c : Sweep.cell) -> (Sweep.network_id_to_string c.network, c.trials))
         cells)
  in
  (* First axis varies slowest. *)
  Alcotest.(check (list (pair string int)))
    "order"
    [ ("submarine", 1); ("submarine", 2); ("intertubes", 1); ("intertubes", 2) ]
    got

let test_expand_defaults () =
  let cells = expand_ok [] in
  Alcotest.(check int) "one default cell" 1 (Array.length cells);
  let c = cells.(0) in
  Alcotest.(check bool) "is default" true (c = Sweep.default_cell);
  Alcotest.(check int) "default seed" Datasets.default_seed c.Sweep.seed

let test_expand_empty_axis () =
  let cells = expand_ok [ "trials=" ] in
  Alcotest.(check int) "zero cells" 0 (Array.length cells)

let test_expand_single_value_pins () =
  let cells = expand_ok [ "spacing_km=75"; "seed=7" ] in
  Alcotest.(check int) "one cell" 1 (Array.length cells);
  Alcotest.(check (float 0.0)) "spacing" 75.0 cells.(0).Sweep.spacing_km;
  Alcotest.(check int) "seed" 7 cells.(0).Sweep.seed

let test_expand_duplicate_key_rejected () =
  match Sweep.expand [ axis "trials=1"; axis "trials=2" ] with
  | Ok _ -> Alcotest.fail "duplicate axis key accepted"
  | Error msg -> Alcotest.(check bool) "names the key" true (String.length msg > 0)

let test_expand_max_cells_rejected () =
  (* 300 x 300 = 90_000 > max_cells; built through axis_of_raw because a
     300-value CLI spec would be absurd. *)
  let raws = List.init 300 (fun i -> Sweep.Num (float_of_int i)) in
  let seed_axis =
    match Sweep.axis_of_raw "seed" raws with
    | Ok a -> a
    | Error msg -> Alcotest.fail msg
  in
  let trials_axis =
    match Sweep.axis_of_raw "trials" (List.init 300 (fun i -> Sweep.Num (float_of_int (i + 1)))) with
    | Ok a -> a
    | Error msg -> Alcotest.fail msg
  in
  match Sweep.expand [ seed_axis; trials_axis ] with
  | Ok _ -> Alcotest.fail "oversized grid accepted"
  | Error _ -> ()

(* --- axis validation --- *)

let test_axis_rejects =
  let cases =
    [ "no-equals"; "bogus=1"; "network=mars"; "model=verybroken"; "spacing_km=-1";
      "spacing_km=nan"; "itu_scale=0"; "itu_scale=1.5"; "seed=1.5"; "trials=0";
      "trials=1000001" ]
  in
  List.map
    (fun spec ->
      Alcotest.test_case spec `Quick (fun () ->
          match Sweep.axis_of_spec spec with
          | Ok _ -> Alcotest.fail (Printf.sprintf "%s accepted" spec)
          | Error _ -> ()))
    cases

let test_axis_accepts_models () =
  let a = axis "model=s1,s2,physical,s1-geomag,0.25" in
  Alcotest.(check string) "key" "model" (Sweep.axis_key a);
  Alcotest.(check int) "length" 5 (Sweep.axis_length a)

let test_axis_of_raw_matches_spec () =
  (* JSON numbers and CLI strings must land on the same cells. *)
  let from_spec = expand_ok [ "model=0.25"; "trials=3" ] in
  let from_raw =
    let m =
      match Sweep.axis_of_raw "model" [ Sweep.Num 0.25 ] with
      | Ok a -> a
      | Error msg -> Alcotest.fail msg
    in
    let t =
      match Sweep.axis_of_raw "trials" [ Sweep.Num 3.0 ] with
      | Ok a -> a
      | Error msg -> Alcotest.fail msg
    in
    match Sweep.expand [ m; t ] with
    | Ok cells -> cells
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check bool) "same cell" true (from_spec = from_raw)

(* --- canonical keys --- *)

let test_plan_key_normalizes_itu_scale () =
  let cells = expand_ok [ "itu_scale=0.1,0.2,0.3" ] in
  let keys =
    Array.to_list (Array.map Sweep.plan_key cells) |> List.sort_uniq compare
  in
  (* Submarine never reads itu_scale, so the three cells share a plan. *)
  Alcotest.(check int) "one plan key" 1 (List.length keys);
  let itu = expand_ok [ "network=itu"; "itu_scale=0.1,0.2" ] in
  let itu_keys =
    Array.to_list (Array.map Sweep.plan_key itu) |> List.sort_uniq compare
  in
  Alcotest.(check int) "itu keeps scale" 2 (List.length itu_keys)

let test_batch_key_includes_trials () =
  let cells = expand_ok [ "trials=2,2,3" ] in
  let keys =
    Array.to_list (Array.map Sweep.batch_key cells) |> List.sort_uniq compare
  in
  Alcotest.(check int) "two batches" 2 (List.length keys);
  Alcotest.(check string) "duplicate trials share" (Sweep.batch_key cells.(0))
    (Sweep.batch_key cells.(1))

(* --- execution: dedup, determinism, ordering --- *)

(* The bench grid shape at test-sized trials: 4 models x 4 itu scales
   (normalized out on submarine) x 4 duplicate trial values = 64 cells,
   4 plans, 4 batches. *)
let grid_64 = [ "model=0.005,0.01,0.02,s1"; "itu_scale=0.1,0.2,0.3,0.4"; "trials=2,2,2,2" ]

let run_to_string ?jobs cells =
  let buf = Buffer.create 4096 in
  let summary =
    Sweep.run ?jobs ~cells () ~emit:(fun row -> Buffer.add_string buf (Sweep.row_line row))
  in
  (summary, Buffer.contents buf)

let test_dedup_counters_exact () =
  with_state @@ fun () ->
  let cells = expand_ok grid_64 in
  Alcotest.(check int) "64 cells" 64 (Array.length cells);
  let before = counter_value "sweep.plans_compiled" in
  let summary, body = run_to_string ~jobs:1 cells in
  Alcotest.(check int) "summary cells" 64 summary.Sweep.cells;
  Alcotest.(check int) "summary rows" 64 summary.Sweep.rows;
  Alcotest.(check int) "4 plans compiled" 4 summary.Sweep.plans_compiled;
  Alcotest.(check int) "4 batches" 4 summary.Sweep.batches;
  Alcotest.(check int) "counter delta exact" 4
    (counter_value "sweep.plans_compiled" - before);
  Alcotest.(check int) "cells counter" 64 (counter_value "sweep.cells");
  Alcotest.(check int) "rows counter" 64 (counter_value "sweep.rows_streamed");
  Alcotest.(check int) "64 lines" 64
    (List.length (String.split_on_char '\n' body) - 1)

let test_rows_in_cell_order () =
  let cells = expand_ok [ "model=s1,0.01"; "seed=41,42" ] in
  let seen = ref [] in
  let _ = Sweep.run ~jobs:1 ~cells () ~emit:(fun r -> seen := r.Sweep.cell_index :: !seen) in
  Alcotest.(check (list int)) "strict cell order" [ 0; 1; 2; 3 ] (List.rev !seen)

let test_jobs_byte_identity () =
  let cells = expand_ok [ "model=0.005,s1"; "seed=41,42"; "trials=6" ] in
  let _, one = run_to_string ~jobs:1 cells in
  let _, four = run_to_string ~jobs:4 cells in
  Alcotest.(check string) "jobs 1 = jobs 4" one four;
  Alcotest.(check bool) "non-empty" true (String.length one > 0)

let test_shared_batch_rows_identical () =
  let cells = expand_ok [ "trials=4,4" ] in
  let rows = ref [] in
  let _ = Sweep.run ~jobs:1 ~cells () ~emit:(fun r -> rows := r :: !rows) in
  match List.rev !rows with
  | [ a; b ] ->
      Alcotest.(check bool) "same stats" true (a.Sweep.stats = b.Sweep.stats);
      Alcotest.(check int) "indices differ" 1 (b.Sweep.cell_index - a.Sweep.cell_index)
  | l -> Alcotest.fail (Printf.sprintf "expected 2 rows, got %d" (List.length l))

let test_row_line_shape () =
  let cells = expand_ok [] in
  let line = ref "" in
  let _ = Sweep.run ~jobs:1 ~cells () ~emit:(fun r -> line := Sweep.row_line r) in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
    nn = 0 || scan 0
  in
  Alcotest.(check bool) "cell field first" true
    (String.length !line > 8 && String.sub !line 0 8 = "{\"cell\":");
  List.iter
    (fun f -> Alcotest.(check bool) f true (contains !line f))
    [ "\"network\":\"submarine\""; "\"cables_failed_pct\""; "\"nodes_unreachable_pct\"";
      "\"mean\""; "\"std\"" ];
  Alcotest.(check bool) "newline terminated" true
    (!line <> "" && !line.[String.length !line - 1] = '\n');
  (* itu_scale is unused on submarine and stays out of the row. *)
  Alcotest.(check bool) "no itu_scale field" false (contains !line "itu_scale")

(* --- HTTP: POST /sweep --- *)

let dispatch ?(body = "") target =
  Server.Router.dispatch
    ~routes:(Server.Handlers.routes ())
    { Server.Http.meth = Server.Http.POST; target; version = "HTTP/1.1"; headers = [];
      body }

let test_http_parity_with_cli () =
  with_state @@ fun () ->
  (* Same grid, CLI-shaped and JSON-shaped. *)
  let cells = expand_ok [ "model=0.005,0.01"; "trials=3,3" ] in
  let _, cli = run_to_string ~jobs:1 cells in
  let reply = dispatch ~body:"{\"model\":[0.005,0.01],\"trials\":[3,3]}" "/sweep" in
  (match reply with
  | Server.Router.Stream s ->
      Alcotest.(check int) "status 200" 200 s.Server.Router.s_status;
      Alcotest.(check string) "ndjson" "application/x-ndjson"
        s.Server.Router.s_content_type
  | Server.Router.Response _ -> Alcotest.fail "expected a stream");
  let resp = Server.Router.to_response reply in
  Alcotest.(check string) "HTTP body = CLI bytes" cli resp.Server.Http.body;
  Alcotest.(check int) "served counters" 4
    (counter_value "server.sweep.cells");
  Alcotest.(check int) "served rows" 4 (counter_value "server.sweep.rows_streamed");
  Alcotest.(check int) "served plans" 2 (counter_value "server.sweep.plans_compiled")

let test_http_empty_body_is_default_cell () =
  with_state @@ fun () ->
  let resp = Server.Router.to_response (dispatch ~body:"" "/sweep") in
  Alcotest.(check int) "status" 200 resp.Server.Http.status;
  let cells = expand_ok [] in
  let _, cli = run_to_string ~jobs:1 cells in
  Alcotest.(check string) "single default row" cli resp.Server.Http.body

let test_http_empty_axis_streams_nothing () =
  with_state @@ fun () ->
  let resp = Server.Router.to_response (dispatch ~body:"{\"trials\":[]}" "/sweep") in
  Alcotest.(check int) "status" 200 resp.Server.Http.status;
  Alcotest.(check string) "empty body" "" resp.Server.Http.body

let test_http_bad_grids_are_400 () =
  with_state @@ fun () ->
  List.iter
    (fun body ->
      match dispatch ~body "/sweep" with
      | Server.Router.Response r ->
          Alcotest.(check int) (Printf.sprintf "400 for %s" body) 400
            r.Server.Http.status
      | Server.Router.Stream _ ->
          Alcotest.fail (Printf.sprintf "bad grid %s streamed" body))
    [ "{"; "[1,2]"; "\"grid\""; "{\"bogus\":[1]}"; "{\"trials\":[0]}";
      "{\"model\":{}}"; "{\"trials\":[true]}"; "{\"trials\":1,\"trials\":2}" ]

let test_http_sweep_wrong_method_405 () =
  with_state @@ fun () ->
  let resp =
    Server.Router.to_response
      (Server.Router.dispatch
         ~routes:(Server.Handlers.routes ())
         { Server.Http.meth = Server.Http.GET; target = "/sweep"; version = "HTTP/1.1";
           headers = []; body = "" })
  in
  Alcotest.(check int) "405" 405 resp.Server.Http.status

let () =
  Alcotest.run "sweep"
    [
      ( "expansion",
        [ Alcotest.test_case "cartesian order" `Quick test_expand_cartesian_order;
          Alcotest.test_case "no axes -> default cell" `Quick test_expand_defaults;
          Alcotest.test_case "empty axis -> zero cells" `Quick test_expand_empty_axis;
          Alcotest.test_case "single value pins" `Quick test_expand_single_value_pins;
          Alcotest.test_case "duplicate key rejected" `Quick
            test_expand_duplicate_key_rejected;
          Alcotest.test_case "max_cells rejected" `Quick test_expand_max_cells_rejected ]
      );
      ("axis validation (rejects)", test_axis_rejects);
      ( "axis validation (accepts)",
        [ Alcotest.test_case "model forms" `Quick test_axis_accepts_models;
          Alcotest.test_case "raw = spec" `Quick test_axis_of_raw_matches_spec ] );
      ( "canonical keys",
        [ Alcotest.test_case "itu_scale normalized out" `Quick
            test_plan_key_normalizes_itu_scale;
          Alcotest.test_case "batch key includes trials" `Quick
            test_batch_key_includes_trials ] );
      ( "execution",
        [ Alcotest.test_case "dedup counters exact" `Quick test_dedup_counters_exact;
          Alcotest.test_case "rows in cell order" `Quick test_rows_in_cell_order;
          Alcotest.test_case "jobs byte identity" `Quick test_jobs_byte_identity;
          Alcotest.test_case "shared batch rows identical" `Quick
            test_shared_batch_rows_identical;
          Alcotest.test_case "row line shape" `Quick test_row_line_shape ] );
      ( "http",
        [ Alcotest.test_case "parity with CLI" `Quick test_http_parity_with_cli;
          Alcotest.test_case "empty body -> default cell" `Quick
            test_http_empty_body_is_default_cell;
          Alcotest.test_case "empty axis -> empty stream" `Quick
            test_http_empty_axis_streams_nothing;
          Alcotest.test_case "bad grids are 400" `Quick test_http_bad_grids_are_400;
          Alcotest.test_case "GET /sweep is 405" `Quick test_http_sweep_wrong_method_405 ]
      );
    ]
