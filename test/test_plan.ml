(* Plan/legacy equivalence suite plus the regression tests that rode
   along with the Plan refactor.

   The golden values below were captured from the pre-Plan per-trial
   [Failure_model.compile] loops (same seeds, same draw order), so any
   drift in the compiled-plan sampling path — an extra RNG draw, a
   reordered summation, a changed FP expression — fails these tests. *)

open Stormsim

let network = lazy (Datasets.Cache.submarine ())

(* Polynomial hash over the dead flags: order-sensitive, so it pins the
   exact per-cable outcome, not just the count. *)
let hash_dead dead =
  Array.fold_left
    (fun acc d -> Int64.add (Int64.mul acc 1000003L) (if d then 1L else 0L))
    0L dead

let dead_count dead = Array.fold_left (fun a d -> if d then a + 1 else a) 0 dead

let check_f name expected actual = Alcotest.(check (float 1e-9)) name expected actual

type golden = {
  gname : string;
  model : Failure_model.t;
  (* one trial: master = Rng.create 1234, rng = split master, spacing 150 *)
  g_dead : int;
  g_hash : int64;
  g_cables : float;
  g_nodes : float;
  (* Montecarlo.run ~trials:7 ~seed:99, spacing 150 *)
  g_cm : float;
  g_cs : float;
  g_nm : float;
  g_ns : float;
  g_expected : float;
}

let goldens =
  [
    { gname = "uniform-0.01"; model = Failure_model.uniform 0.01;
      g_dead = 77; g_hash = 6565577062320977507L;
      g_cables = 16.382978723404257; g_nodes = 10.797743755036262;
      g_cm = 14.072948328267477; g_cs = 1.6653650494592973;
      g_nm = 7.724185564636814; g_ns = 1.590414738268267;
      g_expected = 14.199107075296238 };
    { gname = "s1"; model = Failure_model.s1;
      g_dead = 149; g_hash = -8462356478488360431L;
      g_cables = 31.702127659574469; g_nodes = 27.880741337630944;
      g_cm = 28.267477203647417; g_cs = 0.92692709312929467;
      g_nm = 22.60849545297571; g_ns = 0.9571827561177576;
      g_expected = 29.357093361245589 };
    { gname = "s2"; model = Failure_model.s2;
      g_dead = 49; g_hash = -6017019299559190757L;
      g_cables = 10.425531914893616; g_nodes = 7.3327961321514907;
      g_cm = 9.2401215805471111; g_cs = 0.95732618529018976;
      g_nm = 5.5830551398641646; g_ns = 1.1746196402738898;
      g_expected = 9.4243968085214931 };
    { gname = "s1-geomag"; model = Failure_model.s1_geomag;
      g_dead = 160; g_hash = -5830886797912768062L;
      g_cables = 34.042553191489361; g_nodes = 28.847703464947624;
      g_cm = 31.09422492401216; g_cs = 1.2324094184020238;
      g_nm = 23.644526303672155; g_ns = 1.6366518629316618;
      g_expected = 32.155066669608608 };
    (* The smart constructor for geomag tiers is not exported; build the
       variant directly with the paper's 40/60 thresholds. *)
    { gname = "geomag-tiered-custom";
      model =
        Failure_model.Geomag_tiered
          { high = 0.5; mid = 0.05; low = 0.005;
            mid_threshold = 40.0; high_threshold = 60.0 };
      g_dead = 122; g_hash = 3832297744559751336L;
      g_cables = 25.957446808510639; g_nodes = 19.661563255439162;
      g_cm = 24.498480243161094; g_cs = 1.0754897272312538;
      g_nm = 16.749165419592494; g_ns = 1.3893137415570442;
      g_expected = 24.792552546225586 };
    { gname = "carrington-physical"; model = Failure_model.carrington_physical;
      g_dead = 212; g_hash = -111982140042745036L;
      g_cables = 45.106382978723403; g_nodes = 41.176470588235297;
      g_cm = 45.471124620060792; g_cs = 2.027152826812531;
      g_nm = 40.957752964199372; g_ns = 2.5777432949977492;
      g_expected = 45.777059970156522 };
  ]

(* --- golden single trial: exact dead array, derived percentages --- *)

let test_golden_trial g () =
  let network = Lazy.force network in
  let plan = Plan.compile ~network ~model:g.model () in
  let master = Rng.create 1234 in
  let rng = Rng.split master in
  let dead = Plan.sample plan rng in
  let flags = Deadset.to_bool_array dead in
  Alcotest.(check int) "dead count" g.g_dead (dead_count flags);
  Alcotest.(check int64) "dead hash" g.g_hash (hash_dead flags);
  check_f "cables pct" g.g_cables (Montecarlo.cables_failed_pct network dead);
  check_f "nodes pct" g.g_nodes (Montecarlo.nodes_unreachable_pct network dead)

(* --- golden series: Montecarlo.run (compile+run_plan) vs history --- *)

let test_golden_series g () =
  let network = Lazy.force network in
  let s = Montecarlo.run ~trials:7 ~seed:99 ~network ~spacing_km:150.0 ~model:g.model () in
  check_f "cables mean" g.g_cm s.Montecarlo.cables_mean;
  check_f "cables std" g.g_cs s.Montecarlo.cables_std;
  check_f "nodes mean" g.g_nm s.Montecarlo.nodes_mean;
  check_f "nodes std" g.g_ns s.Montecarlo.nodes_std;
  (* run_plan on a pre-compiled plan is the same computation. *)
  let plan = Plan.compile ~network ~model:g.model () in
  let s' = Montecarlo.run_plan ~trials:7 ~seed:99 plan in
  Alcotest.(check bool) "run = run_plan" true (s = s')

(* --- closed-form expectation: plan vs wrapper vs golden, to 1e-12 --- *)

let test_golden_expected g () =
  let network = Lazy.force network in
  let plan = Plan.compile ~network ~model:g.model () in
  let e = Plan.expected_cables_failed_pct plan in
  Alcotest.(check (float 1e-12)) "expected pct" g.g_expected e;
  Alcotest.(check (float 1e-12)) "wrapper agrees" e
    (Montecarlo.expected_cables_failed_pct ~network ~spacing_km:150.0 ~model:g.model)

(* --- sample vs the reference recompute path: draw-for-draw equal --- *)

let test_sample_matches_recompute () =
  let network = Lazy.force network in
  let plan = Plan.compile ~network ~model:Failure_model.s1 () in
  let n = Plan.nb_cables plan in
  let rng_a = Rng.create 5 and rng_b = Rng.create 5 in
  let a = Deadset.create n and b = Deadset.create n in
  for trial = 1 to 5 do
    Plan.sample_into plan rng_a a;
    Plan.sample_recompute_into plan rng_b b;
    Alcotest.(check int64)
      (Printf.sprintf "trial %d identical" trial)
      (hash_dead (Deadset.to_bool_array a))
      (hash_dead (Deadset.to_bool_array b))
  done

(* --- skip-sampling goldens: its own pinned stream --- *)

(* Geometric skip-sampling draws a different (shorter) RNG stream than
   the exact per-cable path, so it gets its own golden hashes (captured
   from the first implementation; same seed discipline as the exact
   goldens: master = Rng.create 1234, rng = split master).  Models whose
   envelope saturates (death_max >= 1) delegate to the exact sampler, so
   their skip goldens deliberately equal the exact ones above. *)
let skip_goldens =
  [
    ("uniform-0.01", Failure_model.uniform 0.01, 62, 6703796285628778726L);
    ("s2", Failure_model.s2, 44, 977401448827320740L);
    ("s1", Failure_model.s1, 149, -8462356478488360431L);
    ("s1-geomag", Failure_model.s1_geomag, 160, -5830886797912768062L);
    ("carrington-physical", Failure_model.carrington_physical, 212,
     -111982140042745036L);
  ]

let test_skip_golden (gname, model, g_dead, g_hash) () =
  let network = Lazy.force network in
  let plan = Plan.compile ~network ~model () in
  let master = Rng.create 1234 in
  let rng = Rng.split master in
  let dead = Deadset.create (Plan.nb_cables plan) in
  Plan.sample_skip_into plan rng dead;
  let flags = Deadset.to_bool_array dead in
  Alcotest.(check int) (gname ^ " dead count") g_dead (dead_count flags);
  Alcotest.(check int64) (gname ^ " dead hash") g_hash (hash_dead flags)

let test_skip_par_identity () =
  (* The byte-identity contract holds on the skip path too: pre-split
     trial RNGs and ordered merge, so the job count never shows. *)
  let network = Lazy.force network in
  let plan = Plan.compile ~network ~model:(Failure_model.uniform 0.01) () in
  let trials = 7 and seed = 99 in
  let hash dead = hash_dead (Deadset.to_bool_array dead) in
  let seq =
    List.rev
      (Plan.run_trials ~sampling:`Skip plan ~trials ~seed ~init:[]
         ~f:(fun acc ~rng:_ ~dead -> hash dead :: acc))
  in
  List.iter
    (fun jobs ->
      let par =
        List.rev
          (Plan.run_trials_par ~jobs ~sampling:`Skip plan ~trials ~seed ~init:[]
             ~map:(fun ~rng:_ ~dead -> hash dead)
             ~merge:(fun acc h -> h :: acc))
      in
      Alcotest.(check (list int64))
        (Printf.sprintf "skip path: jobs=%d = seq" jobs)
        seq par)
    [ 1; 2; 4 ]

let test_compile_validates () =
  let network = Lazy.force network in
  Alcotest.check_raises "spacing <= 0"
    (Invalid_argument "Plan.compile: spacing_km <= 0")
    (fun () -> ignore (Plan.compile ~spacing_km:0.0 ~network ~model:Failure_model.s1 ()));
  let plan = Plan.compile ~network ~model:Failure_model.s1 () in
  Alcotest.check_raises "trials <= 0"
    (Invalid_argument "Plan.run_trials: trials <= 0")
    (fun () ->
      ignore (Plan.run_trials plan ~trials:0 ~seed:1 ~init:() ~f:(fun () ~rng:_ ~dead:_ -> ())))

(* --- Recovery.storm_recovery returns the median trial's curve --- *)

let test_recovery_median_series () =
  let network = Lazy.force network in
  let model = Failure_model.s2 in
  let trials = 5 and seed = 7 in
  let combined, _ = Recovery.storm_recovery ~trials ~seed ~network ~model () in
  (* Replay the same trials and pick the median-by-days_to_90_pct curve
     ourselves (lower median, ties by trial order). *)
  let p = Plan.compile ~network ~model () in
  let tls =
    List.rev
      (Plan.run_trials p ~trials ~seed ~init:[] ~f:(fun acc ~rng:_ ~dead ->
           Recovery.plan ~network ~dead:(Deadset.to_bool_array dead) () :: acc))
  in
  let sorted =
    List.sort compare
      (List.mapi (fun i t -> (t.Recovery.days_to_90_pct, i)) tls)
  in
  let _, median_idx = List.nth sorted ((trials - 1) / 2) in
  let median = List.nth tls median_idx in
  Alcotest.(check bool) "series is the median trial's" true
    (combined.Recovery.series = median.Recovery.series);
  (* The scalar summary is still the mean over trials, not the median's. *)
  check_f "days_to_90 is the mean"
    (Stats.mean (List.map (fun t -> t.Recovery.days_to_90_pct) tls))
    combined.Recovery.days_to_90_pct

(* --- Traffic.route: the overload baseline belongs to *this* network --- *)

let node id name country ~lat ~lon =
  { Infra.Network.id; name; country; pos = Geo.Coord.make ~lat ~lon }

let cable id name a pa b pb =
  Infra.Cable.make ~id ~name ~kind:Infra.Cable.Submarine ~landings:[ (a, pa); (b, pb) ] ()

(* One landing station per continent, addressed by representative
   coordinates so [continent_of_nearest] resolves them. *)
let paris = Geo.Coord.make ~lat:48.86 ~lon:2.35 (* Europe *)
let lagos = Geo.Coord.make ~lat:6.5 ~lon:3.4 (* Africa *)
let new_york = Geo.Coord.make ~lat:40.7 ~lon:(-74.0) (* North America *)
let sao_paulo = Geo.Coord.make ~lat:(-23.5) ~lon:(-46.6) (* South America *)
let mumbai = Geo.Coord.make ~lat:19.0 ~lon:72.8 (* Asia *)

(* Big network: one fat Asia-Europe trunk; its healthy peak load (the
   Asia-Europe demand) dwarfs anything the small network below carries. *)
let big_network =
  Infra.Network.create ~name:"big"
    ~nodes:[ node 0 "mumbai" "IN" ~lat:19.0 ~lon:72.8;
             node 1 "paris" "FR" ~lat:48.86 ~lon:2.35 ]
    ~cables:[ cable 0 "asia-europe" 0 mumbai 1 paris ]

(* Small network: a 4-clique over Europe/Africa/NA/SA.  Killing the two
   Europe spokes to NA and SA reroutes their demand through Africa, and
   the Europe-Africa cable ends up above twice its own healthy peak. *)
let small_network =
  Infra.Network.create ~name:"small"
    ~nodes:[ node 0 "paris" "FR" ~lat:48.86 ~lon:2.35;
             node 1 "lagos" "NG" ~lat:6.5 ~lon:3.4;
             node 2 "new-york" "US" ~lat:40.7 ~lon:(-74.0);
             node 3 "sao-paulo" "BR" ~lat:(-23.5) ~lon:(-46.6) ]
    ~cables:[ cable 0 "eu-af" 0 paris 1 lagos;
              cable 1 "eu-na" 0 paris 2 new_york;
              cable 2 "eu-sa" 0 paris 3 sao_paulo;
              cable 3 "af-na" 1 lagos 2 new_york;
              cable 4 "af-sa" 1 lagos 3 sao_paulo;
              cable 5 "na-sa" 2 new_york 3 sao_paulo ]

let test_traffic_baseline_per_network () =
  let demands = Traffic.gravity_demands () in
  (* Route the big network first: under the old global memo this planted
     a stale, oversized baseline for every later call. *)
  let big = Traffic.route ~network:big_network ~demands () in
  Alcotest.(check bool) "big network carries load" true (big.Traffic.max_cable_load > 0.0);
  let dead = Array.make 6 false in
  dead.(1) <- true;
  dead.(2) <- true;
  let storm = Traffic.route ~dead ~network:small_network ~demands () in
  (* Europe-Africa now carries EU-AF + EU-NA + EU-SA demand — more than
     twice the small network's own healthy peak (the EU-AF demand), but
     far below twice the big network's peak.  The stale-memo bug reported
     0 here. *)
  Alcotest.(check int) "overload vs own baseline" 1 storm.Traffic.overloaded_cables;
  (* An explicit oversized baseline still suppresses the overload count. *)
  let suppressed =
    Traffic.route ~dead ~baseline_max:big.Traffic.max_cable_load ~network:small_network
      ~demands ()
  in
  Alcotest.(check int) "explicit baseline wins" 0 suppressed.Traffic.overloaded_cables;
  (* Order independence: a fresh healthy small-network routing reports the
     same peak the storm call derived its baseline from. *)
  let healthy = Traffic.route ~network:small_network ~demands () in
  Alcotest.(check bool) "healthy small peak < storm load" true
    (2.0 *. healthy.Traffic.max_cable_load < storm.Traffic.max_cable_load)

(* --- Distribution.mass_above derives bin widths from the grid --- *)

let test_mass_above_nonuniform_grid () =
  let s : Distribution.pdf_series =
    { label = "synthetic"; points = [ (0.0, 1.0); (10.0, 2.0); (30.0, 0.5); (50.0, 0.25) ] }
  in
  (* Widths: 10 (edge), (30-0)/2 = 15, (50-10)/2 = 20, 20 (edge).
     Above 20: 0.5*20 + 0.25*20 = 15. *)
  check_f "non-uniform widths" 15.0 (Distribution.mass_above s ~threshold:20.0);
  (* On a uniform 2-degree grid the estimate reduces to density * 2. *)
  let uniform : Distribution.pdf_series =
    { label = "uniform"; points = [ (37.0, 0.1); (39.0, 0.2); (41.0, 0.4); (43.0, 0.8) ] }
  in
  check_f "uniform 2-degree grid" ((0.4 +. 0.8) *. 2.0)
    (Distribution.mass_above uniform ~threshold:40.0);
  let empty : Distribution.pdf_series = { label = "empty"; points = [] } in
  check_f "empty series" 0.0 (Distribution.mass_above empty ~threshold:0.0)

(* --- Datasets.Cache memoizes per parameter tuple --- *)

let test_cache_memoizes () =
  Datasets.Cache.clear ();
  Alcotest.(check int) "cleared" 0 (Datasets.Cache.build_count ());
  let a = Datasets.Cache.submarine () in
  Alcotest.(check int) "first build" 1 (Datasets.Cache.build_count ());
  let b = Datasets.Cache.submarine () in
  Alcotest.(check int) "hit, no rebuild" 1 (Datasets.Cache.build_count ());
  Alcotest.(check bool) "same physical value" true (a == b);
  let c = Datasets.Cache.submarine ~seed:43 () in
  Alcotest.(check int) "different seed misses" 2 (Datasets.Cache.build_count ());
  Alcotest.(check bool) "different value" true (c != a);
  ignore (Datasets.Cache.intertubes ());
  Alcotest.(check int) "other dataset misses" 3 (Datasets.Cache.build_count ());
  ignore (Datasets.Cache.intertubes ());
  Alcotest.(check int) "other dataset hits" 3 (Datasets.Cache.build_count ())

let () =
  let per_model mk =
    List.map (fun g -> Alcotest.test_case g.gname `Quick (mk g)) goldens
  in
  Alcotest.run "plan"
    [
      ("golden trial", per_model test_golden_trial);
      ("golden series", per_model test_golden_series);
      ("golden expected", per_model test_golden_expected);
      ( "engine",
        [ Alcotest.test_case "sample = recompute" `Quick test_sample_matches_recompute;
          Alcotest.test_case "validation" `Quick test_compile_validates ] );
      ( "skip sampling",
        List.map
          (fun (gname, _, _, _ as g) ->
            Alcotest.test_case gname `Quick (test_skip_golden g))
          skip_goldens
        @ [ Alcotest.test_case "par = seq on skip path" `Quick test_skip_par_identity ] );
      ( "satellites",
        [ Alcotest.test_case "recovery median series" `Quick test_recovery_median_series;
          Alcotest.test_case "traffic per-network baseline" `Quick
            test_traffic_baseline_per_network;
          Alcotest.test_case "mass_above grids" `Quick test_mass_above_nonuniform_grid;
          Alcotest.test_case "dataset cache" `Quick test_cache_memoizes ] );
    ]
