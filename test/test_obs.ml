(* Tests for the Obs observability layer: metric arithmetic, histogram
   bucket boundaries, span nesting under a fake clock, exporter golden
   output, and the no-interference guarantee (instrumented Monte-Carlo
   runs are bit-identical to uninstrumented ones). *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0

(* Every test starts from a clean, enabled slate and leaves the layer off
   so test order never matters. *)
let with_obs_enabled f =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ();
      Obs.Span.set_clock Obs.Clock.monotonic)
    f

(* --- metric arithmetic --- *)

let test_counter_arithmetic () =
  with_obs_enabled @@ fun () ->
  let c = Obs.Metrics.counter "test.counter" in
  Obs.Metrics.incr c;
  Obs.Metrics.incr c;
  Obs.Metrics.add c 40;
  (match List.assoc "test.counter" (Obs.Metrics.snapshot ()) with
  | Obs.Metrics.Counter n -> Alcotest.(check int) "counter" 42 n
  | _ -> Alcotest.fail "not a counter");
  Obs.Metrics.reset ();
  match List.assoc "test.counter" (Obs.Metrics.snapshot ()) with
  | Obs.Metrics.Counter n -> Alcotest.(check int) "reset" 0 n
  | _ -> Alcotest.fail "not a counter"

let test_counter_disabled_is_noop () =
  Obs.reset ();
  Obs.disable ();
  let c = Obs.Metrics.counter "test.disabled" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 10;
  match List.assoc "test.disabled" (Obs.Metrics.snapshot ()) with
  | Obs.Metrics.Counter n -> Alcotest.(check int) "stays zero" 0 n
  | _ -> Alcotest.fail "not a counter"

let test_gauge_set () =
  with_obs_enabled @@ fun () ->
  let g = Obs.Metrics.gauge "test.gauge" in
  Obs.Metrics.set g 1.5;
  Obs.Metrics.set g 2.5;
  match List.assoc "test.gauge" (Obs.Metrics.snapshot ()) with
  | Obs.Metrics.Gauge v -> Alcotest.(check (float 1e-9)) "last write wins" 2.5 v
  | _ -> Alcotest.fail "not a gauge"

let test_kind_clash_rejected () =
  with_obs_enabled @@ fun () ->
  let (_ : Obs.Metrics.counter) = Obs.Metrics.counter "test.clash" in
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument "Obs.Metrics: test.clash registered with another kind") (fun () ->
      ignore (Obs.Metrics.gauge "test.clash"))

(* --- histogram buckets --- *)

let test_histogram_bucket_boundaries () =
  with_obs_enabled @@ fun () ->
  let h = Obs.Metrics.histogram "test.hist" ~buckets:[| 1.0; 10.0; 100.0 |] in
  (* On-boundary values land in the bucket they bound (le semantics). *)
  List.iter (Obs.Metrics.observe h) [ 0.5; 1.0; 1.0001; 10.0; 99.9; 100.0; 100.1; 1e9 ];
  match List.assoc "test.hist" (Obs.Metrics.snapshot ()) with
  | Obs.Metrics.Histogram { bounds; counts; sum; count } ->
      Alcotest.(check (array (float 1e-9))) "bounds" [| 1.0; 10.0; 100.0 |] bounds;
      Alcotest.(check (array int)) "counts" [| 2; 2; 2; 2 |] counts;
      Alcotest.(check int) "count" 8 count;
      Alcotest.(check (float 1e-3)) "sum" (0.5 +. 1.0 +. 1.0001 +. 10.0 +. 99.9 +. 100.0 +. 100.1 +. 1e9) sum
  | _ -> Alcotest.fail "not a histogram"

let test_histogram_rejects_bad_buckets () =
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Obs.Metrics.histogram: bucket bounds must increase strictly")
    (fun () -> ignore (Obs.Metrics.histogram "test.hist.bad" ~buckets:[| 1.0; 1.0 |]))

(* --- merge --- *)

let test_merge () =
  with_obs_enabled @@ fun () ->
  let c = Obs.Metrics.counter "m.c" in
  let h = Obs.Metrics.histogram "m.h" ~buckets:[| 1.0; 2.0 |] in
  Obs.Metrics.incr c;
  Obs.Metrics.observe h 0.5;
  let a = Obs.Metrics.snapshot () in
  Obs.Metrics.reset ();
  Obs.Metrics.add c 2;
  Obs.Metrics.observe h 1.5;
  Obs.Metrics.observe h 5.0;
  let b = Obs.Metrics.snapshot () in
  let m = Obs.Metrics.merge a b in
  (match List.assoc "m.c" m with
  | Obs.Metrics.Counter n -> Alcotest.(check int) "counters add" 3 n
  | _ -> Alcotest.fail "not a counter");
  match List.assoc "m.h" m with
  | Obs.Metrics.Histogram { counts; count; _ } ->
      Alcotest.(check (array int)) "bucketwise add" [| 1; 1; 1 |] counts;
      Alcotest.(check int) "count" 3 count
  | _ -> Alcotest.fail "not a histogram"

(* --- spans --- *)

let test_nested_spans_fake_clock () =
  with_obs_enabled @@ fun () ->
  Obs.Span.set_clock (Obs.Clock.fake ~start:0L ~step:100L ());
  let r =
    Obs.Span.with_ ~name:"outer" (fun () ->
        Obs.Span.with_ ~name:"inner" (fun () -> 7))
  in
  Alcotest.(check int) "value threads through" 7 r;
  let evs = Obs.Span.events () in
  let shape =
    List.map
      (fun (e : Obs.Span.event) ->
        Printf.sprintf "%s %s %Ld d%d" e.Obs.Span.name
          (match e.Obs.Span.phase with Obs.Span.Begin -> "B" | Obs.Span.End -> "E")
          e.Obs.Span.t_ns e.Obs.Span.depth)
      evs
  in
  Alcotest.(check (list string))
    "begin/end nesting with ticking clock"
    [ "outer B 0 d0"; "inner B 100 d1"; "inner E 200 d1"; "outer E 300 d0" ]
    shape;
  let sums = Obs.Span.summarize evs in
  Alcotest.(check int) "two span names" 2 (List.length sums);
  let outer = List.find (fun s -> s.Obs.Span.span_name = "outer") sums in
  let inner = List.find (fun s -> s.Obs.Span.span_name = "inner") sums in
  Alcotest.(check int64) "outer total" 300L outer.Obs.Span.total_ns;
  Alcotest.(check int64) "inner total" 100L inner.Obs.Span.total_ns

let test_span_end_recorded_on_raise () =
  with_obs_enabled @@ fun () ->
  Obs.Span.set_clock (Obs.Clock.fake ());
  (try Obs.Span.with_ ~name:"boom" (fun () -> failwith "x") with Failure _ -> ());
  let evs = Obs.Span.events () in
  Alcotest.(check int) "begin and end" 2 (List.length evs);
  match List.rev evs with
  | last :: _ ->
      Alcotest.(check bool) "last is End" true (last.Obs.Span.phase = Obs.Span.End)
  | [] -> Alcotest.fail "no events"

let test_span_ring_overflow () =
  with_obs_enabled @@ fun () ->
  Obs.Span.set_capacity 8;
  Fun.protect ~finally:(fun () -> Obs.Span.set_capacity 65_536) @@ fun () ->
  Obs.Span.set_clock (Obs.Clock.fake ());
  for _ = 1 to 10 do
    Obs.Span.with_ ~name:"tick" (fun () -> ())
  done;
  Alcotest.(check int) "ring keeps capacity" 8 (List.length (Obs.Span.events ()));
  Alcotest.(check int) "dropped counts overflow" 12 (Obs.Span.dropped ())

let test_disabled_span_records_nothing () =
  Obs.reset ();
  Obs.disable ();
  let r = Obs.Span.with_ ~name:"off" (fun () -> 3) in
  Alcotest.(check int) "passthrough" 3 r;
  Alcotest.(check int) "no events" 0 (List.length (Obs.Span.events ()))

(* --- exporters (golden output) --- *)

let test_jsonl_golden () =
  with_obs_enabled @@ fun () ->
  Obs.Span.set_clock (Obs.Clock.fake ~start:5L ~step:10L ());
  Obs.Span.with_ ~name:"a.b" (fun () -> ());
  Alcotest.(check string) "jsonl"
    "{\"name\":\"a.b\",\"ph\":\"B\",\"ts_ns\":5,\"depth\":0}\n\
     {\"name\":\"a.b\",\"ph\":\"E\",\"ts_ns\":15,\"depth\":0}\n"
    (Obs.Export.jsonl (Obs.Span.events ()))

let test_prometheus_golden () =
  with_obs_enabled @@ fun () ->
  let c = Obs.Metrics.counter "gold.count" in
  let h = Obs.Metrics.histogram "gold.hist" ~buckets:[| 1.0; 2.0 |] in
  Obs.Metrics.add c 3;
  Obs.Metrics.observe h 0.5;
  Obs.Metrics.observe h 1.5;
  Obs.Metrics.observe h 9.0;
  let snap =
    List.filter (fun (n, _) -> n = "gold.count" || n = "gold.hist") (Obs.Metrics.snapshot ())
  in
  Alcotest.(check string) "prometheus text"
    "# TYPE gold_count counter\n\
     gold_count 3\n\
     # TYPE gold_hist histogram\n\
     gold_hist_bucket{le=\"1.0\"} 1\n\
     gold_hist_bucket{le=\"2.0\"} 2\n\
     gold_hist_bucket{le=\"+Inf\"} 3\n\
     gold_hist_sum 11.0\n\
     gold_hist_count 3\n"
    (Obs.Export.prometheus snap)

let test_json_snapshot_golden () =
  with_obs_enabled @@ fun () ->
  let c = Obs.Metrics.counter "gold.count" in
  Obs.Metrics.add c 3;
  let snap = List.filter (fun (n, _) -> n = "gold.count") (Obs.Metrics.snapshot ()) in
  Alcotest.(check string) "json object" "{\"gold.count\":3}" (Obs.Export.json_of_snapshot snap)

let test_report_table () =
  with_obs_enabled @@ fun () ->
  Obs.Span.set_clock (Obs.Clock.fake ());
  let c = Obs.Metrics.counter "table.counter" in
  Obs.Metrics.add c 5;
  Obs.Span.with_ ~name:"table.span" (fun () -> ());
  let out = Report.Obs_report.render ~events:(Obs.Span.events ()) (Obs.Metrics.snapshot ()) in
  Alcotest.(check bool) "metric row" true (contains out "table.counter");
  Alcotest.(check bool) "metric value" true (contains out "5");
  Alcotest.(check bool) "span row" true (contains out "table.span");
  Alcotest.(check bool) "header" true (contains out "metric")

(* --- instrumented pipeline --- *)

let test_montecarlo_metrics_flow () =
  with_obs_enabled @@ fun () ->
  let network = Datasets.Submarine.build ~seed:7 () in
  let (_ : Stormsim.Montecarlo.series) =
    Stormsim.Montecarlo.run ~trials:4 ~seed:7 ~network ~spacing_km:150.0
      ~model:Stormsim.Failure_model.s1 ()
  in
  (match List.assoc "mc.trials_total" (Obs.Metrics.snapshot ()) with
  | Obs.Metrics.Counter n -> Alcotest.(check int) "trials counted" 4 n
  | _ -> Alcotest.fail "not a counter");
  (match List.assoc "rng.draws" (Obs.Metrics.snapshot ()) with
  | Obs.Metrics.Counter n -> Alcotest.(check bool) "rng draws counted" true (n > 0)
  | _ -> Alcotest.fail "not a counter");
  let names =
    List.sort_uniq String.compare
      (List.map (fun (e : Obs.Span.event) -> e.Obs.Span.name) (Obs.Span.events ()))
  in
  Alcotest.(check bool) "mc.run span" true (List.mem "mc.run" names);
  Alcotest.(check bool) "mc.trial span" true (List.mem "mc.trial" names);
  Alcotest.(check bool) "fm.compile span" true (List.mem "fm.compile" names)

let test_montecarlo_determinism_under_instrumentation () =
  Obs.reset ();
  Obs.disable ();
  let network = Datasets.Submarine.build ~seed:11 () in
  let run () =
    Stormsim.Montecarlo.run ~trials:6 ~seed:11 ~network ~spacing_km:150.0
      ~model:Stormsim.Failure_model.s2 ()
  in
  let plain = run () in
  let instrumented = with_obs_enabled run in
  let again = run () in
  Alcotest.(check bool) "instrumented run bit-identical" true (plain = instrumented);
  Alcotest.(check bool) "disabled-again run bit-identical" true (plain = again)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [ Alcotest.test_case "counter arithmetic" `Quick test_counter_arithmetic;
          Alcotest.test_case "disabled no-op" `Quick test_counter_disabled_is_noop;
          Alcotest.test_case "gauge" `Quick test_gauge_set;
          Alcotest.test_case "kind clash" `Quick test_kind_clash_rejected;
          Alcotest.test_case "histogram boundaries" `Quick test_histogram_bucket_boundaries;
          Alcotest.test_case "histogram bad buckets" `Quick test_histogram_rejects_bad_buckets;
          Alcotest.test_case "merge" `Quick test_merge ] );
      ( "spans",
        [ Alcotest.test_case "nesting under fake clock" `Quick test_nested_spans_fake_clock;
          Alcotest.test_case "end on raise" `Quick test_span_end_recorded_on_raise;
          Alcotest.test_case "ring overflow" `Quick test_span_ring_overflow;
          Alcotest.test_case "disabled records nothing" `Quick test_disabled_span_records_nothing ] );
      ( "exporters",
        [ Alcotest.test_case "jsonl golden" `Quick test_jsonl_golden;
          Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
          Alcotest.test_case "json snapshot golden" `Quick test_json_snapshot_golden;
          Alcotest.test_case "report table" `Quick test_report_table ] );
      ( "pipeline",
        [ Alcotest.test_case "montecarlo metrics" `Quick test_montecarlo_metrics_flow;
          Alcotest.test_case "determinism" `Quick test_montecarlo_determinism_under_instrumentation ] );
    ]
