(* Tests for the Obs observability layer: metric arithmetic, histogram
   bucket boundaries, span nesting under a fake clock, exporter golden
   output, and the no-interference guarantee (instrumented Monte-Carlo
   runs are bit-identical to uninstrumented ones). *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0

(* Every test starts from a clean, enabled slate and leaves the layer off
   so test order never matters. *)
let with_obs_enabled f =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ();
      Obs.Span.set_clock Obs.Clock.monotonic)
    f

(* --- metric arithmetic --- *)

let test_counter_arithmetic () =
  with_obs_enabled @@ fun () ->
  let c = Obs.Metrics.counter "test.counter" in
  Obs.Metrics.incr c;
  Obs.Metrics.incr c;
  Obs.Metrics.add c 40;
  (match List.assoc "test.counter" (Obs.Metrics.snapshot ()) with
  | Obs.Metrics.Counter n -> Alcotest.(check int) "counter" 42 n
  | _ -> Alcotest.fail "not a counter");
  Obs.Metrics.reset ();
  match List.assoc "test.counter" (Obs.Metrics.snapshot ()) with
  | Obs.Metrics.Counter n -> Alcotest.(check int) "reset" 0 n
  | _ -> Alcotest.fail "not a counter"

let test_shard_dispersion () =
  (* Counter shards are picked by a multiplicative hash of the domain id.
     The old pick was the raw id masked, so the acceptor (domain 0), the
     first server worker (domain 1) and the pool workers all collided on
     the same few adjacent shards.  Pin the properties the hash must
     keep: in-range, deterministic, and sequential ids spread over most
     of the shard space. *)
  let shards = List.init 64 Obs.Metrics.shard_of_id in
  List.iter
    (fun s -> Alcotest.(check bool) "in range" true (s >= 0 && s < 8))
    shards;
  Alcotest.(check int) "deterministic" (Obs.Metrics.shard_of_id 5)
    (Obs.Metrics.shard_of_id 5);
  let distinct = List.length (List.sort_uniq Int.compare shards) in
  Alcotest.(check bool) "64 sequential ids cover most shards" true (distinct >= 6)

let test_counter_sharded_contention () =
  (* The exactness contract under real contention: four domains hammer
     one counter concurrently; the snapshot total must be the exact sum,
     not approximately it. *)
  with_obs_enabled @@ fun () ->
  let c = Obs.Metrics.counter "test.contended" in
  let per_domain = 10_000 and domains = 4 in
  let workers =
    Array.init domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Obs.Metrics.incr c
            done))
  in
  Array.iter Domain.join workers;
  match List.assoc "test.contended" (Obs.Metrics.snapshot ()) with
  | Obs.Metrics.Counter n ->
      Alcotest.(check int) "exact under contention" (per_domain * domains) n
  | _ -> Alcotest.fail "not a counter"

let test_counter_disabled_is_noop () =
  Obs.reset ();
  Obs.disable ();
  let c = Obs.Metrics.counter "test.disabled" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 10;
  match List.assoc "test.disabled" (Obs.Metrics.snapshot ()) with
  | Obs.Metrics.Counter n -> Alcotest.(check int) "stays zero" 0 n
  | _ -> Alcotest.fail "not a counter"

let test_gauge_set () =
  with_obs_enabled @@ fun () ->
  let g = Obs.Metrics.gauge "test.gauge" in
  Obs.Metrics.set g 1.5;
  Obs.Metrics.set g 2.5;
  match List.assoc "test.gauge" (Obs.Metrics.snapshot ()) with
  | Obs.Metrics.Gauge v -> Alcotest.(check (float 1e-9)) "last write wins" 2.5 v
  | _ -> Alcotest.fail "not a gauge"

let test_kind_clash_rejected () =
  with_obs_enabled @@ fun () ->
  let (_ : Obs.Metrics.counter) = Obs.Metrics.counter "test.clash" in
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument "Obs.Metrics: test.clash registered with another kind") (fun () ->
      ignore (Obs.Metrics.gauge "test.clash"))

(* --- histogram buckets --- *)

let test_histogram_bucket_boundaries () =
  with_obs_enabled @@ fun () ->
  let h = Obs.Metrics.histogram "test.hist" ~buckets:[| 1.0; 10.0; 100.0 |] in
  (* On-boundary values land in the bucket they bound (le semantics). *)
  List.iter (Obs.Metrics.observe h) [ 0.5; 1.0; 1.0001; 10.0; 99.9; 100.0; 100.1; 1e9 ];
  match List.assoc "test.hist" (Obs.Metrics.snapshot ()) with
  | Obs.Metrics.Histogram { bounds; counts; sum; count } ->
      Alcotest.(check (array (float 1e-9))) "bounds" [| 1.0; 10.0; 100.0 |] bounds;
      Alcotest.(check (array int)) "counts" [| 2; 2; 2; 2 |] counts;
      Alcotest.(check int) "count" 8 count;
      Alcotest.(check (float 1e-3)) "sum" (0.5 +. 1.0 +. 1.0001 +. 10.0 +. 99.9 +. 100.0 +. 100.1 +. 1e9) sum
  | _ -> Alcotest.fail "not a histogram"

let test_histogram_rejects_bad_buckets () =
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Obs.Metrics.histogram: bucket bounds must increase strictly")
    (fun () -> ignore (Obs.Metrics.histogram "test.hist.bad" ~buckets:[| 1.0; 1.0 |]))

(* --- merge --- *)

let test_merge () =
  with_obs_enabled @@ fun () ->
  let c = Obs.Metrics.counter "m.c" in
  let h = Obs.Metrics.histogram "m.h" ~buckets:[| 1.0; 2.0 |] in
  Obs.Metrics.incr c;
  Obs.Metrics.observe h 0.5;
  let a = Obs.Metrics.snapshot () in
  Obs.Metrics.reset ();
  Obs.Metrics.add c 2;
  Obs.Metrics.observe h 1.5;
  Obs.Metrics.observe h 5.0;
  let b = Obs.Metrics.snapshot () in
  let m = Obs.Metrics.merge a b in
  (match List.assoc "m.c" m with
  | Obs.Metrics.Counter n -> Alcotest.(check int) "counters add" 3 n
  | _ -> Alcotest.fail "not a counter");
  match List.assoc "m.h" m with
  | Obs.Metrics.Histogram { counts; count; _ } ->
      Alcotest.(check (array int)) "bucketwise add" [| 1; 1; 1 |] counts;
      Alcotest.(check int) "count" 3 count
  | _ -> Alcotest.fail "not a histogram"

(* --- histogram quantile estimation --- *)

let test_quantile_empty_is_none () =
  let bounds = [| 1.0; 2.0 |] and counts = [| 0; 0; 0 |] in
  List.iter
    (fun q ->
      Alcotest.(check (option (float 1e-9)))
        (Printf.sprintf "empty q=%g" q) None
        (Obs.Metrics.quantile ~bounds ~counts q))
    [ 0.0; 0.5; 1.0 ]

let test_quantile_single_observation () =
  (* One observation in the (50, 100] bucket: every quantile interpolates
     inside that bucket under the uniform-within-bucket assumption. *)
  let bounds = [| 25.0; 50.0; 100.0 |] and counts = [| 0; 0; 1; 0 |] in
  let q v = Obs.Metrics.quantile ~bounds ~counts v in
  Alcotest.(check (option (float 1e-9))) "p50 mid-bucket" (Some 75.0) (q 0.5);
  Alcotest.(check (option (float 1e-9))) "p0 bucket floor" (Some 50.0) (q 0.0);
  Alcotest.(check (option (float 1e-9))) "p100 bucket top" (Some 100.0) (q 1.0)

let test_quantile_overflow_collapses () =
  (* Everything past the last finite bound: the histogram knows nothing
     about the tail, so the estimate is the last bound itself. *)
  let bounds = [| 1.0; 2.0 |] and counts = [| 0; 0; 5 |] in
  List.iter
    (fun v ->
      Alcotest.(check (option (float 1e-9)))
        (Printf.sprintf "overflow q=%g" v) (Some 2.0)
        (Obs.Metrics.quantile ~bounds ~counts v))
    [ 0.5; 0.99 ]

let test_quantile_interpolates_within_bucket () =
  (* First bucket interpolates from 0 (latency histograms have no
     negative observations)... *)
  let q1 = Obs.Metrics.quantile ~bounds:[| 10.0 |] ~counts:[| 4; 0 |] in
  Alcotest.(check (option (float 1e-9))) "first bucket p50" (Some 5.0) (q1 0.5);
  Alcotest.(check (option (float 1e-9))) "first bucket p25" (Some 2.5) (q1 0.25);
  (* ... later buckets from their lower bound. *)
  let q2 = Obs.Metrics.quantile ~bounds:[| 10.0; 20.0 |] ~counts:[| 2; 2; 0 |] in
  Alcotest.(check (option (float 1e-9))) "middle bucket p75" (Some 15.0) (q2 0.75);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Obs.Metrics.quantile: q outside [0, 1]") (fun () ->
      ignore (q2 1.5));
  Alcotest.check_raises "shape mismatch"
    (Invalid_argument "Obs.Metrics.quantile: counts length must be bounds length + 1")
    (fun () -> ignore (Obs.Metrics.quantile ~bounds:[| 1.0 |] ~counts:[| 1 |] 0.5))

let exact_quantile sorted q =
  (* Linear interpolation over n-1 intervals — the loadgen convention. *)
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = min (n - 1) (lo + 1) in
  sorted.(lo) +. ((pos -. float_of_int lo) *. (sorted.(hi) -. sorted.(lo)))

let test_quantile_tracks_exact_on_sample () =
  with_obs_enabled @@ fun () ->
  (* A seeded LCG sample in [0, 100): the bucket estimate must stay
     within one bucket width of the exact sample quantile. *)
  let bounds = Array.init 20 (fun i -> 5.0 *. float_of_int (i + 1)) in
  let h = Obs.Metrics.histogram "q.sample" ~buckets:bounds in
  let state = ref 12345 in
  let sample =
    Array.init 200 (fun _ ->
        state := ((!state * 1103515245) + 12347) land 0x3FFFFFFF;
        float_of_int (!state mod 10_000) /. 100.0)
  in
  Array.iter (Obs.Metrics.observe h) sample;
  let sorted = Array.copy sample in
  Array.sort compare sorted;
  match List.assoc "q.sample" (Obs.Metrics.snapshot ()) with
  | Obs.Metrics.Histogram { bounds; counts; _ } ->
      List.iter
        (fun q ->
          match Obs.Metrics.quantile ~bounds ~counts q with
          | None -> Alcotest.fail "estimate missing"
          | Some est ->
              let exact = exact_quantile sorted q in
              Alcotest.(check bool)
                (Printf.sprintf "q=%g est %.2f vs exact %.2f" q est exact)
                true
                (Float.abs (est -. exact) <= 5.0))
        [ 0.5; 0.9; 0.95; 0.99 ]
  | _ -> Alcotest.fail "not a histogram"

(* --- structured log --- *)

let with_log_captured f =
  let buf = Buffer.create 256 in
  Obs.Log.enable ();
  Obs.Log.set_sink (Buffer.add_string buf);
  Obs.Log.set_clock (Obs.Clock.fake ~start:42L ~step:1L ());
  Fun.protect
    ~finally:(fun () ->
      Obs.Log.disable ();
      Obs.Log.set_level Obs.Log.Debug;
      Obs.Log.set_clock Obs.Clock.monotonic;
      Obs.Log.set_sink (fun s ->
          output_string stderr s;
          flush stderr))
    (fun () -> f buf)

let test_log_line_golden () =
  with_log_captured @@ fun buf ->
  Obs.Log.info "http.access"
    [
      ("method", Obs.Json.String "GET");
      ("status", Obs.Json.Number 200.0);
      ("dur_ms", Obs.Json.Number 1.5);
    ];
  let line = Buffer.contents buf in
  Alcotest.(check string) "exact line"
    "{\"ts_ns\":42,\"level\":\"info\",\"event\":\"http.access\",\"method\":\"GET\",\"status\":200,\"dur_ms\":1.5}\n"
    line;
  (* Every emitted line must parse back with the JSON reader. *)
  match Obs.Json.parse (String.trim line) with
  | Error e -> Alcotest.fail ("unparseable log line: " ^ e)
  | Ok doc ->
      Alcotest.(check (option string)) "event" (Some "http.access")
        (Option.bind (Obs.Json.member "event" doc) Obs.Json.string_);
      Alcotest.(check (option (float 1e-9))) "status" (Some 200.0)
        (Option.bind (Obs.Json.member "status" doc) Obs.Json.number)

let test_log_disabled_is_silent () =
  let buf = Buffer.create 16 in
  Obs.Log.disable ();
  Obs.Log.set_sink (Buffer.add_string buf);
  Fun.protect
    ~finally:(fun () ->
      Obs.Log.set_sink (fun s ->
          output_string stderr s;
          flush stderr))
    (fun () ->
      Obs.Log.info "hidden" [];
      Obs.Log.error "also hidden" [ ("k", Obs.Json.Null) ];
      Alcotest.(check string) "no output" "" (Buffer.contents buf))

let test_log_level_filter () =
  with_log_captured @@ fun buf ->
  Obs.Log.set_level Obs.Log.Warn;
  Obs.Log.debug "d" [];
  Obs.Log.info "i" [];
  Obs.Log.warn "w" [];
  Obs.Log.error "e" [];
  let out = Buffer.contents buf in
  Alcotest.(check bool) "debug dropped" false (contains out "\"event\":\"d\"");
  Alcotest.(check bool) "info dropped" false (contains out "\"event\":\"i\"");
  Alcotest.(check bool) "warn kept" true (contains out "\"level\":\"warn\",\"event\":\"w\"");
  Alcotest.(check bool) "error kept" true (contains out "\"level\":\"error\",\"event\":\"e\"")

let test_log_carries_trace_context () =
  with_log_captured @@ fun buf ->
  Obs.Span.with_trace "abc123def4567890" (fun () -> Obs.Log.info "traced" []);
  Obs.Log.info "untraced" [];
  let out = Buffer.contents buf in
  Alcotest.(check bool) "trace field" true
    (contains out "\"event\":\"traced\",\"trace\":\"abc123def4567890\"");
  Alcotest.(check bool) "no stale trace" false
    (contains out "\"event\":\"untraced\",\"trace\"")

(* --- trace context --- *)

let test_with_trace_tags_spans () =
  with_obs_enabled @@ fun () ->
  Obs.Span.set_clock (Obs.Clock.fake ~start:0L ~step:100L ());
  Obs.Span.with_ ~name:"before" (fun () -> ());
  Obs.Span.with_trace "t1" (fun () -> Obs.Span.with_ ~name:"req" (fun () -> ()));
  let traces =
    List.map (fun (e : Obs.Span.event) -> (e.Obs.Span.name, e.Obs.Span.trace))
      (Obs.Span.events ())
  in
  Alcotest.(check (list (pair string string)))
    "only in-context spans tagged"
    [ ("before", ""); ("before", ""); ("req", "t1"); ("req", "t1") ]
    traces

let test_with_trace_nests_and_restores () =
  Obs.reset ();
  Obs.disable ();
  (* Works without the span layer (the log picks the id up either way). *)
  let inner = ref "" and restored = ref "?" in
  Obs.Span.with_trace "outer" (fun () ->
      Obs.Span.with_trace "inner" (fun () -> inner := Obs.Span.current_trace ());
      restored := Obs.Span.current_trace ());
  Alcotest.(check string) "inner wins inside" "inner" !inner;
  Alcotest.(check string) "outer restored" "outer" !restored;
  Alcotest.(check string) "cleared after" "" (Obs.Span.current_trace ());
  (try Obs.Span.with_trace "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check string) "restored on raise" "" (Obs.Span.current_trace ())

let test_with_trace_reaches_worker_domains () =
  with_obs_enabled @@ fun () ->
  (* Trace context is domain-local, so a raw [Domain.spawn] starts
     clean; Exec.parallel_for captures the caller's context and
     re-installs it in the workers it spawns. *)
  Obs.Span.with_trace "wtrace" (fun () ->
      Exec.parallel_for ~jobs:2 ~n:2 ~chunk:1 (fun ~lo:_ ~hi:_ ->
          Obs.Span.with_ ~name:"wk" (fun () -> ())));
  let wk =
    List.filter (fun (e : Obs.Span.event) -> e.Obs.Span.name = "wk") (Obs.Span.events ())
  in
  Alcotest.(check int) "worker spans recorded" 4 (List.length wk);
  List.iter
    (fun (e : Obs.Span.event) ->
      Alcotest.(check string) "worker event tagged" "wtrace" e.Obs.Span.trace)
    wk;
  (* A raw spawn, by contrast, must NOT inherit the context: that is the
     isolation that keeps N concurrent requests' ids from bleeding. *)
  Obs.Span.with_trace "leaky?" (fun () ->
      let d = Domain.spawn (fun () -> Obs.Span.current_trace ()) in
      Alcotest.(check string) "raw spawn starts clean" "" (Domain.join d))

let test_trace_isolated_across_domains () =
  Obs.reset ();
  Obs.disable ();
  (* Two domains under different ids concurrently: each must read back
     its own, and the main domain's context must be untouched. *)
  let read_under id =
    Obs.Span.with_trace id (fun () ->
        (* Give the sibling a chance to interleave. *)
        Domain.cpu_relax ();
        Obs.Span.current_trace ())
  in
  Obs.Span.with_trace "main-ctx" (fun () ->
      let a = Domain.spawn (fun () -> read_under "trace-a") in
      let b = Domain.spawn (fun () -> read_under "trace-b") in
      let ra = Domain.join a and rb = Domain.join b in
      Alcotest.(check string) "domain a sees its own id" "trace-a" ra;
      Alcotest.(check string) "domain b sees its own id" "trace-b" rb;
      Alcotest.(check string) "main context untouched" "main-ctx"
        (Obs.Span.current_trace ()))

let test_trace_in_exports () =
  with_obs_enabled @@ fun () ->
  Obs.Span.set_clock (Obs.Clock.fake ~start:5L ~step:10L ());
  Obs.Span.with_trace "deadbeef" (fun () -> Obs.Span.with_ ~name:"a.b" (fun () -> ()));
  let evs = Obs.Span.events () in
  Alcotest.(check string) "jsonl gains trace field"
    "{\"name\":\"a.b\",\"ph\":\"B\",\"ts_ns\":5,\"depth\":0,\"domain\":0,\"trace\":\"deadbeef\"}\n\
     {\"name\":\"a.b\",\"ph\":\"E\",\"ts_ns\":15,\"depth\":0,\"domain\":0,\"trace\":\"deadbeef\"}\n"
    (Obs.Export.jsonl evs);
  let chrome = Obs.Export.chrome_trace evs in
  Alcotest.(check bool) "chrome args.trace" true
    (contains chrome "\"args\":{\"trace\":\"deadbeef\"}");
  match Obs.Json.parse chrome with
  | Error e -> Alcotest.fail ("chrome trace unparseable: " ^ e)
  | Ok _ -> ()

(* --- spans --- *)

let test_nested_spans_fake_clock () =
  with_obs_enabled @@ fun () ->
  Obs.Span.set_clock (Obs.Clock.fake ~start:0L ~step:100L ());
  let r =
    Obs.Span.with_ ~name:"outer" (fun () ->
        Obs.Span.with_ ~name:"inner" (fun () -> 7))
  in
  Alcotest.(check int) "value threads through" 7 r;
  let evs = Obs.Span.events () in
  let shape =
    List.map
      (fun (e : Obs.Span.event) ->
        Printf.sprintf "%s %s %Ld d%d" e.Obs.Span.name
          (match e.Obs.Span.phase with Obs.Span.Begin -> "B" | Obs.Span.End -> "E")
          e.Obs.Span.t_ns e.Obs.Span.depth)
      evs
  in
  Alcotest.(check (list string))
    "begin/end nesting with ticking clock"
    [ "outer B 0 d0"; "inner B 100 d1"; "inner E 200 d1"; "outer E 300 d0" ]
    shape;
  let sums = Obs.Span.summarize evs in
  Alcotest.(check int) "two span names" 2 (List.length sums);
  let outer = List.find (fun s -> s.Obs.Span.span_name = "outer") sums in
  let inner = List.find (fun s -> s.Obs.Span.span_name = "inner") sums in
  Alcotest.(check int64) "outer total" 300L outer.Obs.Span.total_ns;
  Alcotest.(check int64) "inner total" 100L inner.Obs.Span.total_ns

let test_span_end_recorded_on_raise () =
  with_obs_enabled @@ fun () ->
  Obs.Span.set_clock (Obs.Clock.fake ());
  (try Obs.Span.with_ ~name:"boom" (fun () -> failwith "x") with Failure _ -> ());
  let evs = Obs.Span.events () in
  Alcotest.(check int) "begin and end" 2 (List.length evs);
  match List.rev evs with
  | last :: _ ->
      Alcotest.(check bool) "last is End" true (last.Obs.Span.phase = Obs.Span.End)
  | [] -> Alcotest.fail "no events"

let test_span_ring_overflow () =
  with_obs_enabled @@ fun () ->
  Obs.Span.set_capacity 8;
  Fun.protect ~finally:(fun () -> Obs.Span.set_capacity 65_536) @@ fun () ->
  Obs.Span.set_clock (Obs.Clock.fake ());
  for _ = 1 to 10 do
    Obs.Span.with_ ~name:"tick" (fun () -> ())
  done;
  Alcotest.(check int) "ring keeps capacity" 8 (List.length (Obs.Span.events ()));
  Alcotest.(check int) "dropped counts overflow" 12 (Obs.Span.dropped ())

let test_disabled_span_records_nothing () =
  Obs.reset ();
  Obs.disable ();
  let r = Obs.Span.with_ ~name:"off" (fun () -> 3) in
  Alcotest.(check int) "passthrough" 3 r;
  Alcotest.(check int) "no events" 0 (List.length (Obs.Span.events ()))

(* --- exporters (golden output) --- *)

let test_jsonl_golden () =
  with_obs_enabled @@ fun () ->
  Obs.Span.set_clock (Obs.Clock.fake ~start:5L ~step:10L ());
  Obs.Span.with_ ~name:"a.b" (fun () -> ());
  Alcotest.(check string) "jsonl"
    "{\"name\":\"a.b\",\"ph\":\"B\",\"ts_ns\":5,\"depth\":0,\"domain\":0}\n\
     {\"name\":\"a.b\",\"ph\":\"E\",\"ts_ns\":15,\"depth\":0,\"domain\":0}\n"
    (Obs.Export.jsonl (Obs.Span.events ()))

let test_chrome_trace_golden () =
  with_obs_enabled @@ fun () ->
  Obs.Span.set_clock (Obs.Clock.fake ~start:0L ~step:100L ());
  Obs.Span.with_ ~name:"a" (fun () -> ());
  Alcotest.(check string) "chrome trace"
    "{\"traceEvents\":[\
     {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"solarstorm\"}},\
     {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"domain 0\"}},\
     {\"name\":\"a\",\"cat\":\"span\",\"ph\":\"B\",\"ts\":0.000,\"pid\":1,\"tid\":0},\
     {\"name\":\"a\",\"cat\":\"span\",\"ph\":\"E\",\"ts\":0.100,\"pid\":1,\"tid\":0}\
     ],\"displayTimeUnit\":\"ms\"}"
    (Obs.Export.chrome_trace (Obs.Span.events ()))

let test_json_float_nonfinite () =
  Alcotest.(check string) "nan is null" "null" (Obs.Export.json_float Float.nan);
  Alcotest.(check string) "inf is null" "null" (Obs.Export.json_float Float.infinity);
  Alcotest.(check string) "-inf is null" "null" (Obs.Export.json_float Float.neg_infinity);
  Alcotest.(check string) "integer" "2.0" (Obs.Export.json_float 2.0);
  Alcotest.(check string) "fraction" "2.5" (Obs.Export.json_float 2.5);
  Alcotest.(check string) "prom nan" "NaN" (Obs.Export.prom_float Float.nan);
  Alcotest.(check string) "prom +inf" "+Inf" (Obs.Export.prom_float Float.infinity);
  Alcotest.(check string) "prom -inf" "-Inf" (Obs.Export.prom_float Float.neg_infinity);
  Alcotest.(check string) "prom finite" "2.0" (Obs.Export.prom_float 2.0)

let test_json_snapshot_nonfinite_gauge () =
  with_obs_enabled @@ fun () ->
  let g = Obs.Metrics.gauge "nf.gauge" in
  Obs.Metrics.set g Float.nan;
  let snap = List.filter (fun (n, _) -> n = "nf.gauge") (Obs.Metrics.snapshot ()) in
  let out = Obs.Export.json_of_snapshot snap in
  Alcotest.(check string) "nan gauge serialises as null" "{\"nf.gauge\":null}" out;
  (* ... and the document stays parseable JSON. *)
  match Obs.Json.parse out with
  | Ok doc -> Alcotest.(check bool) "null member" true (Obs.Json.member "nf.gauge" doc = Some Obs.Json.Null)
  | Error e -> Alcotest.fail ("unparseable: " ^ e)

let test_prometheus_nonfinite_gauge () =
  with_obs_enabled @@ fun () ->
  let g = Obs.Metrics.gauge "weird-name.x/y" in
  let render () =
    Obs.Export.prometheus
      (List.filter (fun (n, _) -> n = "weird-name.x/y") (Obs.Metrics.snapshot ()))
  in
  Obs.Metrics.set g Float.nan;
  Alcotest.(check string) "NaN + sanitised name"
    "# TYPE weird_name_x_y gauge\nweird_name_x_y NaN\n" (render ());
  Obs.Metrics.set g Float.infinity;
  Alcotest.(check bool) "+Inf" true (contains (render ()) "weird_name_x_y +Inf");
  Obs.Metrics.set g Float.neg_infinity;
  Alcotest.(check bool) "-Inf" true (contains (render ()) "weird_name_x_y -Inf")

let test_prometheus_histogram_invariants () =
  with_obs_enabled @@ fun () ->
  let h = Obs.Metrics.histogram "inv.hist-2" ~buckets:[| 0.5; 1.5 |] in
  List.iter (Obs.Metrics.observe h) [ 0.1; 1.0; 2.0; 50.0 ];
  let out =
    Obs.Export.prometheus
      (List.filter (fun (n, _) -> n = "inv.hist-2") (Obs.Metrics.snapshot ()))
  in
  (* Sanitised name, cumulative buckets, and the +Inf bucket equal to
     _count (the exposition-format histogram invariant). *)
  Alcotest.(check bool) "type line" true (contains out "# TYPE inv_hist_2 histogram");
  Alcotest.(check bool) "bucket 0.5" true (contains out "inv_hist_2_bucket{le=\"0.5\"} 1");
  Alcotest.(check bool) "bucket 1.5" true (contains out "inv_hist_2_bucket{le=\"1.5\"} 2");
  Alcotest.(check bool) "+Inf bucket" true (contains out "inv_hist_2_bucket{le=\"+Inf\"} 4");
  Alcotest.(check bool) "count" true (contains out "inv_hist_2_count 4");
  Alcotest.(check bool) "sum" true (contains out "inv_hist_2_sum 53.1")

let test_prometheus_golden () =
  with_obs_enabled @@ fun () ->
  let c = Obs.Metrics.counter "gold.count" in
  let h = Obs.Metrics.histogram "gold.hist" ~buckets:[| 1.0; 2.0 |] in
  Obs.Metrics.add c 3;
  Obs.Metrics.observe h 0.5;
  Obs.Metrics.observe h 1.5;
  Obs.Metrics.observe h 9.0;
  let snap =
    List.filter (fun (n, _) -> n = "gold.count" || n = "gold.hist") (Obs.Metrics.snapshot ())
  in
  Alcotest.(check string) "prometheus text"
    "# TYPE gold_count counter\n\
     gold_count 3\n\
     # TYPE gold_hist histogram\n\
     gold_hist_bucket{le=\"1.0\"} 1\n\
     gold_hist_bucket{le=\"2.0\"} 2\n\
     gold_hist_bucket{le=\"+Inf\"} 3\n\
     gold_hist_sum 11.0\n\
     gold_hist_count 3\n\
     # TYPE gold_hist_quantile gauge\n\
     gold_hist_quantile{q=\"0.5\"} 1.5\n\
     gold_hist_quantile{q=\"0.95\"} 2.0\n\
     gold_hist_quantile{q=\"0.99\"} 2.0\n"
    (Obs.Export.prometheus snap)

let test_json_snapshot_golden () =
  with_obs_enabled @@ fun () ->
  let c = Obs.Metrics.counter "gold.count" in
  Obs.Metrics.add c 3;
  let snap = List.filter (fun (n, _) -> n = "gold.count") (Obs.Metrics.snapshot ()) in
  Alcotest.(check string) "json object" "{\"gold.count\":3}" (Obs.Export.json_of_snapshot snap)

let test_report_table () =
  with_obs_enabled @@ fun () ->
  Obs.Span.set_clock (Obs.Clock.fake ());
  let c = Obs.Metrics.counter "table.counter" in
  Obs.Metrics.add c 5;
  Obs.Span.with_ ~name:"table.span" (fun () -> ());
  let out = Report.Obs_report.render ~events:(Obs.Span.events ()) (Obs.Metrics.snapshot ()) in
  Alcotest.(check bool) "metric row" true (contains out "table.counter");
  Alcotest.(check bool) "metric value" true (contains out "5");
  Alcotest.(check bool) "span row" true (contains out "table.span");
  Alcotest.(check bool) "header" true (contains out "metric")

(* --- ring wrap / tree reconstruction --- *)

let test_ring_wrap_keeps_pairing () =
  with_obs_enabled @@ fun () ->
  Obs.Span.set_capacity 6;
  Fun.protect ~finally:(fun () -> Obs.Span.set_capacity 65_536) @@ fun () ->
  Obs.Span.set_clock (Obs.Clock.fake ~start:0L ~step:100L ());
  (* Pushes a B, (b B, b E) x3, a E = 8 events into a 6-slot ring: the
     wrap drops "a Begin" and the first "b Begin", leaving an orphan
     "b End" and an orphan "a End" in the stream. *)
  Obs.Span.with_ ~name:"a" (fun () ->
      for _ = 1 to 3 do
        Obs.Span.with_ ~name:"b" (fun () -> ())
      done);
  let evs = Obs.Span.events () in
  Alcotest.(check int) "ring keeps capacity" 6 (List.length evs);
  Alcotest.(check int) "two dropped" 2 (Obs.Span.dropped ());
  let sums = Obs.Span.summarize evs in
  (* Orphan Ends are ignored; the two intact b spans still pair up. *)
  Alcotest.(check int) "only b survives" 1 (List.length sums);
  let b = List.hd sums in
  Alcotest.(check string) "b" "b" b.Obs.Span.span_name;
  Alcotest.(check int) "two intact pairs" 2 b.Obs.Span.calls;
  Alcotest.(check int64) "100ns each" 200L b.Obs.Span.total_ns;
  (* The JSONL export of a wrapped stream stays one valid line per event. *)
  let lines = String.split_on_char '\n' (String.trim (Obs.Export.jsonl evs)) in
  Alcotest.(check int) "jsonl line per event" 6 (List.length lines)

(* --- per-domain rings --- *)

let test_worker_domain_spans () =
  with_obs_enabled @@ fun () ->
  Obs.Span.with_ ~name:"main.span" (fun () -> ());
  let d1 = Domain.spawn (fun () -> Obs.Span.with_ ~name:"w1" (fun () -> ())) in
  Domain.join d1;
  (* The second domain reuses the first's pooled ring; w1's events must
     survive the reuse (each event carries its own domain id). *)
  let d2 = Domain.spawn (fun () -> Obs.Span.with_ ~name:"w2" (fun () -> ())) in
  Domain.join d2;
  let evs = Obs.Span.events () in
  let doms =
    List.sort_uniq compare (List.map (fun (e : Obs.Span.event) -> e.Obs.Span.domain) evs)
  in
  Alcotest.(check bool) "at least two domains" true (List.length doms >= 2);
  let sums = Obs.Span.summarize evs in
  List.iter
    (fun name ->
      match List.find_opt (fun s -> s.Obs.Span.span_name = name) sums with
      | Some s -> Alcotest.(check int) (name ^ " paired") 1 s.Obs.Span.calls
      | None -> Alcotest.fail ("missing span " ^ name))
    [ "main.span"; "w1"; "w2" ]

let test_parallel_engine_spans () =
  with_obs_enabled @@ fun () ->
  let network = Datasets.Submarine.build ~seed:7 () in
  let plan = Stormsim.Plan.compile ~network ~model:Stormsim.Failure_model.s1 () in
  (* With the persistent pool the caller participates in its own job, so
     a fast caller could drain every chunk before the pooled helper
     attaches.  Hold each trial until two distinct domains have joined:
     the job stays open while trials block, so the helper provably
     participates — making the >= 2 domains assertion deterministic. *)
  let seen = Atomic.make [] in
  let rec note () =
    let l = Atomic.get seen in
    let d = (Domain.self () :> int) in
    if not (List.mem d l) && not (Atomic.compare_and_set seen l (d :: l)) then note ()
  in
  let n =
    Stormsim.Plan.run_trials_par ~jobs:2 plan ~trials:8 ~seed:3 ~init:0
      ~map:(fun ~rng:_ ~dead:_ ->
        note ();
        while List.length (Atomic.get seen) < 2 do
          Domain.cpu_relax ()
        done;
        1)
      ~merge:( + )
  in
  Alcotest.(check int) "all trials ran" 8 n;
  let evs = Obs.Span.events () in
  let worker_doms =
    List.sort_uniq compare
      (List.filter_map
         (fun (e : Obs.Span.event) ->
           if e.Obs.Span.name = "exec.worker" then Some e.Obs.Span.domain else None)
         evs)
  in
  Alcotest.(check bool) "exec.worker on >= 2 domains" true (List.length worker_doms >= 2);
  (* The chrome trace of a parallel run must parse as JSON and carry one
     thread row per participating domain. *)
  match Obs.Json.parse (Obs.Export.chrome_trace evs) with
  | Error e -> Alcotest.fail ("chrome trace unparseable: " ^ e)
  | Ok doc -> (
      match Option.bind (Obs.Json.member "traceEvents" doc) Obs.Json.array with
      | None -> Alcotest.fail "no traceEvents"
      | Some events ->
          let tids =
            List.sort_uniq compare
              (List.filter_map
                 (fun e ->
                   match Option.bind (Obs.Json.member "ph" e) Obs.Json.string_ with
                   | Some ("B" | "E") ->
                       Option.map int_of_float
                         (Option.bind (Obs.Json.member "tid" e) Obs.Json.number)
                   | _ -> None)
                 events)
          in
          Alcotest.(check bool) ">= 2 tids in trace" true (List.length tids >= 2))

(* --- resource gauges --- *)

let test_resource_gauges () =
  with_obs_enabled @@ fun () ->
  ignore (Sys.opaque_identity (Array.make 4096 0.0));
  Obs.Resource.sample ();
  let snap = Obs.Metrics.snapshot () in
  let gauge name =
    match List.assoc_opt name snap with
    | Some (Obs.Metrics.Gauge v) -> v
    | _ -> Alcotest.fail ("missing gauge " ^ name)
  in
  Alcotest.(check bool) "minor words counted" true (gauge "gc.minor_words" > 0.0);
  Alcotest.(check bool) "heap words counted" true (gauge "gc.heap_words" > 0.0);
  Alcotest.(check bool) "top heap words counted" true (gauge "gc.top_heap_words" > 0.0);
  Alcotest.(check bool) "wall clock advanced" true (gauge "proc.wall_ns" >= 0.0)

let test_resource_disabled_is_noop () =
  Obs.reset ();
  Obs.disable ();
  Obs.Resource.sample ();
  match List.assoc_opt "gc.minor_words" (Obs.Metrics.snapshot ()) with
  | Some (Obs.Metrics.Gauge v) -> Alcotest.(check (float 1e-9)) "stays zero" 0.0 v
  | _ -> Alcotest.fail "gauge not registered"

(* --- progress meter --- *)

let with_progress_captured f =
  let buf = Buffer.create 256 in
  Obs.Progress.enable ();
  Obs.Progress.set_sink (Buffer.add_string buf);
  Obs.Progress.set_interval_ns 0L;
  Fun.protect
    ~finally:(fun () ->
      Obs.Progress.disable ();
      Obs.Progress.set_sink (fun s ->
          output_string stderr s;
          flush stderr);
      Obs.Progress.set_clock Obs.Clock.monotonic;
      Obs.Progress.set_interval_ns 200_000_000L)
    (fun () -> f buf)

let test_progress_meter () =
  with_progress_captured @@ fun buf ->
  Obs.Progress.set_clock (Obs.Clock.fake ~start:0L ~step:1_000_000_000L ());
  let run = Obs.Progress.start ~label:"trials" ~total:3 in
  Obs.Progress.tick run;
  Obs.Progress.tick run;
  Obs.Progress.tick run;
  Alcotest.(check int) "counter" 3 (Obs.Progress.completed run);
  Obs.Progress.finish run;
  let out = Buffer.contents buf in
  Alcotest.(check bool) "final count" true (contains out "trials 3/3 (100%)");
  Alcotest.(check bool) "rate" true (contains out "trials/s");
  Alcotest.(check bool) "eta" true (contains out "ETA");
  Alcotest.(check bool) "newline on finish" true (contains out "\n")

let test_progress_disabled_is_silent () =
  let buf = Buffer.create 16 in
  Obs.Progress.disable ();
  Obs.Progress.set_sink (Buffer.add_string buf);
  Fun.protect
    ~finally:(fun () ->
      Obs.Progress.set_sink (fun s ->
          output_string stderr s;
          flush stderr))
    (fun () ->
      let run = Obs.Progress.start ~label:"x" ~total:2 in
      Obs.Progress.tick run;
      Obs.Progress.finish run;
      Alcotest.(check int) "disabled run counts nothing" 0 (Obs.Progress.completed run);
      Alcotest.(check string) "no output" "" (Buffer.contents buf))

let test_progress_concurrent_runs () =
  (* Regression: runs are independent handles.  When the meter lived in
     one process-wide atomic, a second [start] clobbered the first run's
     counter and label mid-flight (two server worker domains each running
     a plan did exactly that). *)
  with_progress_captured @@ fun buf ->
  Obs.Progress.set_clock (Obs.Clock.fake ~start:0L ~step:1_000_000_000L ());
  let a = Obs.Progress.start ~label:"outer" ~total:2 in
  let b = Obs.Progress.start ~label:"inner" ~total:3 in
  Obs.Progress.tick b;
  Obs.Progress.tick a;
  Obs.Progress.tick ~n:2 b;
  Obs.Progress.finish b;
  Obs.Progress.tick a;
  Obs.Progress.finish a;
  Alcotest.(check int) "outer kept its own count" 2 (Obs.Progress.completed a);
  Alcotest.(check int) "inner counted independently" 3 (Obs.Progress.completed b);
  let out = Buffer.contents buf in
  Alcotest.(check bool) "inner rendered to completion" true
    (contains out "inner 3/3 (100%)");
  Alcotest.(check bool) "outer rendered to completion" true
    (contains out "outer 2/2 (100%)")

let test_progress_through_trial_drivers () =
  (* --progress works without the metrics/span layer: leave Obs disabled. *)
  Obs.reset ();
  Obs.disable ();
  with_progress_captured @@ fun buf ->
  let network = Datasets.Submarine.build ~seed:7 () in
  let plan = Stormsim.Plan.compile ~network ~model:Stormsim.Failure_model.s1 () in
  let seq =
    Stormsim.Plan.run_trials plan ~trials:5 ~seed:1 ~init:0
      ~f:(fun acc ~rng:_ ~dead:_ -> acc + 1)
  in
  Alcotest.(check int) "sequential trials" 5 seq;
  Alcotest.(check bool) "sequential meter" true (contains (Buffer.contents buf) "trials 5/5 (100%)");
  Buffer.clear buf;
  let par =
    Stormsim.Plan.run_trials_par ~jobs:2 plan ~trials:6 ~seed:1 ~init:0
      ~map:(fun ~rng:_ ~dead:_ -> 1)
      ~merge:( + )
  in
  Alcotest.(check int) "parallel trials" 6 par;
  Alcotest.(check bool) "parallel meter" true (contains (Buffer.contents buf) "trials 6/6 (100%)")

(* --- json reader --- *)

let test_json_parse_structure () =
  match Obs.Json.parse "{\"a\":[1,2.5,\"x\\ny\"],\"b\":{\"c\":null,\"d\":true},\"e\":-3e2}" with
  | Error e -> Alcotest.fail e
  | Ok doc ->
      (match Option.bind (Obs.Json.member "a" doc) Obs.Json.array with
      | Some [ x; y; z ] ->
          Alcotest.(check (option (float 1e-9))) "int" (Some 1.0) (Obs.Json.number x);
          Alcotest.(check (option (float 1e-9))) "frac" (Some 2.5) (Obs.Json.number y);
          Alcotest.(check (option string)) "escaped" (Some "x\ny") (Obs.Json.string_ z)
      | _ -> Alcotest.fail "bad array");
      (match Option.bind (Obs.Json.member "b" doc) (Obs.Json.member "c") with
      | Some Obs.Json.Null -> ()
      | _ -> Alcotest.fail "missing null");
      Alcotest.(check (option (float 1e-9))) "exponent" (Some (-300.0))
        (Option.bind (Obs.Json.member "e" doc) Obs.Json.number)

let test_json_rejects_garbage () =
  let bad = [ "[1,2]trailing"; "{bad"; "{\"a\":}"; ""; "{\"a\":1,}" ] in
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | Ok _ -> Alcotest.fail ("accepted garbage: " ^ s)
      | Error _ -> ())
    bad

let test_json_escape_roundtrip () =
  let original = "a\"\\\n\t\rb\x01c" in
  match Obs.Json.parse (Printf.sprintf "\"%s\"" (Obs.Export.json_escape original)) with
  | Ok (Obs.Json.String s) -> Alcotest.(check string) "roundtrip" original s
  | Ok _ -> Alcotest.fail "not a string"
  | Error e -> Alcotest.fail e

let test_json_parses_bench_document () =
  let doc =
    "{\"schema\":\"solarstorm-bench/1\",\"mode\":\"fast\",\"kernels\":[{\"name\":\"plan.sample\",\"ns_per_run\":1234.0,\"estimator\":\"min-of-3\"}],\"metrics\":{\"rng.draws\":42,\"nf\":null}}"
  in
  match Obs.Json.parse doc with
  | Error e -> Alcotest.fail e
  | Ok d ->
      Alcotest.(check (option string)) "schema" (Some "solarstorm-bench/1")
        (Option.bind (Obs.Json.member "schema" d) Obs.Json.string_);
      (match Option.bind (Obs.Json.member "kernels" d) Obs.Json.array with
      | Some [ k ] ->
          Alcotest.(check (option string)) "kernel name" (Some "plan.sample")
            (Option.bind (Obs.Json.member "name" k) Obs.Json.string_);
          Alcotest.(check (option (float 1e-9))) "kernel ns" (Some 1234.0)
            (Option.bind (Obs.Json.member "ns_per_run" k) Obs.Json.number)
      | _ -> Alcotest.fail "bad kernels")

(* --- json writer: encode/decode round-trips --- *)

let rec json_equal a b =
  match (a, b) with
  | Obs.Json.Null, Obs.Json.Null -> true
  | Obs.Json.Bool x, Obs.Json.Bool y -> x = y
  | Obs.Json.Number x, Obs.Json.Number y ->
      (* NaN encodes as null, so it never round-trips as a Number. *)
      x = y
  | Obs.Json.String x, Obs.Json.String y -> x = y
  | Obs.Json.Array xs, Obs.Json.Array ys ->
      List.length xs = List.length ys && List.for_all2 json_equal xs ys
  | Obs.Json.Object xs, Obs.Json.Object ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> k1 = k2 && json_equal v1 v2)
           xs ys
  | _ -> false

let roundtrip doc =
  match Obs.Json.parse (Obs.Json.to_string doc) with
  | Error e -> Alcotest.fail ("re-parse failed: " ^ e)
  | Ok doc' ->
      Alcotest.(check bool)
        (Printf.sprintf "round-trip of %s" (Obs.Json.to_string doc))
        true (json_equal doc doc')

let test_json_to_string_roundtrip () =
  roundtrip Obs.Json.Null;
  roundtrip (Obs.Json.Bool true);
  roundtrip (Obs.Json.Number 0.0);
  roundtrip (Obs.Json.Number (-3.25e-7));
  roundtrip (Obs.Json.Number 1234567890.0);
  roundtrip (Obs.Json.Number 0.30000000000000004);
  roundtrip (Obs.Json.String "");
  roundtrip (Obs.Json.String "a\"\\\n\t\r\x01 unicode: \xc3\xa9");
  roundtrip (Obs.Json.Array []);
  roundtrip (Obs.Json.Object []);
  roundtrip
    (Obs.Json.Object
       [
         ("a", Obs.Json.Array [ Obs.Json.Number 1.0; Obs.Json.Bool false ]);
         ("empty", Obs.Json.Object [ ("k", Obs.Json.Null) ]);
         ("s", Obs.Json.String "x/y");
       ])

let test_json_to_string_compact_golden () =
  let doc =
    Obs.Json.Object
      [
        ("a", Obs.Json.Number 1.0);
        ("b", Obs.Json.Array [ Obs.Json.String "x"; Obs.Json.Null ]);
      ]
  in
  Alcotest.(check string) "compact has no spaces"
    "{\"a\":1.0,\"b\":[\"x\",null]}" (Obs.Json.to_string doc);
  (* Pretty form parses back to the same document. *)
  (match Obs.Json.parse (Obs.Json.to_string ~pretty:true doc) with
  | Ok doc' -> Alcotest.(check bool) "pretty re-parses" true (json_equal doc doc')
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "pretty is indented" true
    (contains (Obs.Json.to_string ~pretty:true doc) "\n  \"a\": 1.0")

let test_json_to_string_nonfinite_is_null () =
  Alcotest.(check string) "nan" "null" (Obs.Json.to_string (Obs.Json.Number Float.nan));
  Alcotest.(check string) "inf in array" "[null,1.0]"
    (Obs.Json.to_string
       (Obs.Json.Array [ Obs.Json.Number Float.infinity; Obs.Json.Number 1.0 ]))

let test_json_unicode_escapes () =
  (* \u escape decoding: BMP, surrogate pair, and the rejects. *)
  (match Obs.Json.parse "\"\\u00e9\"" with
  | Ok (Obs.Json.String s) -> Alcotest.(check string) "bmp" "\xc3\xa9" s
  | _ -> Alcotest.fail "BMP escape");
  (match Obs.Json.parse "\"\\uD83D\\uDE00\"" with
  | Ok (Obs.Json.String s) ->
      (* U+1F600, UTF-8 f0 9f 98 80 *)
      Alcotest.(check string) "astral" "\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "surrogate pair");
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | Ok _ -> Alcotest.fail ("accepted bad escape: " ^ s)
      | Error _ -> ())
    [
      "\"\\uD83D\"" (* lone high surrogate *);
      "\"\\uDE00\"" (* lone low surrogate *);
      "\"\\uD83D\\u0041\"" (* high surrogate + non-low *);
      "\"\\u00_1\"" (* int_of_string leniency must not leak in *);
      "\"\\u12\"" (* truncated *);
    ]

(* --- progress TTY gating --- *)

let test_progress_tty_sink_gates () =
  let buf = Buffer.create 64 in
  let probes = ref 0 in
  let not_tty =
    Obs.Progress.tty_sink
      ~isatty:(fun () -> incr probes; false)
      (Buffer.add_string buf)
  in
  not_tty "hidden";
  not_tty "also hidden";
  Alcotest.(check string) "non-TTY sink swallows output" "" (Buffer.contents buf);
  Alcotest.(check int) "probe is memoized" 1 !probes;
  let tty =
    Obs.Progress.tty_sink ~isatty:(fun () -> true) (Buffer.add_string buf)
  in
  tty "shown";
  Alcotest.(check string) "TTY sink writes through" "shown" (Buffer.contents buf)

let test_progress_injected_sink_not_gated () =
  (* set_sink callers (tests, exporters) are never TTY-gated: the meter
     must reach an injected buffer even with no terminal attached. *)
  with_progress_captured @@ fun buf ->
  Obs.Progress.set_clock (Obs.Clock.fake ~start:0L ~step:1_000_000_000L ());
  let run = Obs.Progress.start ~label:"gate" ~total:1 in
  Obs.Progress.tick run;
  Obs.Progress.finish run;
  Alcotest.(check bool) "injected sink saw the meter" true
    (contains (Buffer.contents buf) "gate 1/1 (100%)")

(* --- instrumented pipeline --- *)

let test_montecarlo_metrics_flow () =
  with_obs_enabled @@ fun () ->
  let network = Datasets.Submarine.build ~seed:7 () in
  let (_ : Stormsim.Montecarlo.series) =
    Stormsim.Montecarlo.run ~trials:4 ~seed:7 ~network ~spacing_km:150.0
      ~model:Stormsim.Failure_model.s1 ()
  in
  (match List.assoc "mc.trials_total" (Obs.Metrics.snapshot ()) with
  | Obs.Metrics.Counter n -> Alcotest.(check int) "trials counted" 4 n
  | _ -> Alcotest.fail "not a counter");
  (match List.assoc "rng.draws" (Obs.Metrics.snapshot ()) with
  | Obs.Metrics.Counter n -> Alcotest.(check bool) "rng draws counted" true (n > 0)
  | _ -> Alcotest.fail "not a counter");
  let names =
    List.sort_uniq String.compare
      (List.map (fun (e : Obs.Span.event) -> e.Obs.Span.name) (Obs.Span.events ()))
  in
  Alcotest.(check bool) "mc.run span" true (List.mem "mc.run" names);
  Alcotest.(check bool) "mc.trial span" true (List.mem "mc.trial" names);
  Alcotest.(check bool) "fm.compile span" true (List.mem "fm.compile" names)

let test_montecarlo_determinism_under_instrumentation () =
  Obs.reset ();
  Obs.disable ();
  let network = Datasets.Submarine.build ~seed:11 () in
  let run () =
    Stormsim.Montecarlo.run ~trials:6 ~seed:11 ~network ~spacing_km:150.0
      ~model:Stormsim.Failure_model.s2 ()
  in
  let plain = run () in
  let instrumented = with_obs_enabled run in
  let again = run () in
  Alcotest.(check bool) "instrumented run bit-identical" true (plain = instrumented);
  Alcotest.(check bool) "disabled-again run bit-identical" true (plain = again)

(* --- windowed timeseries --- *)

let second_ns = 1_000_000_000L
let wide_window = 100_000_000_000L (* covers everything a test records *)

(* One fake-clocked ring: samples land exactly one second apart. *)
let ts_with_fake ?(retention = 4) () =
  Obs.Timeseries.create
    ~clock:(Obs.Clock.fake ~start:0L ~step:second_ns ())
    ~step_ns:second_ns ~retention ()

let test_timeseries_ring_wraparound () =
  let ts = ts_with_fake ~retention:4 () in
  for i = 1 to 7 do
    Obs.Timeseries.record ts [ ("c", Obs.Metrics.Counter i) ]
  done;
  Alcotest.(check int) "length caps at retention" 4 (Obs.Timeseries.length ts);
  (match Obs.Timeseries.latest ts with
  | Some (ts_ns, [ ("c", Obs.Metrics.Counter 7) ]) ->
      Alcotest.(check int64) "latest keeps its stamp" 6_000_000_000L ts_ns
  | _ -> Alcotest.fail "latest sample wrong");
  (* Only samples 4..7 survive the wrap: three 1/s deltas. *)
  let rates = Obs.Timeseries.rate_series ts ~window_ns:wide_window "c" in
  Alcotest.(check int) "post-wrap points" 3 (List.length rates);
  List.iter
    (fun p -> Alcotest.(check (float 1e-9)) "rate" 1.0 p.Obs.Timeseries.p_v)
    rates

let test_timeseries_counter_reset_clamps () =
  let ts = ts_with_fake ~retention:8 () in
  List.iter
    (fun v -> Obs.Timeseries.record ts [ ("c", Obs.Metrics.Counter v) ])
    [ 0; 10; 5; 8 ];
  let rates =
    List.map
      (fun p -> p.Obs.Timeseries.p_v)
      (Obs.Timeseries.rate_series ts ~window_ns:wide_window "c")
  in
  (* The mid-window reset (10 → 5) reads as one empty step, not -5/s. *)
  Alcotest.(check (list (float 1e-9))) "clamped per-step rates" [ 10.0; 0.0; 3.0 ] rates;
  match Obs.Timeseries.windowed_rate ts ~window_ns:wide_window "c" with
  | Some r ->
      Alcotest.(check (float 1e-9)) "window sums clamped deltas" (13.0 /. 3.0) r
  | None -> Alcotest.fail "windowed rate missing"

let test_timeseries_window_excludes_old_samples () =
  let ts = ts_with_fake ~retention:16 () in
  (* counter at t=0..5: value jumps by 100 early, then by 1 per step *)
  List.iter
    (fun v -> Obs.Timeseries.record ts [ ("c", Obs.Metrics.Counter v) ])
    [ 0; 100; 101; 102; 103; 104 ];
  (* A 2 s window ending at t=5 sees only the 1/s tail, not the jump. *)
  match Obs.Timeseries.windowed_rate ts ~window_ns:(Int64.mul 2L second_ns) "c" with
  | Some r -> Alcotest.(check (float 1e-9)) "old delta excluded" 1.0 r
  | None -> Alcotest.fail "windowed rate missing"

let test_timeseries_gauge_series () =
  let ts = ts_with_fake ~retention:8 () in
  List.iter
    (fun v -> Obs.Timeseries.record ts [ ("g", Obs.Metrics.Gauge v) ])
    [ 1.0; 4.0; 2.0 ];
  let vs =
    List.map
      (fun p -> p.Obs.Timeseries.p_v)
      (Obs.Timeseries.gauge_series ts ~window_ns:wide_window "g")
  in
  Alcotest.(check (list (float 1e-9))) "gauges as stored" [ 1.0; 4.0; 2.0 ] vs

let test_timeseries_windowed_quantile_agrees () =
  with_obs_enabled @@ fun () ->
  let bounds = Array.init 20 (fun i -> 5.0 *. float_of_int (i + 1)) in
  let h = Obs.Metrics.histogram "tsq.sample" ~buckets:bounds in
  let ts = ts_with_fake ~retention:8 () in
  (* Noise observed before the baseline sample must not leak into the
     windowed estimate. *)
  for _ = 1 to 50 do
    Obs.Metrics.observe h 99.0
  done;
  Obs.Timeseries.record ts (Obs.Metrics.snapshot ());
  let state = ref 12345 in
  let sample =
    Array.init 200 (fun _ ->
        state := ((!state * 1103515245) + 12347) land 0x3FFFFFFF;
        float_of_int (!state mod 10_000) /. 100.0)
  in
  (* Spread the observations over two steps so the window accumulates
     more than one bucket delta. *)
  Array.iteri
    (fun i v ->
      Obs.Metrics.observe h v;
      if i = 99 then Obs.Timeseries.record ts (Obs.Metrics.snapshot ()))
    sample;
  Obs.Timeseries.record ts (Obs.Metrics.snapshot ());
  let sorted = Array.copy sample in
  Array.sort compare sorted;
  (match Obs.Timeseries.windowed_count ts ~window_ns:(Int64.mul 2L second_ns) "tsq.sample" with
  | Some n -> Alcotest.(check int) "window counts only its own observations" 200 n
  | None -> Alcotest.fail "windowed count missing");
  List.iter
    (fun q ->
      match
        Obs.Timeseries.windowed_quantile ts
          ~window_ns:(Int64.mul 2L second_ns)
          ~q "tsq.sample"
      with
      | None -> Alcotest.fail "estimate missing"
      | Some est ->
          let exact = exact_quantile sorted q in
          Alcotest.(check bool)
            (Printf.sprintf "q=%g est %.2f vs exact %.2f" q est exact)
            true
            (Float.abs (est -. exact) <= 5.0))
    [ 0.5; 0.9; 0.95; 0.99 ]

let test_timeseries_quantile_series_skips_empty_steps () =
  with_obs_enabled @@ fun () ->
  let h = Obs.Metrics.histogram "tsq.sparse" ~buckets:[| 1.0; 10.0; 100.0 |] in
  let ts = ts_with_fake ~retention:8 () in
  Obs.Timeseries.record ts (Obs.Metrics.snapshot ());
  Obs.Metrics.observe h 5.0;
  Obs.Timeseries.record ts (Obs.Metrics.snapshot ());
  (* one idle step: no observations *)
  Obs.Timeseries.record ts (Obs.Metrics.snapshot ());
  Obs.Metrics.observe h 50.0;
  Obs.Timeseries.record ts (Obs.Metrics.snapshot ());
  let pts = Obs.Timeseries.quantile_series ts ~window_ns:wide_window ~q:0.5 "tsq.sparse" in
  Alcotest.(check int) "idle step yields no point" 2 (List.length pts)

let test_timeseries_rejects_bad_shape () =
  (try
     ignore (Obs.Timeseries.create ~retention:1 ());
     Alcotest.fail "retention 1 accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Obs.Timeseries.create ~step_ns:0L ());
    Alcotest.fail "step 0 accepted"
  with Invalid_argument _ -> ()

(* --- SLO alerts --- *)

let test_alerts_parse_rules () =
  (match Obs.Alerts.parse_rule "server.request.ms:p99<50:5m" with
  | Ok r ->
      Alcotest.(check string) "metric" "server.request.ms" r.Obs.Alerts.r_metric;
      (match r.Obs.Alerts.r_agg with
      | Obs.Alerts.Quantile q -> Alcotest.(check (float 1e-9)) "quantile" 0.99 q
      | _ -> Alcotest.fail "agg not a quantile");
      Alcotest.(check bool) "cmp" true (r.Obs.Alerts.r_cmp = Obs.Alerts.Lt);
      Alcotest.(check (float 1e-9)) "threshold" 50.0 r.Obs.Alerts.r_threshold;
      Alcotest.(check int64) "window" 300_000_000_000L r.Obs.Alerts.r_window_ns
  | Error e -> Alcotest.fail e);
  (match Obs.Alerts.parse_rule "server.requests:rate>1.5:30s" with
  | Ok r ->
      Alcotest.(check bool) "rate agg" true (r.Obs.Alerts.r_agg = Obs.Alerts.Rate);
      Alcotest.(check bool) "gt" true (r.Obs.Alerts.r_cmp = Obs.Alerts.Gt);
      Alcotest.(check int64) "30s" 30_000_000_000L r.Obs.Alerts.r_window_ns
  | Error e -> Alcotest.fail e);
  (match Obs.Alerts.parse_rule "gc.heap_words:value<1e9:45" with
  | Ok r ->
      Alcotest.(check bool) "value agg" true (r.Obs.Alerts.r_agg = Obs.Alerts.Value);
      Alcotest.(check int64) "bare seconds" 45_000_000_000L r.Obs.Alerts.r_window_ns
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Obs.Alerts.parse_rule bad with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" bad)
      | Error _ -> ())
    [
      "";
      "no-colons";
      "m:p99<50";
      "m:p99<50:5m:extra";
      ":p99<50:5m";
      "m:p99=50:5m";
      "m:p99<>50:5m";
      "m:pword<50:5m";
      "m:p0<50:5m";
      "m:p100<50:5m";
      "m:p99<abc:5m";
      "m:p99<50:0s";
      "m:p99<50:-5m";
      "m:p99<50:5y";
    ]

let test_alerts_fire_and_resolve () =
  with_obs_enabled @@ fun () ->
  with_log_captured @@ fun buf ->
  let h = Obs.Metrics.histogram "al.ms" ~buckets:[| 1.0; 10.0; 100.0 |] in
  let ts = ts_with_fake ~retention:16 () in
  let rule =
    match Obs.Alerts.parse_rule "al.ms:p99<10:4s" with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let alerts = Obs.Alerts.create [ rule ] in
  let firing_gauge () =
    match List.assoc_opt "obs.alerts.firing" (Obs.Metrics.snapshot ()) with
    | Some (Obs.Metrics.Gauge v) -> v
    | _ -> -1.0
  in
  (* Healthy traffic: fast observations, objective holds. *)
  Obs.Timeseries.record ts (Obs.Metrics.snapshot ());
  Obs.Metrics.observe h 0.5;
  Obs.Timeseries.record ts (Obs.Metrics.snapshot ());
  Obs.Alerts.evaluate alerts ts;
  (match Obs.Alerts.statuses alerts with
  | [ st ] ->
      Alcotest.(check bool) "starts ok" true (st.Obs.Alerts.st_state = Obs.Alerts.Ok_state)
  | _ -> Alcotest.fail "one status expected");
  Alcotest.(check (float 1e-9)) "gauge 0 while ok" 0.0 (firing_gauge ());
  (* Slow burst: both long and short windows breach -> firing. *)
  for _ = 1 to 20 do
    Obs.Metrics.observe h 90.0
  done;
  Obs.Timeseries.record ts (Obs.Metrics.snapshot ());
  Obs.Alerts.evaluate alerts ts;
  (match Obs.Alerts.statuses alerts with
  | [ st ] ->
      Alcotest.(check bool) "fires" true (st.Obs.Alerts.st_state = Obs.Alerts.Firing);
      Alcotest.(check int) "one transition" 1 st.Obs.Alerts.st_transitions;
      (match st.Obs.Alerts.st_value with
      | Some v -> Alcotest.(check bool) "measured value breaches" true (v >= 10.0)
      | None -> Alcotest.fail "no measurement while firing")
  | _ -> Alcotest.fail "one status expected");
  Alcotest.(check (float 1e-9)) "gauge 1 while firing" 1.0 (firing_gauge ());
  Alcotest.(check bool) "firing logged" true
    (contains (Buffer.contents buf) "\"event\":\"alert.firing\"");
  Alcotest.(check bool) "firing logs at warn" true
    (contains (Buffer.contents buf) "\"level\":\"warn\"");
  (* Load stops: two idle samples clear the short window -> resolved. *)
  Obs.Timeseries.record ts (Obs.Metrics.snapshot ());
  Obs.Timeseries.record ts (Obs.Metrics.snapshot ());
  Obs.Alerts.evaluate alerts ts;
  (match Obs.Alerts.statuses alerts with
  | [ st ] ->
      Alcotest.(check bool) "resolves" true (st.Obs.Alerts.st_state = Obs.Alerts.Ok_state);
      Alcotest.(check int) "two transitions" 2 st.Obs.Alerts.st_transitions
  | _ -> Alcotest.fail "one status expected");
  Alcotest.(check int) "firing count back to zero" 0 (Obs.Alerts.firing_count alerts);
  Alcotest.(check (float 1e-9)) "gauge 0 after resolve" 0.0 (firing_gauge ());
  Alcotest.(check bool) "resolve logged" true
    (contains (Buffer.contents buf) "\"event\":\"alert.resolved\"")

let test_alerts_empty_timeseries_noop () =
  with_obs_enabled @@ fun () ->
  let ts = ts_with_fake () in
  let rule =
    match Obs.Alerts.parse_rule "x:p99<10:4s" with Ok r -> r | Error e -> Alcotest.fail e
  in
  let alerts = Obs.Alerts.create [ rule ] in
  Obs.Alerts.evaluate alerts ts;
  match Obs.Alerts.statuses alerts with
  | [ st ] ->
      Alcotest.(check bool) "still ok" true (st.Obs.Alerts.st_state = Obs.Alerts.Ok_state);
      Alcotest.(check int) "no transitions" 0 st.Obs.Alerts.st_transitions
  | _ -> Alcotest.fail "one status expected"

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [ Alcotest.test_case "counter arithmetic" `Quick test_counter_arithmetic;
          Alcotest.test_case "shard dispersion" `Quick test_shard_dispersion;
          Alcotest.test_case "sharded contention exact" `Quick
            test_counter_sharded_contention;
          Alcotest.test_case "disabled no-op" `Quick test_counter_disabled_is_noop;
          Alcotest.test_case "gauge" `Quick test_gauge_set;
          Alcotest.test_case "kind clash" `Quick test_kind_clash_rejected;
          Alcotest.test_case "histogram boundaries" `Quick test_histogram_bucket_boundaries;
          Alcotest.test_case "histogram bad buckets" `Quick test_histogram_rejects_bad_buckets;
          Alcotest.test_case "merge" `Quick test_merge ] );
      ( "quantile",
        [ Alcotest.test_case "empty is none" `Quick test_quantile_empty_is_none;
          Alcotest.test_case "single observation" `Quick test_quantile_single_observation;
          Alcotest.test_case "overflow collapses" `Quick test_quantile_overflow_collapses;
          Alcotest.test_case "interpolation" `Quick test_quantile_interpolates_within_bucket;
          Alcotest.test_case "tracks exact quantiles" `Quick
            test_quantile_tracks_exact_on_sample ] );
      ( "log",
        [ Alcotest.test_case "line golden" `Quick test_log_line_golden;
          Alcotest.test_case "disabled is silent" `Quick test_log_disabled_is_silent;
          Alcotest.test_case "level filter" `Quick test_log_level_filter;
          Alcotest.test_case "carries trace context" `Quick test_log_carries_trace_context ] );
      ( "trace",
        [ Alcotest.test_case "tags spans" `Quick test_with_trace_tags_spans;
          Alcotest.test_case "nests and restores" `Quick test_with_trace_nests_and_restores;
          Alcotest.test_case "reaches worker domains" `Quick
            test_with_trace_reaches_worker_domains;
          Alcotest.test_case "isolated across domains" `Quick
            test_trace_isolated_across_domains;
          Alcotest.test_case "in exports" `Quick test_trace_in_exports ] );
      ( "spans",
        [ Alcotest.test_case "nesting under fake clock" `Quick test_nested_spans_fake_clock;
          Alcotest.test_case "end on raise" `Quick test_span_end_recorded_on_raise;
          Alcotest.test_case "ring overflow" `Quick test_span_ring_overflow;
          Alcotest.test_case "disabled records nothing" `Quick test_disabled_span_records_nothing;
          Alcotest.test_case "ring wrap keeps pairing" `Quick test_ring_wrap_keeps_pairing;
          Alcotest.test_case "worker domain spans" `Quick test_worker_domain_spans;
          Alcotest.test_case "parallel engine spans" `Quick test_parallel_engine_spans ] );
      ( "exporters",
        [ Alcotest.test_case "jsonl golden" `Quick test_jsonl_golden;
          Alcotest.test_case "chrome trace golden" `Quick test_chrome_trace_golden;
          Alcotest.test_case "json_float non-finite" `Quick test_json_float_nonfinite;
          Alcotest.test_case "json snapshot non-finite" `Quick test_json_snapshot_nonfinite_gauge;
          Alcotest.test_case "prometheus non-finite" `Quick test_prometheus_nonfinite_gauge;
          Alcotest.test_case "prometheus histogram invariants" `Quick
            test_prometheus_histogram_invariants;
          Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
          Alcotest.test_case "json snapshot golden" `Quick test_json_snapshot_golden;
          Alcotest.test_case "report table" `Quick test_report_table ] );
      ( "resource",
        [ Alcotest.test_case "gauges sampled" `Quick test_resource_gauges;
          Alcotest.test_case "disabled no-op" `Quick test_resource_disabled_is_noop ] );
      ( "progress",
        [ Alcotest.test_case "meter renders" `Quick test_progress_meter;
          Alcotest.test_case "disabled is silent" `Quick test_progress_disabled_is_silent;
          Alcotest.test_case "concurrent runs stay independent" `Quick
            test_progress_concurrent_runs;
          Alcotest.test_case "through trial drivers" `Quick test_progress_through_trial_drivers;
          Alcotest.test_case "tty sink gates on isatty" `Quick test_progress_tty_sink_gates;
          Alcotest.test_case "injected sink not gated" `Quick
            test_progress_injected_sink_not_gated ] );
      ( "json",
        [ Alcotest.test_case "parse structure" `Quick test_json_parse_structure;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "escape roundtrip" `Quick test_json_escape_roundtrip;
          Alcotest.test_case "bench document" `Quick test_json_parses_bench_document;
          Alcotest.test_case "to_string roundtrip" `Quick test_json_to_string_roundtrip;
          Alcotest.test_case "compact golden" `Quick test_json_to_string_compact_golden;
          Alcotest.test_case "non-finite encodes null" `Quick
            test_json_to_string_nonfinite_is_null;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode_escapes ] );
      ( "pipeline",
        [ Alcotest.test_case "montecarlo metrics" `Quick test_montecarlo_metrics_flow;
          Alcotest.test_case "determinism" `Quick test_montecarlo_determinism_under_instrumentation ] );
      ( "timeseries",
        [ Alcotest.test_case "ring wrap-around" `Quick test_timeseries_ring_wraparound;
          Alcotest.test_case "counter reset clamps" `Quick
            test_timeseries_counter_reset_clamps;
          Alcotest.test_case "window excludes old samples" `Quick
            test_timeseries_window_excludes_old_samples;
          Alcotest.test_case "gauge series" `Quick test_timeseries_gauge_series;
          Alcotest.test_case "windowed quantile tracks exact" `Quick
            test_timeseries_windowed_quantile_agrees;
          Alcotest.test_case "quantile series skips empty steps" `Quick
            test_timeseries_quantile_series_skips_empty_steps;
          Alcotest.test_case "rejects bad shape" `Quick test_timeseries_rejects_bad_shape ] );
      ( "alerts",
        [ Alcotest.test_case "rule grammar" `Quick test_alerts_parse_rules;
          Alcotest.test_case "fire and resolve" `Quick test_alerts_fire_and_resolve;
          Alcotest.test_case "empty timeseries is a no-op" `Quick
            test_alerts_empty_timeseries_noop ] );
    ]
