(* Tests for the model extensions: power-grid coupling, traffic shifts,
   recovery, resilience testing of distributed services, and the
   sensitivity ablations. *)

open Stormsim

let submarine = lazy (Datasets.Submarine.build ())
let check_close eps = Alcotest.(check (float eps))

(* --- Powergrid --- *)

let test_regions_cover_dataset_countries () =
  (* Every country appearing in the submarine dataset must belong to a
     grid region. *)
  let net = Lazy.force submarine in
  let missing = Hashtbl.create 8 in
  for i = 0 to Infra.Network.nb_nodes net - 1 do
    let c = (Infra.Network.node net i).Infra.Network.country in
    if Powergrid.region_of_country c = None then Hashtbl.replace missing c ()
  done;
  let missing = Hashtbl.fold (fun c () acc -> c :: acc) missing [] in
  Alcotest.(check (list string)) "no uncovered countries" [] (List.sort compare missing)

let test_grid_failure_latitude_ordering () =
  let find name = List.find (fun (r : Powergrid.region) -> r.Powergrid.name = name) Powergrid.world_regions in
  let p_nordic = Powergrid.failure_probability (find "Nordic") ~dst_nt:(-589.0) in
  let p_sea = Powergrid.failure_probability (find "Southeast Asia") ~dst_nt:(-589.0) in
  Alcotest.(check bool) "nordic >> southeast asia" true (p_nordic > 3.0 *. p_sea)

let test_quebec_1989_anchor () =
  (* The 1989 storm collapsed the (high-latitude, high-GIC) Canadian grid. *)
  let canada =
    List.find (fun (r : Powergrid.region) -> r.Powergrid.name = "Canada") Powergrid.world_regions
  in
  let p = Powergrid.failure_probability canada ~dst_nt:(-589.0) in
  Alcotest.(check bool) (Printf.sprintf "P %.2f >= 0.8" p) true (p >= 0.8)

let test_grid_failure_monotone_in_storm () =
  let region = List.hd Powergrid.world_regions in
  Alcotest.(check bool) "stronger storm, likelier collapse" true
    (Powergrid.failure_probability region ~dst_nt:(-1200.0)
    >= Powergrid.failure_probability region ~dst_nt:(-100.0))

let test_outage_duration_scales () =
  let rng = Rng.create 5 in
  let region = List.hd Powergrid.world_regions in
  let sample dst =
    Stats.mean (List.init 200 (fun _ -> Powergrid.outage_days rng region ~dst_nt:dst))
  in
  let weak = sample (-200.0) and strong = sample (-1200.0) in
  Alcotest.(check bool) "weak storms: days" true (weak < 10.0);
  Alcotest.(check bool) "carrington: weeks-months" true (strong > 20.0)

let test_coupled_simulation_amplifies () =
  let net = Lazy.force submarine in
  let r =
    Powergrid.simulate ~trials:10 ~network:net ~model:Failure_model.s1 ~dst_nt:(-1200.0) ()
  in
  Alcotest.(check bool) "grid adds darkness" true
    (r.Powergrid.nodes_dark_pct >= r.Powergrid.nodes_cable_dark_pct);
  Alcotest.(check bool) "amplification > 1.5" true (r.Powergrid.amplification > 1.5);
  Alcotest.(check bool) "high-latitude grids down" true
    (List.mem "Nordic" r.Powergrid.regions_down || List.mem "Canada" r.Powergrid.regions_down)

let test_coupled_simulation_mild_storm () =
  let net = Lazy.force submarine in
  let r =
    Powergrid.simulate ~trials:10 ~network:net
      ~model:(Failure_model.uniform 0.0001) ~dst_nt:(-100.0) ()
  in
  Alcotest.(check bool) "equatorial grids stay up" true
    (not (List.mem "Southeast Asia" r.Powergrid.regions_down));
  Alcotest.(check bool) "little darkness" true (r.Powergrid.nodes_dark_pct < 30.0)

(* --- Traffic --- *)

let test_gravity_demands_normalized () =
  let d = Traffic.gravity_demands () in
  check_close 1e-6 "total 100" 100.0
    (List.fold_left (fun a (x : Traffic.demand) -> a +. x.Traffic.volume) 0.0 d);
  Alcotest.(check int) "15 continent pairs" 15 (List.length d)

let test_healthy_routing_delivers_everything () =
  let net = Lazy.force submarine in
  let r = Traffic.route ~network:net ~demands:(Traffic.gravity_demands ()) () in
  check_close 1e-6 "all delivered" 100.0 r.Traffic.delivered_pct;
  Alcotest.(check bool) "loads positive" true (r.Traffic.max_cable_load > 0.0)

let test_storm_shift_reduces_delivery () =
  let net = Lazy.force submarine in
  let base, after = Traffic.storm_shift ~trials:5 ~network:net ~model:Failure_model.s1 () in
  Alcotest.(check bool) "baseline complete" true (base.Traffic.delivered_pct > 99.0);
  Alcotest.(check bool) "S1 cuts delivery" true
    (after.Traffic.delivered_pct < base.Traffic.delivered_pct -. 10.0)

let test_storm_shift_mild_keeps_delivery () =
  let net = Lazy.force submarine in
  let _, after =
    Traffic.storm_shift ~trials:5 ~network:net ~model:(Failure_model.uniform 0.001) ()
  in
  Alcotest.(check bool) "mild storms deliver" true (after.Traffic.delivered_pct > 80.0)

(* --- Recovery --- *)

let test_plan_empty () =
  let net = Lazy.force submarine in
  let dead = Array.make (Infra.Network.nb_cables net) false in
  let tl = Recovery.plan ~network:net ~dead () in
  check_close 1e-9 "nothing to do" 0.0 tl.Recovery.days_to_full

let test_plan_single_cable () =
  let net = Lazy.force submarine in
  let dead = Array.make (Infra.Network.nb_cables net) false in
  dead.(0) <- true;
  let tl = Recovery.plan ~network:net ~dead () in
  Alcotest.(check bool) "one job takes >= base days" true
    (tl.Recovery.days_to_full >= Recovery.default_params.Recovery.base_repair_days);
  check_close 1e-9 "50% = full for one job" tl.Recovery.days_to_full tl.Recovery.days_to_50_pct

let test_plan_ordering_and_monotone_series () =
  let net = Lazy.force submarine in
  let dead =
    Array.init (Infra.Network.nb_cables net) (fun i -> i mod 3 = 0)
  in
  let tl = Recovery.plan ~network:net ~dead () in
  Alcotest.(check bool) "50 <= 90 <= full" true
    (tl.Recovery.days_to_50_pct <= tl.Recovery.days_to_90_pct
    && tl.Recovery.days_to_90_pct <= tl.Recovery.days_to_full);
  let rec monotone = function
    | (d1, f1) :: ((d2, f2) :: _ as rest) -> d1 <= d2 && f1 <= f2 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "series monotone" true (monotone tl.Recovery.series)

let test_more_ships_faster () =
  let net = Lazy.force submarine in
  let dead = Array.init (Infra.Network.nb_cables net) (fun i -> i mod 2 = 0) in
  let slow =
    Recovery.plan ~params:{ Recovery.default_params with Recovery.ships = 10 } ~network:net
      ~dead ()
  in
  let fast =
    Recovery.plan ~params:{ Recovery.default_params with Recovery.ships = 120 } ~network:net
      ~dead ()
  in
  Alcotest.(check bool) "fleet size matters" true
    (fast.Recovery.days_to_full < slow.Recovery.days_to_full);
  check_close 1.0 "same total work" slow.Recovery.total_ship_days fast.Recovery.total_ship_days

let test_recovery_months_for_s1 () =
  (* The paper's abstract: outages "lasting several months". *)
  let net = Lazy.force submarine in
  let tl, dead = Recovery.storm_recovery ~trials:3 ~network:net ~model:Failure_model.s1 () in
  Alcotest.(check bool) "many cables dead" true (dead > 80.0);
  Alcotest.(check bool)
    (Printf.sprintf "full restoration %.0f d in months-year range" tl.Recovery.days_to_full)
    true
    (tl.Recovery.days_to_full > 60.0 && tl.Recovery.days_to_full < 1500.0)

let test_cost_model () =
  check_close 1e-3 "7B/day at full outage" 7e9
    (Recovery.us_outage_cost_usd ~dark_fraction:1.0 ~days:1.0);
  check_close 1e-3 "scales" (7e9 *. 0.5 *. 10.0)
    (Recovery.us_outage_cost_usd ~dark_fraction:0.5 ~days:10.0)

let test_plan_validation () =
  let net = Lazy.force submarine in
  Alcotest.check_raises "size mismatch" (Invalid_argument "Recovery.plan: dead array size mismatch")
    (fun () -> ignore (Recovery.plan ~network:net ~dead:[| true |] ()))

(* --- Resilience_test --- *)

let test_suite_runs () =
  let net = Lazy.force submarine in
  let results = Resilience_test.run_suite ~network:net () in
  Alcotest.(check int) "all services" (List.length Resilience_test.sample_services)
    (List.length results);
  List.iter
    (fun (a : Resilience_test.availability) ->
      Alcotest.(check bool) "read >= write" true
        (a.Resilience_test.read_pct >= a.Resilience_test.write_pct -. 1e-9);
      Alcotest.(check bool) "percent range" true
        (a.Resilience_test.read_pct >= 0.0 && a.Resilience_test.read_pct <= 100.0))
    results

let test_anycast_beats_majority_db () =
  (* Quorum-1 anycast must be at least as available as a majority-quorum
     database on the same kind of placement. *)
  let net = Lazy.force submarine in
  let by_name name =
    List.find
      (fun (a : Resilience_test.availability) ->
        a.Resilience_test.service.Resilience_test.name = name)
      (Resilience_test.run_suite ~network:net ())
  in
  Alcotest.(check bool) "anycast read >= db write" true
    ((by_name "anycast-cdn").Resilience_test.read_pct
    >= (by_name "global-majority-db").Resilience_test.write_pct)

let test_availability_better_under_mild_state () =
  let net = Lazy.force submarine in
  let svc = List.hd Resilience_test.sample_services in
  let harsh = Resilience_test.evaluate ~state:Failure_model.s1 ~network:net svc in
  let mild =
    Resilience_test.evaluate ~state:(Failure_model.uniform 0.0001) ~network:net svc
  in
  Alcotest.(check bool) "mild >= harsh" true
    (mild.Resilience_test.read_pct >= harsh.Resilience_test.read_pct)

let test_quorum_validation () =
  let net = Lazy.force submarine in
  let bad = { Resilience_test.name = "bad"; replicas = [ "London" ]; write_quorum = 2; read_quorum = 1 } in
  Alcotest.check_raises "quorum too large"
    (Invalid_argument "Resilience_test.evaluate: bad write quorum") (fun () ->
      ignore (Resilience_test.evaluate ~network:net bad))

let test_placement_gain_positive_for_spreading () =
  let net = Lazy.force submarine in
  let concentrated =
    { Resilience_test.name = "conc"; replicas = [ "London"; "Amsterdam"; "Paris" ];
      write_quorum = 2; read_quorum = 1 }
  in
  let spread =
    { Resilience_test.name = "spread"; replicas = [ "Singapore"; "Sao Paulo"; "Mumbai" ];
      write_quorum = 2; read_quorum = 1 }
  in
  Alcotest.(check bool) "low-latitude placement helps" true
    (Resilience_test.placement_gain ~network:net ~before:concentrated ~after:spread >= 0.0)

(* --- Sensitivity --- *)

let test_threshold_sweep_monotone () =
  (* Raising the vulnerable-latitude boundary shrinks the mid/high tiers,
     so failures decrease. *)
  let net = Lazy.force submarine in
  let rows = Sensitivity.threshold_sweep ~trials:5 ~network:net () in
  Alcotest.(check int) "5 thresholds" 5 (List.length rows);
  let first = snd (List.hd rows) and last = snd (List.nth rows (List.length rows - 1)) in
  Alcotest.(check bool) "30 deg worse than 50 deg" true (first > last)

let test_geomag_ablation_direction () =
  (* Geomagnetic tiers pull North Atlantic cables up a tier: failures grow. *)
  let net = Lazy.force submarine in
  let rows = Sensitivity.geographic_vs_geomagnetic ~trials:5 ~network:net () in
  List.iter
    (fun (state, geo, gm) ->
      Alcotest.(check bool) (state ^ ": geomag >= geographic") true (gm >= geo -. 1.0))
    rows

let test_spacing_sweep_monotone () =
  let net = Lazy.force submarine in
  let rows =
    Sensitivity.spacing_sweep ~trials:5 ~network:net ~model:(Failure_model.uniform 0.01) ()
  in
  let first = snd (List.hd rows) and last = snd (List.nth rows (List.length rows - 1)) in
  Alcotest.(check bool) "tighter spacing, more failures" true (first > last)

let test_seed_sensitivity_small () =
  (* Dataset-generation noise must be small relative to the signal. *)
  let mean, std = Sensitivity.seed_sensitivity ~seeds:[ 1; 2; 3 ] ~trials:5 ~probability:0.01 () in
  Alcotest.(check bool) (Printf.sprintf "mean %.1f in [8, 20]" mean) true
    (mean > 8.0 && mean < 20.0);
  Alcotest.(check bool) (Printf.sprintf "std %.2f < 3" std) true (std < 3.0)

let test_scale_a_sweep_monotone () =
  let net = Lazy.force submarine in
  let rows = Sensitivity.scale_a_sweep ~network:net ~dst_nt:(-1200.0) () in
  let rec decreasing = function
    | (_, a) :: ((_, b) :: _ as rest) -> a >= b -. 1e-9 && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "tougher repeaters, fewer failures" true (decreasing rows)

(* --- Segment-level ablation --- *)

let test_segment_trial_shape () =
  let net = Lazy.force submarine in
  let plan = Plan.compile ~network:net ~model:(Failure_model.uniform 0.01) () in
  let rng = Rng.create 3 in
  let hops = Segment_model.trial_segments rng ~plan in
  let expected_hops = ref 0 in
  for c = 0 to Infra.Network.nb_cables net - 1 do
    expected_hops := !expected_hops + Infra.Cable.hop_count (Infra.Network.cable net c)
  done;
  Alcotest.(check int) "one flag per hop" !expected_hops (Array.length hops)

let test_segment_p0_p1 () =
  let net = Lazy.force submarine in
  let rng = Rng.create 4 in
  let all_alive =
    Segment_model.trial_segments rng
      ~plan:(Plan.compile ~network:net ~model:(Failure_model.uniform 0.0) ())
  in
  Alcotest.(check bool) "p=0 kills nothing" true (Array.for_all not all_alive);
  Alcotest.(check (float 1e-9)) "no unreachable" 0.0
    (Segment_model.nodes_unreachable_pct_segments net all_alive)

let test_segment_less_pessimistic () =
  (* The headline of the ablation: hop-level failures isolate far fewer
     nodes than whole-cable failures. *)
  let net = Lazy.force submarine in
  let c = Segment_model.compare_models ~trials:5 ~network:net ~model:Failure_model.s1 () in
  Alcotest.(check bool)
    (Printf.sprintf "%.1f%% < %.1f%%" c.Segment_model.segment_level_nodes_pct
       c.Segment_model.cable_level_nodes_pct)
    true
    (c.Segment_model.segment_level_nodes_pct
    < 0.6 *. c.Segment_model.cable_level_nodes_pct);
  Alcotest.(check bool) "hops fail less often than cables" true
    (c.Segment_model.segment_level_segments_pct < c.Segment_model.cable_level_cables_pct)

(* --- Hybrid satellite fallback --- *)

let test_hybrid_carrington () =
  let net = Lazy.force submarine in
  let a = Hybrid.assess ~trials:3 ~network:net ~model:Failure_model.s1 ~dst_nt:(-1200.0) () in
  Alcotest.(check bool) "substantial displaced demand" true
    (a.Hybrid.undeliverable_demand_pct > 20.0);
  Alcotest.(check bool) "fleet survives mostly" true (a.Hybrid.fleet_surviving > 3000);
  (* The headline: a mega-constellation absorbs only a small slice of the
     displaced intercontinental demand. *)
  Alcotest.(check bool)
    (Printf.sprintf "absorbable %.1f%% < 30%%" a.Hybrid.absorbable_pct)
    true (a.Hybrid.absorbable_pct < 30.0)

let test_hybrid_mild_storm_trivial () =
  let net = Lazy.force submarine in
  let a =
    Hybrid.assess ~trials:3 ~network:net ~model:(Failure_model.uniform 0.0001)
      ~dst_nt:(-100.0) ()
  in
  Alcotest.(check bool) "little displaced" true (a.Hybrid.undeliverable_demand_pct < 10.0);
  Alcotest.(check bool) "absorbable high or trivial" true (a.Hybrid.absorbable_pct > 10.0)

let test_hybrid_capacity_accounting () =
  let net = Lazy.force submarine in
  let a = Hybrid.assess ~trials:2 ~network:net ~model:Failure_model.s2 ~dst_nt:(-600.0) () in
  check_close 1e-6 "capacity = fleet x per-sat"
    (float_of_int a.Hybrid.fleet_surviving *. Hybrid.per_satellite_gbps /. 1000.0)
    a.Hybrid.satellite_capacity_tbps

(* --- Capacity --- *)

let test_cable_capacity_tiers () =
  let mk len =
    Infra.Cable.make ~id:0 ~name:"c" ~kind:Infra.Cable.Submarine
      ~landings:[ (0, Geo.Coord.make ~lat:0.0 ~lon:0.0); (1, Geo.Coord.make ~lat:0.0 ~lon:1.0) ]
      ~length_km:len ()
  in
  Alcotest.(check (float 1e-9)) "festoon 8 pairs" 120.0 (Capacity.cable_capacity_tbps (mk 500.0));
  Alcotest.(check (float 1e-9)) "regional 6 pairs" 90.0 (Capacity.cable_capacity_tbps (mk 5000.0));
  Alcotest.(check (float 1e-9)) "transoceanic 4 pairs" 60.0
    (Capacity.cable_capacity_tbps (mk 12000.0))

let test_network_capacity_positive () =
  let net = Lazy.force submarine in
  let c = Capacity.network_capacity_tbps net in
  Alcotest.(check bool) (Printf.sprintf "%.0f Tbps plausible" c) true
    (c > 20000.0 && c < 100000.0)

let test_corridor_atlantic_collapses_under_s1 () =
  let net = Lazy.force submarine in
  let r =
    Capacity.analyze_corridor ~trials:5 ~network:net ~model:Failure_model.s1
      Capacity.atlantic
  in
  Alcotest.(check bool) "healthy capacity large" true (r.Capacity.healthy_tbps > 500.0);
  Alcotest.(check bool)
    (Printf.sprintf "surviving %.0f%% < 30%%" r.Capacity.surviving_pct)
    true (r.Capacity.surviving_pct < 30.0);
  Alcotest.(check bool) "cut names transatlantic systems" true
    (List.exists (fun n -> n = "TAT-14" || n = "MAREA" || n = "AC-2 Yellow")
       r.Capacity.min_cut_cables)

let test_corridor_brazil_beats_atlantic () =
  let net = Lazy.force submarine in
  let atlantic =
    Capacity.analyze_corridor ~trials:5 ~network:net ~model:Failure_model.s1
      Capacity.atlantic
  in
  let brazil =
    Capacity.analyze_corridor ~trials:5 ~network:net ~model:Failure_model.s1
      Capacity.brazil_europe
  in
  Alcotest.(check bool) "brazil survives better" true
    (brazil.Capacity.surviving_pct > atlantic.Capacity.surviving_pct)

let test_corridor_empty_side () =
  let net = Lazy.force submarine in
  let r =
    Capacity.analyze_corridor ~trials:2 ~network:net ~model:Failure_model.s1
      { Capacity.name = "nowhere"; from_countries = [ "Narnia" ]; to_countries = [ "Brazil" ] }
  in
  Alcotest.(check (float 1e-9)) "zero healthy" 0.0 r.Capacity.healthy_tbps

let test_standard_report_complete () =
  let net = Lazy.force submarine in
  let rs = Capacity.standard_report ~trials:3 ~network:net ~model:Failure_model.s2 () in
  Alcotest.(check int) "four corridors" 4 (List.length rs);
  List.iter
    (fun (r : Capacity.corridor_report) ->
      Alcotest.(check bool) "expected <= healthy" true
        (r.Capacity.expected_tbps <= r.Capacity.healthy_tbps +. 1e-6))
    rs

(* --- Shutdown decision & DNS reachability --- *)

let test_shutdown_decision_carrington () =
  let net = Lazy.force submarine in
  let d =
    Mitigation.shutdown_decision ~cme:Spaceweather.Cme.carrington_1859 ~network:net ()
  in
  Alcotest.(check bool) "storm window days-scale" true
    (d.Mitigation.storm_window_h > 12.0 && d.Mitigation.storm_window_h < 240.0);
  Alcotest.(check bool) "de-powering reduces failures" true
    (d.Mitigation.failure_fraction_off < d.Mitigation.failure_fraction_powered);
  Alcotest.(check bool) "downtimes positive" true
    (d.Mitigation.downtime_powered_days > 0.0 && d.Mitigation.downtime_off_days > 0.0)

let test_shutdown_decision_weak_storm_not_recommended () =
  (* For a storm too weak to damage repeaters, powering off only costs
     service. *)
  let net = Lazy.force submarine in
  let weak = Spaceweather.Cme.make ~speed_km_s:600.0 ~southward_b_nt:5.0 () in
  let d = Mitigation.shutdown_decision ~cme:weak ~network:net () in
  Alcotest.(check bool) "not recommended" false d.Mitigation.recommended

let test_dns_reachability_s1 () =
  let net = Lazy.force submarine in
  let dns = Datasets.Dns_roots.build () in
  let r = Systems.dns_reachability ~network:net dns in
  Alcotest.(check bool) "percent ranges" true
    (r.Systems.any_root_pct >= 0.0 && r.Systems.any_root_pct <= 100.0);
  Alcotest.(check bool) "any >= majority" true
    (r.Systems.any_root_pct >= r.Systems.majority_letters_pct);
  (* The big landmass partitions keep root service: a solid share of nodes
     still sees at least one instance. *)
  Alcotest.(check bool)
    (Printf.sprintf "any %.0f%% > 25%%" r.Systems.any_root_pct)
    true (r.Systems.any_root_pct > 25.0)

let test_dns_reachability_mild_state_near_full () =
  let net = Lazy.force submarine in
  let dns = Datasets.Dns_roots.build () in
  let r =
    Systems.dns_reachability ~state:(Failure_model.uniform 0.00001) ~network:net dns
  in
  Alcotest.(check bool) (Printf.sprintf "any %.0f%% ~ 100%%" r.Systems.any_root_pct) true
    (r.Systems.any_root_pct > 95.0);
  Alcotest.(check bool) "most letters visible" true (r.Systems.mean_letters > 10.0)

(* --- Event generator --- *)

let test_events_chronological_and_bounded () =
  let rng = Rng.create 9 in
  let evs = Spaceweather.Event_generator.generate ~rng ~start:2021.0 ~stop:2051.0 () in
  let rec sorted = function
    | (a : Spaceweather.Event_generator.event) :: (b :: _ as rest) ->
        a.Spaceweather.Event_generator.year <= b.Spaceweather.Event_generator.year
        && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "chronological" true (sorted evs);
  List.iter
    (fun (e : Spaceweather.Event_generator.event) ->
      Alcotest.(check bool) "in window" true
        (e.Spaceweather.Event_generator.year >= 2021.0
        && e.Spaceweather.Event_generator.year < 2051.0);
      Alcotest.(check bool) "at least intense" true
        (e.Spaceweather.Event_generator.dst_nt <= -100.0))
    evs

let test_events_rate_plausible () =
  (* The calibrated tail gives roughly 0.5-1.5 intense+ events/year after
     modulation during the current epoch. *)
  let master = Rng.create 11 in
  let counts =
    List.init 30 (fun _ ->
        let rng = Rng.split master in
        List.length
          (Spaceweather.Event_generator.generate ~rng ~start:2021.0 ~stop:2031.0 ()))
  in
  let mean = Stats.mean (List.map float_of_int counts) in
  Alcotest.(check bool) (Printf.sprintf "mean %.1f in [3, 18] per decade" mean) true
    (mean > 3.0 && mean < 18.0)

let test_events_empty_window () =
  let rng = Rng.create 1 in
  Alcotest.(check (list reject)) "empty" []
    (List.map (fun _ -> ())
       (Spaceweather.Event_generator.generate ~rng ~start:2021.0 ~stop:2021.0 ()))

let test_events_validation () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "inverted"
    (Invalid_argument "Event_generator.generate: stop < start") (fun () ->
      ignore (Spaceweather.Event_generator.generate ~rng ~start:2030.0 ~stop:2020.0 ()))

let test_carrington_window_probability () =
  (* Current (Gleissberg-suppressed) decade sits below the long-run 12%. *)
  let p =
    Spaceweather.Event_generator.carrington_in_window ~trials:200 ~seed:13 ~start:2021.0
      ~stop:2031.0 ()
  in
  Alcotest.(check bool) (Printf.sprintf "P %.3f in [0.005, 0.15]" p) true
    (p > 0.005 && p < 0.15)

let test_worst_and_count () =
  let evs =
    [ { Spaceweather.Event_generator.year = 2022.0; dst_nt = -150.0;
        severity = Spaceweather.Dst.severity_of_dst (-150.0) };
      { Spaceweather.Event_generator.year = 2024.0; dst_nt = -900.0;
        severity = Spaceweather.Dst.severity_of_dst (-900.0) } ]
  in
  (match Spaceweather.Event_generator.worst evs with
  | Some w -> Alcotest.(check (float 1e-9)) "deepest" (-900.0) w.Spaceweather.Event_generator.dst_nt
  | None -> Alcotest.fail "no worst");
  Alcotest.(check int) "carrington count" 1
    (Spaceweather.Event_generator.count_at_least evs Spaceweather.Dst.Carrington);
  Alcotest.(check bool) "empty worst" true (Spaceweather.Event_generator.worst [] = None)

let () =
  Alcotest.run "extensions"
    [
      ( "segment_model",
        [ Alcotest.test_case "trial shape" `Quick test_segment_trial_shape;
          Alcotest.test_case "p0 boundary" `Quick test_segment_p0_p1;
          Alcotest.test_case "less pessimistic" `Quick test_segment_less_pessimistic ] );
      ( "hybrid",
        [ Alcotest.test_case "carrington fallback" `Quick test_hybrid_carrington;
          Alcotest.test_case "mild storm" `Quick test_hybrid_mild_storm_trivial;
          Alcotest.test_case "capacity accounting" `Quick test_hybrid_capacity_accounting ] );
      ( "capacity",
        [ Alcotest.test_case "cable tiers" `Quick test_cable_capacity_tiers;
          Alcotest.test_case "network total" `Quick test_network_capacity_positive;
          Alcotest.test_case "atlantic collapses" `Quick
            test_corridor_atlantic_collapses_under_s1;
          Alcotest.test_case "brazil beats atlantic" `Quick test_corridor_brazil_beats_atlantic;
          Alcotest.test_case "empty side" `Quick test_corridor_empty_side;
          Alcotest.test_case "standard report" `Slow test_standard_report_complete ] );
      ( "shutdown_and_dns",
        [ Alcotest.test_case "carrington decision" `Quick test_shutdown_decision_carrington;
          Alcotest.test_case "weak storm not recommended" `Quick
            test_shutdown_decision_weak_storm_not_recommended;
          Alcotest.test_case "dns under S1" `Quick test_dns_reachability_s1;
          Alcotest.test_case "dns under mild state" `Quick
            test_dns_reachability_mild_state_near_full ] );
      ( "event_generator",
        [ Alcotest.test_case "chronological + bounded" `Quick
            test_events_chronological_and_bounded;
          Alcotest.test_case "rate plausible" `Quick test_events_rate_plausible;
          Alcotest.test_case "empty window" `Quick test_events_empty_window;
          Alcotest.test_case "validation" `Quick test_events_validation;
          Alcotest.test_case "carrington window" `Slow test_carrington_window_probability;
          Alcotest.test_case "worst and count" `Quick test_worst_and_count ] );
      ( "powergrid",
        [ Alcotest.test_case "regions cover countries" `Quick
            test_regions_cover_dataset_countries;
          Alcotest.test_case "latitude ordering" `Quick test_grid_failure_latitude_ordering;
          Alcotest.test_case "quebec 1989 anchor" `Quick test_quebec_1989_anchor;
          Alcotest.test_case "monotone in storm" `Quick test_grid_failure_monotone_in_storm;
          Alcotest.test_case "outage durations" `Quick test_outage_duration_scales;
          Alcotest.test_case "coupling amplifies" `Quick test_coupled_simulation_amplifies;
          Alcotest.test_case "mild storm" `Quick test_coupled_simulation_mild_storm ] );
      ( "traffic",
        [ Alcotest.test_case "demands normalized" `Quick test_gravity_demands_normalized;
          Alcotest.test_case "healthy delivery" `Quick test_healthy_routing_delivers_everything;
          Alcotest.test_case "S1 cuts delivery" `Quick test_storm_shift_reduces_delivery;
          Alcotest.test_case "mild keeps delivery" `Quick test_storm_shift_mild_keeps_delivery ] );
      ( "recovery",
        [ Alcotest.test_case "empty plan" `Quick test_plan_empty;
          Alcotest.test_case "single cable" `Quick test_plan_single_cable;
          Alcotest.test_case "ordering + series" `Quick test_plan_ordering_and_monotone_series;
          Alcotest.test_case "fleet size" `Quick test_more_ships_faster;
          Alcotest.test_case "months for S1" `Quick test_recovery_months_for_s1;
          Alcotest.test_case "cost model" `Quick test_cost_model;
          Alcotest.test_case "validation" `Quick test_plan_validation ] );
      ( "resilience_test",
        [ Alcotest.test_case "suite runs" `Quick test_suite_runs;
          Alcotest.test_case "anycast vs majority" `Quick test_anycast_beats_majority_db;
          Alcotest.test_case "state ordering" `Quick test_availability_better_under_mild_state;
          Alcotest.test_case "quorum validation" `Quick test_quorum_validation;
          Alcotest.test_case "placement gain" `Quick test_placement_gain_positive_for_spreading ] );
      ( "sensitivity",
        [ Alcotest.test_case "threshold sweep" `Quick test_threshold_sweep_monotone;
          Alcotest.test_case "geomag direction" `Quick test_geomag_ablation_direction;
          Alcotest.test_case "spacing sweep" `Quick test_spacing_sweep_monotone;
          Alcotest.test_case "seed sensitivity" `Slow test_seed_sensitivity_small;
          Alcotest.test_case "scale sweep" `Quick test_scale_a_sweep_monotone ] );
    ]
