(* Tests for the lib/server service layer: the hardened HTTP parser
   (valid, truncated, oversized, pipelined input), the router's error
   mapping, the LRU, the canonical result cache (a repeated request is
   answered byte-identically without re-running trials), and a loopback
   end-to-end exchange against a real socket on an ephemeral port. *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0

let counter_value name =
  match List.assoc_opt name (Obs.Metrics.snapshot ()) with
  | Some (Obs.Metrics.Counter n) -> n
  | _ -> 0

(* Server state is process-global (metrics, result cache, plan memo);
   every test starts clean and leaves the layer off. *)
let with_server_state f =
  Obs.reset ();
  Obs.enable ();
  Server.Api.reset ();
  Fun.protect
    ~finally:(fun () ->
      Server.Api.reset ();
      Obs.disable ();
      Obs.reset ())
    f

(* --- HTTP parser --- *)

let parse s = Server.Http.parse_request (Server.Http.conn_of_string s)

let test_parse_valid_get () =
  match parse "GET /healthz?probe=1 HTTP/1.1\r\nHost: localhost\r\nX-Extra:  spaced  \r\n\r\n" with
  | Error _ -> Alcotest.fail "valid GET rejected"
  | Ok req ->
      Alcotest.(check bool) "method" true (req.Server.Http.meth = Server.Http.GET);
      Alcotest.(check string) "target keeps query" "/healthz?probe=1" req.Server.Http.target;
      Alcotest.(check string) "path strips query" "/healthz" (Server.Http.path req);
      Alcotest.(check (option string)) "case-insensitive header" (Some "localhost")
        (Server.Http.header req "HOST");
      Alcotest.(check (option string)) "value trimmed" (Some "spaced")
        (Server.Http.header req "x-extra");
      Alcotest.(check string) "no body" "" req.Server.Http.body;
      Alcotest.(check bool) "keep-alive by default" false (Server.Http.wants_close req)

let test_parse_valid_post_body () =
  let body = "{\"trials\":3}" in
  let raw =
    Printf.sprintf "POST /simulate HTTP/1.1\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
      (String.length body) body
  in
  match parse raw with
  | Error _ -> Alcotest.fail "valid POST rejected"
  | Ok req ->
      Alcotest.(check bool) "method" true (req.Server.Http.meth = Server.Http.POST);
      Alcotest.(check string) "body" body req.Server.Http.body;
      Alcotest.(check bool) "connection: close honoured" true (Server.Http.wants_close req)

let test_parse_http10_defaults_to_close () =
  match parse "GET / HTTP/1.0\r\n\r\n" with
  | Ok req -> Alcotest.(check bool) "HTTP/1.0 closes" true (Server.Http.wants_close req)
  | Error _ -> Alcotest.fail "HTTP/1.0 rejected"

let expect_error name raw check =
  match parse raw with
  | Ok _ -> Alcotest.fail (name ^ ": accepted")
  | Error e -> check e

let test_parse_truncated () =
  expect_error "truncated head" "GET / HTTP/1.1\r\nHost: x" (function
    | Server.Http.Bad_request m ->
        Alcotest.(check bool) "names the truncation" true (contains m "truncated")
    | _ -> Alcotest.fail "wrong error");
  expect_error "truncated body" "POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc" (function
    | Server.Http.Bad_request m ->
        Alcotest.(check bool) "names the truncation" true (contains m "truncated")
    | _ -> Alcotest.fail "wrong error");
  expect_error "empty input is EOF" "" (function
    | Server.Http.Eof -> ()
    | _ -> Alcotest.fail "wrong error")

let test_parse_garbage () =
  expect_error "not HTTP" "hello world\r\n\r\n" (function
    | Server.Http.Bad_request _ -> ()
    | _ -> Alcotest.fail "wrong error");
  expect_error "bad version" "GET / HTTP/2.0\r\n\r\n" (function
    | Server.Http.Bad_request m ->
        Alcotest.(check bool) "names the version" true (contains m "version")
    | _ -> Alcotest.fail "wrong error");
  expect_error "bad content-length" "POST / HTTP/1.1\r\ncontent-length: nope\r\n\r\n" (function
    | Server.Http.Bad_request _ -> ()
    | _ -> Alcotest.fail "wrong error");
  expect_error "chunked unsupported" "POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"
    (function
    | Server.Http.Bad_request m ->
        Alcotest.(check bool) "names transfer-encoding" true (contains m "transfer-encoding")
    | _ -> Alcotest.fail "wrong error")

let test_parse_oversized () =
  let limits = { Server.Http.max_head = 64; Server.Http.max_body = 16 } in
  let big_head =
    "GET / HTTP/1.1\r\nx-pad: " ^ String.make 100 'a' ^ "\r\n\r\n"
  in
  (match Server.Http.parse_request ~limits (Server.Http.conn_of_string big_head) with
  | Error Server.Http.Head_too_large -> ()
  | _ -> Alcotest.fail "oversized head not rejected");
  let big_body = "POST / HTTP/1.1\r\ncontent-length: 17\r\n\r\n" ^ String.make 17 'b' in
  match Server.Http.parse_request ~limits (Server.Http.conn_of_string big_body) with
  | Error Server.Http.Body_too_large -> ()
  | _ -> Alcotest.fail "oversized body not rejected"

let test_parse_pipelined () =
  let raw =
    "POST /a HTTP/1.1\r\ncontent-length: 3\r\n\r\nonePOST /b HTTP/1.1\r\ncontent-length: 3\r\n\r\ntwo"
  in
  let conn = Server.Http.conn_of_string raw in
  (match Server.Http.parse_request conn with
  | Ok req ->
      Alcotest.(check string) "first target" "/a" req.Server.Http.target;
      Alcotest.(check string) "first body" "one" req.Server.Http.body
  | Error _ -> Alcotest.fail "first pipelined request rejected");
  Alcotest.(check bool) "second request is buffered" true (Server.Http.buffered conn);
  (match Server.Http.parse_request conn with
  | Ok req ->
      Alcotest.(check string) "second target" "/b" req.Server.Http.target;
      Alcotest.(check string) "second body" "two" req.Server.Http.body
  | Error _ -> Alcotest.fail "second pipelined request rejected");
  match Server.Http.parse_request conn with
  | Error Server.Http.Eof -> ()
  | _ -> Alcotest.fail "expected EOF after the pipeline"

let test_parse_timeout () =
  (* A peer that connects and then stalls: the fd source gives up after
     its per-read budget and the parser reports Timeout, not a hang. *)
  let r, w = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> List.iter (fun fd -> try Unix.close fd with _ -> ()) [ r; w ])
    (fun () ->
      let conn = Server.Http.conn_of_fd ~timeout_s:0.05 r in
      match Server.Http.parse_request conn with
      | Error Server.Http.Timeout -> ()
      | _ -> Alcotest.fail "stalled peer did not time out")

let test_response_to_string () =
  let s =
    Server.Http.to_string ~close:false (Server.Http.response ~status:200 "{\"ok\":true}\n")
  in
  Alcotest.(check bool) "status line" true (contains s "HTTP/1.1 200 OK\r\n");
  Alcotest.(check bool) "content-length" true (contains s "content-length: 12\r\n");
  Alcotest.(check bool) "keep-alive" true (contains s "connection: keep-alive\r\n");
  let closed =
    Server.Http.to_string ~close:true (Server.Http.response ~status:503 "x")
  in
  Alcotest.(check bool) "close" true (contains closed "connection: close\r\n");
  Alcotest.(check bool) "503 reason" true (contains closed "503 Service Unavailable")

(* --- router --- *)

let request ?(meth = Server.Http.GET) ?(body = "") target =
  {
    Server.Http.meth;
    target;
    version = "HTTP/1.1";
    headers = [];
    body;
  }

let dispatch ?meth ?body target =
  with_server_state @@ fun () ->
  Server.Router.dispatch ~routes:(Server.Handlers.routes ()) (request ?meth ?body target)

let test_router_not_found () =
  let resp = dispatch "/nope" in
  Alcotest.(check int) "status" 404 resp.Server.Http.status;
  Alcotest.(check bool) "names the path" true (contains resp.Server.Http.body "/nope")

let test_router_method_not_allowed () =
  let resp = dispatch "/simulate" in
  Alcotest.(check int) "status" 405 resp.Server.Http.status;
  Alcotest.(check (option string)) "allow header" (Some "POST")
    (List.assoc_opt "allow" resp.Server.Http.extra_headers);
  Alcotest.(check bool) "names the method" true (contains resp.Server.Http.body "GET")

let test_router_bad_body_is_400 () =
  let cases =
    [
      "{not json";
      "{\"trials\":\"many\"}";
      "{\"no_such_field\":1}";
      "{\"trials\":0}";
      "{\"network\":\"warp\"}";
    ]
  in
  List.iter
    (fun body ->
      let resp = dispatch ~meth:Server.Http.POST ~body "/simulate" in
      Alcotest.(check int) ("400 for " ^ body) 400 resp.Server.Http.status;
      Alcotest.(check bool) "error body" true (contains resp.Server.Http.body "\"error\""))
    cases

let test_router_handler_crash_is_500 () =
  let routes =
    [
      {
        Server.Router.meth = Server.Http.GET;
        route_path = "/boom";
        handler = (fun _ -> failwith "kaboom");
      };
    ]
  in
  let resp = Server.Router.dispatch ~routes (request "/boom") in
  Alcotest.(check int) "status" 500 resp.Server.Http.status;
  Alcotest.(check bool) "names the failure" true (contains resp.Server.Http.body "kaboom")

let test_router_healthz () =
  let resp = dispatch "/healthz" in
  Alcotest.(check int) "status" 200 resp.Server.Http.status;
  Alcotest.(check string) "body" "{\"status\":\"ok\"}\n" resp.Server.Http.body

(* --- LRU --- *)

let test_lru_eviction_order () =
  let t = Server.Lru.create ~capacity:2 in
  Alcotest.(check (option (pair string int))) "no eviction" None (Server.Lru.add t "a" 1);
  Alcotest.(check (option (pair string int))) "no eviction" None (Server.Lru.add t "b" 2);
  (* Touch "a" so "b" becomes the LRU entry. *)
  Alcotest.(check (option int)) "find promotes" (Some 1) (Server.Lru.find t "a");
  Alcotest.(check (option (pair string int))) "b evicted" (Some ("b", 2))
    (Server.Lru.add t "c" 3);
  Alcotest.(check (list string)) "recency order" [ "c"; "a" ]
    (Server.Lru.keys_newest_first t);
  Alcotest.(check (option int)) "evicted key gone" None (Server.Lru.find t "b");
  Alcotest.(check int) "length" 2 (Server.Lru.length t)

let test_lru_refresh_existing () =
  let t = Server.Lru.create ~capacity:2 in
  ignore (Server.Lru.add t "a" 1);
  ignore (Server.Lru.add t "b" 2);
  Alcotest.(check (option (pair string int))) "refresh evicts nothing" None
    (Server.Lru.add t "a" 10);
  Alcotest.(check (option int)) "value replaced" (Some 10) (Server.Lru.find t "a");
  Alcotest.(check int) "length unchanged" 2 (Server.Lru.length t)

let test_lru_zero_capacity_disables () =
  let t = Server.Lru.create ~capacity:0 in
  Alcotest.(check (option (pair string int))) "drop on add" None (Server.Lru.add t "a" 1);
  Alcotest.(check (option int)) "nothing stored" None (Server.Lru.find t "a");
  Alcotest.(check int) "empty" 0 (Server.Lru.length t);
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Lru.create: negative capacity") (fun () ->
      ignore (Server.Lru.create ~capacity:(-1)))

(* --- result cache determinism --- *)

let test_cache_key_canonicalization () =
  (* The ITU scale is normalized out of non-ITU keys, so two requests
     differing only in the irrelevant field share one entry... *)
  let base = { Server.Api.sim_defaults with trials = 3 } in
  Alcotest.(check string) "itu_scale irrelevant for submarine"
    (Server.Api.sim_key base)
    (Server.Api.sim_key { base with itu_scale = 0.9 });
  (* ...while every relevant field lands in the key. *)
  let distinct p name =
    Alcotest.(check bool) (name ^ " changes the key") false
      (String.equal (Server.Api.sim_key base) (Server.Api.sim_key p))
  in
  distinct { base with trials = 4 } "trials";
  distinct { base with seed = base.Server.Api.seed + 1 } "seed";
  distinct { base with spacing_km = 151.0 } "spacing";
  distinct { base with network = Server.Api.Intertubes } "network";
  distinct { base with model = Stormsim.Failure_model.s2 } "model";
  (* Model probabilities are keyed at full precision: %g's six significant
     digits must not merge distinct models. *)
  let m1 = Stormsim.Failure_model.uniform 0.010000001 in
  let m2 = Stormsim.Failure_model.uniform 0.010000002 in
  Alcotest.(check bool) "nearby probabilities stay distinct" false
    (String.equal
       (Server.Api.sim_key { base with model = m1 })
       (Server.Api.sim_key { base with model = m2 }))

let test_cache_hit_skips_trials () =
  with_server_state @@ fun () ->
  let params = { Server.Api.sim_defaults with trials = 4 } in
  let key = Server.Api.sim_key params in
  let compute () = Ok (Server.Api.simulate_body params) in
  let first = Server.Api.with_cache ~key compute in
  let trials_after_first = counter_value "plan.trials" in
  Alcotest.(check int) "first run executed the trials" 4 trials_after_first;
  Alcotest.(check int) "one miss" 1 (counter_value "server.cache.misses");
  let second = Server.Api.with_cache ~key compute in
  (match (first, second) with
  | Ok a, Ok b -> Alcotest.(check string) "byte-identical replay" a b
  | _ -> Alcotest.fail "compute failed");
  Alcotest.(check int) "no further trials ran" trials_after_first
    (counter_value "plan.trials");
  Alcotest.(check int) "one hit" 1 (counter_value "server.cache.hits");
  (* A different key computes again. *)
  let params' = { params with seed = params.Server.Api.seed + 1 } in
  (match Server.Api.with_cache ~key:(Server.Api.sim_key params') (fun () ->
       Ok (Server.Api.simulate_body params'))
  with
  | Ok b -> Alcotest.(check bool) "different seed, different body" false
      (match first with Ok a -> String.equal a b | Error _ -> true)
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "second miss" 2 (counter_value "server.cache.misses")

let test_cache_does_not_store_errors () =
  with_server_state @@ fun () ->
  let calls = ref 0 in
  let compute () = incr calls; Error "transient" in
  (match Server.Api.with_cache ~key:"k" compute with
  | Error "transient" -> ()
  | _ -> Alcotest.fail "error not propagated");
  (match Server.Api.with_cache ~key:"k" compute with
  | Error "transient" -> ()
  | _ -> Alcotest.fail "error not propagated");
  Alcotest.(check int) "errors recompute" 2 !calls;
  Alcotest.(check int) "nothing cached" 0 (Server.Api.cache_length ())

let test_cache_eviction_is_counted () =
  with_server_state @@ fun () ->
  Server.Api.set_cache_capacity 2;
  List.iter
    (fun k -> ignore (Server.Api.with_cache ~key:k (fun () -> Ok k)))
    [ "k1"; "k2"; "k3" ];
  Alcotest.(check int) "evictions counted" 1 (counter_value "server.cache.evictions");
  Alcotest.(check int) "capacity respected" 2 (Server.Api.cache_length ())

let test_params_of_body_defaults () =
  let decode body =
    Server.Api.params_of_body ~base:Server.Api.sim_defaults
      ~of_json:Server.Api.sim_of_json body
  in
  (match decode "" with
  | Ok p -> Alcotest.(check bool) "empty body means defaults" true (p = Server.Api.sim_defaults)
  | Error e -> Alcotest.fail e);
  (match decode "  \n " with
  | Ok p -> Alcotest.(check bool) "whitespace body means defaults" true (p = Server.Api.sim_defaults)
  | Error e -> Alcotest.fail e);
  (match decode "{\"trials\":7,\"network\":\"intertubes\"}" with
  | Ok p ->
      Alcotest.(check int) "trials overlaid" 7 p.Server.Api.trials;
      Alcotest.(check bool) "network overlaid" true (p.Server.Api.network = Server.Api.Intertubes);
      Alcotest.(check int) "seed untouched" Server.Api.sim_defaults.Server.Api.seed
        p.Server.Api.seed
  | Error e -> Alcotest.fail e);
  match decode "[1,2]" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-object body accepted"

(* --- loopback end-to-end --- *)

(* Read one response off the socket: head to CRLFCRLF, then exactly
   content-length body bytes (responses always carry one). *)
let read_response fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec until_head () =
    match contains (Buffer.contents buf) "\r\n\r\n" with
    | true -> ()
    | false ->
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n = 0 then failwith "peer closed before response head";
        Buffer.add_subbytes buf chunk 0 n;
        until_head ()
  in
  until_head ();
  let all = Buffer.contents buf in
  let hd_end =
    let rec find i =
      if i + 4 > String.length all then failwith "no head terminator"
      else if String.sub all i 4 = "\r\n\r\n" then i
      else find (i + 1)
    in
    find 0
  in
  let head = String.sub all 0 hd_end in
  let status =
    match String.split_on_char ' ' head with
    | _ :: code :: _ -> int_of_string code
    | _ -> failwith "bad status line"
  in
  let content_length =
    let lower = String.lowercase_ascii head in
    match
      List.find_opt
        (fun line -> String.length line > 15 && String.sub line 0 15 = "content-length:")
        (String.split_on_char '\n' lower)
    with
    | Some line ->
        int_of_string (String.trim (String.sub line 15 (String.length line - 15)))
    | None -> failwith "no content-length"
  in
  let rec body_bytes got =
    if String.length got >= content_length then String.sub got 0 content_length
    else begin
      let n = Unix.read fd chunk 0 (Bytes.length chunk) in
      if n = 0 then failwith "peer closed mid-body";
      body_bytes (got ^ Bytes.sub_string chunk 0 n)
    end
  in
  let already = String.sub all (hd_end + 4) (String.length all - hd_end - 4) in
  (status, head, body_bytes already)

let send_all fd s =
  let rec go off len =
    if len > 0 then
      let n = Unix.write_substring fd s off len in
      go (off + n) (len - n)
  in
  go 0 (String.length s)

let with_loopback_server f =
  with_server_state @@ fun () ->
  let port_box = Atomic.make 0 in
  let cfg =
    {
      Server.Service.default_config with
      port = 0;
      idle_poll_s = 0.01;
      drain_grace_s = 0.5;
      log = ignore;
    }
  in
  let server =
    Domain.spawn (fun () ->
        Server.Service.run ~on_ready:(fun ~port -> Atomic.set port_box port) cfg)
  in
  let rec wait_port tries =
    if Atomic.get port_box <> 0 then Atomic.get port_box
    else if tries = 0 then failwith "server never became ready"
    else begin
      Unix.sleepf 0.01;
      wait_port (tries - 1)
    end
  in
  Fun.protect
    ~finally:(fun () ->
      Server.Service.stop ();
      Domain.join server)
    (fun () -> f (wait_port 500))

let with_client port f =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      f fd)

let post_simulate port body =
  with_client port @@ fun fd ->
  send_all fd
    (Printf.sprintf
       "POST /simulate HTTP/1.1\r\ncontent-length: %d\r\nconnection: close\r\n\r\n%s"
       (String.length body) body);
  read_response fd

let test_loopback_end_to_end () =
  with_loopback_server @@ fun port ->
  (* healthz over a real socket *)
  (with_client port @@ fun fd ->
   send_all fd "GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n";
   let status, _head, body = read_response fd in
   Alcotest.(check int) "healthz status" 200 status;
   Alcotest.(check string) "healthz body" "{\"status\":\"ok\"}\n" body);
  (* two identical POSTs: byte-identical bodies, trials ran once *)
  let req_body = "{\"trials\":4,\"seed\":11}" in
  let s1, _, b1 = post_simulate port req_body in
  let trials_after_first = counter_value "plan.trials" in
  let s2, _, b2 = post_simulate port req_body in
  Alcotest.(check int) "first simulate" 200 s1;
  Alcotest.(check int) "second simulate" 200 s2;
  Alcotest.(check string) "byte-identical responses" b1 b2;
  Alcotest.(check int) "repeat served from cache" trials_after_first
    (counter_value "plan.trials");
  Alcotest.(check bool) "cache hit counted" true (counter_value "server.cache.hits" >= 1);
  (* the HTTP body matches the shared encoder output exactly *)
  (match
     Server.Api.params_of_body ~base:Server.Api.sim_defaults
       ~of_json:Server.Api.sim_of_json req_body
   with
  | Ok p -> Alcotest.(check string) "CLI/HTTP parity" (Server.Api.simulate_body p) b1
  | Error e -> Alcotest.fail e);
  (* /metrics shows the live counters *)
  (with_client port @@ fun fd ->
   send_all fd "GET /metrics HTTP/1.1\r\nconnection: close\r\n\r\n";
   let status, head, body = read_response fd in
   Alcotest.(check int) "metrics status" 200 status;
   Alcotest.(check bool) "prometheus content type" true
     (contains (String.lowercase_ascii head) "content-type: text/plain");
   Alcotest.(check bool) "request counter exported" true
     (contains body "server_requests");
   Alcotest.(check bool) "cache hit exported" true (contains body "server_cache_hits 1"));
  (* keep-alive: two requests on one connection, then a bad one *)
  with_client port @@ fun fd ->
  send_all fd "GET /healthz HTTP/1.1\r\n\r\n";
  let s1, _, _ = read_response fd in
  send_all fd "GET /nope HTTP/1.1\r\n\r\n";
  let s2, _, body2 = read_response fd in
  Alcotest.(check int) "keep-alive first" 200 s1;
  Alcotest.(check int) "keep-alive 404" 404 s2;
  Alcotest.(check bool) "404 names the path" true (contains body2 "/nope")

let test_loopback_rejects_garbage () =
  with_loopback_server @@ fun port ->
  with_client port @@ fun fd ->
  send_all fd "NOT-HTTP-AT-ALL\r\n\r\n";
  let status, _, body = read_response fd in
  Alcotest.(check int) "garbage is 400" 400 status;
  Alcotest.(check bool) "error body" true (contains body "\"error\"")

let () =
  Alcotest.run "server"
    [
      ( "http",
        [ Alcotest.test_case "valid GET" `Quick test_parse_valid_get;
          Alcotest.test_case "valid POST body" `Quick test_parse_valid_post_body;
          Alcotest.test_case "HTTP/1.0 closes" `Quick test_parse_http10_defaults_to_close;
          Alcotest.test_case "truncated" `Quick test_parse_truncated;
          Alcotest.test_case "garbage" `Quick test_parse_garbage;
          Alcotest.test_case "oversized" `Quick test_parse_oversized;
          Alcotest.test_case "pipelined" `Quick test_parse_pipelined;
          Alcotest.test_case "stalled peer times out" `Quick test_parse_timeout;
          Alcotest.test_case "response serialization" `Quick test_response_to_string ] );
      ( "router",
        [ Alcotest.test_case "404" `Quick test_router_not_found;
          Alcotest.test_case "405 with allow" `Quick test_router_method_not_allowed;
          Alcotest.test_case "400 on bad body" `Quick test_router_bad_body_is_400;
          Alcotest.test_case "500 on crash" `Quick test_router_handler_crash_is_500;
          Alcotest.test_case "healthz" `Quick test_router_healthz ] );
      ( "lru",
        [ Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "refresh" `Quick test_lru_refresh_existing;
          Alcotest.test_case "zero capacity" `Quick test_lru_zero_capacity_disables ] );
      ( "cache",
        [ Alcotest.test_case "key canonicalization" `Quick test_cache_key_canonicalization;
          Alcotest.test_case "hit skips trials" `Quick test_cache_hit_skips_trials;
          Alcotest.test_case "errors not stored" `Quick test_cache_does_not_store_errors;
          Alcotest.test_case "eviction counted" `Quick test_cache_eviction_is_counted;
          Alcotest.test_case "body decoding defaults" `Quick test_params_of_body_defaults ] );
      ( "loopback",
        [ Alcotest.test_case "end to end" `Quick test_loopback_end_to_end;
          Alcotest.test_case "garbage over socket" `Quick test_loopback_rejects_garbage ] );
    ]
