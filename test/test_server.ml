(* Tests for the lib/server service layer: the hardened HTTP parser
   (valid, truncated, oversized, pipelined input), the router's error
   mapping, the LRU, the canonical result cache (a repeated request is
   answered byte-identically without re-running trials), and a loopback
   end-to-end exchange against a real socket on an ephemeral port. *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0

let counter_value name =
  match List.assoc_opt name (Obs.Metrics.snapshot ()) with
  | Some (Obs.Metrics.Counter n) -> n
  | _ -> 0

(* Server state is process-global (metrics, result cache, plan memo);
   every test starts clean and leaves the layer off. *)
let with_server_state f =
  Obs.reset ();
  Obs.enable ();
  Server.Api.reset ();
  Fun.protect
    ~finally:(fun () ->
      Server.Api.reset ();
      Obs.disable ();
      Obs.reset ())
    f

(* --- HTTP parser --- *)

let parse s = Server.Http.parse_request (Server.Http.conn_of_string s)

let test_parse_valid_get () =
  match parse "GET /healthz?probe=1 HTTP/1.1\r\nHost: localhost\r\nX-Extra:  spaced  \r\n\r\n" with
  | Error _ -> Alcotest.fail "valid GET rejected"
  | Ok req ->
      Alcotest.(check bool) "method" true (req.Server.Http.meth = Server.Http.GET);
      Alcotest.(check string) "target keeps query" "/healthz?probe=1" req.Server.Http.target;
      Alcotest.(check string) "path strips query" "/healthz" (Server.Http.path req);
      Alcotest.(check (option string)) "case-insensitive header" (Some "localhost")
        (Server.Http.header req "HOST");
      Alcotest.(check (option string)) "value trimmed" (Some "spaced")
        (Server.Http.header req "x-extra");
      Alcotest.(check string) "no body" "" req.Server.Http.body;
      Alcotest.(check bool) "keep-alive by default" false (Server.Http.wants_close req)

let test_parse_valid_post_body () =
  let body = "{\"trials\":3}" in
  let raw =
    Printf.sprintf "POST /simulate HTTP/1.1\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
      (String.length body) body
  in
  match parse raw with
  | Error _ -> Alcotest.fail "valid POST rejected"
  | Ok req ->
      Alcotest.(check bool) "method" true (req.Server.Http.meth = Server.Http.POST);
      Alcotest.(check string) "body" body req.Server.Http.body;
      Alcotest.(check bool) "connection: close honoured" true (Server.Http.wants_close req)

let test_parse_http10_defaults_to_close () =
  match parse "GET / HTTP/1.0\r\n\r\n" with
  | Ok req -> Alcotest.(check bool) "HTTP/1.0 closes" true (Server.Http.wants_close req)
  | Error _ -> Alcotest.fail "HTTP/1.0 rejected"

let expect_error name raw check =
  match parse raw with
  | Ok _ -> Alcotest.fail (name ^ ": accepted")
  | Error e -> check e

let test_parse_truncated () =
  expect_error "truncated head" "GET / HTTP/1.1\r\nHost: x" (function
    | Server.Http.Bad_request m ->
        Alcotest.(check bool) "names the truncation" true (contains m "truncated")
    | _ -> Alcotest.fail "wrong error");
  expect_error "truncated body" "POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc" (function
    | Server.Http.Bad_request m ->
        Alcotest.(check bool) "names the truncation" true (contains m "truncated")
    | _ -> Alcotest.fail "wrong error");
  expect_error "empty input is EOF" "" (function
    | Server.Http.Eof -> ()
    | _ -> Alcotest.fail "wrong error")

let test_parse_garbage () =
  expect_error "not HTTP" "hello world\r\n\r\n" (function
    | Server.Http.Bad_request _ -> ()
    | _ -> Alcotest.fail "wrong error");
  expect_error "bad version" "GET / HTTP/2.0\r\n\r\n" (function
    | Server.Http.Bad_request m ->
        Alcotest.(check bool) "names the version" true (contains m "version")
    | _ -> Alcotest.fail "wrong error");
  expect_error "bad content-length" "POST / HTTP/1.1\r\ncontent-length: nope\r\n\r\n" (function
    | Server.Http.Bad_request _ -> ()
    | _ -> Alcotest.fail "wrong error");
  expect_error "chunked unsupported" "POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"
    (function
    | Server.Http.Bad_request m ->
        Alcotest.(check bool) "names transfer-encoding" true (contains m "transfer-encoding")
    | _ -> Alcotest.fail "wrong error")

let test_parse_oversized () =
  let limits = { Server.Http.max_head = 64; Server.Http.max_body = 16 } in
  let big_head =
    "GET / HTTP/1.1\r\nx-pad: " ^ String.make 100 'a' ^ "\r\n\r\n"
  in
  (match Server.Http.parse_request ~limits (Server.Http.conn_of_string big_head) with
  | Error Server.Http.Head_too_large -> ()
  | _ -> Alcotest.fail "oversized head not rejected");
  let big_body = "POST / HTTP/1.1\r\ncontent-length: 17\r\n\r\n" ^ String.make 17 'b' in
  match Server.Http.parse_request ~limits (Server.Http.conn_of_string big_body) with
  | Error Server.Http.Body_too_large -> ()
  | _ -> Alcotest.fail "oversized body not rejected"

let test_parse_pipelined () =
  let raw =
    "POST /a HTTP/1.1\r\ncontent-length: 3\r\n\r\nonePOST /b HTTP/1.1\r\ncontent-length: 3\r\n\r\ntwo"
  in
  let conn = Server.Http.conn_of_string raw in
  (match Server.Http.parse_request conn with
  | Ok req ->
      Alcotest.(check string) "first target" "/a" req.Server.Http.target;
      Alcotest.(check string) "first body" "one" req.Server.Http.body
  | Error _ -> Alcotest.fail "first pipelined request rejected");
  Alcotest.(check bool) "second request is buffered" true (Server.Http.buffered conn);
  (match Server.Http.parse_request conn with
  | Ok req ->
      Alcotest.(check string) "second target" "/b" req.Server.Http.target;
      Alcotest.(check string) "second body" "two" req.Server.Http.body
  | Error _ -> Alcotest.fail "second pipelined request rejected");
  match Server.Http.parse_request conn with
  | Error Server.Http.Eof -> ()
  | _ -> Alcotest.fail "expected EOF after the pipeline"

let test_parse_timeout () =
  (* A peer that connects and then stalls: the fd source gives up after
     its per-read budget and the parser reports Timeout, not a hang. *)
  let r, w = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> List.iter (fun fd -> try Unix.close fd with _ -> ()) [ r; w ])
    (fun () ->
      let conn = Server.Http.conn_of_fd ~timeout_s:0.05 r in
      match Server.Http.parse_request conn with
      | Error Server.Http.Timeout -> ()
      | _ -> Alcotest.fail "stalled peer did not time out")

let test_response_to_string () =
  let s =
    Server.Http.to_string ~close:false (Server.Http.response ~status:200 "{\"ok\":true}\n")
  in
  Alcotest.(check bool) "status line" true (contains s "HTTP/1.1 200 OK\r\n");
  Alcotest.(check bool) "content-length" true (contains s "content-length: 12\r\n");
  Alcotest.(check bool) "keep-alive" true (contains s "connection: keep-alive\r\n");
  let closed =
    Server.Http.to_string ~close:true (Server.Http.response ~status:503 "x")
  in
  Alcotest.(check bool) "close" true (contains closed "connection: close\r\n");
  Alcotest.(check bool) "503 reason" true (contains closed "503 Service Unavailable")

(* --- router --- *)

let request ?(meth = Server.Http.GET) ?(body = "") target =
  {
    Server.Http.meth;
    target;
    version = "HTTP/1.1";
    headers = [];
    body;
  }

let dispatch ?meth ?body target =
  with_server_state @@ fun () ->
  Server.Router.to_response
    (Server.Router.dispatch ~routes:(Server.Handlers.routes ())
       (request ?meth ?body target))

let test_router_not_found () =
  let resp = dispatch "/nope" in
  Alcotest.(check int) "status" 404 resp.Server.Http.status;
  Alcotest.(check bool) "names the path" true (contains resp.Server.Http.body "/nope")

let test_router_method_not_allowed () =
  let resp = dispatch "/simulate" in
  Alcotest.(check int) "status" 405 resp.Server.Http.status;
  Alcotest.(check (option string)) "allow header" (Some "POST")
    (List.assoc_opt "allow" resp.Server.Http.extra_headers);
  Alcotest.(check bool) "names the method" true (contains resp.Server.Http.body "GET")

let test_router_bad_body_is_400 () =
  let cases =
    [
      "{not json";
      "{\"trials\":\"many\"}";
      "{\"no_such_field\":1}";
      "{\"trials\":0}";
      "{\"network\":\"warp\"}";
    ]
  in
  List.iter
    (fun body ->
      let resp = dispatch ~meth:Server.Http.POST ~body "/simulate" in
      Alcotest.(check int) ("400 for " ^ body) 400 resp.Server.Http.status;
      Alcotest.(check bool) "error body" true (contains resp.Server.Http.body "\"error\""))
    cases

let test_router_handler_crash_is_500 () =
  let routes =
    [
      {
        Server.Router.meth = Server.Http.GET;
        route_path = "/boom";
        handler = (fun _ -> failwith "kaboom");
      };
    ]
  in
  let resp = Server.Router.to_response (Server.Router.dispatch ~routes (request "/boom")) in
  Alcotest.(check int) "status" 500 resp.Server.Http.status;
  Alcotest.(check bool) "names the failure" true (contains resp.Server.Http.body "kaboom")

let test_router_healthz () =
  let resp = dispatch "/healthz" in
  Alcotest.(check int) "status" 200 resp.Server.Http.status;
  Alcotest.(check string) "body" "{\"status\":\"ok\"}\n" resp.Server.Http.body

(* --- LRU --- *)

let test_lru_eviction_order () =
  let t = Server.Lru.create ~capacity:2 in
  Alcotest.(check (option (pair string int))) "no eviction" None (Server.Lru.add t "a" 1);
  Alcotest.(check (option (pair string int))) "no eviction" None (Server.Lru.add t "b" 2);
  (* Touch "a" so "b" becomes the LRU entry. *)
  Alcotest.(check (option int)) "find promotes" (Some 1) (Server.Lru.find t "a");
  Alcotest.(check (option (pair string int))) "b evicted" (Some ("b", 2))
    (Server.Lru.add t "c" 3);
  Alcotest.(check (list string)) "recency order" [ "c"; "a" ]
    (Server.Lru.keys_newest_first t);
  Alcotest.(check (option int)) "evicted key gone" None (Server.Lru.find t "b");
  Alcotest.(check int) "length" 2 (Server.Lru.length t)

let test_lru_refresh_existing () =
  let t = Server.Lru.create ~capacity:2 in
  ignore (Server.Lru.add t "a" 1);
  ignore (Server.Lru.add t "b" 2);
  Alcotest.(check (option (pair string int))) "refresh evicts nothing" None
    (Server.Lru.add t "a" 10);
  Alcotest.(check (option int)) "value replaced" (Some 10) (Server.Lru.find t "a");
  Alcotest.(check int) "length unchanged" 2 (Server.Lru.length t)

let test_lru_zero_capacity_disables () =
  let t = Server.Lru.create ~capacity:0 in
  Alcotest.(check (option (pair string int))) "drop on add" None (Server.Lru.add t "a" 1);
  Alcotest.(check (option int)) "nothing stored" None (Server.Lru.find t "a");
  Alcotest.(check int) "empty" 0 (Server.Lru.length t);
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Lru.create: negative capacity") (fun () ->
      ignore (Server.Lru.create ~capacity:(-1)))

(* --- result cache determinism --- *)

let test_cache_key_canonicalization () =
  (* The ITU scale is normalized out of non-ITU keys, so two requests
     differing only in the irrelevant field share one entry... *)
  let base = { Server.Api.sim_defaults with trials = 3 } in
  Alcotest.(check string) "itu_scale irrelevant for submarine"
    (Server.Api.sim_key base)
    (Server.Api.sim_key { base with itu_scale = 0.9 });
  (* ...while every relevant field lands in the key. *)
  let distinct p name =
    Alcotest.(check bool) (name ^ " changes the key") false
      (String.equal (Server.Api.sim_key base) (Server.Api.sim_key p))
  in
  distinct { base with trials = 4 } "trials";
  distinct { base with seed = base.Server.Api.seed + 1 } "seed";
  distinct { base with spacing_km = 151.0 } "spacing";
  distinct { base with network = Server.Api.Intertubes } "network";
  distinct { base with model = Stormsim.Failure_model.s2 } "model";
  (* Model probabilities are keyed at full precision: %g's six significant
     digits must not merge distinct models. *)
  let m1 = Stormsim.Failure_model.uniform 0.010000001 in
  let m2 = Stormsim.Failure_model.uniform 0.010000002 in
  Alcotest.(check bool) "nearby probabilities stay distinct" false
    (String.equal
       (Server.Api.sim_key { base with model = m1 })
       (Server.Api.sim_key { base with model = m2 }))

let test_cache_hit_skips_trials () =
  with_server_state @@ fun () ->
  let params = { Server.Api.sim_defaults with trials = 4 } in
  let key = Server.Api.sim_key params in
  let compute () = Ok (Server.Api.simulate_body params) in
  let first = Server.Api.with_cache ~key compute in
  let trials_after_first = counter_value "plan.trials" in
  Alcotest.(check int) "first run executed the trials" 4 trials_after_first;
  Alcotest.(check int) "one miss" 1 (counter_value "server.cache.misses");
  let second = Server.Api.with_cache ~key compute in
  (match (first, second) with
  | Ok a, Ok b -> Alcotest.(check string) "byte-identical replay" a b
  | _ -> Alcotest.fail "compute failed");
  Alcotest.(check int) "no further trials ran" trials_after_first
    (counter_value "plan.trials");
  Alcotest.(check int) "one hit" 1 (counter_value "server.cache.hits");
  (* A different key computes again. *)
  let params' = { params with seed = params.Server.Api.seed + 1 } in
  (match Server.Api.with_cache ~key:(Server.Api.sim_key params') (fun () ->
       Ok (Server.Api.simulate_body params'))
  with
  | Ok b -> Alcotest.(check bool) "different seed, different body" false
      (match first with Ok a -> String.equal a b | Error _ -> true)
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "second miss" 2 (counter_value "server.cache.misses")

let test_cache_does_not_store_errors () =
  with_server_state @@ fun () ->
  let calls = ref 0 in
  let compute () = incr calls; Error "transient" in
  (match Server.Api.with_cache ~key:"k" compute with
  | Error "transient" -> ()
  | _ -> Alcotest.fail "error not propagated");
  (match Server.Api.with_cache ~key:"k" compute with
  | Error "transient" -> ()
  | _ -> Alcotest.fail "error not propagated");
  Alcotest.(check int) "errors recompute" 2 !calls;
  Alcotest.(check int) "nothing cached" 0 (Server.Api.cache_length ())

let test_cache_eviction_is_counted () =
  with_server_state @@ fun () ->
  (* One shard: global LRU order, so exactly the third insert evicts. *)
  Server.Api.set_cache_capacity ~shards:1 2;
  List.iter
    (fun k -> ignore (Server.Api.with_cache ~key:k (fun () -> Ok k)))
    [ "k1"; "k2"; "k3" ];
  Alcotest.(check int) "evictions counted" 1 (counter_value "server.cache.evictions");
  Alcotest.(check int) "capacity respected" 2 (Server.Api.cache_length ())

let test_params_of_body_defaults () =
  let decode body =
    Server.Api.params_of_body ~base:Server.Api.sim_defaults
      ~of_json:Server.Api.sim_of_json body
  in
  (match decode "" with
  | Ok p -> Alcotest.(check bool) "empty body means defaults" true (p = Server.Api.sim_defaults)
  | Error e -> Alcotest.fail e);
  (match decode "  \n " with
  | Ok p -> Alcotest.(check bool) "whitespace body means defaults" true (p = Server.Api.sim_defaults)
  | Error e -> Alcotest.fail e);
  (match decode "{\"trials\":7,\"network\":\"intertubes\"}" with
  | Ok p ->
      Alcotest.(check int) "trials overlaid" 7 p.Server.Api.trials;
      Alcotest.(check bool) "network overlaid" true (p.Server.Api.network = Server.Api.Intertubes);
      Alcotest.(check int) "seed untouched" Server.Api.sim_defaults.Server.Api.seed
        p.Server.Api.seed
  | Error e -> Alcotest.fail e);
  match decode "[1,2]" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-object body accepted"

(* --- chunked transfer framing --- *)

let test_chunk_framing () =
  Alcotest.(check string) "payload framed" "4\r\nrow\n\r\n" (Server.Http.chunk "row\n");
  Alcotest.(check string) "hex size" "10\r\n0123456789abcdef\r\n"
    (Server.Http.chunk "0123456789abcdef");
  Alcotest.(check string) "empty payload dropped" "" (Server.Http.chunk "");
  Alcotest.(check string) "terminator" "0\r\n\r\n" Server.Http.last_chunk

let test_respond_stream_framing () =
  let buf = Buffer.create 256 in
  Server.Http.respond_stream ~status:200 ~close:false
    ~write:(Buffer.add_string buf)
    (fun emit ->
      emit "row1\n";
      emit "";
      emit "row2\n");
  let out = Buffer.contents buf in
  let head_end =
    match String.index_opt out '\n' with
    | Some _ ->
        let rec find i =
          if i + 4 > String.length out then Alcotest.fail "no head terminator"
          else if String.sub out i 4 = "\r\n\r\n" then i
          else find (i + 1)
        in
        find 0
    | None -> Alcotest.fail "no head"
  in
  let head = String.lowercase_ascii (String.sub out 0 head_end) in
  Alcotest.(check bool) "chunked header" true (contains head "transfer-encoding: chunked");
  Alcotest.(check bool) "no content-length" false (contains head "content-length");
  Alcotest.(check bool) "keep-alive" true (contains head "connection: keep-alive");
  let tail = String.sub out (head_end + 4) (String.length out - head_end - 4) in
  (* Empty emits vanish; each payload is one frame; terminal chunk last. *)
  Alcotest.(check string) "frames" "5\r\nrow1\n\r\n5\r\nrow2\n\r\n0\r\n\r\n" tail

let test_read_chunk_roundtrip () =
  let c = Server.Http.conn_of_string "5\r\nhello\r\n6;ext=1\r\n world\r\n0\r\n\r\n" in
  (match Server.Http.read_chunk c with
  | Ok (Some data) -> Alcotest.(check string) "first chunk" "hello" data
  | _ -> Alcotest.fail "first chunk unreadable");
  (match Server.Http.read_chunk c with
  | Ok (Some data) -> Alcotest.(check string) "extension ignored" " world" data
  | _ -> Alcotest.fail "second chunk unreadable");
  (match Server.Http.read_chunk c with
  | Ok None -> ()
  | _ -> Alcotest.fail "terminal chunk not recognized");
  (* The concatenating reader sees the same stream. *)
  let c2 = Server.Http.conn_of_string "5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n" in
  match Server.Http.read_chunked_body c2 with
  | Ok body -> Alcotest.(check string) "concatenated" "hello world" body
  | Error _ -> Alcotest.fail "round-trip failed"

let test_read_chunk_malformed () =
  let bad s =
    match Server.Http.read_chunked_body (Server.Http.conn_of_string s) with
    | Error (Server.Http.Bad_request _) -> ()
    | Error _ -> Alcotest.fail (Printf.sprintf "%S: wrong error class" s)
    | Ok _ -> Alcotest.fail (Printf.sprintf "%S accepted" s)
  in
  bad "zz\r\nhello\r\n0\r\n\r\n";           (* non-hex size *)
  bad "\r\nhello\r\n0\r\n\r\n";             (* empty size line *)
  bad "1_0\r\nhello\r\n0\r\n\r\n";          (* OCaml-ism, not HTTP hex *)
  bad "5\r\nhelloXY0\r\n\r\n";              (* data not CRLF-terminated *)
  bad "5\r\nhel";                           (* truncated mid-data *)
  (* A chunk declared over max_body is refused before its data is read. *)
  let limits = { Server.Http.max_head = 8192; max_body = 16 } in
  match
    Server.Http.read_chunked_body ~limits
      (Server.Http.conn_of_string "ff\r\njunk\r\n0\r\n\r\n")
  with
  | Error Server.Http.Body_too_large -> ()
  | _ -> Alcotest.fail "oversized chunk accepted"

(* --- loopback end-to-end --- *)

(* Read one response off the socket: head to CRLFCRLF, then exactly
   content-length body bytes (responses always carry one). *)
let read_response fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec until_head () =
    match contains (Buffer.contents buf) "\r\n\r\n" with
    | true -> ()
    | false ->
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n = 0 then failwith "peer closed before response head";
        Buffer.add_subbytes buf chunk 0 n;
        until_head ()
  in
  until_head ();
  let all = Buffer.contents buf in
  let hd_end =
    let rec find i =
      if i + 4 > String.length all then failwith "no head terminator"
      else if String.sub all i 4 = "\r\n\r\n" then i
      else find (i + 1)
    in
    find 0
  in
  let head = String.sub all 0 hd_end in
  let status =
    match String.split_on_char ' ' head with
    | _ :: code :: _ -> int_of_string code
    | _ -> failwith "bad status line"
  in
  let content_length =
    let lower = String.lowercase_ascii head in
    match
      List.find_opt
        (fun line -> String.length line > 15 && String.sub line 0 15 = "content-length:")
        (String.split_on_char '\n' lower)
    with
    | Some line ->
        int_of_string (String.trim (String.sub line 15 (String.length line - 15)))
    | None -> failwith "no content-length"
  in
  let rec body_bytes got =
    if String.length got >= content_length then String.sub got 0 content_length
    else begin
      let n = Unix.read fd chunk 0 (Bytes.length chunk) in
      if n = 0 then failwith "peer closed mid-body";
      body_bytes (got ^ Bytes.sub_string chunk 0 n)
    end
  in
  let already = String.sub all (hd_end + 4) (String.length all - hd_end - 4) in
  (status, head, body_bytes already)

let send_all fd s =
  let rec go off len =
    if len > 0 then
      let n = Unix.write_substring fd s off len in
      go (off + n) (len - n)
  in
  go 0 (String.length s)

let with_loopback_server ?trace_seed ?(workers = 1) ?(sampler_step = 0.0) ?(slo = []) f =
  with_server_state @@ fun () ->
  let port_box = Atomic.make 0 in
  let slo_rules =
    List.map
      (fun src ->
        match Obs.Alerts.parse_rule src with
        | Ok r -> r
        | Error e -> Alcotest.fail e)
      slo
  in
  let cfg =
    {
      Server.Service.default_config with
      port = 0;
      workers;
      idle_poll_s = 0.01;
      drain_grace_s = 0.5;
      log = ignore;
      trace_seed;
      sampler_step_s = sampler_step;
      slo_rules;
    }
  in
  let server =
    Domain.spawn (fun () ->
        Server.Service.run ~on_ready:(fun ~port -> Atomic.set port_box port) cfg)
  in
  let rec wait_port tries =
    if Atomic.get port_box <> 0 then Atomic.get port_box
    else if tries = 0 then failwith "server never became ready"
    else begin
      Unix.sleepf 0.01;
      wait_port (tries - 1)
    end
  in
  Fun.protect
    ~finally:(fun () ->
      Server.Service.stop ();
      Domain.join server)
    (fun () -> f (wait_port 500))

let with_client port f =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      f fd)

let post_simulate port body =
  with_client port @@ fun fd ->
  send_all fd
    (Printf.sprintf
       "POST /simulate HTTP/1.1\r\ncontent-length: %d\r\nconnection: close\r\n\r\n%s"
       (String.length body) body);
  read_response fd

let test_loopback_end_to_end () =
  with_loopback_server @@ fun port ->
  (* healthz over a real socket *)
  (with_client port @@ fun fd ->
   send_all fd "GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n";
   let status, _head, body = read_response fd in
   Alcotest.(check int) "healthz status" 200 status;
   Alcotest.(check string) "healthz body" "{\"status\":\"ok\"}\n" body);
  (* two identical POSTs: byte-identical bodies, trials ran once *)
  let req_body = "{\"trials\":4,\"seed\":11}" in
  let s1, _, b1 = post_simulate port req_body in
  let trials_after_first = counter_value "plan.trials" in
  let s2, _, b2 = post_simulate port req_body in
  Alcotest.(check int) "first simulate" 200 s1;
  Alcotest.(check int) "second simulate" 200 s2;
  Alcotest.(check string) "byte-identical responses" b1 b2;
  Alcotest.(check int) "repeat served from cache" trials_after_first
    (counter_value "plan.trials");
  Alcotest.(check bool) "cache hit counted" true (counter_value "server.cache.hits" >= 1);
  (* the HTTP body matches the shared encoder output exactly *)
  (match
     Server.Api.params_of_body ~base:Server.Api.sim_defaults
       ~of_json:Server.Api.sim_of_json req_body
   with
  | Ok p -> Alcotest.(check string) "CLI/HTTP parity" (Server.Api.simulate_body p) b1
  | Error e -> Alcotest.fail e);
  (* /metrics shows the live counters *)
  (with_client port @@ fun fd ->
   send_all fd "GET /metrics HTTP/1.1\r\nconnection: close\r\n\r\n";
   let status, head, body = read_response fd in
   Alcotest.(check int) "metrics status" 200 status;
   Alcotest.(check bool) "prometheus exposition content type" true
     (contains (String.lowercase_ascii head) "content-type: text/plain; version=0.0.4");
   Alcotest.(check bool) "request counter exported" true
     (contains body "server_requests");
   Alcotest.(check bool) "cache hit exported" true (contains body "server_cache_hits 1"));
  (* keep-alive: two requests on one connection, then a bad one *)
  with_client port @@ fun fd ->
  send_all fd "GET /healthz HTTP/1.1\r\n\r\n";
  let s1, _, _ = read_response fd in
  send_all fd "GET /nope HTTP/1.1\r\n\r\n";
  let s2, _, body2 = read_response fd in
  Alcotest.(check int) "keep-alive first" 200 s1;
  Alcotest.(check int) "keep-alive 404" 404 s2;
  Alcotest.(check bool) "404 names the path" true (contains body2 "/nope")

let test_loopback_rejects_garbage () =
  with_loopback_server @@ fun port ->
  with_client port @@ fun fd ->
  send_all fd "NOT-HTTP-AT-ALL\r\n\r\n";
  let status, _, body = read_response fd in
  Alcotest.(check int) "garbage is 400" 400 status;
  Alcotest.(check bool) "error body" true (contains body "\"error\"")

(* POST /sweep over a real socket: the response must be chunked, carry a
   trace id, de-chunk to exactly the bytes the in-process engine emits
   for the same grid, and bump the served-sweep counters. *)
let test_loopback_sweep_streams () =
  with_loopback_server @@ fun port ->
  let grid = "{\"model\":[0.005,0.01],\"trials\":[2,2]}" in
  let all =
    with_client port @@ fun fd ->
    send_all fd
      (Printf.sprintf
         "POST /sweep HTTP/1.1\r\ncontent-length: %d\r\nconnection: close\r\n\r\n%s"
         (String.length grid) grid);
    let buf = Buffer.create 4096 in
    let chunk = Bytes.create 4096 in
    let rec drain () =
      let n = Unix.read fd chunk 0 (Bytes.length chunk) in
      if n > 0 then begin
        Buffer.add_subbytes buf chunk 0 n;
        drain ()
      end
    in
    drain ();
    Buffer.contents buf
  in
  let head_end =
    let rec find i =
      if i + 4 > String.length all then Alcotest.fail "no head terminator"
      else if String.sub all i 4 = "\r\n\r\n" then i
      else find (i + 1)
    in
    find 0
  in
  let head = String.lowercase_ascii (String.sub all 0 head_end) in
  Alcotest.(check bool) "status 200" true (contains head "http/1.1 200");
  Alcotest.(check bool) "chunked" true (contains head "transfer-encoding: chunked");
  Alcotest.(check bool) "no content-length" false (contains head "content-length");
  Alcotest.(check bool) "ndjson" true (contains head "content-type: application/x-ndjson");
  Alcotest.(check bool) "trace id" true (contains head "x-trace-id:");
  let raw = String.sub all (head_end + 4) (String.length all - head_end - 4) in
  let body =
    match Server.Http.read_chunked_body (Server.Http.conn_of_string raw) with
    | Ok b -> b
    | Error _ -> Alcotest.fail "response body is not well-formed chunked"
  in
  let expected =
    let axes =
      List.map
        (fun (k, raws) ->
          match Stormsim.Sweep.axis_of_raw k raws with
          | Ok a -> a
          | Error e -> Alcotest.fail e)
        [ ("model", [ Stormsim.Sweep.Num 0.005; Stormsim.Sweep.Num 0.01 ]);
          ("trials", [ Stormsim.Sweep.Num 2.0; Stormsim.Sweep.Num 2.0 ]) ]
    in
    let cells =
      match Stormsim.Sweep.expand axes with
      | Ok cells -> cells
      | Error e -> Alcotest.fail e
    in
    let buf = Buffer.create 4096 in
    let _ =
      Stormsim.Sweep.run ~jobs:1 ~cells ()
        ~emit:(fun r -> Buffer.add_string buf (Stormsim.Sweep.row_line r))
    in
    Buffer.contents buf
  in
  Alcotest.(check string) "socket bytes = engine bytes" expected body;
  Alcotest.(check int) "served cells counted" 4 (counter_value "server.sweep.cells");
  Alcotest.(check int) "served rows counted" 4
    (counter_value "server.sweep.rows_streamed");
  Alcotest.(check int) "served plans counted" 2
    (counter_value "server.sweep.plans_compiled")

(* --- /statusz --- *)

let jmem path doc =
  List.fold_left (fun acc k -> Option.bind acc (Obs.Json.member k)) (Some doc) path

let jnum path doc = Option.bind (jmem path doc) Obs.Json.number

let test_statusz_shape () =
  with_server_state @@ fun () ->
  let routes = Server.Handlers.routes () in
  let resp = Server.Router.to_response (Server.Router.dispatch ~routes (request "/statusz")) in
  Alcotest.(check int) "status" 200 resp.Server.Http.status;
  match Obs.Json.parse resp.Server.Http.body with
  | Error e -> Alcotest.fail ("statusz unparseable: " ^ e)
  | Ok doc ->
      Alcotest.(check (option string)) "status ok" (Some "ok")
        (Option.bind (Obs.Json.member "status" doc) Obs.Json.string_);
      Alcotest.(check bool) "uptime counts" true
        (match jnum [ "uptime_s" ] doc with Some v -> v >= 0.0 | None -> false);
      List.iter
        (fun path ->
          Alcotest.(check bool) (String.concat "." path ^ " present") true
            (jnum path doc <> None))
        [
          [ "requests"; "total" ];
          [ "requests"; "2xx" ];
          [ "requests"; "rejected_busy" ];
          [ "latency_ms"; "count" ];
          [ "cache"; "entries" ];
          [ "cache"; "capacity" ];
          [ "cache"; "hits" ];
          [ "gc"; "heap_words" ];
        ];
      (* No traffic yet: quantiles have nothing to estimate. *)
      Alcotest.(check bool) "empty latency p50 is null" true
        (jmem [ "latency_ms"; "p50" ] doc = Some Obs.Json.Null)

let test_statusz_end_to_end () =
  with_loopback_server @@ fun port ->
  let s, _, _ = post_simulate port "{\"trials\":2,\"seed\":9}" in
  Alcotest.(check int) "simulate ok" 200 s;
  let status, _, body =
    with_client port @@ fun fd ->
    send_all fd "GET /statusz HTTP/1.1\r\nconnection: close\r\n\r\n";
    read_response fd
  in
  Alcotest.(check int) "statusz status" 200 status;
  match Obs.Json.parse body with
  | Error e -> Alcotest.fail ("statusz unparseable: " ^ e)
  | Ok doc ->
      Alcotest.(check bool) "requests counted" true
        (match jnum [ "requests"; "total" ] doc with Some v -> v >= 2.0 | None -> false);
      Alcotest.(check bool) "latency observed" true
        (match jnum [ "latency_ms"; "count" ] doc with Some v -> v >= 1.0 | None -> false);
      Alcotest.(check bool) "p50 estimated" true (jnum [ "latency_ms"; "p50" ] doc <> None);
      Alcotest.(check (option (float 1e-9))) "one cache entry" (Some 1.0)
        (jnum [ "cache"; "entries" ] doc)

(* --- cache occupancy gauge --- *)

let gauge_value name =
  match List.assoc_opt name (Obs.Metrics.snapshot ()) with
  | Some (Obs.Metrics.Gauge v) -> Some v
  | _ -> None

let test_cache_entries_gauge () =
  with_server_state @@ fun () ->
  Alcotest.(check (option (float 1e-9))) "starts empty" (Some 0.0)
    (gauge_value "server.cache.entries");
  ignore (Server.Api.with_cache ~key:"g1" (fun () -> Ok "x"));
  ignore (Server.Api.with_cache ~key:"g2" (fun () -> Ok "y"));
  Alcotest.(check (option (float 1e-9))) "tracks additions" (Some 2.0)
    (gauge_value "server.cache.entries");
  (* Hits do not change occupancy. *)
  ignore (Server.Api.with_cache ~key:"g1" (fun () -> Ok "x"));
  Alcotest.(check (option (float 1e-9))) "hit leaves it" (Some 2.0)
    (gauge_value "server.cache.entries");
  Server.Api.reset ();
  Alcotest.(check (option (float 1e-9))) "reset clears it" (Some 0.0)
    (gauge_value "server.cache.entries")

(* --- trace ids --- *)

let header_value head name =
  let needle = String.lowercase_ascii name ^ ":" in
  let nn = String.length needle in
  String.split_on_char '\n' (String.lowercase_ascii head)
  |> List.find_map (fun line ->
         let line = String.trim line in
         if String.length line > nn && String.sub line 0 nn = needle then
           Some (String.trim (String.sub line nn (String.length line - nn)))
         else None)

let is_hex16 s =
  String.length s = 16
  && String.for_all (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) s

let get_response port path =
  with_client port @@ fun fd ->
  send_all fd (Printf.sprintf "GET %s HTTP/1.1\r\nconnection: close\r\n\r\n" path);
  read_response fd

let test_trace_id_header () =
  let first_of_run () =
    with_loopback_server ~trace_seed:42 @@ fun port ->
    let _, h1, _ = get_response port "/healthz" in
    let _, h2, _ = get_response port "/healthz" in
    let id h =
      match header_value h "x-trace-id" with
      | Some s -> s
      | None -> Alcotest.fail "response carries no X-Trace-Id"
    in
    Alcotest.(check bool) "16 hex chars" true (is_hex16 (id h1) && is_hex16 (id h2));
    Alcotest.(check bool) "distinct per request" false (String.equal (id h1) (id h2));
    id h1
  in
  (* Same seed, fresh server: the n-th request gets the same id. *)
  Alcotest.(check string) "deterministic under --trace-seed" (first_of_run ())
    (first_of_run ())

let test_access_log_matches_trace_header () =
  let log_buf = Buffer.create 512 in
  let log_lock = Mutex.create () in
  Obs.Log.enable ();
  Obs.Log.set_sink (fun s ->
      Mutex.lock log_lock;
      Buffer.add_string log_buf s;
      Mutex.unlock log_lock);
  Fun.protect
    ~finally:(fun () ->
      Obs.Log.disable ();
      Obs.Log.set_sink (fun s ->
          output_string stderr s;
          flush stderr))
    (fun () ->
      with_loopback_server ~trace_seed:7 @@ fun port ->
      let status, head, _ = post_simulate port "{\"trials\":2,\"seed\":5}" in
      Alcotest.(check int) "simulate ok" 200 status;
      let id =
        match header_value head "x-trace-id" with
        | Some s -> s
        | None -> Alcotest.fail "no X-Trace-Id header"
      in
      let captured =
        Mutex.lock log_lock;
        let s = Buffer.contents log_buf in
        Mutex.unlock log_lock;
        s
      in
      let access =
        String.split_on_char '\n' (String.trim captured)
        |> List.filter (fun l -> contains l "\"event\":\"http.access\"")
      in
      Alcotest.(check int) "one access line" 1 (List.length access);
      match Obs.Json.parse (List.hd access) with
      | Error e -> Alcotest.fail ("access line unparseable: " ^ e)
      | Ok doc ->
          let str k = Option.bind (Obs.Json.member k doc) Obs.Json.string_ in
          Alcotest.(check (option string)) "log trace = header trace" (Some id)
            (str "trace");
          Alcotest.(check (option string)) "method" (Some "POST") (str "method");
          Alcotest.(check (option string)) "path" (Some "/simulate") (str "path");
          Alcotest.(check (option string)) "cold request is a miss" (Some "miss")
            (str "cache");
          Alcotest.(check (option (float 1e-9))) "status" (Some 200.0)
            (Option.bind (Obs.Json.member "status" doc) Obs.Json.number))

(* --- load generator --- *)

let test_loadgen_parse_url () =
  (match Server.Loadgen.parse_url "http://127.0.0.1:8080" with
  | Ok t ->
      Alcotest.(check string) "host" "127.0.0.1" t.Server.Loadgen.host;
      Alcotest.(check int) "port" 8080 t.Server.Loadgen.port;
      Alcotest.(check string) "default path" "/" t.Server.Loadgen.path
  | Error e -> Alcotest.fail e);
  (match Server.Loadgen.parse_url "http://localhost:9/metrics" with
  | Ok t ->
      Alcotest.(check string) "path kept" "/metrics" t.Server.Loadgen.path;
      Alcotest.(check int) "small port" 9 t.Server.Loadgen.port
  | Error e -> Alcotest.fail e);
  List.iter
    (fun url ->
      match Server.Loadgen.parse_url url with
      | Ok _ -> Alcotest.fail ("accepted " ^ url)
      | Error e -> Alcotest.(check bool) "names the shape" true (contains e "HOST:PORT"))
    [ "https://x:1"; "http://noport"; "http://:8080"; "http://h:0"; "http://h:99999"; "http://h:x"; "" ]

let test_loadgen_quantile_exact () =
  let s = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "q0 is min" 1.0 (Server.Loadgen.quantile_exact s 0.0);
  Alcotest.(check (float 1e-9)) "q1 is max" 4.0 (Server.Loadgen.quantile_exact s 1.0);
  Alcotest.(check (float 1e-9)) "median interpolates" 2.5 (Server.Loadgen.quantile_exact s 0.5);
  Alcotest.(check (float 1e-9)) "q25" 1.75 (Server.Loadgen.quantile_exact s 0.25);
  Alcotest.(check (float 1e-9)) "single sample" 7.0
    (Server.Loadgen.quantile_exact [| 7.0 |] 0.99);
  Alcotest.check_raises "empty" (Invalid_argument "Loadgen.quantile_exact: no samples")
    (fun () -> ignore (Server.Loadgen.quantile_exact [||] 0.5));
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Loadgen.quantile_exact: q outside [0, 1]") (fun () ->
      ignore (Server.Loadgen.quantile_exact s 1.5))

let test_loadgen_end_to_end () =
  with_loopback_server @@ fun port ->
  let target = { Server.Loadgen.host = "127.0.0.1"; port; path = "/healthz" } in
  let r = Server.Loadgen.run ~connections:2 ~pipeline:2 ~requests:10 ~body:None target in
  Alcotest.(check int) "all requests completed" 10 r.Server.Loadgen.requests;
  Alcotest.(check int) "no errors" 0 r.Server.Loadgen.errors;
  Alcotest.(check int) "one latency per request" 10
    (Array.length r.Server.Loadgen.latencies_ns);
  Alcotest.(check int) "healthz body bytes" (10 * String.length "{\"status\":\"ok\"}\n")
    r.Server.Loadgen.bytes;
  Alcotest.(check bool) "elapsed counts" true (r.Server.Loadgen.elapsed_s > 0.0);
  Alcotest.(check bool) "throughput computed" true (Server.Loadgen.req_per_s r > 0.0);
  let l = r.Server.Loadgen.latencies_ns in
  Array.iteri
    (fun i v -> if i > 0 then Alcotest.(check bool) "latencies sorted" true (l.(i - 1) <= v))
    l;
  (* The report is a parseable solarstorm-bench/1 document. *)
  (match Obs.Json.parse (Server.Loadgen.to_bench_json r) with
  | Error e -> Alcotest.fail ("bench doc unparseable: " ^ e)
  | Ok doc ->
      Alcotest.(check (option string)) "schema" (Some "solarstorm-bench/1")
        (Option.bind (Obs.Json.member "schema" doc) Obs.Json.string_);
      Alcotest.(check (option string)) "mode" (Some "loadgen")
        (Option.bind (Obs.Json.member "mode" doc) Obs.Json.string_);
      let kernel_names =
        match Option.bind (Obs.Json.member "kernels" doc) Obs.Json.array with
        | Some ks ->
            List.filter_map
              (fun k -> Option.bind (Obs.Json.member "name" k) Obs.Json.string_)
              ks
        | None -> []
      in
      List.iter
        (fun n -> Alcotest.(check bool) (n ^ " kernel") true (List.mem n kernel_names))
        [ "loadgen.latency-mean"; "loadgen.latency-p50"; "loadgen.latency-p95";
          "loadgen.latency-p99"; "loadgen.ns-per-request" ];
      Alcotest.(check (option (float 1e-9))) "request metric" (Some 10.0)
        (jnum [ "metrics"; "loadgen.requests" ] doc));
  let line = Server.Loadgen.summary r in
  Alcotest.(check bool) "summary req/s" true (contains line "req/s");
  Alcotest.(check bool) "summary p99" true (contains line "p99")

let test_loadgen_counts_failures () =
  with_loopback_server @@ fun port ->
  (* POSTs through the analysis path complete... *)
  let target = { Server.Loadgen.host = "127.0.0.1"; port; path = "/simulate" } in
  let ok =
    Server.Loadgen.run ~requests:4 ~body:(Some "{\"trials\":2,\"seed\":3}") target
  in
  Alcotest.(check int) "posts completed" 4 ok.Server.Loadgen.requests;
  Alcotest.(check int) "no errors" 0 ok.Server.Loadgen.errors;
  (* ...while a 404 target forfeits the connection's remaining share. *)
  let bad =
    Server.Loadgen.run ~requests:3 ~body:None
      { target with Server.Loadgen.path = "/nope" }
  in
  Alcotest.(check int) "nothing completed" 0 bad.Server.Loadgen.requests;
  Alcotest.(check int) "all forfeited" 3 bad.Server.Loadgen.errors;
  Alcotest.check_raises "bad requests count"
    (Invalid_argument "Loadgen.run: requests <= 0") (fun () ->
      ignore (Server.Loadgen.run ~requests:0 ~body:None target))

(* --- Chan: the acceptor/worker handoff channel --- *)

let test_chan_bounded_fifo () =
  let c : int Server.Chan.t = Server.Chan.create ~capacity:2 () in
  Alcotest.(check bool) "push 1" true (Server.Chan.try_push c 1);
  Alcotest.(check bool) "push 2" true (Server.Chan.try_push c 2);
  Alcotest.(check bool) "full refuses" false (Server.Chan.try_push c 3);
  (* The unconditional push (shutdown sentinels) ignores the bound. *)
  Server.Chan.push c 99;
  Alcotest.(check int) "length" 3 (Server.Chan.length c);
  Alcotest.(check int) "fifo 1" 1 (Server.Chan.pop c);
  Alcotest.(check int) "fifo 2" 2 (Server.Chan.pop c);
  Alcotest.(check int) "fifo 3" 99 (Server.Chan.pop c);
  Alcotest.(check (option int)) "empty try_pop" None (Server.Chan.try_pop c);
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Chan.create: negative capacity") (fun () ->
      ignore (Server.Chan.create ~capacity:(-1) () : int Server.Chan.t))

let test_chan_cross_domain () =
  let c : int Server.Chan.t = Server.Chan.create () in
  let producers = 3 and per = 100 in
  let doms =
    List.init producers (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              Server.Chan.push c ((p * per) + i)
            done))
  in
  let seen = Hashtbl.create 512 in
  for _ = 1 to producers * per do
    Hashtbl.replace seen (Server.Chan.pop c) ()
  done;
  List.iter Domain.join doms;
  Alcotest.(check int) "every push popped exactly once" (producers * per)
    (Hashtbl.length seen);
  Alcotest.(check (option int)) "nothing left" None (Server.Chan.try_pop c)

(* --- sharded LRU --- *)

let test_sharded_clamps_and_orders () =
  let t : int Server.Lru.Sharded.t = Server.Lru.Sharded.create ~shards:8 ~capacity:3 () in
  Alcotest.(check int) "shards clamp to capacity" 3 (Server.Lru.Sharded.shard_count t);
  Alcotest.(check int) "capacity kept" 3 (Server.Lru.Sharded.capacity t);
  let z : int Server.Lru.Sharded.t = Server.Lru.Sharded.create ~shards:4 ~capacity:0 () in
  Alcotest.(check int) "zero capacity: one disabled shard" 1
    (Server.Lru.Sharded.shard_count z);
  Alcotest.(check (option (pair string int))) "zero capacity drops" None
    (Server.Lru.Sharded.add z "a" 1);
  Alcotest.(check int) "zero stays empty" 0 (Server.Lru.Sharded.length z);
  (* One shard = exactly the plain LRU's global recency semantics. *)
  let s1 = Server.Lru.Sharded.create ~shards:1 ~capacity:2 () in
  ignore (Server.Lru.Sharded.add s1 "a" 1);
  ignore (Server.Lru.Sharded.add s1 "b" 2);
  Alcotest.(check (option int)) "find promotes" (Some 1) (Server.Lru.Sharded.find s1 "a");
  Alcotest.(check (option (pair string int))) "lru evicted" (Some ("b", 2))
    (Server.Lru.Sharded.add s1 "c" 3);
  Alcotest.(check (list string)) "recency order" [ "c"; "a" ]
    (Server.Lru.Sharded.keys_newest_first s1);
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Lru.Sharded.create: negative capacity") (fun () ->
      ignore (Server.Lru.Sharded.create ~capacity:(-1) () : int Server.Lru.Sharded.t))

let test_sharded_multi_domain_stress () =
  let domains = 4 and keys_per = 40 and rounds = 5 in
  let key d i = Printf.sprintf "d%d-k%03d" d i in
  (* Phase 1: every shard's slice exceeds the whole key population
     (capacity is partitioned across shards, so hash skew could
     otherwise evict) — no entry may be lost or corrupted, from any
     domain's point of view, at any time. *)
  let big : int Server.Lru.Sharded.t =
    Server.Lru.Sharded.create ~shards:8 ~capacity:(domains * keys_per * 8) ()
  in
  let doms =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for _ = 1 to rounds do
              for i = 0 to keys_per - 1 do
                ignore (Server.Lru.Sharded.add big (key d i) ((d * 1000) + i));
                match Server.Lru.Sharded.find big (key d i) with
                | Some v when v = (d * 1000) + i -> ()
                | Some _ -> failwith "wrong value under concurrency"
                | None -> failwith "entry lost under concurrency"
              done
            done))
  in
  List.iter Domain.join doms;
  Alcotest.(check int) "no entries lost" (domains * keys_per)
    (Server.Lru.Sharded.length big);
  for d = 0 to domains - 1 do
    for i = 0 to keys_per - 1 do
      if Server.Lru.Sharded.find big (key d i) <> Some ((d * 1000) + i) then
        Alcotest.fail (Printf.sprintf "key %s lost after join" (key d i))
    done
  done;
  (* Phase 2: heavy eviction pressure — the capacity bound must hold at
     every observable moment, and every add must be accounted for:
     resident at the end or reported evicted exactly once. *)
  let cap = 16 and adds_per = 200 in
  let small : int Server.Lru.Sharded.t =
    Server.Lru.Sharded.create ~shards:4 ~capacity:cap ()
  in
  let doms =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            let evicted = ref 0 in
            for i = 0 to adds_per - 1 do
              (match Server.Lru.Sharded.add small (Printf.sprintf "s%d-%04d" d i) i with
              | Some _ -> incr evicted
              | None -> ());
              if i land 31 = 0 && Server.Lru.Sharded.length small > cap then
                failwith "capacity exceeded under concurrency"
            done;
            !evicted))
  in
  let evictions = List.fold_left (fun a d -> a + Domain.join d) 0 doms in
  let len = Server.Lru.Sharded.length small in
  Alcotest.(check bool) "capacity never exceeded" true (len <= cap);
  Alcotest.(check int) "adds = resident + evicted" (domains * adds_per) (len + evictions)

let test_cache_counters_concurrent () =
  with_server_state @@ fun () ->
  Server.Api.set_cache_capacity 128;
  let key = "concurrent-key" in
  (match Server.Api.with_cache ~key (fun () -> Ok "warm") with
  | Ok "warm" -> ()
  | _ -> Alcotest.fail "warm miss failed");
  let clients = 4 and reps = 25 in
  let doms =
    List.init clients (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to reps do
              match Server.Api.with_cache ~key (fun () -> Ok "never") with
              | Ok "warm" -> ()
              | Ok _ -> failwith "hit returned wrong bytes"
              | Error _ -> failwith "hit errored"
            done))
  in
  List.iter Domain.join doms;
  Alcotest.(check int) "hits exact across domains" (clients * reps)
    (counter_value "server.cache.hits");
  Alcotest.(check int) "one miss" 1 (counter_value "server.cache.misses");
  (* Disjoint keys from concurrent domains: one miss each, no losses. *)
  let per = 20 in
  let doms =
    List.init clients (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              ignore
                (Server.Api.with_cache ~key:(Printf.sprintf "c%d-%d" d i) (fun () -> Ok "v"))
            done))
  in
  List.iter Domain.join doms;
  Alcotest.(check int) "misses exact" (1 + (clients * per))
    (counter_value "server.cache.misses");
  Alcotest.(check int) "no evictions" 0 (counter_value "server.cache.evictions");
  Alcotest.(check int) "occupancy exact" (1 + (clients * per)) (Server.Api.cache_length ())

(* --- worker pool e2e --- *)

let post_path port path body =
  with_client port @@ fun fd ->
  send_all fd
    (Printf.sprintf
       "POST %s HTTP/1.1\r\ncontent-length: %d\r\nconnection: close\r\n\r\n%s"
       path (String.length body) body);
  read_response fd

let test_workers_byte_identity () =
  let fetch_all ~workers =
    with_loopback_server ~workers @@ fun port ->
    List.map
      (fun (path, body) ->
        let status, _, resp = post_path port path body in
        Alcotest.(check int) (path ^ " ok") 200 status;
        resp)
      [
        ("/simulate", "{\"trials\":4,\"seed\":11}");
        ("/scenario", "{\"event\":\"carrington\",\"trials\":3}");
        ("/countries", "{\"trials\":3}");
      ]
  in
  let single = fetch_all ~workers:1 in
  let pooled = fetch_all ~workers:4 in
  List.iter2
    (fun a b -> Alcotest.(check string) "workers=1 and workers=4 bytes equal" a b)
    single pooled

let test_workers_concurrent_cache_hits () =
  with_loopback_server ~workers:4 @@ fun port ->
  let body = "{\"trials\":4,\"seed\":11}" in
  let s0, _, warm = post_simulate port body in
  Alcotest.(check int) "warm ok" 200 s0;
  let trials_after_warm = counter_value "plan.trials" in
  let clients = 4 and reps = 8 in
  let doms =
    List.init clients (fun _ ->
        Domain.spawn (fun () ->
            List.init reps (fun _ ->
                let status, head, resp = post_simulate port body in
                (status, header_value head "x-trace-id", resp))))
  in
  let results = List.concat_map Domain.join doms in
  List.iter
    (fun (status, _, resp) ->
      Alcotest.(check int) "concurrent repeat ok" 200 status;
      Alcotest.(check string) "bytes match warm response" warm resp)
    results;
  let ids = List.filter_map (fun (_, id, _) -> id) results in
  Alcotest.(check int) "every response carries a trace id" (clients * reps)
    (List.length ids);
  Alcotest.(check int) "trace ids distinct across concurrent requests" (clients * reps)
    (List.length (List.sort_uniq String.compare ids));
  Alcotest.(check int) "hits counted exactly once per repeat" (clients * reps)
    (counter_value "server.cache.hits");
  Alcotest.(check int) "trials never re-ran" trials_after_warm (counter_value "plan.trials")

let test_statusz_worker_rows () =
  with_loopback_server ~workers:2 @@ fun port ->
  for _ = 1 to 3 do
    ignore (get_response port "/healthz")
  done;
  let status, _, body = get_response port "/statusz" in
  Alcotest.(check int) "statusz ok" 200 status;
  match Obs.Json.parse body with
  | Error e -> Alcotest.fail ("statusz unparseable: " ^ e)
  | Ok doc -> (
      let total = jnum [ "requests"; "total" ] doc in
      match Option.bind (Obs.Json.member "workers" doc) Obs.Json.array with
      | None | Some [] -> Alcotest.fail "no workers array"
      | Some rows ->
          (* The snapshot is taken inside the /statusz request itself,
             after both counters were bumped, so the rows sum to the
             total including this very request. *)
          let sum =
            List.fold_left
              (fun acc row ->
                acc
                +. Option.value ~default:0.0
                     (Option.bind (Obs.Json.member "requests" row) Obs.Json.number))
              0.0 rows
          in
          Alcotest.(check (option (float 1e-9))) "worker requests sum to total" total
            (Some sum);
          List.iter
            (fun row ->
              Alcotest.(check bool) "busy_ms present" true
                (Option.bind (Obs.Json.member "busy_ms" row) Obs.Json.number <> None))
            rows)

let test_loadgen_concurrency_exceeds_workers () =
  with_loopback_server ~workers:2 @@ fun port ->
  let target = { Server.Loadgen.host = "127.0.0.1"; port; path = "/healthz" } in
  let r = Server.Loadgen.run ~connections:4 ~pipeline:2 ~requests:40 ~body:None target in
  Alcotest.(check int) "all completed" 40 r.Server.Loadgen.requests;
  Alcotest.(check int) "no errors" 0 r.Server.Loadgen.errors

(* --- loadgen warmup --- *)

let test_loadgen_warmup_excluded () =
  with_loopback_server @@ fun port ->
  let target = { Server.Loadgen.host = "127.0.0.1"; port; path = "/healthz" } in
  let r =
    Server.Loadgen.run ~connections:2 ~warmup:3 ~requests:10 ~body:None target
  in
  Alcotest.(check int) "measured requests" 10 r.Server.Loadgen.requests;
  Alcotest.(check int) "warmup counted separately" 6 r.Server.Loadgen.warmup;
  Alcotest.(check int) "no errors" 0 r.Server.Loadgen.errors;
  Alcotest.(check int) "one latency per measured request" 10
    (Array.length r.Server.Loadgen.latencies_ns);
  (* The server saw warmup + measured requests; the report excludes the
     warmup ones. *)
  Alcotest.(check int) "server served every request" 16 (counter_value "server.requests");
  (* The bench document carries the warmup count for provenance. *)
  let doc =
    match Obs.Json.parse (String.trim (Server.Loadgen.to_bench_json r)) with
    | Ok d -> d
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check (option (float 1e-9))) "warmup metric" (Some 6.0)
    (jnum [ "metrics"; "loadgen.warmup" ] doc)

(* --- windowed self-monitoring: /varz, /alertz, /dashboard --- *)

let parse_json body =
  match Obs.Json.parse body with Ok d -> d | Error e -> Alcotest.fail e

let test_varz_end_to_end () =
  with_loopback_server @@ fun port ->
  (* Traffic first, so the windowed series have something to show. *)
  for _ = 1 to 5 do
    ignore (get_response port "/healthz")
  done;
  let status, _, body = get_response port "/varz?window=60s" in
  Alcotest.(check int) "varz status" 200 status;
  let doc = parse_json body in
  Alcotest.(check (option (float 1e-9))) "window echoed" (Some 60.0)
    (jnum [ "window_s" ] doc);
  (match jnum [ "samples" ] doc with
  | Some n -> Alcotest.(check bool) "has samples" true (n >= 1.0)
  | None -> Alcotest.fail "no samples field");
  (match jmem [ "series"; "server.requests" ] doc with
  | Some s ->
      Alcotest.(check (option string)) "counter kind" (Some "counter")
        (Option.bind (Obs.Json.member "kind" s) Obs.Json.string_)
  | None -> Alcotest.fail "server.requests series missing");
  (match jmem [ "series"; "server.request.ms"; "p99" ] doc with
  | Some _ -> ()
  | None -> Alcotest.fail "histogram series missing p99");
  (* A second scrape one more sample in: the ring grew. *)
  let _, _, body2 = get_response port "/varz?window=60s" in
  (match (jnum [ "samples" ] doc, jnum [ "samples" ] (parse_json body2)) with
  | Some a, Some b -> Alcotest.(check bool) "ring grows across scrapes" true (b > a)
  | _ -> Alcotest.fail "samples missing");
  (* After requests flowed between scrapes, the window sees a rate. *)
  (match jnum [ "series"; "server.requests"; "rate_per_s" ] (parse_json body2) with
  | Some r -> Alcotest.(check bool) "windowed rate positive" true (r > 0.0)
  | None -> Alcotest.fail "rate missing");
  let bad_status, _, _ = get_response port "/varz?window=banana" in
  Alcotest.(check int) "bad window is 400" 400 bad_status

let test_alertz_fire_and_resolve_end_to_end () =
  (* A throughput objective ("stay under 100 req/s") over a tiny
     window, sampled fast: a request burst fires it, quiet polling
     resolves it.  (A latency rule would never resolve here — the
     /alertz polls themselves feed server.request.ms.) *)
  with_loopback_server ~sampler_step:0.05 ~slo:[ "server.requests:rate<100:1s" ]
  @@ fun port ->
  let deadline = Unix.gettimeofday () +. 15.0 in
  let alert_state () =
    let status, _, body = get_response port "/alertz" in
    Alcotest.(check int) "alertz status" 200 status;
    let doc = parse_json body in
    match jmem [ "rules" ] doc with
    | Some (Obs.Json.Array [ rule ]) ->
        ( Option.bind (Obs.Json.member "state" rule) Obs.Json.string_,
          jnum [ "firing" ] doc )
    | _ -> Alcotest.fail "expected exactly one rule"
  in
  (match alert_state () with
  | Some "ok", Some 0.0 -> ()
  | st, _ -> Alcotest.fail (Printf.sprintf "initial state %s" (Option.value ~default:"?" st)));
  let rec await want ~burst ~pause =
    if Unix.gettimeofday () > deadline then
      Alcotest.fail (Printf.sprintf "alert never became %s" want)
    else begin
      for _ = 1 to burst do
        ignore (get_response port "/healthz")
      done;
      Unix.sleepf pause;
      match alert_state () with
      | Some st, _ when st = want -> ()
      | _ -> await want ~burst ~pause
    end
  in
  (* ~600 req/s of bursts: both burn-rate windows breach the objective. *)
  await "firing" ~burst:30 ~pause:0.05;
  (match alert_state () with
  | _, Some f -> Alcotest.(check (float 1e-9)) "firing count" 1.0 f
  | _ -> Alcotest.fail "no firing count");
  (* Quiet polling (~3 req/s) sits far under the objective: the short
     window recovers and the alert resolves. *)
  await "ok" ~burst:0 ~pause:0.3

let test_dashboard_end_to_end () =
  with_loopback_server @@ fun port ->
  for _ = 1 to 3 do
    ignore (get_response port "/healthz")
  done;
  let status, head, body = get_response port "/dashboard" in
  Alcotest.(check int) "dashboard status" 200 status;
  (match header_value head "content-type" with
  | Some ct -> Alcotest.(check bool) "text/html" true (contains ct "text/html")
  | None -> Alcotest.fail "no content type");
  Alcotest.(check bool) "has sparkline svg" true (contains body "<svg");
  Alcotest.(check bool) "names a server metric" true (contains body "server.requests");
  let bad_status, _, _ = get_response port "/dashboard?window=nope" in
  Alcotest.(check int) "bad window is 400" 400 bad_status

let test_statusz_build_and_alerts_blocks () =
  with_loopback_server ~slo:[ "server.request.ms:p99<50:5m" ] @@ fun port ->
  let status, _, body = get_response port "/statusz" in
  Alcotest.(check int) "statusz status" 200 status;
  let doc = parse_json body in
  Alcotest.(check (option string)) "version" (Some Server.Handlers.version)
    (Option.bind (jmem [ "build"; "version" ] doc) Obs.Json.string_);
  Alcotest.(check (option string)) "ocaml version" (Some Sys.ocaml_version)
    (Option.bind (jmem [ "build"; "ocaml" ] doc) Obs.Json.string_);
  Alcotest.(check (option (float 1e-9))) "worker count" (Some 1.0)
    (jnum [ "build"; "workers" ] doc);
  (match jnum [ "build"; "sampler_step_s" ] doc with
  | Some _ -> ()
  | None -> Alcotest.fail "sampler step missing");
  Alcotest.(check (option (float 1e-9))) "alert rules counted" (Some 1.0)
    (jnum [ "alerts"; "rules" ] doc);
  Alcotest.(check (option (float 1e-9))) "none firing" (Some 0.0)
    (jnum [ "alerts"; "firing" ] doc)

let test_http_query_params () =
  let req target =
    { Server.Http.meth = GET; target; version = "HTTP/1.1"; headers = []; body = "" }
  in
  Alcotest.(check (list (pair string string))) "no query" []
    (Server.Http.query_params (req "/varz"));
  Alcotest.(check (list (pair string string))) "pairs" [ ("window", "60s"); ("raw", "") ]
    (Server.Http.query_params (req "/varz?window=60s&raw"));
  Alcotest.(check (option string)) "lookup" (Some "60s")
    (Server.Http.query_param (req "/varz?window=60s") "window");
  Alcotest.(check (option string)) "missing" None
    (Server.Http.query_param (req "/varz?window=60s") "step");
  Alcotest.(check string) "path drops query" "/varz"
    (Server.Http.path (req "/varz?window=60s"))

(* --- solarstorm top (pure rendering) --- *)

let test_top_render_frame () =
  let statusz =
    parse_json
      "{\"build\":{\"version\":\"1.0.0\",\"workers\":4},\"uptime_s\":12.5,\
       \"requests\":{\"total\":420},\"cache\":{\"hits\":7,\"misses\":3,\"entries\":2},\
       \"alerts\":{\"rules\":1,\"firing\":1}}"
  in
  let varz =
    parse_json
      "{\"window_s\":60.0,\"samples\":9,\"series\":{\
       \"server.requests\":{\"kind\":\"counter\",\"rate_per_s\":33.5,\
       \"points\":[[-2.0,10.0],[-1.0,20.0],[0.0,30.0]]},\
       \"server.request.ms\":{\"kind\":\"histogram\",\"p50\":0.2,\"p95\":0.9,\
       \"p99\":1.5,\"p99_points\":[[-1.0,1.0],[0.0,1.5]]}}}"
  in
  let frame = Server.Top.render ~target:"127.0.0.1:8080" ~statusz ~varz in
  Alcotest.(check bool) "names the target" true (contains frame "127.0.0.1:8080");
  Alcotest.(check bool) "shows version" true (contains frame "v1.0.0");
  Alcotest.(check bool) "shows total" true (contains frame "420");
  Alcotest.(check bool) "shows rate" true (contains frame "33.5/s");
  Alcotest.(check bool) "shows p99" true (contains frame "1.50ms");
  Alcotest.(check bool) "flags firing alerts" true (contains frame "** FIRING **");
  (* Missing fields degrade to placeholders, never exceptions. *)
  let empty = Server.Top.render ~target:"x:1" ~statusz:Obs.Json.Null ~varz:Obs.Json.Null in
  Alcotest.(check bool) "placeholders" true (contains empty "-");
  (* Sparkline scales to its extremes. *)
  let s = Server.Top.spark [ 0.0; 1.0 ] in
  Alcotest.(check bool) "low then high" true (contains s "\xe2\x96\x81" && contains s "\xe2\x96\x88");
  Alcotest.(check string) "empty series" "" (Server.Top.spark [])

let test_top_end_to_end () =
  with_loopback_server @@ fun port ->
  ignore (get_response port "/healthz");
  let frames = Buffer.create 512 in
  (match
     Server.Top.run
       ~out:(Buffer.add_string frames)
       ~host:"127.0.0.1" ~port ~window:"60s" ~interval_s:0.01 ~count:(Some 2) ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let out = Buffer.contents frames in
  Alcotest.(check bool) "renders frames" true (contains out "solarstorm top");
  Alcotest.(check bool) "shows latency row" true (contains out "latency");
  (* Not a tty here: no ANSI clear codes in redirected output. *)
  Alcotest.(check bool) "no escape codes" false (contains out "\027[")

let () =
  Alcotest.run "server"
    [
      ( "http",
        [ Alcotest.test_case "valid GET" `Quick test_parse_valid_get;
          Alcotest.test_case "valid POST body" `Quick test_parse_valid_post_body;
          Alcotest.test_case "HTTP/1.0 closes" `Quick test_parse_http10_defaults_to_close;
          Alcotest.test_case "truncated" `Quick test_parse_truncated;
          Alcotest.test_case "garbage" `Quick test_parse_garbage;
          Alcotest.test_case "oversized" `Quick test_parse_oversized;
          Alcotest.test_case "pipelined" `Quick test_parse_pipelined;
          Alcotest.test_case "stalled peer times out" `Quick test_parse_timeout;
          Alcotest.test_case "response serialization" `Quick test_response_to_string;
          Alcotest.test_case "query params" `Quick test_http_query_params ] );
      ( "chunked",
        [ Alcotest.test_case "chunk framing" `Quick test_chunk_framing;
          Alcotest.test_case "respond_stream framing" `Quick test_respond_stream_framing;
          Alcotest.test_case "read_chunk round-trip" `Quick test_read_chunk_roundtrip;
          Alcotest.test_case "malformed chunks" `Quick test_read_chunk_malformed ] );
      ( "router",
        [ Alcotest.test_case "404" `Quick test_router_not_found;
          Alcotest.test_case "405 with allow" `Quick test_router_method_not_allowed;
          Alcotest.test_case "400 on bad body" `Quick test_router_bad_body_is_400;
          Alcotest.test_case "500 on crash" `Quick test_router_handler_crash_is_500;
          Alcotest.test_case "healthz" `Quick test_router_healthz ] );
      ( "lru",
        [ Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "refresh" `Quick test_lru_refresh_existing;
          Alcotest.test_case "zero capacity" `Quick test_lru_zero_capacity_disables;
          Alcotest.test_case "sharded clamps and orders" `Quick
            test_sharded_clamps_and_orders;
          Alcotest.test_case "sharded multi-domain stress" `Quick
            test_sharded_multi_domain_stress ] );
      ( "chan",
        [ Alcotest.test_case "bounded fifo" `Quick test_chan_bounded_fifo;
          Alcotest.test_case "cross domain" `Quick test_chan_cross_domain ] );
      ( "cache",
        [ Alcotest.test_case "key canonicalization" `Quick test_cache_key_canonicalization;
          Alcotest.test_case "hit skips trials" `Quick test_cache_hit_skips_trials;
          Alcotest.test_case "errors not stored" `Quick test_cache_does_not_store_errors;
          Alcotest.test_case "eviction counted" `Quick test_cache_eviction_is_counted;
          Alcotest.test_case "counters under concurrency" `Quick
            test_cache_counters_concurrent;
          Alcotest.test_case "body decoding defaults" `Quick test_params_of_body_defaults ] );
      ( "loopback",
        [ Alcotest.test_case "end to end" `Quick test_loopback_end_to_end;
          Alcotest.test_case "garbage over socket" `Quick test_loopback_rejects_garbage;
          Alcotest.test_case "sweep streams chunked" `Quick test_loopback_sweep_streams ] );
      ( "statusz",
        [ Alcotest.test_case "shape" `Quick test_statusz_shape;
          Alcotest.test_case "end to end" `Quick test_statusz_end_to_end;
          Alcotest.test_case "cache entries gauge" `Quick test_cache_entries_gauge ] );
      ( "trace",
        [ Alcotest.test_case "X-Trace-Id header" `Quick test_trace_id_header;
          Alcotest.test_case "access log matches header" `Quick
            test_access_log_matches_trace_header ] );
      ( "loadgen",
        [ Alcotest.test_case "parse url" `Quick test_loadgen_parse_url;
          Alcotest.test_case "exact quantiles" `Quick test_loadgen_quantile_exact;
          Alcotest.test_case "end to end" `Quick test_loadgen_end_to_end;
          Alcotest.test_case "counts failures" `Quick test_loadgen_counts_failures;
          Alcotest.test_case "warmup excluded" `Quick test_loadgen_warmup_excluded ] );
      ( "workers",
        [ Alcotest.test_case "byte identity vs single worker" `Quick
            test_workers_byte_identity;
          Alcotest.test_case "concurrent cache hits" `Quick
            test_workers_concurrent_cache_hits;
          Alcotest.test_case "statusz worker rows" `Quick test_statusz_worker_rows;
          Alcotest.test_case "loadgen concurrency > workers" `Quick
            test_loadgen_concurrency_exceeds_workers ] );
      ( "monitoring",
        [ Alcotest.test_case "varz end to end" `Quick test_varz_end_to_end;
          Alcotest.test_case "alert fires and resolves" `Quick
            test_alertz_fire_and_resolve_end_to_end;
          Alcotest.test_case "dashboard" `Quick test_dashboard_end_to_end;
          Alcotest.test_case "statusz build and alerts" `Quick
            test_statusz_build_and_alerts_blocks;
          Alcotest.test_case "top renders a frame" `Quick test_top_render_frame;
          Alcotest.test_case "top end to end" `Quick test_top_end_to_end ] );
    ]
