(* Bench regression comparator: load a prior solarstorm-bench/1 document
   and diff this run's kernel timings against it.

   Exit policy (what check.sh gates on): 0 when every shared kernel is
   within the threshold, 1 when any kernel regressed past it, 3 when the
   baseline document is unreadable or not a solarstorm-bench/1 file.
   Kernels present on only one side are reported but never fail the
   gate, so adding or retiring a kernel doesn't break CI. *)

type kernel = { name : string; ns_per_run : float }

let load path =
  match Obs.Json.parse_file path with
  | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
  | Ok doc -> (
      match Option.bind (Obs.Json.member "schema" doc) Obs.Json.string_ with
      | Some "solarstorm-bench/1" -> (
          match Option.bind (Obs.Json.member "kernels" doc) Obs.Json.array with
          | None -> Error (Printf.sprintf "%s: no \"kernels\" array" path)
          | Some ks ->
              let kernel k =
                match
                  ( Option.bind (Obs.Json.member "name" k) Obs.Json.string_,
                    Option.bind (Obs.Json.member "ns_per_run" k) Obs.Json.number )
                with
                | Some name, Some ns_per_run -> Some { name; ns_per_run }
                | _ -> None
              in
              Ok (List.filter_map kernel ks))
      | Some other -> Error (Printf.sprintf "%s: schema %S, want solarstorm-bench/1" path other)
      | None -> Error (Printf.sprintf "%s: missing \"schema\" marker" path))

(* [current] rows are this run's (name, ns, estimator) timings; [scale]
   multiplies baseline timings before the comparison (a self-test hook:
   scaling the baseline by 0.5 makes the current run look exactly 2x
   slower, which must trip the gate deterministically). *)
let compare_run ~current ~path ~threshold_pct ~scale =
  match load path with
  | Error msg ->
      Printf.eprintf "bench --baseline: %s\n" msg;
      3
  | Ok base ->
      Printf.printf "\n== baseline comparison vs %s (threshold +%.1f%%%s) ==\n" path
        threshold_pct
        (if scale <> 1.0 then Printf.sprintf ", baseline scaled x%g" scale else "");
      Printf.printf "%-32s %14s %14s %9s\n" "kernel" "current ns" "baseline ns" "delta";
      let regressions = ref [] in
      List.iter
        (fun (name, cur_ns, _estimator) ->
          match List.find_opt (fun k -> k.name = name) base with
          | None -> Printf.printf "%-32s %14.0f %14s %9s\n" name cur_ns "-" "new"
          | Some k when k.ns_per_run *. scale <= 0.0 ->
              Printf.printf "%-32s %14.0f %14.0f %9s\n" name cur_ns k.ns_per_run "skip"
          | Some k ->
              let b = k.ns_per_run *. scale in
              let delta_pct = (cur_ns -. b) /. b *. 100.0 in
              Printf.printf "%-32s %14.0f %14.0f %+8.1f%%\n" name cur_ns b delta_pct;
              if delta_pct > threshold_pct then regressions := (name, delta_pct) :: !regressions)
        current;
      List.iter
        (fun k ->
          if not (List.exists (fun (name, _, _) -> name = k.name) current) then
            Printf.printf "%-32s %14s %14.0f %9s\n" k.name "-" k.ns_per_run "retired")
        base;
      (match List.rev !regressions with
      | [] ->
          Printf.printf "baseline gate: ok (%d kernels within +%.1f%%)\n" (List.length current)
            threshold_pct
      | rs ->
          List.iter
            (fun (name, d) ->
              Printf.printf "REGRESSION: %s %+.1f%% (limit +%.1f%%)\n" name d threshold_pct)
            rs;
          Printf.printf "baseline gate: FAILED (%d kernel(s) regressed)\n" (List.length rs));
      flush stdout;
      if !regressions = [] then 0 else 1
