(* Benchmark + figure-regeneration harness.

   `dune exec bench/main.exe` does two things:
   1. regenerates every table and figure of the paper (the same series the
      paper reports, printed as text) — the reproduction harness;
   2. runs a Bechamel micro-benchmark per experiment kernel.

   `dune exec bench/main.exe -- --fast` skips the Bechamel pass.
   `dune exec bench/main.exe -- --json FILE` additionally writes a
   BENCH.json-shaped document: per-kernel timings (Bechamel OLS estimates,
   or a single timed run per kernel in --fast mode) plus an Obs metrics
   snapshot of the figure pass.  This is what seeds the repo's perf
   trajectory (BENCH_*.json).

   `-- --baseline FILE` diffs this run's kernel timings against a prior
   solarstorm-bench/1 document and exits non-zero when any kernel
   regressed past `--threshold PCT` (default 20%); `--baseline-scale F`
   scales the baseline first (check.sh uses 0.5 to prove the gate trips
   on an injected 2x slowdown).  See bench/baseline.ml. *)

let print_figures () =
  print_endline "==============================================================";
  print_endline " Solar Superstorms reproduction: regenerating tables & figures";
  print_endline "==============================================================";
  let ctx = Report.Figures.make_context () in
  List.iter
    (fun (id, text) ->
      Printf.printf "\n----- %s -----\n%s\n" id text;
      flush stdout)
    (Report.Figures.all ctx);
  ctx

(* A live loopback server for the serve.throughput kernels: one domain
   running the real Service acceptor loop (plus [workers] handler
   domains), an ephemeral port reported through [on_ready].  The
   returned closure stops and joins it. *)
let boot_server ~workers () =
  let port_box = Atomic.make 0 in
  let server =
    Domain.spawn (fun () ->
        Server.Service.run
          ~on_ready:(fun ~port -> Atomic.set port_box port)
          {
            Server.Service.default_config with
            Server.Service.port = 0;
            workers;
            idle_poll_s = 0.01;
            drain_grace_s = 0.5;
            log = ignore;
          })
  in
  let rec wait () =
    let p = Atomic.get port_box in
    if p = 0 then begin
      Domain.cpu_relax ();
      wait ()
    end
    else p
  in
  let port = wait () in
  ( port,
    fun () ->
      Server.Service.stop ();
      Domain.join server )

(* The sweep kernels' grid: 4 models x 4 itu scales x 4 duplicate trial
   values = 64 cells over the default submarine network, where itu_scale
   never reaches a plan key — exactly 4 plans compile and 4 batches of
   100 trials run. *)
let sweep_grid () =
  let specs =
    [ "model=0.005,0.01,0.02,s1"; "itu_scale=0.1,0.2,0.3,0.4"; "trials=100,100,100,100" ]
  in
  let axes =
    List.map
      (fun s ->
        match Stormsim.Sweep.axis_of_spec s with Ok a -> a | Error e -> failwith e)
      specs
  in
  match Stormsim.Sweep.expand axes with Ok cells -> cells | Error e -> failwith e

(* One kernel per table/figure, shared by the Bechamel pass and the
   single-run --fast timings. *)
let kernels ctx ~port ~port_par : (string * (unit -> unit)) list =
  let sub = Report.Figures.submarine ctx in
  let rng = Rng.create 99 in
  let uniform_plan =
    Stormsim.Plan.compile ~network:sub ~model:(Stormsim.Failure_model.uniform 0.01) ()
  in
  let tiered_plan = Stormsim.Plan.compile ~network:sub ~model:Stormsim.Failure_model.s1 () in
  (* Shared buffer so plan.sample vs plan.sample-recompute time pure
     sampling, not allocation. *)
  let dead_buf = Stormsim.Deadset.create (Stormsim.Plan.nb_cables uniform_plan) in
  let graph, _ = Infra.Network.to_graph sub in
  let storm = Gic.Disturbance.storm_of_dst (-1200.0) in
  (* The longest cable of the dataset (the SEA-ME-WE 3 analogue in the
     synthetic build; found at runtime, whatever it is). *)
  let long_cable = Infra.Network.longest_cable sub in
  [
    ("fig3-latitude-pdf", fun () -> ignore (Stormsim.Distribution.fig3 ~submarine:sub));
    ( "fig4-threshold-curves",
      fun () ->
        ignore
          (Stormsim.Distribution.fig4a ~submarine:sub
             ~intertubes:(Report.Figures.intertubes ctx)) );
    ( "fig5-length-cdf",
      fun () ->
        ignore
          (Stormsim.Distribution.fig5 ~submarine:sub
             ~intertubes:(Report.Figures.intertubes ctx) ~itu:(Report.Figures.itu ctx)) );
    ( "plan.compile",
      fun () ->
        ignore (Stormsim.Plan.compile ~network:sub ~model:Stormsim.Failure_model.s1 ()) );
    ("plan.sample", fun () -> Stormsim.Plan.sample_into uniform_plan rng dead_buf);
    ( "plan.sample-recompute",
      fun () -> Stormsim.Plan.sample_recompute_into uniform_plan rng dead_buf );
    (* Opt-in geometric skip-sampling: candidate gaps under the plan's
       max death prob instead of one draw per cable. *)
    ("plan.sample-skip", fun () -> Stormsim.Plan.sample_skip_into uniform_plan rng dead_buf);
    ( "fig6-uniform-trial",
      fun () -> ignore (Stormsim.Montecarlo.trial rng ~plan:uniform_plan) );
    (* The same 200-trial Monte-Carlo workload three ways: a plain
       sequential loop, the Domain engine at one job (its overhead over
       the loop), and at four jobs (scaling, bounded by the machine's
       core count). *)
    ( "plan.trials-seq",
      fun () ->
        for _ = 1 to 200 do
          ignore (Stormsim.Montecarlo.trial rng ~plan:tiered_plan)
        done );
    ( "plan.trials-par1",
      fun () -> ignore (Stormsim.Montecarlo.run_plan ~trials:200 ~jobs:1 ~seed:13 tiered_plan) );
    ( "plan.trials-par4",
      fun () -> ignore (Stormsim.Montecarlo.run_plan ~trials:200 ~jobs:4 ~seed:13 tiered_plan) );
    (* A 64-cell sweep that collapses to 4 distinct plans (itu_scale is
       normalized out of submarine keys; duplicate trials values are
       distinct cells in shared batches): the whole grid engine —
       expansion, plan dedup, batch trials, row rendering — at one job
       vs four.  Rows identical either way; par4 should win on >= 4
       cores. *)
    ( "sweep.grid-seq",
      let cells = sweep_grid () in
      fun () -> ignore (Stormsim.Sweep.run ~jobs:1 ~cells ~emit:ignore ()) );
    ( "sweep.grid-par4",
      let cells = sweep_grid () in
      fun () -> ignore (Stormsim.Sweep.run ~jobs:4 ~cells ~emit:ignore ()) );
    ("fig8-tiered-trial", fun () -> ignore (Stormsim.Montecarlo.trial rng ~plan:tiered_plan));
    ("fig9-as-analysis", fun () -> ignore (Stormsim.Systems.analyze_ases (Report.Figures.ases ctx)));
    ( "country-case-study",
      fun () ->
        ignore
          (Stormsim.Country.evaluate ~trials:5 sub
             (List.hd Stormsim.Country.paper_case_studies)) );
    ( "gic-exposure-longest-cable",
      fun () -> ignore (Infra.Exposure.of_cable ~storm ~network:sub long_cable) );
    ( "graph-connected-components",
      fun () -> ignore (Netgraph.Traversal.connected_components graph) );
    ( "mitigation-partitions",
      fun () -> ignore (Stormsim.Mitigation.predicted_partitions ~network:sub ()) );
    ( "leo-storm-assessment",
      fun () ->
        ignore (Leo.Storm_impact.assess ~dst_nt:(-1200.0) Leo.Constellation.starlink_phase1) );
    ( "grid-coupled-trial",
      fun () ->
        ignore
          (Stormsim.Powergrid.simulate ~trials:1 ~network:sub
             ~model:Stormsim.Failure_model.s1 ~dst_nt:(-1200.0) ()) );
    ( "traffic-routing",
      let demands = Stormsim.Traffic.gravity_demands () in
      fun () -> ignore (Stormsim.Traffic.route ~network:sub ~demands ()) );
    ( "recovery-plan",
      let dead = Array.init (Infra.Network.nb_cables sub) (fun i -> i mod 3 = 0) in
      fun () -> ignore (Stormsim.Recovery.plan ~network:sub ~dead ()) );
    ( "service-availability",
      fun () ->
        ignore
          (Stormsim.Resilience_test.evaluate ~network:sub
             (List.hd Stormsim.Resilience_test.sample_services)) );
    ( "event-sequence-30y",
      let seq_rng = Rng.create 5 in
      fun () ->
        ignore
          (Spaceweather.Event_generator.generate ~rng:seq_rng ~start:2021.0 ~stop:2051.0 ())
    );
    (* Service layer: request parsing, a cache-hit request end to end
       (routing + decode + LRU lookup, no trials), and a /metrics
       render. *)
    ( "serve.parse-request",
      let raw =
        let body = "{\"trials\":4,\"seed\":11}" in
        Printf.sprintf "POST /simulate HTTP/1.1\r\ncontent-length: %d\r\n\r\n%s"
          (String.length body) body
      in
      fun () ->
        ignore (Server.Http.parse_request (Server.Http.conn_of_string raw)) );
    ( "serve.request-cached",
      let routes = Server.Handlers.routes () in
      let req =
        {
          Server.Http.meth = Server.Http.POST;
          target = "/simulate";
          version = "HTTP/1.1";
          headers = [];
          body = "{\"trials\":4,\"seed\":11}";
        }
      in
      (* Warm the result cache so the kernel times the replay path. *)
      ignore (Server.Router.dispatch ~routes req);
      fun () -> ignore (Server.Router.dispatch ~routes req) );
    ( "serve.metrics-render",
      fun () -> ignore (Obs.Export.prometheus (Obs.Metrics.snapshot ())) );
    (* One self-monitoring sampler tick: snapshot the whole registry
       into the ring and evaluate a representative SLO rule — the cost
       the background sampler adds to a serving process each step. *)
    ( "obs.timeseries-sample",
      let ts = Obs.Timeseries.create ~retention:64 () in
      let alerts =
        match Obs.Alerts.parse_rule "server.request.ms:p99<50:5m" with
        | Ok r -> Obs.Alerts.create [ r ]
        | Error _ -> assert false
      in
      fun () ->
        Obs.Timeseries.sample ts;
        Obs.Alerts.evaluate alerts ts );
    (* End-to-end serving over loopback: 32 pipelined cache-hit requests
       against the live server domain per run — socket writes, the
       select loop, parse, route, LRU replay and the response path all
       included.  ns_per_run / 32 ≈ per-request service time. *)
    ( "serve.throughput",
      let target = { Server.Loadgen.host = "127.0.0.1"; port; path = "/simulate" } in
      let body = Some "{\"trials\":4,\"seed\":11}" in
      (* Warm the result cache so the kernel times the replay path. *)
      ignore (Server.Loadgen.run ~requests:1 ~body target);
      fun () -> ignore (Server.Loadgen.run ~pipeline:8 ~requests:32 ~body target) );
    (* Same replay workload against the 4-worker pool, driven by four
       pipelining connections — the multicore headline.  On a machine
       with >= 4 cores its per-request time should undercut
       serve.throughput's (128 requests here vs 32 above, so compare
       ns_per_run / requests, which the baseline gate does per-kernel). *)
    ( "serve.throughput-par",
      let target =
        { Server.Loadgen.host = "127.0.0.1"; port = port_par; path = "/simulate" }
      in
      let body = Some "{\"trials\":4,\"seed\":11}" in
      ignore (Server.Loadgen.run ~requests:1 ~body target);
      fun () ->
        ignore (Server.Loadgen.run ~connections:4 ~pipeline:8 ~requests:128 ~body target)
    );
  ]

(* (kernel, ns/run, estimator) rows for the JSON document. *)
let run_bechamel ks =
  let open Bechamel in
  let open Bechamel.Toolkit in
  print_endline "\n==============================================================";
  print_endline " Bechamel micro-benchmarks (one kernel per experiment)";
  print_endline "==============================================================";
  let instances = [ Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  List.concat_map
    (fun (name, f) ->
      let test = Test.make ~name (Staged.stage f) in
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      let rows = ref [] in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              Printf.printf "%-32s %12.0f ns/run\n" name est;
              rows := (name, est, "bechamel-ols") :: !rows
          | _ -> Printf.printf "%-32s (no estimate)\n" name)
        ols;
      flush stdout;
      List.rev !rows)
    ks

(* Cheap --fast timings: best of three runs per kernel against the
   monotonic clock.  Coarse, but enough to seed a perf trajectory (and to
   order kernels against each other) without paying for a Bechamel
   pass. *)
let run_single ks =
  List.map
    (fun (name, f) ->
      let once () =
        let t0 = Obs.Clock.monotonic () in
        f ();
        Int64.to_float (Int64.sub (Obs.Clock.monotonic ()) t0)
      in
      let dt = Float.min (once ()) (Float.min (once ()) (once ())) in
      (name, dt, "min-of-3"))
    ks

let write_json ~path ~mode ~kernel_rows ~metrics =
  let kernel_json =
    String.concat ","
      (List.map
         (fun (name, ns, estimator) ->
           Printf.sprintf "{\"name\":\"%s\",\"ns_per_run\":%s,\"estimator\":\"%s\"}"
             (Obs.Export.json_escape name) (Obs.Export.json_float ns) estimator)
         kernel_rows)
  in
  let doc =
    (* recommended_domain_count records the runner's parallel capacity so
       a reader (or check.sh) can tell whether this machine could even
       exercise the par kernels — a 1-core container's par4 number is a
       scheduling artifact, not a regression. *)
    Printf.sprintf
      "{\"schema\":\"solarstorm-bench/1\",\"mode\":\"%s\",\"recommended_domain_count\":%d,\"kernels\":[%s],\"metrics\":%s}\n"
      mode
      (Exec.available_jobs ())
      kernel_json
      (Obs.Export.json_of_snapshot metrics)
  in
  let oc = open_out path in
  output_string oc doc;
  close_out oc;
  Printf.printf "\nbench json written to %s\n" path

let () =
  let fast = ref false and json = ref None in
  let baseline = ref None and threshold = ref 20.0 and scale = ref 1.0 in
  let pos_float flag v k =
    match float_of_string_opt v with
    | Some f when f > 0.0 -> k f
    | _ -> Printf.eprintf "%s requires a positive number, got %s\n" flag v; exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--fast" :: rest -> fast := true; parse rest
    | "--json" :: path :: rest -> json := Some path; parse rest
    | "--json" :: [] -> prerr_endline "--json requires a FILE argument"; exit 2
    | "--baseline" :: path :: rest -> baseline := Some path; parse rest
    | "--baseline" :: [] -> prerr_endline "--baseline requires a FILE argument"; exit 2
    | "--threshold" :: pct :: rest ->
        pos_float "--threshold" pct (fun f -> threshold := f); parse rest
    | "--threshold" :: [] -> prerr_endline "--threshold requires a percentage"; exit 2
    | "--baseline-scale" :: v :: rest ->
        pos_float "--baseline-scale" v (fun f -> scale := f); parse rest
    | "--baseline-scale" :: [] -> prerr_endline "--baseline-scale requires a factor"; exit 2
    | arg :: _ -> Printf.eprintf "unknown argument %s\n" arg; exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !json <> None then Obs.enable ();
  let ctx = print_figures () in
  (* Two live servers: the single-worker reference and the 4-worker
     pool.  Service.stop is process-wide, so stop both only after every
     kernel has run. *)
  let port, stop_server = boot_server ~workers:1 () in
  let port_par, stop_server_par = boot_server ~workers:4 () in
  let ks = kernels ctx ~port ~port_par in
  let kernel_rows =
    if not !fast then run_bechamel ks
    else if !json <> None || !baseline <> None then run_single ks
    else []
  in
  stop_server ();
  stop_server_par ();
  (match !json with
  | None -> ()
  | Some path ->
      Obs.Resource.sample ();
      write_json ~path
        ~mode:(if !fast then "fast" else "full")
        ~kernel_rows ~metrics:(Obs.Metrics.snapshot ()));
  match !baseline with
  | None -> ()
  | Some path ->
      let code =
        Baseline.compare_run ~current:kernel_rows ~path ~threshold_pct:!threshold
          ~scale:!scale
      in
      if code <> 0 then exit code
