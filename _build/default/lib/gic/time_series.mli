(** Time-resolved storm profiles.

    Geomagnetic storms have a characteristic shape: a sudden commencement
    when the CME shock arrives, a main phase of hours during which Dst
    collapses, and an exponential recovery over one to several days.  The
    shutdown planner uses the profile to size the protection window. *)

type profile = {
  dst_min : float;  (** depth of the main phase, nT (≤ 0) *)
  onset_h : float;  (** hours from shock arrival to the start of the drop *)
  main_phase_h : float;  (** drop duration (2–12 h; faster when deep) *)
  recovery_tau_h : float;  (** e-folding recovery time *)
}

val default : dst_min:float -> profile
(** Empirical shape: deeper storms develop faster and recover slower
    (main phase 8 h at −100 nT down to ~4 h at Carrington depth; recovery
    tau 15–40 h).  @raise Invalid_argument if [dst_min > 0.]. *)

val dst_at : profile -> t_h:float -> float
(** Dst at [t_h] hours after shock arrival (0 before onset). *)

val storm_at : ?period_s:float -> profile -> t_h:float -> Disturbance.storm
(** Instantaneous disturbance for the GIC pipeline.  Quiet times map to a
    negligible −1 nT storm. *)

val duration_below : profile -> dst_threshold:float -> float
(** Hours during which Dst ≤ [dst_threshold] (e.g. how long the storm
    stays in the "severe" band).  0 when never reached. *)

val peak_time_h : profile -> float
(** Hours from shock arrival to the Dst minimum. *)

val sample : profile -> step_h:float -> horizon_h:float -> (float * float) list
(** [(t, Dst)] series for plotting.  @raise Invalid_argument on
    non-positive step/horizon. *)
