type layer = { thickness_km : float; resistivity_ohm_m : float }

type profile = { name : string; layers : layer list }

let mu0 = 4.0e-7 *. Float.pi

let make_profile ~name layers =
  if layers = [] then invalid_arg "Conductivity.make_profile: no layers";
  List.iter
    (fun l ->
      if l.resistivity_ohm_m <= 0.0 then
        invalid_arg "Conductivity.make_profile: non-positive resistivity";
      if l.thickness_km <= 0.0 then
        invalid_arg "Conductivity.make_profile: non-positive thickness")
    layers;
  { name; layers }

let shield =
  make_profile ~name:"shield"
    [ { thickness_km = 15.0; resistivity_ohm_m = 20000.0 };
      { thickness_km = 10.0; resistivity_ohm_m = 1000.0 };
      { thickness_km = 125.0; resistivity_ohm_m = 500.0 };
      { thickness_km = 200.0; resistivity_ohm_m = 100.0 };
      { thickness_km = 1.0; resistivity_ohm_m = 3.0 } ]

let plains =
  make_profile ~name:"plains"
    [ { thickness_km = 2.0; resistivity_ohm_m = 30.0 };
      { thickness_km = 20.0; resistivity_ohm_m = 300.0 };
      { thickness_km = 150.0; resistivity_ohm_m = 100.0 };
      { thickness_km = 1.0; resistivity_ohm_m = 3.0 } ]

let coastal =
  make_profile ~name:"coastal"
    [ { thickness_km = 1.0; resistivity_ohm_m = 5.0 };
      { thickness_km = 20.0; resistivity_ohm_m = 100.0 };
      { thickness_km = 150.0; resistivity_ohm_m = 50.0 };
      { thickness_km = 1.0; resistivity_ohm_m = 3.0 } ]

let ocean =
  make_profile ~name:"ocean"
    [ { thickness_km = 4.0; resistivity_ohm_m = 0.3 };
      { thickness_km = 8.0; resistivity_ohm_m = 1000.0 };
      { thickness_km = 150.0; resistivity_ohm_m = 100.0 };
      { thickness_km = 1.0; resistivity_ohm_m = 3.0 } ]

let profile_for c =
  if not (Geo.Region.on_land c) then ocean
  else if Geo.Coord.abs_lat c > 55.0 then shield
  else if Geo.Coord.abs_lat c < 20.0 then coastal
  else plains

(* 1-D magnetotelluric recursion.  For the bottom half-space:
     Z_N = i w mu0 / k_N,  k_n = sqrt (i w mu0 / rho_n).
   Moving up through a layer of thickness d:
     r_n   = (1 - k_n Z_{n+1} / (i w mu0)) / (1 + k_n Z_{n+1} / (i w mu0))
     Z_n   = i w mu0 (1 - r_n e^{-2 k_n d}) / (k_n (1 + r_n e^{-2 k_n d})) *)
let surface_impedance p ~angular_freq =
  if angular_freq <= 0.0 then invalid_arg "Conductivity.surface_impedance: w <= 0";
  let open Complex in
  let iwu = { re = 0.0; im = angular_freq *. mu0 } in
  let k_of rho = sqrt (div iwu { re = rho; im = 0.0 }) in
  let rec up = function
    | [] -> invalid_arg "Conductivity.surface_impedance: no layers"
    | [ bottom ] -> div iwu (k_of bottom.resistivity_ohm_m)
    | l :: rest ->
        let z_below = up rest in
        let k = k_of l.resistivity_ohm_m in
        let kz = div (mul k z_below) iwu in
        let r = div (Complex.sub one kz) (add one kz) in
        let d_m = l.thickness_km *. 1000.0 in
        let e = exp (mul { re = -2.0 *. d_m; im = 0.0 } k) in
        let re_term = mul r e in
        div (mul iwu (Complex.sub one re_term)) (mul k (add one re_term))
  in
  up p.layers

let impedance_magnitude p ~period_s =
  if period_s <= 0.0 then invalid_arg "Conductivity.impedance_magnitude: period <= 0";
  Complex.norm (surface_impedance p ~angular_freq:(2.0 *. Float.pi /. period_s))

(* Surface-layer conductance: the quantity the New Zealand study quotes
   (1-500 S on land vs 100-24,000 S offshore) integrates the top of the
   section — seawater and upper crust — not the deep mantle, so only the
   first 20 km of the stack are counted. *)
let surface_depth_km = 20.0

let conductance_s p =
  let rec go remaining = function
    | [] | [ _ ] -> 0.0 (* the half-space itself is excluded *)
    | l :: rest ->
        if remaining <= 0.0 then 0.0
        else
          let d = Float.min remaining l.thickness_km in
          (d *. 1000.0 /. l.resistivity_ohm_m) +. go (remaining -. d) rest
  in
  go surface_depth_km p.layers
