(** Geoelectric field from the plane-wave method.

    [E = Z(ω) · H] with [H = ΔB / μ0]: the standard engineering
    approximation for GIC studies (Pulkkinen et al. 2012).  Combines the
    disturbance model (field amplitude by location and storm) with the
    layered-earth impedance (by terrain). *)

val amplitude_v_per_km : Disturbance.storm -> Geo.Coord.t -> float
(** Geoelectric-field amplitude at a location for a storm, in V/km, using
    {!Conductivity.profile_for} for the local ground. *)

val amplitude_with_profile :
  Disturbance.storm -> Conductivity.profile -> Geo.Coord.t -> float
(** Same with an explicit conductivity profile. *)

val benchmark_100yr_v_per_km : float
(** Pulkkinen et al. 2012 reference: ≈ 5 V/km at 60° geomagnetic latitude
    for the 100-year scenario on resistive ground; used to sanity-check the
    model in tests. *)

val segment_voltage :
  Disturbance.storm -> Geo.Coord.t -> Geo.Coord.t -> float
(** Expected magnitude of the induced EMF along the great-circle segment
    between two points, volts.  Uses the mid-point field amplitude, the
    segment length, and the mean projection factor [2/π] for a uniformly
    random field direction (the paper notes CME-driven fields have no
    directional preference, §3.1(iv)). *)

val projection_factor_mean : float
(** E[|cos θ|] for uniformly random θ: [2/π]. *)
