let amplitude_with_profile storm profile c =
  let db_t = Disturbance.db_at storm c *. 1e-9 (* tesla *) in
  let h = db_t /. Conductivity.mu0 in
  let z =
    Conductivity.impedance_magnitude profile ~period_s:storm.Disturbance.period_s
  in
  (* E in V/m -> V/km *)
  z *. h *. 1000.0

let amplitude_v_per_km storm c =
  amplitude_with_profile storm (Conductivity.profile_for c) c

let benchmark_100yr_v_per_km = 5.0

let projection_factor_mean = 2.0 /. Float.pi

let segment_voltage storm a b =
  let mid = Geo.Geodesic.midpoint a b in
  let e = amplitude_v_per_km storm mid in
  let len = Geo.Distance.haversine_km a b in
  e *. len *. projection_factor_mean
