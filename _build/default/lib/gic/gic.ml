(** Geomagnetically-induced-current substrate (§3 of the paper).

    Pipeline: a storm (Dst) expands the auroral disturbance equatorward
    ({!Disturbance}); the local field variation drives a geoelectric field
    through the layered-earth impedance ({!Conductivity}, {!Efield}); the
    field integrated between a cable's grounding points yields the
    quasi-DC current through its power-feeding line ({!Induced}). *)

module Conductivity = Conductivity
module Disturbance = Disturbance
module Efield = Efield
module Induced = Induced
module Time_series = Time_series
