(** GIC flowing in a long grounded conductor (§3.2).

    The power-feeding line of a long-haul cable is grounded at the landing
    stations and at intermediate earthing points (branching units).  GIC
    enters and exits at those grounds — even when the cable is powered
    off — and its magnitude is set by the induced EMF between consecutive
    grounds divided by the loop resistance (power-feeding line
    ≈ 0.8 Ω/km plus the two earthing resistances). *)

type section = {
  start_km : float;  (** chainage of the upstream ground *)
  end_km : float;  (** chainage of the downstream ground *)
  emf_v : float;  (** induced EMF magnitude along the section, volts *)
  resistance_ohm : float;  (** total loop resistance of the section *)
  gic_a : float;  (** resulting quasi-DC current, amperes *)
}

type result = {
  sections : section list;
  peak_gic_a : float;  (** maximum |GIC| over sections; 0 for no section *)
  total_emf_v : float;
}

val default_line_resistance_ohm_km : float
(** 0.8 Ω/km, the figure quoted in §3.2.1. *)

val default_ground_resistance_ohm : float
(** Earthing resistance at each ground (2 Ω). *)

val compute :
  ?line_resistance_ohm_km:float ->
  ?ground_resistance_ohm:float ->
  ?sample_km:float ->
  storm:Disturbance.storm ->
  path:Geo.Coord.t list ->
  ground_chainages_km:float list ->
  unit ->
  result
(** [compute ~storm ~path ~ground_chainages_km ()] integrates the
    geoelectric field along each grounded section of the path.  The path's
    two endpoints are always treated as grounds; interior chainages are
    sorted and deduplicated.  [sample_km] is the integration step
    (default 100 km).
    @raise Invalid_argument on an empty path or non-positive resistances. *)

val repeater_stress_ratio : result -> operating_current_a:float -> float
(** Peak GIC divided by the repeater operating current: the "~100×
    operational range" figure of §3.2.1 for Carrington-scale events on
    transoceanic cables. *)
