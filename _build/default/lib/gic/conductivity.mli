(** Layered-earth conductivity profiles and plane-wave surface impedance.

    The geoelectric field driving GIC depends on the resistivity of the
    crust and upper mantle (§3.1 of the paper).  We model the ground as a
    stack of uniform layers over a half-space and compute the complex
    surface impedance [Z(ω)] with the standard 1-D magnetotelluric
    recursion.  Seawater is highly conductive, which {e increases} the
    surface-layer conductance and the achievable GIC (the paper's New
    Zealand example: 1–500 S on land vs 100–24,000 S in the ocean). *)

type layer = {
  thickness_km : float;  (** layer thickness; ignored for the half-space *)
  resistivity_ohm_m : float;
}

type profile = {
  name : string;
  layers : layer list;  (** top first; last entry is the half-space *)
}

val make_profile : name:string -> layer list -> profile
(** @raise Invalid_argument on an empty layer list or non-positive
    resistivity/thickness. *)

val shield : profile
(** Resistive Precambrian shield (e.g. Canadian/Fennoscandian shield):
    worst case on land, large E fields. *)

val plains : profile
(** Sedimentary continental interior: moderately conductive. *)

val coastal : profile
(** Conductive coastal margin. *)

val ocean : profile
(** Deep ocean: 4 km of seawater (0.3 Ω·m) over oceanic crust. *)

val profile_for : Geo.Coord.t -> profile
(** Heuristic profile assignment: ocean off-land, shield above 55°
    absolute latitude on land, plains otherwise. *)

val surface_impedance : profile -> angular_freq:float -> Complex.t
(** [surface_impedance p ~angular_freq] is [Z(ω)] in Ω (SI field units:
    E = Z·H).  @raise Invalid_argument if [angular_freq <= 0.]. *)

val impedance_magnitude : profile -> period_s:float -> float
(** [|Z|] at the given period, Ω. *)

val conductance_s : profile -> float
(** Integrated conductance of the layer stack above the half-space,
    siemens — the quantity quoted in the New Zealand study. *)

val mu0 : float
(** Vacuum permeability, H/m. *)
