type profile = {
  dst_min : float;
  onset_h : float;
  main_phase_h : float;
  recovery_tau_h : float;
}

let default ~dst_min =
  if dst_min > 0.0 then invalid_arg "Time_series.default: dst_min must be <= 0";
  let depth = Float.abs dst_min in
  {
    dst_min;
    onset_h = 1.0;
    (* Deep storms develop faster (Carrington's main phase was hours). *)
    main_phase_h = Float.max 3.0 (9.0 -. (depth /. 300.0));
    recovery_tau_h = Float.min 40.0 (15.0 +. (depth /. 60.0));
  }

let peak_time_h p = p.onset_h +. p.main_phase_h

let dst_at p ~t_h =
  if t_h <= p.onset_h then 0.0
  else if t_h <= peak_time_h p then
    p.dst_min *. ((t_h -. p.onset_h) /. p.main_phase_h)
  else p.dst_min *. exp (-.(t_h -. peak_time_h p) /. p.recovery_tau_h)

let storm_at ?period_s p ~t_h =
  let dst = Float.min (-1.0) (dst_at p ~t_h) in
  Disturbance.storm_of_dst ?period_s dst

let duration_below p ~dst_threshold =
  if dst_threshold >= 0.0 || p.dst_min > dst_threshold then 0.0
  else begin
    (* Crossing during the linear drop... *)
    let frac = dst_threshold /. p.dst_min in
    let t_enter = p.onset_h +. (frac *. p.main_phase_h) in
    (* ... and during the exponential recovery. *)
    let t_exit = peak_time_h p +. (p.recovery_tau_h *. log (p.dst_min /. dst_threshold)) in
    Float.max 0.0 (t_exit -. t_enter)
  end

let sample p ~step_h ~horizon_h =
  if step_h <= 0.0 || horizon_h <= 0.0 then
    invalid_arg "Time_series.sample: non-positive step or horizon";
  let n = int_of_float (Float.ceil (horizon_h /. step_h)) in
  List.init (n + 1) (fun i ->
      let t = float_of_int i *. step_h in
      (t, dst_at p ~t_h:t))
