type storm = { dst_nt : float; period_s : float }

let storm_of_dst ?(period_s = 120.0) dst =
  if dst > 0.0 then invalid_arg "Disturbance.storm_of_dst: Dst must be <= 0";
  if period_s <= 0.0 then invalid_arg "Disturbance.storm_of_dst: period <= 0";
  { dst_nt = dst; period_s }

let storm_of_cme cme = storm_of_dst (Spaceweather.Cme.expected_dst cme)

(* Two-point calibration in log10 |Dst|: (100 nT, 62 deg) for intense
   storms and (1200 nT, 25 deg) for Carrington-class, linear between,
   clamped to [15, 70].  Reproduces ~40 deg for the 1989 storm. *)
let auroral_boundary_deg s =
  let x = log10 (Float.max 1.0 (Float.abs s.dst_nt)) in
  let x0 = 2.0 and y0 = 62.0 in
  let slope = (25.0 -. 62.0) /. (log10 1200.0 -. 2.0) in
  Float.max 15.0 (Float.min 70.0 (y0 +. (slope *. (x -. x0))))

let peak_db_nt s =
  (* Auroral-zone deviations run ~2.5-3x |Dst| in extreme events (1989:
     ~1700 nT measured in Scandinavia for Dst -589). *)
  2.8 *. Float.abs s.dst_nt

let sigmoid x = 1.0 /. (1.0 +. exp (-.x))

let equatorial_floor = 0.03
let transition_width_deg = 5.0

let latitude_factor s ~geomag_lat =
  let l = Float.abs geomag_lat in
  let boundary = auroral_boundary_deg s in
  let main = sigmoid ((l -. boundary) /. transition_width_deg) in
  (* Equatorial electrojet bump: measurable but small GIC at the magnetic
     equator (Carter et al. 2016). *)
  let electrojet = if l < 3.0 then 0.04 else 0.0 in
  Float.min 1.0 (equatorial_floor +. electrojet +. ((1.0 -. equatorial_floor) *. main))

let db_at s c =
  let glat = Geo.Geomagnetic.dipole_latitude c in
  peak_db_nt s *. latitude_factor s ~geomag_lat:glat

let dbdt_at s c = 2.0 *. Float.pi /. s.period_s *. db_at s c
