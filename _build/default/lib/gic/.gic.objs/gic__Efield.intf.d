lib/gic/efield.mli: Conductivity Disturbance Geo
