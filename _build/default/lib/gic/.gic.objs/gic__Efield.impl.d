lib/gic/efield.ml: Conductivity Disturbance Float Geo
