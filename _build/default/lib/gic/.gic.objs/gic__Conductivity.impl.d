lib/gic/conductivity.ml: Complex Float Geo List
