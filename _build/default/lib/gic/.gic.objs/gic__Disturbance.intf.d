lib/gic/disturbance.mli: Geo Spaceweather
