lib/gic/induced.mli: Disturbance Geo
