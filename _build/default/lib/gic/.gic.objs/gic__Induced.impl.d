lib/gic/induced.ml: Efield Float Geo List
