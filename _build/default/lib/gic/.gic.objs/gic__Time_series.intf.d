lib/gic/time_series.mli: Disturbance
