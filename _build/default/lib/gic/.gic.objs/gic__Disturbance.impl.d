lib/gic/disturbance.ml: Float Geo Spaceweather
