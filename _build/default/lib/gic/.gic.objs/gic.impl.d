lib/gic/gic.ml: Conductivity Disturbance Efield Induced Time_series
