lib/gic/time_series.ml: Disturbance Float List
