lib/gic/conductivity.mli: Complex Geo
