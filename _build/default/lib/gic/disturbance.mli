(** Geomagnetic disturbance amplitude as a function of storm strength and
    geomagnetic latitude.

    Captures the three latitude facts the paper's failure models encode
    (§3.1): (i) higher latitudes see far stronger field variations; (ii)
    the disturbed region expands equatorward as storms strengthen (the
    1989 storm's fields dropped an order of magnitude below 40°; the
    Carrington event reached ≈ 20°); and (iii) small equatorial GIC exists
    but is much weaker (electrojet effects). *)

type storm = {
  dst_nt : float;  (** minimum Dst, negative nT *)
  period_s : float;  (** characteristic variation period (default 120 s) *)
}

val storm_of_dst : ?period_s:float -> float -> storm
(** @raise Invalid_argument if [dst > 0.] or [period_s <= 0.]. *)

val storm_of_cme : Spaceweather.Cme.t -> storm

val auroral_boundary_deg : storm -> float
(** Equatorward edge (geomagnetic degrees) of the strongly disturbed
    region.  ≈ 62° for an intense (−100 nT) storm, ≈ 40° for 1989-class,
    ≈ 25° for Carrington-class.  Clamped to [[15, 70]]. *)

val peak_db_nt : storm -> float
(** Horizontal field deviation amplitude in the auroral zone, nT. *)

val latitude_factor : storm -> geomag_lat:float -> float
(** Relative disturbance amplitude in [[floor, 1]] at a geomagnetic
    latitude: a sigmoid across the auroral boundary with an equatorial
    floor of 0.03 plus a small electrojet bump within 3° of the magnetic
    equator. *)

val db_at : storm -> Geo.Coord.t -> float
(** Field deviation amplitude (nT) at a geographic location, combining
    {!peak_db_nt}, {!latitude_factor} and the dipole-latitude mapping. *)

val dbdt_at : storm -> Geo.Coord.t -> float
(** Sinusoidal-equivalent time derivative, nT/s: [2π/period × db_at]. *)
