type section = {
  start_km : float;
  end_km : float;
  emf_v : float;
  resistance_ohm : float;
  gic_a : float;
}

type result = { sections : section list; peak_gic_a : float; total_emf_v : float }

let default_line_resistance_ohm_km = 0.8
let default_ground_resistance_ohm = 2.0

let section_emf ~storm ~path ~sample_km ~start_km ~end_km =
  (* Integrate |E| * projection over [start, end] in steps of sample_km
     using mid-point field amplitudes. *)
  let rec go acc d =
    if d >= end_km then acc
    else
      let d' = Float.min end_km (d +. sample_km) in
      let mid = Geo.Geodesic.point_at_km path ((d +. d') /. 2.0) in
      let e = Efield.amplitude_v_per_km storm mid in
      go (acc +. (e *. (d' -. d) *. Efield.projection_factor_mean)) d'
  in
  go 0.0 start_km

let compute ?(line_resistance_ohm_km = default_line_resistance_ohm_km)
    ?(ground_resistance_ohm = default_ground_resistance_ohm) ?(sample_km = 100.0)
    ~storm ~path ~ground_chainages_km () =
  if path = [] then invalid_arg "Induced.compute: empty path";
  if line_resistance_ohm_km <= 0.0 || ground_resistance_ohm < 0.0 || sample_km <= 0.0
  then invalid_arg "Induced.compute: non-positive parameter";
  let total = Geo.Distance.path_length_km path in
  let grounds =
    List.sort_uniq Float.compare
      (0.0 :: total
      :: List.filter (fun d -> d > 0.0 && d < total) ground_chainages_km)
  in
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | [ _ ] | [] -> []
  in
  let sections =
    List.filter_map
      (fun (a, b) ->
        let len = b -. a in
        if len <= 1e-6 then None
        else
          let emf = section_emf ~storm ~path ~sample_km ~start_km:a ~end_km:b in
          let r = (line_resistance_ohm_km *. len) +. (2.0 *. ground_resistance_ohm) in
          Some { start_km = a; end_km = b; emf_v = emf; resistance_ohm = r; gic_a = emf /. r })
      (pairs grounds)
  in
  let peak = List.fold_left (fun m s -> Float.max m (Float.abs s.gic_a)) 0.0 sections in
  let total_emf = List.fold_left (fun m s -> m +. s.emf_v) 0.0 sections in
  { sections; peak_gic_a = peak; total_emf_v = total_emf }

let repeater_stress_ratio r ~operating_current_a =
  if operating_current_a <= 0.0 then
    invalid_arg "Induced.repeater_stress_ratio: non-positive operating current";
  r.peak_gic_a /. operating_current_a
