type kind = Submarine | Land_fiber

type t = {
  id : int;
  name : string;
  kind : kind;
  landings : int list;
  length_km : float;
  max_abs_lat : float;
}

let kind_to_string = function Submarine -> "submarine" | Land_fiber -> "land"

let chain_length landings =
  Geo.Distance.path_length_km (List.map snd landings)

let make ~id ~name ~kind ~landings ?length_km () =
  if List.length landings < 2 then invalid_arg "Cable.make: fewer than 2 landings";
  let ids = List.map fst landings in
  if List.length (List.sort_uniq Int.compare ids) <> List.length ids then
    invalid_arg "Cable.make: duplicate landing node";
  let gc = chain_length landings in
  let length_km =
    match length_km with
    | None -> gc
    | Some l ->
        if l <= 0.0 then invalid_arg "Cable.make: non-positive length";
        Float.max l gc
  in
  let max_abs_lat =
    List.fold_left (fun m (_, c) -> Float.max m (Geo.Coord.abs_lat c)) 0.0 landings
  in
  { id; name; kind; landings = ids; length_km; max_abs_lat }

let repeater_count c ~spacing_km =
  Repeater.count_for_length ~spacing_km ~length_km:c.length_km

let needs_repeaters c ~spacing_km = repeater_count c ~spacing_km > 0

let hop_count c = List.length c.landings - 1

let risk_tier c = Geo.Latband.tier_of_abs_lat c.max_abs_lat

let segment_lengths landings ~length_km =
  let coords = List.map snd landings in
  let rec hops = function
    | a :: (b :: _ as rest) -> Geo.Distance.haversine_km a b :: hops rest
    | [ _ ] | [] -> []
  in
  let hop_lengths = hops coords in
  let total_gc = List.fold_left ( +. ) 0.0 hop_lengths in
  if total_gc <= 0.0 then List.map (fun _ -> 0.0) hop_lengths
  else List.map (fun h -> h /. total_gc *. length_km) hop_lengths
