(** Long-haul cables: the failure unit of the paper's analysis.

    A cable interconnects an ordered chain of landing points (a submarine
    trunk with branches is flattened to the chain of its landings, which
    preserves the property the analysis needs: one repeater failure kills
    connectivity between {e all} of the cable's landings).  Length is the
    stated route length, at least the sum of great-circle hops. *)

type kind = Submarine | Land_fiber

type t = {
  id : int;
  name : string;
  kind : kind;
  landings : int list;  (** node ids, chain order; ≥ 2, distinct *)
  length_km : float;
  max_abs_lat : float;  (** highest |latitude| over the landings *)
}

val kind_to_string : kind -> string

val make :
  id:int ->
  name:string ->
  kind:kind ->
  landings:(int * Geo.Coord.t) list ->
  ?length_km:float ->
  unit ->
  t
(** Builds a cable from its landing chain.  When [length_km] is omitted it
    defaults to the great-circle chain length; an explicit value below the
    chain length is raised to it times 1.0 (stated lengths include slack).
    @raise Invalid_argument with fewer than 2 landings or duplicate node
    ids. *)

val repeater_count : t -> spacing_km:float -> int
(** Repeaters needed at a given spacing (uniform along the route). *)

val needs_repeaters : t -> spacing_km:float -> bool

val hop_count : t -> int
(** Number of consecutive landing pairs ([length of landings - 1]). *)

val risk_tier : t -> Geo.Latband.tier
(** The paper's tier from the highest-|latitude| endpoint (§4.3.3). *)

val segment_lengths : (int * Geo.Coord.t) list -> length_km:float -> float list
(** Distributes a stated total length over the landing chain's hops,
    proportionally to great-circle hop lengths.  Used when repeaters must
    be placed per-hop. *)
