(** Physics-based GIC exposure of a concrete cable in a network.

    Bridges the infrastructure model to the [Gic] library: reconstructs
    the cable's great-circle route from its landing chain, places the
    grounding points, and computes the peak quasi-DC current through the
    power-feeding line for a given storm.  This is the model extension
    that replaces the paper's purely probabilistic repeater-failure knob
    in the physics ablation (DESIGN.md §3). *)

type t = {
  cable_id : int;
  peak_gic_a : float;
  stress_ratio : float;  (** peak GIC / 1 A operating current *)
  worst_section_km : float * float;  (** chainage range of the worst section *)
}

val of_cable :
  ?interval_km:float ->
  storm:Gic.Disturbance.storm ->
  network:Network.t ->
  Cable.t ->
  t
(** Exposure of one cable under a storm. *)

val failure_probability : ?scale_a:float -> t -> float
(** Maps a stress ratio to a per-repeater failure probability through a
    saturating exponential: [1 - exp (-peak_gic / scale_a)].  [scale_a]
    defaults to 30 A (repeaters survive small GIC; a 100 A Carrington-class
    surge is near-certain destruction). *)

val network_exposures :
  ?interval_km:float ->
  storm:Gic.Disturbance.storm ->
  Network.t ->
  t array
(** Exposure of every cable, indexed by cable id. *)
