(** Grounding (sea-earth) points along a cable (§3.2.2).

    GIC enters and exits the power-feeding line where the conductor is
    grounded.  Short unrepeatered cables (< 50 km) need no ground; longer
    cables are grounded at the two landing stations and at intermediate
    points — branching units — every few hundred to a few thousand
    kilometres (Equiano: 9 branching units over ~12,000 km). *)

val needs_grounding : length_km:float -> bool
(** Cables under 50 km without repeaters are not grounded. *)

val default_interval_km : float
(** Nominal distance between intermediate grounds (1,400 km, Equiano-like). *)

val chainages : ?interval_km:float -> length_km:float -> unit -> float list
(** Chainages (km from cable start) of every ground, endpoints included.
    [[]] when the cable {!needs_grounding} not.  @raise Invalid_argument if
    [interval_km <= 0.] or [length_km < 0.]. *)

val intermediate_count : ?interval_km:float -> length_km:float -> unit -> int
(** Number of intermediate (non-endpoint) grounds. *)
