type spec = {
  spacing_km : float;
  operating_current_a : float;
  damage_current_a : float;
  lifetime_years : float;
}

let default ~spacing_km =
  if spacing_km <= 0.0 then invalid_arg "Repeater.default: spacing <= 0";
  {
    spacing_km;
    operating_current_a = 1.0;
    (* Surge tolerance of the zener-protected feed path: roughly an order
       of magnitude above nominal. *)
    damage_current_a = 10.0;
    lifetime_years = 25.0;
  }

let paper_spacings_km = [ 50.0; 100.0; 150.0 ]

let count_for_length ~spacing_km ~length_km =
  if spacing_km <= 0.0 then invalid_arg "Repeater.count_for_length: spacing <= 0";
  if length_km < 0.0 then invalid_arg "Repeater.count_for_length: negative length";
  if length_km <= spacing_km then 0
  else
    (* Repeaters at spacing, 2*spacing, ... strictly inside the cable. *)
    let n = int_of_float (Float.ceil (length_km /. spacing_km)) - 1 in
    Int.max 0 n

let positions_for_path ~spacing_km path =
  Geo.Geodesic.positions_along path ~spacing_km

let damaged_by spec ~gic_a = Float.abs gic_a > spec.damage_current_a
