let needs_grounding ~length_km = length_km >= 50.0

let default_interval_km = 1400.0

let chainages ?(interval_km = default_interval_km) ~length_km () =
  if interval_km <= 0.0 then invalid_arg "Grounding.chainages: interval <= 0";
  if length_km < 0.0 then invalid_arg "Grounding.chainages: negative length";
  if not (needs_grounding ~length_km) then []
  else
    let rec mids acc k =
      let d = float_of_int k *. interval_km in
      if d >= length_km then List.rev acc else mids (d :: acc) (k + 1)
    in
    0.0 :: mids [] 1 @ [ length_km ]

let intermediate_count ?interval_km ~length_km () =
  match chainages ?interval_km ~length_km () with
  | [] -> 0
  | l -> Int.max 0 (List.length l - 2)
