type budget = {
  line_voltage_v : float;
  repeater_voltage_v : float;
  margin_v : float;
  total_v : float;
  repeaters : int;
}

let feed_current_a = 1.1
let line_resistance_ohm_km = 0.8
let repeater_drop_v = 18.0

let budget_for ?(spacing_km = 70.0) ~length_km () =
  if length_km <= 0.0 then invalid_arg "Power_feed.budget_for: length <= 0";
  let repeaters = Repeater.count_for_length ~spacing_km ~length_km in
  let line_voltage_v = feed_current_a *. line_resistance_ohm_km *. length_km in
  let repeater_voltage_v = float_of_int repeaters *. repeater_drop_v in
  (* Earth-potential difference between the two shores plus spare-repeater
     allowance: a few percent of the working budget. *)
  let margin_v = 0.05 *. (line_voltage_v +. repeater_voltage_v) in
  {
    line_voltage_v;
    repeater_voltage_v;
    margin_v;
    total_v = line_voltage_v +. repeater_voltage_v +. margin_v;
    repeaters;
  }

let dual_end_feasible ?(max_pfe_voltage_v = 15000.0) b =
  b.total_v <= 2.0 *. max_pfe_voltage_v

let max_span_km ?(max_pfe_voltage_v = 15000.0) ?(spacing_km = 70.0) () =
  (* Bisection over length: the budget is monotone in length. *)
  let feasible l = dual_end_feasible ~max_pfe_voltage_v (budget_for ~spacing_km ~length_km:l ()) in
  let rec bisect lo hi n =
    if n = 0 then lo
    else
      let mid = (lo +. hi) /. 2.0 in
      if feasible mid then bisect mid hi (n - 1) else bisect lo mid (n - 1)
  in
  if not (feasible 100.0) then 0.0 else bisect 100.0 60000.0 60
