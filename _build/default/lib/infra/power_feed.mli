(** Power-feeding equipment (PFE) budget for a repeatered cable (§3.2.1).

    PFEs at the landing stations drive a regulated ≈ 1.1 A through the
    power-feeding line (≈ 0.8 Ω/km).  The paper's anchor: a 9,000 km,
    96-wave cable needs ≈ 11 kV and ≈ 130 repeaters. *)

type budget = {
  line_voltage_v : float;  (** IR drop along the conductor *)
  repeater_voltage_v : float;  (** series drop across the repeaters *)
  margin_v : float;  (** earth-potential + spares margin *)
  total_v : float;
  repeaters : int;
}

val feed_current_a : float
(** 1.1 A regulated feed current. *)

val line_resistance_ohm_km : float
(** 0.8 Ω/km. *)

val repeater_drop_v : float
(** Voltage across one repeater at the feed current (≈ 18 V). *)

val budget_for : ?spacing_km:float -> length_km:float -> unit -> budget
(** Voltage budget for a cable.  Default spacing 70 km (transoceanic
    practice, giving ≈ 128 repeaters for 9,000 km).
    @raise Invalid_argument on non-positive length or spacing. *)

val dual_end_feasible : ?max_pfe_voltage_v:float -> budget -> bool
(** Whether two PFEs (one per end, each limited to [max_pfe_voltage_v],
    default 15 kV) can power the cable. *)

val max_span_km : ?max_pfe_voltage_v:float -> ?spacing_km:float -> unit -> float
(** Longest cable the dual-end feed can power under the model, km. *)
