lib/infra/cable.mli: Geo
