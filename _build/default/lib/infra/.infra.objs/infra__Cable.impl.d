lib/infra/cable.ml: Float Geo Int List Repeater
