lib/infra/exposure.mli: Cable Gic Network
