lib/infra/power_feed.ml: Repeater
