lib/infra/network.ml: Array Cable Format Geo Hashtbl Int List Netgraph Printf
