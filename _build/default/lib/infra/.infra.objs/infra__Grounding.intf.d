lib/infra/grounding.mli:
