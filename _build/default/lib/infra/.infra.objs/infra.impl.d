lib/infra/infra.ml: Cable Exposure Grounding Network Power_feed Repeater
