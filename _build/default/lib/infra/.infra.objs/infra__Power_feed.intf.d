lib/infra/power_feed.mli:
