lib/infra/grounding.ml: Int List
