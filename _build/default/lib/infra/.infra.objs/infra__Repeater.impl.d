lib/infra/repeater.ml: Float Geo Int
