lib/infra/exposure.ml: Array Cable Float Geo Gic Grounding List Network
