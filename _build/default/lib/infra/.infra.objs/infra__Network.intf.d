lib/infra/network.mli: Cable Format Geo Netgraph
