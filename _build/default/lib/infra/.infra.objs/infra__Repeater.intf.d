lib/infra/repeater.mli: Geo
