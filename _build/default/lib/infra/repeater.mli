(** Optical repeaters on long-haul cables (§3.2.1).

    Repeaters are fed in series at ≈ 1 A over the power-feeding conductor
    and spaced 50–150 km apart in practical deployments.  GIC during a
    superstorm can reach ~100× the operating current, which is the damage
    mechanism the paper's failure models abstract. *)

type spec = {
  spacing_km : float;  (** inter-repeater distance *)
  operating_current_a : float;  (** nominal feed current, ≈ 1 A *)
  damage_current_a : float;  (** quasi-DC current that destroys the unit *)
  lifetime_years : float;  (** design lifetime (25 y, §3.2.2) *)
}

val default : spacing_km:float -> spec
(** Spec with the paper's nominal electrical figures at the given spacing.
    @raise Invalid_argument if [spacing_km <= 0.]. *)

val paper_spacings_km : float list
(** The three spacings swept in Figs 6–8: [[50.; 100.; 150.]]. *)

val count_for_length : spacing_km:float -> length_km:float -> int
(** Number of repeaters a cable of the given length needs: one per full
    [spacing_km] of length, none for cables at or below one spacing
    (matching the paper: 82/441 submarine cables need none at 150 km).
    @raise Invalid_argument on non-positive spacing or negative length. *)

val positions_for_path : spacing_km:float -> Geo.Coord.t list -> (float * Geo.Coord.t) list
(** Chainage and location of each repeater along a concrete path. *)

val damaged_by : spec -> gic_a:float -> bool
(** Whether a quasi-DC current of [gic_a] amperes exceeds the damage
    threshold. *)
