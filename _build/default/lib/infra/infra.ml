(** Physical Internet-infrastructure substrate (§3.2): cables, repeaters,
    power feeding, grounding, whole networks and their GIC exposure. *)

module Repeater = Repeater
module Power_feed = Power_feed
module Cable = Cable
module Grounding = Grounding
module Network = Network
module Exposure = Exposure
