(** Markdown export of the figure harness.

    `solarstorm figures --markdown results.md` emits one fenced section
    per figure so results can be committed/diffed alongside the paper
    comparison in EXPERIMENTS.md. *)

val escape_heading : string -> string
(** Strips newlines/backticks from text used in headings. *)

val section : title:string -> body:string -> string
(** A [##] heading followed by the body in a fenced code block (the
    harness output is preformatted ASCII). *)

val document : title:string -> intro:string -> (string * string) list -> string
(** Full document from [(figure id, text)] pairs. *)

val write_results :
  path:string -> ?title:string -> ?intro:string -> (string * string) list -> unit
(** Render and write to a file.  @raise Sys_error on unwritable paths. *)
