type layer =
  | Points of char * Geo.Coord.t list
  | Arcs of char * (Geo.Coord.t * Geo.Coord.t) list

let render ?(width = 110) ?(height = 34) ?bounds layers =
  let proj = Geo.Projection.equirectangular ?bounds ~width ~height () in
  let grid = Array.make_matrix height width ' ' in
  (* Coastline background: sample each cell centre for land. *)
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      let c = Geo.Projection.of_xy proj x y in
      if Geo.Region.on_land c then grid.(y).(x) <- '.'
    done
  done;
  let put glyph coord =
    match Geo.Projection.to_xy proj coord with
    | Some (x, y) -> grid.(y).(x) <- glyph
    | None -> ()
  in
  let draw_arc glyph a b =
    let n = Int.max 2 (int_of_float (Geo.Distance.haversine_km a b /. 300.0)) in
    List.iter (put glyph) (Geo.Geodesic.waypoints a b ~n)
  in
  List.iter
    (function
      | Points (glyph, pts) -> List.iter (put glyph) pts
      | Arcs (glyph, arcs) -> List.iter (fun (a, b) -> draw_arc glyph a b) arcs)
    layers;
  let buf = Buffer.create (width * height) in
  Array.iter
    (fun line ->
      Buffer.add_string buf (String.init width (fun c -> line.(c)));
      Buffer.add_char buf '\n')
    grid;
  Buffer.contents buf

let network_layers ?(cable_glyph = '-') ?(node_glyph = 'O') net =
  let arcs = ref [] in
  for c = 0 to Infra.Network.nb_cables net - 1 do
    let cable = Infra.Network.cable net c in
    let rec hops = function
      | a :: (b :: _ as rest) ->
          arcs := (Infra.Network.node_coord net a, Infra.Network.node_coord net b) :: !arcs;
          hops rest
      | [ _ ] | [] -> ()
    in
    hops cable.Infra.Cable.landings
  done;
  let nodes =
    List.init (Infra.Network.nb_nodes net) (fun i -> Infra.Network.node_coord net i)
  in
  [ Arcs (cable_glyph, !arcs); Points (node_glyph, nodes) ]
