let escape field =
  let needs_quote =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') field
  in
  if not needs_quote then field
  else begin
    let buf = Buffer.create (String.length field + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      field;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let of_rows ~header rows =
  let line cells = String.concat "," (List.map escape cells) in
  String.concat "\n" (line header :: List.map line rows) ^ "\n"

let of_series ~header:(hx, hy) points =
  of_rows ~header:[ hx; hy ]
    (List.map (fun (x, y) -> [ Printf.sprintf "%g" x; Printf.sprintf "%g" y ]) points)

let write_file ~path content =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)
