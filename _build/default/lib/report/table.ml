let looks_numeric s =
  s <> ""
  && String.for_all (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = 'e' || c = '%') s

let render ?(header = []) rows =
  let all = if header = [] then rows else header :: rows in
  let ncols = List.fold_left (fun m r -> Int.max m (List.length r)) 0 all in
  if ncols = 0 then ""
  else begin
    let cell row i = match List.nth_opt row i with Some c -> c | None -> "" in
    let widths =
      Array.init ncols (fun i ->
          List.fold_left (fun m r -> Int.max m (String.length (cell r i))) 0 all)
    in
    let line row =
      String.concat "  "
        (List.init ncols (fun i ->
             let c = cell row i in
             let pad = widths.(i) - String.length c in
             if looks_numeric c && i > 0 then String.make pad ' ' ^ c
             else c ^ String.make pad ' '))
      |> fun s -> String.trim s |> fun t -> if t = "" then s else
        (* keep trailing alignment but drop line-end spaces *)
        let rec rstrip n = if n > 0 && s.[n - 1] = ' ' then rstrip (n - 1) else n in
        String.sub s 0 (rstrip (String.length s))
    in
    let buf = Buffer.create 256 in
    if header <> [] then begin
      Buffer.add_string buf (line header);
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (Array.fold_left ( + ) (2 * (ncols - 1)) widths) '-');
      Buffer.add_char buf '\n'
    end;
    List.iter
      (fun r ->
        Buffer.add_string buf (line r);
        Buffer.add_char buf '\n')
      rows;
    Buffer.contents buf
  end

let render_floats ?header ?(fmt = Printf.sprintf "%.2f") rows =
  render ?header (List.map (fun (label, vs) -> label :: List.map fmt vs) rows)
