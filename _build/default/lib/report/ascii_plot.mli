(** ASCII line plots for rendering the paper's figures in a terminal.

    Multiple series share one canvas; each series gets a distinct glyph
    and a legend line.  The x axis may be logarithmic (Figs 5–7). *)

type series = { label : string; points : (float * float) list }

val sparkline : float list -> string
(** One-line block-character sparkline ("▁▃▆█"-style using ASCII
    [_.-=#] levels); "" for an empty list. *)

val plot :
  ?width:int ->
  ?height:int ->
  ?log_x:bool ->
  ?x_label:string ->
  ?y_label:string ->
  ?title:string ->
  series list ->
  string
(** Renders the series.  Empty input or all-empty series yield a short
    placeholder string rather than raising. *)
