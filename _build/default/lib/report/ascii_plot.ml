type series = { label : string; points : (float * float) list }

let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |]

let sparkline values =
  match values with
  | [] -> ""
  | _ ->
      let levels = [| '_'; '.'; '-'; '='; '#' |] in
      let lo = List.fold_left Float.min (List.hd values) values in
      let hi = List.fold_left Float.max (List.hd values) values in
      let span = if hi -. lo < 1e-12 then 1.0 else hi -. lo in
      String.concat ""
        (List.map
           (fun v ->
             let i =
               Int.min 4 (Int.max 0 (int_of_float ((v -. lo) /. span *. 4.999)))
             in
             String.make 1 levels.(i))
           values)

let plot ?(width = 72) ?(height = 20) ?(log_x = false) ?(x_label = "") ?(y_label = "")
    ?(title = "") series =
  let all_points = List.concat_map (fun s -> s.points) series in
  let usable =
    List.filter
      (fun (x, _) -> (not log_x) || x > 0.0)
      all_points
  in
  if usable = [] then "(empty plot)\n"
  else begin
    let xs = List.map fst usable and ys = List.map snd usable in
    let tx x = if log_x then log10 x else x in
    let x_min = List.fold_left Float.min (tx (List.hd xs)) (List.map tx xs) in
    let x_max = List.fold_left Float.max (tx (List.hd xs)) (List.map tx xs) in
    let y_min = List.fold_left Float.min (List.hd ys) ys in
    let y_max = List.fold_left Float.max (List.hd ys) ys in
    let y_min, y_max = if y_max -. y_min < 1e-12 then (y_min -. 1.0, y_max +. 1.0) else (y_min, y_max) in
    let x_min, x_max = if x_max -. x_min < 1e-12 then (x_min -. 1.0, x_max +. 1.0) else (x_min, x_max) in
    let grid = Array.make_matrix height width ' ' in
    let put x y glyph =
      if log_x && x <= 0.0 then ()
      else begin
        let fx = (tx x -. x_min) /. (x_max -. x_min) in
        let fy = (y -. y_min) /. (y_max -. y_min) in
        let col = Int.min (width - 1) (Int.max 0 (int_of_float (fx *. float_of_int (width - 1)))) in
        let row =
          Int.min (height - 1)
            (Int.max 0 (int_of_float ((1.0 -. fy) *. float_of_int (height - 1))))
        in
        grid.(row).(col) <- glyph
      end
    in
    (* Connect consecutive points of each series with interpolated marks so
       the curve reads as a line. *)
    List.iteri
      (fun si s ->
        let glyph = glyphs.(si mod Array.length glyphs) in
        let rec draw = function
          | (x1, y1) :: ((x2, y2) :: _ as rest) ->
              let steps = 24 in
              for k = 0 to steps do
                let f = float_of_int k /. float_of_int steps in
                let x =
                  if log_x then 10.0 ** ((tx x1 *. (1.0 -. f)) +. (tx x2 *. f))
                  else (x1 *. (1.0 -. f)) +. (x2 *. f)
                in
                let y = (y1 *. (1.0 -. f)) +. (y2 *. f) in
                put x y (if k = 0 || k = steps then glyph else glyph)
              done;
              draw rest
          | [ (x, y) ] -> put x y glyph
          | [] -> ()
        in
        draw s.points)
      series;
    let buf = Buffer.create (width * height) in
    if title <> "" then Buffer.add_string buf (title ^ "\n");
    let y_fmt v =
      if Float.abs v >= 1000.0 then Printf.sprintf "%8.0f" v else Printf.sprintf "%8.2f" v
    in
    Array.iteri
      (fun row line ->
        let y_val =
          y_max -. (float_of_int row /. float_of_int (height - 1) *. (y_max -. y_min))
        in
        if row mod 4 = 0 then Buffer.add_string buf (y_fmt y_val ^ " |")
        else Buffer.add_string buf "         |";
        Buffer.add_string buf (String.init width (fun c -> line.(c)));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf ("         +" ^ String.make width '-' ^ "\n");
    let x_lo = if log_x then 10.0 ** x_min else x_min in
    let x_hi = if log_x then 10.0 ** x_max else x_max in
    Buffer.add_string buf
      (Printf.sprintf "          %-12g%s%12g  %s%s\n" x_lo
         (String.make (Int.max 0 (width - 26)) ' ')
         x_hi x_label
         (if log_x then " (log scale)" else ""));
    if y_label <> "" then Buffer.add_string buf ("          y: " ^ y_label ^ "\n");
    List.iteri
      (fun si s ->
        Buffer.add_string buf
          (Printf.sprintf "          %c %s\n" glyphs.(si mod Array.length glyphs) s.label))
      series;
    Buffer.contents buf
  end
