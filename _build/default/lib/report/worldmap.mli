(** ASCII world maps (Figures 1 and 2 style).

    Renders a coastline background from the [Geo.Region] polygons, then
    overlays point layers (IXPs, data centers, landing stations) and
    great-circle cable arcs. *)

type layer =
  | Points of char * Geo.Coord.t list
  | Arcs of char * (Geo.Coord.t * Geo.Coord.t) list

val render :
  ?width:int -> ?height:int -> ?bounds:float * float * float * float -> layer list -> string
(** Later layers draw over earlier ones.  [bounds] as in
    {!Geo.Projection.equirectangular}. *)

val network_layers : ?cable_glyph:char -> ?node_glyph:char -> Infra.Network.t -> layer list
(** Cable arcs (hop by hop) under landing-point markers. *)
