(** Plain-text tables for the figure harness and the CLI. *)

val render : ?header:string list -> string list list -> string
(** [render ?header rows] aligns columns (left for text, right for
    numeric-looking cells) with a separator line under the header.  Rows
    may have differing lengths; missing cells render empty. *)

val render_floats :
  ?header:string list -> ?fmt:(float -> string) -> (string * float list) list -> string
(** [(label, values)] rows; default float format ["%.2f"]. *)
