lib/report/table.mli:
