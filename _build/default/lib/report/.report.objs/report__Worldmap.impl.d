lib/report/worldmap.ml: Array Buffer Geo Infra Int List String
