lib/report/report.ml: Ascii_plot Csv Figures Markdown Table Worldmap
