lib/report/worldmap.mli: Geo Infra
