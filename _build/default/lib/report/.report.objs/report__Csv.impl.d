lib/report/csv.ml: Buffer Fun List Printf String
