lib/report/markdown.mli:
