lib/report/ascii_plot.ml: Array Buffer Float Int List Printf String
