lib/report/markdown.ml: Buffer Csv List Printf String
