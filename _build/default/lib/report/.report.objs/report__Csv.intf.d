lib/report/csv.mli:
