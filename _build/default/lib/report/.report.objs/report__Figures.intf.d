lib/report/figures.mli: Datasets Infra
