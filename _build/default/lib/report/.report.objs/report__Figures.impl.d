lib/report/figures.ml: Array Ascii_plot Buffer Cme Datasets Float Format Infra Int Interdomain Leo List Mitigation Printf Probability Spaceweather Stormsim String Table Worldmap
