(** CSV export of figure series, for replotting outside the terminal. *)

val escape : string -> string
(** RFC-4180 quoting of a single field. *)

val of_rows : header:string list -> string list list -> string

val of_series : header:string * string -> (float * float) list -> string
(** Two-column numeric CSV. *)

val write_file : path:string -> string -> unit
(** @raise Sys_error on unwritable paths. *)
