(** LEO satellite substrate — the paper's §3.3/§5.1 future-work item
    ("study the impact of solar superstorms on satellite Internet
    constellations"): orbital mechanics, storm-heated thermosphere,
    drag decay, Walker constellations and storm-impact assessment. *)

module Orbit = Orbit
module Atmosphere = Atmosphere
module Decay = Decay
module Constellation = Constellation
module Storm_impact = Storm_impact
