(** Storm impact on a LEO constellation (§3.3): drag episodes, radiation
    damage, and the resulting service loss.

    Three damage channels:
    - {b drag}: satellites whose thrusters cannot beat the storm-enhanced
      drag lose altitude for the storm's duration; vehicles parked at low
      injection altitudes (the February 2022 Starlink batch at 210 km)
      reenter;
    - {b electronics}: charged-particle dose causes permanent failures
      with probability growing with storm strength (§3.3 "damage to
      electronic components");
    - {b service}: the paper's §3.3 notes that satellites are blind
      during the event itself; afterwards coverage reflects the surviving
      fleet. *)

type shell_outcome = {
  shell : Constellation.shell;
  altitude_loss_km : float;  (** coasting loss over the storm for non-thrusting craft *)
  can_station_keep : bool;  (** thrusters beat peak drag at shell altitude *)
  lost_fraction : float;  (** satellites permanently lost in this shell *)
}

type t = {
  dst_nt : float;
  storm_days : float;
  shells : shell_outcome list;
  injection_loss_fraction : float option;
      (** loss among a low-altitude injection batch, when one was flying *)
  fleet_lost_fraction : float;
  coverage_before : float;
  coverage_after : float;  (** population-weighted, 25° mask *)
}

val electronics_failure_probability : dst_nt:float -> float
(** Per-satellite permanent-failure probability from particle dose:
    ~0.2% for a 1989-class storm, ~5% for Carrington-class. *)

val assess :
  ?spacecraft:Decay.spacecraft ->
  ?storm_days:float ->
  ?injection_batch:float (* altitude km *) ->
  ?users:(float * float) list ->
  dst_nt:float ->
  Constellation.t ->
  t
(** Assess a storm against a constellation.  [storm_days] defaults to 3;
    [injection_batch] adds a batch parked at the given altitude (set
    210.0 to replay February 2022); [users] defaults to a coarse world
    population latitude profile. *)

val feb_2022_starlink : unit -> t
(** The calibration scenario: Dst −66 nT, batch at 210 km.  The batch is
    mostly lost; the operational shells are untouched. *)

val pp : Format.formatter -> t -> unit
