type shell = {
  name : string;
  alt_km : float;
  inclination_deg : float;
  planes : int;
  sats_per_plane : int;
}

type t = { name : string; shells : shell list }

let shell_size s = s.planes * s.sats_per_plane

let size t = List.fold_left (fun acc s -> acc + shell_size s) 0 t.shells

let starlink_phase1 =
  {
    name = "starlink-phase1";
    shells =
      [
        { name = "shell-1"; alt_km = 550.0; inclination_deg = 53.0; planes = 72; sats_per_plane = 22 };
        { name = "shell-2"; alt_km = 540.0; inclination_deg = 53.2; planes = 72; sats_per_plane = 22 };
        { name = "shell-3"; alt_km = 570.0; inclination_deg = 70.0; planes = 36; sats_per_plane = 20 };
        { name = "shell-4"; alt_km = 560.0; inclination_deg = 97.6; planes = 6; sats_per_plane = 58 };
        { name = "shell-5"; alt_km = 560.0; inclination_deg = 97.6; planes = 4; sats_per_plane = 43 };
      ];
  }

let coverage_cap_deg shell ~elevation_mask_deg =
  let re = Orbit.earth_radius_m in
  let r = re +. (shell.alt_km *. 1000.0) in
  let e = Geo.Angle.deg_to_rad elevation_mask_deg in
  (* Central angle: psi = acos(Re cos e / r) - e. *)
  Geo.Angle.rad_to_deg (acos (re *. cos e /. r) -. e)

(* Long-run surface density (satellites per steradian) of a circular-orbit
   shell at latitude phi:
     g(phi) = N / (2 pi^2) * 1 / sqrt(sin^2 i - sin^2 phi)   for |phi| < i.
   (Integrates to N over the sphere.)  For retrograde shells use the
   supplementary inclination. *)
let shell_density_per_sr shell ~lat_deg =
  let i =
    let i0 = shell.inclination_deg in
    if i0 > 90.0 then 180.0 -. i0 else i0
  in
  let phi = Float.abs lat_deg in
  if phi >= i then 0.0
  else
    let si = sin (Geo.Angle.deg_to_rad i) and sp = sin (Geo.Angle.deg_to_rad phi) in
    let denom = sqrt ((si *. si) -. (sp *. sp)) in
    if denom < 1e-6 then
      (* At the inclination edge the analytic density diverges; cap it. *)
      float_of_int (shell_size shell) /. (2.0 *. Float.pi *. Float.pi *. 1e-6)
    else float_of_int (shell_size shell) /. (2.0 *. Float.pi *. Float.pi *. denom)

let visible_satellites t ~lat_deg ~elevation_mask_deg =
  List.fold_left
    (fun acc shell ->
      let psi = Geo.Angle.deg_to_rad (coverage_cap_deg shell ~elevation_mask_deg) in
      (* Solid angle of the coverage cap. *)
      let cap_sr = 2.0 *. Float.pi *. (1.0 -. cos psi) in
      acc +. (shell_density_per_sr shell ~lat_deg *. cap_sr))
    0.0 t.shells

let covered t ~lat_deg ~elevation_mask_deg =
  visible_satellites t ~lat_deg ~elevation_mask_deg >= 1.0

let coverage_fraction ?(elevation_mask_deg = 25.0) t users =
  let total = List.fold_left (fun a (_, w) -> a +. w) 0.0 users in
  if total <= 0.0 then 0.0
  else
    List.fold_left
      (fun acc (lat, w) ->
        if covered t ~lat_deg:lat ~elevation_mask_deg then acc +. w else acc)
      0.0 users
    /. total
