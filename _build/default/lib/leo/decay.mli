(** Orbital decay under storm-enhanced drag. *)

type spacecraft = {
  name : string;
  mass_kg : float;
  drag_area_m2 : float;  (** effective frontal area (attitude-dependent) *)
  cd : float;  (** drag coefficient, ~2.2 *)
  thrust_n : float;  (** station-keeping thrust (0 for none) *)
}

val starlink_v1 : spacecraft
(** 260 kg, ion thruster, drag-minimized area ~3 m². *)

val starlink_v1_safe_mode : spacecraft
(** The same vehicle "sheet-flying" edge cases during the Feb 2022 event:
    larger effective area, thruster unavailable while in safe mode. *)

val cubesat_3u : spacecraft
(** A passive 4 kg 3U cubesat. *)

val ballistic_coefficient : spacecraft -> float
(** [Cd · A / m], m²/kg. *)

val thrust_margin : spacecraft -> Atmosphere.conditions -> alt_km:float -> float
(** Thrust acceleration over drag deceleration; > 1 means the vehicle can
    climb.  [infinity] in vacuum, 0 without a thruster. *)

val can_hold_altitude : spacecraft -> Atmosphere.conditions -> alt_km:float -> bool
(** [thrust_margin > 1]. *)

val altitude_after :
  spacecraft -> Atmosphere.conditions -> alt_km:float -> days:float -> float
(** Altitude (km) after coasting (no thrust) for the given duration,
    integrated in 10-minute steps; floors at {!Orbit.reentry_alt_km}.
    @raise Invalid_argument for negative duration. *)

val lifetime_days :
  ?max_days:float -> spacecraft -> Atmosphere.conditions -> alt_km:float -> float
(** Days until reentry without thrust (capped at [max_days],
    default 36500). *)
