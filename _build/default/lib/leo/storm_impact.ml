type shell_outcome = {
  shell : Constellation.shell;
  altitude_loss_km : float;
  can_station_keep : bool;
  lost_fraction : float;
}

type t = {
  dst_nt : float;
  storm_days : float;
  shells : shell_outcome list;
  injection_loss_fraction : float option;
  fleet_lost_fraction : float;
  coverage_before : float;
  coverage_after : float;
}

(* Dose-driven permanent electronics failures: exponential in storm
   strength, anchored at ~0.2% for Dst -589 (1989) and ~5% for -1200. *)
let electronics_failure_probability ~dst_nt =
  let x = Float.abs dst_nt in
  Float.min 0.5 (0.002 *. exp ((x -. 589.0) /. 190.0))

let default_users =
  (* Coarse world-population latitude profile (share per band centre). *)
  [ (-45.0, 0.4); (-35.0, 1.5); (-25.0, 2.6); (-15.0, 3.5); (-5.0, 5.9);
    (5.0, 8.4); (15.0, 13.8); (25.0, 27.5); (35.0, 21.6); (45.0, 10.3);
    (55.0, 4.4); (65.0, 0.3) ]

let assess ?(spacecraft = Decay.starlink_v1) ?(storm_days = 3.0) ?injection_batch
    ?(users = default_users) ~dst_nt constellation =
  let conditions = Atmosphere.of_storm dst_nt in
  let p_elec = electronics_failure_probability ~dst_nt in
  let shells =
    List.map
      (fun (shell : Constellation.shell) ->
        let can_station_keep =
          Decay.can_hold_altitude spacecraft conditions ~alt_km:shell.Constellation.alt_km
        in
        let altitude_loss_km =
          shell.Constellation.alt_km
          -. Decay.altitude_after spacecraft conditions ~alt_km:shell.Constellation.alt_km
               ~days:storm_days
        in
        (* Losses: electronics dose always applies; drag kills the shell's
           satellites only if they cannot station-keep AND the storm-time
           coasting would drop them to reentry. *)
        let drag_lost =
          if can_station_keep then 0.0
          else
            let final =
              Decay.altitude_after spacecraft conditions ~alt_km:shell.Constellation.alt_km
                ~days:storm_days
            in
            if final <= Orbit.reentry_alt_km +. 5.0 then 1.0
            else if altitude_loss_km > 50.0 then 0.3 (* scattered, some unrecoverable *)
            else 0.0
        in
        let lost_fraction = Float.min 1.0 (p_elec +. drag_lost) in
        { shell; altitude_loss_km; can_station_keep; lost_fraction })
      constellation.Constellation.shells
  in
  let injection_loss_fraction =
    Option.map
      (fun alt_km ->
        (* A batch parked at injection altitude survives if its thruster
           can out-accelerate the storm-enhanced drag and climb out; the
           loss fraction scales with the thrust margin shortfall.  At
           Dst -66 nT and 210 km this yields ~0.75-0.8 — the February
           2022 event lost 38 of 49 vehicles. *)
        let margin = Decay.thrust_margin spacecraft conditions ~alt_km in
        Float.min 1.0 (Float.max 0.0 (3.5 *. (1.0 -. margin))))
      injection_batch
  in
  let total = float_of_int (Constellation.size constellation) in
  let lost =
    List.fold_left
      (fun acc o ->
        acc +. (o.lost_fraction *. float_of_int (Constellation.shell_size o.shell)))
      0.0 shells
  in
  let fleet_lost_fraction = if total <= 0.0 then 0.0 else lost /. total in
  let coverage_before = Constellation.coverage_fraction constellation users in
  (* Coverage after: thin each shell by its loss fraction. *)
  let after : Constellation.t =
    {
      constellation with
      Constellation.shells =
        List.map
          (fun o ->
            let keep = 1.0 -. o.lost_fraction in
            {
              o.shell with
              Constellation.sats_per_plane =
                int_of_float
                  (Float.round (float_of_int o.shell.Constellation.sats_per_plane *. keep));
            })
          shells;
    }
  in
  let coverage_after = Constellation.coverage_fraction after users in
  {
    dst_nt;
    storm_days;
    shells;
    injection_loss_fraction;
    fleet_lost_fraction;
    coverage_before;
    coverage_after;
  }

let feb_2022_starlink () =
  assess ~dst_nt:(-66.0) ~storm_days:1.0 ~injection_batch:210.0
    Constellation.starlink_phase1

let pp ppf t =
  Format.fprintf ppf "@[<v>storm Dst %.0f nT over %.1f d:@," t.dst_nt t.storm_days;
  List.iter
    (fun o ->
      Format.fprintf ppf "  %-8s %4.0f km: holds altitude %b, coast loss %5.1f km, lost %4.1f%%@,"
        o.shell.Constellation.name o.shell.Constellation.alt_km o.can_station_keep
        o.altitude_loss_km (100.0 *. o.lost_fraction))
    t.shells;
  (match t.injection_loss_fraction with
  | Some f -> Format.fprintf ppf "  injection batch: %.0f%% lost@," (100.0 *. f)
  | None -> ());
  Format.fprintf ppf "  fleet lost %.1f%%; coverage %.1f%% -> %.1f%%@]"
    (100.0 *. t.fleet_lost_fraction) (100.0 *. t.coverage_before)
    (100.0 *. t.coverage_after)
