lib/leo/leo.ml: Atmosphere Constellation Decay Orbit Storm_impact
