lib/leo/atmosphere.ml: Float
