lib/leo/decay.ml: Atmosphere Float Orbit
