lib/leo/decay.mli: Atmosphere
