lib/leo/constellation.ml: Float Geo List Orbit
