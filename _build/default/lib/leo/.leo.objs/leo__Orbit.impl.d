lib/leo/orbit.ml: Float
