lib/leo/atmosphere.mli:
