lib/leo/storm_impact.ml: Atmosphere Constellation Decay Float Format List Option Orbit
