lib/leo/storm_impact.mli: Constellation Decay Format
