lib/leo/orbit.mli:
