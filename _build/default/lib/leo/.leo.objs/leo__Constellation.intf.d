lib/leo/constellation.mli:
