(** Thermospheric density and its storm response.

    Geomagnetic storms heat the thermosphere; the expanded atmosphere
    multiplies drag on LEO satellites (§3.3).  The model is a single
    exponential above a 200 km anchor whose base density and scale height
    both grow with storm strength.  Calibration anchors (tests enforce
    them):

    - quiet density ≈ 2×10⁻¹³ kg/m³ at 550 km (moderate solar activity);
    - the February 2022 Starlink event: a minor storm (Dst ≈ −66 nT)
      raised drag at 210 km by ~50%;
    - the Halloween 2003 storms (Dst −383 nT): ~5× density at 400 km. *)

type conditions = { dst_nt : float (** ≤ 0; 0 = quiet *) }

val quiet : conditions

val of_storm : float -> conditions
(** [of_storm dst] for a Dst in nT.  @raise Invalid_argument if
    positive. *)

val exospheric_temperature_k : conditions -> float
(** Exospheric temperature driving the scale height (~900 K quiet,
    capped at 2100 K). *)

val scale_height_km : conditions -> float

val density_kg_m3 : conditions -> alt_km:float -> float
(** Neutral density at altitude.  Valid for 150–1500 km; clamped
    outside.  @raise Invalid_argument for non-positive altitude. *)

val enhancement : conditions -> alt_km:float -> float
(** Storm density divided by quiet density at the same altitude (≥ 1):
    the drag multiplier. *)
