(** Walker-delta LEO constellations and their ground coverage.

    A shell is a set of circular orbits at one altitude/inclination with
    satellites spread over evenly spaced planes.  Coverage uses the
    standard statistical model: the long-run surface density of a shell's
    satellites at latitude φ is

    [f(φ) = N / (2 π² R² √(sin² i − sin² φ) / cos φ)]⁻¹-ish, i.e.
    density ∝ 1/√(sin²i − sin²φ), diverging toward the inclination
    latitude and zero beyond it. *)

type shell = {
  name : string;
  alt_km : float;
  inclination_deg : float;
  planes : int;
  sats_per_plane : int;
}

type t = { name : string; shells : shell list }

val shell_size : shell -> int
val size : t -> int

val starlink_phase1 : t
(** The FCC-filed Starlink phase-1 shells (~4,400 satellites at
    540–570 km plus the 560 km polar shells). *)

val coverage_cap_deg : shell -> elevation_mask_deg:float -> float
(** Earth-central half-angle of one satellite's coverage cap. *)

val visible_satellites : t -> lat_deg:float -> elevation_mask_deg:float -> float
(** Expected number of the constellation's satellites above the elevation
    mask for a user at the given latitude (0 where no shell reaches). *)

val covered : t -> lat_deg:float -> elevation_mask_deg:float -> bool
(** At least one satellite expected in view. *)

val coverage_fraction :
  ?elevation_mask_deg:float -> t -> (float * float) list -> float
(** Population-weighted fraction of [(latitude, weight)] users with
    coverage (default 25° mask). *)
