(** Circular low-Earth-orbit mechanics.

    The satellite-impact analysis (§3.3 of the paper: "orbital decay and
    uncontrolled reentry ... particularly in low earth orbit satellites
    such as Starlink") only needs circular-orbit energetics: period,
    speed, and the decay rate under drag. *)

val mu_earth : float
(** Gravitational parameter, m³/s². *)

val earth_radius_m : float

val semi_major_m : alt_km:float -> float
(** Semi-major axis of a circular orbit at the given altitude.
    @raise Invalid_argument for altitudes ≤ 0 or above 10,000 km (not
    LEO). *)

val period_s : alt_km:float -> float
(** Orbital period. *)

val speed_m_s : alt_km:float -> float
(** Orbital speed. *)

val decay_rate_m_per_s :
  alt_km:float -> density_kg_m3:float -> ballistic_m2_kg:float -> float
(** [da/dt] of the semi-major axis under drag: [-sqrt(mu a) ρ B] with
    ballistic coefficient [B = Cd A / m].  Negative (the orbit shrinks). *)

val drag_acceleration_m_s2 :
  alt_km:float -> density_kg_m3:float -> ballistic_m2_kg:float -> float
(** Instantaneous drag deceleration [ρ v² B], the quantity a satellite's
    thruster must beat to hold altitude. *)

val reentry_alt_km : float
(** Altitude treated as atmospheric reentry (120 km). *)
