type conditions = { dst_nt : float }

let quiet = { dst_nt = 0.0 }

let of_storm dst =
  if dst > 0.0 then invalid_arg "Atmosphere.of_storm: Dst must be <= 0";
  { dst_nt = dst }

(* Anchor at 200 km; base density and exospheric temperature rise with
   storm strength (Joule heating at auroral latitudes mixes globally in
   hours). *)
let anchor_alt_km = 200.0
let anchor_density_quiet = 2.5e-10 (* kg/m^3 *)

let exospheric_temperature_k c =
  Float.min 2100.0 (900.0 +. (0.6 *. Float.abs c.dst_nt))

let scale_height_km c = 8.0 +. (0.045 *. exospheric_temperature_k c)

let base_density c = anchor_density_quiet *. (1.0 +. (0.004 *. Float.abs c.dst_nt))

let density_kg_m3 c ~alt_km =
  if alt_km <= 0.0 then invalid_arg "Atmosphere.density_kg_m3: altitude <= 0";
  let alt = Float.max 150.0 (Float.min 1500.0 alt_km) in
  base_density c *. exp (-.(alt -. anchor_alt_km) /. scale_height_km c)

let enhancement c ~alt_km =
  Float.max 1.0 (density_kg_m3 c ~alt_km /. density_kg_m3 quiet ~alt_km)
