let mu_earth = 3.986004418e14
let earth_radius_m = 6.371e6
let reentry_alt_km = 120.0

let semi_major_m ~alt_km =
  if alt_km <= 0.0 || alt_km > 10000.0 then
    invalid_arg "Orbit.semi_major_m: altitude outside (0, 10000] km";
  earth_radius_m +. (alt_km *. 1000.0)

let period_s ~alt_km =
  let a = semi_major_m ~alt_km in
  2.0 *. Float.pi *. sqrt (a ** 3.0 /. mu_earth)

let speed_m_s ~alt_km = sqrt (mu_earth /. semi_major_m ~alt_km)

let decay_rate_m_per_s ~alt_km ~density_kg_m3 ~ballistic_m2_kg =
  let a = semi_major_m ~alt_km in
  -.(sqrt (mu_earth *. a) *. density_kg_m3 *. ballistic_m2_kg)

let drag_acceleration_m_s2 ~alt_km ~density_kg_m3 ~ballistic_m2_kg =
  let v = speed_m_s ~alt_km in
  density_kg_m3 *. v *. v *. ballistic_m2_kg
