type spacecraft = {
  name : string;
  mass_kg : float;
  drag_area_m2 : float;
  cd : float;
  thrust_n : float;
}

let starlink_v1 =
  { name = "starlink-v1"; mass_kg = 260.0; drag_area_m2 = 3.0; cd = 2.2; thrust_n = 0.08 }

let starlink_v1_safe_mode =
  { name = "starlink-v1-safe"; mass_kg = 260.0; drag_area_m2 = 12.0; cd = 2.2; thrust_n = 0.0 }

let cubesat_3u = { name = "cubesat-3u"; mass_kg = 4.0; drag_area_m2 = 0.03; cd = 2.2; thrust_n = 0.0 }

let ballistic_coefficient s = s.cd *. s.drag_area_m2 /. s.mass_kg

let thrust_margin s conditions ~alt_km =
  if s.thrust_n <= 0.0 then 0.0
  else
    let density_kg_m3 = Atmosphere.density_kg_m3 conditions ~alt_km in
    let drag =
      Orbit.drag_acceleration_m_s2 ~alt_km ~density_kg_m3
        ~ballistic_m2_kg:(ballistic_coefficient s)
    in
    if drag <= 0.0 then Float.infinity else s.thrust_n /. s.mass_kg /. drag

let can_hold_altitude s conditions ~alt_km = thrust_margin s conditions ~alt_km > 1.0

let altitude_after s conditions ~alt_km ~days =
  if days < 0.0 then invalid_arg "Decay.altitude_after: negative duration";
  let b = ballistic_coefficient s in
  let dt = 600.0 (* s *) in
  let steps = int_of_float (Float.ceil (days *. 86400.0 /. dt)) in
  let alt = ref alt_km in
  (try
     for _ = 1 to steps do
       if !alt <= Orbit.reentry_alt_km then raise Exit;
       let density_kg_m3 = Atmosphere.density_kg_m3 conditions ~alt_km:!alt in
       let da =
         Orbit.decay_rate_m_per_s ~alt_km:!alt ~density_kg_m3 ~ballistic_m2_kg:b *. dt
       in
       alt := Float.max Orbit.reentry_alt_km (!alt +. (da /. 1000.0))
     done
   with Exit -> ());
  !alt

let lifetime_days ?(max_days = 36500.0) s conditions ~alt_km =
  (* March forward in exponentially growing chunks; bisect the last one. *)
  let rec march t alt =
    if alt <= Orbit.reentry_alt_km +. 1e-6 then t
    else if t >= max_days then max_days
    else
      let chunk = Float.max 0.1 (t /. 4.0) in
      let alt' = altitude_after s conditions ~alt_km:alt ~days:chunk in
      march (Float.min max_days (t +. chunk)) alt'
  in
  march 0.0 alt_km
