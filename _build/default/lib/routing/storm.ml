type outcome = {
  ases_down_pct : float;
  reachability_pct : float;
  bgp_continuity_pct : float;
  multipath_continuity_pct : float;
  mean_disjoint_paths : float;
}

let tier_probabilities ~dst_nt =
  let x = Float.abs dst_nt in
  if x >= 850.0 then (0.8, 0.25, 0.03)
  else if x >= 500.0 then (0.3, 0.08, 0.01)
  else (0.05, 0.01, 0.001)

let draw_failures rng (t : As_topology.t) ~dst_nt =
  let high, mid, low = tier_probabilities ~dst_nt in
  Array.init t.As_topology.n (fun i ->
      let l = Float.abs t.As_topology.home_lat.(i) in
      let p = if l > 60.0 then high else if l > 40.0 then mid else low in
      not (Rng.bernoulli rng ~p))

let compare_protocols ?(seed = 29) ?(pairs = 300) ?(k = 3) t ~dst_nt =
  let rng = Rng.create seed in
  let healthy = Bgp.all_alive t in
  let alive = draw_failures rng t ~dst_nt in
  let n = t.As_topology.n in
  let down = ref 0 in
  Array.iter (fun a -> if not a then incr down) alive;
  let path_alive path = List.for_all (fun x -> alive.(x)) path in
  let sampled = ref 0 in
  let reachable_post = ref 0 and bgp_ok = ref 0 and multi_ok = ref 0 in
  let diversity = ref 0.0 in
  let guard = ref 0 in
  while !sampled < pairs && !guard < pairs * 30 do
    incr guard;
    let src = Rng.int rng n and dst = Rng.int rng n in
    if src <> dst && alive.(src) && alive.(dst) then begin
      (* Pre-storm state: best path and k disjoint paths on the healthy
         topology. *)
      match Bgp.shortest_path t ~alive:healthy ~src ~dst with
      | None -> () (* unreachable even before the storm: skip the pair *)
      | Some best ->
          incr sampled;
          let dpaths = Bgp.disjoint_paths ~k t ~alive:healthy ~src ~dst in
          diversity := !diversity +. float_of_int (List.length dpaths);
          if path_alive best then incr bgp_ok;
          if List.exists path_alive dpaths then incr multi_ok;
          if Bgp.reachable t ~alive ~src ~dst then incr reachable_post
    end
  done;
  let pct x = if !sampled = 0 then 0.0 else 100.0 *. float_of_int x /. float_of_int !sampled in
  {
    ases_down_pct = 100.0 *. float_of_int !down /. float_of_int n;
    reachability_pct = pct !reachable_post;
    bgp_continuity_pct = pct !bgp_ok;
    multipath_continuity_pct = pct !multi_ok;
    mean_disjoint_paths =
      (if !sampled = 0 then 0.0 else !diversity /. float_of_int !sampled);
  }
