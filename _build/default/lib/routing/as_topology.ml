type tier = T1 | T2 | Stub

type t = {
  n : int;
  tier : tier array;
  home_lat : float array;
  providers : int list array;
  customers : int list array;
  peers : int list array;
}

let tier_to_string = function T1 -> "tier-1" | T2 -> "tier-2" | Stub -> "stub"

let generate ?(seed = 42) ?(n = 2000) () =
  if n < 20 then invalid_arg "As_topology.generate: need at least 20 ASes";
  let rng = Rng.create seed in
  let ases = Datasets.Caida.build ~seed ~ases:n () in
  let home_lat = Array.map (fun a -> Geo.Coord.lat a.Datasets.Caida.home) ases in
  let home_lon = Array.map (fun a -> Geo.Coord.lon a.Datasets.Caida.home) ases in
  (* Tier assignment: the largest router clouds are the transit core. *)
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      Int.compare ases.(b).Datasets.Caida.router_count ases.(a).Datasets.Caida.router_count)
    order;
  let tier = Array.make n Stub in
  let n_t1 = Int.max 5 (n / 100) in
  let n_t2 = Int.max 10 (n * 14 / 100) in
  Array.iteri
    (fun rank idx ->
      if rank < n_t1 then tier.(idx) <- T1
      else if rank < n_t1 + n_t2 then tier.(idx) <- T2)
    order;
  let providers = Array.make n [] and customers = Array.make n [] and peers = Array.make n [] in
  let add_provider c p =
    if c <> p && not (List.mem p providers.(c)) then begin
      providers.(c) <- p :: providers.(c);
      customers.(p) <- c :: customers.(p)
    end
  in
  let add_peer a b =
    if a <> b && not (List.mem b peers.(a)) then begin
      peers.(a) <- b :: peers.(a);
      peers.(b) <- a :: peers.(b)
    end
  in
  let t1s = Array.of_list (List.filter (fun i -> tier.(i) = T1) (Array.to_list order)) in
  let t2s = Array.of_list (List.filter (fun i -> tier.(i) = T2) (Array.to_list order)) in
  (* Tier-1 full peer mesh. *)
  Array.iter (fun a -> Array.iter (fun b -> if a < b then add_peer a b) t1s) t1s;
  (* Geographic proximity on (lat, lon): squared degree distance. *)
  let dist2 a b =
    let dlat = home_lat.(a) -. home_lat.(b) in
    let dlon = Geo.Angle.angular_diff home_lon.(a) home_lon.(b) in
    (dlat *. dlat) +. (dlon *. dlon)
  in
  let nearest_of pool ~to_:i ~k ~skip =
    let scored =
      Array.to_list pool
      |> List.filter (fun j -> j <> i && not (List.mem j skip))
      |> List.map (fun j -> (dist2 i j, j))
      |> List.sort compare
    in
    List.filteri (fun idx _ -> idx < k) scored |> List.map snd
  in
  (* Tier-2: buy transit from 2-3 tier-1s (nearest-biased), peer with a few
     nearby tier-2s. *)
  Array.iter
    (fun i ->
      let k = 2 + Rng.int rng 2 in
      List.iter (add_provider i) (nearest_of t1s ~to_:i ~k ~skip:[]);
      let kp = 1 + Rng.int rng 3 in
      List.iter (add_peer i) (nearest_of t2s ~to_:i ~k:kp ~skip:[]))
    t2s;
  (* Stubs: 1-3 providers among nearby transit ASes (tier-2 preferred). *)
  let transit = Array.append t2s t1s in
  Array.iteri
    (fun i t ->
      if t = Stub then begin
        (* Most stubs are multi-homed (2-3 providers). *)
        let k = 2 + Rng.int rng 2 in
        let near = nearest_of transit ~to_:i ~k:(k + 3) ~skip:[] in
        let chosen = List.filteri (fun idx _ -> idx < k) near in
        List.iter (add_provider i) chosen
      end)
    tier;
  { n; tier; home_lat; providers; customers; peers }

let provider_cone t dst =
  let mark = Array.make t.n false in
  let q = Queue.create () in
  mark.(dst) <- true;
  Queue.add dst q;
  while not (Queue.is_empty q) do
    let x = Queue.pop q in
    List.iter
      (fun p ->
        if not mark.(p) then begin
          mark.(p) <- true;
          Queue.add p q
        end)
      t.providers.(x)
  done;
  mark

let up_closure t src =
  (* Same traversal; kept separate for intention-revealing call sites. *)
  provider_cone t src

let degree_stats t =
  let total = ref 0 and dmax = ref 0 in
  for i = 0 to t.n - 1 do
    let d = List.length t.providers.(i) + List.length t.customers.(i) + List.length t.peers.(i) in
    total := !total + d;
    if d > !dmax then dmax := d
  done;
  (float_of_int !total /. float_of_int t.n, !dmax)

let validate t =
  let check_pair_consistency () =
    let ok = ref true in
    Array.iteri
      (fun c ps ->
        List.iter (fun p -> if not (List.mem c t.customers.(p)) then ok := false) ps)
      t.providers;
    !ok
  in
  let check_peers_symmetric () =
    let ok = ref true in
    Array.iteri
      (fun a ps -> List.iter (fun b -> if not (List.mem a t.peers.(b)) then ok := false) ps)
      t.peers;
    !ok
  in
  let check_no_self () =
    let ok = ref true in
    Array.iteri (fun i ps -> if List.mem i ps then ok := false) t.providers;
    Array.iteri (fun i ps -> if List.mem i ps then ok := false) t.peers;
    !ok
  in
  let check_stub_providers () =
    let ok = ref true in
    Array.iteri (fun i tr -> if tr = Stub && t.providers.(i) = [] then ok := false) t.tier;
    !ok
  in
  if not (check_pair_consistency ()) then Error "provider/customer mismatch"
  else if not (check_peers_symmetric ()) then Error "asymmetric peers"
  else if not (check_no_self ()) then Error "self link"
  else if not (check_stub_providers ()) then Error "orphan stub"
  else Ok ()
