(** Interdomain-routing substrate (§5.3): Gao–Rexford AS topologies,
    valley-free BGP path computation, and the BGP-vs-multipath comparison
    under storm-induced AS failures. *)

module As_topology = As_topology
module Bgp = Bgp
module Storm = Storm
