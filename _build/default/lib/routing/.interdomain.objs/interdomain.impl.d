lib/routing/interdomain.ml: As_topology Bgp Storm
