lib/routing/as_topology.ml: Array Datasets Geo Int List Queue Rng
