lib/routing/bgp.mli: As_topology
