lib/routing/bgp.ml: Array As_topology List Queue
