lib/routing/as_topology.mli:
