lib/routing/storm.ml: Array As_topology Bgp Float List Rng
