lib/routing/storm.mli: As_topology Rng
