(** Storm scenarios at the interdomain layer: BGP vs. multipath
    architectures (§5.3).

    ASes fail with latitude-tiered probabilities (their physical
    infrastructure sits in the vulnerable band).  Two recovery models are
    compared on the same failure draw:

    - {b BGP (single path)}: a source keeps connectivity {e through the
      event} only if its pre-storm best path survives; otherwise it must
      re-converge (possible only if the destination is still reachable);
    - {b multipath (SCION-like)}: the source holds [k] disjoint paths and
      keeps connectivity if any survives. *)

type outcome = {
  ases_down_pct : float;
  reachability_pct : float;
      (** alive pairs that remain reachable at all (protocol-independent
          upper bound) *)
  bgp_continuity_pct : float;  (** pairs whose single best path survived *)
  multipath_continuity_pct : float;  (** pairs with >= 1 of k paths alive *)
  mean_disjoint_paths : float;  (** pre-storm path diversity of the pairs *)
}

val tier_probabilities : dst_nt:float -> float * float * float
(** (high, mid, low) per-AS failure probabilities for a storm: S1-like
    for Carrington-class, S2-like for extreme storms, mild below. *)

val draw_failures : Rng.t -> As_topology.t -> dst_nt:float -> bool array
(** Alive mask after the storm. *)

val compare_protocols :
  ?seed:int ->
  ?pairs:int ->
  ?k:int ->
  As_topology.t ->
  dst_nt:float ->
  outcome
(** Sample [pairs] (default 300) alive src/dst pairs on one failure draw
    and measure the four metrics. *)
