(** AS-level Internet topology with business relationships.

    §5.3 of the paper asks for "backup interdomain protocols that allow
    multiple paths and more resilient Internet architectures (e.g.,
    SCION)".  Evaluating that needs an AS graph with Gao–Rexford
    customer/provider/peer semantics.  The generator builds one over the
    synthetic AS geography of {!Datasets.Caida}: a small clique-ish tier-1
    core, regional tier-2 transit providers, and stub ASes that buy
    transit from geographically plausible providers. *)

type tier = T1 | T2 | Stub

type t = {
  n : int;  (** AS count; ASes are 0 .. n-1 *)
  tier : tier array;
  home_lat : float array;  (** AS home latitude (for failure models) *)
  providers : int list array;  (** AS -> its transit providers *)
  customers : int list array;  (** inverse of [providers] *)
  peers : int list array;  (** settlement-free peers (symmetric) *)
}

val tier_to_string : tier -> string

val generate : ?seed:int -> ?n:int -> unit -> t
(** Build a topology over [n] ASes (default 2000).  Structure: ~1% tier-1
    (full mesh of peers), ~14% tier-2 (peer with nearby tier-2s, buy from
    2-3 tier-1s), stubs buy from 1-3 nearby transit ASes.  Multi-homing
    follows real proportions (most stubs are multi-homed).
    @raise Invalid_argument if [n < 20]. *)

val provider_cone : t -> int -> bool array
(** [provider_cone t dst] marks every AS that can reach [dst] by
    descending customer links only (i.e. [dst] is in its customer cone,
    including [dst] itself).  O(V+E). *)

val up_closure : t -> int -> bool array
(** [up_closure t src] marks [src] and every AS reachable from it by
    ascending provider links. *)

val degree_stats : t -> float * int
(** (mean provider+peer+customer degree, max degree). *)

val validate : t -> (unit, string) result
(** Structural sanity: relationships are consistent (x in providers(y) iff
    y in customers(x)), peers symmetric, no self-links, every stub has a
    provider. *)
