(** Valley-free (Gao–Rexford) interdomain routing over an AS topology.

    A BGP path ascends provider links, crosses at most one peer link, and
    descends customer links.  Reachability and shortest valley-free paths
    are computed with a phase-layered BFS; every function takes an
    [alive] mask so storm scenarios can knock ASes out. *)

val all_alive : As_topology.t -> bool array

val reachable : As_topology.t -> alive:bool array -> src:int -> dst:int -> bool
(** Valley-free reachability using only alive ASes (src and dst must be
    alive themselves). *)

val reachability_fraction : As_topology.t -> alive:bool array -> dst:int -> float
(** Fraction of alive ASes (dst excluded) with a valley-free route to
    [dst]. *)

val shortest_path :
  As_topology.t -> alive:bool array -> src:int -> dst:int -> int list option
(** Shortest valley-free AS path (inclusive), [None] if unreachable.
    Ties break deterministically. *)

val disjoint_paths :
  ?k:int -> As_topology.t -> alive:bool array -> src:int -> dst:int -> int list list
(** Up to [k] (default 3) valley-free paths with pairwise-disjoint
    intermediate ASes, found greedily (successive shortest paths with
    intermediate removal) — the "multiple paths" a SCION-like
    architecture keeps ready. *)

val is_valley_free : As_topology.t -> int list -> bool
(** Checks the Gao–Rexford shape of an explicit path (used by tests). *)
