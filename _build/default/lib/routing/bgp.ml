let all_alive (t : As_topology.t) = Array.make t.As_topology.n true

(* Phase-layered BFS.  Phases: 0 = ascending (may still go up), 1 = just
   crossed the one allowed peer link, 2 = descending.  Transitions from
   (x, 0): provider (0), peer (1), customer (2); from (x, 1): customer (2);
   from (x, 2): customer (2). *)

let phase_bfs (t : As_topology.t) ~alive ~src =
  let n = t.As_topology.n in
  let parent = Array.make (3 * n) (-1) in
  let seen = Array.make (3 * n) false in
  let q = Queue.create () in
  let idx phase x = (phase * n) + x in
  if alive.(src) then begin
    seen.(idx 0 src) <- true;
    Queue.add (src, 0) q
  end;
  while not (Queue.is_empty q) do
    let x, phase = Queue.pop q in
    let push y phase' =
      if alive.(y) && not seen.(idx phase' y) then begin
        seen.(idx phase' y) <- true;
        parent.(idx phase' y) <- idx phase x;
        Queue.add (y, phase') q
      end
    in
    (match phase with
    | 0 ->
        List.iter (fun p -> push p 0) t.As_topology.providers.(x);
        List.iter (fun p -> push p 1) t.As_topology.peers.(x);
        List.iter (fun c -> push c 2) t.As_topology.customers.(x)
    | 1 | 2 -> List.iter (fun c -> push c 2) t.As_topology.customers.(x)
    | _ -> ())
  done;
  (seen, parent)

let reach_state (t : As_topology.t) seen dst =
  let n = t.As_topology.n in
  let rec find phase = if phase > 2 then None else if seen.((phase * n) + dst) then Some phase else find (phase + 1) in
  find 0

let reachable t ~alive ~src ~dst =
  if not (alive.(src) && alive.(dst)) then false
  else if src = dst then true
  else
    let seen, _ = phase_bfs t ~alive ~src in
    reach_state t seen dst <> None

let reachability_fraction t ~alive ~dst =
  if not alive.(dst) then 0.0
  else begin
    (* Valley-free reachability is symmetric: reversing up*(peer)?down*
       yields the same shape (each up edge reverses to a down edge).  So
       "who can reach dst" equals "whom dst can reach", and one forward
       BFS from dst suffices. *)
    let seen, _ = phase_bfs t ~alive ~src:dst in
    let n = t.As_topology.n in
    let total = ref 0 and ok = ref 0 in
    for x = 0 to n - 1 do
      if alive.(x) && x <> dst then begin
        incr total;
        if seen.(x) || seen.(n + x) || seen.((2 * n) + x) then incr ok
      end
    done;
    if !total = 0 then 0.0 else float_of_int !ok /. float_of_int !total
  end

let shortest_path t ~alive ~src ~dst =
  if not (alive.(src) && alive.(dst)) then None
  else if src = dst then Some [ src ]
  else begin
    let n = t.As_topology.n in
    let seen, parent = phase_bfs t ~alive ~src in
    match reach_state t seen dst with
    | None -> None
    | Some phase ->
        let rec build acc state =
          let x = state mod n in
          let p = parent.(state) in
          if p = -1 then x :: acc else build (x :: acc) p
        in
        Some (build [] ((phase * n) + dst))
  end

let disjoint_paths ?(k = 3) t ~alive ~src ~dst =
  let alive = Array.copy alive in
  let rec collect acc remaining =
    if remaining = 0 then List.rev acc
    else
      match shortest_path t ~alive ~src ~dst with
      | None -> List.rev acc
      | Some path ->
          List.iter (fun x -> if x <> src && x <> dst then alive.(x) <- false) path;
          collect (path :: acc) (remaining - 1)
  in
  collect [] k

let is_valley_free (t : As_topology.t) path =
  let rel a b =
    if List.mem b t.As_topology.providers.(a) then `Up
    else if List.mem b t.As_topology.customers.(a) then `Down
    else if List.mem b t.As_topology.peers.(a) then `Peer
    else `None
  in
  let rec walk phase = function
    | a :: (b :: _ as rest) -> (
        match (rel a b, phase) with
        | `Up, `Ascending -> walk `Ascending rest
        | `Peer, `Ascending -> walk `Descending rest
        | `Down, (`Ascending | `Descending) -> walk `Descending rest
        | (`Up | `Peer), `Descending -> false
        | `None, _ -> false)
    | [ _ ] | [] -> true
  in
  walk `Ascending path
