type t = { name : string; city : string; pos : Geo.Coord.t }

let target_count = 1026

let continent_weight =
  let open Geo.Region in
  function
  | Europe -> 4.2
  | North_america -> 2.6
  | Asia -> 0.9
  | Oceania -> 1.8
  | South_america -> 1.3
  | Africa -> 0.6
  | Antarctica -> 0.0

let build ?(seed = 42) () =
  let rng = Rng.create seed in
  let weights =
    Array.map
      (fun c ->
        (c, Float.max 0.05 c.Cities.population_m *. continent_weight c.Cities.continent))
      Cities.all
  in
  Array.init target_count (fun i ->
      let c = Rng.weighted_choice rng weights in
      { name = Printf.sprintf "IX-%s-%d" c.Cities.name i; city = c.Cities.name; pos = c.Cities.pos })

let latitudes ixps = Array.to_list (Array.map (fun i -> (Geo.Coord.lat i.pos, 1.0)) ixps)
