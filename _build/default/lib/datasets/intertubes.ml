let target_nodes = 273
let target_links = 542
let road_factor = 1.25

(* Long-haul conduits concentrate on a mesh between neighbouring metros;
   junction nodes subdivide the longest corridors, which is why most
   Intertubes links are short (Fig. 5 of the paper). *)

let build ?(seed = 42) () =
  let rng = Rng.create seed in
  let us_cities = Cities.in_country "United States" in
  (* Exclude Alaska/Hawaii landing hamlets: the Intertubes map covers the
     contiguous US. *)
  let contiguous =
    Array.of_list
      (List.filter
         (fun c ->
           let lat = Geo.Coord.lat c.Cities.pos and lon = Geo.Coord.lon c.Cities.pos in
           lat > 24.0 && lat < 50.0 && lon > -125.0 && lon < -66.0)
         (Array.to_list us_cities))
  in
  let nodes = ref [] in
  let n_nodes = ref 0 in
  let add_node ~name ~pos =
    let id = !n_nodes in
    nodes := { Infra.Network.id; name; country = "United States"; pos } :: !nodes;
    incr n_nodes;
    id
  in
  Array.iter (fun c -> ignore (add_node ~name:c.Cities.name ~pos:c.Cities.pos)) contiguous;
  let base_count = !n_nodes in
  (* Junction nodes: conduit splice points clustered around the metros.
     The real conduit system is densest across the northern tier
     (I-80/I-90/I-94 corridors): bias the anchor metro north so that ~40%
     of endpoints sit above 40°N, matching Fig. 4a. *)
  while !n_nodes < target_nodes do
    let a = Rng.choice rng contiguous in
    let keep = Geo.Coord.lat a.Cities.pos > 38.0 || Rng.bernoulli rng ~p:0.45 in
    if keep then begin
      let dlat = Rng.normal rng ~mu:0.0 ~sigma:1.0 in
      let dlon = Rng.normal rng ~mu:0.0 ~sigma:1.2 in
      let lat =
        Float.max 24.5 (Float.min 49.0 (Geo.Coord.lat a.Cities.pos +. dlat))
      in
      let lon =
        Float.max (-124.5) (Float.min (-67.0) (Geo.Coord.lon a.Cities.pos +. dlon))
      in
      ignore
        (add_node
           ~name:(Printf.sprintf "Junction-%d" !n_nodes)
           ~pos:(Geo.Coord.make ~lat ~lon))
    end
  done;
  let node_arr = Array.of_list (List.rev !nodes) in
  let pos_of i = node_arr.(i).Infra.Network.pos in
  (* Links: k-nearest-neighbour mesh (k grows with metro size), plus
     long-haul express routes between major metros. *)
  let cables = ref [] in
  let n_cables = ref 0 in
  let seen_pairs = Hashtbl.create 1024 in
  let add_link a b =
    let key = (Int.min a b, Int.max a b) in
    if a <> b && not (Hashtbl.mem seen_pairs key) && !n_cables < target_links then begin
      Hashtbl.replace seen_pairs key ();
      let gc = Geo.Distance.haversine_km (pos_of a) (pos_of b) in
      cables :=
        Infra.Cable.make ~id:!n_cables
          ~name:(Printf.sprintf "us-conduit-%d" !n_cables)
          ~kind:Infra.Cable.Land_fiber
          ~landings:[ (a, pos_of a); (b, pos_of b) ]
          ~length_km:(Float.max 10.0 (gc *. road_factor))
          ()
        :: !cables;
      incr n_cables
    end
  in
  let index =
    Geo.Grid_index.of_list
      (Array.to_list (Array.mapi (fun i n -> (n.Infra.Network.pos, i)) node_arr))
  in
  let neighbors_of i k =
    let rec gather radius =
      let hits =
        Geo.Grid_index.within_km index (pos_of i) ~radius_km:radius
        |> List.filter (fun (_, j, _) -> j <> i)
      in
      if List.length hits < k && radius < 6000.0 then gather (radius *. 1.8)
      else
        List.sort (fun (_, _, d1) (_, _, d2) -> Float.compare d1 d2) hits
        |> List.filteri (fun idx _ -> idx < k)
        |> List.map (fun (_, j, _) -> j)
    in
    gather 400.0
  in
  (* Pass 1: every node connects to its 1-2 nearest neighbours (short
     metro conduits). *)
  Array.iteri
    (fun i _ ->
      let k = 1 + Rng.int rng 2 in
      List.iter (add_link i) (neighbors_of i k))
    node_arr;
  (* Pass 2: express long-haul routes between metros; these carry the
     repeatered tail of the length distribution (mean ≈ 1.7 repeaters per
     conduit at 150 km). *)
  let metro_ids = Array.init base_count (fun i -> i) in
  let guard = ref 0 in
  while !n_cables < target_links && !guard < 50000 do
    incr guard;
    let a = Rng.choice rng metro_ids and b = Rng.choice rng metro_ids in
    let d = Geo.Distance.haversine_km (pos_of a) (pos_of b) in
    if d > 250.0 && d < 720.0 then add_link a b
  done;
  Infra.Network.create ~name:"intertubes" ~nodes:(List.rev !nodes)
    ~cables:(List.rev !cables)
