type instance = { letter : char; city : string; pos : Geo.Coord.t }

let target_instances = 1076

(* Root-letter deployment sizes shaped on the 2021 root-servers.org
   directory, rescaled to sum to 1076. *)
let letter_counts =
  [ ('A', 16); ('B', 6); ('C', 10); ('D', 150); ('E', 230); ('F', 240);
    ('G', 6); ('H', 8); ('I', 64); ('J', 118); ('K', 75); ('L', 143); ('M', 10) ]

let () = assert (List.fold_left (fun a (_, n) -> a + n) 0 letter_counts = target_instances)

(* Anycast sites favour well-connected metros but are deliberately
   worldwide; weight population with a mild infrastructure factor. *)
let continent_weight =
  let open Geo.Region in
  function
  | Europe -> 2.6
  | North_america -> 1.7
  | Asia -> 1.0
  | Oceania -> 1.4
  | South_america -> 1.1
  | Africa -> 0.75
  | Antarctica -> 0.0

let build ?(seed = 42) () =
  let rng = Rng.create seed in
  let weights =
    Array.map
      (fun c ->
        (c, Float.max 0.05 (sqrt c.Cities.population_m) *. continent_weight c.Cities.continent))
      Cities.all
  in
  let instances = ref [] in
  List.iter
    (fun (letter, count) ->
      for _ = 1 to count do
        let c = Rng.weighted_choice rng weights in
        instances := { letter; city = c.Cities.name; pos = c.Cities.pos } :: !instances
      done)
    letter_counts;
  Array.of_list (List.rev !instances)

let latitudes instances =
  Array.to_list (Array.map (fun i -> (Geo.Coord.lat i.pos, 1.0)) instances)

let per_continent instances =
  let counts = Hashtbl.create 8 in
  Array.iter
    (fun i ->
      let k = Geo.Region.continent_of_nearest i.pos in
      Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
    instances;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
