(** DNS root-server instances (root-servers.org directory, 2021 snapshot
    shape).

    13 root letters, 1076 anycast instances spread over the gazetteer's
    cities on every continent.  The per-letter instance counts follow the
    2021 directory's proportions (D/E/F/J/L operate hundreds of sites;
    B a handful). *)

type instance = {
  letter : char;  (** 'A'..'M' *)
  city : string;
  pos : Geo.Coord.t;
}

val target_instances : int
(** 1076. *)

val letter_counts : (char * int) list
(** Instances per root letter; sums to {!target_instances}. *)

val build : ?seed:int -> unit -> instance array

val latitudes : instance array -> (float * float) list
(** [(latitude, weight 1.)] pairs for the Fig. 4b threshold curve. *)

val per_continent : instance array -> (Geo.Region.continent * int) list
(** Instance counts per continent, descending. *)
