(** Hyperscaler data-center sites (public Google and Facebook/Meta lists,
    2021).

    These lists are small and public, so they are embedded directly — no
    synthesis.  The paper's §4.4.2 comparison rests on their geographic
    spread: Google operates on five continents (incl. Singapore, Chile and
    South Carolina/Georgia sites near surviving cables); Facebook's fleet
    clusters in the northern-latitude US and Europe with nothing in
    Africa or South America. *)

type operator = Google | Facebook

type site = {
  operator : operator;
  name : string;
  country : string;
  pos : Geo.Coord.t;
}

val google : site list
val facebook : site list
val all : site list

val operator_to_string : operator -> string

val latitudes : operator -> (float * float) list
(** [(latitude, weight 1.)] pairs for one operator's fleet. *)

val continents_covered : operator -> Geo.Region.continent list
(** Continents with at least one site, in {!Geo.Region.all_continents}
    order. *)

val latitude_spread : operator -> float
(** Max − min site latitude: the spread measure behind the paper's
    "Google has better spread" conclusion. *)
