(** World-city gazetteer shared by every dataset generator.

    ≈ 350 cities with coordinates, country, continent, metro population
    and a coastal flag (can host a submarine landing station).  The
    coordinates and populations are public knowledge (city-scale
    precision is all the analyses need); this table is what lets the
    synthetic datasets place infrastructure where it actually is. *)

type t = {
  name : string;
  country : string;
  continent : Geo.Region.continent;
  pos : Geo.Coord.t;
  population_m : float;  (** metro population, millions *)
  coastal : bool;
}

val all : t array
(** The full gazetteer.  Names are unique. *)

val find : string -> t
(** Lookup by exact name.  @raise Not_found when absent. *)

val find_opt : string -> t option

val coord : string -> Geo.Coord.t
(** [coord name] is [(find name).pos].  @raise Not_found when absent. *)

val coastal_cities : unit -> t array

val in_continent : Geo.Region.continent -> t array

val in_country : string -> t array

val by_population : unit -> t array
(** Descending population. *)

val population_weighted : Rng.t -> t
(** Random city, probability proportional to population. *)

val nearest : Geo.Coord.t -> t
(** Closest gazetteer city to a coordinate. *)
