(** Router and Autonomous-System geography (substitute for the CAIDA
    Internet Topology Data Kit).

    The real ITDK maps 46 million routers into 61,448 ASes; Figure 9 of
    the paper consumes only (AS, router latitude) pairs.  We synthesize
    every AS with a home city and a heavy-tailed latitude spread, sampling
    a scaled-down router cloud per AS.  Calibration targets (Fig. 9):
    57% of ASes have at least one router above |40°|; the median AS
    latitude spread is 1.723° and the 90th percentile 18.263°; 38% of
    routers sit above |40°|. *)

type asys = {
  asn : int;
  home : Geo.Coord.t;
  router_count : int;
  router_lats : float array;  (** latitudes of the sampled routers *)
  spread_deg : float;  (** max − min router latitude *)
}

val target_ases : int
(** 61,448. *)

val build : ?seed:int -> ?ases:int -> unit -> asys array
(** Synthesize [ases] Autonomous Systems (default {!target_ases}).
    Deterministic in the seed.  @raise Invalid_argument if [ases <= 0]. *)

val router_latitudes : asys array -> float array
(** All router latitudes pooled (weighted sample of the router
    population). *)

val reach_above : asys array -> threshold:float -> float
(** Fraction of ASes with at least one router above the |latitude|
    threshold (Fig. 9a). *)

val spread_cdf : asys array -> (float * float) list
(** [(spread, cumulative fraction)] steps of the AS-spread CDF
    (Fig. 9b). *)
