type operator = Google | Facebook

type site = { operator : operator; name : string; country : string; pos : Geo.Coord.t }

let site operator name country lat lon =
  { operator; name; country; pos = Geo.Coord.make ~lat ~lon }

(* Google data centers, public list (2021). *)
let google =
  [
    site Google "Berkeley County SC" "United States" 33.19 (-80.01);
    site Google "Douglas County GA" "United States" 33.75 (-84.58);
    site Google "Jackson County AL" "United States" 34.77 (-85.97);
    site Google "Lenoir NC" "United States" 35.91 (-81.54);
    site Google "Loudoun County VA" "United States" 39.09 (-77.64);
    site Google "Montgomery County TN" "United States" 36.57 (-87.35);
    site Google "Mayes County OK" "United States" 36.30 (-95.32);
    site Google "Council Bluffs IA" "United States" 41.26 (-95.86);
    site Google "Papillion NE" "United States" 41.15 (-96.04);
    site Google "The Dalles OR" "United States" 45.59 (-121.18);
    site Google "Henderson NV" "United States" 36.04 (-115.00);
    site Google "Midlothian TX" "United States" 32.48 (-96.99);
    site Google "New Albany OH" "United States" 40.08 (-82.81);
    site Google "Quilicura" "Chile" (-33.36) (-70.73);
    site Google "Montreal" "Canada" 45.50 (-73.57);
    site Google "Sao Paulo (Osasco)" "Brazil" (-23.53) (-46.79);
    site Google "St. Ghislain" "Belgium" 50.47 3.87;
    site Google "Hamina" "Finland" 60.57 27.20;
    site Google "Dublin" "Ireland" 53.32 (-6.34);
    site Google "Eemshaven" "Netherlands" 53.43 6.86;
    site Google "Middenmeer" "Netherlands" 52.81 5.00;
    site Google "Fredericia" "Denmark" 55.56 9.65;
    site Google "Frankfurt" "Germany" 50.11 8.68;
    site Google "Zurich" "Switzerland" 47.37 8.54;
    site Google "Warsaw" "Poland" 52.23 21.01;
    site Google "London" "United Kingdom" 51.51 (-0.13);
    site Google "Changhua County" "Taiwan" 24.08 120.43;
    site Google "Singapore" "Singapore" 1.35 103.82;
    site Google "Jurong West" "Singapore" 1.34 103.71;
    site Google "Tokyo" "Japan" 35.68 139.69;
    site Google "Osaka" "Japan" 34.69 135.50;
    site Google "Mumbai" "India" 19.08 72.88;
    site Google "Delhi" "India" 28.70 77.10;
    site Google "Jakarta" "Indonesia" (-6.21) 106.85;
    site Google "Seoul" "South Korea" 37.57 126.98;
    site Google "Sydney" "Australia" (-33.87) 151.21;
    site Google "Melbourne" "Australia" (-37.81) 144.96;
    site Google "Tel Aviv" "Israel" 32.07 34.78;
  ]

(* Facebook/Meta data centers, public list (2021): US + Nordic/EU + one
   Asian site; nothing in Africa or South America. *)
let facebook =
  [
    site Facebook "Prineville OR" "United States" 44.30 (-120.84);
    site Facebook "Forest City NC" "United States" 35.33 (-81.87);
    site Facebook "Altoona IA" "United States" 41.65 (-93.47);
    site Facebook "Fort Worth TX" "United States" 32.75 (-97.33);
    site Facebook "Los Lunas NM" "United States" 34.81 (-106.73);
    site Facebook "Papillion NE" "United States" 41.15 (-96.04);
    site Facebook "New Albany OH" "United States" 40.08 (-82.81);
    site Facebook "Henrico VA" "United States" 37.54 (-77.44);
    site Facebook "Eagle Mountain UT" "United States" 40.31 (-112.01);
    site Facebook "Huntsville AL" "United States" 34.73 (-86.59);
    site Facebook "Newton County GA" "United States" 33.55 (-83.85);
    site Facebook "Gallatin TN" "United States" 36.39 (-86.45);
    site Facebook "DeKalb IL" "United States" 41.93 (-88.77);
    site Facebook "Lulea" "Sweden" 65.58 22.15;
    site Facebook "Odense" "Denmark" 55.40 10.40;
    site Facebook "Clonee" "Ireland" 53.41 (-6.44);
    site Facebook "Papenburg?Altona" "Germany" 53.55 9.99;
    site Facebook "Singapore" "Singapore" 1.35 103.82;
  ]

let all = google @ facebook

let operator_to_string = function Google -> "Google" | Facebook -> "Facebook"

let sites_of = function Google -> google | Facebook -> facebook

let latitudes op =
  List.map (fun s -> (Geo.Coord.lat s.pos, 1.0)) (sites_of op)

let continents_covered op =
  let present = Hashtbl.create 8 in
  List.iter
    (fun s -> Hashtbl.replace present (Geo.Region.continent_of_nearest s.pos) ())
    (sites_of op);
  List.filter (Hashtbl.mem present) Geo.Region.all_continents

let latitude_spread op =
  match sites_of op with
  | [] -> 0.0
  | first :: _ as sites ->
      let lats = List.map (fun s -> Geo.Coord.lat s.pos) sites in
      let lo = List.fold_left Float.min (Geo.Coord.lat first.pos) lats in
      let hi = List.fold_left Float.max (Geo.Coord.lat first.pos) lats in
      hi -. lo
