lib/datasets/datasets.ml: Caida Cities Datacenters Dns_roots Intertubes Itu Ixp Population Submarine
