lib/datasets/caida.mli: Geo
