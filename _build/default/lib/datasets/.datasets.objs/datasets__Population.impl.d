lib/datasets/population.ml: Array Float List Rng
