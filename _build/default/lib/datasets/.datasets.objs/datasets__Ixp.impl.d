lib/datasets/ixp.ml: Array Cities Float Geo Printf Rng
