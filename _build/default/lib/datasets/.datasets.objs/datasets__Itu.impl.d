lib/datasets/itu.ml: Array Cities Float Geo Hashtbl Infra Int List Printf Rng
