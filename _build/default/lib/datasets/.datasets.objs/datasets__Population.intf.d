lib/datasets/population.mli: Rng
