lib/datasets/datacenters.mli: Geo
