lib/datasets/datacenters.ml: Float Geo Hashtbl List
