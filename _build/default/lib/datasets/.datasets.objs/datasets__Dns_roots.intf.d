lib/datasets/dns_roots.mli: Geo
