lib/datasets/cities.mli: Geo Rng
