lib/datasets/caida.ml: Array Cities Float Geo Int List Rng
