lib/datasets/intertubes.mli: Infra
