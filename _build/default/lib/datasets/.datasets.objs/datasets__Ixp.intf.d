lib/datasets/ixp.mli: Geo
