lib/datasets/itu.mli: Infra
