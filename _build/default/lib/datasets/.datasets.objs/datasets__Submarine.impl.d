lib/datasets/submarine.ml: Array Cities Float Geo Hashtbl Infra Int List Netgraph Printf Queue Rng
