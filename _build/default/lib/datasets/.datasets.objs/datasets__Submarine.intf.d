lib/datasets/submarine.mli: Infra
