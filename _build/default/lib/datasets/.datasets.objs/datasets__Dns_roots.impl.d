lib/datasets/dns_roots.ml: Array Cities Float Geo Hashtbl Int List Option Rng
