lib/datasets/cities.ml: Array Float Geo Hashtbl Lazy List Rng
