(** Gridded world population, reduced to its latitude marginal.

    Substitutes NASA SEDAC GPWv4 (DESIGN.md §1): the paper's Figures 3 and
    4 only consume population as a function of latitude, so we embed the
    10°-band shares of the 2020 gridded population (normalized) and
    interpolate.  Headline property preserved: ≈ 16% of the world
    population lives above |40°|. *)

val total_population : float
(** 7.8e9 (2020). *)

val band_shares : (float * float * float) list
(** [(lat_lo, lat_hi, share)] with shares summing to 1. *)

val share_between : lat_lo:float -> lat_hi:float -> float
(** Population share in a latitude interval (linear interpolation within
    the embedded bands).  @raise Invalid_argument if [lat_hi < lat_lo]. *)

val fraction_above : float -> float
(** [fraction_above t] is the share living above |latitude| [t]. *)

val latitude_weights : bin_deg:float -> (float * float) list
(** [(band-centre latitude, weight)] pairs suitable for
    {!Geo.Latband.histogram} / [threshold_curve].  @raise Invalid_argument
    if [bin_deg] does not divide 180. *)

val sample_latitude : Rng.t -> float
(** Random latitude distributed like the world population. *)
