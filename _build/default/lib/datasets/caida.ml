type asys = {
  asn : int;
  home : Geo.Coord.t;
  router_count : int;
  router_lats : float array;
  spread_deg : float;
}

let target_ases = 61448

(* Internet infrastructure is over-represented at high latitudes relative
   to population (the paper's central skew): AS home cities are drawn with
   a continent weight favouring North America and Europe. *)
let continent_weight =
  let open Geo.Region in
  function
  | Europe -> 4.1
  | North_america -> 3.2
  | Asia -> 0.65
  | Oceania -> 1.6
  | South_america -> 0.9
  | Africa -> 0.45
  | Antarctica -> 0.0

(* Lognormal spread calibrated on the paper's quantiles:
   median 1.723 deg -> mu = ln 1.723; p90 18.263 -> sigma =
   (ln 18.263 - ln 1.723) / 1.2816. *)
let spread_mu = log 1.723
let spread_sigma = (log 18.263 -. spread_mu) /. 1.2816

let sample_router_count rng =
  (* Zipf-like: most ASes are tiny, a few are huge.  Scaled so that the
     synthetic universe holds ~0.75 M routers for 61k ASes (the real 46 M
     scaled by ~1/60). *)
  let x = Rng.pareto rng ~xmin:1.0 ~alpha:1.45 in
  Int.max 1 (Int.min 20000 (int_of_float x))

let build ?(seed = 42) ?(ases = target_ases) () =
  if ases <= 0 then invalid_arg "Caida.build: non-positive AS count";
  let rng = Rng.create seed in
  let weights =
    Array.map
      (fun c ->
        (c, Float.max 0.05 c.Cities.population_m *. continent_weight c.Cities.continent))
      Cities.all
  in
  Array.init ases (fun i ->
      let asn = i + 1 in
      let home_city = Rng.weighted_choice rng weights in
      let home = home_city.Cities.pos in
      let spread_target = Rng.lognormal rng ~mu:spread_mu ~sigma:spread_sigma in
      let router_count = sample_router_count rng in
      (* Sample at most 64 router latitudes per AS; reach/spread statistics
         stabilize long before that.  The AS's geographic footprint is the
         latitude band [home ± spread/2]; the two extreme sites are always
         materialized so the realized spread matches the calibrated
         lognormal draw. *)
      let sample_n = Int.max 2 (Int.min 64 router_count) in
      let clamp l = Float.max (-89.0) (Float.min 89.0 l) in
      let half = spread_target /. 2.0 in
      let router_lats =
        Array.init sample_n (fun j ->
            if j = 0 then clamp (Geo.Coord.lat home -. half)
            else if j = 1 then clamp (Geo.Coord.lat home +. half)
            else clamp (Geo.Coord.lat home +. Rng.uniform rng (-.half) half))
      in
      let lo = Array.fold_left Float.min router_lats.(0) router_lats in
      let hi = Array.fold_left Float.max router_lats.(0) router_lats in
      { asn; home; router_count; router_lats; spread_deg = hi -. lo })

let router_latitudes ases =
  let total = Array.fold_left (fun acc a -> acc + Array.length a.router_lats) 0 ases in
  let out = Array.make total 0.0 in
  let k = ref 0 in
  Array.iter
    (fun a ->
      Array.iter
        (fun l ->
          out.(!k) <- l;
          incr k)
        a.router_lats)
    ases;
  out

let reach_above ases ~threshold =
  if Array.length ases = 0 then 0.0
  else
    let n =
      Array.fold_left
        (fun acc a ->
          if Array.exists (fun l -> Float.abs l > threshold) a.router_lats then acc + 1
          else acc)
        0 ases
    in
    float_of_int n /. float_of_int (Array.length ases)

let spread_cdf ases =
  let spreads = Array.map (fun a -> a.spread_deg) ases in
  Array.sort Float.compare spreads;
  let n = Array.length spreads in
  List.init n (fun i -> (spreads.(i), float_of_int (i + 1) /. float_of_int n))
