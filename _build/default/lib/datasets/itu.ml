let target_nodes = 11314
let target_links = 11737

(* Land-fiber nodes cluster around metros: each gazetteer city seeds a
   cloud of towns whose radius grows with metro population.  Links form a
   near-neighbour mesh, giving the short-haul-dominated length profile of
   the ITU map. *)

let build ?(seed = 42) ?(scale = 1.0) () =
  if scale <= 0.0 || scale > 1.0 then invalid_arg "Itu.build: scale outside (0, 1]";
  let n_target = Int.max 50 (int_of_float (float_of_int target_nodes *. scale)) in
  let l_target = Int.max 50 (int_of_float (float_of_int target_links *. scale)) in
  let rng = Rng.create seed in
  (* Scaled-down networks seed from the biggest metros only, so the
     town-cloud density per metro (and with it the short-link profile)
     stays comparable to the full-scale map. *)
  let cities =
    let by_pop = Cities.by_population () in
    Array.sub by_pop 0 (Int.min (Array.length by_pop) (Int.max 30 (n_target / 2)))
  in
  let weights =
    Array.map (fun c -> (c, Float.max 0.05 c.Cities.population_m)) cities
  in
  let nodes = ref [] in
  let n_nodes = ref 0 in
  let add_node ~name ~country pos =
    let id = !n_nodes in
    nodes := { Infra.Network.id; name; country; pos } :: !nodes;
    incr n_nodes;
    id
  in
  (* Every gazetteer city gets a node; the rest of the budget goes to
     satellite towns. *)
  Array.iter
    (fun c -> ignore (add_node ~name:c.Cities.name ~country:c.Cities.country c.Cities.pos))
    cities;
  while !n_nodes < n_target do
    let c = Rng.weighted_choice rng weights in
    let spread = 0.30 +. (0.13 *. sqrt c.Cities.population_m) in
    let dlat = Rng.normal rng ~mu:0.0 ~sigma:spread in
    let dlon = Rng.normal rng ~mu:0.0 ~sigma:spread in
    let lat = Float.max (-65.0) (Float.min 72.0 (Geo.Coord.lat c.Cities.pos +. dlat)) in
    let lon = Geo.Coord.lon c.Cities.pos +. dlon in
    ignore
      (add_node
         ~name:(Printf.sprintf "%s town-%d" c.Cities.name !n_nodes)
         ~country:c.Cities.country
         (Geo.Coord.make ~lat ~lon))
  done;
  let node_arr = Array.of_list (List.rev !nodes) in
  let pos_of i = node_arr.(i).Infra.Network.pos in
  let index =
    Geo.Grid_index.of_list
      ~cell_deg:2.0
      (Array.to_list (Array.mapi (fun i n -> (n.Infra.Network.pos, i)) node_arr))
  in
  let cables = ref [] in
  let n_cables = ref 0 in
  let seen_pairs = Hashtbl.create 4096 in
  let add_link a b =
    let key = (Int.min a b, Int.max a b) in
    if a <> b && not (Hashtbl.mem seen_pairs key) && !n_cables < l_target then begin
      Hashtbl.replace seen_pairs key ();
      let gc = Geo.Distance.haversine_km (pos_of a) (pos_of b) in
      cables :=
        Infra.Cable.make ~id:!n_cables
          ~name:(Printf.sprintf "itu-link-%d" !n_cables)
          ~kind:Infra.Cable.Land_fiber
          ~landings:[ (a, pos_of a); (b, pos_of b) ]
          ~length_km:(Float.max 5.0 (gc *. 1.3))
          ()
        :: !cables;
      incr n_cables
    end
  in
  let nearest_k i k =
    let rec gather radius =
      let hits =
        Geo.Grid_index.within_km index (pos_of i) ~radius_km:radius
        |> List.filter (fun (_, j, _) -> j <> i)
      in
      if List.length hits < k && radius < 4000.0 then gather (radius *. 1.9)
      else
        List.sort (fun (_, _, d1) (_, _, d2) -> Float.compare d1 d2) hits
        |> List.filteri (fun idx _ -> idx < k)
        |> List.map (fun (_, j, _) -> j)
    in
    gather 120.0
  in
  (* Local mesh: each node joins its nearest neighbour (mostly sub-150 km
     links).  The budget remainder becomes inter-city trunks. *)
  Array.iteri
    (fun i _ -> if !n_cables < l_target then List.iter (add_link i) (nearest_k i 1))
    node_arr;
  let guard = ref 0 in
  let n_all = Array.length node_arr in
  while !n_cables < l_target && !guard < 400000 do
    incr guard;
    let a = Rng.int rng n_all in
    let candidates =
      Geo.Grid_index.within_km index (pos_of a) ~radius_km:250.0
      |> List.filter (fun (_, j, d) -> j <> a && d > 40.0)
    in
    match candidates with
    | [] -> ()
    | hits ->
        let _, b, _ = Rng.choice rng (Array.of_list hits) in
        add_link a b
  done;
  Infra.Network.create ~name:"itu" ~nodes:(List.rev !nodes) ~cables:(List.rev !cables)
