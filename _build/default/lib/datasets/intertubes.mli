(** US long-haul fiber network (substitute for the Intertubes dataset,
    Durairajan et al. 2015).

    273 nodes and 542 conduit links.  Nodes are the US long-haul cities of
    the gazetteer plus conduit junctions placed on the corridors between
    them; links follow the published topology style: conduits run along
    the road system, so link length is the great-circle distance times a
    road-detour factor of ≈ 1.25 (replacing the paper's Google-Maps
    driving distances). *)

val target_nodes : int
(** 273. *)

val target_links : int
(** 542. *)

val road_factor : float
(** 1.25. *)

val build : ?seed:int -> unit -> Infra.Network.t
(** Deterministic synthetic US long-haul network. *)
