(** Global terrestrial fiber network (substitute for the private ITU
    transmission map).

    11,314 nodes and 11,737 fiber links.  Nodes are placed around the
    gazetteer's cities (population-weighted within each continent);
    links form regional chains and meshes with the short-link-dominated
    length distribution the paper reports (most links need no repeater at
    150 km; mean 0.63 repeaters per link at 150 km). *)

val target_nodes : int
(** 11,314. *)

val target_links : int
(** 11,737. *)

val build : ?seed:int -> ?scale:float -> unit -> Infra.Network.t
(** Deterministic synthetic ITU-style network.  [scale] (default 1.0)
    multiplies both targets, letting tests run on a 0.1× network.
    @raise Invalid_argument if [scale <= 0.] or [scale > 1.]. *)
