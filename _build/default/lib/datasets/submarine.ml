let target_cables = 470
let target_landing_points = 1241

(* (name, landing chain, stated length km).  Chains are geographic orders;
   every name must exist in [Cities].  Lengths are the operators' stated
   route lengths. *)
let real_cables =
  [
    (* --- North Atlantic: US/Canada <-> Europe --- *)
    ("TAT-14", [ "Manasquan"; "Tuckerton"; "Bude"; "St. Hilaire"; "Katwijk"; "Norden"; "Esbjerg" ], 15428.);
    ("Atlantic Crossing-1", [ "Shirley NY"; "Bude"; "Sylt"; "Amsterdam" ], 14301.);
    ("AC-2 Yellow", [ "New York"; "Bude" ], 7001.);
    ("Apollo North", [ "Shirley NY"; "Bude" ], 6300.);
    ("Apollo South", [ "Manasquan"; "Lannion" ], 6600.);
    ("FLAG Atlantic-1", [ "New York"; "Brest"; "Bude" ], 14500.);
    ("Grace Hopper", [ "Shirley NY"; "Bude"; "Bilbao" ], 7191.);
    ("Dunant", [ "Virginia Beach"; "St. Hilaire" ], 6400.);
    ("MAREA", [ "Virginia Beach"; "Sopelana" ], 6605.);
    ("TGN-Atlantic", [ "Wall Township"; "Highbridge" ], 13000.);
    ("GTT Express", [ "Halifax"; "Cork"; "Southport" ], 12200.);
    ("AEConnect-1", [ "Shirley NY"; "Killala" ], 5536.);
    ("Havfrue", [ "Wall Township"; "Killala"; "Kristiansand"; "Esbjerg" ], 7200.);
    ("Columbus-III", [ "Hollywood FL"; "Conil"; "Sesimbra" ], 9833.);
    (* --- US <-> Latin America / Caribbean --- *)
    ("Americas-II", [ "Hollywood FL"; "San Juan PR"; "Charlotte Amalie"; "Willemstad"; "Camuri"; "Cayenne"; "Fortaleza" ], 8373.);
    ("SAm-1", [ "Boca Raton"; "San Juan PR"; "Fortaleza"; "Santos"; "Las Toninas"; "Valparaiso"; "Lurin"; "Punta Carnero"; "Barranquilla" ], 25000.);
    ("GlobeNet", [ "Boca Raton"; "Fortaleza"; "Rio de Janeiro"; "Maldonado"; "Buenos Aires" ], 23500.);
    ("Monet", [ "Boca Raton"; "Fortaleza"; "Santos" ], 10556.);
    ("BRUSA", [ "Virginia Beach"; "San Juan PR"; "Fortaleza"; "Rio de Janeiro" ], 11000.);
    ("AMX-1", [ "Miami"; "Cancun"; "Barranquilla"; "Fortaleza"; "Rio de Janeiro" ], 17800.);
    ("ARCOS-1", [ "Miami"; "Nassau"; "Santo Domingo"; "San Juan PR"; "Cartagena"; "Colon"; "Puerto Limon"; "Cancun" ], 8600.);
    ("Maya-1", [ "Hollywood FL"; "Cancun"; "Puerto Limon"; "Colon" ], 4400.);
    ("Bahamas-2", [ "West Palm Beach"; "Nassau" ], 470.);
    ("PCCS", [ "Jacksonville Beach"; "San Juan PR"; "Cartagena"; "Colon"; "Punta Carnero" ], 6000.);
    ("Curie", [ "Hermosa Beach"; "Valparaiso" ], 10476.);
    ("Pan-American", [ "Charlotte Amalie"; "Willemstad"; "Barranquilla"; "Colon"; "Punta Carnero"; "Lurin"; "Arica" ], 7050.);
    ("South Pacific Cable", [ "Lurin"; "Arica"; "Valparaiso" ], 2700.);
    ("Tannat", [ "Santos"; "Maldonado"; "Las Toninas" ], 2000.);
    ("Junior", [ "Rio de Janeiro"; "Santos"; "Praia Grande" ], 390.);
    ("Malbec", [ "Las Toninas"; "Buenos Aires"; "Praia Grande" ], 2600.);
    (* --- Brazil / South America <-> Europe & Africa --- *)
    ("Ellalink", [ "Fortaleza"; "Praia"; "Sines" ], 6200.);
    ("Atlantis-2", [ "Las Toninas"; "Rio de Janeiro"; "Fortaleza"; "Praia"; "Dakar"; "Lisbon"; "Conil" ], 12000.);
    ("SACS", [ "Fortaleza"; "Sangano" ], 6165.);
    ("SAIL", [ "Fortaleza"; "Kribi" ], 6000.);
    (* --- Transpacific --- *)
    ("Southern Cross", [ "Sydney"; "Takapuna"; "Suva"; "Honolulu"; "Morro Bay" ], 30500.);
    ("Southern Cross NEXT", [ "Sydney"; "Whenuapai"; "Suva"; "Tarawa"; "Honolulu"; "Hermosa Beach" ], 13700.);
    ("Hawaiki", [ "Sydney"; "Whenuapai"; "Pago Pago"; "Honolulu"; "Pacific City" ], 15000.);
    ("Telstra Endeavour", [ "Sydney"; "Honolulu" ], 9125.);
    ("Asia-America Gateway", [ "San Luis Obispo"; "Honolulu"; "Hagatna"; "Manila"; "Ho Chi Minh City"; "Sri Racha"; "Mersing"; "Singapore" ], 20000.);
    ("SEA-US", [ "Hermosa Beach"; "Honolulu"; "Hagatna"; "Davao"; "Manado" ], 14500.);
    ("Unity", [ "Hermosa Beach"; "Chikura" ], 9620.);
    ("FASTER", [ "Bandon"; "Chikura"; "Shima" ], 11629.);
    ("PLCN", [ "Los Angeles"; "Toucheng"; "Baler" ], 12971.);
    ("JUPITER", [ "Hermosa Beach"; "Minamiboso"; "Chikura" ], 14000.);
    ("Trans-Pacific Express", [ "Nedonna Beach"; "Keoje"; "Toucheng"; "Chongming"; "Shantou" ], 17700.);
    ("New Cross Pacific", [ "Pacific City"; "Chongming"; "Busan"; "Toucheng" ], 13618.);
    ("TGN-Pacific", [ "Portland"; "Shima"; "Hagatna" ], 22300.);
    ("PC-1", [ "Grover Beach"; "Seattle"; "Shima"; "Kitaibaraki" ], 21000.);
    ("Japan-US CN", [ "Manchester CA"; "Morro Bay"; "Minamiboso"; "Kitaibaraki" ], 21000.);
    ("Honotua", [ "Papeete"; "Honolulu" ], 3900.);
    (* --- Hawaii / Alaska --- *)
    ("Hawaii Inter-Island", [ "Lihue"; "Honolulu"; "Kahului"; "Hilo" ], 600.);
    ("Paniolo", [ "Honolulu"; "Kahului" ], 250.);
    ("ASH", [ "Pago Pago"; "Honolulu" ], 4300.);
    ("Alaska United East", [ "Anchorage"; "Juneau"; "Seattle" ], 3500.);
    ("AKORN", [ "Anchorage"; "Nedonna Beach" ], 3200.);
    ("Alaska Panhandle", [ "Anchorage"; "Juneau"; "Ketchikan" ], 1500.);
    ("Ketchikan-Prince Rupert", [ "Ketchikan"; "Prince Rupert" ], 140.);
    (* --- Intra-Europe shorts --- *)
    ("CeltixConnect", [ "Southport"; "Dublin" ], 131.);
    ("ESAT-1", [ "Dublin"; "Southport" ], 200.);
    ("Circe North", [ "Lowestoft"; "Katwijk" ], 208.);
    ("Concerto", [ "Lowestoft"; "Ostend" ], 212.);
    ("Channel Crossing", [ "Goonhilly"; "Lannion" ], 180.);
    ("UK-Germany 6", [ "Lowestoft"; "Norden" ], 500.);
    ("NO-UK", [ "Edinburgh"; "Kristiansand" ], 700.);
    ("FARICE-1", [ "Edinburgh"; "Torshavn"; "Reykjavik" ], 1400.);
    ("DANICE", [ "Reykjavik"; "Esbjerg" ], 2300.);
    ("SHEFA-2", [ "Torshavn"; "Edinburgh" ], 1000.);
    ("Skagerrak", [ "Esbjerg"; "Kristiansand" ], 300.);
    ("COBRA", [ "Eemshaven"; "Esbjerg" ], 325.);
    ("Baltic Sea Cable", [ "Helsinki"; "Tallinn" ], 80.);
    ("FEC", [ "Stockholm"; "Helsinki" ], 400.);
    ("Baltica", [ "Kolobrzeg"; "Malmo" ], 250.);
    ("Latvia-Sweden", [ "Ventspils"; "Stockholm" ], 380.);
    ("BCS East-West", [ "Klaipeda"; "Gothenburg" ], 700.);
    ("Celtic Interconnector", [ "Cork"; "Brest" ], 570.);
    ("Pencan", [ "Conil"; "Casablanca" ], 320.);
    ("BALALINK", [ "Barcelona"; "Valencia" ], 350.);
    ("Tyrrhenian Link", [ "Genoa"; "Palermo" ], 970.);
    ("Svalbard?No-Mainland", [ "Tromso"; "Bergen" ], 1400.);
    (* --- Mediterranean / Europe <-> Asia trunks --- *)
    ("SEA-ME-WE 3",
     [ "Norden"; "Goonhilly"; "Penmarch"; "Sesimbra"; "Tangier"; "Marseille";
       "Mazara del Vallo"; "Chania"; "Alexandria"; "Suez"; "Jeddah"; "Djibouti";
       "Muscat"; "Karachi"; "Mumbai"; "Colombo"; "Penang"; "Singapore";
       "Jakarta"; "Perth"; "Da Nang"; "Hong Kong"; "Shanghai"; "Keoje"; "Tokyo" ],
     39000.);
    ("SEA-ME-WE 4",
     [ "Marseille"; "Annaba"; "Bizerte"; "Palermo"; "Alexandria"; "Suez";
       "Jeddah"; "Djibouti"; "Karachi"; "Mumbai"; "Colombo"; "Chennai";
       "Penang"; "Singapore" ],
     18800.);
    ("SEA-ME-WE 5",
     [ "Marseille"; "Catania"; "Chania"; "Alexandria"; "Suez"; "Jeddah";
       "Djibouti"; "Karachi"; "Mumbai"; "Colombo"; "Matara"; "Cox's Bazar";
       "Yangon"; "Songkhla"; "Penang"; "Singapore" ],
     20000.);
    ("AAE-1",
     [ "Marseille"; "Bari"; "Chania"; "Alexandria"; "Suez"; "Jeddah";
       "Djibouti"; "Salalah"; "Fujairah"; "Karachi"; "Mumbai"; "Yangon";
       "Satun"; "Penang"; "Singapore"; "Sihanoukville"; "Vung Tau"; "Hong Kong" ],
     25000.);
    ("FLAG Europe-Asia",
     [ "Goonhilly"; "Conil"; "Palermo"; "Alexandria"; "Suez"; "Aqaba";
       "Jeddah"; "Fujairah"; "Mumbai"; "Penang"; "Songkhla"; "Lantau Island";
       "Shanghai"; "Keoje"; "Chikura" ],
     28000.);
    ("IMEWE", [ "Marseille"; "Catania"; "Alexandria"; "Tripoli LB"; "Jeddah"; "Fujairah"; "Karachi"; "Mumbai" ], 12091.);
    ("EIG", [ "Bude"; "Lisbon"; "Conil"; "Marseille"; "Tripoli"; "Alexandria"; "Jeddah"; "Djibouti"; "Fujairah"; "Mumbai" ], 15000.);
    ("MedNautilus", [ "Athens"; "Chania"; "Tel Aviv"; "Haifa"; "Istanbul" ], 7000.);
    ("Lev Submarine System", [ "Tel Aviv"; "Marmaris" ], 900.);
    ("Turcyos", [ "Marmaris"; "Tripoli LB" ], 550.);
    ("Italy-Greece", [ "Bari"; "Thessaloniki" ], 940.);
    ("Italy-Libya", [ "Mazara del Vallo"; "Tripoli" ], 550.);
    ("Hannibal", [ "Mazara del Vallo"; "Bizerte" ], 170.);
    ("Didon", [ "Marseille"; "Tunis" ], 900.);
    ("Alval", [ "Valencia"; "Algiers" ], 560.);
    ("Orval", [ "Valencia"; "Oran" ], 380.);
    ("Black Sea: KAFOS", [ "Istanbul"; "Varna"; "Constanta" ], 500.);
    ("Caucasus Cable System", [ "Poti"; "Varna" ], 1200.);
    (* --- Europe <-> West Africa --- *)
    ("SAT-3/WASC", [ "Sesimbra"; "Conil"; "Dakar"; "Abidjan"; "Accra"; "Cotonou"; "Lagos"; "Libreville"; "Luanda"; "Melkbosstrand" ], 14350.);
    ("WACS", [ "Highbridge"; "Sesimbra"; "Praia"; "Dakar"; "Abidjan"; "Accra"; "Lome"; "Lagos"; "Douala"; "Libreville"; "Pointe-Noire"; "Muanda"; "Luanda"; "Swakopmund"; "Yzerfontein" ], 14530.);
    ("ACE", [ "Penmarch"; "Lisbon"; "Casablanca"; "Dakar"; "Banjul"; "Bissau"; "Conakry"; "Freetown"; "Monrovia"; "Abidjan"; "Accra"; "Lagos"; "Kribi"; "Libreville"; "Bata"; "Sangano" ], 17000.);
    ("MainOne", [ "Sesimbra"; "Accra"; "Lagos" ], 7000.);
    ("Glo-1", [ "Bude"; "Lagos"; "Accra" ], 9800.);
    ("Equiano", [ "Sesimbra"; "Lome"; "Lagos"; "Swakopmund"; "Melkbosstrand" ], 12000.);
    ("Atlas Offshore", [ "Marseille"; "Asilah" ], 1634.);
    ("Canalink", [ "Conil"; "Nouakchott"; "Dakar" ], 2600.);
    (* --- East Africa / Indian Ocean --- *)
    ("EASSy", [ "Port Sudan"; "Djibouti"; "Berbera"; "Mogadishu"; "Mombasa"; "Dar es Salaam"; "Toamasina"; "Nacala"; "Maputo"; "Mtunzini" ], 10500.);
    ("SEACOM", [ "Marseille"; "Zafarana"; "Djibouti"; "Mombasa"; "Dar es Salaam"; "Maputo"; "Mtunzini" ], 15000.);
    ("TEAMS", [ "Fujairah"; "Mombasa" ], 4500.);
    ("DARE1", [ "Djibouti"; "Berbera"; "Mogadishu"; "Mombasa" ], 4747.);
    ("LION2", [ "Port Louis"; "Saint-Denis"; "Toamasina"; "Mombasa" ], 3000.);
    ("SAFE", [ "Melkbosstrand"; "Mtunzini"; "Saint-Denis"; "Port Louis"; "Kochi"; "Penang" ], 13500.);
    ("METISS", [ "Port Louis"; "Saint-Denis"; "Mtunzini" ], 3200.);
    ("Comoros Domestic", [ "Moroni"; "Dar es Salaam" ], 400.);
    ("SEAS", [ "Victoria"; "Dar es Salaam" ], 1900.);
    (* --- Middle East / South Asia --- *)
    ("FALCON", [ "Fujairah"; "Manama"; "Doha"; "Kuwait City"; "Al Khobar"; "Bandar Abbas"; "Karachi"; "Mumbai" ], 10300.);
    ("i2i", [ "Chennai"; "Singapore" ], 3175.);
    ("TIC", [ "Chennai"; "Singapore" ], 3250.);
    ("Bay of Bengal Gateway", [ "Muscat"; "Fujairah"; "Mumbai"; "Colombo"; "Chennai"; "Penang"; "Singapore" ], 8100.);
    ("Gulf Bridge International", [ "Fujairah"; "Doha"; "Manama"; "Al Khobar"; "Kuwait City"; "Al Faw" ], 1400.);
    ("OMRAN/EPEG", [ "Muscat"; "Chabahar" ], 400.);
    ("India-Lanka", [ "Tuticorin"; "Colombo" ], 320.);
    ("Dhiraagu-SLT", [ "Male"; "Colombo" ], 840.);
    ("SMW5-Bangladesh spur", [ "Matara"; "Cox's Bazar" ], 2100.);
    (* --- Intra-Asia --- *)
    ("APG", [ "Singapore"; "Kuantan"; "Vung Tau"; "Hong Kong"; "Shantou"; "Toucheng"; "Chongming"; "Busan"; "Chikura" ], 10400.);
    ("APCN-2", [ "Singapore"; "Kuantan"; "Hong Kong"; "Shantou"; "Toucheng"; "Chongming"; "Busan"; "Kitaibaraki"; "Chikura" ], 19000.);
    ("EAC-C2C", [ "Singapore"; "Hong Kong"; "Batangas"; "Toucheng"; "Fangshan"; "Shanghai"; "Busan"; "Fukuoka"; "Chikura" ], 36800.);
    ("SJC", [ "Singapore"; "Batam"; "Bandar Seri Begawan"; "Batangas"; "Hong Kong"; "Shantou"; "Toucheng"; "Chikura" ], 8900.);
    ("Matrix", [ "Singapore"; "Jakarta" ], 1055.);
    ("IGG", [ "Jakarta"; "Surabaya"; "Makassar"; "Manado" ], 5300.);
    ("Palapa Ring", [ "Jakarta"; "Surabaya"; "Denpasar"; "Makassar" ], 4000.);
    ("SEAX-1", [ "Mersing"; "Batam"; "Singapore" ], 250.);
    ("BDM", [ "Penang"; "Medan" ], 300.);
    ("DAMAI", [ "Kota Kinabalu"; "Kuching"; "Mersing" ], 1800.);
    ("TSE-1", [ "Songkhla"; "Mersing" ], 1100.);
    ("MCT", [ "Sihanoukville"; "Kuantan"; "Songkhla" ], 1300.);
    ("Korea-Japan CN", [ "Busan"; "Fukuoka" ], 280.);
    ("HK-Taiwan Express", [ "Hong Kong"; "Fangshan" ], 800.);
    ("TPKM3", [ "Toucheng"; "Naha" ], 700.);
    ("Okinawa Trunk", [ "Naha"; "Fukuoka" ], 900.);
    ("RJCN", [ "Nakhodka"; "Kitaibaraki" ], 1800.);
    ("Sakhalin-Primorye", [ "Yuzhno-Sakhalinsk"; "Nakhodka" ], 900.);
    ("Kamchatka Link", [ "Yuzhno-Sakhalinsk"; "Magadan"; "Petropavlovsk-Kamchatsky" ], 2200.);
    ("HSCS Hokkaido-Sakhalin", [ "Sapporo"; "Yuzhno-Sakhalinsk" ], 570.);
    ("Taiwan Strait Express", [ "Xiamen"; "Toucheng" ], 270.);
    ("Hainan-HK?GuangdongLink", [ "Macau"; "Hong Kong" ], 70.);
    ("China-Korea CKC", [ "Qingdao"; "Keoje" ], 549.);
    ("CJFON", [ "Chongming"; "Keoje"; "Kitaibaraki" ], 1600.);
    (* --- Oceania --- *)
    ("Australia-Singapore Cable", [ "Perth"; "Jakarta"; "Singapore" ], 4600.);
    ("Indigo West", [ "Perth"; "Jakarta"; "Singapore" ], 4600.);
    ("Indigo Central", [ "Perth"; "Adelaide"; "Sydney" ], 4600.);
    ("AJC", [ "Sydney"; "Hagatna" ], 12700.);
    ("PPC-1", [ "Sydney"; "Madang"; "Hagatna" ], 6900.);
    ("APNG-2", [ "Sydney"; "Port Moresby" ], 1800.);
    ("Coral Sea Cable", [ "Sydney"; "Port Moresby"; "Honiara" ], 4700.);
    ("Tasman Global Access", [ "Auckland"; "Sydney" ], 2288.);
    ("Tasman-2", [ "Auckland"; "Sydney" ], 2300.);
    ("Interchange", [ "Port Vila"; "Suva" ], 1250.);
    ("Gondwana-1", [ "Noumea"; "Sydney" ], 2100.);
    ("Tonga Cable", [ "Nuku'alofa"; "Suva" ], 827.);
    ("Manatua", [ "Apia"; "Rarotonga"; "Papeete" ], 3600.);
    ("Tui-Samoa", [ "Suva"; "Apia" ], 1470.);
    ("ICN2/Kumul", [ "Port Moresby"; "Madang" ], 1100.);
    ("Bass Strait", [ "Melbourne"; "Hobart" ], 370.);
    ("Darwin-Jakarta?DJSC", [ "Darwin"; "Jakarta" ], 4500.);
    ("Micronesia Trunk", [ "Hagatna"; "Yap"; "Koror" ], 1200.);
    ("HANTRU-1", [ "Hagatna"; "Chuuk"; "Pohnpei"; "Majuro" ], 2900.);
    ("Marshalls-Kiribati", [ "Majuro"; "Tarawa" ], 750.);
    ("Norfolk Link", [ "Sydney"; "Norfolk Island" ], 1700.);
    ("Fiji-Tonga Extension", [ "Suva"; "Nadi" ], 250.);
  ]

(* Weight used when distributing satellite landing stations across coastal
   cities: population times a continent factor that reproduces the
   dataset's concentration in the North Atlantic (31% of endpoints above
   |40 deg|). *)
let continent_weight =
  let open Geo.Region in
  function
  | Europe -> 3.6
  | North_america -> 2.2
  | Asia -> 0.8
  | Oceania -> 1.5
  | South_america -> 0.8
  | Africa -> 0.7
  | Antarctica -> 0.0

type builder = {
  mutable nodes : Infra.Network.node list;  (* reversed *)
  mutable n_nodes : int;
  name_tbl : (string, int) Hashtbl.t;
}

let add_node b ~name ~country pos =
  let id = b.n_nodes in
  b.nodes <- { Infra.Network.id; name; country; pos } :: b.nodes;
  b.n_nodes <- id + 1;
  Hashtbl.replace b.name_tbl name id;
  id

let hub_id b city_name =
  match Hashtbl.find_opt b.name_tbl city_name with
  | Some id -> id
  | None ->
      let c = Cities.find city_name in
      add_node b ~name:c.Cities.name ~country:c.Cities.country c.Cities.pos

let build ?(seed = 42) () =
  let rng = Rng.create seed in
  let b = { nodes = []; n_nodes = 0; name_tbl = Hashtbl.create 512 } in
  (* 1. Hub nodes for every real-cable landing city, in order of appearance. *)
  List.iter (fun (_, chain, _) -> List.iter (fun city -> ignore (hub_id b city)) chain)
    real_cables;
  (* 2. Real cables. *)
  let cables = ref [] in
  let n_cables = ref 0 in
  let node_pos = Hashtbl.create 1024 in
  let pos_of id =
    match Hashtbl.find_opt node_pos id with
    | Some p -> p
    | None ->
        let n = List.find (fun n -> n.Infra.Network.id = id) b.nodes in
        Hashtbl.replace node_pos id n.Infra.Network.pos;
        n.Infra.Network.pos
  in
  let add_cable ~name ~landings ~length_km =
    let id = !n_cables in
    let landing_pairs = List.map (fun nid -> (nid, pos_of nid)) landings in
    cables := Infra.Cable.make ~id ~name ~kind:Infra.Cable.Submarine
                ~landings:landing_pairs ?length_km ()
              :: !cables;
    incr n_cables
  in
  List.iter
    (fun (name, chain, length) ->
      let landings = List.map (hub_id b) chain in
      (* Deduplicate accidental repeats while preserving order. *)
      let seen = Hashtbl.create 8 in
      let landings =
        List.filter
          (fun id ->
            if Hashtbl.mem seen id then false
            else begin
              Hashtbl.add seen id ();
              true
            end)
          landings
      in
      add_cable ~name ~landings ~length_km:(Some length))
    real_cables;
  (* 3. Satellite landing stations around coastal cities. *)
  let coastal = Cities.coastal_cities () in
  let weights =
    Array.map
      (fun c ->
        (c, Float.max 0.05 c.Cities.population_m *. continent_weight c.Cities.continent))
      coastal
  in
  let satellites = ref [] in
  while b.n_nodes < target_landing_points do
    let c = Rng.weighted_choice rng weights in
    let dlat = Rng.uniform rng (-1.1) 1.1 and dlon = Rng.uniform rng (-1.1) 1.1 in
    let lat = Float.max (-89.0) (Float.min 89.0 (Geo.Coord.lat c.Cities.pos +. dlat)) in
    let lon = Geo.Coord.lon c.Cities.pos +. dlon in
    let pos = Geo.Coord.make ~lat ~lon in
    let name = Printf.sprintf "%s LS-%d" c.Cities.name b.n_nodes in
    let id = add_node b ~name ~country:c.Cities.country pos in
    Hashtbl.replace node_pos id pos;
    satellites := id :: !satellites
  done;
  (* 4. Festoon chains: consume every satellite in short regional cables
     anchored at the nearest hub. *)
  let sat_index =
    Geo.Grid_index.of_list (List.map (fun id -> (pos_of id, id)) !satellites)
  in
  let used = Hashtbl.create 1024 in
  let hub_index =
    let hubs = Hashtbl.fold (fun name id acc -> (name, id) :: acc) b.name_tbl [] in
    (* Shanghai proper only terminates the >= 28,000 km trunks in the
       TeleGeography snapshot (the property behind the paper's Shanghai
       case study); metro festoons land at Chongming instead. *)
    let hub_only =
      List.filter (fun (name, id) ->
          name <> "Shanghai" && not (List.mem id !satellites))
        hubs
    in
    Geo.Grid_index.of_list (List.map (fun (_, id) -> (pos_of id, id)) hub_only)
  in
  (* Next satellite for a festoon chain: a random unused landing within
     reach, preferring hops in the few-hundred-kilometre range typical of
     regional systems (this sets the dataset's median cable length). *)
  let next_chain_sat ~local pos =
    let min_hop = if local then 10.0 else 60.0 in
    let start_radius = if local then 90.0 else 650.0 in
    let rec search radius =
      let candidates =
        Geo.Grid_index.within_km sat_index pos ~radius_km:radius
        |> List.filter (fun (_, id, d) -> (not (Hashtbl.mem used id)) && d > min_hop)
      in
      match candidates with
      | [] -> if radius > 22000.0 then None else search (radius *. 2.0)
      | hits -> Some ((fun (_, id, _) -> id) (Rng.choice rng (Array.of_list hits)))
    in
    search start_radius
  in
  let remaining_sats = Queue.create () in
  List.iter (fun id -> Queue.add id remaining_sats) (List.rev !satellites);
  let unused_sats = ref (List.length !satellites) in
  let festoon_count = ref 0 in
  (* Reserve a few cable slots for the connectivity stitching pass. *)
  let stitch_reserve = 72 in
  while not (Queue.is_empty remaining_sats) do
    let start = Queue.pop remaining_sats in
    if not (Hashtbl.mem used start) then begin
      Hashtbl.replace used start ();
      decr unused_sats;
      (* Two festoon regimes: "local" systems joining landing stations of
         one metro area or island group (tens of km hops, often
         unrepeatered) and "regional" systems spanning neighbouring
         countries; the mix sets the dataset's median length.  The chain
         size adapts so that the satellites are consumed in exactly the
         cable budget left over after the real systems. *)
      let local = Rng.bernoulli rng ~p:0.58 in
      let chains_left = Int.max 1 (target_cables - stitch_reserve - !n_cables) in
      let desired =
        int_of_float
          (Float.ceil (float_of_int (!unused_sats + 1) /. float_of_int chains_left))
      in
      let jitter = Rng.int_in rng (-1) 1 in
      let target_len = Int.max 2 (Int.min 12 (desired + jitter)) in
      let chain = ref [ start ] in
      let cursor = ref (pos_of start) in
      let continue = ref true in
      while List.length !chain < target_len && !continue do
        match next_chain_sat ~local !cursor with
        | Some id ->
            Hashtbl.replace used id ();
            decr unused_sats;
            chain := id :: !chain;
            cursor := pos_of id
        | None -> continue := false
      done;
      (* Tie into the global network through the nearest hub. *)
      let chain =
        match Geo.Grid_index.nearest hub_index !cursor with
        | Some (_, hub, d) when (not (List.mem hub !chain)) && ((not local) || d < 110.0)
          ->
            hub :: !chain
        | _ -> !chain
      in
      if List.length chain >= 2 then begin
        incr festoon_count;
        let gc =
          Geo.Distance.path_length_km (List.map pos_of (List.rev chain))
        in
        add_cable
          ~name:(Printf.sprintf "Festoon-%d" !festoon_count)
          ~landings:(List.rev chain)
          ~length_km:(Some (Float.max 20.0 (gc *. 1.15)))
      end
    end
  done;
  (* 5. Stitch any disconnected components into the giant component so the
     baseline network is a single fabric (the real submarine graph is). *)
  let network_of () =
    Infra.Network.create ~name:"submarine" ~nodes:(List.rev b.nodes)
      ~cables:(List.rev !cables)
  in
  let rec stitch () =
    let net = network_of () in
    let g, _ = Infra.Network.to_graph net in
    match Netgraph.Traversal.connected_components g with
    | [] | [ _ ] -> ()
    | comps ->
        let giant =
          List.fold_left
            (fun best c -> if List.length c > List.length best then c else best)
            (List.hd comps) (List.tl comps)
        in
        let giant_tbl = Hashtbl.create 1024 in
        List.iter (fun n -> Hashtbl.replace giant_tbl n ()) giant;
        List.iter
          (fun comp ->
            match comp with
            | [] -> ()
            | first :: _ ->
                if not (Hashtbl.mem giant_tbl first) then begin
                  (* Link the component's first node to the nearest giant
                     member. *)
                  let shanghai = Hashtbl.find_opt b.name_tbl "Shanghai" in
                  let best, bd =
                    List.fold_left
                      (fun (bn, bd) cand ->
                        if shanghai = Some cand then (bn, bd)
                        else
                          let d =
                            Geo.Distance.haversine_km (pos_of first) (pos_of cand)
                          in
                          if d < bd then (cand, d) else (bn, bd))
                      (List.hd giant, Float.infinity)
                      giant
                  in
                  add_cable
                    ~name:(Printf.sprintf "Stitch-%d" !n_cables)
                    ~landings:[ first; best ]
                    ~length_km:(Some (Float.max 20.0 (bd *. 1.15)))
                end)
          comps;
        stitch ()
  in
  stitch ();
  (* 6. Fill to the target cable count with regional hub-to-hub systems. *)
  let hubs =
    Array.of_list
      (Hashtbl.fold
         (fun name id acc -> if name = "Shanghai" then acc else id :: acc)
         b.name_tbl [])
  in
  let guard = ref 0 in
  while !n_cables < target_cables && !guard < 100000 do
    incr guard;
    let a = Rng.choice rng hubs in
    let reach = Rng.lognormal rng ~mu:(log 1500.0) ~sigma:0.8 in
    let candidates =
      Geo.Grid_index.within_km hub_index (pos_of a) ~radius_km:reach
      |> List.filter (fun (_, id, _) -> id <> a)
    in
    match candidates with
    | [] -> ()
    | hits ->
        let _, bb, d =
          List.fold_left
            (fun ((_, _, bd) as best) ((_, _, dd) as hit) ->
              if Float.abs (dd -. reach) < Float.abs (bd -. reach) then hit else best)
            (List.hd hits) (List.tl hits)
        in
        if d > 30.0 then begin
          add_cable
            ~name:(Printf.sprintf "Regional-%d" !n_cables)
            ~landings:[ a; bb ]
            ~length_km:(Some (d *. 1.15))
        end
  done;
  network_of ()

let hub_node net city_name =
  let n = Infra.Network.nb_nodes net in
  let rec scan i =
    if i >= n then None
    else
      let node = Infra.Network.node net i in
      if node.Infra.Network.name = city_name then Some i else scan (i + 1)
  in
  scan 0

let nodes_in_country net country =
  let n = Infra.Network.nb_nodes net in
  let rec scan i acc =
    if i >= n then List.rev acc
    else
      let node = Infra.Network.node net i in
      scan (i + 1)
        (if node.Infra.Network.country = country then i :: acc else acc)
  in
  scan 0 []
