(** Submarine cable map (substitute for the TeleGeography dataset).

    ≈ 115 real major cable systems are embedded with their actual landing
    cities and stated lengths — these carry the long tail of the length
    distribution and all the country-level connectivity structure the
    paper's §4.3.4 case studies depend on (US–Europe trunks, Ellalink,
    Columbus-III, SEA-ME-WE 3, the Singapore hub, ...).  Synthetic festoon
    chains around coastal hubs fill the dataset out to the published
    counts: 470 cables and 1241 landing points, with the length CDF
    calibrated to the paper's quantiles (median ≈ 775 km, p99 ≈ 28,000 km,
    max 39,000 km). *)

val target_cables : int
(** 470. *)

val target_landing_points : int
(** 1241. *)

val real_cables : (string * string list * float) list
(** [(name, landing-city chain, stated length km)] for the embedded real
    systems.  City names resolve in {!Cities}. *)

val build : ?seed:int -> unit -> Infra.Network.t
(** Deterministic synthetic submarine network (default seed 42). *)

val hub_node : Infra.Network.t -> string -> int option
(** Node id of a real landing city by name ([None] for cities without a
    landing).  Satellite landing stations are named ["<city> LS-<k>"] and
    are not returned by this lookup. *)

val nodes_in_country : Infra.Network.t -> string -> int list
(** All landing nodes (hubs and satellites) in a country. *)
