(** Internet exchange points (substitute for the PCH IXP directory).

    1026 IXPs placed in gazetteer cities with the European/North-American
    concentration of the real directory (43% above |40°|, Fig. 4b). *)

type t = { name : string; city : string; pos : Geo.Coord.t }

val target_count : int
(** 1026. *)

val build : ?seed:int -> unit -> t array

val latitudes : t array -> (float * float) list
(** [(latitude, weight 1.)] pairs for the Fig. 4b curve. *)
