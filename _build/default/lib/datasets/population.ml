let total_population = 7.8e9

(* 10-degree-band shares of world population (GPWv4-2020-like marginal,
   normalized to 1).  Above |40| sums to ~0.16. *)
let band_shares =
  [
    (-60.0, -50.0, 0.0004);
    (-50.0, -40.0, 0.0034);
    (-40.0, -30.0, 0.0145);
    (-30.0, -20.0, 0.0255);
    (-20.0, -10.0, 0.0345);
    (-10.0, 0.0, 0.0590);
    (0.0, 10.0, 0.0835);
    (10.0, 20.0, 0.1375);
    (20.0, 30.0, 0.2750);
    (30.0, 40.0, 0.2160);
    (40.0, 50.0, 0.1030);
    (50.0, 60.0, 0.0442);
    (60.0, 70.0, 0.0034);
    (70.0, 80.0, 0.0001);
  ]

let clamp lo hi x = Float.max lo (Float.min hi x)

let share_between ~lat_lo ~lat_hi =
  if lat_hi < lat_lo then invalid_arg "Population.share_between: inverted interval";
  List.fold_left
    (fun acc (b_lo, b_hi, share) ->
      let lo = clamp b_lo b_hi lat_lo and hi = clamp b_lo b_hi lat_hi in
      if hi <= lo then acc else acc +. (share *. (hi -. lo) /. (b_hi -. b_lo)))
    0.0 band_shares

let fraction_above t =
  let t = Float.abs t in
  share_between ~lat_lo:t ~lat_hi:90.0 +. share_between ~lat_lo:(-90.0) ~lat_hi:(-.t)

let latitude_weights ~bin_deg =
  if bin_deg <= 0.0 then invalid_arg "Population.latitude_weights: bin <= 0";
  let nbins_f = 180.0 /. bin_deg in
  let nbins = int_of_float nbins_f in
  if Float.abs (nbins_f -. float_of_int nbins) > 1e-9 then
    invalid_arg "Population.latitude_weights: bin must divide 180";
  List.init nbins (fun i ->
      let lo = -90.0 +. (float_of_int i *. bin_deg) in
      let hi = lo +. bin_deg in
      ((lo +. hi) /. 2.0, share_between ~lat_lo:lo ~lat_hi:hi))

let sample_latitude rng =
  let bands = Array.of_list band_shares in
  let (lo, hi, _) =
    Rng.weighted_choice rng (Array.map (fun ((_, _, s) as b) -> (b, s)) bands)
  in
  Rng.uniform rng lo hi
