type service = {
  name : string;
  replicas : string list;
  write_quorum : int;
  read_quorum : int;
}

let sample_services =
  [
    { name = "us-east-triple"; replicas = [ "New York"; "Virginia Beach"; "Boston" ];
      write_quorum = 2; read_quorum = 1 };
    { name = "anycast-cdn";
      replicas = [ "New York"; "Marseille"; "Singapore"; "Sao Paulo"; "Sydney"; "Mombasa" ];
      write_quorum = 1; read_quorum = 1 };
    { name = "global-majority-db";
      replicas = [ "New York"; "London"; "Singapore"; "Sao Paulo"; "Sydney" ];
      write_quorum = 3; read_quorum = 1 };
    { name = "europe-pair"; replicas = [ "London"; "Amsterdam" ];
      write_quorum = 2; read_quorum = 1 };
  ]

type availability = {
  service : service;
  read_pct : float;
  write_pct : float;
  reachable_replicas_mean : float;
}

let nearest_node network city =
  let pos = (Datasets.Cities.find city).Datasets.Cities.pos in
  let best = ref 0 and best_d = ref Float.infinity in
  for i = 0 to Infra.Network.nb_nodes network - 1 do
    let d = Geo.Distance.haversine_km pos (Infra.Network.node_coord network i) in
    if d < !best_d then begin
      best := i;
      best_d := d
    end
  done;
  !best

let evaluate ?(state = Failure_model.s1) ?(survival_cutoff = 0.5) ~network service =
  let n_replicas = List.length service.replicas in
  if service.write_quorum <= 0 || service.write_quorum > n_replicas then
    invalid_arg "Resilience_test.evaluate: bad write quorum";
  if service.read_quorum <= 0 || service.read_quorum > n_replicas then
    invalid_arg "Resilience_test.evaluate: bad read quorum";
  let parts = Mitigation.predicted_partitions ~state ~survival_cutoff ~network () in
  let replica_nodes = List.map (nearest_node network) service.replicas in
  (* Partition id per node. *)
  let part_of = Hashtbl.create 1024 in
  List.iteri (fun pid nodes -> List.iter (fun n -> Hashtbl.replace part_of n pid) nodes) parts;
  (* Replicas per partition. *)
  let replicas_in = Hashtbl.create 16 in
  List.iter
    (fun rn ->
      match Hashtbl.find_opt part_of rn with
      | Some pid ->
          Hashtbl.replace replicas_in pid
            (1 + Option.value ~default:0 (Hashtbl.find_opt replicas_in pid))
      | None -> ())
    replica_nodes;
  let total = ref 0 and reads = ref 0 and writes = ref 0 and reach = ref 0 in
  Hashtbl.iter
    (fun _node pid ->
      incr total;
      let r = Option.value ~default:0 (Hashtbl.find_opt replicas_in pid) in
      reach := !reach + r;
      if r >= service.read_quorum then incr reads;
      if r >= service.write_quorum then incr writes)
    part_of;
  let pct x = if !total = 0 then 0.0 else 100.0 *. float_of_int x /. float_of_int !total in
  {
    service;
    read_pct = pct !reads;
    write_pct = pct !writes;
    reachable_replicas_mean =
      (if !total = 0 then 0.0 else float_of_int !reach /. float_of_int !total);
  }

let run_suite ?state ~network () =
  List.map (evaluate ?state ~network) sample_services

let placement_gain ~network ~before ~after =
  let a = evaluate ~network after and b = evaluate ~network before in
  a.write_pct -. b.write_pct
