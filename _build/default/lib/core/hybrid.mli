(** Hybrid cable + satellite fallback (§5.3: "a seamless protocol that can
    piece together all available modes of communication, including cables,
    satellites, and wireless").

    After a storm partitions the cable fabric, how much of the displaced
    inter-continental demand could a LEO mega-constellation absorb?  The
    constellation itself suffers the same storm ({!Leo.Storm_impact}), and
    its usable inter-partition throughput is bounded by the per-satellite
    backhaul capacity of the surviving fleet. *)

type assessment = {
  undeliverable_demand_pct : float;
      (** demand share the damaged cable network cannot route *)
  fleet_surviving : int;  (** satellites left after the storm *)
  satellite_capacity_tbps : float;
      (** aggregate usable throughput of the surviving fleet *)
  displaced_demand_tbps : float;
      (** undeliverable demand expressed in Tbps *)
  absorbable_pct : float;
      (** share of the displaced demand the fleet can carry (≤ 100) *)
}

val per_satellite_gbps : float
(** Usable long-haul throughput per satellite (20 Gbps: a fraction of the
    radio capacity is available for backhaul/transit rather than access). *)

val assess :
  ?trials:int ->
  ?constellation:Leo.Constellation.t ->
  ?total_demand_tbps:float ->
  network:Infra.Network.t ->
  model:Failure_model.t ->
  dst_nt:float ->
  unit ->
  assessment
(** Combine {!Traffic.storm_shift} (what the cables drop) with
    {!Leo.Storm_impact.assess} (what the fleet keeps).  [total_demand_tbps]
    scales the gravity demand to absolute terms (default 1,500 Tbps of
    inter-continental traffic). *)
