type assessment = {
  undeliverable_demand_pct : float;
  fleet_surviving : int;
  satellite_capacity_tbps : float;
  displaced_demand_tbps : float;
  absorbable_pct : float;
}

let per_satellite_gbps = 20.0

let assess ?(trials = 5) ?(constellation = Leo.Constellation.starlink_phase1)
    ?(total_demand_tbps = 1500.0) ~network ~model ~dst_nt () =
  let _, after = Traffic.storm_shift ~trials ~network ~model () in
  let undeliverable_pct = Float.max 0.0 (100.0 -. after.Traffic.delivered_pct) in
  let impact = Leo.Storm_impact.assess ~dst_nt constellation in
  let fleet = Leo.Constellation.size constellation in
  let surviving =
    int_of_float
      (Float.round
         (float_of_int fleet *. (1.0 -. impact.Leo.Storm_impact.fleet_lost_fraction)))
  in
  let capacity_tbps = float_of_int surviving *. per_satellite_gbps /. 1000.0 in
  let displaced = total_demand_tbps *. undeliverable_pct /. 100.0 in
  {
    undeliverable_demand_pct = undeliverable_pct;
    fleet_surviving = surviving;
    satellite_capacity_tbps = capacity_tbps;
    displaced_demand_tbps = displaced;
    absorbable_pct =
      (if displaced <= 0.0 then 100.0
       else Float.min 100.0 (100.0 *. capacity_tbps /. displaced));
  }
