(** Large-scale resilience testing for geo-distributed services (§5.4).

    The paper: current fault-tolerance practice assumes a handful of
    correlated failures; superstorm-scale partitions are absent from the
    literature.  This module is the "standardized test" it calls for: a
    service is a set of replica cities plus read/write quorum rules, and
    the test injects the partitions predicted for a failure state, then
    measures population-weighted availability. *)

type service = {
  name : string;
  replicas : string list;  (** gazetteer city names *)
  write_quorum : int;  (** replicas that must share the user's partition *)
  read_quorum : int;
}

val sample_services : service list
(** Representative placements: a 3-replica US-East service, a 5-continent
    anycast service (quorum 1), a majority-quorum database over
    5 continents, and a Europe-only pair. *)

type availability = {
  service : service;
  read_pct : float;  (** population-weighted users that can read *)
  write_pct : float;
  reachable_replicas_mean : float;
}

val evaluate :
  ?state:Failure_model.t ->
  ?survival_cutoff:float ->
  network:Infra.Network.t ->
  service ->
  availability
(** Availability under the partitions of
    {!Mitigation.predicted_partitions}: a user (at a landing node,
    weighted 1) can read/write iff its partition contains at least the
    quorum of replica sites (each replica mapped to its nearest landing
    node).  @raise Invalid_argument if a quorum exceeds the replica count
    or is not positive. *)

val run_suite :
  ?state:Failure_model.t -> network:Infra.Network.t -> unit -> availability list
(** Evaluate {!sample_services}. *)

val placement_gain :
  network:Infra.Network.t -> before:service -> after:service -> float
(** Write-availability improvement (percentage points) from re-placing a
    service — the quantitative version of §5.2's "geo-distribute critical
    functionality so each partition can function independently". *)
