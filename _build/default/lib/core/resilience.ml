type sweep_point = {
  probability : float;
  spacing_km : float;
  network : string;
  series : Montecarlo.series;
}

let paper_probabilities = [ 0.001; 0.003; 0.01; 0.03; 0.1; 0.3; 1.0 ]

let fig6_7 ?(trials = 10) ?(probabilities = paper_probabilities) ?(seed = 7) ~networks () =
  List.concat_map
    (fun spacing_km ->
      List.concat_map
        (fun (name, net) ->
          List.map
            (fun p ->
              let model = Failure_model.uniform p in
              let series =
                Montecarlo.run ~trials
                  ~seed:(seed + int_of_float (spacing_km *. 1000.0) + Hashtbl.hash (name, p))
                  ~network:net ~spacing_km ~model ()
              in
              { probability = p; spacing_km; network = name; series })
            probabilities)
        networks)
    Infra.Repeater.paper_spacings_km

type tiered_point = {
  state : string;
  spacing_km : float;
  network : string;
  series : Montecarlo.series;
}

let fig8 ?(trials = 10) ?(seed = 11) ~networks () =
  let states = [ ("S1", Failure_model.s1); ("S2", Failure_model.s2) ] in
  List.concat_map
    (fun (state, model) ->
      List.concat_map
        (fun spacing_km ->
          List.map
            (fun (name, net) ->
              let series =
                Montecarlo.run ~trials
                  ~seed:(seed + int_of_float spacing_km + Hashtbl.hash (name, state))
                  ~network:net ~spacing_km ~model ()
              in
              { state; spacing_km; network = name; series })
            networks)
        Infra.Repeater.paper_spacings_km)
    states

let feq a b = Float.abs (a -. b) < 1e-9

let find_sweep points ~network ~spacing_km ~probability =
  List.find_opt
    (fun (p : sweep_point) ->
      p.network = network && feq p.spacing_km spacing_km && feq p.probability probability)
    points

let find_tiered points ~network ~spacing_km ~state =
  List.find_opt
    (fun (p : tiered_point) ->
      p.network = network && feq p.spacing_km spacing_km && p.state = state)
    points
