(** Mitigation planning (§5): shutdown strategy, topology augmentation and
    partition-aware placement.

    The paper lays these out as open directions; this module implements
    executable versions so they can be evaluated quantitatively (the
    ablation benches in DESIGN.md). *)

(** {1 Lead-time shutdown (§5.2)} *)

type shutdown_plan = {
  actionable_lead_h : float;
  power_off_factor : float;
      (** GIC reduction when de-powered (peak current drops only slightly:
          the paper notes GIC flows through a powered-off cable) *)
  cables_failed_on_pct : float;  (** expected failures if left powered *)
  cables_failed_off_pct : float;  (** expected failures after shutdown *)
  benefit_pct : float;
}

val shutdown_plan :
  ?power_off_factor:float ->
  cme:Spaceweather.Cme.t ->
  network:Infra.Network.t ->
  unit ->
  shutdown_plan
(** Expected-failure comparison under the GIC-physical model with and
    without de-powering (default factor 0.8: a 20% peak-current
    reduction). *)

type shutdown_decision = {
  storm_window_h : float;  (** hours the storm holds Dst below the threshold *)
  failure_fraction_powered : float;  (** expected cable-failure fraction if left on *)
  failure_fraction_off : float;
  repair_days_powered : float;  (** approximate 90%-repair time for the damage *)
  repair_days_off : float;
  downtime_powered_days : float;  (** failure fraction × repair window *)
  downtime_off_days : float;  (** shutdown window + reduced damage downtime *)
  recommended : bool;  (** de-power iff it lowers expected downtime *)
}

val shutdown_decision :
  ?power_off_factor:float ->
  ?severe_dst:float ->
  cme:Spaceweather.Cme.t ->
  network:Infra.Network.t ->
  unit ->
  shutdown_decision
(** The §5.2 decision quantified: compare expected downtime
    (self-inflicted shutdown hours + damage × repair time) with and
    without de-powering through the storm window.  The storm window is
    the time the {!Gic.Time_series} profile spends below [severe_dst]
    (default −250 nT); repair time uses the fleet model of {!Recovery}
    with the shortest-job-first approximation. *)

(** {1 Topology augmentation (§5.1)} *)

type augmentation = {
  from_city : string;
  to_city : string;
  length_km : float;
  gain : float;  (** improvement in expected surviving inter-region pairs *)
}

val candidate_links : (string * string) list
(** Low-latitude candidate cables the paper's §5.1 motivates: US/Central
    America ↔ South America ↔ Europe/Africa southern routes. *)

val plan_augmentation :
  ?budget:int ->
  ?state:Failure_model.t ->
  network:Infra.Network.t ->
  unit ->
  augmentation list
(** Greedy selection of up to [budget] (default 3) candidate cables
    maximizing the expected number of continent pairs retaining a direct
    surviving cable under the failure state (default S1). *)

val expected_surviving_pairs :
  ?state:Failure_model.t -> network:Infra.Network.t -> unit -> float
(** The objective {!plan_augmentation} improves: over all continent
    pairs, the sum of probabilities that at least one direct cable
    survives. *)

(** {1 Partition prediction (§5.3)} *)

val predicted_partitions :
  ?state:Failure_model.t -> ?survival_cutoff:float -> network:Infra.Network.t -> unit ->
  int list list
(** Connected components of the network once every cable whose survival
    probability falls below [survival_cutoff] (default 0.5) is removed:
    the landmass partitions a §5.2 geo-replication plan must serve
    independently.  Components are sorted by decreasing size. *)
