lib/core/mitigation.ml: Array Datasets Failure_model Float Geo Gic Hashtbl Infra Int List Montecarlo Netgraph Option Recovery Spaceweather String
