lib/core/segment_model.ml: Array Failure_model Infra Int List Montecarlo Rng
