lib/core/resilience_test.ml: Datasets Failure_model Float Geo Hashtbl Infra List Mitigation Option
