lib/core/powergrid.ml: Array Failure_model Float Geo Gic Hashtbl Infra Int List Montecarlo Option Rng String
