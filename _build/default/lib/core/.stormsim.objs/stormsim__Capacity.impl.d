lib/core/capacity.ml: Array Datasets Failure_model Hashtbl Infra List Montecarlo Netgraph Rng String
