lib/core/stats.ml: Array Float Int List Printf
