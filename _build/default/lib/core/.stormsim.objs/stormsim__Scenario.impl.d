lib/core/scenario.ml: Failure_model Format List Montecarlo Spaceweather
