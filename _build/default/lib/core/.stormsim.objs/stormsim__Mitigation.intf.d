lib/core/mitigation.mli: Failure_model Infra Spaceweather
