lib/core/hybrid.mli: Failure_model Infra Leo
