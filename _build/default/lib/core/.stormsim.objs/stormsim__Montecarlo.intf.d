lib/core/montecarlo.mli: Failure_model Infra Rng
