lib/core/distribution.mli: Datasets Infra
