lib/core/sensitivity.mli: Failure_model Infra
