lib/core/distribution.ml: Array Datasets Float Geo Infra List Stats
