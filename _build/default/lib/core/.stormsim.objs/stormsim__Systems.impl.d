lib/core/systems.ml: Array Char Datasets Failure_model Geo Hashtbl Infra Int List Mitigation Stats
