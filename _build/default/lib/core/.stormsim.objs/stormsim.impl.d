lib/core/stormsim.ml: Capacity Country Distribution Failure_model Hybrid Mitigation Montecarlo Powergrid Recovery Resilience Resilience_test Scenario Segment_model Sensitivity Stats Systems Traffic
