lib/core/failure_model.mli: Infra
