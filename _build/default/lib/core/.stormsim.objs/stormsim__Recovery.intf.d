lib/core/recovery.mli: Failure_model Infra
