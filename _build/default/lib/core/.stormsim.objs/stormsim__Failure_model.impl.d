lib/core/failure_model.ml: Array Float Geo Gic Hashtbl Infra List Printf
