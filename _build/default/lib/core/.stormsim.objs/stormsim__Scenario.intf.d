lib/core/scenario.mli: Failure_model Format Infra Spaceweather
