lib/core/country.ml: Array Datasets Failure_model Hashtbl Infra Int List Montecarlo Netgraph Rng String
