lib/core/powergrid.mli: Failure_model Geo Infra Rng
