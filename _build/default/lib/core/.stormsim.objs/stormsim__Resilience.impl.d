lib/core/resilience.ml: Failure_model Float Hashtbl Infra List Montecarlo
