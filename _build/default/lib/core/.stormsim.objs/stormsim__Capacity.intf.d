lib/core/capacity.mli: Failure_model Infra
