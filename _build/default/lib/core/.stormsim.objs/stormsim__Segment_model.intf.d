lib/core/segment_model.mli: Failure_model Infra Rng
