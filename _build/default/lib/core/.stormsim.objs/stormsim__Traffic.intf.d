lib/core/traffic.mli: Failure_model Geo Infra
