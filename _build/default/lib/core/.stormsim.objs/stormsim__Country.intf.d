lib/core/country.mli: Failure_model Infra
