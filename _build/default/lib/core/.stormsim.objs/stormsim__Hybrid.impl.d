lib/core/hybrid.ml: Float Leo Traffic
