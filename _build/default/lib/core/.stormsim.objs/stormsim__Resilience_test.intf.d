lib/core/resilience_test.mli: Failure_model Infra
