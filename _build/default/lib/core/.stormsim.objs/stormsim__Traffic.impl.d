lib/core/traffic.ml: Array Failure_model Float Geo Hashtbl Infra Int List Montecarlo Netgraph Option Rng Stats
