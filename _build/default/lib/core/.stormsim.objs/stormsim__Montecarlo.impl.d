lib/core/montecarlo.ml: Array Failure_model Infra List Rng Stats
