lib/core/sensitivity.ml: Datasets Failure_model List Montecarlo Stats
