lib/core/systems.mli: Datasets Failure_model Infra
