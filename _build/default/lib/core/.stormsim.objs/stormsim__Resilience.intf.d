lib/core/resilience.mli: Infra Montecarlo
