lib/core/recovery.ml: Array Failure_model Float Infra Int List Montecarlo Rng Stats
