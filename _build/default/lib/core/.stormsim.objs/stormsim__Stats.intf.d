lib/core/stats.mli:
