(** Power-grid interdependence (§5.5).

    The paper: grids fail regionally (the US alone has three
    interconnects), transformer replacement takes months, and Internet
    infrastructure rides on grid power — so cable failures and grid
    failures compound.  This module models regional grids with
    GIC-driven failure probabilities and couples them to a cable network
    through landing-station backup power. *)

type region = {
  name : string;
  countries : string list;  (** node-country labels served by this grid *)
  reference : Geo.Coord.t;  (** representative location for GIC exposure *)
  gic_vulnerability : float;
      (** scaling of transformer fragility (shield terrain and long EHV
          lines make some grids more exposed), ~1.0 nominal *)
}

val world_regions : region list
(** ~15 regional grids covering the gazetteer countries (US East/West/
    Texas separated, per the paper's §5.5 example). *)

val region_of_country : string -> region option

val failure_probability : region -> dst_nt:float -> float
(** Probability the regional grid collapses during the storm: driven by
    the disturbance latitude factor at the region's geomagnetic latitude
    times storm strength, scaled by [gic_vulnerability].  ≈ 1 for
    Quebec-like grids under 1989-class storms; small at equatorial
    latitudes. *)

val outage_days : Rng.t -> region -> dst_nt:float -> float
(** Sampled outage duration given collapse: lognormal with a median that
    grows from ~0.5 day (breaker trips) to months (transformer
    replacement) with storm strength.  The paper cites 20–40 M people
    without power for up to 2 years for a Carrington-scale event. *)

type coupled_result = {
  cables_failed_pct : float;
  nodes_cable_dark_pct : float;  (** nodes dark from cable failures alone *)
  nodes_grid_dark_pct : float;  (** nodes dark from grid outages alone *)
  nodes_dark_pct : float;  (** either cause *)
  amplification : float;  (** nodes_dark / max(nodes_cable_dark, eps) *)
  regions_down : string list;
}

val simulate :
  ?trials:int ->
  ?seed:int ->
  ?backup_days:float ->
  ?spacing_km:float ->
  network:Infra.Network.t ->
  model:Failure_model.t ->
  dst_nt:float ->
  unit ->
  coupled_result
(** Monte-Carlo coupling: a node is dark if all its cables died, or if
    its regional grid is down for longer than the landing station's
    backup power ([backup_days], default 3).  [regions_down] lists the
    grids that failed in the majority of trials. *)
