(** Internet-systems resilience analysis (§4.4): Autonomous Systems,
    hyperscale data centers and DNS root servers. *)

type as_summary = {
  total : int;
  reach_above_40_pct : float;  (** Fig. 9a at 40° *)
  median_spread_deg : float;  (** Fig. 9b median *)
  p90_spread_deg : float;
  reach_curve : (float * float) list;  (** (threshold, % of ASes) — Fig. 9a *)
  spread_cdf : (float * float) list;  (** Fig. 9b *)
}

val analyze_ases : Datasets.Caida.asys array -> as_summary

type dc_summary = {
  operator : Datasets.Datacenters.operator;
  sites : int;
  continents : int;
  latitude_spread_deg : float;
  share_above_40_pct : float;
  resilience_score : float;  (** {!resilience_score} of the fleet *)
}

val analyze_datacenters : unit -> dc_summary list
(** Google and Facebook, Google first.  The paper's conclusion — Google
    more resilient than Facebook — must show as a higher score. *)

type dns_summary = {
  instances : int;
  letters : int;
  continents : int;
  share_above_40_pct : float;
  resilience_score : float;
}

val analyze_dns : Datasets.Dns_roots.instance array -> dns_summary

type dns_reachability = {
  any_root_pct : float;
      (** landing nodes whose predicted partition holds ≥ 1 root instance *)
  majority_letters_pct : float;  (** partition holds ≥ 7 of the 13 letters *)
  mean_letters : float;  (** distinct letters reachable per node *)
}

val dns_reachability :
  ?state:Failure_model.t ->
  network:Infra.Network.t ->
  Datasets.Dns_roots.instance array ->
  dns_reachability
(** Partition-aware DNS availability: the §4.4.3 claim made quantitative.
    Each anycast instance is pinned to its nearest landing node; a user's
    partition (from {!Mitigation.predicted_partitions}, default state S1)
    then determines which instances remain reachable. *)

val resilience_score : (float * float) list -> float
(** Geo-resilience score in [[0, 1]] for weighted latitudes: the product
    of (a) the share of weight outside the vulnerable |40°|+ band and (b)
    the evenness (normalized entropy) of the weight across 30°-wide
    latitude bands.  Higher is better; a fleet concentrated above 40°
    scores near 0. *)
