(** Failure-sweep experiments: Figures 6, 7 and 8.

    Figs 6–7 sweep a uniform per-repeater failure probability over three
    inter-repeater spacings and three networks, 10 trials each; Fig. 8
    evaluates the latitude-tiered states S1/S2. *)

type sweep_point = {
  probability : float;
  spacing_km : float;
  network : string;
  series : Montecarlo.series;
}

val paper_probabilities : float list
(** Log-spaced sweep [0.001 … 1.0]. *)

val fig6_7 :
  ?trials:int ->
  ?probabilities:float list ->
  ?seed:int ->
  networks:(string * Infra.Network.t) list ->
  unit ->
  sweep_point list
(** The full uniform-probability sweep (Fig. 6 reads [cables_*] of each
    point; Fig. 7 reads [nodes_*]).  Points are ordered by (spacing,
    network, probability). *)

type tiered_point = {
  state : string;  (** "S1" or "S2" *)
  spacing_km : float;
  network : string;
  series : Montecarlo.series;
}

val fig8 :
  ?trials:int ->
  ?seed:int ->
  networks:(string * Infra.Network.t) list ->
  unit ->
  tiered_point list
(** S1/S2 × spacing × network (Fig. 8 plots cables and nodes for the
    submarine and Intertubes networks). *)

val find_sweep :
  sweep_point list ->
  network:string ->
  spacing_km:float ->
  probability:float ->
  sweep_point option

val find_tiered :
  tiered_point list -> network:string -> spacing_km:float -> state:string -> tiered_point option
