type as_summary = {
  total : int;
  reach_above_40_pct : float;
  median_spread_deg : float;
  p90_spread_deg : float;
  reach_curve : (float * float) list;
  spread_cdf : (float * float) list;
}

let analyze_ases ases =
  let thresholds = [ 0.; 10.; 20.; 30.; 40.; 50.; 60.; 70.; 80.; 90. ] in
  let reach_curve =
    List.map
      (fun th -> (th, 100.0 *. Datasets.Caida.reach_above ases ~threshold:th))
      thresholds
  in
  let spreads = Array.to_list (Array.map (fun a -> a.Datasets.Caida.spread_deg) ases) in
  {
    total = Array.length ases;
    reach_above_40_pct = 100.0 *. Datasets.Caida.reach_above ases ~threshold:40.0;
    median_spread_deg = Stats.median spreads;
    p90_spread_deg = Stats.percentile spreads ~p:90.0;
    reach_curve;
    spread_cdf = Datasets.Caida.spread_cdf ases;
  }

let resilience_score weighted_lats =
  match weighted_lats with
  | [] -> 0.0
  | _ ->
      let total = List.fold_left (fun a (_, w) -> a +. w) 0.0 weighted_lats in
      if total <= 0.0 then 0.0
      else begin
        let safe_share = 1.0 -. Geo.Latband.fraction_above weighted_lats ~threshold:40.0 in
        (* Evenness: entropy of the weight over six 30-degree bands. *)
        let bands = Array.make 6 0.0 in
        List.iter
          (fun (lat, w) ->
            let i = Int.max 0 (Int.min 5 (int_of_float ((lat +. 90.0) /. 30.0))) in
            bands.(i) <- bands.(i) +. w)
          weighted_lats;
        let entropy =
          Array.fold_left
            (fun acc b ->
              if b <= 0.0 then acc
              else
                let p = b /. total in
                acc -. (p *. log p))
            0.0 bands
        in
        let evenness = entropy /. log 6.0 in
        safe_share *. (0.5 +. (0.5 *. evenness))
      end

type dns_reachability = {
  any_root_pct : float;
  majority_letters_pct : float;
  mean_letters : float;
}

let dns_reachability ?(state = Failure_model.s1) ~network instances =
  let parts = Mitigation.predicted_partitions ~state ~network () in
  let part_of = Hashtbl.create 1024 in
  List.iteri (fun pid nodes -> List.iter (fun n -> Hashtbl.replace part_of n pid) nodes) parts;
  (* Nearest landing node per instance, via the spatial index. *)
  let index =
    Geo.Grid_index.of_list
      (List.init (Infra.Network.nb_nodes network) (fun i ->
           (Infra.Network.node_coord network i, i)))
  in
  (* Letters present per partition. *)
  let letters_in : (int, (char, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun (inst : Datasets.Dns_roots.instance) ->
      match Geo.Grid_index.nearest index inst.Datasets.Dns_roots.pos with
      | None -> ()
      | Some (_, node, _) -> (
          match Hashtbl.find_opt part_of node with
          | None -> ()
          | Some pid ->
              let tbl =
                match Hashtbl.find_opt letters_in pid with
                | Some t -> t
                | None ->
                    let t = Hashtbl.create 13 in
                    Hashtbl.replace letters_in pid t;
                    t
              in
              Hashtbl.replace tbl inst.Datasets.Dns_roots.letter ()))
    instances;
  let total = ref 0 and any = ref 0 and majority = ref 0 and letters = ref 0 in
  Hashtbl.iter
    (fun _node pid ->
      incr total;
      let n_letters =
        match Hashtbl.find_opt letters_in pid with
        | Some t -> Hashtbl.length t
        | None -> 0
      in
      letters := !letters + n_letters;
      if n_letters >= 1 then incr any;
      if n_letters >= 7 then incr majority)
    part_of;
  let pct x = if !total = 0 then 0.0 else 100.0 *. float_of_int x /. float_of_int !total in
  {
    any_root_pct = pct !any;
    majority_letters_pct = pct !majority;
    mean_letters = (if !total = 0 then 0.0 else float_of_int !letters /. float_of_int !total);
  }

type dc_summary = {
  operator : Datasets.Datacenters.operator;
  sites : int;
  continents : int;
  latitude_spread_deg : float;
  share_above_40_pct : float;
  resilience_score : float;
}

let analyze_one_operator op =
  let lats = Datasets.Datacenters.latitudes op in
  {
    operator = op;
    sites = List.length lats;
    continents = List.length (Datasets.Datacenters.continents_covered op);
    latitude_spread_deg = Datasets.Datacenters.latitude_spread op;
    share_above_40_pct = 100.0 *. Geo.Latband.fraction_above lats ~threshold:40.0;
    resilience_score = resilience_score lats;
  }

let analyze_datacenters () =
  [ analyze_one_operator Datasets.Datacenters.Google;
    analyze_one_operator Datasets.Datacenters.Facebook ]

type dns_summary = {
  instances : int;
  letters : int;
  continents : int;
  share_above_40_pct : float;
  resilience_score : float;
}

let analyze_dns instances =
  let lats = Datasets.Dns_roots.latitudes instances in
  let letters =
    Array.to_list instances
    |> List.map (fun i -> i.Datasets.Dns_roots.letter)
    |> List.sort_uniq Char.compare |> List.length
  in
  {
    instances = Array.length instances;
    letters;
    continents = List.length (Datasets.Dns_roots.per_continent instances);
    share_above_40_pct = 100.0 *. Geo.Latband.fraction_above lats ~threshold:40.0;
    resilience_score = resilience_score lats;
  }
