(** Descriptive statistics for Monte-Carlo outputs and distribution
    figures. *)

val mean : float list -> float
(** 0 for []. *)

val stddev : float list -> float
(** Population standard deviation; 0 for fewer than 2 samples. *)

val mean_stddev : float list -> float * float

val percentile : float list -> p:float -> float
(** Nearest-rank percentile, [p] in [[0, 100]].  @raise Invalid_argument
    on an empty list or out-of-range [p]. *)

val median : float list -> float

val cdf_points : float list -> (float * float) list
(** Empirical CDF steps [(value, fraction ≤ value)], values ascending.
    [] for []. *)

val cdf_at : float list -> float -> float
(** Fraction of samples ≤ the probe value. *)

val histogram : float list -> lo:float -> hi:float -> bins:int -> int array
(** Counts per equal-width bin; out-of-range samples clamp to the edge
    bins.  @raise Invalid_argument if [bins <= 0] or [hi <= lo]. *)

val summary : float list -> string
(** Human-readable one-liner: mean/stddev/min/median/max. *)
