let pi = 4.0 *. atan 1.0

let deg_to_rad d = d *. pi /. 180.0

let rad_to_deg r = r *. 180.0 /. pi

let normalize_lon lon =
  if Float.is_nan lon then lon
  else
    let rec wrap l =
      if l > 180.0 then wrap (l -. 360.0)
      else if l <= -180.0 then wrap (l +. 360.0)
      else l
    in
    wrap (Float.rem lon 720.0)

let normalize_lat lat =
  if Float.is_nan lat then lat else Float.max (-90.0) (Float.min 90.0 lat)

let angular_diff a b =
  let d = Float.abs (normalize_lon a -. normalize_lon b) in
  if d > 180.0 then 360.0 -. d else d
