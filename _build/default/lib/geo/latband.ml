type tier = High | Mid | Low

let check_thresholds mid high =
  if not (0.0 <= mid && mid <= high) then
    invalid_arg "Latband: thresholds must satisfy 0 <= mid <= high"

let tier_of_abs_lat ?(mid_threshold = 40.0) ?(high_threshold = 60.0) l =
  check_thresholds mid_threshold high_threshold;
  let l = Float.abs l in
  if l > high_threshold then High else if l > mid_threshold then Mid else Low

let tier_of_coord ?mid_threshold ?high_threshold c =
  tier_of_abs_lat ?mid_threshold ?high_threshold (Coord.lat c)

let tier_to_string = function High -> "high" | Mid -> "mid" | Low -> "low"

let rank = function High -> 2 | Mid -> 1 | Low -> 0

let compare_tier a b = Int.compare (rank a) (rank b)

let max_tier a b = if compare_tier a b >= 0 then a else b

type histogram = { bin_deg : float; counts : float array }

let histogram ~bin_deg items =
  if bin_deg <= 0.0 then invalid_arg "Latband.histogram: bin_deg <= 0";
  let nbins_f = 180.0 /. bin_deg in
  let nbins = int_of_float nbins_f in
  if Float.abs (nbins_f -. float_of_int nbins) > 1e-9 then
    invalid_arg "Latband.histogram: bin_deg must divide 180";
  let counts = Array.make nbins 0.0 in
  let add (lat, w) =
    let i = int_of_float ((lat +. 90.0) /. bin_deg) in
    let i = Int.max 0 (Int.min (nbins - 1) i) in
    counts.(i) <- counts.(i) +. w
  in
  List.iter add items;
  { bin_deg; counts }

let pdf h =
  let total = Array.fold_left ( +. ) 0.0 h.counts in
  let density c = if total <= 0.0 then 0.0 else c /. total /. h.bin_deg *. 100.0 in
  Array.to_list
    (Array.mapi
       (fun i c ->
         let centre = -90.0 +. ((float_of_int i +. 0.5) *. h.bin_deg) in
         (centre, density c))
       h.counts)

let fraction_above items ~threshold =
  let above, total =
    List.fold_left
      (fun (a, t) (lat, w) ->
        let a = if Float.abs lat > threshold then a +. w else a in
        (a, t +. w))
      (0.0, 0.0) items
  in
  if total <= 0.0 then 0.0 else above /. total

let default_thresholds = [ 0.; 10.; 20.; 30.; 40.; 50.; 60.; 70.; 80.; 90. ]

let threshold_curve ?(thresholds = default_thresholds) items =
  List.map (fun th -> (th, 100.0 *. fraction_above items ~threshold:th)) thresholds
