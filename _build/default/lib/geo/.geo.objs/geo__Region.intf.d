lib/geo/region.mli: Coord
