lib/geo/projection.mli: Coord
