lib/geo/grid_index.mli: Coord
