lib/geo/distance.mli: Coord
