lib/geo/latband.mli: Coord
