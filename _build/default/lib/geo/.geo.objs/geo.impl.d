lib/geo/geo.ml: Angle Coord Distance Geodesic Geomagnetic Grid_index Latband Projection Region
