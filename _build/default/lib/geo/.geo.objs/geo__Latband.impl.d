lib/geo/latband.ml: Array Coord Float Int List
