lib/geo/geodesic.mli: Coord
