lib/geo/angle.ml: Float
