lib/geo/projection.ml: Angle Coord Float Int
