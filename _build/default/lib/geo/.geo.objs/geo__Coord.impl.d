lib/geo/coord.ml: Angle Float Format Printf String
