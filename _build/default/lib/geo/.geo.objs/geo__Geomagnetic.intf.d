lib/geo/geomagnetic.mli: Coord
