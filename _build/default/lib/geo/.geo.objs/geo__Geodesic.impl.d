lib/geo/geodesic.ml: Angle Coord Distance Float Int List
