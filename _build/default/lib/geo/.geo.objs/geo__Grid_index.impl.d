lib/geo/grid_index.ml: Angle Coord Distance Float Hashtbl List
