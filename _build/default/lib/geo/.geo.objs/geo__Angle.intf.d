lib/geo/angle.mli:
