lib/geo/geomagnetic.ml: Angle Coord Distance Float
