lib/geo/distance.ml: Angle Coord Float
