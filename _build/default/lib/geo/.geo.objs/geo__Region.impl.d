lib/geo/region.ml: Array Coord Distance Float List String
