(** Spatial index over geographic points.

    A fixed-resolution latitude/longitude grid bucketing values by cell.
    Lookups scan the cells overlapped by the query radius; with the default
    5° cells this turns nearest-neighbour queries over tens of thousands of
    points into a handful of bucket scans.  Used by the dataset generators
    (snap synthetic nodes to cities) and by the mitigation planner. *)

type 'a t

val create : ?cell_deg:float -> unit -> 'a t
(** Fresh empty index.  @raise Invalid_argument if [cell_deg <= 0.] or
    [cell_deg > 90.]. *)

val add : 'a t -> Coord.t -> 'a -> unit

val of_list : ?cell_deg:float -> (Coord.t * 'a) list -> 'a t

val size : 'a t -> int
(** Number of stored entries. *)

val within_km : 'a t -> Coord.t -> radius_km:float -> (Coord.t * 'a * float) list
(** All entries within [radius_km] of the query point, with their distance,
    unsorted.  @raise Invalid_argument if [radius_km < 0.]. *)

val nearest : 'a t -> Coord.t -> (Coord.t * 'a * float) option
(** Closest entry to the query point, or [None] on an empty index. *)

val fold : 'a t -> init:'b -> f:('b -> Coord.t -> 'a -> 'b) -> 'b
