(* Spherical linear interpolation between two points expressed as unit
   vectors; this is exact on the sphere and avoids longitude-wrap issues. *)

type vec3 = { x : float; y : float; z : float }

let to_vec c =
  let phi = Angle.deg_to_rad (Coord.lat c) and lam = Angle.deg_to_rad (Coord.lon c) in
  { x = cos phi *. cos lam; y = cos phi *. sin lam; z = sin phi }

let of_vec v =
  let r = sqrt ((v.x *. v.x) +. (v.y *. v.y) +. (v.z *. v.z)) in
  let lat = Angle.rad_to_deg (asin (v.z /. r)) in
  let lon = Angle.rad_to_deg (atan2 v.y v.x) in
  Coord.make ~lat ~lon

let intermediate a b f =
  if f <= 0.0 then a
  else if f >= 1.0 then b
  else
    let omega = Distance.central_angle_rad a b in
    if omega < 1e-12 then a
    else
      let va = to_vec a and vb = to_vec b in
      let sin_o = sin omega in
      if Float.abs sin_o < 1e-12 then
        (* Antipodal: pick the meridian route through the pole closest to a. *)
        let via_lat = if Coord.lat a >= 0.0 then 90.0 else -90.0 in
        let pole = Coord.make ~lat:via_lat ~lon:(Coord.lon a) in
        let vp = to_vec pole in
        let wa = sin ((1.0 -. f) *. omega) and wb = sin (f *. omega) in
        of_vec
          {
            x = (wa *. va.x) +. (wb *. vp.x);
            y = (wa *. va.y) +. (wb *. vp.y);
            z = (wa *. va.z) +. (wb *. vp.z);
          }
      else
        let wa = sin ((1.0 -. f) *. omega) /. sin_o and wb = sin (f *. omega) /. sin_o in
        of_vec
          {
            x = (wa *. va.x) +. (wb *. vb.x);
            y = (wa *. va.y) +. (wb *. vb.y);
            z = (wa *. va.z) +. (wb *. vb.z);
          }

let midpoint a b = intermediate a b 0.5

let waypoints a b ~n =
  if n < 1 then invalid_arg "Geodesic.waypoints: n < 1";
  List.init (n + 1) (fun i -> intermediate a b (float_of_int i /. float_of_int n))

let sample_every_km a b ~step_km =
  if step_km <= 0.0 then invalid_arg "Geodesic.sample_every_km: step <= 0";
  let total = Distance.haversine_km a b in
  let n = Int.max 1 (int_of_float (ceil (total /. step_km))) in
  waypoints a b ~n

let point_at_km path d =
  match path with
  | [] -> invalid_arg "Geodesic.point_at_km: empty path"
  | [ p ] -> p
  | first :: _ ->
      if d <= 0.0 then first
      else
        let rec walk remaining = function
          | a :: (b :: _ as rest) ->
              let hop = Distance.haversine_km a b in
              if remaining <= hop then
                if hop < 1e-9 then a else intermediate a b (remaining /. hop)
              else walk (remaining -. hop) rest
          | [ last ] -> last
          | [] -> assert false
        in
        walk d path

let positions_along path ~spacing_km =
  if spacing_km <= 0.0 then invalid_arg "Geodesic.positions_along: spacing <= 0";
  let total = Distance.path_length_km path in
  let rec collect acc k =
    let d = float_of_int k *. spacing_km in
    if d >= total then List.rev acc
    else collect ((d, point_at_km path d) :: acc) (k + 1)
  in
  if total <= spacing_km then [] else collect [] 1
