type continent =
  | Africa
  | Asia
  | Europe
  | North_america
  | South_america
  | Oceania
  | Antarctica

let all_continents =
  [ Europe; Asia; Africa; North_america; South_america; Oceania; Antarctica ]

let continent_to_string = function
  | Africa -> "Africa"
  | Asia -> "Asia"
  | Europe -> "Europe"
  | North_america -> "North America"
  | South_america -> "South America"
  | Oceania -> "Oceania"
  | Antarctica -> "Antarctica"

let continent_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "africa" -> Some Africa
  | "asia" -> Some Asia
  | "europe" -> Some Europe
  | "north america" | "north_america" -> Some North_america
  | "south america" | "south_america" -> Some South_america
  | "oceania" | "australia" -> Some Oceania
  | "antarctica" -> Some Antarctica
  | _ -> None

let equal_continent a b = a = b

type polygon = { vertices : (float * float) array (* (lat, lon) *) }

let polygon vertices =
  if List.length vertices < 3 then invalid_arg "Region.polygon: fewer than 3 vertices";
  { vertices = Array.of_list vertices }

(* Standard ray casting on the (lon, lat) plane.  The polygons used here
   never cross the antimeridian, so no wrap handling is needed beyond
   normalizing input longitudes. *)
let contains poly c =
  let px = Coord.lon c and py = Coord.lat c in
  let n = Array.length poly.vertices in
  let inside = ref false in
  for i = 0 to n - 1 do
    let y1, x1 = poly.vertices.(i) in
    let y2, x2 = poly.vertices.((i + 1) mod n) in
    if y1 > py <> (y2 > py) then begin
      let x_cross = x1 +. ((py -. y1) /. (y2 -. y1) *. (x2 -. x1)) in
      if px < x_cross then inside := not !inside
    end
  done;
  !inside

(* Coarse continent outlines, (lat, lon) vertices.  Drawn by hand around
   the land masses; island nations near a continent are inside its hull. *)

let europe =
  polygon
    [ (71.5, 26.0); (71.0, 40.0); (66.0, 60.0); (55.0, 62.0); (50.0, 60.0);
      (45.0, 48.0); (41.0, 46.0); (36.0, 36.0); (34.5, 26.0); (36.0, 10.0);
      (35.5, -6.0); (36.5, -10.0); (43.0, -10.5); (48.5, -6.0); (51.0, -11.5);
      (55.5, -11.0); (58.5, -8.0); (62.0, -8.0); (66.0, -25.0); (67.5, -25.0);
      (71.0, -8.0) ]

let asia =
  polygon
    [ (77.0, 60.0); (77.0, 105.0); (72.0, 180.0); (64.0, 180.0); (60.0, 165.0);
      (50.0, 158.0); (45.0, 152.0); (30.0, 145.0); (20.0, 125.0); (0.0, 132.0);
      (-11.0, 125.0); (-9.0, 105.0); (0.0, 95.0); (5.0, 78.0); (7.0, 77.0);
      (8.0, 73.0); (20.0, 60.0); (12.0, 55.0); (12.0, 43.5); (27.0, 33.0);
      (31.0, 32.0); (36.0, 36.0); (41.0, 46.0); (45.0, 48.0); (50.0, 60.0);
      (55.0, 62.0); (66.0, 60.0) ]

let africa =
  polygon
    [ (37.5, 10.0); (33.0, 32.0); (27.0, 34.5); (12.0, 43.5); (10.5, 51.5);
      (-1.0, 42.0); (-16.0, 41.0); (-26.0, 33.5); (-35.5, 20.5); (-34.5, 17.5);
      (-17.0, 11.0); (-5.0, 8.5); (4.0, 6.0); (4.5, -8.0); (14.0, -18.0);
      (21.0, -18.0); (28.0, -13.5); (35.5, -6.5); (37.0, -3.0) ]

let north_america =
  polygon
    [ (83.5, -70.0); (82.0, -45.0); (76.0, -18.0); (70.0, -22.0); (60.0, -43.0);
      (52.0, -55.0); (46.0, -52.0); (43.0, -65.0); (35.0, -75.0); (25.0, -79.5);
      (17.5, -76.0); (16.0, -61.0); (10.0, -61.5); (7.5, -78.5); (8.5, -83.0);
      (15.0, -97.0); (18.0, -104.0); (23.0, -110.5); (32.0, -118.0); (40.0, -125.0);
      (48.5, -126.0); (55.0, -134.0); (58.0, -152.0); (54.0, -168.0); (65.0, -169.0);
      (71.5, -157.0); (70.0, -128.0); (73.5, -85.0) ]

let south_america =
  polygon
    [ (12.5, -72.0); (10.5, -62.0); (5.0, -52.0); (0.0, -50.0); (-5.0, -35.0);
      (-13.0, -38.0); (-23.0, -41.0); (-35.0, -53.0); (-39.0, -57.5); (-47.0, -65.5);
      (-55.5, -66.5); (-55.5, -71.0); (-46.0, -76.0); (-37.0, -74.0); (-18.0, -71.5);
      (-6.0, -81.5); (-1.0, -81.0); (7.0, -78.5); (9.0, -76.0) ]

let oceania =
  polygon
    [ (-10.0, 142.0); (-11.0, 136.0); (-12.0, 130.5); (-14.0, 126.5); (-18.0, 122.0);
      (-22.0, 113.5); (-26.0, 112.5); (-35.0, 115.0); (-35.5, 118.0); (-32.0, 134.0);
      (-38.0, 140.5); (-39.0, 146.5); (-43.5, 147.0); (-37.5, 150.0); (-33.0, 152.0);
      (-28.0, 153.5); (-25.0, 153.0); (-17.0, 146.0); (-11.0, 143.0) ]

let new_zealand =
  polygon
    [ (-34.0, 172.5); (-37.5, 178.5); (-41.5, 176.5); (-42.5, 174.0); (-46.5, 170.5);
      (-47.0, 167.0); (-44.0, 167.5); (-40.5, 172.0); (-36.0, 173.0) ]

let antarctica = polygon [ (-60.0, -180.0); (-60.0, 180.0); (-90.0, 180.0); (-90.0, -180.0) ]

let regions =
  [ (Europe, [ europe ]);
    (Asia, [ asia ]);
    (Africa, [ africa ]);
    (North_america, [ north_america ]);
    (South_america, [ south_america ]);
    (Oceania, [ oceania; new_zealand ]);
    (Antarctica, [ antarctica ]) ]

let continent_of c =
  let rec find = function
    | [] -> None
    | (name, polys) :: rest ->
        if List.exists (fun p -> contains p c) polys then Some name else find rest
  in
  find regions

(* Anchor points used to classify offshore coordinates. *)
let anchors =
  [ (Europe, Coord.make ~lat:50.0 ~lon:10.0);
    (Asia, Coord.make ~lat:35.0 ~lon:100.0);
    (Africa, Coord.make ~lat:5.0 ~lon:20.0);
    (North_america, Coord.make ~lat:45.0 ~lon:(-100.0));
    (South_america, Coord.make ~lat:(-15.0) ~lon:(-60.0));
    (Oceania, Coord.make ~lat:(-25.0) ~lon:140.0);
    (Antarctica, Coord.make ~lat:(-80.0) ~lon:0.0) ]

let continent_of_nearest c =
  match continent_of c with
  | Some k -> k
  | None ->
      let _, best =
        List.fold_left
          (fun (dmin, kmin) (k, anchor) ->
            let d = Distance.haversine_km c anchor in
            if d < dmin then (d, k) else (dmin, kmin))
          (Float.infinity, Europe) anchors
      in
      best

let on_land c = continent_of c <> None
