type t = {
  width : int;
  height : int;
  lat_min : float;
  lat_max : float;
  lon_min : float;
  lon_max : float;
}

let equirectangular ?(bounds = (-90.0, 90.0, -180.0, 180.0)) ~width ~height () =
  let lat_min, lat_max, lon_min, lon_max = bounds in
  if width <= 0 || height <= 0 then invalid_arg "Projection: non-positive size";
  if lat_min >= lat_max || lon_min >= lon_max then
    invalid_arg "Projection: inverted bounds";
  { width; height; lat_min; lat_max; lon_min; lon_max }

let to_xy t c =
  let lat = Coord.lat c and lon = Coord.lon c in
  if lat < t.lat_min || lat > t.lat_max || lon < t.lon_min || lon > t.lon_max then None
  else
    let fx = (lon -. t.lon_min) /. (t.lon_max -. t.lon_min) in
    let fy = (t.lat_max -. lat) /. (t.lat_max -. t.lat_min) in
    let x = Int.min (t.width - 1) (int_of_float (fx *. float_of_int t.width)) in
    let y = Int.min (t.height - 1) (int_of_float (fy *. float_of_int t.height)) in
    Some (x, y)

let of_xy t x y =
  let x = Int.max 0 (Int.min (t.width - 1) x) in
  let y = Int.max 0 (Int.min (t.height - 1) y) in
  let lon =
    t.lon_min
    +. ((float_of_int x +. 0.5) /. float_of_int t.width *. (t.lon_max -. t.lon_min))
  in
  let lat =
    t.lat_max
    -. ((float_of_int y +. 0.5) /. float_of_int t.height *. (t.lat_max -. t.lat_min))
  in
  Coord.make ~lat ~lon

let mercator_scale lat =
  let lat = Float.max (-85.0) (Float.min 85.0 lat) in
  log (tan (Angle.deg_to_rad ((lat /. 2.0) +. 45.0)))

let mercator_y t c =
  let lat = Coord.lat c and lon = Coord.lon c in
  if lat < t.lat_min || lat > t.lat_max || lon < t.lon_min || lon > t.lon_max then None
  else
    let fx = (lon -. t.lon_min) /. (t.lon_max -. t.lon_min) in
    let y_top = mercator_scale t.lat_max and y_bot = mercator_scale t.lat_min in
    let fy = (y_top -. mercator_scale lat) /. (y_top -. y_bot) in
    let x = Int.min (t.width - 1) (int_of_float (fx *. float_of_int t.width)) in
    let y = Int.min (t.height - 1) (int_of_float (fy *. float_of_int t.height)) in
    Some (x, y)
