let north_pole = Coord.make ~lat:80.65 ~lon:(-72.68)

let dipole_latitude c =
  (* Geomagnetic latitude = 90 - angular distance to dipole north pole. *)
  let colat_rad = Distance.central_angle_rad c north_pole in
  90.0 -. Angle.rad_to_deg colat_rad

let dipole_colatitude c = 90.0 -. Float.abs (dipole_latitude c)

let l_shell c =
  let lam = Angle.deg_to_rad (dipole_latitude c) in
  let cl = cos lam in
  if cl < 0.0316 then 1000.0 else Float.min 1000.0 (1.0 /. (cl *. cl))
