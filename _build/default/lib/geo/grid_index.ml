type 'a entry = { pos : Coord.t; value : 'a }

type 'a t = {
  cell_deg : float;
  cells : (int * int, 'a entry list ref) Hashtbl.t;
  mutable count : int;
}

let create ?(cell_deg = 5.0) () =
  if cell_deg <= 0.0 || cell_deg > 90.0 then
    invalid_arg "Grid_index.create: cell_deg out of (0, 90]";
  { cell_deg; cells = Hashtbl.create 256; count = 0 }

let key t c =
  let lat_i = int_of_float (Float.floor ((Coord.lat c +. 90.0) /. t.cell_deg)) in
  let lon_i = int_of_float (Float.floor ((Coord.lon c +. 180.0) /. t.cell_deg)) in
  (lat_i, lon_i)

let lon_cells t = int_of_float (Float.ceil (360.0 /. t.cell_deg))
let lat_cells t = int_of_float (Float.ceil (180.0 /. t.cell_deg))

let add t pos value =
  let k = key t pos in
  (match Hashtbl.find_opt t.cells k with
  | Some l -> l := { pos; value } :: !l
  | None -> Hashtbl.add t.cells k (ref [ { pos; value } ]));
  t.count <- t.count + 1

let of_list ?cell_deg entries =
  let t = create ?cell_deg () in
  List.iter (fun (pos, v) -> add t pos v) entries;
  t

let size t = t.count

(* Cells whose bounding box might intersect a circle of [radius_km] around
   [c].  Longitude span widens with latitude; near the poles we scan the
   whole ring. *)
let candidate_cells t c radius_km =
  let lat0, lon0 = key t c in
  let deg_per_km_lat = 1.0 /. 111.19 in
  let dlat_cells =
    1 + int_of_float (Float.ceil (radius_km *. deg_per_km_lat /. t.cell_deg))
  in
  let nlon = lon_cells t and nlat = lat_cells t in
  let cells = ref [] in
  for di = -dlat_cells to dlat_cells do
    let lat_i = lat0 + di in
    if lat_i >= 0 && lat_i < nlat then begin
      (* Use the band edge closest to a pole: longitude cells shrink
         towards the poles, and a polar band must be scanned in full. *)
      let edge1 = Float.abs ((float_of_int lat_i *. t.cell_deg) -. 90.0) in
      let edge2 = Float.abs ((float_of_int (lat_i + 1) *. t.cell_deg) -. 90.0) in
      let band_lat = Float.max edge1 edge2 in
      let cos_lat = Float.max 0.01 (cos (Angle.deg_to_rad band_lat)) in
      let dlon_cells =
        1 + int_of_float (Float.ceil (radius_km *. deg_per_km_lat /. cos_lat /. t.cell_deg))
      in
      if band_lat >= 89.0 || 2 * dlon_cells + 1 >= nlon then
        for lon_i = 0 to nlon - 1 do
          cells := (lat_i, lon_i) :: !cells
        done
      else
        for dj = -dlon_cells to dlon_cells do
          let lon_i = ((lon0 + dj) mod nlon + nlon) mod nlon in
          cells := (lat_i, lon_i) :: !cells
        done
    end
  done;
  !cells

let within_km t c ~radius_km =
  if radius_km < 0.0 then invalid_arg "Grid_index.within_km: negative radius";
  let acc = ref [] in
  List.iter
    (fun k ->
      match Hashtbl.find_opt t.cells k with
      | None -> ()
      | Some l ->
          List.iter
            (fun e ->
              let d = Distance.haversine_km c e.pos in
              if d <= radius_km then acc := (e.pos, e.value, d) :: !acc)
            !l)
    (candidate_cells t c radius_km);
  !acc

let nearest t c =
  if t.count = 0 then None
  else
    (* Expanding-ring search: double the radius until something is found;
       cap at half the Earth's circumference, where the scan is global. *)
    let rec search radius =
      match within_km t c ~radius_km:radius with
      | [] when radius < 21000.0 -> search (radius *. 2.0)
      | [] -> None
      | hits ->
          Some
            (List.fold_left
               (fun ((_, _, dbest) as best) ((_, _, d) as hit) ->
                 if d < dbest then hit else best)
               (List.hd hits) (List.tl hits))
    in
    search 250.0

let fold t ~init ~f =
  Hashtbl.fold
    (fun _ l acc -> List.fold_left (fun acc e -> f acc e.pos e.value) acc !l)
    t.cells init
