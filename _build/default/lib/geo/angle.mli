(** Angle conversions and normalization helpers.

    All angles in the public API of the [Geo] library are degrees unless a
    function name says otherwise.  This module centralizes the conversions
    so that no other module hard-codes [Float.pi /. 180.]. *)

val pi : float

val deg_to_rad : float -> float
(** [deg_to_rad d] converts degrees to radians. *)

val rad_to_deg : float -> float
(** [rad_to_deg r] converts radians to degrees. *)

val normalize_lon : float -> float
(** [normalize_lon lon] wraps a longitude into the interval [(-180, 180]].
    [normalize_lon 190. = -170.]. *)

val normalize_lat : float -> float
(** [normalize_lat lat] clamps a latitude into [[-90, 90]].  Values outside
    the interval are clamped, not reflected: the callers feed coordinates
    that are at most marginally out of range due to float arithmetic. *)

val angular_diff : float -> float -> float
(** [angular_diff a b] is the smallest absolute difference between two
    longitudes in degrees, in [[0, 180]]. *)
