let earth_radius_km = 6371.0088

let central_angle_rad a b =
  let phi1 = Angle.deg_to_rad (Coord.lat a)
  and phi2 = Angle.deg_to_rad (Coord.lat b) in
  let dphi = Angle.deg_to_rad (Coord.lat b -. Coord.lat a)
  and dlambda = Angle.deg_to_rad (Angle.angular_diff (Coord.lon a) (Coord.lon b)) in
  let sin_dphi = sin (dphi /. 2.0) and sin_dl = sin (dlambda /. 2.0) in
  let h = (sin_dphi *. sin_dphi) +. (cos phi1 *. cos phi2 *. sin_dl *. sin_dl) in
  2.0 *. atan2 (sqrt h) (sqrt (Float.max 0.0 (1.0 -. h)))

let haversine_km a b = earth_radius_km *. central_angle_rad a b

let equirectangular_km a b =
  let mean_lat = Angle.deg_to_rad ((Coord.lat a +. Coord.lat b) /. 2.0) in
  let x = Angle.deg_to_rad (Angle.angular_diff (Coord.lon a) (Coord.lon b)) *. cos mean_lat in
  let y = Angle.deg_to_rad (Coord.lat b -. Coord.lat a) in
  earth_radius_km *. sqrt ((x *. x) +. (y *. y))

(* WGS-84 ellipsoid constants. *)
let wgs84_a = 6378.137
let wgs84_b = 6356.752314245
let wgs84_f = 1.0 /. 298.257223563

let vincenty_km ?(max_iter = 100) p1 p2 =
  if Coord.equal p1 p2 then 0.0
  else
    let u1 = atan ((1.0 -. wgs84_f) *. tan (Angle.deg_to_rad (Coord.lat p1))) in
    let u2 = atan ((1.0 -. wgs84_f) *. tan (Angle.deg_to_rad (Coord.lat p2))) in
    let big_l = Angle.deg_to_rad (Coord.lon p2 -. Coord.lon p1) in
    let sin_u1 = sin u1 and cos_u1 = cos u1 in
    let sin_u2 = sin u2 and cos_u2 = cos u2 in
    let rec iterate lambda i =
      if i >= max_iter then None
      else
        let sin_l = sin lambda and cos_l = cos lambda in
        let sin_sigma =
          sqrt
            (((cos_u2 *. sin_l) ** 2.0)
            +. (((cos_u1 *. sin_u2) -. (sin_u1 *. cos_u2 *. cos_l)) ** 2.0))
        in
        if sin_sigma = 0.0 then Some 0.0
        else
          let cos_sigma = (sin_u1 *. sin_u2) +. (cos_u1 *. cos_u2 *. cos_l) in
          let sigma = atan2 sin_sigma cos_sigma in
          let sin_alpha = cos_u1 *. cos_u2 *. sin_l /. sin_sigma in
          let cos2_alpha = 1.0 -. (sin_alpha *. sin_alpha) in
          let cos_2sigma_m =
            if cos2_alpha = 0.0 then 0.0
            else cos_sigma -. (2.0 *. sin_u1 *. sin_u2 /. cos2_alpha)
          in
          let c =
            wgs84_f /. 16.0 *. cos2_alpha *. (4.0 +. (wgs84_f *. (4.0 -. (3.0 *. cos2_alpha))))
          in
          let lambda' =
            big_l
            +. ((1.0 -. c) *. wgs84_f *. sin_alpha
               *. (sigma
                  +. (c *. sin_sigma
                     *. (cos_2sigma_m +. (c *. cos_sigma *. (-1.0 +. (2.0 *. cos_2sigma_m *. cos_2sigma_m)))))))
          in
          if Float.abs (lambda' -. lambda) < 1e-12 then
            let u_sq = cos2_alpha *. ((wgs84_a ** 2.0) -. (wgs84_b ** 2.0)) /. (wgs84_b ** 2.0) in
            let big_a =
              1.0 +. (u_sq /. 16384.0 *. (4096.0 +. (u_sq *. (-768.0 +. (u_sq *. (320.0 -. (175.0 *. u_sq)))))))
            in
            let big_b =
              u_sq /. 1024.0 *. (256.0 +. (u_sq *. (-128.0 +. (u_sq *. (74.0 -. (47.0 *. u_sq))))))
            in
            let delta_sigma =
              big_b *. sin_sigma
              *. (cos_2sigma_m
                 +. (big_b /. 4.0
                    *. ((cos_sigma *. (-1.0 +. (2.0 *. cos_2sigma_m *. cos_2sigma_m)))
                       -. (big_b /. 6.0 *. cos_2sigma_m
                          *. (-3.0 +. (4.0 *. sin_sigma *. sin_sigma))
                          *. (-3.0 +. (4.0 *. cos_2sigma_m *. cos_2sigma_m))))))
            in
            Some (wgs84_b *. big_a *. (sigma -. delta_sigma))
          else iterate lambda' (i + 1)
    in
    match iterate big_l 0 with
    | Some d -> d
    | None -> haversine_km p1 p2

let path_length_km points =
  let rec go acc = function
    | a :: (b :: _ as rest) -> go (acc +. haversine_km a b) rest
    | [ _ ] | [] -> acc
  in
  go 0.0 points

let initial_bearing_deg a b =
  let phi1 = Angle.deg_to_rad (Coord.lat a)
  and phi2 = Angle.deg_to_rad (Coord.lat b) in
  let dl = Angle.deg_to_rad (Coord.lon b -. Coord.lon a) in
  let y = sin dl *. cos phi2 in
  let x = (cos phi1 *. sin phi2) -. (sin phi1 *. cos phi2 *. cos dl) in
  let theta = Angle.rad_to_deg (atan2 y x) in
  Float.rem (theta +. 360.0) 360.0
