(** Latitude bands and the paper's risk tiers.

    The paper tiers cables by the highest-|latitude| endpoint: [L > 60°]
    (high risk), [40° < L < 60°] (medium), [L < 40°] (low), treating the
    two hemispheres symmetrically (§4.3.3). *)

type tier = High | Mid | Low

val tier_of_abs_lat : ?mid_threshold:float -> ?high_threshold:float -> float -> tier
(** [tier_of_abs_lat l] classifies an absolute latitude; default thresholds
    40° and 60°.  Boundary values fall in the lower tier, matching the
    paper's strict inequalities.  @raise Invalid_argument if thresholds are
    not ordered [0 <= mid <= high]. *)

val tier_of_coord : ?mid_threshold:float -> ?high_threshold:float -> Coord.t -> tier

val tier_to_string : tier -> string

val compare_tier : tier -> tier -> int
(** [High > Mid > Low]. *)

val max_tier : tier -> tier -> tier

type histogram = {
  bin_deg : float;  (** width of each latitude bin, degrees *)
  counts : float array;  (** weight per bin, index 0 = [-90, -90+bin) *)
}
(** Weighted latitude histogram over [[-90, 90]], used for the Fig. 3 PDF
    curves. *)

val histogram : bin_deg:float -> (float * float) list -> histogram
(** [histogram ~bin_deg items] bins [(latitude, weight)] pairs.
    @raise Invalid_argument if [bin_deg <= 0.] or does not divide 180. *)

val pdf : histogram -> (float * float) list
(** [(bin-centre latitude, probability density %)] list: densities are
    normalized so that [sum (density * bin_deg) = 100.], matching the
    paper's "probability density function (%)" axis. *)

val fraction_above : (float * float) list -> threshold:float -> float
(** [fraction_above items ~threshold] is the weight fraction (0..1) of
    items whose [|latitude|] strictly exceeds [threshold].  Total weight of
    zero yields [0.]. *)

val threshold_curve : ?thresholds:float list -> (float * float) list -> (float * float) list
(** Percentage-above-threshold curve for Fig. 4: default thresholds are
    0, 10, ..., 90 degrees.  Result pairs are [(threshold, percent)]. *)
