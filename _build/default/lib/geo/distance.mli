(** Great-circle distances on the WGS-84 mean sphere.

    The paper measures cable lengths in kilometres; the simulator needs
    distances accurate to a few kilometres over spans of up to 39,000 km,
    for which a spherical model is sufficient.  {!vincenty} provides an
    ellipsoidal reference used in the test suite to bound the spherical
    error. *)

val earth_radius_km : float
(** Mean Earth radius (6371.0088 km). *)

val haversine_km : Coord.t -> Coord.t -> float
(** Great-circle distance via the haversine formula.  Numerically stable
    for antipodal and for very close points. *)

val equirectangular_km : Coord.t -> Coord.t -> float
(** Fast flat-earth approximation; adequate below ~100 km separation.
    Used by the spatial index for candidate pruning only. *)

val vincenty_km : ?max_iter:int -> Coord.t -> Coord.t -> float
(** Vincenty inverse formula on the WGS-84 ellipsoid.  Falls back to
    {!haversine_km} when the iteration fails to converge (nearly antipodal
    points). *)

val central_angle_rad : Coord.t -> Coord.t -> float
(** Central angle between two points, radians. *)

val path_length_km : Coord.t list -> float
(** Sum of haversine hop lengths along a polyline.  [0.] for lists of
    fewer than two points. *)

val initial_bearing_deg : Coord.t -> Coord.t -> float
(** Forward azimuth from the first point towards the second, degrees in
    [[0, 360)]. *)
