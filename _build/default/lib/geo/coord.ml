type t = { lat : float; lon : float }

exception Invalid_coordinate of string

let valid_float f = Float.is_finite f

let make ~lat ~lon =
  if not (valid_float lat && valid_float lon) then
    raise (Invalid_coordinate (Printf.sprintf "non-finite coordinate (%f, %f)" lat lon));
  if lat < -90.0 || lat > 90.0 then
    raise (Invalid_coordinate (Printf.sprintf "latitude %f out of [-90, 90]" lat));
  { lat; lon = Angle.normalize_lon lon }

let make_opt ~lat ~lon =
  match make ~lat ~lon with c -> Some c | exception Invalid_coordinate _ -> None

let lat c = c.lat
let lon c = c.lon

let equal ?(eps = 1e-9) a b =
  Float.abs (a.lat -. b.lat) <= eps && Angle.angular_diff a.lon b.lon <= eps

let compare a b =
  match Float.compare a.lat b.lat with 0 -> Float.compare a.lon b.lon | c -> c

let antipode c =
  { lat = -.c.lat; lon = Angle.normalize_lon (c.lon +. 180.0) }

let abs_lat c = Float.abs c.lat

let northern c = c.lat >= 0.0

let pp ppf c =
  let ns = if c.lat >= 0.0 then 'N' else 'S' in
  let ew = if c.lon >= 0.0 then 'E' else 'W' in
  Format.fprintf ppf "%.2f%c %.2f%c" (Float.abs c.lat) ns (Float.abs c.lon) ew

let to_string c = Format.asprintf "%a" pp c

let of_string s =
  let s = String.trim s in
  let parse_signed_pair s =
    match String.split_on_char ',' s with
    | [ a; b ] -> (
        match (float_of_string_opt (String.trim a), float_of_string_opt (String.trim b)) with
        | Some lat, Some lon -> make_opt ~lat ~lon
        | _ -> None)
    | _ -> None
  in
  let parse_hemisphere s =
    (* Format produced by [pp]: "40.71N 74.01W". *)
    match String.split_on_char ' ' s with
    | [ a; b ] when String.length a >= 2 && String.length b >= 2 ->
        let split_tag x =
          let n = String.length x in
          (String.sub x 0 (n - 1), x.[n - 1])
        in
        let va, ta = split_tag a and vb, tb = split_tag b in
        let sign_of tag v =
          match tag with
          | 'N' | 'E' -> Some v
          | 'S' | 'W' -> Some (-.v)
          | _ -> None
        in
        (match (float_of_string_opt va, float_of_string_opt vb) with
        | Some fa, Some fb -> (
            match (sign_of ta fa, sign_of tb fb) with
            | Some lat, Some lon -> make_opt ~lat ~lon
            | _ -> None)
        | _ -> None)
    | _ -> None
  in
  match parse_hemisphere s with Some c -> Some c | None -> parse_signed_pair s
