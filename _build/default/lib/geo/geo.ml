(** Geospatial substrate: coordinates, distances, geodesics, geomagnetic
    latitude, latitude banding, coarse regions, spatial indexing and map
    projections.

    This library replaces the GIS tooling the paper relied on (shapefiles,
    Google Maps API): everything downstream consumes only these
    primitives. *)

module Angle = Angle
module Coord = Coord
module Distance = Distance
module Geodesic = Geodesic
module Geomagnetic = Geomagnetic
module Latband = Latband
module Region = Region
module Grid_index = Grid_index
module Projection = Projection
