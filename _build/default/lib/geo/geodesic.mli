(** Great-circle interpolation and cable-path sampling.

    Cables in the infrastructure model follow great-circle arcs between
    their waypoints.  Repeater and grounding positions are sampled at fixed
    arc-length intervals along those paths, which is what this module
    provides. *)

val intermediate : Coord.t -> Coord.t -> float -> Coord.t
(** [intermediate a b f] is the point at fraction [f] (in [[0, 1]]) of the
    great-circle arc from [a] to [b].  [f = 0.] gives [a]; [f = 1.] gives
    [b].  For (near-)antipodal endpoints the arc is ambiguous; the
    implementation keeps a deterministic choice. *)

val waypoints : Coord.t -> Coord.t -> n:int -> Coord.t list
(** [waypoints a b ~n] is a polyline of [n + 1] points ([a] ... [b]) evenly
    spaced along the arc.  @raise Invalid_argument if [n < 1]. *)

val sample_every_km : Coord.t -> Coord.t -> step_km:float -> Coord.t list
(** Points every [step_km] kilometres along the arc, including both
    endpoints.  @raise Invalid_argument if [step_km <= 0.]. *)

val point_at_km : Coord.t list -> float -> Coord.t
(** [point_at_km path d] walks [d] kilometres along a polyline and returns
    the interpolated position.  Clamps to the endpoints when [d] is outside
    [[0, length]].  @raise Invalid_argument on an empty path. *)

val positions_along : Coord.t list -> spacing_km:float -> (float * Coord.t) list
(** [positions_along path ~spacing_km] is the list of (chainage-km, point)
    pairs at [spacing_km], [2 * spacing_km], ... strictly inside the path.
    This is the repeater-placement primitive: a 400 km path at 150 km
    spacing has repeaters at 150 and 300 km.
    @raise Invalid_argument if [spacing_km <= 0.]. *)

val midpoint : Coord.t -> Coord.t -> Coord.t
(** [midpoint a b] is [intermediate a b 0.5]. *)
