(** Geographic coordinates (WGS-84 latitude/longitude, degrees).

    Values are created through {!make}, which normalizes the longitude into
    [(-180, 180]] and rejects out-of-range latitudes, so every [t] in the
    program is well-formed by construction. *)

type t = private { lat : float; lon : float }

exception Invalid_coordinate of string

val make : lat:float -> lon:float -> t
(** [make ~lat ~lon] builds a coordinate.  The longitude is wrapped into
    [(-180, 180]].  @raise Invalid_coordinate if [lat] is outside
    [[-90, 90]] or either component is NaN/infinite. *)

val make_opt : lat:float -> lon:float -> t option
(** [make_opt] is {!make} returning [None] instead of raising. *)

val lat : t -> float
val lon : t -> float

val equal : ?eps:float -> t -> t -> bool
(** [equal ?eps a b] is per-component comparison with tolerance [eps]
    (default [1e-9] degrees).  Longitude comparison is performed modulo
    360 degrees. *)

val compare : t -> t -> int
(** Total order (lexicographic on (lat, lon)), suitable for [Map]/[Set]. *)

val antipode : t -> t
(** The diametrically opposite point. *)

val abs_lat : t -> float
(** [abs_lat c] is [|lat c|]: the paper's analyses treat north and south
    symmetrically. *)

val northern : t -> bool
(** [northern c] is [lat c >= 0.]. *)

val pp : Format.formatter -> t -> unit
(** Prints as e.g. ["40.71N 74.01W"]. *)

val to_string : t -> string

val of_string : string -> t option
(** Parses the {!pp} format and also ["lat,lon"] decimal pairs. *)
