(** Continents and coarse geographic regions.

    The dataset generators and the country-scale analysis need to assign
    synthetic points to continents and to test whether a point is on land.
    We use coarse hand-drawn polygons: the consumers only need statistical
    realism (infrastructure on land masses, correct continent labels for
    major cities), not GIS-grade coastlines. *)

type continent =
  | Africa
  | Asia
  | Europe
  | North_america
  | South_america
  | Oceania
  | Antarctica

val all_continents : continent list

val continent_to_string : continent -> string
val continent_of_string : string -> continent option
val equal_continent : continent -> continent -> bool

type polygon
(** A closed polygon on the (lon, lat) plane.  Vertices are given in order;
    the closing edge is implicit. *)

val polygon : (float * float) list -> polygon
(** [polygon vertices] builds a polygon from [(lat, lon)] vertices.
    @raise Invalid_argument with fewer than 3 vertices. *)

val contains : polygon -> Coord.t -> bool
(** Ray-casting point-in-polygon test.  Points exactly on an edge may fall
    on either side; callers treat membership statistically. *)

val continent_of : Coord.t -> continent option
(** [continent_of c] is the continent whose (coarse) polygon contains [c],
    or [None] over open ocean.  Overlapping boundary zones resolve in the
    order of {!all_continents}. *)

val continent_of_nearest : Coord.t -> continent
(** Like {!continent_of} but falls back to the continent with the nearest
    anchor point when the coordinate is offshore, so every point gets a
    label. *)

val on_land : Coord.t -> bool
(** [on_land c] is [continent_of c <> None]. *)
