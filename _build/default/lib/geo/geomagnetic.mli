(** Geomagnetic (dipole) latitude.

    GIC intensity correlates with {e geomagnetic} rather than geographic
    latitude: the auroral electrojets are organized around the geomagnetic
    pole.  We use the centred-dipole approximation with the IGRF-13 (2020)
    north geomagnetic pole at 80.65°N, 72.68°W.  The paper's thresholds
    (40°, 60°) are geographic; this module supports the physics-based GIC
    extension and the sensitivity analyses. *)

val north_pole : Coord.t
(** IGRF-13 2020 centred-dipole north pole. *)

val dipole_latitude : Coord.t -> float
(** [dipole_latitude c] is the geomagnetic latitude of [c] in degrees
    ([[-90, 90]]), positive towards the geomagnetic north pole. *)

val dipole_colatitude : Coord.t -> float
(** [90. -. |dipole_latitude c|]: angular distance to the nearer
    geomagnetic pole. *)

val l_shell : Coord.t -> float
(** McIlwain L-parameter of the dipole field line through [c] at the
    surface: [L = 1 / cos²(dipole latitude)].  Diverges towards the poles;
    capped at 1000. *)
