(** Map projections onto a character/pixel grid.

    Used by [Report.Worldmap] to render Fig. 1/2-style maps as ASCII art
    and by CSV exporters that emit plot-ready x/y pairs. *)

type t = {
  width : int;
  height : int;
  lat_min : float;
  lat_max : float;
  lon_min : float;
  lon_max : float;
}

val equirectangular : ?bounds:float * float * float * float -> width:int -> height:int -> unit -> t
(** [equirectangular ~width ~height ()] covers the whole globe; [bounds]
    is [(lat_min, lat_max, lon_min, lon_max)] for regional maps.
    @raise Invalid_argument on non-positive dimensions or inverted
    bounds. *)

val to_xy : t -> Coord.t -> (int * int) option
(** Pixel coordinates (column, row); row 0 is the {e northern} edge.
    [None] when the point falls outside the projection bounds. *)

val of_xy : t -> int -> int -> Coord.t
(** Centre coordinate of pixel (x, y).  Clamps out-of-range pixels to the
    map edge. *)

val mercator_y : t -> Coord.t -> (int * int) option
(** Like {!to_xy} but with Mercator vertical spacing (latitude clamped to
    ±85° as usual for the Web-Mercator family). *)
