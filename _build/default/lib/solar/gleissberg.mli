(** The centennial Gleissberg cycle (§2.3 of the paper).

    An 80–100-year modulation of solar-maximum strength: the frequency of
    high-impact events varies by about a factor of 4 across Gleissberg
    phases (McCracken et al. 2004).  The 20th-century minimum was near
    1910; the recent cycles 23–24 sit in the current minimum, which is why
    the paper argues the Internet grew up during anomalously quiet
    decades. *)

val period_years : float
(** Nominal period used by the model (88 years). *)

val reference_minimum : float
(** Decimal year of the 20th-century Gleissberg minimum (1910). *)

val phase : float -> float
(** [phase year] in [[0, 1)]: 0 at a Gleissberg minimum. *)

val modulation : float -> float
(** [modulation year] is a multiplicative factor in [[0.5, 2.0]] applied to
    extreme-event rates: 0.5 at a Gleissberg minimum, 2.0 at a maximum
    (factor 4 swing). *)

val next_maximum_after : float -> float
(** Decimal year of the first Gleissberg maximum after the given year. *)

val is_rising : float -> bool
(** Whether solar long-term activity is rising at the given year (the
    paper's "emerging from a minimum" situation for the 2020s). *)
