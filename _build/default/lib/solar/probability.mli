(** Occurrence-probability models for extreme solar events (§2.3).

    The paper quotes per-decade probabilities of a Carrington-scale event
    between 1.6% (Kirchen et al. 2020) and 12% (Riley 2012), a direct-impact
    frequency of 2.6–5.2 large events per century, and the Bernoulli
    observation that a once-in-a-century event has a 9% chance per decade
    assuming independence.  This module implements all three model
    families: Riley's power-law extrapolation of the Dst distribution, a
    lognormal alternative, and homogeneous/modulated Poisson arrival
    processes. *)

val riley_exponent : float
(** Power-law CCDF slope for |Dst| used by Riley 2012 (α ≈ 3.2 for the
    event-magnitude density; the CCDF scales as x^(1−α)). *)

val power_law_ccdf : alpha:float -> xmin:float -> float -> float
(** [power_law_ccdf ~alpha ~xmin x] is P(X > x) for a Pareto tail with
    density exponent [alpha] normalized at [xmin]: [(x /. xmin) ** (1. -.
    alpha)].  1 for [x <= xmin].  @raise Invalid_argument if
    [alpha <= 1.] or [xmin <= 0.]. *)

val events_per_year_exceeding : dst:float -> float
(** Rate (per year) of storms at least as strong as [dst], from the
    power-law tail calibrated on the 1957–2020 Dst record (one |Dst| ≥ 589
    event per ~31 years). *)

val prob_in_years : rate_per_year:float -> years:float -> float
(** Poisson probability of at least one arrival in a window:
    [1 - exp (-rate * years)].  @raise Invalid_argument on negative
    arguments. *)

val riley_decadal : float
(** Riley 2012 headline: P(Dst ≤ −850 within a decade) ≈ 0.12. *)

val kirchen_decadal : float
(** Kirchen et al. 2020 headline: ≈ 0.016. *)

val bernoulli_decadal_of_centennial : float
(** The paper's note: a once-in-100-years event under independence has
    [1 - 0.99^10 ≈ 0.096] probability per decade. *)

val decadal_range : float * float
(** [(kirchen_decadal, riley_decadal)]: the bracket quoted in the paper's
    abstract and §6 (1.6–12%). *)

val direct_impact_per_century : low:bool -> float
(** Frequency of direct-impact large events per century: 2.6 (low) or 5.2
    (high), from McCracken et al. polar-ice flux studies. *)

val modulated_rate : base_rate_per_year:float -> year:float -> float
(** Extreme-event rate modulated by the Gleissberg factor and the
    instantaneous solar-cycle activity (normalized SSN), used by the
    scenario generator. *)

val expected_events : base_rate_per_year:float -> start:float -> stop:float -> float
(** Integral of {!modulated_rate} over a year span (trapezoid, monthly
    steps). *)
