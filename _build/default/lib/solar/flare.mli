(** Solar flares and radio blackouts (§2.1).

    Flares are electromagnetic bursts that reach Earth in 8 minutes and
    disturb the ionosphere — HF radio blackouts and GPS degradation on the
    dayside — but, as the paper stresses, "do not pose any threat to
    terrestrial communication".  Modeled here for completeness of the §2
    threat taxonomy: classes, the NOAA R scale, and occurrence rates tied
    to the solar cycle. *)

type flare_class = A | B | C | M | X

type t = {
  cls : flare_class;
  magnitude : float;  (** multiplier within the class, ≥ 1 (X13.3 → X, 13.3) *)
}

val make : flare_class -> float -> t
(** @raise Invalid_argument if the magnitude is below 1 (or ≥ 10 for
    classes below X, which have a next class). *)

val peak_flux_w_m2 : t -> float
(** GOES 1–8 Å peak flux: A = 1e-8 × magnitude, each class a decade up. *)

val of_peak_flux : float -> t
(** Inverse of {!peak_flux_w_m2}.  @raise Invalid_argument on
    non-positive flux. *)

type r_level = R0 | R1 | R2 | R3 | R4 | R5

val r_scale : t -> r_level
(** NOAA radio-blackout level: M1 → R1, M5 → R2, X1 → R3, X10 → R4,
    X20 → R5. *)

val r_to_string : r_level -> string

val blackout_minutes : t -> float
(** Typical dayside HF blackout duration (0 below M; tens of minutes to
    hours for X-class). *)

val affects_terrestrial_cables : t -> bool
(** Always [false] — the paper's point. *)

val rate_per_day : flare_class -> ssn:float -> float
(** Occurrence rate as a function of sunspot number (flares track active
    regions: ~0.1 M-flares/day at SSN 20, several per day near a strong
    maximum; X-flares roughly a tenth of that). *)

val carrington_flare : t
(** The 1859 white-light flare, estimated ≈ X45. *)
