(** Solar-cycle model: sunspot-number series for cycles 12–25.

    Uses the Hathaway (1994) cycle-shape function
    [R(t) = A (t/b)^3 / (exp((t/b)^2) - c)] with per-cycle amplitude and
    published start dates.  Cycle 25 carries two published forecasts the
    paper contrasts: the consensus-panel "weak" forecast (peak ≈ 115) and
    the McIntosh et al. 2020 "strong" forecast (peak ≈ 233, range
    210–260). *)

type cycle = {
  number : int;
  start_year : float;  (** decimal year of cycle minimum *)
  peak_ssn : float;  (** smoothed sunspot number at maximum *)
}

val cycles : cycle list
(** Cycles 12 (1878) through 24 (2008–2019), peak SSN from the SILSO v2
    record, plus cycle 25 with the consensus forecast. *)

val cycle_25_weak : cycle
val cycle_25_strong : cycle
(** The two cycle-25 forecasts discussed in §2.3. *)

val find_cycle : int -> cycle option

val shape : amplitude:float -> months_since_min:float -> float
(** Hathaway shape function: SSN at [months_since_min] for a cycle of the
    given amplitude.  Zero before the minimum. *)

val ssn_at : ?cycle25:cycle -> float -> float
(** [ssn_at year] is the modeled smoothed sunspot number at a decimal year
    (1878–2035), summing overlapping cycle shapes.  [cycle25] selects the
    forecast used for years ≥ 2020 (default {!cycle_25_weak}). *)

val series :
  ?cycle25:cycle -> start:float -> stop:float -> step:float -> unit -> (float * float) list
(** Sampled [(year, ssn)] series.  @raise Invalid_argument if
    [step <= 0.] or [stop < start]. *)

val cycle_peak_year : cycle -> float
(** Approximate decimal year of the cycle's maximum under the shape
    model. *)

val cme_rate_per_day : float -> float
(** Empirical CME rate as a function of SSN: ~0.5/day at solar minimum
    rising to ~6/day at high maxima (LASCO statistics). *)
