type g_level = G0 | G1 | G2 | G3 | G4 | G5

let g_to_string = function
  | G0 -> "G0"
  | G1 -> "G1 (minor)"
  | G2 -> "G2 (moderate)"
  | G3 -> "G3 (strong)"
  | G4 -> "G4 (severe)"
  | G5 -> "G5 (extreme)"

let g_of_kp kp =
  if kp < 0.0 || kp > 9.0 then invalid_arg "Noaa_scale.g_of_kp: Kp outside [0, 9]";
  if kp < 5.0 then G0
  else if kp < 6.0 then G1
  else if kp < 7.0 then G2
  else if kp < 8.0 then G3
  else if kp < 9.0 then G4
  else G5

let kp_floor_of_g = function
  | G0 -> 0.0
  | G1 -> 5.0
  | G2 -> 6.0
  | G3 -> 7.0
  | G4 -> 8.0
  | G5 -> 9.0

(* Empirical main-phase relation (e.g. the quasi-linear fits used in GIC
   studies): |Dst| ~ 15 exp(Kp/2.1).  Kp 9 -> ~ -1090 .. we use a fit
   anchored at (Kp 5, -50), (Kp 7, -150), (Kp 9, -550). *)
let kp_of_dst dst =
  if dst > 50.0 then invalid_arg "Noaa_scale.kp_of_dst: not a storm-time Dst";
  let x = Float.max 1.0 (Float.abs (Float.min dst 0.0)) in
  (* Inverse of |Dst| = 7.5 * exp(Kp / 2.1). *)
  Float.max 0.0 (Float.min 9.0 (2.1 *. log (x /. 7.5)))

let dst_of_kp kp =
  if kp < 0.0 || kp > 9.0 then invalid_arg "Noaa_scale.dst_of_kp: Kp outside [0, 9]";
  -.(7.5 *. exp (kp /. 2.1))

let g_of_dst dst = g_of_kp (kp_of_dst dst)

let expected_effects = function
  | G0 -> "quiet; no storm-level effects"
  | G1 -> "weak grid fluctuations; minor satellite operations impact"
  | G2 -> "high-latitude grids may see voltage alarms; drag increases"
  | G3 -> "voltage corrections required; surface charging on satellites"
  | G4 -> "widespread voltage problems; tracking and drag disruptions"
  | G5 ->
      "grid collapse and transformer damage possible; HF blackout for days; \
       severe satellite drag and charging"
