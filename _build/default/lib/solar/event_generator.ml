type event = { year : float; dst_nt : float; severity : Dst.severity }

let default_rate ~min_dst = Probability.events_per_year_exceeding ~dst:(-.min_dst)

(* Thinning algorithm for the inhomogeneous Poisson process: draw from a
   dominating homogeneous process at the peak modulated rate, accept with
   ratio rate(t)/peak. *)
let generate ?(min_dst = 100.0) ?base_rate_per_year ~rng ~start ~stop () =
  if stop < start then invalid_arg "Event_generator.generate: stop < start";
  if min_dst < 0.0 then invalid_arg "Event_generator.generate: min_dst must be positive";
  let base =
    match base_rate_per_year with Some r -> r | None -> default_rate ~min_dst
  in
  if base <= 0.0 then []
  else begin
    (* Peak modulation factor of [modulated_rate] relative to base: the
       Gleissberg maximum (2.0) times the activity ceiling (1.375). *)
    let peak = base *. 2.8 in
    let events = ref [] in
    let t = ref start in
    let continue = ref true in
    while !continue do
      let dt = Rng.exponential rng ~rate:peak in
      t := !t +. dt;
      if !t >= stop then continue := false
      else begin
        let rate = Probability.modulated_rate ~base_rate_per_year:base ~year:!t in
        if Rng.bernoulli rng ~p:(Float.min 1.0 (rate /. peak)) then begin
          (* Magnitude from the Pareto tail above min_dst with the Riley
             density exponent. *)
          let mag = Rng.pareto rng ~xmin:min_dst ~alpha:(Probability.riley_exponent -. 1.0) in
          let dst = -.Float.min 3000.0 mag in
          events := { year = !t; dst_nt = dst; severity = Dst.severity_of_dst dst } :: !events
        end
      end
    done;
    List.rev !events
  end

let worst events =
  List.fold_left
    (fun acc e ->
      match acc with
      | None -> Some e
      | Some best -> if e.dst_nt < best.dst_nt then Some e else acc)
    None events

let count_at_least events sev =
  List.length (List.filter (fun e -> Dst.compare_severity e.severity sev >= 0) events)

let carrington_in_window ?(trials = 400) ~seed ~start ~stop () =
  let master = Rng.create seed in
  let hits = ref 0 in
  for _ = 1 to trials do
    let rng = Rng.split master in
    let events = generate ~rng ~start ~stop () in
    if List.exists (fun e -> Float.abs e.dst_nt >= 850.0) events then incr hits
  done;
  float_of_int !hits /. float_of_int trials
