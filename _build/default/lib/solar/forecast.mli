(** Early-warning model (§5.2: "How to use the lead time?").

    A CME is observed leaving the Sun (coronagraph detection within about
    an hour of launch); its magnetic orientation — which decides whether
    the storm is severe — is only measured at the L1 monitor, roughly
    1.5 million km upstream, minutes to an hour before impact.  The
    shutdown planner consumes the resulting timeline. *)

type warning_level = Watch | Warning | Alert
(** [Watch]: CME launched, Earth inside the possible cone.  [Warning]:
    arrival within 12 h.  [Alert]: L1 confirmation of southward field,
    impact imminent. *)

type timeline = {
  detection_delay_h : float;  (** launch → coronagraph detection *)
  transit_h : float;  (** launch → Earth impact *)
  l1_confirmation_h : float;  (** L1 crossing → impact *)
  actionable_lead_h : float;  (** detection → impact: the planning window *)
}

val timeline : ?solar_wind_km_s:float -> Cme.t -> timeline
(** Timeline for one CME.  The actionable lead time is transit minus
    detection delay, and is at least 13 h for the fastest credible CMEs
    (§5.2). *)

val level_at : timeline -> hours_after_launch:float -> warning_level option
(** Warning level in effect at a given time, [None] before detection. *)

val l1_distance_km : float
(** Sun–Earth L1 standoff used for the confirmation window (1.5e6 km). *)

val pp_timeline : Format.formatter -> timeline -> unit
