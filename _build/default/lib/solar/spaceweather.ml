(** Space-weather substrate: solar cycles, CME kinematics, historical storm
    catalog, occurrence-probability models and early-warning timelines.

    §2 of the paper ("Motivation: a real threat") is implemented entirely
    by this library; the GIC library translates its storm scenarios into
    ground effects. *)

module Dst = Dst
module Cme = Cme
module Sunspot = Sunspot
module Gleissberg = Gleissberg
module Probability = Probability
module Forecast = Forecast
module Storm_catalog = Storm_catalog
module Event_generator = Event_generator
module Noaa_scale = Noaa_scale
module Flare = Flare
