(** Coronal mass ejections: kinematics, Earth-transit time and expected
    geomagnetic response.

    The transit model integrates a drag-based equation of motion (Vršnak's
    drag-based model, DBM): the ejecta relaxes towards the ambient solar
    wind speed, so fast CMEs decelerate.  It reproduces the observational
    anchors the paper cites: the Carrington CME (~2700 km/s launch)
    arriving in ≈ 17.6 h and a typical 13-hour-to-5-day range (§2.1). *)

type t = {
  speed_km_s : float;  (** launch speed near the Sun, km/s *)
  angular_width_deg : float;  (** apparent angular width *)
  southward_b_nt : float;  (** southward IMF magnitude carried, nT (≥ 0) *)
  direction_offset_deg : float;
      (** angle between CME axis and the Sun–Earth line; 0 = head-on *)
}

val make :
  ?angular_width_deg:float ->
  ?southward_b_nt:float ->
  ?direction_offset_deg:float ->
  speed_km_s:float ->
  unit ->
  t
(** Build a CME.  Defaults: width 60°, southward field scaled from speed
    ([southward_b_of_speed]), head-on.  @raise Invalid_argument if the
    speed is outside [(0, 5000]] km/s (faster than any observed CME). *)

val southward_b_of_speed : float -> float
(** Empirical scaling of the expected southward field with launch speed
    (fast CMEs carry stronger fields). *)

val transit_hours : ?solar_wind_km_s:float -> t -> float
(** Drag-based Sun-to-Earth transit time in hours. *)

val arrival_speed_km_s : ?solar_wind_km_s:float -> t -> float
(** Speed at 1 AU after drag. *)

val expected_dst : t -> float
(** Expected minimum Dst (nT, negative) from the empirical coupling of
    arrival speed and southward field (Burton/O'Brien-style scaling). *)

val hits_earth : t -> bool
(** Whether the Earth is inside the CME's angular extent. *)

val earth_impact_probability : t -> float
(** Probability that a CME with random direction on the visible disk hits
    Earth, given only its angular width: width / 360. *)

val carrington_1859 : t
val new_york_railroad_1921 : t
val quebec_1989 : t
val halloween_2003 : t
val near_miss_2012 : t
(** Reconstructed parameter sets for the historical events discussed in
    §2.2 of the paper. *)
