(** Historical geomagnetic storms referenced in §2.2 of the paper. *)

type event = {
  name : string;
  year : int;
  month : int;
  dst_nt : float;  (** estimated minimum Dst, nT *)
  cme : Cme.t;
  hit_earth : bool;
  notes : string;
}

val carrington : event
val new_york_railroad : event
val quebec : event
val halloween : event
val near_miss_2012 : event

val all : event list
(** Chronological list of the catalogued events. *)

val strongest : event
(** The strongest Earth-impacting event on record (Carrington). *)

val find : string -> event option
(** Case-insensitive lookup by name substring. *)

val severity : event -> Dst.severity

val pp_event : Format.formatter -> event -> unit
