(** NOAA space-weather G-scale (geomagnetic storms) and the Kp index.

    Operators receive warnings on the G1–G5 scale; the simulator works in
    Dst.  This module provides the standard conversions (Kp ↔ G level,
    empirical Kp ↔ Dst mapping) so scenarios can be specified the way
    NOAA/SWPC would announce them. *)

type g_level = G0 | G1 | G2 | G3 | G4 | G5

val g_to_string : g_level -> string

val g_of_kp : float -> g_level
(** Kp 5 → G1 … Kp 9 → G5 (below 5 → G0).  @raise Invalid_argument
    outside [[0, 9]]. *)

val kp_floor_of_g : g_level -> float
(** Lowest Kp of a level (G0 → 0). *)

val kp_of_dst : float -> float
(** Empirical main-phase mapping, clamped to [[0, 9]]: quiet Dst → low
    Kp; −589 nT (Quebec) → ≈ 9.  @raise Invalid_argument for positive
    Dst beyond +50. *)

val dst_of_kp : float -> float
(** Inverse of {!kp_of_dst} (representative Dst for a Kp). *)

val g_of_dst : float -> g_level
(** Composition: the G level a storm of the given Dst would be announced
    at. *)

val expected_effects : g_level -> string
(** One-line operational impact description (from the SWPC scale). *)
