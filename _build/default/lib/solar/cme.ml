type t = {
  speed_km_s : float;
  angular_width_deg : float;
  southward_b_nt : float;
  direction_offset_deg : float;
}

let au_km = 1.496e8

let southward_b_of_speed v =
  (* Empirical: slow CMEs ~5-10 nT southward component, extreme ones
     approach 60-100 nT (Carrington estimates).  Linear in speed above the
     ambient wind. *)
  Float.max 2.0 (0.03 *. (v -. 300.0))

let make ?(angular_width_deg = 60.0) ?southward_b_nt ?(direction_offset_deg = 0.0)
    ~speed_km_s () =
  if speed_km_s <= 0.0 || speed_km_s > 5000.0 then
    invalid_arg "Cme.make: speed outside (0, 5000] km/s";
  if angular_width_deg <= 0.0 || angular_width_deg > 360.0 then
    invalid_arg "Cme.make: width outside (0, 360]";
  let southward_b_nt =
    match southward_b_nt with Some b -> Float.max 0.0 b | None -> southward_b_of_speed speed_km_s
  in
  { speed_km_s; angular_width_deg; southward_b_nt; direction_offset_deg }

(* Drag-based model: dv/dt = -gamma (v - w) |v - w|.  The drag parameter
   falls with launch speed (massive fast ejecta are less decelerated):
   gamma = 2e-8 / (1 + (v0/900)^2) per km, calibrated so a 2700 km/s
   Carrington-class CME arrives in ~17 h and a 450 km/s slow CME in ~3.7
   days.  Integrated numerically from r = 20 Rs to 1 AU. *)
let gamma_for_speed v0 = 2.0e-8 /. (1.0 +. ((v0 /. 900.0) ** 2.0))

let start_km = 20.0 *. 6.96e5 (* 20 solar radii *)

let integrate ?(solar_wind_km_s = 450.0) cme =
  let w = solar_wind_km_s in
  let gamma_per_km = gamma_for_speed cme.speed_km_s in
  let dt = 60.0 (* s *) in
  let rec step r v t =
    if r >= au_km then (v, t)
    else
      let dv = -.gamma_per_km *. (v -. w) *. Float.abs (v -. w) *. dt in
      let v' = Float.max (Float.min v w) (v +. dv) in
      step (r +. (v' *. dt)) v' (t +. dt)
  in
  step start_km cme.speed_km_s 0.0

let transit_hours ?solar_wind_km_s cme =
  let _, t = integrate ?solar_wind_km_s cme in
  (* Time to cover the first 20 Rs at launch speed, plus integrated leg. *)
  (t +. (start_km /. cme.speed_km_s)) /. 3600.0

let arrival_speed_km_s ?solar_wind_km_s cme =
  let v, _ = integrate ?solar_wind_km_s cme in
  v

(* O'Brien & McPherron-style coupling: Dst_min ~ -alpha * v * Bs with v in
   km/s and Bs in nT; alpha calibrated so that the 2012 near-miss event
   (v ~ 2000 km/s arrival, Bs ~ 50 nT) maps to ~ -1150 nT as estimated by
   Baker et al. *)
let coupling_alpha = 1.15e-2

let expected_dst cme =
  let v = arrival_speed_km_s cme in
  -.(coupling_alpha *. v *. cme.southward_b_nt)

let hits_earth cme = Float.abs cme.direction_offset_deg <= cme.angular_width_deg /. 2.0

let earth_impact_probability cme = Float.min 1.0 (cme.angular_width_deg /. 360.0)

let carrington_1859 =
  make ~speed_km_s:2700.0 ~southward_b_nt:65.0 ~angular_width_deg:90.0 ()

let new_york_railroad_1921 =
  make ~speed_km_s:2200.0 ~southward_b_nt:55.0 ~angular_width_deg:80.0 ()

let quebec_1989 = make ~speed_km_s:1500.0 ~southward_b_nt:28.0 ~angular_width_deg:70.0 ()

let halloween_2003 = make ~speed_km_s:2000.0 ~southward_b_nt:28.0 ~angular_width_deg:80.0 ()

let near_miss_2012 =
  make ~speed_km_s:2500.0 ~southward_b_nt:60.0 ~angular_width_deg:90.0
    ~direction_offset_deg:120.0 ()
