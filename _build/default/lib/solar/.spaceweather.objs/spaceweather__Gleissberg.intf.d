lib/solar/gleissberg.mli:
