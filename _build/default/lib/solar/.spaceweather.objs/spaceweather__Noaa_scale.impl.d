lib/solar/noaa_scale.ml: Float
