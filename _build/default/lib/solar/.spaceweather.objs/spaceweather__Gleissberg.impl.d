lib/solar/gleissberg.ml: Float
