lib/solar/spaceweather.ml: Cme Dst Event_generator Flare Forecast Gleissberg Noaa_scale Probability Storm_catalog Sunspot
