lib/solar/noaa_scale.mli:
