lib/solar/forecast.mli: Cme Format
