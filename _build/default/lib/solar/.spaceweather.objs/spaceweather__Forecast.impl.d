lib/solar/forecast.ml: Cme Float Format
