lib/solar/probability.mli:
