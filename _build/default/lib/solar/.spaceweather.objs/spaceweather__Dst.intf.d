lib/solar/dst.mli:
