lib/solar/cme.ml: Float
