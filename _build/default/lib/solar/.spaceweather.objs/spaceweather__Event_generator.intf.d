lib/solar/event_generator.mli: Dst Rng
