lib/solar/event_generator.ml: Dst Float List Probability Rng
