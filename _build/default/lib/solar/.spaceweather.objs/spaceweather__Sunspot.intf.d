lib/solar/sunspot.mli:
