lib/solar/sunspot.ml: Float List
