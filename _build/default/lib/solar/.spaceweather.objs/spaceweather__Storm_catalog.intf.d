lib/solar/storm_catalog.mli: Cme Dst Format
