lib/solar/storm_catalog.ml: Cme Dst Format List String
