lib/solar/cme.mli:
