lib/solar/dst.ml: Float Int
