lib/solar/flare.ml:
