lib/solar/flare.mli:
