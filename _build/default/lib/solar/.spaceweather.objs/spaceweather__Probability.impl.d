lib/solar/probability.ml: Float Gleissberg Sunspot
