type flare_class = A | B | C | M | X

type t = { cls : flare_class; magnitude : float }

let class_base = function
  | A -> 1e-8
  | B -> 1e-7
  | C -> 1e-6
  | M -> 1e-5
  | X -> 1e-4

let make cls magnitude =
  if magnitude < 1.0 then invalid_arg "Flare.make: magnitude < 1";
  if cls <> X && magnitude >= 10.0 then
    invalid_arg "Flare.make: magnitude >= 10 rolls into the next class";
  { cls; magnitude }

let peak_flux_w_m2 f = class_base f.cls *. f.magnitude

let of_peak_flux flux =
  if flux <= 0.0 then invalid_arg "Flare.of_peak_flux: non-positive flux";
  let cls =
    if flux < 1e-7 then A else if flux < 1e-6 then B else if flux < 1e-5 then C
    else if flux < 1e-4 then M
    else X
  in
  { cls; magnitude = flux /. class_base cls }

type r_level = R0 | R1 | R2 | R3 | R4 | R5

let r_scale f =
  let flux = peak_flux_w_m2 f in
  if flux < 1e-5 then R0
  else if flux < 5e-5 then R1
  else if flux < 1e-4 then R2
  else if flux < 1e-3 then R3
  else if flux < 2e-3 then R4
  else R5

let r_to_string = function
  | R0 -> "R0"
  | R1 -> "R1 (minor)"
  | R2 -> "R2 (moderate)"
  | R3 -> "R3 (strong)"
  | R4 -> "R4 (severe)"
  | R5 -> "R5 (extreme)"

let blackout_minutes f =
  match r_scale f with
  | R0 -> 0.0
  | R1 -> 10.0
  | R2 -> 30.0
  | R3 -> 60.0
  | R4 -> 120.0
  | R5 -> 240.0

let affects_terrestrial_cables _ = false

let rate_per_day cls ~ssn =
  let m_rate = 0.05 +. (ssn /. 60.0) in
  match cls with
  | A | B -> 10.0 +. (ssn /. 5.0) (* small flares are constant background *)
  | C -> 1.0 +. (ssn /. 15.0)
  | M -> m_rate
  | X -> m_rate /. 10.0

let carrington_flare = { cls = X; magnitude = 45.0 }
