(** Stochastic storm sequences over multi-year horizons.

    Draws CME-driven geomagnetic storms as an inhomogeneous Poisson
    process whose rate follows the solar cycle and Gleissberg modulation
    ({!Probability.modulated_rate}); storm magnitudes follow the Riley
    power-law tail.  Used for decadal risk studies (what does the 2021–
    2050 window hold?) and to drive repeated infrastructure scenarios. *)

type event = {
  year : float;  (** decimal year of impact *)
  dst_nt : float;  (** minimum Dst, negative *)
  severity : Dst.severity;
}

val generate :
  ?min_dst:float ->
  ?base_rate_per_year:float ->
  rng:Rng.t ->
  start:float ->
  stop:float ->
  unit ->
  event list
(** Storms with |Dst| ≥ [min_dst] (default 100 nT, i.e. intense and
    above) over [start, stop], chronological.  [base_rate_per_year] is
    the long-run rate of ≥ [min_dst] storms before modulation (default
    from the calibrated power-law tail).
    @raise Invalid_argument if [stop < start] or [min_dst > 0]. *)

val worst : event list -> event option
(** Deepest-Dst event of a sequence. *)

val count_at_least : event list -> Dst.severity -> int
(** Events at or above a severity class. *)

val carrington_in_window :
  ?trials:int -> seed:int -> start:float -> stop:float -> unit -> float
(** Monte-Carlo probability that the window contains at least one
    Carrington-class (|Dst| ≥ 850) impact. *)
