type severity = Quiet | Minor | Moderate | Intense | Severe | Extreme | Carrington

let severity_of_dst dst =
  if dst > 100.0 then invalid_arg "Dst.severity_of_dst: not a storm-time Dst";
  if dst > -30.0 then Quiet
  else if dst > -50.0 then Minor
  else if dst > -100.0 then Moderate
  else if dst > -250.0 then Intense
  else if dst > -600.0 then Severe
  else if dst > -850.0 then Extreme
  else Carrington

let severity_to_string = function
  | Quiet -> "quiet"
  | Minor -> "minor"
  | Moderate -> "moderate"
  | Intense -> "intense"
  | Severe -> "severe"
  | Extreme -> "extreme"
  | Carrington -> "carrington"

let rank = function
  | Quiet -> 0
  | Minor -> 1
  | Moderate -> 2
  | Intense -> 3
  | Severe -> 4
  | Extreme -> 5
  | Carrington -> 6

let compare_severity a b = Int.compare (rank a) (rank b)

let representative_dst = function
  | Quiet -> -15.0
  | Minor -> -40.0
  | Moderate -> -75.0
  | Intense -> -175.0
  | Severe -> -425.0
  | Extreme -> -725.0
  | Carrington -> -1200.0

let quebec_1989_dst = 589.0

let relative_strength dst = Float.abs dst /. quebec_1989_dst
