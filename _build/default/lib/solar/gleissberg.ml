let period_years = 88.0

(* 1910 was the 20th-century minimum; adding integer periods puts the next
   minima near 1998, consistent with the weak cycles 23-24. *)
let reference_minimum = 1910.0

let phase year =
  let p = Float.rem ((year -. reference_minimum) /. period_years) 1.0 in
  if p < 0.0 then p +. 1.0 else p

let modulation year =
  (* Cosine modulation between 0.5 (minimum) and 2.0 (maximum): a factor-4
     swing in extreme-event frequency. *)
  let p = phase year in
  let c = cos (2.0 *. Float.pi *. p) in
  (* c = 1 at minimum -> 0.5; c = -1 at maximum -> 2.0; geometric blend. *)
  2.0 ** (-.c)

let next_maximum_after year =
  let p = phase year in
  let to_max = if p < 0.5 then 0.5 -. p else 1.5 -. p in
  year +. (to_max *. period_years)

let is_rising year =
  let p = phase year in
  p < 0.5
