type cycle = { number : int; start_year : float; peak_ssn : float }

let cycles =
  [ { number = 12; start_year = 1878.9; peak_ssn = 124.4 };
    { number = 13; start_year = 1890.2; peak_ssn = 146.5 };
    { number = 14; start_year = 1902.0; peak_ssn = 107.1 };
    { number = 15; start_year = 1913.6; peak_ssn = 175.7 };
    { number = 16; start_year = 1923.6; peak_ssn = 130.2 };
    { number = 17; start_year = 1933.7; peak_ssn = 198.6 };
    { number = 18; start_year = 1944.1; peak_ssn = 218.7 };
    { number = 19; start_year = 1954.3; peak_ssn = 285.0 };
    { number = 20; start_year = 1964.8; peak_ssn = 156.6 };
    { number = 21; start_year = 1976.3; peak_ssn = 232.9 };
    { number = 22; start_year = 1986.7; peak_ssn = 212.5 };
    { number = 23; start_year = 1996.4; peak_ssn = 180.3 };
    { number = 24; start_year = 2008.9; peak_ssn = 116.4 };
    { number = 25; start_year = 2019.9; peak_ssn = 115.0 } ]

let cycle_25_weak = { number = 25; start_year = 2019.9; peak_ssn = 115.0 }
let cycle_25_strong = { number = 25; start_year = 2019.9; peak_ssn = 233.0 }

let find_cycle n = List.find_opt (fun c -> c.number = n) cycles

(* Hathaway (1994)-style shape: R(t) = A (t/b)^3 / (exp((t/b)^2) - c),
   t in months, c = 0.71.  The rise-time parameter b encodes the
   Waldmeier effect (stronger cycles rise faster): peak occurs near
   1.08 b months, i.e. ~4.1 years for a weak cycle and ~3.5 years for a
   very strong one. *)
let shape_c = 0.71

let shape_b amplitude =
  Float.max 36.0 (Float.min 50.0 (50.0 -. (amplitude /. 25.0)))

(* The Hathaway A parameter relates to the peak value; peak of the shape
   with amplitude A is about A * 0.0143 * b... rather than deriving the
   closed form we normalize numerically: find the shape maximum once and
   scale so that [amplitude] is the actual peak SSN. *)
let raw_shape ~a ~b t =
  if t <= 0.0 then 0.0
  else
    let x = t /. b in
    a *. (x ** 3.0) /. (exp (x *. x) -. shape_c)

let shape_peak_value b =
  (* Maximize the unit-amplitude shape numerically over 0..120 months. *)
  let best = ref 0.0 in
  for i = 1 to 1200 do
    let t = float_of_int i /. 10.0 in
    let v = raw_shape ~a:1.0 ~b t in
    if v > !best then best := v
  done;
  !best

let shape ~amplitude ~months_since_min =
  let b = shape_b amplitude in
  let peak = shape_peak_value b in
  if peak <= 0.0 then 0.0
  else raw_shape ~a:(amplitude /. peak) ~b months_since_min

let ssn_at ?(cycle25 = cycle_25_weak) year =
  let effective_cycles =
    List.map (fun c -> if c.number = 25 then cycle25 else c) cycles
  in
  List.fold_left
    (fun acc c ->
      let months = (year -. c.start_year) *. 12.0 in
      if months <= 0.0 || months > 180.0 then acc
      else acc +. shape ~amplitude:c.peak_ssn ~months_since_min:months)
    0.0 effective_cycles

let series ?cycle25 ~start ~stop ~step () =
  if step <= 0.0 then invalid_arg "Sunspot.series: step <= 0";
  if stop < start then invalid_arg "Sunspot.series: stop < start";
  let n = int_of_float (Float.floor ((stop -. start) /. step)) in
  List.init (n + 1) (fun i ->
      let year = start +. (float_of_int i *. step) in
      (year, ssn_at ?cycle25 year))

let cycle_peak_year c =
  let b = shape_b c.peak_ssn in
  (* The unit shape peaks near t = 1.08 b months. *)
  c.start_year +. (1.08 *. b /. 12.0)

let cme_rate_per_day ssn =
  (* LASCO-era fit: ~0.5/day at SSN 0, ~6/day at SSN 200. *)
  0.5 +. (ssn *. 0.0275)
