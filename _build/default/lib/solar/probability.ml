let riley_exponent = 3.2

let power_law_ccdf ~alpha ~xmin x =
  if alpha <= 1.0 then invalid_arg "Probability.power_law_ccdf: alpha <= 1";
  if xmin <= 0.0 then invalid_arg "Probability.power_law_ccdf: xmin <= 0";
  if x <= xmin then 1.0 else (x /. xmin) ** (1.0 -. alpha)

(* Calibration: the tail is normalized so that the headline Riley 2012
   number comes out of the model rather than being quoted: with alpha = 3.2
   the rate of |Dst| >= 850 nT events must be ~0.0128/yr for a 12%
   probability per decade, which pins the rate at the |Dst| = 100 nT
   normalization point to ~1.42/yr of "large intense" storms. *)
let intense_rate_per_year = 1.42
let intense_dst = 100.0

let events_per_year_exceeding ~dst =
  let x = Float.abs dst in
  intense_rate_per_year *. power_law_ccdf ~alpha:riley_exponent ~xmin:intense_dst x

let prob_in_years ~rate_per_year ~years =
  if rate_per_year < 0.0 || years < 0.0 then
    invalid_arg "Probability.prob_in_years: negative argument";
  1.0 -. exp (-.rate_per_year *. years)

let riley_decadal = prob_in_years ~rate_per_year:(events_per_year_exceeding ~dst:(-850.0)) ~years:10.0

let kirchen_decadal = 0.016

let bernoulli_decadal_of_centennial = 1.0 -. (0.99 ** 10.0)

let decadal_range = (kirchen_decadal, riley_decadal)

let direct_impact_per_century ~low = if low then 2.6 else 5.2

let modulated_rate ~base_rate_per_year ~year =
  let g = Gleissberg.modulation year in
  let ssn = Sunspot.ssn_at year in
  (* Activity factor: extreme CMEs cluster near maxima; normalize SSN by a
     strong-maximum value of 200 and keep a floor so minima are not
     zero-rate (the 2012 near miss occurred in a weak cycle). *)
  let activity = 0.25 +. (0.75 *. Float.min 1.5 (ssn /. 200.0)) in
  base_rate_per_year *. g *. activity

let expected_events ~base_rate_per_year ~start ~stop =
  if stop <= start then 0.0
  else
    let step = 1.0 /. 12.0 in
    let n = int_of_float (Float.ceil ((stop -. start) /. step)) in
    let sum = ref 0.0 in
    for i = 0 to n - 1 do
      let y0 = start +. (float_of_int i *. step) in
      let y1 = Float.min stop (y0 +. step) in
      let r0 = modulated_rate ~base_rate_per_year ~year:y0
      and r1 = modulated_rate ~base_rate_per_year ~year:y1 in
      sum := !sum +. ((r0 +. r1) /. 2.0 *. (y1 -. y0))
    done;
    !sum
