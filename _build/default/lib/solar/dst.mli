(** Dst (disturbance storm time) index and storm severity classes.

    Dst measures the depression of the equatorial geomagnetic field in
    nanotesla; more negative means a stronger geomagnetic storm.  The paper
    anchors its scenarios to historical events: the 1989 Quebec storm
    (Dst −589 nT, "one-tenth the strength of 1921") and Carrington-scale
    events (estimates −850 to −1760 nT). *)

type severity =
  | Quiet        (** Dst > −30 nT *)
  | Minor        (** −50 < Dst ≤ −30 *)
  | Moderate     (** −100 < Dst ≤ −50 *)
  | Intense      (** −250 < Dst ≤ −100 *)
  | Severe       (** −600 < Dst ≤ −250 *)
  | Extreme      (** −850 < Dst ≤ −600: 1989-class and above *)
  | Carrington   (** Dst ≤ −850: superstorm class *)

val severity_of_dst : float -> severity
(** Classify a Dst value (nT).  @raise Invalid_argument on a positive
    value greater than +100 (not a storm-time Dst). *)

val severity_to_string : severity -> string

val compare_severity : severity -> severity -> int
(** Orders by strength: [Quiet] least, [Carrington] greatest. *)

val representative_dst : severity -> float
(** A representative Dst for a class (its midpoint; −1200 for
    [Carrington]), used when scenarios are specified by class. *)

val relative_strength : float -> float
(** [relative_strength dst] is [|dst| / 589.]: storm strength normalized
    to the March 1989 Quebec event, the paper's "moderate" reference. *)
