type warning_level = Watch | Warning | Alert

type timeline = {
  detection_delay_h : float;
  transit_h : float;
  l1_confirmation_h : float;
  actionable_lead_h : float;
}

let l1_distance_km = 1.5e6

let timeline ?solar_wind_km_s cme =
  let transit_h = Cme.transit_hours ?solar_wind_km_s cme in
  let arrival = Cme.arrival_speed_km_s ?solar_wind_km_s cme in
  let detection_delay_h = 1.0 in
  let l1_confirmation_h = l1_distance_km /. arrival /. 3600.0 in
  {
    detection_delay_h;
    transit_h;
    l1_confirmation_h;
    actionable_lead_h = Float.max 0.0 (transit_h -. detection_delay_h);
  }

let level_at tl ~hours_after_launch =
  if hours_after_launch < tl.detection_delay_h then None
  else if hours_after_launch >= tl.transit_h -. tl.l1_confirmation_h then Some Alert
  else if hours_after_launch >= tl.transit_h -. 12.0 then Some Warning
  else Some Watch

let pp_timeline ppf tl =
  Format.fprintf ppf
    "detect +%.1fh; impact +%.1fh; L1 confirm %.0f min before; actionable %.1fh"
    tl.detection_delay_h tl.transit_h (tl.l1_confirmation_h *. 60.0) tl.actionable_lead_h
