type event = {
  name : string;
  year : int;
  month : int;
  dst_nt : float;
  cme : Cme.t;
  hit_earth : bool;
  notes : string;
}

let carrington =
  {
    name = "Carrington event";
    year = 1859;
    month = 9;
    dst_nt = -1200.0;
    cme = Cme.carrington_1859;
    hit_earth = true;
    notes =
      "17.6 h transit; telegraph fires and shocks; outages across North \
       America and Europe";
  }

let new_york_railroad =
  {
    name = "New York Railroad superstorm";
    year = 1921;
    month = 5;
    dst_nt = -907.0;
    cme = Cme.new_york_railroad_1921;
    hit_earth = true;
    notes = "strongest storm of the 20th century; telegraph and railroad damage";
  }

let quebec =
  {
    name = "Quebec storm";
    year = 1989;
    month = 3;
    dst_nt = -589.0;
    cme = Cme.quebec_1989;
    hit_earth = true;
    notes =
      "Hydro-Quebec grid collapse, 200+ US grid events; potential variations \
       on the NJ-UK AT&T submarine cable";
  }

let halloween =
  {
    name = "Halloween storms";
    year = 2003;
    month = 10;
    dst_nt = -383.0;
    cme = Cme.halloween_2003;
    hit_earth = true;
    notes = "Swedish blackout; satellite anomalies";
  }

let near_miss_2012 =
  {
    name = "July 2012 near miss";
    year = 2012;
    month = 7;
    dst_nt = -1150.0;
    cme = Cme.near_miss_2012;
    hit_earth = false;
    notes = "Carrington-scale CME through Earth's orbit, missed by ~1 week";
  }

let all = [ carrington; new_york_railroad; quebec; halloween; near_miss_2012 ]

let strongest = carrington

let contains_ci hay needle =
  let hay = String.lowercase_ascii hay and needle = String.lowercase_ascii needle in
  let nh = String.length hay and nn = String.length needle in
  if nn = 0 then true
  else
    let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
    scan 0

let find name = List.find_opt (fun e -> contains_ci e.name name) all

let severity e = Dst.severity_of_dst e.dst_nt

let pp_event ppf e =
  Format.fprintf ppf "%s (%d-%02d): Dst %.0f nT, %s%s" e.name e.year e.month e.dst_nt
    (Dst.severity_to_string (severity e))
    (if e.hit_earth then "" else " [missed Earth]")
