(** Persistent undirected multigraph with integer node identifiers.

    The infrastructure model maps cables to edges and landing
    points/cities to nodes.  Multigraph semantics matter: two cities are
    often joined by several distinct cables, and a failure analysis must
    distinguish "one of the cables died" from "the link is gone". *)

type node = int

type edge = { id : int; u : node; v : node }

type t

val empty : t

val add_node : t -> node -> t
(** Idempotent. *)

val add_edge : t -> id:int -> node -> node -> t
(** Adds the edge and both endpoints.  Self-loops are allowed.
    @raise Invalid_argument if an edge with the same [id] already
    exists. *)

val remove_edge : t -> int -> t
(** Remove an edge by id; no-op when absent.  Endpoints stay. *)

val remove_edges : t -> int list -> t

val remove_node : t -> node -> t
(** Removes the node and all incident edges; no-op when absent. *)

val mem_node : t -> node -> bool
val mem_edge : t -> int -> bool
val find_edge : t -> int -> edge option

val nodes : t -> node list
(** Ascending order. *)

val edges : t -> edge list
(** Ascending id order. *)

val nb_nodes : t -> int
val nb_edges : t -> int

val neighbors : t -> node -> (node * int) list
(** [(neighbor, edge id)] pairs; absent node yields []. A self-loop
    appears once. *)

val degree : t -> node -> int
(** Number of incident edge endpoints (self-loop counts 2). *)

val incident : t -> node -> int list
(** Edge ids incident to the node. *)

val fold_nodes : t -> init:'a -> f:('a -> node -> 'a) -> 'a
val fold_edges : t -> init:'a -> f:('a -> edge -> 'a) -> 'a

val of_edges : (int * node * node) list -> t
(** [of_edges [(id, u, v); ...]] builds a graph in one pass. *)
