(** Structural fragility: bridges, articulation points, k-cores.

    A bridge cable is a single point of disconnection — exactly the
    situation the paper flags for single-cable countries (e.g. the one
    Florida–Portugal link below 40°N). *)

val bridges : Graph.t -> int list
(** Edge ids whose removal increases the number of components.  Parallel
    edges are never bridges. *)

val articulation_points : Graph.t -> Graph.node list
(** Nodes whose removal increases the number of components. *)

val k_core : Graph.t -> k:int -> Graph.t
(** Maximal subgraph in which every node has degree ≥ k.
    @raise Invalid_argument if [k < 0]. *)

val core_number : Graph.t -> (Graph.node, int) Hashtbl.t
(** Largest [k] such that the node belongs to the k-core. *)
