(* Iterative Tarjan low-link computation.  Recursion is avoided because the
   infrastructure graphs reach tens of thousands of nodes. *)

type lowlink = {
  disc : (Graph.node, int) Hashtbl.t;
  low : (Graph.node, int) Hashtbl.t;
  tree_parent : (Graph.node, Graph.node * int) Hashtbl.t;
      (** child -> (parent, tree edge id); roots absent *)
  root_children : (Graph.node, int) Hashtbl.t;  (** root -> #tree children *)
}

let compute_lowlink g =
  let st =
    {
      disc = Hashtbl.create 64;
      low = Hashtbl.create 64;
      tree_parent = Hashtbl.create 64;
      root_children = Hashtbl.create 16;
    }
  in
  let timer = ref 0 in
  let discover n =
    Hashtbl.replace st.disc n !timer;
    Hashtbl.replace st.low n !timer;
    incr timer
  in
  let visit root =
    if not (Hashtbl.mem st.disc root) then begin
      discover root;
      Hashtbl.replace st.root_children root 0;
      (* Frame: (node, edge id used to enter it, unprocessed neighbors). *)
      let stack = ref [ (root, -1, Graph.neighbors g root) ] in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (n, in_edge, remaining) :: rest -> (
            match remaining with
            | [] ->
                stack := rest;
                (match rest with
                | (p, _, _) :: _ ->
                    let lown = Hashtbl.find st.low n in
                    if lown < Hashtbl.find st.low p then Hashtbl.replace st.low p lown
                | [] -> ())
            | (m, eid) :: tl -> (
                stack := (n, in_edge, tl) :: rest;
                match Hashtbl.find_opt st.disc m with
                | None ->
                    discover m;
                    Hashtbl.replace st.tree_parent m (n, eid);
                    if n = root then
                      Hashtbl.replace st.root_children root
                        (Hashtbl.find st.root_children root + 1);
                    stack := (m, eid, Graph.neighbors g m) :: !stack
                | Some dm ->
                    (* Back (or parallel) edge; ignore only the exact tree
                       edge we arrived by. *)
                    if eid <> in_edge && dm < Hashtbl.find st.low n then
                      Hashtbl.replace st.low n dm))
      done
    end
  in
  List.iter visit (Graph.nodes g);
  st

let bridges g =
  let st = compute_lowlink g in
  Hashtbl.fold
    (fun child (parent, eid) acc ->
      if Hashtbl.find st.low child > Hashtbl.find st.disc parent then begin
        (* A parallel edge between the same endpoints makes it not a
           bridge; the low-link test already accounts for this (the
           parallel edge acts as a back edge), so reaching here means no
           parallel edge exists. *)
        ignore parent;
        eid :: acc
      end
      else acc)
    st.tree_parent []
  |> List.sort Int.compare

let articulation_points g =
  let st = compute_lowlink g in
  let cut = Hashtbl.create 16 in
  Hashtbl.iter
    (fun child (parent, _) ->
      if
        (not (Hashtbl.mem st.root_children parent))
        && Hashtbl.find st.low child >= Hashtbl.find st.disc parent
      then Hashtbl.replace cut parent ())
    st.tree_parent;
  Hashtbl.iter
    (fun root children -> if children >= 2 then Hashtbl.replace cut root ())
    st.root_children;
  Hashtbl.fold (fun n () acc -> n :: acc) cut [] |> List.sort Int.compare

let k_core g ~k =
  if k < 0 then invalid_arg "Structure.k_core: negative k";
  let rec strip g =
    let victims =
      Graph.fold_nodes g ~init:[] ~f:(fun acc n ->
          if Graph.degree g n < k then n :: acc else acc)
    in
    if victims = [] then g else strip (List.fold_left Graph.remove_node g victims)
  in
  strip g

let core_number g =
  let out = Hashtbl.create 64 in
  Graph.fold_nodes g ~init:() ~f:(fun () n -> Hashtbl.replace out n 0);
  let rec loop g k =
    let core = k_core g ~k in
    if Graph.nb_nodes core = 0 then ()
    else begin
      Graph.fold_nodes core ~init:() ~f:(fun () n -> Hashtbl.replace out n k);
      loop core (k + 1)
    end
  in
  loop g 1;
  out
