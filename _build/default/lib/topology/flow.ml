(* Dinic with an adjacency-array residual network.  Node ids are remapped
   to a dense range; each undirected graph edge becomes two arcs with the
   full capacity plus their residual twins. *)

type result = {
  value : float;
  edge_flow : int -> float;
  source_side : Graph.node -> bool;
}

type network = {
  n : int;
  (* arcs as parallel arrays *)
  mutable m : int;
  arc_to : int array;
  arc_cap : float array;
  arc_next : int array;  (** next arc in the node's list *)
  head : int array;  (** first arc per node *)
  arc_edge : int array;  (** originating graph edge id, -1 for virtual *)
}

let create_network ~nodes ~arc_estimate =
  {
    n = nodes;
    m = 0;
    arc_to = Array.make arc_estimate 0;
    arc_cap = Array.make arc_estimate 0.0;
    arc_next = Array.make arc_estimate (-1);
    head = Array.make nodes (-1);
    arc_edge = Array.make arc_estimate (-1);
  }

let add_arc net u v cap edge =
  let a = net.m in
  net.arc_to.(a) <- v;
  net.arc_cap.(a) <- cap;
  net.arc_next.(a) <- net.head.(u);
  net.arc_edge.(a) <- edge;
  net.head.(u) <- a;
  net.m <- a + 1

(* Arc a's residual twin is a lxor 1. *)
let add_edge_arcs net u v cap edge =
  add_arc net u v cap edge;
  add_arc net v u cap edge

let add_directed net u v cap =
  add_arc net u v cap (-1);
  add_arc net v u 0.0 (-1)

let dinic net ~s ~t =
  let level = Array.make net.n (-1) in
  let iter = Array.make net.n (-1) in
  let inf = Float.infinity in
  let bfs () =
    Array.fill level 0 net.n (-1);
    let q = Queue.create () in
    level.(s) <- 0;
    Queue.add s q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      let a = ref net.head.(u) in
      while !a <> -1 do
        let v = net.arc_to.(!a) in
        if net.arc_cap.(!a) > 1e-12 && level.(v) < 0 then begin
          level.(v) <- level.(u) + 1;
          Queue.add v q
        end;
        a := net.arc_next.(!a)
      done
    done;
    level.(t) >= 0
  in
  let rec dfs u pushed =
    if u = t then pushed
    else begin
      let result = ref 0.0 in
      while !result = 0.0 && iter.(u) <> -1 do
        let a = iter.(u) in
        let v = net.arc_to.(a) in
        if net.arc_cap.(a) > 1e-12 && level.(v) = level.(u) + 1 then begin
          let d = dfs v (Float.min pushed net.arc_cap.(a)) in
          if d > 0.0 then begin
            net.arc_cap.(a) <- net.arc_cap.(a) -. d;
            let twin = a lxor 1 in
            net.arc_cap.(twin) <- net.arc_cap.(twin) +. d;
            result := d
          end
          else iter.(u) <- net.arc_next.(a)
        end
        else iter.(u) <- net.arc_next.(a)
      done;
      !result
    end
  in
  let total = ref 0.0 in
  while bfs () do
    Array.blit net.head 0 iter 0 net.n;
    let rec pump () =
      let d = dfs s inf in
      if d > 0.0 then begin
        total := !total +. d;
        pump ()
      end
    in
    pump ()
  done;
  !total

let build_base g ~capacity ~extra_nodes =
  let nodes = Graph.nodes g in
  let id_map = Hashtbl.create 256 in
  List.iteri (fun i n -> Hashtbl.replace id_map n i) nodes;
  let n_real = List.length nodes in
  let n_edges = Graph.nb_edges g in
  let net =
    create_network ~nodes:(n_real + extra_nodes)
      ~arc_estimate:((4 * n_edges) + (4 * 4 * (n_real + 1)) + 8)
  in
  ignore
    (Graph.fold_edges g ~init:() ~f:(fun () e ->
         let c = capacity e.Graph.id in
         if c < 0.0 then invalid_arg "Flow: negative capacity";
         if e.Graph.u <> e.Graph.v then
           add_edge_arcs net
             (Hashtbl.find id_map e.Graph.u)
             (Hashtbl.find id_map e.Graph.v)
             c e.Graph.id));
  (net, id_map, n_real)

let max_flow g ~capacity ~source ~sink =
  if source = sink then invalid_arg "Flow.max_flow: source = sink";
  if not (Graph.mem_node g source && Graph.mem_node g sink) then
    invalid_arg "Flow.max_flow: absent terminal";
  let net, id_map, _ = build_base g ~capacity ~extra_nodes:0 in
  let s = Hashtbl.find id_map source and t = Hashtbl.find id_map sink in
  let original_cap = Array.sub net.arc_cap 0 net.m in
  let value = dinic net ~s ~t in
  (* Per-edge |flow|: each arc starts at the edge capacity, so the net
     transfer equals the capacity shift of the forward arc (pushes in the
     two directions cancel in the residual). *)
  let edge_flow_tbl = Hashtbl.create 64 in
  let a = ref 0 in
  while !a < net.m do
    let e = net.arc_edge.(!a) in
    if e >= 0 && not (Hashtbl.mem edge_flow_tbl e) then begin
      let delta = Float.abs (net.arc_cap.(!a) -. original_cap.(!a)) in
      Hashtbl.replace edge_flow_tbl e delta
    end;
    a := !a + 2
  done;
  (* Residual reachability from s. *)
  let reach = Array.make net.n false in
  let q = Queue.create () in
  reach.(s) <- true;
  Queue.add s q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    let a = ref net.head.(u) in
    while !a <> -1 do
      let v = net.arc_to.(!a) in
      if net.arc_cap.(!a) > 1e-12 && not reach.(v) then begin
        reach.(v) <- true;
        Queue.add v q
      end;
      a := net.arc_next.(!a)
    done
  done;
  {
    value;
    edge_flow =
      (fun e -> Option.value ~default:0.0 (Hashtbl.find_opt edge_flow_tbl e));
    source_side =
      (fun node ->
        match Hashtbl.find_opt id_map node with
        | Some i -> reach.(i)
        | None -> false);
  }

let multi_network g ~capacity ~sources ~sinks =
  let sources = List.filter (Graph.mem_node g) sources in
  let sinks = List.filter (Graph.mem_node g) sinks in
  if List.exists (fun s -> List.mem s sinks) sources then
    invalid_arg "Flow.max_flow_multi: overlapping groups";
  if sources = [] || sinks = [] then None
  else begin
    let net, id_map, n_real = build_base g ~capacity ~extra_nodes:2 in
    let s = n_real and t = n_real + 1 in
    let big = 1e15 in
    List.iter (fun x -> add_directed net s (Hashtbl.find id_map x) big) sources;
    List.iter (fun x -> add_directed net (Hashtbl.find id_map x) t big) sinks;
    Some (net, id_map, s, t)
  end

let max_flow_multi g ~capacity ~sources ~sinks =
  match multi_network g ~capacity ~sources ~sinks with
  | None -> 0.0
  | Some (net, _, s, t) -> dinic net ~s ~t

let min_cut_edges_multi g ~capacity ~sources ~sinks =
  match multi_network g ~capacity ~sources ~sinks with
  | None -> []
  | Some (net, id_map, s, t) ->
      let _ = dinic net ~s ~t in
      let reach = Array.make net.n false in
      let q = Queue.create () in
      reach.(s) <- true;
      Queue.add s q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        let a = ref net.head.(u) in
        while !a <> -1 do
          let v = net.arc_to.(!a) in
          if net.arc_cap.(!a) > 1e-12 && not reach.(v) then begin
            reach.(v) <- true;
            Queue.add v q
          end;
          a := net.arc_next.(!a)
        done
      done;
      let side node =
        match Hashtbl.find_opt id_map node with Some i -> reach.(i) | None -> false
      in
      Graph.fold_edges g ~init:[] ~f:(fun acc e ->
          if e.Graph.u <> e.Graph.v && side e.Graph.u <> side e.Graph.v then
            e.Graph.id :: acc
          else acc)
      |> List.sort Int.compare

let min_cut_edges g ~capacity ~source ~sink =
  let r = max_flow g ~capacity ~source ~sink in
  Graph.fold_edges g ~init:[] ~f:(fun acc e ->
      if e.Graph.u <> e.Graph.v && r.source_side e.Graph.u <> r.source_side e.Graph.v then
        e.Graph.id :: acc
      else acc)
  |> List.sort Int.compare
