(** Node-importance measures used by the mitigation planner and the
    infrastructure analysis (e.g. identifying hub landing stations like
    Singapore). *)

val degree : Graph.t -> (Graph.node * int) list
(** All nodes with their degree, descending degree order. *)

val betweenness : Graph.t -> (Graph.node, float) Hashtbl.t
(** Unweighted betweenness centrality (Brandes' algorithm).  Each pair is
    counted once (undirected normalization: scores halved). *)

val closeness : Graph.t -> Graph.node -> float
(** [(reachable - 1) / sum of hop distances]; 0 for isolated nodes. *)

val top_k : ('a * float) list -> k:int -> ('a * float) list
(** Highest-[k] entries by score, descending.  @raise Invalid_argument if
    [k < 0]. *)
