(** Weighted shortest paths (Dijkstra). *)

val dijkstra :
  Graph.t -> weight:(int -> float) -> Graph.node -> (Graph.node, float) Hashtbl.t
(** [dijkstra g ~weight src] is the table of shortest distances from
    [src]; [weight] maps an edge id to a non-negative length.
    Unreachable nodes are absent.  @raise Invalid_argument when a visited
    edge reports a negative weight. *)

val shortest_path :
  Graph.t ->
  weight:(int -> float) ->
  Graph.node ->
  Graph.node ->
  (float * Graph.node list) option
(** Distance and node sequence (inclusive) from source to target, [None]
    when disconnected. *)

val distance :
  Graph.t -> weight:(int -> float) -> Graph.node -> Graph.node -> float option

val eccentricity : Graph.t -> weight:(int -> float) -> Graph.node -> float option
(** Largest finite shortest-path distance from the node to any node of its
    component, [None] for an absent node. *)
