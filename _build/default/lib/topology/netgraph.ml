(** Network-graph substrate: persistent multigraphs, traversals, shortest
    paths, centrality and structural-fragility analysis.  Nodes are landing
    points/cities; edges are cables. *)

module Graph = Graph
module Traversal = Traversal
module Paths = Paths
module Centrality = Centrality
module Structure = Structure
module Flow = Flow
