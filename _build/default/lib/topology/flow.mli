(** Maximum flow / minimum cut (Dinic's algorithm).

    Used for capacity analysis: how many terabits per second survive
    between two shores, and which cables form the bottleneck.  Undirected
    edges are modeled as two opposing arcs, each with the edge's full
    capacity (standard undirected max-flow construction). *)

type result = {
  value : float;  (** maximum flow value *)
  edge_flow : int -> float;  (** |flow| routed across an edge id *)
  source_side : Graph.node -> bool;
      (** residual-reachability from the source: defines the min cut *)
}

val max_flow :
  Graph.t -> capacity:(int -> float) -> source:Graph.node -> sink:Graph.node -> result
(** @raise Invalid_argument if source = sink, either is absent, or a
    capacity is negative. *)

val max_flow_multi :
  Graph.t ->
  capacity:(int -> float) ->
  sources:Graph.node list ->
  sinks:Graph.node list ->
  float
(** Multi-source/multi-sink value via virtual super-terminals.
    0 when either side is empty after dropping absent nodes.
    @raise Invalid_argument if the groups overlap. *)

val min_cut_edges_multi :
  Graph.t ->
  capacity:(int -> float) ->
  sources:Graph.node list ->
  sinks:Graph.node list ->
  int list
(** Edge ids crossing the multi-terminal minimum cut (ascending); [] when
    either group is empty. *)

val min_cut_edges :
  Graph.t -> capacity:(int -> float) -> source:Graph.node -> sink:Graph.node -> int list
(** Edge ids crossing the minimum cut (saturated source-side → sink-side
    edges), ascending. *)
