(** Graph traversals and connected components. *)

val bfs : Graph.t -> Graph.node -> (Graph.node * int) list
(** [(node, hop distance)] pairs reachable from the source, in visit
    order.  The source itself appears with distance 0.  An absent source
    yields []. *)

val reachable : Graph.t -> Graph.node -> Graph.node list
(** Nodes reachable from the source (including itself). *)

val reachable_set : Graph.t -> Graph.node -> (Graph.node, unit) Hashtbl.t
(** Same as a hashtable, for O(1) membership tests on large graphs. *)

val connected_components : Graph.t -> Graph.node list list
(** Partition of the nodes into components; each component sorted
    ascending, components ordered by their smallest node. *)

val component_sizes : Graph.t -> int list
(** Sizes, descending. *)

val giant_component_fraction : Graph.t -> float
(** Size of the largest component over [nb_nodes]; 0 for the empty
    graph. *)

val is_connected : Graph.t -> bool
(** True for graphs with at most one component (the empty graph is
    connected). *)

val same_component : Graph.t -> Graph.node -> Graph.node -> bool
