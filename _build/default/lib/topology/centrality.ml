let degree g =
  Graph.fold_nodes g ~init:[] ~f:(fun acc n -> (n, Graph.degree g n) :: acc)
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

(* Brandes 2001, unweighted variant. *)
let betweenness g =
  let cb = Hashtbl.create 64 in
  Graph.fold_nodes g ~init:() ~f:(fun () n -> Hashtbl.replace cb n 0.0);
  let process s =
    let stack = ref [] in
    let pred = Hashtbl.create 64 in
    let sigma = Hashtbl.create 64 in
    let dist = Hashtbl.create 64 in
    Hashtbl.replace sigma s 1.0;
    Hashtbl.replace dist s 0;
    let q = Queue.create () in
    Queue.add s q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      stack := v :: !stack;
      let dv = Hashtbl.find dist v in
      List.iter
        (fun (w, _) ->
          (match Hashtbl.find_opt dist w with
          | None ->
              Hashtbl.replace dist w (dv + 1);
              Queue.add w q
          | Some _ -> ());
          if Hashtbl.find dist w = dv + 1 then begin
            let sv = Hashtbl.find sigma v in
            let sw = Option.value ~default:0.0 (Hashtbl.find_opt sigma w) in
            Hashtbl.replace sigma w (sw +. sv);
            Hashtbl.replace pred w
              (v :: Option.value ~default:[] (Hashtbl.find_opt pred w))
          end)
        (Graph.neighbors g v)
    done;
    let delta = Hashtbl.create 64 in
    List.iter
      (fun w ->
        let dw = Option.value ~default:0.0 (Hashtbl.find_opt delta w) in
        List.iter
          (fun v ->
            let sv = Hashtbl.find sigma v and sw = Hashtbl.find sigma w in
            let dv = Option.value ~default:0.0 (Hashtbl.find_opt delta v) in
            Hashtbl.replace delta v (dv +. (sv /. sw *. (1.0 +. dw))))
          (Option.value ~default:[] (Hashtbl.find_opt pred w));
        if w <> s then
          Hashtbl.replace cb w (Hashtbl.find cb w +. dw))
      !stack
  in
  Graph.fold_nodes g ~init:() ~f:(fun () n -> process n);
  (* Undirected graphs count each pair twice. *)
  Hashtbl.iter (fun k v -> Hashtbl.replace cb k (v /. 2.0)) cb;
  cb

let closeness g n =
  let hops = Traversal.bfs g n in
  match hops with
  | [] | [ _ ] -> 0.0
  | _ ->
      let total = List.fold_left (fun acc (_, d) -> acc + d) 0 hops in
      if total = 0 then 0.0
      else float_of_int (List.length hops - 1) /. float_of_int total

let top_k scores ~k =
  if k < 0 then invalid_arg "Centrality.top_k: negative k";
  let sorted = List.sort (fun (_, a) (_, b) -> Float.compare b a) scores in
  List.filteri (fun i _ -> i < k) sorted
