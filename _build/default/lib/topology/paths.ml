(* Binary heap keyed by float priority, grow-able array implementation. *)
module Heap = struct
  type 'a t = { mutable data : (float * 'a) array; mutable size : int }

  let create () = { data = Array.make 64 (0.0, Obj.magic 0); size = 0 }

  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let push h prio v =
    if h.size = Array.length h.data then begin
      let bigger = Array.make (2 * h.size) h.data.(0) in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    h.data.(h.size) <- (prio, v);
    let i = ref h.size in
    h.size <- h.size + 1;
    while !i > 0 && fst h.data.((!i - 1) / 2) > fst h.data.(!i) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && fst h.data.(l) < fst h.data.(!smallest) then smallest := l;
        if r < h.size && fst h.data.(r) < fst h.data.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          swap h !i !smallest;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end
end

let dijkstra g ~weight src =
  let dist = Hashtbl.create 64 in
  if not (Graph.mem_node g src) then dist
  else begin
    let heap = Heap.create () in
    Heap.push heap 0.0 src;
    let finalized = Hashtbl.create 64 in
    Hashtbl.replace dist src 0.0;
    let rec loop () =
      match Heap.pop heap with
      | None -> ()
      | Some (d, n) ->
          if not (Hashtbl.mem finalized n) then begin
            Hashtbl.replace finalized n ();
            List.iter
              (fun (m, eid) ->
                let w = weight eid in
                if w < 0.0 then invalid_arg "Paths.dijkstra: negative weight";
                let nd = d +. w in
                match Hashtbl.find_opt dist m with
                | Some old when old <= nd -> ()
                | _ ->
                    Hashtbl.replace dist m nd;
                    Heap.push heap nd m)
              (Graph.neighbors g n)
          end;
          loop ()
    in
    loop ();
    dist
  end

let shortest_path g ~weight src dst =
  if not (Graph.mem_node g src && Graph.mem_node g dst) then None
  else begin
    (* Dijkstra with parent tracking. *)
    let dist = Hashtbl.create 64 and parent = Hashtbl.create 64 in
    let heap = Heap.create () in
    let finalized = Hashtbl.create 64 in
    Hashtbl.replace dist src 0.0;
    Heap.push heap 0.0 src;
    let rec loop () =
      match Heap.pop heap with
      | None -> ()
      | Some (_, n) when Hashtbl.mem finalized n -> loop ()
      | Some (d, n) ->
          Hashtbl.replace finalized n ();
          if n <> dst then begin
            List.iter
              (fun (m, eid) ->
                let w = weight eid in
                if w < 0.0 then invalid_arg "Paths.shortest_path: negative weight";
                let nd = d +. w in
                match Hashtbl.find_opt dist m with
                | Some old when old <= nd -> ()
                | _ ->
                    Hashtbl.replace dist m nd;
                    Hashtbl.replace parent m n;
                    Heap.push heap nd m)
              (Graph.neighbors g n);
            loop ()
          end
    in
    loop ();
    match Hashtbl.find_opt dist dst with
    | None -> None
    | Some d ->
        let rec build acc n =
          if n = src then src :: acc
          else
            match Hashtbl.find_opt parent n with
            | None -> acc
            | Some p -> build (n :: acc) p
        in
        Some (d, build [] dst)
  end

let distance g ~weight src dst =
  match shortest_path g ~weight src dst with Some (d, _) -> Some d | None -> None

let eccentricity g ~weight n =
  if not (Graph.mem_node g n) then None
  else
    let dist = dijkstra g ~weight n in
    Some (Hashtbl.fold (fun _ d acc -> Float.max acc d) dist 0.0)
