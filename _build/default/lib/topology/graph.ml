module Imap = Map.Make (Int)

type node = int

type edge = { id : int; u : node; v : node }

type t = {
  adj : (node * int) list Imap.t;  (** node -> (neighbor, edge id) list *)
  edge_tbl : edge Imap.t;
}

let empty = { adj = Imap.empty; edge_tbl = Imap.empty }

let add_node g n =
  if Imap.mem n g.adj then g else { g with adj = Imap.add n [] g.adj }

let push_adj adj n entry =
  Imap.update n
    (function None -> Some [ entry ] | Some l -> Some (entry :: l))
    adj

let add_edge g ~id u v =
  if Imap.mem id g.edge_tbl then
    invalid_arg (Printf.sprintf "Graph.add_edge: duplicate edge id %d" id);
  let adj = push_adj g.adj u (v, id) in
  let adj = if u = v then adj else push_adj adj v (u, id) in
  let adj = if Imap.mem v adj then adj else Imap.add v [] adj in
  let adj = if Imap.mem u adj then adj else Imap.add u [] adj in
  { adj; edge_tbl = Imap.add id { id; u; v } g.edge_tbl }

let remove_edge g id =
  match Imap.find_opt id g.edge_tbl with
  | None -> g
  | Some e ->
      let drop n adj =
        Imap.update n
          (function
            | None -> None
            | Some l -> Some (List.filter (fun (_, eid) -> eid <> id) l))
          adj
      in
      let adj = drop e.u g.adj in
      let adj = if e.u = e.v then adj else drop e.v adj in
      { adj; edge_tbl = Imap.remove id g.edge_tbl }

let remove_edges g ids = List.fold_left remove_edge g ids

let remove_node g n =
  match Imap.find_opt n g.adj with
  | None -> g
  | Some incident ->
      let g = List.fold_left (fun g (_, eid) -> remove_edge g eid) g incident in
      { g with adj = Imap.remove n g.adj }

let mem_node g n = Imap.mem n g.adj
let mem_edge g id = Imap.mem id g.edge_tbl
let find_edge g id = Imap.find_opt id g.edge_tbl

let nodes g = Imap.fold (fun n _ acc -> n :: acc) g.adj [] |> List.rev
let edges g = Imap.fold (fun _ e acc -> e :: acc) g.edge_tbl [] |> List.rev

let nb_nodes g = Imap.cardinal g.adj
let nb_edges g = Imap.cardinal g.edge_tbl

let neighbors g n = match Imap.find_opt n g.adj with None -> [] | Some l -> l

let degree g n =
  List.fold_left
    (fun acc (m, _) -> acc + (if m = n then 2 else 1))
    0 (neighbors g n)

let incident g n = List.map snd (neighbors g n)

let fold_nodes g ~init ~f = Imap.fold (fun n _ acc -> f acc n) g.adj init
let fold_edges g ~init ~f = Imap.fold (fun _ e acc -> f acc e) g.edge_tbl init

let of_edges l = List.fold_left (fun g (id, u, v) -> add_edge g ~id u v) empty l
