lib/topology/paths.ml: Array Float Graph Hashtbl List Obj
