lib/topology/flow.mli: Graph
