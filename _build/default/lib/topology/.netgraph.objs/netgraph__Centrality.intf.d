lib/topology/centrality.mli: Graph Hashtbl
