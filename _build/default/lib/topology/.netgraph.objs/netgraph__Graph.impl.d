lib/topology/graph.ml: Int List Map Printf
