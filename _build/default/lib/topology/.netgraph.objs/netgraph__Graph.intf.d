lib/topology/graph.mli:
