lib/topology/traversal.ml: Graph Hashtbl Int List Queue
