lib/topology/traversal.mli: Graph Hashtbl
