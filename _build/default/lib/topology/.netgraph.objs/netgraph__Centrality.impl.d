lib/topology/centrality.ml: Float Graph Hashtbl Int List Option Queue Traversal
