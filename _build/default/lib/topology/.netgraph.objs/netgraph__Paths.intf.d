lib/topology/paths.mli: Graph Hashtbl
