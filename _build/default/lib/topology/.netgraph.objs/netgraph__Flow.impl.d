lib/topology/flow.ml: Array Float Graph Hashtbl Int List Option Queue
