lib/topology/netgraph.ml: Centrality Flow Graph Paths Structure Traversal
