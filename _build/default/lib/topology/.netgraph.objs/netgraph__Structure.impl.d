lib/topology/structure.ml: Graph Hashtbl Int List
