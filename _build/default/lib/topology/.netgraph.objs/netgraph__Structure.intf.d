lib/topology/structure.mli: Graph Hashtbl
