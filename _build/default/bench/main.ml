(* Benchmark + figure-regeneration harness.

   `dune exec bench/main.exe` does two things:
   1. regenerates every table and figure of the paper (the same series the
      paper reports, printed as text) — the reproduction harness;
   2. runs a Bechamel micro-benchmark per experiment kernel.

   `dune exec bench/main.exe -- --fast` skips the Bechamel pass. *)

let print_figures () =
  print_endline "==============================================================";
  print_endline " Solar Superstorms reproduction: regenerating tables & figures";
  print_endline "==============================================================";
  let ctx = Report.Figures.make_context () in
  List.iter
    (fun (id, text) ->
      Printf.printf "\n----- %s -----\n%s\n" id text;
      flush stdout)
    (Report.Figures.all ctx);
  ctx

(* One Bechamel kernel per table/figure. *)
let bechamel_tests ctx =
  let open Bechamel in
  let sub = ctx.Report.Figures.submarine in
  let rng = Rng.create 99 in
  let per_repeater = Stormsim.Failure_model.compile (Stormsim.Failure_model.uniform 0.01) ~network:sub in
  let tiered = Stormsim.Failure_model.compile Stormsim.Failure_model.s1 ~network:sub in
  let graph, _ = Infra.Network.to_graph sub in
  let storm = Gic.Disturbance.storm_of_dst (-1200.0) in
  let long_cable =
    (* SEA-ME-WE 3: the longest cable of the dataset. *)
    let best = ref (Infra.Network.cable sub 0) in
    for i = 1 to Infra.Network.nb_cables sub - 1 do
      let c = Infra.Network.cable sub i in
      if c.Infra.Cable.length_km > !best.Infra.Cable.length_km then best := c
    done;
    !best
  in
  [
    Test.make ~name:"fig3-latitude-pdf"
      (Staged.stage (fun () ->
           ignore (Stormsim.Distribution.fig3 ~submarine:sub)));
    Test.make ~name:"fig4-threshold-curves"
      (Staged.stage (fun () ->
           ignore
             (Stormsim.Distribution.fig4a ~submarine:sub
                ~intertubes:ctx.Report.Figures.intertubes)));
    Test.make ~name:"fig5-length-cdf"
      (Staged.stage (fun () ->
           ignore
             (Stormsim.Distribution.fig5 ~submarine:sub
                ~intertubes:ctx.Report.Figures.intertubes ~itu:ctx.Report.Figures.itu)));
    Test.make ~name:"fig6-uniform-trial"
      (Staged.stage (fun () ->
           ignore (Stormsim.Montecarlo.trial rng ~network:sub ~spacing_km:150.0 ~per_repeater)));
    Test.make ~name:"fig8-tiered-trial"
      (Staged.stage (fun () ->
           ignore
             (Stormsim.Montecarlo.trial rng ~network:sub ~spacing_km:150.0
                ~per_repeater:tiered)));
    Test.make ~name:"fig9-as-analysis"
      (Staged.stage (fun () ->
           ignore (Stormsim.Systems.analyze_ases ctx.Report.Figures.ases)));
    Test.make ~name:"country-case-study"
      (Staged.stage (fun () ->
           ignore
             (Stormsim.Country.evaluate ~trials:5 sub
                (List.hd Stormsim.Country.paper_case_studies))));
    Test.make ~name:"gic-exposure-longest-cable"
      (Staged.stage (fun () ->
           ignore (Infra.Exposure.of_cable ~storm ~network:sub long_cable)));
    Test.make ~name:"graph-connected-components"
      (Staged.stage (fun () -> ignore (Netgraph.Traversal.connected_components graph)));
    Test.make ~name:"mitigation-partitions"
      (Staged.stage (fun () ->
           ignore (Stormsim.Mitigation.predicted_partitions ~network:sub ())));
    Test.make ~name:"leo-storm-assessment"
      (Staged.stage (fun () ->
           ignore
             (Leo.Storm_impact.assess ~dst_nt:(-1200.0) Leo.Constellation.starlink_phase1)));
    Test.make ~name:"grid-coupled-trial"
      (Staged.stage (fun () ->
           ignore
             (Stormsim.Powergrid.simulate ~trials:1 ~network:sub
                ~model:Stormsim.Failure_model.s1 ~dst_nt:(-1200.0) ())));
    Test.make ~name:"traffic-routing"
      (Staged.stage
         (let demands = Stormsim.Traffic.gravity_demands () in
          fun () -> ignore (Stormsim.Traffic.route ~network:sub ~demands ())));
    Test.make ~name:"recovery-plan"
      (Staged.stage
         (let dead =
            Array.init (Infra.Network.nb_cables sub) (fun i -> i mod 3 = 0)
          in
          fun () -> ignore (Stormsim.Recovery.plan ~network:sub ~dead ())));
    Test.make ~name:"service-availability"
      (Staged.stage (fun () ->
           ignore
             (Stormsim.Resilience_test.evaluate ~network:sub
                (List.hd Stormsim.Resilience_test.sample_services))));
    Test.make ~name:"event-sequence-30y"
      (Staged.stage
         (let seq_rng = Rng.create 5 in
          fun () ->
            ignore
              (Spaceweather.Event_generator.generate ~rng:seq_rng ~start:2021.0
                 ~stop:2051.0 ())));
  ]

let run_bechamel ctx =
  let open Bechamel in
  let open Bechamel.Toolkit in
  print_endline "\n==============================================================";
  print_endline " Bechamel micro-benchmarks (one kernel per experiment)";
  print_endline "==============================================================";
  let instances = [ Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let tests = bechamel_tests ctx in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
          (Instance.monotonic_clock) results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-32s %12.0f ns/run\n" name est
          | _ -> Printf.printf "%-32s (no estimate)\n" name)
        ols;
      flush stdout)
    tests

let () =
  let fast = Array.exists (fun a -> a = "--fast") Sys.argv in
  let ctx = print_figures () in
  if not fast then run_bechamel ctx
