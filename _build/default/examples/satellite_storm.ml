(* Satellite mega-constellations under solar storms — the paper's §3.3
   future-work item, calibrated on the February 2022 Starlink loss.

     dune exec examples/satellite_storm.exe *)

let hr () = print_endline (String.make 72 '-')

let () =
  (* 1. The atmosphere's storm response at operating altitudes. *)
  print_endline "thermospheric drag multipliers vs storm strength:";
  List.iter
    (fun (label, dst) ->
      let c = Leo.Atmosphere.of_storm dst in
      Printf.printf "  %-22s (Dst %5.0f):  210 km x%-5.2f  400 km x%-5.2f  550 km x%.2f\n"
        label dst
        (Leo.Atmosphere.enhancement c ~alt_km:210.0)
        (Leo.Atmosphere.enhancement c ~alt_km:400.0)
        (Leo.Atmosphere.enhancement c ~alt_km:550.0))
    [ ("minor (Feb 2022)", -66.0); ("Halloween 2003", -383.0); ("Quebec 1989", -589.0);
      ("Carrington", -1200.0) ];

  (* 2. Replay of the documented loss event. *)
  hr ();
  print_endline "February 2022: 49 Starlinks parked at 210 km met a minor storm";
  Format.printf "%a@." Leo.Storm_impact.pp (Leo.Storm_impact.feb_2022_starlink ());
  print_endline "  (the real event lost 38 of 49 = 78%)";

  (* 3. The same constellation under historical storm classes. *)
  hr ();
  print_endline "Starlink phase-1 fleet under stronger storms:";
  List.iter
    (fun (label, dst) ->
      let r = Leo.Storm_impact.assess ~dst_nt:dst Leo.Constellation.starlink_phase1 in
      Printf.printf "  %-14s fleet lost %4.1f%%; coverage %.1f%% -> %.1f%%\n" label
        (100.0 *. r.Leo.Storm_impact.fleet_lost_fraction)
        (100.0 *. r.Leo.Storm_impact.coverage_before)
        (100.0 *. r.Leo.Storm_impact.coverage_after))
    [ ("Quebec 1989", -589.0); ("NY Railroad 1921", -907.0); ("Carrington", -1200.0) ];

  (* 4. Post-storm orbital lifetime: the fleet that survives decays faster
     while the thermosphere stays hot. *)
  hr ();
  print_endline "orbital lifetime of a passive (failed) satellite at 550 km:";
  List.iter
    (fun (label, dst) ->
      let c = if dst >= 0.0 then Leo.Atmosphere.quiet else Leo.Atmosphere.of_storm dst in
      Printf.printf "  %-14s %6.0f days\n" label
        (Leo.Decay.lifetime_days Leo.Decay.starlink_v1 c ~alt_km:550.0))
    [ ("quiet", 0.0); ("Carrington-hot", -1200.0) ];

  (* 5. Where satellite service helps during a cable apocalypse: coverage
     by latitude vs the damaged submarine network. *)
  hr ();
  print_endline "expected satellites in view (25 deg mask) by latitude:";
  List.iter
    (fun lat ->
      Printf.printf "  %3.0f deg: %5.1f\n" lat
        (Leo.Constellation.visible_satellites Leo.Constellation.starlink_phase1
           ~lat_deg:lat ~elevation_mask_deg:25.0))
    [ 0.0; 25.0; 45.0; 53.0; 60.0; 75.0 ]
