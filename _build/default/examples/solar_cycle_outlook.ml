(* Solar-cycle outlook (section 2.3 of the paper): why the 2020s carry
   elevated risk — the sun is leaving a Gleissberg minimum just as cycle 25
   forecasts diverge between "weak" and "one of the strongest on record".

     dune exec examples/solar_cycle_outlook.exe *)

let () =
  (* Sunspot history and the two cycle-25 forecasts. *)
  let series forecast =
    Spaceweather.Sunspot.series ~cycle25:forecast ~start:1985.0 ~stop:2032.0 ~step:0.5 ()
  in
  let weak = series Spaceweather.Sunspot.cycle_25_weak in
  let strong = series Spaceweather.Sunspot.cycle_25_strong in
  print_string
    (Report.Ascii_plot.plot ~width:72 ~height:18 ~x_label:"year" ~y_label:"sunspot number"
       ~title:"solar cycles 22-25 (two cycle-25 forecasts)"
       [ { Report.Ascii_plot.label = "consensus (peak ~115)"; points = weak };
         { Report.Ascii_plot.label = "McIntosh 2020 (peak ~233)"; points = strong } ]);

  (* Gleissberg modulation of extreme-event frequency. *)
  print_newline ();
  print_endline "Gleissberg modulation of extreme-event rates:";
  List.iter
    (fun year ->
      Printf.printf "  %4.0f  x%.2f%s\n" year
        (Spaceweather.Gleissberg.modulation year)
        (if Float.abs (year -. 1910.0) < 1.0 then "  <- 20th-century minimum (1921 storm a decade later)"
         else if year = 2021.0 then "  <- today: rising"
         else ""))
    [ 1880.0; 1910.0; 1921.0; 1958.0; 1998.0; 2021.0; 2042.0 ];

  (* Expected Carrington-class events over coming decades under the
     modulated Poisson model. *)
  print_newline ();
  print_endline "expected Carrington-class events (modulated Poisson, base 1/31.5 yr):";
  List.iter
    (fun (a, b) ->
      Printf.printf "  %4.0f-%4.0f: %.2f expected, P(at least one) ~ %.0f%%\n" a b
        (Spaceweather.Probability.expected_events ~base_rate_per_year:(1.0 /. 31.5) ~start:a
           ~stop:b)
        (100.0
        *. (1.0
           -. exp
                (-.Spaceweather.Probability.expected_events
                     ~base_rate_per_year:(1.0 /. 31.5) ~start:a ~stop:b))))
    [ (2021.0, 2031.0); (2031.0, 2041.0); (2041.0, 2051.0) ];

  (* The warning budget for each historical event. *)
  print_newline ();
  print_endline "historical events replayed through the forecast model:";
  List.iter
    (fun e ->
      let tl = Spaceweather.Forecast.timeline e.Spaceweather.Storm_catalog.cme in
      Format.printf "  %-28s %a@." e.Spaceweather.Storm_catalog.name
        Spaceweather.Forecast.pp_timeline tl)
    Spaceweather.Storm_catalog.all
