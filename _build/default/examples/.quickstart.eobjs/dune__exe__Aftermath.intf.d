examples/aftermath.mli:
