examples/satellite_storm.ml: Format Leo List Printf String
