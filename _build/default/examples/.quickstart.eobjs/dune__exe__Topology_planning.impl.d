examples/topology_planning.ml: Datasets Float Geo Hashtbl Infra Int List Netgraph Printf Stormsim String
