examples/satellite_storm.mli:
