examples/country_connectivity.mli:
