examples/quickstart.ml: Datasets Format Infra List Printf Spaceweather Stormsim
