examples/solar_cycle_outlook.ml: Float Format List Printf Report Spaceweather
