examples/country_connectivity.ml: Datasets Infra Int List Printf Stormsim
