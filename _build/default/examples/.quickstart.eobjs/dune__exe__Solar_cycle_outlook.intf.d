examples/solar_cycle_outlook.mli:
