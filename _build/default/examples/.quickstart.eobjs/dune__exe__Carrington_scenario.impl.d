examples/carrington_scenario.ml: Datasets Format Geo Gic Infra List Printf Spaceweather Stormsim String
