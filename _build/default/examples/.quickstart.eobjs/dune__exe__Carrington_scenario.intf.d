examples/carrington_scenario.mli:
