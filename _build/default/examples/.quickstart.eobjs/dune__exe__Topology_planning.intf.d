examples/topology_planning.mli:
