examples/quickstart.mli:
