examples/aftermath.ml: Array Datasets Infra List Printf Stormsim String
