(* Tests for the Infra library: repeaters, power feeding, cables, grounding,
   networks and GIC exposure. *)

let check_close eps = Alcotest.(check (float eps))

let coord lat lon = Geo.Coord.make ~lat ~lon

(* --- Repeater --- *)

let test_repeater_count_basics () =
  Alcotest.(check int) "short cable none" 0
    (Infra.Repeater.count_for_length ~spacing_km:150.0 ~length_km:150.0);
  Alcotest.(check int) "300 km -> 1" 1
    (Infra.Repeater.count_for_length ~spacing_km:150.0 ~length_km:300.0);
  Alcotest.(check int) "400 km -> 2" 2
    (Infra.Repeater.count_for_length ~spacing_km:150.0 ~length_km:400.0);
  Alcotest.(check int) "zero length" 0
    (Infra.Repeater.count_for_length ~spacing_km:150.0 ~length_km:0.0)

let test_repeater_count_9000km_anchor () =
  (* SS 3.2.1: a 9,000 km cable has ~130 repeaters (70 km spacing). *)
  let n = Infra.Repeater.count_for_length ~spacing_km:70.0 ~length_km:9000.0 in
  Alcotest.(check bool) (Printf.sprintf "%d in [120, 135]" n) true (n >= 120 && n <= 135)

let test_repeater_count_validation () =
  Alcotest.check_raises "bad spacing"
    (Invalid_argument "Repeater.count_for_length: spacing <= 0") (fun () ->
      ignore (Infra.Repeater.count_for_length ~spacing_km:0.0 ~length_km:100.0));
  Alcotest.check_raises "negative length"
    (Invalid_argument "Repeater.count_for_length: negative length") (fun () ->
      ignore (Infra.Repeater.count_for_length ~spacing_km:50.0 ~length_km:(-1.0)))

let test_repeater_spec () =
  let spec = Infra.Repeater.default ~spacing_km:100.0 in
  check_close 1e-9 "1 A operating" 1.0 spec.Infra.Repeater.operating_current_a;
  check_close 1e-9 "25 y lifetime" 25.0 spec.Infra.Repeater.lifetime_years;
  Alcotest.(check bool) "damaged above threshold" true
    (Infra.Repeater.damaged_by spec ~gic_a:100.0);
  Alcotest.(check bool) "survives nominal" false (Infra.Repeater.damaged_by spec ~gic_a:1.0)

let test_paper_spacings () =
  Alcotest.(check (list (float 1e-9))) "50/100/150" [ 50.0; 100.0; 150.0 ]
    Infra.Repeater.paper_spacings_km

(* --- Power feed --- *)

let test_power_budget_9000km_anchor () =
  (* SS 3.2.1: ~11 kV for a 9,000 km cable. *)
  let b = Infra.Power_feed.budget_for ~length_km:9000.0 () in
  Alcotest.(check bool)
    (Printf.sprintf "total %.0f V in [9.5k, 13k]" b.Infra.Power_feed.total_v)
    true
    (b.Infra.Power_feed.total_v > 9500.0 && b.Infra.Power_feed.total_v < 13000.0);
  Alcotest.(check bool) "~130 repeaters" true
    (b.Infra.Power_feed.repeaters >= 120 && b.Infra.Power_feed.repeaters <= 135)

let test_power_budget_monotone () =
  let short = Infra.Power_feed.budget_for ~length_km:1000.0 () in
  let long = Infra.Power_feed.budget_for ~length_km:12000.0 () in
  Alcotest.(check bool) "longer needs more" true
    (long.Infra.Power_feed.total_v > short.Infra.Power_feed.total_v)

let test_power_budget_validation () =
  Alcotest.check_raises "non-positive" (Invalid_argument "Power_feed.budget_for: length <= 0")
    (fun () -> ignore (Infra.Power_feed.budget_for ~length_km:0.0 ()))

let test_dual_end_feasibility () =
  let b9000 = Infra.Power_feed.budget_for ~length_km:9000.0 () in
  Alcotest.(check bool) "9000 km feasible" true (Infra.Power_feed.dual_end_feasible b9000);
  let b40000 = Infra.Power_feed.budget_for ~length_km:40000.0 () in
  Alcotest.(check bool) "40000 km infeasible" false (Infra.Power_feed.dual_end_feasible b40000)

let test_max_span () =
  let span = Infra.Power_feed.max_span_km () in
  Alcotest.(check bool) (Printf.sprintf "max span %.0f in [15k, 35k]" span) true
    (span > 15000.0 && span < 35000.0)

(* --- Cable --- *)

let landings_2 = [ (0, coord 40.0 (-74.0)); (1, coord 51.0 0.0) ]

let test_cable_make_defaults () =
  let c = Infra.Cable.make ~id:0 ~name:"t" ~kind:Infra.Cable.Submarine ~landings:landings_2 () in
  Alcotest.(check bool) "length >= great circle" true (c.Infra.Cable.length_km > 5000.0);
  check_close 1e-9 "max abs lat" 51.0 c.Infra.Cable.max_abs_lat;
  Alcotest.(check int) "one hop" 1 (Infra.Cable.hop_count c)

let test_cable_stated_length_raised () =
  (* A stated length below the geometric chain length is raised to it. *)
  let c =
    Infra.Cable.make ~id:0 ~name:"t" ~kind:Infra.Cable.Submarine ~landings:landings_2
      ~length_km:10.0 ()
  in
  Alcotest.(check bool) "raised" true (c.Infra.Cable.length_km > 5000.0)

let test_cable_validation () =
  Alcotest.check_raises "one landing" (Invalid_argument "Cable.make: fewer than 2 landings")
    (fun () ->
      ignore
        (Infra.Cable.make ~id:0 ~name:"t" ~kind:Infra.Cable.Submarine
           ~landings:[ (0, coord 0.0 0.0) ] ()));
  Alcotest.check_raises "duplicate" (Invalid_argument "Cable.make: duplicate landing node")
    (fun () ->
      ignore
        (Infra.Cable.make ~id:0 ~name:"t" ~kind:Infra.Cable.Submarine
           ~landings:[ (0, coord 0.0 0.0); (0, coord 1.0 1.0) ] ()))

let test_cable_risk_tier () =
  let low =
    Infra.Cable.make ~id:0 ~name:"low" ~kind:Infra.Cable.Submarine
      ~landings:[ (0, coord 1.0 103.0); (1, coord (-6.0) 106.0) ] ()
  in
  Alcotest.(check string) "low" "low" (Geo.Latband.tier_to_string (Infra.Cable.risk_tier low));
  let high =
    Infra.Cable.make ~id:0 ~name:"high" ~kind:Infra.Cable.Submarine
      ~landings:[ (0, coord 61.0 (-150.0)); (1, coord 47.0 (-122.0)) ] ()
  in
  Alcotest.(check string) "high" "high" (Geo.Latband.tier_to_string (Infra.Cable.risk_tier high))

let test_cable_repeater_count_uses_stated_length () =
  let c =
    Infra.Cable.make ~id:0 ~name:"t" ~kind:Infra.Cable.Submarine ~landings:landings_2
      ~length_km:9000.0 ()
  in
  Alcotest.(check int) "repeaters from stated length"
    (Infra.Repeater.count_for_length ~spacing_km:150.0 ~length_km:c.Infra.Cable.length_km)
    (Infra.Cable.repeater_count c ~spacing_km:150.0)

let test_segment_lengths_sum () =
  let landings =
    [ (0, coord 0.0 0.0); (1, coord 0.0 10.0); (2, coord 0.0 30.0) ]
  in
  let segs = Infra.Cable.segment_lengths landings ~length_km:4000.0 in
  Alcotest.(check int) "two segments" 2 (List.length segs);
  check_close 1e-6 "sums to stated" 4000.0 (List.fold_left ( +. ) 0.0 segs);
  (* Proportionality: second hop is twice the first. *)
  (match segs with
  | [ a; b ] -> check_close 1e-6 "2:1 ratio" 2.0 (b /. a)
  | _ -> Alcotest.fail "wrong arity")

(* --- Grounding --- *)

let test_grounding_short_cables () =
  Alcotest.(check (list (float 1e-9))) "under 50 km ungrounded" []
    (Infra.Grounding.chainages ~length_km:30.0 ())

let test_grounding_endpoints_and_intervals () =
  let ch = Infra.Grounding.chainages ~interval_km:1000.0 ~length_km:3500.0 () in
  Alcotest.(check (list (float 1e-9))) "grounds" [ 0.0; 1000.0; 2000.0; 3000.0; 3500.0 ] ch;
  Alcotest.(check int) "intermediates" 3
    (Infra.Grounding.intermediate_count ~interval_km:1000.0 ~length_km:3500.0 ())

let test_grounding_equiano_anchor () =
  (* Equiano: ~12,000 km with 9 branching units. *)
  let n = Infra.Grounding.intermediate_count ~length_km:12000.0 () in
  Alcotest.(check bool) (Printf.sprintf "%d in [6, 12]" n) true (n >= 6 && n <= 12)

let test_grounding_validation () =
  Alcotest.check_raises "bad interval" (Invalid_argument "Grounding.chainages: interval <= 0")
    (fun () -> ignore (Infra.Grounding.chainages ~interval_km:0.0 ~length_km:100.0 ()))

(* --- Network --- *)

let mini_network () =
  let n id name lat lon =
    { Infra.Network.id; name; country = "X"; pos = coord lat lon }
  in
  let nodes =
    [ n 0 "a" 10.0 0.0; n 1 "b" 12.0 5.0; n 2 "c" 50.0 10.0; n 3 "d" 55.0 20.0;
      n 4 "isolated" 0.0 0.0 ]
  in
  let cable id name landings length =
    Infra.Cable.make ~id ~name ~kind:Infra.Cable.Submarine
      ~landings:(List.map (fun i -> (i, (List.nth nodes i).Infra.Network.pos)) landings)
      ~length_km:length ()
  in
  Infra.Network.create ~name:"mini" ~nodes
    ~cables:[ cable 0 "south" [ 0; 1 ] 700.0; cable 1 "north" [ 2; 3 ] 900.0;
              cable 2 "trunk" [ 0; 2; 3 ] 6000.0 ]

let test_network_create_validation () =
  let n id = { Infra.Network.id; name = "x"; country = "X"; pos = coord 0.0 0.0 } in
  Alcotest.check_raises "bad node ids"
    (Invalid_argument "Network.create: node ids must be 0..n-1 in order") (fun () ->
      ignore (Infra.Network.create ~name:"bad" ~nodes:[ n 1 ] ~cables:[]))

let test_network_accessors () =
  let net = mini_network () in
  Alcotest.(check int) "nodes" 5 (Infra.Network.nb_nodes net);
  Alcotest.(check int) "cables" 3 (Infra.Network.nb_cables net);
  Alcotest.(check string) "node name" "c" (Infra.Network.node net 2).Infra.Network.name;
  Alcotest.(check int) "cables at node 0" 2 (List.length (Infra.Network.cables_at net 0))

let test_network_to_graph () =
  let net = mini_network () in
  let g, edge_cable = Infra.Network.to_graph net in
  (* Edges: south 1 hop + north 1 hop + trunk 2 hops = 4. *)
  Alcotest.(check int) "edges" 4 (Netgraph.Graph.nb_edges g);
  Alcotest.(check int) "nodes incl. isolated" 5 (Netgraph.Graph.nb_nodes g);
  (* Every edge must map to a valid cable. *)
  List.iter
    (fun e ->
      let c = edge_cable e.Netgraph.Graph.id in
      Alcotest.(check bool) "cable id valid" true (c >= 0 && c < 3))
    (Netgraph.Graph.edges g)

let test_network_graph_without_cables () =
  let net = mini_network () in
  let dead = [| false; false; true |] in
  let g = Infra.Network.graph_without_cables net ~dead in
  Alcotest.(check int) "trunk removed" 2 (Netgraph.Graph.nb_edges g);
  Alcotest.(check bool) "0 and 2 disconnected" false (Netgraph.Traversal.same_component g 0 2)

let test_network_dead_array_mismatch () =
  let net = mini_network () in
  Alcotest.check_raises "wrong size"
    (Invalid_argument "Network.graph_without_cables: dead array size mismatch") (fun () ->
      ignore (Infra.Network.graph_without_cables net ~dead:[| true |]))

let test_endpoint_latitudes_excludes_isolated () =
  let net = mini_network () in
  Alcotest.(check int) "4 cable-bearing nodes" 4
    (List.length (Infra.Network.endpoint_latitudes net))

let test_one_hop_endpoints () =
  let net = mini_network () in
  (* Threshold 40: node 0 (lat 10) has the trunk to nodes 2/3 (lat >= 50). *)
  Alcotest.(check (list int)) "node 0 is one-hop" [ 0 ]
    (Infra.Network.one_hop_endpoints net ~threshold:40.0)

let test_network_repeater_stats () =
  let net = mini_network () in
  (* south: 700 km -> 4; north: 900 -> 5; trunk: 6000 -> 39. *)
  check_close 1e-6 "mean repeaters" (48.0 /. 3.0)
    (Infra.Network.mean_repeaters_per_cable net ~spacing_km:150.0);
  Alcotest.(check int) "none unrepeatered" 0
    (Infra.Network.cables_without_repeaters net ~spacing_km:150.0)

(* --- Exposure --- *)

let test_exposure_positive_for_long_cable () =
  let net = mini_network () in
  let storm = Gic.Disturbance.storm_of_dst (-1200.0) in
  let e = Infra.Exposure.of_cable ~storm ~network:net (Infra.Network.cable net 2) in
  Alcotest.(check bool) "positive GIC" true (e.Infra.Exposure.peak_gic_a > 0.0)

let test_exposure_short_cable_zero () =
  let n id lat lon = { Infra.Network.id; name = "x"; country = "X"; pos = coord lat lon } in
  let nodes = [ n 0 50.0 0.0; n 1 50.0 0.5 ] in
  let cable =
    Infra.Cable.make ~id:0 ~name:"short" ~kind:Infra.Cable.Submarine
      ~landings:[ (0, coord 50.0 0.0); (1, coord 50.0 0.5) ] ()
  in
  let net = Infra.Network.create ~name:"s" ~nodes ~cables:[ cable ] in
  let storm = Gic.Disturbance.storm_of_dst (-1200.0) in
  let e = Infra.Exposure.of_cable ~storm ~network:net (Infra.Network.cable net 0) in
  check_close 1e-9 "ungrounded -> no GIC" 0.0 e.Infra.Exposure.peak_gic_a

let test_exposure_failure_probability_properties () =
  let net = mini_network () in
  let storm = Gic.Disturbance.storm_of_dst (-1200.0) in
  let e = Infra.Exposure.of_cable ~storm ~network:net (Infra.Network.cable net 2) in
  let p = Infra.Exposure.failure_probability e in
  Alcotest.(check bool) "in [0, 1]" true (p >= 0.0 && p <= 1.0);
  let p_soft = Infra.Exposure.failure_probability ~scale_a:1000.0 e in
  Alcotest.(check bool) "larger scale, lower probability" true (p_soft < p)

let test_exposure_storm_monotone () =
  let net = mini_network () in
  let weak = Gic.Disturbance.storm_of_dst (-100.0) in
  let strong = Gic.Disturbance.storm_of_dst (-1200.0) in
  let c = Infra.Network.cable net 2 in
  let ew = Infra.Exposure.of_cable ~storm:weak ~network:net c in
  let es = Infra.Exposure.of_cable ~storm:strong ~network:net c in
  Alcotest.(check bool) "stronger storm, more GIC" true
    (es.Infra.Exposure.peak_gic_a > ew.Infra.Exposure.peak_gic_a)

let test_network_exposures_indexed () =
  let net = mini_network () in
  let storm = Gic.Disturbance.storm_of_dst (-589.0) in
  let exposures = Infra.Exposure.network_exposures ~storm net in
  Alcotest.(check int) "one per cable" 3 (Array.length exposures);
  Array.iteri
    (fun i e -> Alcotest.(check int) "indexed by cable id" i e.Infra.Exposure.cable_id)
    exposures

(* --- QCheck --- *)

let prop_repeater_count_monotone_in_length =
  QCheck.Test.make ~name:"repeater count monotone in length" ~count:200
    QCheck.(pair (float_range 1.0 20000.0) (float_range 1.0 20000.0))
    (fun (l1, l2) ->
      let lo = Float.min l1 l2 and hi = Float.max l1 l2 in
      Infra.Repeater.count_for_length ~spacing_km:100.0 ~length_km:lo
      <= Infra.Repeater.count_for_length ~spacing_km:100.0 ~length_km:hi)

let prop_repeater_count_antitone_in_spacing =
  QCheck.Test.make ~name:"repeater count antitone in spacing" ~count:200
    QCheck.(pair (float_range 30.0 200.0) (float_range 30.0 200.0))
    (fun (s1, s2) ->
      let lo = Float.min s1 s2 and hi = Float.max s1 s2 in
      Infra.Repeater.count_for_length ~spacing_km:hi ~length_km:8000.0
      <= Infra.Repeater.count_for_length ~spacing_km:lo ~length_km:8000.0)

let prop_grounding_sorted_and_bounded =
  QCheck.Test.make ~name:"grounding chainages sorted within cable" ~count:200
    (QCheck.float_range 50.0 30000.0)
    (fun length_km ->
      let ch = Infra.Grounding.chainages ~length_km () in
      let sorted = List.sort Float.compare ch in
      ch = sorted
      && List.for_all (fun d -> d >= 0.0 && d <= length_km) ch
      && List.hd ch = 0.0)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_repeater_count_monotone_in_length; prop_repeater_count_antitone_in_spacing;
      prop_grounding_sorted_and_bounded ]

let () =
  Alcotest.run "infra"
    [
      ( "repeater",
        [ Alcotest.test_case "count basics" `Quick test_repeater_count_basics;
          Alcotest.test_case "9000 km anchor" `Quick test_repeater_count_9000km_anchor;
          Alcotest.test_case "validation" `Quick test_repeater_count_validation;
          Alcotest.test_case "spec" `Quick test_repeater_spec;
          Alcotest.test_case "paper spacings" `Quick test_paper_spacings ] );
      ( "power_feed",
        [ Alcotest.test_case "11 kV anchor" `Quick test_power_budget_9000km_anchor;
          Alcotest.test_case "monotone" `Quick test_power_budget_monotone;
          Alcotest.test_case "validation" `Quick test_power_budget_validation;
          Alcotest.test_case "dual-end feasibility" `Quick test_dual_end_feasibility;
          Alcotest.test_case "max span" `Quick test_max_span ] );
      ( "cable",
        [ Alcotest.test_case "make defaults" `Quick test_cable_make_defaults;
          Alcotest.test_case "stated length raised" `Quick test_cable_stated_length_raised;
          Alcotest.test_case "validation" `Quick test_cable_validation;
          Alcotest.test_case "risk tier" `Quick test_cable_risk_tier;
          Alcotest.test_case "repeaters from stated length" `Quick
            test_cable_repeater_count_uses_stated_length;
          Alcotest.test_case "segment lengths" `Quick test_segment_lengths_sum ] );
      ( "grounding",
        [ Alcotest.test_case "short cables" `Quick test_grounding_short_cables;
          Alcotest.test_case "endpoints and intervals" `Quick
            test_grounding_endpoints_and_intervals;
          Alcotest.test_case "equiano anchor" `Quick test_grounding_equiano_anchor;
          Alcotest.test_case "validation" `Quick test_grounding_validation ] );
      ( "network",
        [ Alcotest.test_case "create validation" `Quick test_network_create_validation;
          Alcotest.test_case "accessors" `Quick test_network_accessors;
          Alcotest.test_case "to_graph" `Quick test_network_to_graph;
          Alcotest.test_case "graph_without_cables" `Quick test_network_graph_without_cables;
          Alcotest.test_case "dead array mismatch" `Quick test_network_dead_array_mismatch;
          Alcotest.test_case "endpoint latitudes" `Quick
            test_endpoint_latitudes_excludes_isolated;
          Alcotest.test_case "one-hop endpoints" `Quick test_one_hop_endpoints;
          Alcotest.test_case "repeater stats" `Quick test_network_repeater_stats ] );
      ( "exposure",
        [ Alcotest.test_case "positive for long cable" `Quick
            test_exposure_positive_for_long_cable;
          Alcotest.test_case "short cable zero" `Quick test_exposure_short_cable_zero;
          Alcotest.test_case "failure probability" `Quick
            test_exposure_failure_probability_properties;
          Alcotest.test_case "storm monotone" `Quick test_exposure_storm_monotone;
          Alcotest.test_case "indexed exposures" `Quick test_network_exposures_indexed ] );
      ("properties", qcheck_tests);
    ]
