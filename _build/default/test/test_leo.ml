(* Tests for the LEO satellite substrate (paper section 3.3): orbital
   mechanics, storm-heated thermosphere, drag decay, constellations and
   storm impact.  Calibration anchors are real events. *)


(* --- Orbit --- *)

let test_iss_period () =
  (* ISS at ~420 km: period ~92.8 min. *)
  let p = Leo.Orbit.period_s ~alt_km:420.0 /. 60.0 in
  Alcotest.(check bool) (Printf.sprintf "%.1f min in [91, 94]" p) true (p > 91.0 && p < 94.0)

let test_leo_speed () =
  (* ~7.6 km/s at 550 km. *)
  let v = Leo.Orbit.speed_m_s ~alt_km:550.0 /. 1000.0 in
  Alcotest.(check bool) (Printf.sprintf "%.2f km/s in [7.4, 7.8]" v) true (v > 7.4 && v < 7.8)

let test_orbit_validation () =
  Alcotest.check_raises "zero altitude"
    (Invalid_argument "Orbit.semi_major_m: altitude outside (0, 10000] km") (fun () ->
      ignore (Leo.Orbit.semi_major_m ~alt_km:0.0))

let test_decay_rate_negative () =
  let rate =
    Leo.Orbit.decay_rate_m_per_s ~alt_km:400.0 ~density_kg_m3:1e-12 ~ballistic_m2_kg:0.005
  in
  Alcotest.(check bool) "orbit shrinks" true (rate < 0.0)

(* --- Atmosphere --- *)

let test_quiet_density_anchors () =
  (* Moderate-activity references: ~2-4e-10 at 200 km, ~2e-13 at 550 km. *)
  let d200 = Leo.Atmosphere.density_kg_m3 Leo.Atmosphere.quiet ~alt_km:200.0 in
  let d550 = Leo.Atmosphere.density_kg_m3 Leo.Atmosphere.quiet ~alt_km:550.0 in
  Alcotest.(check bool) "200 km" true (d200 > 1e-10 && d200 < 5e-10);
  Alcotest.(check bool) "550 km" true (d550 > 5e-14 && d550 < 5e-13)

let test_density_decreases_with_altitude () =
  let c = Leo.Atmosphere.of_storm (-400.0) in
  let d300 = Leo.Atmosphere.density_kg_m3 c ~alt_km:300.0 in
  let d600 = Leo.Atmosphere.density_kg_m3 c ~alt_km:600.0 in
  Alcotest.(check bool) "monotone" true (d300 > d600)

let test_feb2022_drag_anchor () =
  (* The Feb 2022 event (Dst ~ -66): ~50% drag increase at 210 km. *)
  let e = Leo.Atmosphere.enhancement (Leo.Atmosphere.of_storm (-66.0)) ~alt_km:210.0 in
  Alcotest.(check bool) (Printf.sprintf "%.2f in [1.2, 1.8]" e) true (e > 1.2 && e < 1.8)

let test_halloween_2003_anchor () =
  (* Halloween storms (Dst -383): roughly 4-8x density at 400 km. *)
  let e = Leo.Atmosphere.enhancement (Leo.Atmosphere.of_storm (-383.0)) ~alt_km:400.0 in
  Alcotest.(check bool) (Printf.sprintf "%.1f in [3, 9]" e) true (e > 3.0 && e < 9.0)

let test_enhancement_grows_with_altitude () =
  (* Relative enhancement is stronger higher up (scale-height effect). *)
  let c = Leo.Atmosphere.of_storm (-600.0) in
  Alcotest.(check bool) "500 km > 250 km" true
    (Leo.Atmosphere.enhancement c ~alt_km:500.0 > Leo.Atmosphere.enhancement c ~alt_km:250.0)

let test_atmosphere_validation () =
  Alcotest.check_raises "positive dst" (Invalid_argument "Atmosphere.of_storm: Dst must be <= 0")
    (fun () -> ignore (Leo.Atmosphere.of_storm 10.0));
  Alcotest.check_raises "bad altitude"
    (Invalid_argument "Atmosphere.density_kg_m3: altitude <= 0") (fun () ->
      ignore (Leo.Atmosphere.density_kg_m3 Leo.Atmosphere.quiet ~alt_km:0.0))

(* --- Decay --- *)

let test_iss_like_decay () =
  (* ISS-class ballistic coefficient decays ~1-3 km/month at 420 km. *)
  let iss =
    { Leo.Decay.name = "iss"; mass_kg = 420000.0; drag_area_m2 = 700.0; cd = 2.2;
      thrust_n = 0.0 }
  in
  let after = Leo.Decay.altitude_after iss Leo.Atmosphere.quiet ~alt_km:420.0 ~days:30.0 in
  let loss = 420.0 -. after in
  Alcotest.(check bool) (Printf.sprintf "%.1f km/month in [0.5, 5]" loss) true
    (loss > 0.5 && loss < 5.0)

let test_starlink_lifetime_years_at_550 () =
  let days =
    Leo.Decay.lifetime_days Leo.Decay.starlink_v1 Leo.Atmosphere.quiet ~alt_km:550.0
  in
  Alcotest.(check bool) (Printf.sprintf "%.0f d in [2y, 15y]" days) true
    (days > 730.0 && days < 5475.0)

let test_low_parking_orbit_is_marginal () =
  (* At 210 km a Starlink's thrust margin is ~1 in quiet conditions (orbit
     raising barely works); the Feb 2022 storm pushed it clearly below 1 —
     the event's mechanism.  At 300 km there is ample margin. *)
  let margin c = Leo.Decay.thrust_margin Leo.Decay.starlink_v1 c ~alt_km:210.0 in
  let quiet = margin Leo.Atmosphere.quiet in
  let storm = margin (Leo.Atmosphere.of_storm (-66.0)) in
  Alcotest.(check bool) (Printf.sprintf "quiet margin %.2f ~ 1" quiet) true
    (quiet > 0.75 && quiet < 1.35);
  Alcotest.(check bool) "storm strictly worse" true (storm < quiet);
  Alcotest.(check bool) "storm below quiet by ~25%" true (storm < 0.85 *. quiet);
  Alcotest.(check bool) "300 km comfortable" true
    (Leo.Decay.can_hold_altitude Leo.Decay.starlink_v1 Leo.Atmosphere.quiet ~alt_km:300.0)

let test_no_thruster_never_holds () =
  Alcotest.(check bool) "cubesat" false
    (Leo.Decay.can_hold_altitude Leo.Decay.cubesat_3u Leo.Atmosphere.quiet ~alt_km:500.0)

let test_altitude_after_monotone_in_days () =
  let sc = Leo.Decay.starlink_v1_safe_mode in
  let c = Leo.Atmosphere.of_storm (-300.0) in
  let a1 = Leo.Decay.altitude_after sc c ~alt_km:300.0 ~days:1.0 in
  let a5 = Leo.Decay.altitude_after sc c ~alt_km:300.0 ~days:5.0 in
  Alcotest.(check bool) "longer coast, lower" true (a5 < a1);
  Alcotest.(check bool) "floors at reentry" true (a5 >= Leo.Orbit.reentry_alt_km)

let test_decay_validation () =
  Alcotest.check_raises "negative days"
    (Invalid_argument "Decay.altitude_after: negative duration") (fun () ->
      ignore
        (Leo.Decay.altitude_after Leo.Decay.starlink_v1 Leo.Atmosphere.quiet ~alt_km:400.0
           ~days:(-1.0)))

(* --- Constellation --- *)

let test_starlink_size () =
  (* Phase 1 is ~4,400 satellites. *)
  let n = Leo.Constellation.size Leo.Constellation.starlink_phase1 in
  Alcotest.(check bool) (Printf.sprintf "%d in [4000, 4600]" n) true (n >= 4000 && n <= 4600)

let test_coverage_cap_reasonable () =
  let shell = List.hd Leo.Constellation.starlink_phase1.Leo.Constellation.shells in
  let cap = Leo.Constellation.coverage_cap_deg shell ~elevation_mask_deg:25.0 in
  (* 550 km, 25 deg mask: ~9-10 deg central half-angle. *)
  Alcotest.(check bool) (Printf.sprintf "%.1f deg in [7, 12]" cap) true (cap > 7.0 && cap < 12.0)

let test_visible_satellites_latitude_profile () =
  let c = Leo.Constellation.starlink_phase1 in
  let vis lat = Leo.Constellation.visible_satellites c ~lat_deg:lat ~elevation_mask_deg:25.0 in
  (* Density peaks near the 53 deg inclination edge; mid-latitudes well
     served; poles only by the small SSO shells. *)
  Alcotest.(check bool) "45 deg served" true (vis 45.0 > 1.0);
  Alcotest.(check bool) "equator served" true (vis 0.0 > 0.5);
  Alcotest.(check bool) "52 deg > equator" true (vis 52.0 > vis 0.0);
  Alcotest.(check bool) "80 deg sparse" true (vis 80.0 < vis 45.0)

let test_coverage_fraction_bounds () =
  let users = [ (40.0, 1.0); (0.0, 1.0); (85.0, 1.0) ] in
  let f = Leo.Constellation.coverage_fraction Leo.Constellation.starlink_phase1 users in
  Alcotest.(check bool) "in [0, 1]" true (f >= 0.0 && f <= 1.0)

let test_empty_constellation () =
  let empty = { Leo.Constellation.name = "none"; shells = [] } in
  Alcotest.(check int) "size 0" 0 (Leo.Constellation.size empty);
  Alcotest.(check (float 1e-9)) "no coverage" 0.0
    (Leo.Constellation.coverage_fraction empty [ (40.0, 1.0) ])

(* --- Storm impact --- *)

let test_feb_2022_reproduction () =
  (* 38 of 49 (78%) of the Feb 2022 batch were lost; the operational fleet
     was untouched. *)
  let r = Leo.Storm_impact.feb_2022_starlink () in
  (match r.Leo.Storm_impact.injection_loss_fraction with
  | Some f ->
      Alcotest.(check bool) (Printf.sprintf "batch loss %.2f in [0.5, 1]" f) true
        (f >= 0.5 && f <= 1.0)
  | None -> Alcotest.fail "no injection batch");
  Alcotest.(check bool) "operational fleet fine" true
    (r.Leo.Storm_impact.fleet_lost_fraction < 0.01);
  Alcotest.(check bool) "coverage unchanged" true
    (r.Leo.Storm_impact.coverage_after >= r.Leo.Storm_impact.coverage_before -. 0.01)

let test_carrington_fleet_losses () =
  let r =
    Leo.Storm_impact.assess ~dst_nt:(-1200.0) Leo.Constellation.starlink_phase1
  in
  (* Electronics dose claims a few percent of the fleet; operational
     shells at 540-570 km do not deorbit. *)
  Alcotest.(check bool)
    (Printf.sprintf "lost %.3f in [0.01, 0.3]" r.Leo.Storm_impact.fleet_lost_fraction)
    true
    (r.Leo.Storm_impact.fleet_lost_fraction > 0.01
    && r.Leo.Storm_impact.fleet_lost_fraction < 0.3);
  List.iter
    (fun o ->
      Alcotest.(check bool) "shells hold station" true o.Leo.Storm_impact.can_station_keep)
    r.Leo.Storm_impact.shells

let test_storm_losses_monotone () =
  let lost dst =
    (Leo.Storm_impact.assess ~dst_nt:dst Leo.Constellation.starlink_phase1)
      .Leo.Storm_impact.fleet_lost_fraction
  in
  Alcotest.(check bool) "carrington worse than quebec" true (lost (-1200.0) > lost (-589.0))

let test_electronics_probability_anchors () =
  let p1989 = Leo.Storm_impact.electronics_failure_probability ~dst_nt:(-589.0) in
  let pcar = Leo.Storm_impact.electronics_failure_probability ~dst_nt:(-1200.0) in
  Alcotest.(check bool) "1989 small" true (p1989 > 0.0005 && p1989 < 0.01);
  Alcotest.(check bool) "carrington percent-level" true (pcar > 0.01 && pcar < 0.2);
  Alcotest.(check bool) "capped" true
    (Leo.Storm_impact.electronics_failure_probability ~dst_nt:(-5000.0) <= 0.5)

(* --- QCheck --- *)

let prop_density_positive =
  QCheck.Test.make ~name:"density positive over storm x altitude" ~count:200
    QCheck.(pair (float_range (-2000.0) 0.0) (float_range 150.0 1200.0))
    (fun (dst, alt) ->
      Leo.Atmosphere.density_kg_m3 (Leo.Atmosphere.of_storm dst) ~alt_km:alt > 0.0)

let prop_enhancement_at_least_one =
  QCheck.Test.make ~name:"storm enhancement >= 1" ~count:200
    QCheck.(pair (float_range (-2000.0) 0.0) (float_range 150.0 1200.0))
    (fun (dst, alt) ->
      Leo.Atmosphere.enhancement (Leo.Atmosphere.of_storm dst) ~alt_km:alt >= 1.0)

let prop_coast_never_gains_altitude =
  QCheck.Test.make ~name:"coasting never raises the orbit" ~count:50
    QCheck.(pair (float_range 180.0 800.0) (float_range 0.0 30.0))
    (fun (alt, days) ->
      Leo.Decay.altitude_after Leo.Decay.starlink_v1_safe_mode Leo.Atmosphere.quiet
        ~alt_km:alt ~days
      <= alt +. 1e-9)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_density_positive; prop_enhancement_at_least_one; prop_coast_never_gains_altitude ]

let () =
  Alcotest.run "leo"
    [
      ( "orbit",
        [ Alcotest.test_case "ISS period" `Quick test_iss_period;
          Alcotest.test_case "orbital speed" `Quick test_leo_speed;
          Alcotest.test_case "validation" `Quick test_orbit_validation;
          Alcotest.test_case "decay rate sign" `Quick test_decay_rate_negative ] );
      ( "atmosphere",
        [ Alcotest.test_case "quiet anchors" `Quick test_quiet_density_anchors;
          Alcotest.test_case "monotone altitude" `Quick test_density_decreases_with_altitude;
          Alcotest.test_case "feb 2022 anchor" `Quick test_feb2022_drag_anchor;
          Alcotest.test_case "halloween 2003 anchor" `Quick test_halloween_2003_anchor;
          Alcotest.test_case "enhancement vs altitude" `Quick
            test_enhancement_grows_with_altitude;
          Alcotest.test_case "validation" `Quick test_atmosphere_validation ] );
      ( "decay",
        [ Alcotest.test_case "ISS-like decay" `Quick test_iss_like_decay;
          Alcotest.test_case "starlink lifetime" `Quick test_starlink_lifetime_years_at_550;
          Alcotest.test_case "210 km marginality" `Quick test_low_parking_orbit_is_marginal;
          Alcotest.test_case "no thruster" `Quick test_no_thruster_never_holds;
          Alcotest.test_case "coast monotone" `Quick test_altitude_after_monotone_in_days;
          Alcotest.test_case "validation" `Quick test_decay_validation ] );
      ( "constellation",
        [ Alcotest.test_case "starlink size" `Quick test_starlink_size;
          Alcotest.test_case "coverage cap" `Quick test_coverage_cap_reasonable;
          Alcotest.test_case "latitude profile" `Quick test_visible_satellites_latitude_profile;
          Alcotest.test_case "coverage bounds" `Quick test_coverage_fraction_bounds;
          Alcotest.test_case "empty constellation" `Quick test_empty_constellation ] );
      ( "storm_impact",
        [ Alcotest.test_case "feb 2022 reproduction" `Quick test_feb_2022_reproduction;
          Alcotest.test_case "carrington losses" `Quick test_carrington_fleet_losses;
          Alcotest.test_case "monotone in storm" `Quick test_storm_losses_monotone;
          Alcotest.test_case "electronics anchors" `Quick test_electronics_probability_anchors ] );
      ("properties", qcheck_tests);
    ]
