(* Tests for the dataset generators: calibration against the counts and
   marginals published in the paper (see DESIGN.md section 1). *)

let check_close eps = Alcotest.(check (float eps))

(* Datasets are deterministic; build them once for the whole suite. *)
let submarine = lazy (Datasets.Submarine.build ())
let intertubes = lazy (Datasets.Intertubes.build ())
let itu_small = lazy (Datasets.Itu.build ~scale:0.1 ())
let ases = lazy (Datasets.Caida.build ~ases:6000 ())
let dns = lazy (Datasets.Dns_roots.build ())
let ixps = lazy (Datasets.Ixp.build ())

let pct_above lats t = 100.0 *. Geo.Latband.fraction_above lats ~threshold:t

(* --- Cities --- *)

let test_cities_unique_names () =
  let names = Array.to_list (Array.map (fun c -> c.Datasets.Cities.name) Datasets.Cities.all) in
  Alcotest.(check int) "no duplicates" (List.length names)
    (List.length (List.sort_uniq String.compare names))

let test_cities_count () =
  Alcotest.(check bool) "several hundred cities" true (Array.length Datasets.Cities.all > 300)

let test_cities_find () =
  let s = Datasets.Cities.find "Singapore" in
  Alcotest.(check string) "country" "Singapore" s.Datasets.Cities.country;
  Alcotest.(check bool) "coastal" true s.Datasets.Cities.coastal;
  Alcotest.(check bool) "find_opt absent" true (Datasets.Cities.find_opt "Atlantis" = None)

let test_cities_coordinates_sane () =
  Array.iter
    (fun c ->
      let lat = Geo.Coord.lat c.Datasets.Cities.pos in
      Alcotest.(check bool) "inhabited latitude" true (lat > -60.0 && lat < 75.0);
      Alcotest.(check bool) "positive population" true (c.Datasets.Cities.population_m > 0.0))
    Datasets.Cities.all

let test_cities_continent_labels_match_geometry () =
  (* The labeled continent should match the polygon assignment for the vast
     majority of cities (coastal cities may sit outside coarse outlines). *)
  let total = Array.length Datasets.Cities.all in
  let agree =
    Array.fold_left
      (fun acc c ->
        match Geo.Region.continent_of c.Datasets.Cities.pos with
        | Some k when Geo.Region.equal_continent k c.Datasets.Cities.continent -> acc + 1
        | Some _ -> acc
        | None -> acc + 1 (* offshore city: polygon says ocean, tolerated *))
      0 Datasets.Cities.all
  in
  Alcotest.(check bool)
    (Printf.sprintf "%d/%d agree" agree total)
    true
    (float_of_int agree /. float_of_int total > 0.9)

let test_cities_population_weighted_draw () =
  let rng = Rng.create 5 in
  for _ = 1 to 20 do
    let c = Datasets.Cities.population_weighted rng in
    Alcotest.(check bool) "valid pick" true (c.Datasets.Cities.population_m > 0.0)
  done

let test_cities_nearest () =
  let near_tokyo = Geo.Coord.make ~lat:35.5 ~lon:139.5 in
  Alcotest.(check string) "nearest to Tokyo" "Tokyo"
    (Datasets.Cities.nearest near_tokyo).Datasets.Cities.name

let test_cities_in_country () =
  Alcotest.(check bool) "many US cities" true
    (Array.length (Datasets.Cities.in_country "United States") > 50);
  Alcotest.(check int) "unknown country" 0 (Array.length (Datasets.Cities.in_country "Narnia"))

(* --- Population --- *)

let test_population_shares_sum_to_one () =
  let total = List.fold_left (fun a (_, _, s) -> a +. s) 0.0 Datasets.Population.band_shares in
  check_close 1e-6 "sum 1" 1.0 total

let test_population_fraction_above_40 () =
  (* Paper: only 16% of the world population is above |40 deg|. *)
  let f = Datasets.Population.fraction_above 40.0 in
  Alcotest.(check bool) (Printf.sprintf "%.3f in [0.13, 0.19]" f) true (f > 0.13 && f < 0.19)

let test_population_northern_hemisphere_dominates () =
  let north = Datasets.Population.share_between ~lat_lo:0.0 ~lat_hi:90.0 in
  Alcotest.(check bool) "85-90% north" true (north > 0.82 && north < 0.93)

let test_population_share_between_validation () =
  Alcotest.check_raises "inverted"
    (Invalid_argument "Population.share_between: inverted interval") (fun () ->
      ignore (Datasets.Population.share_between ~lat_lo:10.0 ~lat_hi:0.0))

let test_population_latitude_weights_partition () =
  let ws = Datasets.Population.latitude_weights ~bin_deg:2.0 in
  Alcotest.(check int) "90 bins" 90 (List.length ws);
  check_close 1e-6 "weights sum to 1" 1.0 (List.fold_left (fun a (_, w) -> a +. w) 0.0 ws)

let test_population_sample_latitude_in_range () =
  let rng = Rng.create 11 in
  for _ = 1 to 100 do
    let l = Datasets.Population.sample_latitude rng in
    Alcotest.(check bool) "in [-60, 80]" true (l >= -60.0 && l <= 80.0)
  done

(* --- Submarine --- *)

let test_submarine_counts () =
  let net = Lazy.force submarine in
  Alcotest.(check int) "1241 landing points" Datasets.Submarine.target_landing_points
    (Infra.Network.nb_nodes net);
  Alcotest.(check int) "470 cables" Datasets.Submarine.target_cables
    (Infra.Network.nb_cables net)

let test_submarine_length_quantiles () =
  (* Paper: median 775 km, p99 28,000 km, max 39,000 km. *)
  let net = Lazy.force submarine in
  let lengths = Infra.Network.cable_lengths net in
  let median = Stormsim.Stats.median lengths in
  let p99 = Stormsim.Stats.percentile lengths ~p:99.0 in
  let max_l = List.fold_left Float.max 0.0 lengths in
  Alcotest.(check bool) (Printf.sprintf "median %.0f in [500, 1200]" median) true
    (median > 500.0 && median < 1200.0);
  Alcotest.(check bool) (Printf.sprintf "p99 %.0f in [20000, 39000]" p99) true
    (p99 >= 20000.0 && p99 <= 39000.0);
  check_close 1e-9 "max is SEA-ME-WE 3" 39000.0 max_l

let test_submarine_endpoint_skew () =
  (* Paper: 31% of submarine endpoints above |40 deg|. *)
  let net = Lazy.force submarine in
  let lats = Infra.Network.endpoint_latitudes net in
  let f = pct_above lats 40.0 in
  Alcotest.(check bool) (Printf.sprintf "%.1f%% in [26, 36]" f) true (f > 26.0 && f < 36.0)

let test_submarine_one_hop_extension () =
  (* Paper: another ~14% of endpoints are one hop from the vulnerable zone. *)
  let net = Lazy.force submarine in
  let one_hop = Infra.Network.one_hop_endpoints net ~threshold:40.0 in
  let f = 100.0 *. float_of_int (List.length one_hop) /. float_of_int (Infra.Network.nb_nodes net) in
  Alcotest.(check bool) (Printf.sprintf "%.1f%% in [8, 20]" f) true (f > 8.0 && f < 20.0)

let test_submarine_connected () =
  let net = Lazy.force submarine in
  let g, _ = Infra.Network.to_graph net in
  Alcotest.(check bool) "single fabric" true (Netgraph.Traversal.is_connected g)

let test_submarine_mean_repeaters () =
  (* Paper: 22.3 repeaters per cable at 150 km spacing. *)
  let net = Lazy.force submarine in
  let m = Infra.Network.mean_repeaters_per_cable net ~spacing_km:150.0 in
  Alcotest.(check bool) (Printf.sprintf "%.1f in [15, 28]" m) true (m > 15.0 && m < 28.0)

let test_submarine_real_cables_present () =
  let net = Lazy.force submarine in
  List.iter
    (fun city ->
      match Datasets.Submarine.hub_node net city with
      | Some _ -> ()
      | None -> Alcotest.fail (city ^ " missing"))
    [ "Singapore"; "Shanghai"; "Fortaleza"; "Bude"; "Honolulu"; "Mumbai"; "Sydney" ]

let test_submarine_shanghai_cables_long () =
  (* Paper: every cable landing at Shanghai proper is >= 28,000 km. *)
  let net = Lazy.force submarine in
  match Datasets.Submarine.hub_node net "Shanghai" with
  | None -> Alcotest.fail "no Shanghai node"
  | Some id ->
      let cables = Infra.Network.cables_at net id in
      Alcotest.(check bool) "has cables" true (List.length cables >= 2);
      List.iter
        (fun (c : Infra.Cable.t) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s %.0f km >= 28000" c.Infra.Cable.name c.Infra.Cable.length_km)
            true
            (c.Infra.Cable.length_km >= 28000.0))
        cables

let test_submarine_ellalink_vs_columbus () =
  (* Paper: Ellalink (Brazil-Portugal) is 6,200 km; Florida-Portugal is
     9,833 km — the asymmetry behind Brazil's resilience. *)
  let net = Lazy.force submarine in
  let find_cable name =
    let rec scan i =
      if i >= Infra.Network.nb_cables net then None
      else
        let c = Infra.Network.cable net i in
        if c.Infra.Cable.name = name then Some c else scan (i + 1)
    in
    scan 0
  in
  match (find_cable "Ellalink", find_cable "Columbus-III") with
  | Some e, Some c ->
      check_close 1.0 "ellalink" 6200.0 e.Infra.Cable.length_km;
      check_close 1.0 "columbus" 9833.0 c.Infra.Cable.length_km
  | _ -> Alcotest.fail "named cables missing"

let test_submarine_deterministic () =
  let a = Datasets.Submarine.build ~seed:7 () in
  let b = Datasets.Submarine.build ~seed:7 () in
  Alcotest.(check int) "same cable count" (Infra.Network.nb_cables a)
    (Infra.Network.nb_cables b);
  Alcotest.(check (float 1e-9)) "same total length"
    (List.fold_left ( +. ) 0.0 (Infra.Network.cable_lengths a))
    (List.fold_left ( +. ) 0.0 (Infra.Network.cable_lengths b))

let test_submarine_nodes_in_country () =
  let net = Lazy.force submarine in
  Alcotest.(check bool) "US landings" true
    (List.length (Datasets.Submarine.nodes_in_country net "United States") > 20);
  Alcotest.(check (list int)) "landlocked none" []
    (Datasets.Submarine.nodes_in_country net "Mongolia")

(* --- Intertubes --- *)

let test_intertubes_counts () =
  let net = Lazy.force intertubes in
  Alcotest.(check int) "273 nodes" Datasets.Intertubes.target_nodes (Infra.Network.nb_nodes net);
  Alcotest.(check int) "542 links" Datasets.Intertubes.target_links (Infra.Network.nb_cables net)

let test_intertubes_contiguous_us () =
  let net = Lazy.force intertubes in
  for i = 0 to Infra.Network.nb_nodes net - 1 do
    let pos = Infra.Network.node_coord net i in
    let lat = Geo.Coord.lat pos and lon = Geo.Coord.lon pos in
    if not (lat > 24.0 && lat < 50.0 && lon > -125.5 && lon < -66.0) then
      Alcotest.fail (Printf.sprintf "node %d outside contiguous US (%f, %f)" i lat lon)
  done

let test_intertubes_endpoint_skew () =
  (* Paper: 40% of Intertubes endpoints above 40 deg N. *)
  let net = Lazy.force intertubes in
  let f = pct_above (Infra.Network.endpoint_latitudes net) 40.0 in
  Alcotest.(check bool) (Printf.sprintf "%.1f%% in [33, 48]" f) true (f > 33.0 && f < 48.0)

let test_intertubes_unrepeatered_share () =
  (* Paper: 258/542 conduits need no repeater at 150 km. *)
  let net = Lazy.force intertubes in
  let none = Infra.Network.cables_without_repeaters net ~spacing_km:150.0 in
  Alcotest.(check bool) (Printf.sprintf "%d in [140, 320]" none) true
    (none >= 140 && none <= 320)

let test_intertubes_mean_repeaters () =
  (* Paper: 1.7 repeaters per conduit at 150 km. *)
  let net = Lazy.force intertubes in
  let m = Infra.Network.mean_repeaters_per_cable net ~spacing_km:150.0 in
  Alcotest.(check bool) (Printf.sprintf "%.2f in [1.0, 3.0]" m) true (m > 1.0 && m < 3.0)

let test_intertubes_all_land_cables () =
  let net = Lazy.force intertubes in
  for i = 0 to Infra.Network.nb_cables net - 1 do
    let c = Infra.Network.cable net i in
    if c.Infra.Cable.kind <> Infra.Cable.Land_fiber then Alcotest.fail "submarine in intertubes"
  done

(* --- ITU --- *)

let test_itu_scaled_counts () =
  let net = Lazy.force itu_small in
  let nodes = Infra.Network.nb_nodes net and links = Infra.Network.nb_cables net in
  Alcotest.(check bool) "nodes ~ 1131" true (abs (nodes - 1131) < 60);
  Alcotest.(check bool) "links ~ 1174" true (abs (links - 1174) < 60)

let test_itu_full_scale_targets () =
  Alcotest.(check int) "11314" 11314 Datasets.Itu.target_nodes;
  Alcotest.(check int) "11737" 11737 Datasets.Itu.target_links

let test_itu_mostly_unrepeatered () =
  (* Paper: 8443/11737 (72%) of ITU links need no repeater at 150 km. *)
  let net = Lazy.force itu_small in
  let frac =
    float_of_int (Infra.Network.cables_without_repeaters net ~spacing_km:150.0)
    /. float_of_int (Infra.Network.nb_cables net)
  in
  Alcotest.(check bool) (Printf.sprintf "%.2f in [0.5, 0.85]" frac) true
    (frac > 0.5 && frac < 0.85)

let test_itu_mean_repeaters_below_intertubes () =
  (* Paper ordering: ITU 0.63 < Intertubes 1.7 repeaters per cable. *)
  let itu = Lazy.force itu_small and it = Lazy.force intertubes in
  Alcotest.(check bool) "itu < intertubes" true
    (Infra.Network.mean_repeaters_per_cable itu ~spacing_km:150.0
    < Infra.Network.mean_repeaters_per_cable it ~spacing_km:150.0)

let test_itu_scale_validation () =
  Alcotest.check_raises "scale 0" (Invalid_argument "Itu.build: scale outside (0, 1]")
    (fun () -> ignore (Datasets.Itu.build ~scale:0.0 ()))

(* --- CAIDA --- *)

let test_caida_counts () =
  Alcotest.(check int) "61448 target" 61448 Datasets.Caida.target_ases;
  Alcotest.(check int) "requested count" 6000 (Array.length (Lazy.force ases))

let test_caida_spread_quantiles () =
  (* Paper (Fig. 9b): median 1.723 deg, p90 18.263 deg. *)
  let cdf = Datasets.Caida.spread_cdf (Lazy.force ases) in
  let q p = fst (List.find (fun (_, f) -> f >= p) cdf) in
  let med = q 0.5 and p90 = q 0.9 in
  Alcotest.(check bool) (Printf.sprintf "median %.2f in [1.2, 2.4]" med) true
    (med > 1.2 && med < 2.4);
  Alcotest.(check bool) (Printf.sprintf "p90 %.1f in [13, 24]" p90) true
    (p90 > 13.0 && p90 < 24.0)

let test_caida_reach_above_40 () =
  (* Paper (Fig. 9a): 57% of ASes have presence above |40 deg|. *)
  let r = 100.0 *. Datasets.Caida.reach_above (Lazy.force ases) ~threshold:40.0 in
  Alcotest.(check bool) (Printf.sprintf "%.1f%% in [45, 65]" r) true (r > 45.0 && r < 65.0)

let test_caida_router_skew () =
  (* Paper (Fig. 4b): 38% of routers above |40 deg|. *)
  let lats = Datasets.Caida.router_latitudes (Lazy.force ases) in
  let above = Array.fold_left (fun a l -> if Float.abs l > 40.0 then a + 1 else a) 0 lats in
  let f = 100.0 *. float_of_int above /. float_of_int (Array.length lats) in
  Alcotest.(check bool) (Printf.sprintf "%.1f%% in [30, 50]" f) true (f > 30.0 && f < 50.0)

let test_caida_reach_monotone () =
  let a = Lazy.force ases in
  let r20 = Datasets.Caida.reach_above a ~threshold:20.0 in
  let r60 = Datasets.Caida.reach_above a ~threshold:60.0 in
  Alcotest.(check bool) "monotone decreasing" true (r20 >= r60)

let test_caida_spread_consistency () =
  Array.iter
    (fun a ->
      let lats = a.Datasets.Caida.router_lats in
      let lo = Array.fold_left Float.min lats.(0) lats in
      let hi = Array.fold_left Float.max lats.(0) lats in
      Alcotest.(check (float 1e-9)) "spread = hi - lo" (hi -. lo) a.Datasets.Caida.spread_deg)
    (Array.sub (Lazy.force ases) 0 200)

let test_caida_validation () =
  Alcotest.check_raises "zero ases" (Invalid_argument "Caida.build: non-positive AS count")
    (fun () -> ignore (Datasets.Caida.build ~ases:0 ()))

(* --- DNS roots --- *)

let test_dns_counts () =
  let instances = Lazy.force dns in
  Alcotest.(check int) "1076 instances" Datasets.Dns_roots.target_instances
    (Array.length instances);
  let letters =
    Array.to_list instances
    |> List.map (fun i -> i.Datasets.Dns_roots.letter)
    |> List.sort_uniq Char.compare
  in
  Alcotest.(check int) "13 letters" 13 (List.length letters)

let test_dns_letter_counts_match () =
  let instances = Lazy.force dns in
  List.iter
    (fun (letter, expected) ->
      let n =
        Array.fold_left
          (fun a i -> if i.Datasets.Dns_roots.letter = letter then a + 1 else a)
          0 instances
      in
      Alcotest.(check int) (Printf.sprintf "letter %c" letter) expected n)
    Datasets.Dns_roots.letter_counts

let test_dns_widely_distributed () =
  (* Paper: DNS roots present on all (inhabited) continents. *)
  let per = Datasets.Dns_roots.per_continent (Lazy.force dns) in
  Alcotest.(check bool) ">= 5 continents" true (List.length per >= 5)

let test_dns_latitude_moderate () =
  let f = pct_above (Datasets.Dns_roots.latitudes (Lazy.force dns)) 40.0 in
  Alcotest.(check bool) (Printf.sprintf "%.0f%% in [30, 48]" f) true (f > 30.0 && f < 48.0)

(* --- IXP --- *)

let test_ixp_counts () =
  Alcotest.(check int) "1026 IXPs" Datasets.Ixp.target_count (Array.length (Lazy.force ixps))

let test_ixp_skew () =
  (* Paper (Fig. 4b): 43% of IXPs above |40 deg|. *)
  let f = pct_above (Datasets.Ixp.latitudes (Lazy.force ixps)) 40.0 in
  Alcotest.(check bool) (Printf.sprintf "%.0f%% in [35, 50]" f) true (f > 35.0 && f < 50.0)

(* --- Data centers --- *)

let test_dc_fleet_sizes () =
  Alcotest.(check bool) "google fleet bigger" true
    (List.length Datasets.Datacenters.google > List.length Datasets.Datacenters.facebook);
  Alcotest.(check int) "all = google + facebook"
    (List.length Datasets.Datacenters.google + List.length Datasets.Datacenters.facebook)
    (List.length Datasets.Datacenters.all)

let test_dc_google_more_continents () =
  (* Paper: Google spreads over 5 continents, Facebook has no African or
     South American hyperscale site. *)
  let g = Datasets.Datacenters.continents_covered Datasets.Datacenters.Google in
  let f = Datasets.Datacenters.continents_covered Datasets.Datacenters.Facebook in
  Alcotest.(check bool) "google >= 5" true (List.length g >= 5);
  Alcotest.(check bool) "facebook <= 3" true (List.length f <= 3);
  Alcotest.(check bool) "facebook lacks South America" true
    (not (List.exists (Geo.Region.equal_continent Geo.Region.South_america) f))

let test_dc_google_wider_spread () =
  Alcotest.(check bool) "google latitude spread larger" true
    (Datasets.Datacenters.latitude_spread Datasets.Datacenters.Google
    > Datasets.Datacenters.latitude_spread Datasets.Datacenters.Facebook)

let test_dc_singapore_site () =
  Alcotest.(check bool) "google in singapore" true
    (List.exists
       (fun s -> s.Datasets.Datacenters.country = "Singapore")
       Datasets.Datacenters.google)

(* --- Rng (shared by generators) --- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 50 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_split_independence () =
  let parent = Rng.create 1 in
  let c1 = Rng.split parent and c2 = Rng.split parent in
  let s1 = List.init 20 (fun _ -> Rng.int c1 1000) in
  let s2 = List.init 20 (fun _ -> Rng.int c2 1000) in
  Alcotest.(check bool) "different streams" true (s1 <> s2)

let test_rng_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 200 do
    let v = Rng.int rng 7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7);
    let f = Rng.uniform rng 2.0 5.0 in
    Alcotest.(check bool) "uniform in range" true (f >= 2.0 && f < 5.0)
  done

let test_rng_validation () =
  let rng = Rng.create 4 in
  Alcotest.check_raises "int bound" (Invalid_argument "Rng.int: bound <= 0") (fun () ->
      ignore (Rng.int rng 0));
  Alcotest.check_raises "pareto xmin" (Invalid_argument "Rng.pareto: xmin <= 0") (fun () ->
      ignore (Rng.pareto rng ~xmin:0.0 ~alpha:1.0));
  Alcotest.check_raises "empty choice" (Invalid_argument "Rng.choice: empty array")
    (fun () -> ignore (Rng.choice rng [||]))

let test_rng_bernoulli_extremes () =
  let rng = Rng.create 5 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng ~p:0.0);
    Alcotest.(check bool) "p=1 always" true (Rng.bernoulli rng ~p:1.0)
  done

let test_rng_weighted_choice () =
  let rng = Rng.create 6 in
  for _ = 1 to 50 do
    Alcotest.(check string) "zero-weight never picked" "b"
      (Rng.weighted_choice rng [| ("a", 0.0); ("b", 1.0) |])
  done

(* --- QCheck --- *)

let prop_rng_normal_mean =
  QCheck.Test.make ~name:"normal sample mean near mu" ~count:10
    (QCheck.float_range (-5.0) 5.0)
    (fun mu ->
      let rng = Rng.create (int_of_float (mu *. 1000.0)) in
      let n = 2000 in
      let sum = ref 0.0 in
      for _ = 1 to n do
        sum := !sum +. Rng.normal rng ~mu ~sigma:1.0
      done;
      Float.abs ((!sum /. float_of_int n) -. mu) < 0.15)

let prop_rng_pareto_above_xmin =
  QCheck.Test.make ~name:"pareto >= xmin" ~count:100
    (QCheck.float_range 0.5 100.0)
    (fun xmin ->
      let rng = Rng.create (int_of_float xmin) in
      let v = Rng.pareto rng ~xmin ~alpha:1.5 in
      v >= xmin)

let prop_sample_without_replacement_distinct =
  QCheck.Test.make ~name:"sample without replacement distinct" ~count:100
    (QCheck.int_range 0 20)
    (fun k ->
      let rng = Rng.create k in
      let arr = Array.init 20 (fun i -> i) in
      let picked = Rng.sample_without_replacement rng arr ~k in
      List.length (List.sort_uniq Int.compare picked) = k)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_rng_normal_mean; prop_rng_pareto_above_xmin;
      prop_sample_without_replacement_distinct ]

let () =
  Alcotest.run "datasets"
    [
      ( "cities",
        [ Alcotest.test_case "unique names" `Quick test_cities_unique_names;
          Alcotest.test_case "count" `Quick test_cities_count;
          Alcotest.test_case "find" `Quick test_cities_find;
          Alcotest.test_case "coordinates sane" `Quick test_cities_coordinates_sane;
          Alcotest.test_case "continent labels" `Quick
            test_cities_continent_labels_match_geometry;
          Alcotest.test_case "population weighted" `Quick test_cities_population_weighted_draw;
          Alcotest.test_case "nearest" `Quick test_cities_nearest;
          Alcotest.test_case "in_country" `Quick test_cities_in_country ] );
      ( "population",
        [ Alcotest.test_case "shares sum" `Quick test_population_shares_sum_to_one;
          Alcotest.test_case "16% above 40" `Quick test_population_fraction_above_40;
          Alcotest.test_case "north dominates" `Quick
            test_population_northern_hemisphere_dominates;
          Alcotest.test_case "validation" `Quick test_population_share_between_validation;
          Alcotest.test_case "latitude weights" `Quick test_population_latitude_weights_partition;
          Alcotest.test_case "sample range" `Quick test_population_sample_latitude_in_range ] );
      ( "submarine",
        [ Alcotest.test_case "counts" `Quick test_submarine_counts;
          Alcotest.test_case "length quantiles" `Quick test_submarine_length_quantiles;
          Alcotest.test_case "endpoint skew" `Quick test_submarine_endpoint_skew;
          Alcotest.test_case "one-hop extension" `Quick test_submarine_one_hop_extension;
          Alcotest.test_case "connected" `Quick test_submarine_connected;
          Alcotest.test_case "mean repeaters" `Quick test_submarine_mean_repeaters;
          Alcotest.test_case "real hubs present" `Quick test_submarine_real_cables_present;
          Alcotest.test_case "shanghai long cables" `Quick test_submarine_shanghai_cables_long;
          Alcotest.test_case "ellalink vs columbus" `Quick test_submarine_ellalink_vs_columbus;
          Alcotest.test_case "deterministic" `Quick test_submarine_deterministic;
          Alcotest.test_case "nodes in country" `Quick test_submarine_nodes_in_country ] );
      ( "intertubes",
        [ Alcotest.test_case "counts" `Quick test_intertubes_counts;
          Alcotest.test_case "contiguous US" `Quick test_intertubes_contiguous_us;
          Alcotest.test_case "endpoint skew" `Quick test_intertubes_endpoint_skew;
          Alcotest.test_case "unrepeatered share" `Quick test_intertubes_unrepeatered_share;
          Alcotest.test_case "mean repeaters" `Quick test_intertubes_mean_repeaters;
          Alcotest.test_case "land cables only" `Quick test_intertubes_all_land_cables ] );
      ( "itu",
        [ Alcotest.test_case "scaled counts" `Quick test_itu_scaled_counts;
          Alcotest.test_case "full-scale targets" `Quick test_itu_full_scale_targets;
          Alcotest.test_case "mostly unrepeatered" `Quick test_itu_mostly_unrepeatered;
          Alcotest.test_case "below intertubes" `Quick test_itu_mean_repeaters_below_intertubes;
          Alcotest.test_case "scale validation" `Quick test_itu_scale_validation ] );
      ( "caida",
        [ Alcotest.test_case "counts" `Quick test_caida_counts;
          Alcotest.test_case "spread quantiles" `Quick test_caida_spread_quantiles;
          Alcotest.test_case "reach above 40" `Quick test_caida_reach_above_40;
          Alcotest.test_case "router skew" `Quick test_caida_router_skew;
          Alcotest.test_case "reach monotone" `Quick test_caida_reach_monotone;
          Alcotest.test_case "spread consistency" `Quick test_caida_spread_consistency;
          Alcotest.test_case "validation" `Quick test_caida_validation ] );
      ( "dns",
        [ Alcotest.test_case "counts" `Quick test_dns_counts;
          Alcotest.test_case "letter counts" `Quick test_dns_letter_counts_match;
          Alcotest.test_case "widely distributed" `Quick test_dns_widely_distributed;
          Alcotest.test_case "latitude moderate" `Quick test_dns_latitude_moderate ] );
      ( "ixp",
        [ Alcotest.test_case "counts" `Quick test_ixp_counts;
          Alcotest.test_case "skew" `Quick test_ixp_skew ] );
      ( "datacenters",
        [ Alcotest.test_case "fleet sizes" `Quick test_dc_fleet_sizes;
          Alcotest.test_case "google continents" `Quick test_dc_google_more_continents;
          Alcotest.test_case "google spread" `Quick test_dc_google_wider_spread;
          Alcotest.test_case "singapore site" `Quick test_dc_singapore_site ] );
      ( "rng",
        [ Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split independence" `Quick test_rng_split_independence;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "validation" `Quick test_rng_validation;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          Alcotest.test_case "weighted choice" `Quick test_rng_weighted_choice ] );
      ("properties", qcheck_tests);
    ]
