(* Tests for the interdomain-routing substrate: AS topology generation,
   valley-free BGP computation and the storm protocol comparison. *)

open Interdomain

(* A tiny hand-built topology:
     T1 core: 0, 1 (peers)
     T2: 2 (customer of 0), 3 (customer of 1); 2-3 peer
     stubs: 4 (customer of 2), 5 (customer of 3), 6 (customer of 2 and 3) *)
let tiny : As_topology.t =
  let n = 7 in
  let providers = Array.make n [] and customers = Array.make n [] and peers = Array.make n [] in
  let link c p =
    providers.(c) <- p :: providers.(c);
    customers.(p) <- c :: customers.(p)
  in
  let peer a b =
    peers.(a) <- b :: peers.(a);
    peers.(b) <- a :: peers.(b)
  in
  link 2 0;
  link 3 1;
  link 4 2;
  link 5 3;
  link 6 2;
  link 6 3;
  peer 0 1;
  peer 2 3;
  {
    As_topology.n;
    tier = [| As_topology.T1; T1; T2; T2; Stub; Stub; Stub |];
    home_lat = [| 50.0; 45.0; 40.0; 35.0; 30.0; 25.0; 0.0 |];
    providers;
    customers;
    peers;
  }

let generated = lazy (As_topology.generate ~n:600 ())

(* --- Topology --- *)

let test_tiny_valid () =
  match As_topology.validate tiny with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_generated_valid () =
  match As_topology.validate (Lazy.force generated) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_generated_tier_mix () =
  let t = Lazy.force generated in
  let count k = Array.fold_left (fun a x -> if x = k then a + 1 else a) 0 t.As_topology.tier in
  let t1 = count As_topology.T1 and t2 = count As_topology.T2 and stub = count As_topology.Stub in
  Alcotest.(check int) "total" t.As_topology.n (t1 + t2 + stub);
  Alcotest.(check bool) "few tier-1" true (t1 >= 5 && t1 < t2);
  Alcotest.(check bool) "stubs dominate" true (stub > t.As_topology.n / 2)

let test_generated_validation_arg () =
  Alcotest.check_raises "too small"
    (Invalid_argument "As_topology.generate: need at least 20 ASes") (fun () ->
      ignore (As_topology.generate ~n:5 ()))

let test_provider_cone () =
  (* Cone membership of stub 4: itself, 2 (its provider is on the path
     down? no: cone t dst = ASes that can descend to dst), i.e. 4, 2, 0. *)
  let cone = As_topology.provider_cone tiny 4 in
  Alcotest.(check bool) "self" true cone.(4);
  Alcotest.(check bool) "direct provider" true cone.(2);
  Alcotest.(check bool) "transit top" true cone.(0);
  Alcotest.(check bool) "other branch excluded" false cone.(3)

let test_degree_stats () =
  let mean, dmax = As_topology.degree_stats (Lazy.force generated) in
  Alcotest.(check bool) "mean degree 2-20" true (mean > 2.0 && mean < 20.0);
  Alcotest.(check bool) "hub exists" true (dmax > 10)

(* --- BGP --- *)

let alive = Bgp.all_alive tiny

let test_reachability_healthy () =
  (* Everything reaches everything in the tiny topology. *)
  for src = 0 to 6 do
    for dst = 0 to 6 do
      if not (Bgp.reachable tiny ~alive ~src ~dst) then
        Alcotest.fail (Printf.sprintf "%d cannot reach %d" src dst)
    done
  done

let test_shortest_path_shape () =
  match Bgp.shortest_path tiny ~alive ~src:4 ~dst:5 with
  | None -> Alcotest.fail "no path"
  | Some path ->
      Alcotest.(check bool) "valley free" true (Bgp.is_valley_free tiny path);
      Alcotest.(check int) "via the 2-3 peer link" 4 (List.length path);
      Alcotest.(check (list int)) "route" [ 4; 2; 3; 5 ] path

let test_shortest_path_self () =
  Alcotest.(check (option (list int))) "self" (Some [ 4 ]) (Bgp.shortest_path tiny ~alive ~src:4 ~dst:4)

let test_valley_enforcement () =
  (* 4 -> 2 -> 0 -> 1 -> 3 -> 5 is valley-free (up up peer down down);
     4 -> 2 -> 3 -> 1 ascends after a peer edge: not valley-free. *)
  Alcotest.(check bool) "up-peer-down ok" true
    (Bgp.is_valley_free tiny [ 4; 2; 0; 1; 3; 5 ]);
  Alcotest.(check bool) "peer then up rejected" false (Bgp.is_valley_free tiny [ 4; 2; 3; 1 ]);
  Alcotest.(check bool) "down then up rejected" false (Bgp.is_valley_free tiny [ 0; 2; 0 ]);
  Alcotest.(check bool) "non-edge rejected" false (Bgp.is_valley_free tiny [ 4; 5 ])

let test_dead_as_blocks () =
  let alive = Bgp.all_alive tiny in
  alive.(2) <- false;
  (* Stub 4's only provider is dead. *)
  Alcotest.(check bool) "4 cut off" false (Bgp.reachable tiny ~alive ~src:4 ~dst:5);
  (* Stub 6 is dual-homed and survives via 3. *)
  Alcotest.(check bool) "6 survives" true (Bgp.reachable tiny ~alive ~src:6 ~dst:5)

let test_reachability_fraction_symmetric_definition () =
  let f = Bgp.reachability_fraction tiny ~alive ~dst:5 in
  Alcotest.(check (float 1e-9)) "full" 1.0 f;
  let alive' = Bgp.all_alive tiny in
  alive'.(3) <- false;
  (* 5 loses its only provider: nobody reaches it. *)
  Alcotest.(check (float 1e-9)) "isolated dst" 0.0
    (Bgp.reachability_fraction tiny ~alive:alive' ~dst:5)

let test_disjoint_paths_dual_homed () =
  let paths = Bgp.disjoint_paths ~k:3 tiny ~alive ~src:6 ~dst:0 in
  Alcotest.(check bool) "at least 2 disjoint" true (List.length paths >= 2);
  (* Intermediate ASes must not repeat across paths. *)
  let intermediates =
    List.concat_map (fun p -> List.filter (fun x -> x <> 6 && x <> 0) p) paths
  in
  Alcotest.(check int) "disjoint intermediates"
    (List.length intermediates)
    (List.length (List.sort_uniq Int.compare intermediates))

let test_generated_healthy_reachability () =
  let t = Lazy.force generated in
  let alive = Bgp.all_alive t in
  (* Core and random stubs must be near-universally reachable. *)
  let f = Bgp.reachability_fraction t ~alive ~dst:0 in
  Alcotest.(check bool) (Printf.sprintf "reach %.3f > 0.99" f) true (f > 0.99)

let test_generated_paths_valley_free () =
  let t = Lazy.force generated in
  let alive = Bgp.all_alive t in
  let rng = Rng.create 3 in
  for _ = 1 to 50 do
    let src = Rng.int rng t.As_topology.n and dst = Rng.int rng t.As_topology.n in
    match Bgp.shortest_path t ~alive ~src ~dst with
    | Some path ->
        if not (Bgp.is_valley_free t path) then
          Alcotest.fail
            (Printf.sprintf "path %s not valley-free"
               (String.concat "-" (List.map string_of_int path)))
    | None -> ()
  done

(* --- Storm --- *)

let test_tier_probabilities_ordering () =
  let h1, m1, l1 = Storm.tier_probabilities ~dst_nt:(-1200.0) in
  let h2, m2, l2 = Storm.tier_probabilities ~dst_nt:(-300.0) in
  Alcotest.(check bool) "within storm: high > mid > low" true (h1 > m1 && m1 > l1);
  Alcotest.(check bool) "across storms" true (h1 > h2 && m1 > m2 && l1 >= l2)

let test_draw_failures_latitude_bias () =
  let t = Lazy.force generated in
  let rng = Rng.create 7 in
  let dead_high = ref 0 and n_high = ref 0 and dead_low = ref 0 and n_low = ref 0 in
  for _ = 1 to 20 do
    let alive = Storm.draw_failures rng t ~dst_nt:(-1200.0) in
    Array.iteri
      (fun i a ->
        let l = Float.abs t.As_topology.home_lat.(i) in
        if l > 60.0 then begin
          incr n_high;
          if not a then incr dead_high
        end
        else if l <= 40.0 then begin
          incr n_low;
          if not a then incr dead_low
        end)
      alive
  done;
  let rate d n = if n = 0 then 0.0 else float_of_int d /. float_of_int n in
  Alcotest.(check bool) "high latitude dies more" true
    (rate !dead_high !n_high > 3.0 *. rate !dead_low !n_low)

let test_compare_protocols_invariants () =
  let t = Lazy.force generated in
  let o = Storm.compare_protocols ~pairs:100 t ~dst_nt:(-1200.0) in
  Alcotest.(check bool) "multipath >= bgp" true
    (o.Storm.multipath_continuity_pct >= o.Storm.bgp_continuity_pct -. 1e-9);
  Alcotest.(check bool) "reachability >= multipath" true
    (o.Storm.reachability_pct >= o.Storm.multipath_continuity_pct -. 25.0);
  Alcotest.(check bool) "diversity >= 1" true (o.Storm.mean_disjoint_paths >= 1.0);
  Alcotest.(check bool) "percent ranges" true
    (o.Storm.bgp_continuity_pct >= 0.0 && o.Storm.reachability_pct <= 100.0)

let test_compare_protocols_storm_ordering () =
  let t = Lazy.force generated in
  let weak = Storm.compare_protocols ~pairs:100 t ~dst_nt:(-200.0) in
  let strong = Storm.compare_protocols ~pairs:100 t ~dst_nt:(-1200.0) in
  Alcotest.(check bool) "stronger storm, less continuity" true
    (strong.Storm.bgp_continuity_pct <= weak.Storm.bgp_continuity_pct);
  Alcotest.(check bool) "mild storm barely hurts" true (weak.Storm.bgp_continuity_pct > 85.0)

(* --- QCheck --- *)

let prop_paths_are_simple =
  QCheck.Test.make ~name:"shortest valley-free paths are simple" ~count:60
    QCheck.(pair (int_bound 599) (int_bound 599))
    (fun (src, dst) ->
      let t = Lazy.force generated in
      match Bgp.shortest_path t ~alive:(Bgp.all_alive t) ~src ~dst with
      | None -> true
      | Some p -> List.length p = List.length (List.sort_uniq Int.compare p))

let prop_reachability_symmetric =
  QCheck.Test.make ~name:"valley-free reachability is symmetric" ~count:40
    QCheck.(pair (int_bound 599) (int_bound 599))
    (fun (src, dst) ->
      let t = Lazy.force generated in
      let alive = Bgp.all_alive t in
      Bgp.reachable t ~alive ~src ~dst = Bgp.reachable t ~alive ~src:dst ~dst:src)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest [ prop_paths_are_simple; prop_reachability_symmetric ]

let () =
  Alcotest.run "interdomain"
    [
      ( "topology",
        [ Alcotest.test_case "tiny valid" `Quick test_tiny_valid;
          Alcotest.test_case "generated valid" `Quick test_generated_valid;
          Alcotest.test_case "tier mix" `Quick test_generated_tier_mix;
          Alcotest.test_case "size validation" `Quick test_generated_validation_arg;
          Alcotest.test_case "provider cone" `Quick test_provider_cone;
          Alcotest.test_case "degree stats" `Quick test_degree_stats ] );
      ( "bgp",
        [ Alcotest.test_case "healthy reachability" `Quick test_reachability_healthy;
          Alcotest.test_case "shortest path shape" `Quick test_shortest_path_shape;
          Alcotest.test_case "self path" `Quick test_shortest_path_self;
          Alcotest.test_case "valley enforcement" `Quick test_valley_enforcement;
          Alcotest.test_case "dead AS blocks" `Quick test_dead_as_blocks;
          Alcotest.test_case "reachability fraction" `Quick
            test_reachability_fraction_symmetric_definition;
          Alcotest.test_case "disjoint paths" `Quick test_disjoint_paths_dual_homed;
          Alcotest.test_case "generated reachability" `Quick test_generated_healthy_reachability;
          Alcotest.test_case "generated paths valley-free" `Quick
            test_generated_paths_valley_free ] );
      ( "storm",
        [ Alcotest.test_case "tier probabilities" `Quick test_tier_probabilities_ordering;
          Alcotest.test_case "latitude bias" `Quick test_draw_failures_latitude_bias;
          Alcotest.test_case "protocol invariants" `Quick test_compare_protocols_invariants;
          Alcotest.test_case "storm ordering" `Quick test_compare_protocols_storm_ordering ] );
      ("properties", qcheck_tests);
    ]
