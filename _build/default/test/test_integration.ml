(* Cross-library integration tests: the pipelines that tie space weather,
   GIC, datasets, the Monte-Carlo engine and the reporting harness
   together must stay mutually consistent. *)

let submarine = lazy (Datasets.Submarine.build ())
let ctx = lazy (Report.Figures.make_context ~itu_scale:0.05 ~caida_ases:800 ())

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0

(* --- CME -> storm -> failure pipeline --- *)

let test_carrington_end_to_end_severity () =
  (* The catalog CME must map to a Carrington-class Dst, which must map to
     the S1 model, whose submarine impact must sit in the Fig. 8 band. *)
  let cme = Spaceweather.Cme.carrington_1859 in
  let dst = Spaceweather.Cme.expected_dst cme in
  Alcotest.(check string) "class" "carrington"
    (Spaceweather.Dst.severity_to_string (Spaceweather.Dst.severity_of_dst dst));
  let model = Stormsim.Scenario.model_for_severity (Spaceweather.Dst.severity_of_dst dst) in
  Alcotest.(check string) "model is S1" "tiered[1; 0.1; 0.01]"
    (Stormsim.Failure_model.to_string model);
  let s =
    Stormsim.Montecarlo.run ~trials:10 ~seed:7 ~network:(Lazy.force submarine)
      ~spacing_km:150.0 ~model ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "%.1f%% in fig8 band" s.Stormsim.Montecarlo.cables_mean)
    true
    (s.Stormsim.Montecarlo.cables_mean > 18.0 && s.Stormsim.Montecarlo.cables_mean < 50.0)

let test_storm_profile_peak_matches_disturbance () =
  (* The time-series peak must reproduce the static disturbance model. *)
  let dst = -589.0 in
  let profile = Gic.Time_series.default ~dst_min:dst in
  let peak_storm = Gic.Time_series.storm_at profile ~t_h:(Gic.Time_series.peak_time_h profile) in
  let static = Gic.Disturbance.storm_of_dst dst in
  Alcotest.(check (float 1e-6)) "same boundary"
    (Gic.Disturbance.auroral_boundary_deg static)
    (Gic.Disturbance.auroral_boundary_deg peak_storm)

let test_noaa_announcement_consistent_with_model_tiers () =
  (* Any storm the NOAA scale calls G5 must map to a model at least as
     harsh as S2 through the scenario severity mapping. *)
  let dst = -700.0 in
  Alcotest.(check string) "G5" "G5 (extreme)"
    (Spaceweather.Noaa_scale.g_to_string (Spaceweather.Noaa_scale.g_of_dst dst));
  let model =
    Stormsim.Scenario.model_for_severity (Spaceweather.Dst.severity_of_dst dst)
  in
  Alcotest.(check string) "at least S2" "tiered[0.1; 0.01; 0.001]"
    (Stormsim.Failure_model.to_string model)

(* --- GIC physics vs probabilistic model --- *)

let test_physical_model_orders_with_storm () =
  let net = Lazy.force submarine in
  let expected dst =
    Stormsim.Montecarlo.expected_cables_failed_pct ~network:net ~spacing_km:150.0
      ~model:(Stormsim.Failure_model.Gic_physical { dst_nt = dst; scale_a = 30.0 })
  in
  let quebec = expected (-589.0) and carrington = expected (-1200.0) in
  Alcotest.(check bool) "carrington > quebec" true (carrington > quebec);
  Alcotest.(check bool) "both nonzero" true (quebec > 0.5)

let test_exposure_latitude_structure () =
  (* Physical exposures must be systematically larger for high-latitude
     cables: compare the mean GIC of high-tier vs low-tier cables. *)
  let net = Lazy.force submarine in
  let storm = Gic.Disturbance.storm_of_dst (-1200.0) in
  let exposures = Infra.Exposure.network_exposures ~storm net in
  let mean_for tier =
    let acc = ref 0.0 and n = ref 0 in
    for c = 0 to Infra.Network.nb_cables net - 1 do
      let cable = Infra.Network.cable net c in
      if Infra.Cable.risk_tier cable = tier && cable.Infra.Cable.length_km > 500.0 then begin
        acc := !acc +. exposures.(c).Infra.Exposure.peak_gic_a;
        incr n
      end
    done;
    if !n = 0 then 0.0 else !acc /. float_of_int !n
  in
  Alcotest.(check bool) "mid-tier cables see more GIC than low-tier" true
    (mean_for Geo.Latband.Mid > mean_for Geo.Latband.Low)

(* --- Harness determinism and coherence --- *)

let test_figures_deterministic () =
  let c = Lazy.force ctx in
  let once = Report.Figures.fig8 ~trials:3 c in
  let again = Report.Figures.fig8 ~trials:3 c in
  Alcotest.(check string) "same output" once again

let test_dataset_rebuild_identical () =
  let a = Datasets.Submarine.build () and b = Datasets.Submarine.build () in
  let names net =
    List.init (Infra.Network.nb_cables net) (fun i ->
        (Infra.Network.cable net i).Infra.Cable.name)
  in
  Alcotest.(check (list string)) "same cables" (names a) (names b)

let test_markdown_document_covers_all_figures () =
  let figures = [ ("fig3", "data3"); ("countries", "data-c") ] in
  let doc = Report.Markdown.document ~title:"t" ~intro:"i" figures in
  List.iter
    (fun (id, body) ->
      Alcotest.(check bool) (id ^ " section") true (contains doc ("## " ^ id));
      Alcotest.(check bool) (id ^ " body") true (contains doc body))
    figures

(* --- Country vs capacity coherence --- *)

let test_country_and_capacity_agree_on_atlantic () =
  let net = Lazy.force submarine in
  let finding =
    Stormsim.Country.evaluate ~trials:30 net
      (List.find
         (fun (s : Stormsim.Country.spec) -> s.Stormsim.Country.id = "ne-europe-s1")
         Stormsim.Country.paper_case_studies)
  in
  let corridor =
    Stormsim.Capacity.analyze_corridor ~trials:5 ~network:net
      ~model:Stormsim.Failure_model.s1 Stormsim.Capacity.atlantic
  in
  (* If the NE-Europe direct cables almost surely die, the corridor's
     surviving capacity share must also be small. *)
  Alcotest.(check bool) "case lost" true (finding.Stormsim.Country.loss_probability > 0.9);
  Alcotest.(check bool) "capacity collapsed" true
    (corridor.Stormsim.Capacity.surviving_pct < 35.0)

let test_traffic_and_hybrid_agree () =
  let net = Lazy.force submarine in
  let _, after =
    Stormsim.Traffic.storm_shift ~trials:3 ~network:net ~model:Stormsim.Failure_model.s1 ()
  in
  let hybrid =
    Stormsim.Hybrid.assess ~trials:3 ~network:net ~model:Stormsim.Failure_model.s1
      ~dst_nt:(-1200.0) ()
  in
  Alcotest.(check (float 1.0)) "complement"
    (100.0 -. after.Stormsim.Traffic.delivered_pct)
    hybrid.Stormsim.Hybrid.undeliverable_demand_pct

(* --- Mitigation coherence --- *)

let test_shutdown_plan_and_decision_agree () =
  (* Both views of de-powering must report the same direction of effect. *)
  let net = Lazy.force submarine in
  let cme = Spaceweather.Cme.carrington_1859 in
  let plan = Stormsim.Mitigation.shutdown_plan ~cme ~network:net () in
  let decision = Stormsim.Mitigation.shutdown_decision ~cme ~network:net () in
  Alcotest.(check bool) "plan benefit positive" true (plan.Stormsim.Mitigation.benefit_pct > 0.0);
  Alcotest.(check bool) "decision failure fractions ordered" true
    (decision.Stormsim.Mitigation.failure_fraction_off
    < decision.Stormsim.Mitigation.failure_fraction_powered);
  Alcotest.(check (float 1e-6)) "plan and decision share the powered fraction"
    (plan.Stormsim.Mitigation.cables_failed_on_pct /. 100.0)
    decision.Stormsim.Mitigation.failure_fraction_powered

let test_augmentation_shifts_partitions () =
  (* The greedy augmentation's chosen endpoints are low-latitude. *)
  let net = Lazy.force submarine in
  let augs = Stormsim.Mitigation.plan_augmentation ~budget:3 ~network:net () in
  List.iter
    (fun (a : Stormsim.Mitigation.augmentation) ->
      let lat_ok city =
        Geo.Coord.abs_lat (Datasets.Cities.find city).Datasets.Cities.pos < 45.0
      in
      Alcotest.(check bool) "low-latitude endpoints" true
        (lat_ok a.Stormsim.Mitigation.from_city && lat_ok a.Stormsim.Mitigation.to_city))
    augs

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [ Alcotest.test_case "carrington end-to-end" `Quick test_carrington_end_to_end_severity;
          Alcotest.test_case "profile peak = static" `Quick
            test_storm_profile_peak_matches_disturbance;
          Alcotest.test_case "noaa vs tiers" `Quick
            test_noaa_announcement_consistent_with_model_tiers ] );
      ( "physics",
        [ Alcotest.test_case "physical model ordering" `Quick
            test_physical_model_orders_with_storm;
          Alcotest.test_case "exposure latitude structure" `Slow
            test_exposure_latitude_structure ] );
      ( "harness",
        [ Alcotest.test_case "figures deterministic" `Quick test_figures_deterministic;
          Alcotest.test_case "dataset rebuild identical" `Quick test_dataset_rebuild_identical;
          Alcotest.test_case "markdown coverage" `Quick
            test_markdown_document_covers_all_figures ] );
      ( "coherence",
        [ Alcotest.test_case "country vs capacity" `Quick
            test_country_and_capacity_agree_on_atlantic;
          Alcotest.test_case "traffic vs hybrid" `Quick test_traffic_and_hybrid_agree;
          Alcotest.test_case "plan vs decision" `Quick test_shutdown_plan_and_decision_agree;
          Alcotest.test_case "augmentation latitude" `Quick test_augmentation_shifts_partitions ] );
    ]
