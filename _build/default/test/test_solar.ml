(* Tests for the Spaceweather library: Dst classes, CME kinematics,
   solar-cycle model, Gleissberg modulation, occurrence probabilities and
   the early-warning timeline. *)

open Spaceweather

let check_close eps = Alcotest.(check (float eps))

(* --- Dst --- *)

let test_severity_classes () =
  let open Dst in
  Alcotest.(check string) "quiet" "quiet" (severity_to_string (severity_of_dst (-10.0)));
  Alcotest.(check string) "minor" "minor" (severity_to_string (severity_of_dst (-40.0)));
  Alcotest.(check string) "moderate" "moderate" (severity_to_string (severity_of_dst (-75.0)));
  Alcotest.(check string) "intense" "intense" (severity_to_string (severity_of_dst (-150.0)));
  Alcotest.(check string) "severe" "severe" (severity_to_string (severity_of_dst (-400.0)));
  Alcotest.(check string) "extreme" "extreme" (severity_to_string (severity_of_dst (-700.0)));
  Alcotest.(check string) "carrington" "carrington" (severity_to_string (severity_of_dst (-1000.0)))

let test_severity_boundaries () =
  let open Dst in
  (* Boundary values fall into the weaker class (strict >). *)
  Alcotest.(check string) "-30 quiet boundary" "minor" (severity_to_string (severity_of_dst (-30.0)));
  Alcotest.(check string) "-600 extreme boundary" "extreme" (severity_to_string (severity_of_dst (-600.0)));
  Alcotest.(check string) "-850 carrington boundary" "carrington" (severity_to_string (severity_of_dst (-850.0)))

let test_severity_invalid () =
  Alcotest.check_raises "positive Dst"
    (Invalid_argument "Dst.severity_of_dst: not a storm-time Dst") (fun () ->
      ignore (Dst.severity_of_dst 500.0))

let test_severity_order () =
  let open Dst in
  Alcotest.(check bool) "carrington strongest" true
    (compare_severity Carrington Extreme > 0);
  Alcotest.(check bool) "quiet weakest" true (compare_severity Quiet Minor < 0)

let test_representative_dst_consistent () =
  let open Dst in
  List.iter
    (fun s ->
      Alcotest.(check bool) "representative maps back" true
        (compare_severity (severity_of_dst (representative_dst s)) s = 0))
    [ Quiet; Minor; Moderate; Intense; Severe; Extreme; Carrington ]

let test_relative_strength () =
  check_close 1e-9 "1989 reference" 1.0 (Dst.relative_strength (-589.0));
  (* The paper: the 1989 storm was one-tenth the strength of 1921-class events;
     our catalog's 1921 estimate is roughly 1.5x the 1989 Dst. *)
  Alcotest.(check bool) "carrington stronger" true (Dst.relative_strength (-1200.0) > 2.0)

(* --- CME --- *)

let test_cme_validation () =
  Alcotest.check_raises "speed 0" (Invalid_argument "Cme.make: speed outside (0, 5000] km/s")
    (fun () -> ignore (Cme.make ~speed_km_s:0.0 ()));
  Alcotest.check_raises "speed 6000" (Invalid_argument "Cme.make: speed outside (0, 5000] km/s")
    (fun () -> ignore (Cme.make ~speed_km_s:6000.0 ()))

let test_carrington_transit_anchor () =
  (* The Carrington CME reached Earth in 17.6 h. *)
  let t = Cme.transit_hours Cme.carrington_1859 in
  Alcotest.(check bool) (Printf.sprintf "%.1f h in [14, 21]" t) true (t > 14.0 && t < 21.0)

let test_slow_cme_transit_range () =
  (* Typical CMEs take 1-5 days (SS 2.1). *)
  let slow = Cme.make ~speed_km_s:470.0 () in
  let t = Cme.transit_hours slow in
  Alcotest.(check bool) (Printf.sprintf "%.0f h in [48, 120]" t) true (t > 48.0 && t < 120.0)

let test_transit_monotone_in_speed () =
  let t1 = Cme.transit_hours (Cme.make ~speed_km_s:800.0 ()) in
  let t2 = Cme.transit_hours (Cme.make ~speed_km_s:1600.0 ()) in
  Alcotest.(check bool) "faster arrives sooner" true (t2 < t1)

let test_arrival_speed_bounded () =
  let cme = Cme.make ~speed_km_s:2500.0 () in
  let v = Cme.arrival_speed_km_s cme in
  Alcotest.(check bool) "decelerates" true (v < 2500.0);
  Alcotest.(check bool) "stays above wind" true (v >= 450.0)

let test_expected_dst_negative_and_monotone () =
  let weak = Cme.expected_dst (Cme.make ~speed_km_s:500.0 ()) in
  let strong = Cme.expected_dst (Cme.make ~speed_km_s:2700.0 ()) in
  Alcotest.(check bool) "negative" true (weak < 0.0 && strong < 0.0);
  Alcotest.(check bool) "stronger CME, deeper Dst" true (strong < weak)

let test_carrington_dst_class () =
  let dst = Cme.expected_dst Cme.carrington_1859 in
  Alcotest.(check bool) (Printf.sprintf "Dst %.0f <= -850" dst) true (dst <= -850.0)

let test_hits_earth () =
  Alcotest.(check bool) "head-on hits" true (Cme.hits_earth Cme.carrington_1859);
  Alcotest.(check bool) "2012 missed" false (Cme.hits_earth Cme.near_miss_2012)

let test_impact_probability () =
  let cme = Cme.make ~speed_km_s:1000.0 ~angular_width_deg:90.0 () in
  check_close 1e-9 "width/360" 0.25 (Cme.earth_impact_probability cme)

(* --- Sunspot --- *)

let test_cycle_lookup () =
  (match Sunspot.find_cycle 19 with
  | Some c -> Alcotest.(check bool) "cycle 19 strongest" true (c.Sunspot.peak_ssn > 280.0)
  | None -> Alcotest.fail "cycle 19 missing");
  Alcotest.(check bool) "cycle 99 absent" true (Sunspot.find_cycle 99 = None)

let test_shape_properties () =
  Alcotest.(check (float 1e-9)) "zero before minimum" 0.0
    (Sunspot.shape ~amplitude:150.0 ~months_since_min:(-5.0));
  let peak_val =
    List.fold_left
      (fun acc m -> Float.max acc (Sunspot.shape ~amplitude:150.0 ~months_since_min:m))
      0.0
      (List.init 140 (fun i -> float_of_int i))
  in
  check_close 2.0 "shape peaks near amplitude" 150.0 peak_val

let test_ssn_at_known_epochs () =
  (* Cycle 19 max (~1958) far exceeds the 2008-2019 cycle-24 max. *)
  let c19 = Sunspot.ssn_at 1958.0 and c24 = Sunspot.ssn_at 2014.0 in
  Alcotest.(check bool) "cycle 19 stronger" true (c19 > c24);
  Alcotest.(check bool) "minimum 2019 quiet" true (Sunspot.ssn_at 2019.9 < 40.0)

let test_cycle25_forecasts_differ () =
  let weak = Sunspot.ssn_at ~cycle25:Sunspot.cycle_25_weak 2025.0 in
  let strong = Sunspot.ssn_at ~cycle25:Sunspot.cycle_25_strong 2025.0 in
  Alcotest.(check bool) "strong forecast higher" true (strong > weak +. 30.0)

let test_series_shape () =
  let s = Sunspot.series ~start:2000.0 ~stop:2010.0 ~step:0.5 () in
  Alcotest.(check int) "21 samples" 21 (List.length s);
  List.iter (fun (_, v) -> Alcotest.(check bool) "nonneg" true (v >= 0.0)) s

let test_series_invalid () =
  Alcotest.check_raises "bad step" (Invalid_argument "Sunspot.series: step <= 0") (fun () ->
      ignore (Sunspot.series ~start:2000.0 ~stop:2010.0 ~step:0.0 ()))

let test_cycle_peak_year_inside_cycle () =
  match Sunspot.find_cycle 23 with
  | None -> Alcotest.fail "cycle 23 missing"
  | Some c ->
      let peak = Sunspot.cycle_peak_year c in
      Alcotest.(check bool) "peak in 1999-2004" true (peak > 1999.0 && peak < 2004.0)

let test_cme_rate_increases_with_ssn () =
  Alcotest.(check bool) "rate grows" true
    (Sunspot.cme_rate_per_day 200.0 > Sunspot.cme_rate_per_day 10.0);
  Alcotest.(check bool) "minimum nonzero" true (Sunspot.cme_rate_per_day 0.0 > 0.0)

(* --- Gleissberg --- *)

let test_gleissberg_phase_range () =
  List.iter
    (fun y ->
      let p = Gleissberg.phase y in
      Alcotest.(check bool) "phase in [0,1)" true (p >= 0.0 && p < 1.0))
    [ 1850.0; 1910.0; 1960.0; 1998.0; 2021.0; 2100.0 ]

let test_gleissberg_modulation_bounds () =
  List.iter
    (fun y ->
      let m = Gleissberg.modulation y in
      Alcotest.(check bool) "in [0.5, 2]" true (m >= 0.5 -. 1e-9 && m <= 2.0 +. 1e-9))
    (List.init 30 (fun i -> 1900.0 +. (float_of_int i *. 10.0)))

let test_gleissberg_minimum_at_reference () =
  check_close 1e-6 "minimum = 0.5" 0.5 (Gleissberg.modulation Gleissberg.reference_minimum);
  let max_year = Gleissberg.reference_minimum +. (Gleissberg.period_years /. 2.0) in
  check_close 1e-6 "maximum = 2" 2.0 (Gleissberg.modulation max_year)

let test_gleissberg_factor_4_swing () =
  (* McCracken: extreme-event frequency varies by a factor of ~4. *)
  let min_m = Gleissberg.modulation 1910.0 in
  let max_m = Gleissberg.modulation (Gleissberg.next_maximum_after 1910.0) in
  check_close 0.01 "factor 4" 4.0 (max_m /. min_m)

let test_gleissberg_rising_2021 () =
  (* The paper: the sun is emerging from a Gleissberg minimum (1996-2020
     cycles were part of the minimum). *)
  Alcotest.(check bool) "rising after 1998 minimum" true (Gleissberg.is_rising 2021.0)

let test_next_maximum_after () =
  let m = Gleissberg.next_maximum_after 2021.0 in
  Alcotest.(check bool) "in the future" true (m > 2021.0);
  Alcotest.(check bool) "within one period" true (m < 2021.0 +. Gleissberg.period_years)

(* --- Probability --- *)

let test_power_law_ccdf () =
  check_close 1e-9 "at xmin" 1.0 (Probability.power_law_ccdf ~alpha:3.2 ~xmin:100.0 50.0);
  let p1 = Probability.power_law_ccdf ~alpha:3.2 ~xmin:100.0 500.0 in
  let p2 = Probability.power_law_ccdf ~alpha:3.2 ~xmin:100.0 1000.0 in
  Alcotest.(check bool) "decreasing" true (p2 < p1);
  Alcotest.check_raises "alpha <= 1"
    (Invalid_argument "Probability.power_law_ccdf: alpha <= 1") (fun () ->
      ignore (Probability.power_law_ccdf ~alpha:1.0 ~xmin:100.0 500.0))

let test_riley_headline () =
  (* Riley 2012: ~12% per decade for a Carrington-scale event. *)
  Alcotest.(check bool)
    (Printf.sprintf "riley %.3f in [0.08, 0.16]" Probability.riley_decadal)
    true
    (Probability.riley_decadal > 0.08 && Probability.riley_decadal < 0.16)

let test_decadal_range_matches_paper () =
  let lo, hi = Probability.decadal_range in
  check_close 1e-9 "low = kirchen 1.6%" 0.016 lo;
  Alcotest.(check bool) "high ~ 12%" true (hi > 0.08 && hi < 0.16)

let test_bernoulli_note () =
  (* The paper: a once-in-100-years event has ~9% probability per decade. *)
  check_close 0.002 "1 - 0.99^10" 0.0956 Probability.bernoulli_decadal_of_centennial

let test_prob_in_years_edges () =
  check_close 1e-9 "zero rate" 0.0 (Probability.prob_in_years ~rate_per_year:0.0 ~years:10.0);
  Alcotest.(check bool) "saturates" true
    (Probability.prob_in_years ~rate_per_year:10.0 ~years:10.0 > 0.9999);
  Alcotest.check_raises "negative"
    (Invalid_argument "Probability.prob_in_years: negative argument") (fun () ->
      ignore (Probability.prob_in_years ~rate_per_year:(-1.0) ~years:1.0))

let test_direct_impact_frequency () =
  check_close 1e-9 "low" 2.6 (Probability.direct_impact_per_century ~low:true);
  check_close 1e-9 "high" 5.2 (Probability.direct_impact_per_century ~low:false)

let test_modulated_rate_positive () =
  List.iter
    (fun y ->
      Alcotest.(check bool) "positive" true
        (Probability.modulated_rate ~base_rate_per_year:0.03 ~year:y > 0.0))
    [ 1910.0; 1958.0; 2020.0; 2025.0 ]

let test_expected_events_monotone_in_span () =
  let e1 = Probability.expected_events ~base_rate_per_year:0.03 ~start:2021.0 ~stop:2031.0 in
  let e2 = Probability.expected_events ~base_rate_per_year:0.03 ~start:2021.0 ~stop:2051.0 in
  Alcotest.(check bool) "longer window, more events" true (e2 > e1);
  check_close 1e-9 "empty window" 0.0
    (Probability.expected_events ~base_rate_per_year:0.03 ~start:2021.0 ~stop:2021.0)

(* --- Forecast --- *)

let test_timeline_lead_time () =
  (* SS 5.2: at least 13 h of lead time, typically 1-3 days. *)
  let fast = Forecast.timeline Cme.carrington_1859 in
  Alcotest.(check bool) "fastest >= 13h" true
    (fast.Forecast.actionable_lead_h >= 13.0);
  let typical = Forecast.timeline (Cme.make ~speed_km_s:700.0 ()) in
  Alcotest.(check bool) "typical 1-3 days" true
    (typical.Forecast.actionable_lead_h > 24.0 && typical.Forecast.actionable_lead_h < 120.0)

let test_l1_confirmation_short () =
  let tl = Forecast.timeline Cme.carrington_1859 in
  Alcotest.(check bool) "L1 window under 1 h" true (tl.Forecast.l1_confirmation_h < 1.0)

let test_warning_levels_progress () =
  let tl = Forecast.timeline Cme.carrington_1859 in
  Alcotest.(check bool) "before detection" true
    (Forecast.level_at tl ~hours_after_launch:0.1 = None);
  Alcotest.(check bool) "watch after detection" true
    (Forecast.level_at tl ~hours_after_launch:2.0 = Some Forecast.Watch);
  let near = tl.Forecast.transit_h -. 0.1 in
  Alcotest.(check bool) "alert just before impact" true
    (Forecast.level_at tl ~hours_after_launch:near = Some Forecast.Alert)

(* --- Flares --- *)

let test_flare_classes_and_flux () =
  let x1 = Flare.make Flare.X 1.0 in
  check_close 1e-12 "X1 flux" 1e-4 (Flare.peak_flux_w_m2 x1);
  let m5 = Flare.make Flare.M 5.0 in
  check_close 1e-12 "M5 flux" 5e-5 (Flare.peak_flux_w_m2 m5);
  Alcotest.check_raises "mag < 1" (Invalid_argument "Flare.make: magnitude < 1") (fun () ->
      ignore (Flare.make Flare.C 0.5));
  Alcotest.check_raises "rollover"
    (Invalid_argument "Flare.make: magnitude >= 10 rolls into the next class") (fun () ->
      ignore (Flare.make Flare.M 12.0))

let test_flare_flux_roundtrip () =
  List.iter
    (fun f ->
      let f' = Flare.of_peak_flux (Flare.peak_flux_w_m2 f) in
      Alcotest.(check bool) "class preserved" true (f'.Flare.cls = f.Flare.cls);
      check_close 1e-6 "magnitude preserved" f.Flare.magnitude f'.Flare.magnitude)
    [ Flare.make Flare.B 3.0; Flare.make Flare.M 5.0; Flare.make Flare.X 9.0;
      Flare.carrington_flare ]

let test_flare_r_scale_anchors () =
  Alcotest.(check string) "M1 -> R1" "R1 (minor)"
    (Flare.r_to_string (Flare.r_scale (Flare.make Flare.M 1.0)));
  Alcotest.(check string) "X1 -> R3" "R3 (strong)"
    (Flare.r_to_string (Flare.r_scale (Flare.make Flare.X 1.0)));
  Alcotest.(check string) "carrington -> R5" "R5 (extreme)"
    (Flare.r_to_string (Flare.r_scale Flare.carrington_flare));
  Alcotest.(check string) "C-class -> R0" "R0"
    (Flare.r_to_string (Flare.r_scale (Flare.make Flare.C 5.0)))

let test_flare_does_not_touch_cables () =
  (* The paper's point in 2.1. *)
  Alcotest.(check bool) "no terrestrial effect" false
    (Flare.affects_terrestrial_cables Flare.carrington_flare)

let test_flare_rates_track_cycle () =
  Alcotest.(check bool) "maximum busier than minimum" true
    (Flare.rate_per_day Flare.M ~ssn:200.0 > 5.0 *. Flare.rate_per_day Flare.M ~ssn:5.0);
  Alcotest.(check bool) "X rarer than M" true
    (Flare.rate_per_day Flare.X ~ssn:150.0 < Flare.rate_per_day Flare.M ~ssn:150.0);
  Alcotest.(check bool) "blackout minutes grow" true
    (Flare.blackout_minutes Flare.carrington_flare
    > Flare.blackout_minutes (Flare.make Flare.M 2.0))

(* --- NOAA scale --- *)

let test_g_of_kp_boundaries () =
  let open Noaa_scale in
  Alcotest.(check string) "kp 4.9" "G0" (g_to_string (g_of_kp 4.9));
  Alcotest.(check string) "kp 5" "G1 (minor)" (g_to_string (g_of_kp 5.0));
  Alcotest.(check string) "kp 7.5" "G3 (strong)" (g_to_string (g_of_kp 7.5));
  Alcotest.(check string) "kp 9" "G5 (extreme)" (g_to_string (g_of_kp 9.0));
  Alcotest.check_raises "kp 10" (Invalid_argument "Noaa_scale.g_of_kp: Kp outside [0, 9]")
    (fun () -> ignore (g_of_kp 10.0))

let test_kp_dst_roundtrip () =
  List.iter
    (fun kp ->
      let dst = Noaa_scale.dst_of_kp kp in
      check_close 0.05 "roundtrip" kp (Noaa_scale.kp_of_dst dst))
    [ 2.0; 5.0; 7.0; 8.5 ]

let test_g_of_dst_anchors () =
  let open Noaa_scale in
  (* Quebec 1989 and Carrington are both announced as G5; moderate storms
     in the G2-G3 band. *)
  Alcotest.(check string) "quebec g5" "G5 (extreme)" (g_to_string (g_of_dst (-589.0)));
  Alcotest.(check string) "carrington g5" "G5 (extreme)" (g_to_string (g_of_dst (-1200.0)));
  Alcotest.(check bool) "minor storm below G3" true
    (kp_floor_of_g (g_of_dst (-66.0)) < kp_floor_of_g G3)

let test_effects_nonempty () =
  List.iter
    (fun g ->
      Alcotest.(check bool) "description" true
        (String.length (Noaa_scale.expected_effects g) > 10))
    [ Noaa_scale.G0; G1; G2; G3; G4; G5 ]

(* --- Storm catalog --- *)

let test_catalog_chronological () =
  let years = List.map (fun e -> e.Storm_catalog.year) Storm_catalog.all in
  Alcotest.(check (list int)) "sorted" (List.sort Int.compare years) years

let test_catalog_find () =
  (match Storm_catalog.find "carrington" with
  | Some e -> Alcotest.(check int) "1859" 1859 e.Storm_catalog.year
  | None -> Alcotest.fail "carrington missing");
  (match Storm_catalog.find "Quebec" with
  | Some e -> Alcotest.(check int) "1989" 1989 e.Storm_catalog.year
  | None -> Alcotest.fail "quebec missing");
  Alcotest.(check bool) "unknown" true (Storm_catalog.find "zzz" = None)

let test_catalog_strongest () =
  Alcotest.(check string) "strongest is carrington" "carrington"
    (Dst.severity_to_string (Storm_catalog.severity Storm_catalog.strongest))

let test_catalog_2012_missed () =
  match Storm_catalog.find "2012" with
  | Some e -> Alcotest.(check bool) "missed earth" false e.Storm_catalog.hit_earth
  | None -> Alcotest.fail "2012 event missing"

(* --- QCheck --- *)

let prop_severity_total =
  QCheck.Test.make ~name:"severity defined on all storm Dst" ~count:300
    (QCheck.float_range (-3000.0) 50.0)
    (fun dst -> ignore (Dst.severity_of_dst dst); true)

let prop_transit_bounded =
  QCheck.Test.make ~name:"transit time in [12h, 10d] for observed speeds" ~count:50
    (QCheck.float_range 300.0 3000.0)
    (fun v ->
      let t = Cme.transit_hours (Cme.make ~speed_km_s:v ()) in
      t > 12.0 && t < 240.0)

let prop_ssn_nonnegative =
  QCheck.Test.make ~name:"SSN never negative" ~count:200 (QCheck.float_range 1850.0 2040.0)
    (fun y -> Sunspot.ssn_at y >= 0.0)

let prop_ccdf_decreasing =
  QCheck.Test.make ~name:"power-law CCDF in [0,1]" ~count:200 (QCheck.float_range 1.0 10000.0)
    (fun x ->
      let p = Probability.power_law_ccdf ~alpha:3.2 ~xmin:100.0 x in
      p >= 0.0 && p <= 1.0)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_severity_total; prop_transit_bounded; prop_ssn_nonnegative; prop_ccdf_decreasing ]

let () =
  Alcotest.run "spaceweather"
    [
      ( "dst",
        [ Alcotest.test_case "classes" `Quick test_severity_classes;
          Alcotest.test_case "boundaries" `Quick test_severity_boundaries;
          Alcotest.test_case "invalid" `Quick test_severity_invalid;
          Alcotest.test_case "order" `Quick test_severity_order;
          Alcotest.test_case "representative" `Quick test_representative_dst_consistent;
          Alcotest.test_case "relative strength" `Quick test_relative_strength ] );
      ( "cme",
        [ Alcotest.test_case "validation" `Quick test_cme_validation;
          Alcotest.test_case "carrington 17.6h anchor" `Quick test_carrington_transit_anchor;
          Alcotest.test_case "slow transit range" `Quick test_slow_cme_transit_range;
          Alcotest.test_case "transit monotone" `Quick test_transit_monotone_in_speed;
          Alcotest.test_case "arrival speed" `Quick test_arrival_speed_bounded;
          Alcotest.test_case "expected Dst" `Quick test_expected_dst_negative_and_monotone;
          Alcotest.test_case "carrington class" `Quick test_carrington_dst_class;
          Alcotest.test_case "hits earth" `Quick test_hits_earth;
          Alcotest.test_case "impact probability" `Quick test_impact_probability ] );
      ( "sunspot",
        [ Alcotest.test_case "cycle lookup" `Quick test_cycle_lookup;
          Alcotest.test_case "shape" `Quick test_shape_properties;
          Alcotest.test_case "known epochs" `Quick test_ssn_at_known_epochs;
          Alcotest.test_case "cycle 25 forecasts" `Quick test_cycle25_forecasts_differ;
          Alcotest.test_case "series" `Quick test_series_shape;
          Alcotest.test_case "series invalid" `Quick test_series_invalid;
          Alcotest.test_case "peak year" `Quick test_cycle_peak_year_inside_cycle;
          Alcotest.test_case "cme rate" `Quick test_cme_rate_increases_with_ssn ] );
      ( "gleissberg",
        [ Alcotest.test_case "phase range" `Quick test_gleissberg_phase_range;
          Alcotest.test_case "modulation bounds" `Quick test_gleissberg_modulation_bounds;
          Alcotest.test_case "minimum reference" `Quick test_gleissberg_minimum_at_reference;
          Alcotest.test_case "factor 4 swing" `Quick test_gleissberg_factor_4_swing;
          Alcotest.test_case "rising 2021" `Quick test_gleissberg_rising_2021;
          Alcotest.test_case "next maximum" `Quick test_next_maximum_after ] );
      ( "probability",
        [ Alcotest.test_case "ccdf" `Quick test_power_law_ccdf;
          Alcotest.test_case "riley headline" `Quick test_riley_headline;
          Alcotest.test_case "decadal range" `Quick test_decadal_range_matches_paper;
          Alcotest.test_case "bernoulli note" `Quick test_bernoulli_note;
          Alcotest.test_case "prob_in_years" `Quick test_prob_in_years_edges;
          Alcotest.test_case "direct impact" `Quick test_direct_impact_frequency;
          Alcotest.test_case "modulated rate" `Quick test_modulated_rate_positive;
          Alcotest.test_case "expected events" `Quick test_expected_events_monotone_in_span ] );
      ( "forecast",
        [ Alcotest.test_case "lead time" `Quick test_timeline_lead_time;
          Alcotest.test_case "L1 window" `Quick test_l1_confirmation_short;
          Alcotest.test_case "warning levels" `Quick test_warning_levels_progress ] );
      ( "flare",
        [ Alcotest.test_case "classes and flux" `Quick test_flare_classes_and_flux;
          Alcotest.test_case "flux roundtrip" `Quick test_flare_flux_roundtrip;
          Alcotest.test_case "R-scale anchors" `Quick test_flare_r_scale_anchors;
          Alcotest.test_case "no cable effect" `Quick test_flare_does_not_touch_cables;
          Alcotest.test_case "rates track cycle" `Quick test_flare_rates_track_cycle ] );
      ( "noaa_scale",
        [ Alcotest.test_case "g of kp" `Quick test_g_of_kp_boundaries;
          Alcotest.test_case "kp/dst roundtrip" `Quick test_kp_dst_roundtrip;
          Alcotest.test_case "dst anchors" `Quick test_g_of_dst_anchors;
          Alcotest.test_case "effects" `Quick test_effects_nonempty ] );
      ( "catalog",
        [ Alcotest.test_case "chronological" `Quick test_catalog_chronological;
          Alcotest.test_case "find" `Quick test_catalog_find;
          Alcotest.test_case "strongest" `Quick test_catalog_strongest;
          Alcotest.test_case "2012 near miss" `Quick test_catalog_2012_missed ] );
      ("properties", qcheck_tests);
    ]
