(* Robustness tests: non-default seeds, dateline/pole edge cases, and
   full-scale dataset builds — the failure modes calibration-only tests
   miss. *)

let check_close eps = Alcotest.(check (float eps))

(* --- Dataset generators under other seeds --- *)

let test_submarine_other_seeds () =
  List.iter
    (fun seed ->
      let net = Datasets.Submarine.build ~seed () in
      Alcotest.(check int)
        (Printf.sprintf "seed %d landing points" seed)
        Datasets.Submarine.target_landing_points (Infra.Network.nb_nodes net);
      let cables = Infra.Network.nb_cables net in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d cables %d near target" seed cables)
        true
        (abs (cables - Datasets.Submarine.target_cables) <= 12);
      let g, _ = Infra.Network.to_graph net in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d connected" seed)
        true
        (Netgraph.Traversal.is_connected g);
      let above40 =
        Geo.Latband.fraction_above (Infra.Network.endpoint_latitudes net) ~threshold:40.0
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d skew %.2f" seed above40)
        true
        (above40 > 0.24 && above40 < 0.38))
    [ 1; 7; 123 ]

let test_intertubes_other_seeds () =
  List.iter
    (fun seed ->
      let net = Datasets.Intertubes.build ~seed () in
      Alcotest.(check int) "nodes" Datasets.Intertubes.target_nodes (Infra.Network.nb_nodes net);
      Alcotest.(check int) "links" Datasets.Intertubes.target_links (Infra.Network.nb_cables net))
    [ 5; 99 ]

let test_caida_other_seed_quantiles () =
  let ases = Datasets.Caida.build ~seed:17 ~ases:4000 () in
  let cdf = Datasets.Caida.spread_cdf ases in
  let q p = fst (List.find (fun (_, f) -> f >= p) cdf) in
  Alcotest.(check bool) "median stable across seeds" true (q 0.5 > 1.0 && q 0.5 < 2.6)

let test_itu_full_scale_build () =
  (* The full 11,314-node network must build and meet its counts. *)
  let net = Datasets.Itu.build ~scale:1.0 () in
  Alcotest.(check int) "nodes" Datasets.Itu.target_nodes (Infra.Network.nb_nodes net);
  Alcotest.(check int) "links" Datasets.Itu.target_links (Infra.Network.nb_cables net);
  let frac_norep =
    float_of_int (Infra.Network.cables_without_repeaters net ~spacing_km:150.0)
    /. float_of_int (Infra.Network.nb_cables net)
  in
  Alcotest.(check bool)
    (Printf.sprintf "unrepeatered %.2f in [0.5, 0.9]" frac_norep)
    true
    (frac_norep > 0.5 && frac_norep < 0.9)

(* --- Dateline and pole edge cases --- *)

let test_geodesic_across_dateline () =
  let fiji = Geo.Coord.make ~lat:(-18.14) ~lon:178.44 in
  let samoa = Geo.Coord.make ~lat:(-13.85) ~lon:(-171.75) in
  let d = Geo.Distance.haversine_km fiji samoa in
  (* Suva-Apia is ~1,150 km, NOT the 38,000 km of the long way round. *)
  Alcotest.(check bool) (Printf.sprintf "%.0f km short way" d) true (d > 1000.0 && d < 1400.0);
  let mid = Geo.Geodesic.midpoint fiji samoa in
  Alcotest.(check bool) "midpoint near the dateline" true
    (Geo.Coord.abs_lat mid < 20.0 && Geo.Angle.angular_diff (Geo.Coord.lon mid) 180.0 < 6.0)

let test_positions_along_dateline_cable () =
  let fiji = Geo.Coord.make ~lat:(-18.14) ~lon:178.44 in
  let samoa = Geo.Coord.make ~lat:(-13.85) ~lon:(-171.75) in
  let path = Geo.Geodesic.waypoints fiji samoa ~n:20 in
  let repeaters = Geo.Geodesic.positions_along path ~spacing_km:150.0 in
  Alcotest.(check bool) "has repeaters" true (List.length repeaters >= 6);
  List.iter
    (fun (_, p) ->
      Alcotest.(check bool) "repeater stays in the region" true
        (Geo.Coord.lat p > -20.0 && Geo.Coord.lat p < -12.0))
    repeaters

let test_cable_across_dateline () =
  let c =
    Infra.Cable.make ~id:0 ~name:"dateline" ~kind:Infra.Cable.Submarine
      ~landings:
        [ (0, Geo.Coord.make ~lat:(-18.14) ~lon:178.44);
          (1, Geo.Coord.make ~lat:(-13.85) ~lon:(-171.75)) ]
      ()
  in
  Alcotest.(check bool) "short great-circle length" true
    (c.Infra.Cable.length_km > 1000.0 && c.Infra.Cable.length_km < 1400.0)

let test_near_pole_projection_and_distance () =
  let a = Geo.Coord.make ~lat:89.0 ~lon:0.0 and b = Geo.Coord.make ~lat:89.0 ~lon:180.0 in
  let d = Geo.Distance.haversine_km a b in
  (* Across the pole: 2 degrees of arc ~ 222 km. *)
  check_close 3.0 "over the pole" 222.4 d

let test_gic_path_near_dateline () =
  let storm = Gic.Disturbance.storm_of_dst (-1200.0) in
  let path =
    Geo.Geodesic.waypoints
      (Geo.Coord.make ~lat:50.0 ~lon:170.0)
      (Geo.Coord.make ~lat:52.0 ~lon:(-170.0))
      ~n:12
  in
  let r = Gic.Induced.compute ~storm ~path ~ground_chainages_km:[] () in
  Alcotest.(check bool) "finite positive GIC" true
    (Float.is_finite r.Gic.Induced.peak_gic_a && r.Gic.Induced.peak_gic_a > 0.0)

(* --- Model boundary conditions --- *)

let test_montecarlo_empty_model_boundaries () =
  let net = Datasets.Intertubes.build () in
  let expected_zero =
    Stormsim.Montecarlo.expected_cables_failed_pct ~network:net ~spacing_km:150.0
      ~model:(Stormsim.Failure_model.uniform 0.0)
  in
  check_close 1e-12 "analytic zero" 0.0 expected_zero;
  let expected_all =
    Stormsim.Montecarlo.expected_cables_failed_pct ~network:net ~spacing_km:150.0
      ~model:(Stormsim.Failure_model.uniform 1.0)
  in
  let repeatered_pct =
    100.0
    *. float_of_int
         (Infra.Network.nb_cables net
         - Infra.Network.cables_without_repeaters net ~spacing_km:150.0)
    /. float_of_int (Infra.Network.nb_cables net)
  in
  check_close 1e-9 "analytic all-repeatered" repeatered_pct expected_all

let test_country_empty_group_is_loss () =
  (* A spec whose cable set is empty counts as lost (nothing to keep). *)
  let net = Datasets.Submarine.build () in
  let spec =
    { Stormsim.Country.id = "empty-test"; description = "no cables";
      group_a = [ "Mongolia" ]; group_b = [ "Brazil" ];
      metric = Stormsim.Country.Direct_loss; state = Stormsim.Failure_model.s2;
      state_name = "S2"; expectation = "no direct cables exist" }
  in
  let f = Stormsim.Country.evaluate ~trials:5 net spec in
  check_close 1e-9 "always lost" 1.0 f.Stormsim.Country.loss_probability;
  Alcotest.(check int) "no cables" 0 f.Stormsim.Country.direct_cables

let test_country_routed_metric () =
  (* Routed connectivity sees multi-hop paths that direct cables miss:
     under a no-failure state every pair of connected shores is routed. *)
  let net = Datasets.Submarine.build () in
  let spec =
    { Stormsim.Country.id = "routed-test"; description = "multi-hop";
      group_a = [ "New Zealand" ]; group_b = [ "Portugal" ];
      metric = Stormsim.Country.Routed_loss; state = Stormsim.Failure_model.uniform 0.0;
      state_name = "none"; expectation = "reachable over the healthy fabric" }
  in
  let f = Stormsim.Country.evaluate ~trials:3 net spec in
  Alcotest.(check (float 1e-9)) "never lost when nothing fails" 0.0
    f.Stormsim.Country.loss_probability;
  (* Under S1 the NZ-Portugal route crosses many vulnerable systems; loss
     must be at least sometimes observed or the metric is vacuous. *)
  let s1 = { spec with Stormsim.Country.state = Stormsim.Failure_model.s1_geomag } in
  let f1 = Stormsim.Country.evaluate ~trials:20 net s1 in
  Alcotest.(check bool) "loss observed under geomagnetic S1" true
    (f1.Stormsim.Country.loss_probability > 0.0)

let test_resilience_sweep_custom_probabilities () =
  let net = Datasets.Intertubes.build () in
  let pts =
    Stormsim.Resilience.fig6_7 ~trials:2 ~probabilities:[ 0.5 ]
      ~networks:[ ("X", net) ] ()
  in
  Alcotest.(check int) "3 spacings x 1 net x 1 p" 3 (List.length pts)

let test_scenario_pp_mentions_networks () =
  let nets = [ ("alpha", Datasets.Intertubes.build ()) ] in
  let s = Stormsim.Scenario.run ~trials:2 ~cme:Spaceweather.Cme.quebec_1989 ~networks:nets () in
  let text = Format.asprintf "%a" Stormsim.Scenario.pp s in
  Alcotest.(check bool) "network named" true
    (let rec contains i =
       i + 5 <= String.length text && (String.sub text i 5 = "alpha" || contains (i + 1))
     in
     contains 0)

let () =
  Alcotest.run "robustness"
    [
      ( "seeds",
        [ Alcotest.test_case "submarine seeds" `Slow test_submarine_other_seeds;
          Alcotest.test_case "intertubes seeds" `Quick test_intertubes_other_seeds;
          Alcotest.test_case "caida seed quantiles" `Quick test_caida_other_seed_quantiles;
          Alcotest.test_case "itu full scale" `Slow test_itu_full_scale_build ] );
      ( "dateline_poles",
        [ Alcotest.test_case "geodesic across dateline" `Quick test_geodesic_across_dateline;
          Alcotest.test_case "repeaters across dateline" `Quick
            test_positions_along_dateline_cable;
          Alcotest.test_case "cable across dateline" `Quick test_cable_across_dateline;
          Alcotest.test_case "over the pole" `Quick test_near_pole_projection_and_distance;
          Alcotest.test_case "gic near dateline" `Quick test_gic_path_near_dateline ] );
      ( "boundaries",
        [ Alcotest.test_case "montecarlo analytic bounds" `Quick
            test_montecarlo_empty_model_boundaries;
          Alcotest.test_case "country empty group" `Quick test_country_empty_group_is_loss;
          Alcotest.test_case "country routed metric" `Quick test_country_routed_metric;
          Alcotest.test_case "custom sweep" `Quick test_resilience_sweep_custom_probabilities;
          Alcotest.test_case "scenario pp" `Quick test_scenario_pp_mentions_networks ] );
    ]
