test/test_leo.ml: Alcotest Leo List Printf QCheck QCheck_alcotest
