test/test_infra.ml: Alcotest Array Float Geo Gic Infra List Netgraph Printf QCheck QCheck_alcotest
