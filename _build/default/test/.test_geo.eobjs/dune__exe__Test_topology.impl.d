test/test_topology.ml: Alcotest Centrality Float Flow Graph Hashtbl Int List Netgraph Paths QCheck QCheck_alcotest Structure Traversal
