test/test_datasets.ml: Alcotest Array Char Datasets Float Geo Infra Int Lazy List Netgraph Printf QCheck QCheck_alcotest Rng Stormsim String
