test/test_report.ml: Alcotest Filename Geo Lazy List Printf Report String Sys
