test/test_integration.ml: Alcotest Array Datasets Geo Gic Infra Lazy List Printf Report Spaceweather Stormsim String
