test/test_geo.ml: Alcotest Angle Array Coord Distance Float Geo Geodesic Geomagnetic Grid_index Int Latband List Option Projection QCheck QCheck_alcotest Region
