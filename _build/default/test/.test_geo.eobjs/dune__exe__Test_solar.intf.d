test/test_solar.mli:
