test/test_robustness.ml: Alcotest Datasets Float Format Geo Gic Infra List Netgraph Printf Spaceweather Stormsim String
