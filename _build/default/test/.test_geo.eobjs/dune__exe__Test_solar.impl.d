test/test_solar.ml: Alcotest Cme Dst Flare Float Forecast Gleissberg Int List Noaa_scale Printf Probability QCheck QCheck_alcotest Spaceweather Storm_catalog String Sunspot
