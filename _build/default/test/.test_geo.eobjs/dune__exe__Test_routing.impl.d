test/test_routing.ml: Alcotest Array As_topology Bgp Float Int Interdomain Lazy List Printf QCheck QCheck_alcotest Rng Storm String
