test/test_gic.ml: Alcotest Float Geo Gic List Printf QCheck QCheck_alcotest
