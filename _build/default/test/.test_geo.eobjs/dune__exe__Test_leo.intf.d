test/test_leo.mli:
