(* Tests for the GIC library: layered-earth impedance, disturbance model,
   geoelectric fields and induced currents in grounded conductors. *)

let check_close eps = Alcotest.(check (float eps))

let carrington = Gic.Disturbance.storm_of_dst (-1200.0)
let quebec = Gic.Disturbance.storm_of_dst (-589.0)
let intense = Gic.Disturbance.storm_of_dst (-100.0)

let high_lat = Geo.Coord.make ~lat:62.0 ~lon:25.0 (* Finland *)
let equator = Geo.Coord.make ~lat:0.0 ~lon:20.0

(* --- Conductivity --- *)

let test_profile_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Conductivity.make_profile: no layers")
    (fun () -> ignore (Gic.Conductivity.make_profile ~name:"x" []));
  Alcotest.check_raises "bad resistivity"
    (Invalid_argument "Conductivity.make_profile: non-positive resistivity") (fun () ->
      ignore
        (Gic.Conductivity.make_profile ~name:"x"
           [ { Gic.Conductivity.thickness_km = 1.0; resistivity_ohm_m = -1.0 } ]))

let test_impedance_positive_and_period_dependent () =
  let z120 = Gic.Conductivity.impedance_magnitude Gic.Conductivity.shield ~period_s:120.0 in
  let z600 = Gic.Conductivity.impedance_magnitude Gic.Conductivity.shield ~period_s:600.0 in
  Alcotest.(check bool) "positive" true (z120 > 0.0);
  Alcotest.(check bool) "longer period, lower |Z|" true (z600 < z120)

let test_shield_more_resistive_than_coastal () =
  let zs = Gic.Conductivity.impedance_magnitude Gic.Conductivity.shield ~period_s:120.0 in
  let zc = Gic.Conductivity.impedance_magnitude Gic.Conductivity.coastal ~period_s:120.0 in
  Alcotest.(check bool) "shield |Z| larger" true (zs > zc)

let test_ocean_conductance_dominates () =
  (* The paper's New Zealand example: ocean conductance orders of magnitude
     above land. *)
  let ocean = Gic.Conductivity.conductance_s Gic.Conductivity.ocean in
  let shield = Gic.Conductivity.conductance_s Gic.Conductivity.shield in
  Alcotest.(check bool)
    (Printf.sprintf "ocean %.0f S >> shield %.0f S" ocean shield)
    true
    (ocean > 20.0 *. shield);
  Alcotest.(check bool) "ocean > 10000 S" true (ocean > 10000.0)

let test_profile_for_assignment () =
  Alcotest.(check string) "ocean offshore" "ocean"
    (Gic.Conductivity.profile_for (Geo.Coord.make ~lat:0.0 ~lon:(-150.0))).Gic.Conductivity.name;
  Alcotest.(check string) "shield at high latitude" "shield"
    (Gic.Conductivity.profile_for high_lat).Gic.Conductivity.name

let test_impedance_invalid () =
  Alcotest.check_raises "w <= 0" (Invalid_argument "Conductivity.surface_impedance: w <= 0")
    (fun () ->
      ignore (Gic.Conductivity.surface_impedance Gic.Conductivity.shield ~angular_freq:0.0))

(* --- Disturbance --- *)

let test_storm_validation () =
  Alcotest.check_raises "positive Dst"
    (Invalid_argument "Disturbance.storm_of_dst: Dst must be <= 0") (fun () ->
      ignore (Gic.Disturbance.storm_of_dst 100.0))

let test_auroral_boundary_expands () =
  (* Stronger storms push the boundary equatorward: ~62 deg intense, ~40 deg
     1989-class, ~25 deg Carrington (SS 3.1 / Pulkkinen 2012). *)
  let b_intense = Gic.Disturbance.auroral_boundary_deg intense in
  let b_quebec = Gic.Disturbance.auroral_boundary_deg quebec in
  let b_car = Gic.Disturbance.auroral_boundary_deg carrington in
  Alcotest.(check bool) (Printf.sprintf "intense %.0f ~ 62" b_intense) true
    (b_intense > 57.0 && b_intense < 67.0);
  Alcotest.(check bool) (Printf.sprintf "1989 %.0f ~ 40" b_quebec) true
    (b_quebec > 33.0 && b_quebec < 45.0);
  Alcotest.(check bool) (Printf.sprintf "carrington %.0f ~ 25" b_car) true
    (b_car > 20.0 && b_car < 30.0)

let test_latitude_factor_bounds_and_floor () =
  List.iter
    (fun glat ->
      let f = Gic.Disturbance.latitude_factor carrington ~geomag_lat:glat in
      Alcotest.(check bool) "in [0.03, 1]" true (f >= 0.03 -. 1e-9 && f <= 1.0))
    [ -90.0; -40.0; 0.0; 20.0; 40.0; 70.0; 90.0 ]

let test_latitude_factor_order_of_magnitude_drop () =
  (* SS 3.1: during the 1989 storm the field dropped by an order of
     magnitude below 40 deg (measured here well below the boundary). *)
  let f_high = Gic.Disturbance.latitude_factor quebec ~geomag_lat:65.0 in
  let f_low = Gic.Disturbance.latitude_factor quebec ~geomag_lat:20.0 in
  Alcotest.(check bool) "10x drop" true (f_high /. f_low >= 8.0)

let test_equatorial_electrojet_bump () =
  let f_eq = Gic.Disturbance.latitude_factor carrington ~geomag_lat:1.0 in
  let f_off = Gic.Disturbance.latitude_factor carrington ~geomag_lat:10.0 in
  Alcotest.(check bool) "electrojet bump present" true (f_eq > f_off)

let test_db_at_scales_with_storm () =
  let db_car = Gic.Disturbance.db_at carrington high_lat in
  let db_int = Gic.Disturbance.db_at intense high_lat in
  Alcotest.(check bool) "stronger storm, larger dB" true (db_car > db_int);
  (* Auroral-zone deviation for Carrington-class: thousands of nT. *)
  Alcotest.(check bool) (Printf.sprintf "dB %.0f nT > 1500" db_car) true (db_car > 1500.0)

let test_dbdt_period_scaling () =
  let s_fast = Gic.Disturbance.storm_of_dst ~period_s:60.0 (-589.0) in
  let s_slow = Gic.Disturbance.storm_of_dst ~period_s:600.0 (-589.0) in
  Alcotest.(check bool) "faster variation, larger dB/dt" true
    (Gic.Disturbance.dbdt_at s_fast high_lat > Gic.Disturbance.dbdt_at s_slow high_lat)

(* --- Efield --- *)

let test_efield_positive_and_latitude_ordered () =
  let e_high = Gic.Efield.amplitude_v_per_km carrington high_lat in
  let e_eq = Gic.Efield.amplitude_v_per_km carrington equator in
  Alcotest.(check bool) "positive" true (e_high > 0.0);
  Alcotest.(check bool) "higher latitude, stronger field" true (e_high > e_eq)

let test_efield_magnitude_sane () =
  (* Pulkkinen et al. 100-year benchmark: extreme storms drive fields of a
     few V/km at high geomagnetic latitudes on resistive ground. *)
  let e =
    Gic.Efield.amplitude_with_profile carrington Gic.Conductivity.shield high_lat
  in
  Alcotest.(check bool) (Printf.sprintf "%.2f V/km in [0.5, 50]" e) true
    (e > 0.5 && e < 50.0)

let test_segment_voltage_scales_with_length () =
  let a = Geo.Coord.make ~lat:50.0 ~lon:(-30.0) in
  let b = Geo.Coord.make ~lat:50.0 ~lon:(-20.0) in
  let c = Geo.Coord.make ~lat:50.0 ~lon:(-10.0) in
  let v_short = Gic.Efield.segment_voltage carrington a b in
  let v_long = Gic.Efield.segment_voltage carrington a c in
  Alcotest.(check bool) "longer segment, more EMF" true (v_long > v_short)

let test_projection_factor () =
  check_close 1e-9 "2/pi" (2.0 /. Float.pi) Gic.Efield.projection_factor_mean

(* --- Induced --- *)

let transatlantic_path =
  Geo.Geodesic.waypoints
    (Geo.Coord.make ~lat:40.5 ~lon:(-74.0))
    (Geo.Coord.make ~lat:50.8 ~lon:(-4.5))
    ~n:40

let test_induced_compute_sections () =
  let r =
    Gic.Induced.compute ~storm:carrington ~path:transatlantic_path
      ~ground_chainages_km:[ 1400.0; 2800.0; 4200.0 ] ()
  in
  Alcotest.(check int) "4 sections" 4 (List.length r.Gic.Induced.sections);
  List.iter
    (fun s ->
      Alcotest.(check bool) "gic = emf/R" true
        (Float.abs (s.Gic.Induced.gic_a -. (s.Gic.Induced.emf_v /. s.Gic.Induced.resistance_ohm))
        < 1e-9))
    r.Gic.Induced.sections

let test_induced_carrington_exceeds_repeater_rating () =
  (* SS 3.2.1 quotes 100-130 A GIC for low-resistance grid paths; in a
     0.8 ohm/km power-feeding line the quasi-DC current is resistance
     limited, but a Carrington-class storm must still push it well past
     the 1 A operating point of the repeaters. *)
  let r =
    Gic.Induced.compute ~storm:carrington ~path:transatlantic_path
      ~ground_chainages_km:[ 1400.0; 2800.0; 4200.0 ] ()
  in
  let ratio = Gic.Induced.repeater_stress_ratio r ~operating_current_a:1.0 in
  Alcotest.(check bool) (Printf.sprintf "stress ratio %.1f > 2" ratio) true (ratio > 2.0)

let test_induced_storm_ordering () =
  let run storm =
    (Gic.Induced.compute ~storm ~path:transatlantic_path
       ~ground_chainages_km:[ 2800.0 ] ())
      .Gic.Induced.peak_gic_a
  in
  Alcotest.(check bool) "carrington > quebec > intense" true
    (run carrington > run quebec && run quebec > run intense)

let test_induced_endpoints_always_grounded () =
  let r =
    Gic.Induced.compute ~storm:quebec ~path:transatlantic_path ~ground_chainages_km:[] ()
  in
  Alcotest.(check int) "one full-length section" 1 (List.length r.Gic.Induced.sections)

let test_induced_more_grounds_lower_peak_emf_per_section () =
  let one =
    Gic.Induced.compute ~storm:carrington ~path:transatlantic_path ~ground_chainages_km:[] ()
  in
  let many =
    Gic.Induced.compute ~storm:carrington ~path:transatlantic_path
      ~ground_chainages_km:[ 1000.0; 2000.0; 3000.0; 4000.0; 5000.0 ] ()
  in
  let max_emf r =
    List.fold_left (fun m s -> Float.max m s.Gic.Induced.emf_v) 0.0 r.Gic.Induced.sections
  in
  Alcotest.(check bool) "sectioning reduces per-section EMF" true (max_emf many < max_emf one)

let test_induced_validation () =
  Alcotest.check_raises "empty path" (Invalid_argument "Induced.compute: empty path")
    (fun () ->
      ignore (Gic.Induced.compute ~storm:quebec ~path:[] ~ground_chainages_km:[] ()));
  Alcotest.check_raises "bad resistance"
    (Invalid_argument "Induced.compute: non-positive parameter") (fun () ->
      ignore
        (Gic.Induced.compute ~line_resistance_ohm_km:0.0 ~storm:quebec
           ~path:transatlantic_path ~ground_chainages_km:[] ()))

let test_stress_ratio_validation () =
  let r =
    Gic.Induced.compute ~storm:quebec ~path:transatlantic_path ~ground_chainages_km:[] ()
  in
  Alcotest.check_raises "bad operating current"
    (Invalid_argument "Induced.repeater_stress_ratio: non-positive operating current")
    (fun () -> ignore (Gic.Induced.repeater_stress_ratio r ~operating_current_a:0.0))

(* --- Time series --- *)

let test_profile_shape () =
  let p = Gic.Time_series.default ~dst_min:(-589.0) in
  Alcotest.(check (float 1e-9)) "quiet before onset" 0.0 (Gic.Time_series.dst_at p ~t_h:0.5);
  check_close 1e-6 "minimum at peak" (-589.0)
    (Gic.Time_series.dst_at p ~t_h:(Gic.Time_series.peak_time_h p));
  let after = Gic.Time_series.dst_at p ~t_h:(Gic.Time_series.peak_time_h p +. 30.0) in
  Alcotest.(check bool) "recovering" true (after > -589.0 && after < 0.0)

let test_ts_validation () =
  Alcotest.check_raises "positive dst"
    (Invalid_argument "Time_series.default: dst_min must be <= 0") (fun () ->
      ignore (Gic.Time_series.default ~dst_min:100.0))

let test_duration_below () =
  let p = Gic.Time_series.default ~dst_min:(-1200.0) in
  let severe = Gic.Time_series.duration_below p ~dst_threshold:(-250.0) in
  let extreme = Gic.Time_series.duration_below p ~dst_threshold:(-850.0) in
  Alcotest.(check bool) "severe window hours-days" true (severe > 10.0 && severe < 200.0);
  Alcotest.(check bool) "deeper threshold, shorter window" true (extreme < severe);
  Alcotest.(check (float 1e-9)) "never reached" 0.0
    (Gic.Time_series.duration_below p ~dst_threshold:(-2000.0))

let test_deeper_storm_faster_main_phase () =
  let weak = Gic.Time_series.default ~dst_min:(-100.0) in
  let deep = Gic.Time_series.default ~dst_min:(-1200.0) in
  Alcotest.(check bool) "waldmeier-like" true
    (deep.Gic.Time_series.main_phase_h < weak.Gic.Time_series.main_phase_h);
  Alcotest.(check bool) "deep recovers slower" true
    (deep.Gic.Time_series.recovery_tau_h > weak.Gic.Time_series.recovery_tau_h)

let test_sample_series () =
  let p = Gic.Time_series.default ~dst_min:(-589.0) in
  let s = Gic.Time_series.sample p ~step_h:1.0 ~horizon_h:48.0 in
  Alcotest.(check int) "49 points" 49 (List.length s);
  List.iter (fun (_, d) -> Alcotest.(check bool) "dst <= 0" true (d <= 0.0)) s;
  Alcotest.check_raises "bad step"
    (Invalid_argument "Time_series.sample: non-positive step or horizon") (fun () ->
      ignore (Gic.Time_series.sample p ~step_h:0.0 ~horizon_h:10.0))

let test_storm_at_usable () =
  let p = Gic.Time_series.default ~dst_min:(-589.0) in
  let s = Gic.Time_series.storm_at p ~t_h:(Gic.Time_series.peak_time_h p) in
  Alcotest.(check bool) "boundary sane" true
    (Gic.Disturbance.auroral_boundary_deg s > 15.0)

(* --- QCheck --- *)

let prop_latitude_factor_monotone_with_storm =
  QCheck.Test.make ~name:"stronger storm never weakens the factor" ~count:100
    QCheck.(pair (float_range (-2000.0) (-100.0)) (float_range 0.0 80.0))
    (fun (dst, glat) ->
      let weak = Gic.Disturbance.storm_of_dst (dst /. 2.0) in
      let strong = Gic.Disturbance.storm_of_dst dst in
      Gic.Disturbance.latitude_factor strong ~geomag_lat:glat
      >= Gic.Disturbance.latitude_factor weak ~geomag_lat:glat -. 1e-9)

let prop_impedance_positive =
  QCheck.Test.make ~name:"impedance magnitude positive over periods" ~count:100
    (QCheck.float_range 10.0 10000.0)
    (fun period_s ->
      Gic.Conductivity.impedance_magnitude Gic.Conductivity.plains ~period_s > 0.0)

let prop_efield_nonnegative =
  QCheck.Test.make ~name:"E-field amplitude nonnegative everywhere" ~count:100
    QCheck.(pair (float_range (-85.0) 85.0) (float_range (-180.0) 180.0))
    (fun (lat, lon) ->
      Gic.Efield.amplitude_v_per_km carrington (Geo.Coord.make ~lat ~lon) >= 0.0)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_latitude_factor_monotone_with_storm; prop_impedance_positive;
      prop_efield_nonnegative ]

let () =
  Alcotest.run "gic"
    [
      ( "conductivity",
        [ Alcotest.test_case "validation" `Quick test_profile_validation;
          Alcotest.test_case "impedance period dependence" `Quick
            test_impedance_positive_and_period_dependent;
          Alcotest.test_case "shield vs coastal" `Quick test_shield_more_resistive_than_coastal;
          Alcotest.test_case "ocean conductance" `Quick test_ocean_conductance_dominates;
          Alcotest.test_case "profile assignment" `Quick test_profile_for_assignment;
          Alcotest.test_case "impedance invalid" `Quick test_impedance_invalid ] );
      ( "disturbance",
        [ Alcotest.test_case "validation" `Quick test_storm_validation;
          Alcotest.test_case "auroral boundary" `Quick test_auroral_boundary_expands;
          Alcotest.test_case "factor bounds" `Quick test_latitude_factor_bounds_and_floor;
          Alcotest.test_case "order-of-magnitude drop" `Quick
            test_latitude_factor_order_of_magnitude_drop;
          Alcotest.test_case "electrojet bump" `Quick test_equatorial_electrojet_bump;
          Alcotest.test_case "dB scales with storm" `Quick test_db_at_scales_with_storm;
          Alcotest.test_case "dB/dt period scaling" `Quick test_dbdt_period_scaling ] );
      ( "efield",
        [ Alcotest.test_case "latitude ordering" `Quick test_efield_positive_and_latitude_ordered;
          Alcotest.test_case "magnitude sane" `Quick test_efield_magnitude_sane;
          Alcotest.test_case "segment voltage" `Quick test_segment_voltage_scales_with_length;
          Alcotest.test_case "projection factor" `Quick test_projection_factor ] );
      ( "induced",
        [ Alcotest.test_case "sections" `Quick test_induced_compute_sections;
          Alcotest.test_case "carrington 100x rating" `Quick
            test_induced_carrington_exceeds_repeater_rating;
          Alcotest.test_case "storm ordering" `Quick test_induced_storm_ordering;
          Alcotest.test_case "endpoints grounded" `Quick test_induced_endpoints_always_grounded;
          Alcotest.test_case "sectioning reduces EMF" `Quick
            test_induced_more_grounds_lower_peak_emf_per_section;
          Alcotest.test_case "validation" `Quick test_induced_validation;
          Alcotest.test_case "stress ratio validation" `Quick test_stress_ratio_validation ] );
      ( "time_series",
        [ Alcotest.test_case "profile shape" `Quick test_profile_shape;
          Alcotest.test_case "validation" `Quick test_ts_validation;
          Alcotest.test_case "duration below" `Quick test_duration_below;
          Alcotest.test_case "depth scaling" `Quick test_deeper_storm_faster_main_phase;
          Alcotest.test_case "sample" `Quick test_sample_series;
          Alcotest.test_case "storm_at" `Quick test_storm_at_usable ] );
      ("properties", qcheck_tests);
    ]
