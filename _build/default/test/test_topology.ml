(* Tests for the Netgraph library: multigraph, traversals, shortest paths,
   centrality and structural fragility. *)

open Netgraph

(* 0-1-2-3 path plus a 4-5-6 triangle. *)
let two_components =
  Graph.of_edges [ (0, 0, 1); (1, 1, 2); (2, 2, 3); (3, 4, 5); (4, 5, 6); (5, 6, 4) ]

(* Cycle 1-2-3-4-1 hanging off node 0 via 0-1: node 1 is the only
   articulation point and 0-1 the only bridge. *)
let cycle_with_tail =
  Graph.of_edges [ (0, 0, 1); (1, 1, 2); (2, 2, 3); (3, 3, 4); (4, 4, 1) ]

(* The counterexample that broke a naive articulation implementation:
   tree path 1-2-3-4 with back edges 4-2 and 3-1.  No articulation points,
   no bridges. *)
let braced_path =
  Graph.of_edges [ (0, 1, 2); (1, 2, 3); (2, 3, 4); (3, 4, 2); (4, 3, 1) ]

(* --- Graph --- *)

let test_empty_graph () =
  Alcotest.(check int) "no nodes" 0 (Graph.nb_nodes Graph.empty);
  Alcotest.(check int) "no edges" 0 (Graph.nb_edges Graph.empty);
  Alcotest.(check (list int)) "no neighbors" [] (List.map fst (Graph.neighbors Graph.empty 5))

let test_add_node_idempotent () =
  let g = Graph.add_node (Graph.add_node Graph.empty 3) 3 in
  Alcotest.(check int) "one node" 1 (Graph.nb_nodes g)

let test_add_edge_creates_endpoints () =
  let g = Graph.add_edge Graph.empty ~id:0 7 9 in
  Alcotest.(check bool) "node 7" true (Graph.mem_node g 7);
  Alcotest.(check bool) "node 9" true (Graph.mem_node g 9);
  Alcotest.(check int) "degree" 1 (Graph.degree g 7)

let test_duplicate_edge_id_rejected () =
  let g = Graph.add_edge Graph.empty ~id:0 1 2 in
  Alcotest.check_raises "dup id" (Invalid_argument "Graph.add_edge: duplicate edge id 0")
    (fun () -> ignore (Graph.add_edge g ~id:0 3 4))

let test_multigraph_parallel_edges () =
  let g = Graph.of_edges [ (0, 1, 2); (1, 1, 2) ] in
  Alcotest.(check int) "two edges" 2 (Graph.nb_edges g);
  Alcotest.(check int) "degree counts both" 2 (Graph.degree g 1);
  let g' = Graph.remove_edge g 0 in
  Alcotest.(check int) "one left" 1 (Graph.nb_edges g');
  Alcotest.(check bool) "still adjacent" true
    (List.exists (fun (m, _) -> m = 2) (Graph.neighbors g' 1))

let test_self_loop_degree () =
  let g = Graph.add_edge Graph.empty ~id:0 1 1 in
  Alcotest.(check int) "self-loop degree 2" 2 (Graph.degree g 1);
  Alcotest.(check int) "appears once in neighbors" 1 (List.length (Graph.neighbors g 1))

let test_remove_edge_noop_when_absent () =
  let g = Graph.of_edges [ (0, 1, 2) ] in
  let g' = Graph.remove_edge g 99 in
  Alcotest.(check int) "unchanged" 1 (Graph.nb_edges g')

let test_remove_node_removes_incident () =
  let g = Graph.of_edges [ (0, 1, 2); (1, 2, 3); (2, 3, 1) ] in
  let g' = Graph.remove_node g 2 in
  Alcotest.(check int) "one edge left" 1 (Graph.nb_edges g');
  Alcotest.(check bool) "node gone" false (Graph.mem_node g' 2);
  Alcotest.(check int) "degrees updated" 1 (Graph.degree g' 1)

let test_nodes_edges_sorted () =
  let g = Graph.of_edges [ (2, 5, 1); (0, 3, 4); (1, 1, 3) ] in
  Alcotest.(check (list int)) "nodes ascending" [ 1; 3; 4; 5 ] (Graph.nodes g);
  Alcotest.(check (list int)) "edges ascending" [ 0; 1; 2 ]
    (List.map (fun e -> e.Graph.id) (Graph.edges g))

let test_find_edge () =
  let g = Graph.of_edges [ (7, 1, 2) ] in
  (match Graph.find_edge g 7 with
  | Some e ->
      Alcotest.(check int) "u" 1 e.Graph.u;
      Alcotest.(check int) "v" 2 e.Graph.v
  | None -> Alcotest.fail "edge not found");
  Alcotest.(check bool) "absent" true (Graph.find_edge g 0 = None)

let test_fold () =
  let g = two_components in
  let nodes = Graph.fold_nodes g ~init:0 ~f:(fun acc _ -> acc + 1) in
  let edges = Graph.fold_edges g ~init:0 ~f:(fun acc _ -> acc + 1) in
  Alcotest.(check int) "7 nodes" 7 nodes;
  Alcotest.(check int) "6 edges" 6 edges

(* --- Traversal --- *)

let test_bfs_distances () =
  let hops = Traversal.bfs two_components 0 in
  Alcotest.(check (list (pair int int))) "path distances"
    [ (0, 0); (1, 1); (2, 2); (3, 3) ]
    (List.sort compare hops)

let test_bfs_absent_source () =
  Alcotest.(check (list (pair int int))) "absent" [] (Traversal.bfs two_components 99)

let test_connected_components () =
  let comps = Traversal.connected_components two_components in
  Alcotest.(check (list (list int))) "two components" [ [ 0; 1; 2; 3 ]; [ 4; 5; 6 ] ] comps

let test_component_sizes_desc () =
  Alcotest.(check (list int)) "sizes" [ 4; 3 ] (Traversal.component_sizes two_components)

let test_giant_fraction () =
  Alcotest.(check (float 1e-9)) "4/7" (4.0 /. 7.0)
    (Traversal.giant_component_fraction two_components);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Traversal.giant_component_fraction Graph.empty)

let test_is_connected () =
  Alcotest.(check bool) "two comps" false (Traversal.is_connected two_components);
  Alcotest.(check bool) "cycle" true (Traversal.is_connected cycle_with_tail);
  Alcotest.(check bool) "empty" true (Traversal.is_connected Graph.empty)

let test_same_component () =
  Alcotest.(check bool) "0 and 3" true (Traversal.same_component two_components 0 3);
  Alcotest.(check bool) "0 and 4" false (Traversal.same_component two_components 0 4);
  Alcotest.(check bool) "absent" false (Traversal.same_component two_components 0 99)

(* --- Paths --- *)

let weighted =
  (* 0-1 (1), 1-2 (2), 0-2 (10), 2-3 (1). *)
  Graph.of_edges [ (0, 0, 1); (1, 1, 2); (2, 0, 2); (3, 2, 3) ]

let weight = function 0 -> 1.0 | 1 -> 2.0 | 2 -> 10.0 | 3 -> 1.0 | _ -> 1.0

let test_dijkstra_distances () =
  let dist = Paths.dijkstra weighted ~weight 0 in
  Alcotest.(check (float 1e-9)) "to 2 via 1" 3.0 (Hashtbl.find dist 2);
  Alcotest.(check (float 1e-9)) "to 3" 4.0 (Hashtbl.find dist 3)

let test_shortest_path_route () =
  match Paths.shortest_path weighted ~weight 0 3 with
  | Some (d, route) ->
      Alcotest.(check (float 1e-9)) "distance" 4.0 d;
      Alcotest.(check (list int)) "route" [ 0; 1; 2; 3 ] route
  | None -> Alcotest.fail "no path"

let test_shortest_path_disconnected () =
  Alcotest.(check bool) "none across components" true
    (Paths.shortest_path two_components ~weight:(fun _ -> 1.0) 0 5 = None)

let test_negative_weight_rejected () =
  Alcotest.check_raises "negative" (Invalid_argument "Paths.dijkstra: negative weight")
    (fun () -> ignore (Paths.dijkstra weighted ~weight:(fun _ -> -1.0) 0))

let test_eccentricity () =
  match Paths.eccentricity weighted ~weight 0 with
  | Some e -> Alcotest.(check (float 1e-9)) "eccentricity of 0" 4.0 e
  | None -> Alcotest.fail "no eccentricity"

(* --- Centrality --- *)

let star = Graph.of_edges [ (0, 0, 1); (1, 0, 2); (2, 0, 3); (3, 0, 4) ]

let test_degree_ranking () =
  match Centrality.degree star with
  | (n, d) :: _ ->
      Alcotest.(check int) "hub" 0 n;
      Alcotest.(check int) "hub degree" 4 d
  | [] -> Alcotest.fail "empty"

let test_betweenness_star () =
  let cb = Centrality.betweenness star in
  (* Centre lies on all C(4,2) = 6 shortest pairs. *)
  Alcotest.(check (float 1e-9)) "centre" 6.0 (Hashtbl.find cb 0);
  Alcotest.(check (float 1e-9)) "leaf" 0.0 (Hashtbl.find cb 1)

let test_betweenness_path () =
  let path = Graph.of_edges [ (0, 0, 1); (1, 1, 2) ] in
  let cb = Centrality.betweenness path in
  Alcotest.(check (float 1e-9)) "middle" 1.0 (Hashtbl.find cb 1);
  Alcotest.(check (float 1e-9)) "end" 0.0 (Hashtbl.find cb 0)

let test_closeness () =
  Alcotest.(check (float 1e-9)) "star centre" 1.0 (Centrality.closeness star 0);
  Alcotest.(check (float 1e-9)) "isolated" 0.0
    (Centrality.closeness (Graph.add_node Graph.empty 9) 9)

let test_top_k () =
  let scores = [ ("a", 1.0); ("b", 3.0); ("c", 2.0) ] in
  Alcotest.(check (list (pair string (float 1e-9)))) "top 2"
    [ ("b", 3.0); ("c", 2.0) ]
    (Centrality.top_k scores ~k:2);
  Alcotest.check_raises "negative k" (Invalid_argument "Centrality.top_k: negative k")
    (fun () -> ignore (Centrality.top_k scores ~k:(-1)))

(* --- Structure --- *)

let test_bridges_path_all () =
  let path = Graph.of_edges [ (0, 0, 1); (1, 1, 2); (2, 2, 3) ] in
  Alcotest.(check (list int)) "every edge a bridge" [ 0; 1; 2 ] (Structure.bridges path)

let test_bridges_cycle_none () =
  let cycle = Graph.of_edges [ (0, 0, 1); (1, 1, 2); (2, 2, 0) ] in
  Alcotest.(check (list int)) "no bridges" [] (Structure.bridges cycle)

let test_bridges_cycle_with_tail () =
  Alcotest.(check (list int)) "only tail edge" [ 0 ] (Structure.bridges cycle_with_tail)

let test_bridges_parallel_edges_not_bridges () =
  let g = Graph.of_edges [ (0, 0, 1); (1, 0, 1); (2, 1, 2) ] in
  Alcotest.(check (list int)) "only the single edge" [ 2 ] (Structure.bridges g)

let test_articulation_cycle_with_tail () =
  Alcotest.(check (list int)) "node 1 cuts" [ 1 ]
    (Structure.articulation_points cycle_with_tail)

let test_articulation_braced_path_none () =
  Alcotest.(check (list int)) "no articulation" [] (Structure.articulation_points braced_path);
  Alcotest.(check (list int)) "no bridges" [] (Structure.bridges braced_path)

let test_articulation_two_triangles () =
  (* Two triangles sharing node 2. *)
  let g = Graph.of_edges [ (0, 0, 1); (1, 1, 2); (2, 2, 0); (3, 2, 3); (4, 3, 4); (5, 4, 2) ] in
  Alcotest.(check (list int)) "shared node" [ 2 ] (Structure.articulation_points g)

let test_k_core () =
  (* Triangle with a pendant node. *)
  let g = Graph.of_edges [ (0, 0, 1); (1, 1, 2); (2, 2, 0); (3, 2, 3) ] in
  let core2 = Structure.k_core g ~k:2 in
  Alcotest.(check (list int)) "triangle survives" [ 0; 1; 2 ] (Graph.nodes core2);
  Alcotest.(check int) "empty 3-core" 0 (Graph.nb_nodes (Structure.k_core g ~k:3));
  Alcotest.check_raises "negative k" (Invalid_argument "Structure.k_core: negative k")
    (fun () -> ignore (Structure.k_core g ~k:(-1)))

let test_core_number () =
  let g = Graph.of_edges [ (0, 0, 1); (1, 1, 2); (2, 2, 0); (3, 2, 3) ] in
  let cn = Structure.core_number g in
  Alcotest.(check int) "triangle node" 2 (Hashtbl.find cn 0);
  Alcotest.(check int) "pendant" 1 (Hashtbl.find cn 3)

(* --- Flow --- *)

(* Classic max-flow example: s=0, t=5 with unit-ish capacities. *)
let flow_graph =
  Graph.of_edges [ (0, 0, 1); (1, 0, 2); (2, 1, 3); (3, 2, 4); (4, 3, 5); (5, 4, 5); (6, 1, 2) ]

let cap = function
  | 0 -> 10.0 | 1 -> 10.0 | 2 -> 4.0 | 3 -> 9.0 | 4 -> 10.0 | 5 -> 10.0 | 6 -> 2.0 | _ -> 0.0

let test_max_flow_value () =
  let r = Flow.max_flow flow_graph ~capacity:cap ~source:0 ~sink:5 in
  (* Paths: 0-1-3-5 limited by 4 (edge 2); 0-2-4-5 limited by 9 (edge 3);
     0-1-2-4-5 limited by 2 (edge 6) but edge 3 already carries 9 of 9.
     Max flow = 4 + 9 = 13. *)
  Alcotest.(check (float 1e-9)) "value 13" 13.0 r.Flow.value

let test_max_flow_bottleneck_respected () =
  let r = Flow.max_flow flow_graph ~capacity:cap ~source:0 ~sink:5 in
  Graph.fold_edges flow_graph ~init:() ~f:(fun () e ->
      Alcotest.(check bool) "flow <= capacity" true
        (r.Flow.edge_flow e.Graph.id <= cap e.Graph.id +. 1e-9))

let test_max_flow_path_graph () =
  let g = Graph.of_edges [ (0, 0, 1); (1, 1, 2) ] in
  let r = Flow.max_flow g ~capacity:(fun e -> if e = 0 then 5.0 else 3.0) ~source:0 ~sink:2 in
  Alcotest.(check (float 1e-9)) "min of capacities" 3.0 r.Flow.value;
  Alcotest.(check bool) "cut separates" true
    (r.Flow.source_side 0 && not (r.Flow.source_side 2))

let test_max_flow_disconnected () =
  let g = Graph.of_edges [ (0, 0, 1); (1, 2, 3) ] in
  let r = Flow.max_flow g ~capacity:(fun _ -> 1.0) ~source:0 ~sink:3 in
  Alcotest.(check (float 1e-9)) "zero" 0.0 r.Flow.value

let test_max_flow_parallel_edges_add () =
  let g = Graph.of_edges [ (0, 0, 1); (1, 0, 1) ] in
  let r = Flow.max_flow g ~capacity:(fun _ -> 2.0) ~source:0 ~sink:1 in
  Alcotest.(check (float 1e-9)) "parallel capacities add" 4.0 r.Flow.value

let test_max_flow_validation () =
  Alcotest.check_raises "source=sink" (Invalid_argument "Flow.max_flow: source = sink")
    (fun () -> ignore (Flow.max_flow flow_graph ~capacity:cap ~source:0 ~sink:0));
  Alcotest.check_raises "negative capacity" (Invalid_argument "Flow: negative capacity")
    (fun () ->
      ignore (Flow.max_flow flow_graph ~capacity:(fun _ -> -1.0) ~source:0 ~sink:5))

let test_min_cut_matches_flow () =
  let cut = Flow.min_cut_edges flow_graph ~capacity:cap ~source:0 ~sink:5 in
  let cut_capacity = List.fold_left (fun a e -> a +. cap e) 0.0 cut in
  Alcotest.(check (float 1e-9)) "cut value = flow value" 13.0 cut_capacity

let test_multi_flow () =
  (* Two sources 0,1 each with an independent path to sink 4. *)
  let g = Graph.of_edges [ (0, 0, 2); (1, 1, 3); (2, 2, 4); (3, 3, 4) ] in
  let v = Flow.max_flow_multi g ~capacity:(fun _ -> 1.0) ~sources:[ 0; 1 ] ~sinks:[ 4 ] in
  Alcotest.(check (float 1e-9)) "both paths used" 2.0 v;
  Alcotest.(check (float 1e-9)) "missing side" 0.0
    (Flow.max_flow_multi g ~capacity:(fun _ -> 1.0) ~sources:[] ~sinks:[ 4 ]);
  Alcotest.check_raises "overlap" (Invalid_argument "Flow.max_flow_multi: overlapping groups")
    (fun () ->
      ignore (Flow.max_flow_multi g ~capacity:(fun _ -> 1.0) ~sources:[ 0 ] ~sinks:[ 0 ]))

let test_min_cut_multi () =
  let g = Graph.of_edges [ (0, 0, 2); (1, 1, 2); (2, 2, 3) ] in
  let cut =
    Flow.min_cut_edges_multi g ~capacity:(fun _ -> 1.0) ~sources:[ 0; 1 ] ~sinks:[ 3 ]
  in
  Alcotest.(check (list int)) "bridge edge is the cut" [ 2 ] cut

(* --- QCheck --- *)

let arb_edge_list = QCheck.(small_list (pair (int_bound 20) (int_bound 20)))

let graph_of pairs = Graph.of_edges (List.mapi (fun i (u, v) -> (i, u, v)) pairs)

let prop_components_partition =
  QCheck.Test.make ~name:"components partition the nodes" ~count:200 arb_edge_list
    (fun pairs ->
      let g = graph_of pairs in
      let comps = Traversal.connected_components g in
      let all = List.concat comps |> List.sort Int.compare in
      all = Graph.nodes g)

let prop_bridge_removal_disconnects =
  QCheck.Test.make ~name:"removing a bridge splits its component" ~count:100 arb_edge_list
    (fun pairs ->
      let g = graph_of pairs in
      List.for_all
        (fun bid ->
          match Graph.find_edge g bid with
          | None -> false
          | Some e ->
              e.Graph.u = e.Graph.v
              || not (Traversal.same_component (Graph.remove_edge g bid) e.Graph.u e.Graph.v))
        (Structure.bridges g))

let prop_non_bridge_removal_keeps_connectivity =
  QCheck.Test.make ~name:"removing a non-bridge keeps endpoints connected" ~count:100
    arb_edge_list (fun pairs ->
      let g = graph_of pairs in
      let bridges = Structure.bridges g in
      Graph.fold_edges g ~init:true ~f:(fun acc e ->
          acc
          && (List.mem e.Graph.id bridges
             || Traversal.same_component (Graph.remove_edge g e.Graph.id) e.Graph.u e.Graph.v)))

let prop_dijkstra_matches_bfs_on_unit_weights =
  QCheck.Test.make ~name:"dijkstra = bfs under unit weights" ~count:100 arb_edge_list
    (fun pairs ->
      let g = graph_of pairs in
      match Graph.nodes g with
      | [] -> true
      | src :: _ ->
          let dist = Paths.dijkstra g ~weight:(fun _ -> 1.0) src in
          List.for_all
            (fun (n, d) ->
              match Hashtbl.find_opt dist n with
              | Some dd -> Float.abs (dd -. float_of_int d) < 1e-9
              | None -> false)
            (Traversal.bfs g src))

let prop_flow_bounded_by_degree_capacity =
  QCheck.Test.make ~name:"max flow bounded by source capacity" ~count:60 arb_edge_list
    (fun pairs ->
      let g = graph_of pairs in
      match Graph.nodes g with
      | a :: b :: _ when a <> b ->
          let r = Flow.max_flow g ~capacity:(fun _ -> 1.0) ~source:a ~sink:b in
          r.Flow.value <= float_of_int (Graph.degree g a) +. 1e-9
          && r.Flow.value >= 0.0
      | _ -> true)

let prop_min_cut_capacity_equals_flow =
  QCheck.Test.make ~name:"min cut capacity = max flow" ~count:60 arb_edge_list
    (fun pairs ->
      let g = graph_of pairs in
      match Graph.nodes g with
      | a :: b :: _ when a <> b ->
          let r = Flow.max_flow g ~capacity:(fun _ -> 1.0) ~source:a ~sink:b in
          let cut = Flow.min_cut_edges g ~capacity:(fun _ -> 1.0) ~source:a ~sink:b in
          Float.abs (float_of_int (List.length cut) -. r.Flow.value) < 1e-6
      | _ -> true)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_components_partition; prop_bridge_removal_disconnects;
      prop_non_bridge_removal_keeps_connectivity; prop_dijkstra_matches_bfs_on_unit_weights;
      prop_flow_bounded_by_degree_capacity; prop_min_cut_capacity_equals_flow ]

let () =
  Alcotest.run "netgraph"
    [
      ( "graph",
        [ Alcotest.test_case "empty" `Quick test_empty_graph;
          Alcotest.test_case "add_node idempotent" `Quick test_add_node_idempotent;
          Alcotest.test_case "add_edge endpoints" `Quick test_add_edge_creates_endpoints;
          Alcotest.test_case "duplicate edge id" `Quick test_duplicate_edge_id_rejected;
          Alcotest.test_case "parallel edges" `Quick test_multigraph_parallel_edges;
          Alcotest.test_case "self-loop" `Quick test_self_loop_degree;
          Alcotest.test_case "remove absent edge" `Quick test_remove_edge_noop_when_absent;
          Alcotest.test_case "remove node" `Quick test_remove_node_removes_incident;
          Alcotest.test_case "sorted accessors" `Quick test_nodes_edges_sorted;
          Alcotest.test_case "find_edge" `Quick test_find_edge;
          Alcotest.test_case "folds" `Quick test_fold ] );
      ( "traversal",
        [ Alcotest.test_case "bfs distances" `Quick test_bfs_distances;
          Alcotest.test_case "bfs absent source" `Quick test_bfs_absent_source;
          Alcotest.test_case "connected components" `Quick test_connected_components;
          Alcotest.test_case "component sizes" `Quick test_component_sizes_desc;
          Alcotest.test_case "giant fraction" `Quick test_giant_fraction;
          Alcotest.test_case "is_connected" `Quick test_is_connected;
          Alcotest.test_case "same_component" `Quick test_same_component ] );
      ( "paths",
        [ Alcotest.test_case "dijkstra distances" `Quick test_dijkstra_distances;
          Alcotest.test_case "shortest path route" `Quick test_shortest_path_route;
          Alcotest.test_case "disconnected" `Quick test_shortest_path_disconnected;
          Alcotest.test_case "negative weight" `Quick test_negative_weight_rejected;
          Alcotest.test_case "eccentricity" `Quick test_eccentricity ] );
      ( "centrality",
        [ Alcotest.test_case "degree ranking" `Quick test_degree_ranking;
          Alcotest.test_case "betweenness star" `Quick test_betweenness_star;
          Alcotest.test_case "betweenness path" `Quick test_betweenness_path;
          Alcotest.test_case "closeness" `Quick test_closeness;
          Alcotest.test_case "top_k" `Quick test_top_k ] );
      ( "structure",
        [ Alcotest.test_case "bridges path" `Quick test_bridges_path_all;
          Alcotest.test_case "bridges cycle" `Quick test_bridges_cycle_none;
          Alcotest.test_case "bridges cycle+tail" `Quick test_bridges_cycle_with_tail;
          Alcotest.test_case "parallel edges not bridges" `Quick
            test_bridges_parallel_edges_not_bridges;
          Alcotest.test_case "articulation cycle+tail" `Quick test_articulation_cycle_with_tail;
          Alcotest.test_case "braced path has none" `Quick test_articulation_braced_path_none;
          Alcotest.test_case "two triangles" `Quick test_articulation_two_triangles;
          Alcotest.test_case "k-core" `Quick test_k_core;
          Alcotest.test_case "core numbers" `Quick test_core_number ] );
      ( "flow",
        [ Alcotest.test_case "max flow value" `Quick test_max_flow_value;
          Alcotest.test_case "bottleneck respected" `Quick test_max_flow_bottleneck_respected;
          Alcotest.test_case "path graph" `Quick test_max_flow_path_graph;
          Alcotest.test_case "disconnected" `Quick test_max_flow_disconnected;
          Alcotest.test_case "parallel edges" `Quick test_max_flow_parallel_edges_add;
          Alcotest.test_case "validation" `Quick test_max_flow_validation;
          Alcotest.test_case "min cut = flow" `Quick test_min_cut_matches_flow;
          Alcotest.test_case "multi flow" `Quick test_multi_flow;
          Alcotest.test_case "multi min cut" `Quick test_min_cut_multi ] );
      ("properties", qcheck_tests);
    ]
