(* Tests for the Geo library: coordinates, distances, geodesics,
   geomagnetic latitude, latitude bands, regions, spatial index and
   projections. *)

open Geo

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))

let nyc = Coord.make ~lat:40.71 ~lon:(-74.01)
let london = Coord.make ~lat:51.51 ~lon:(-0.13)
let sydney = Coord.make ~lat:(-33.87) ~lon:151.21
let singapore = Coord.make ~lat:1.35 ~lon:103.82

(* --- Angle --- *)

let test_deg_rad_roundtrip () =
  check_float "deg->rad->deg" 123.4 (Angle.rad_to_deg (Angle.deg_to_rad 123.4))

let test_normalize_lon_wraps () =
  check_float "190 -> -170" (-170.0) (Angle.normalize_lon 190.0);
  check_float "-190 -> 170" 170.0 (Angle.normalize_lon (-190.0));
  check_float "360 -> 0" 0.0 (Angle.normalize_lon 360.0);
  check_float "180 stays" 180.0 (Angle.normalize_lon 180.0);
  check_float "-180 -> 180" 180.0 (Angle.normalize_lon (-180.0))

let test_normalize_lat_clamps () =
  check_float "91 -> 90" 90.0 (Angle.normalize_lat 91.0);
  check_float "-95 -> -90" (-90.0) (Angle.normalize_lat (-95.0));
  check_float "45 stays" 45.0 (Angle.normalize_lat 45.0)

let test_angular_diff () =
  check_float "wrap-around" 20.0 (Angle.angular_diff 170.0 (-170.0));
  check_float "simple" 30.0 (Angle.angular_diff 10.0 40.0);
  check_float "identical" 0.0 (Angle.angular_diff 55.0 55.0)

(* --- Coord --- *)

let test_coord_make_valid () =
  let c = Coord.make ~lat:10.0 ~lon:200.0 in
  check_float "lon wrapped" (-160.0) (Coord.lon c);
  check_float "lat kept" 10.0 (Coord.lat c)

let test_coord_make_invalid () =
  Alcotest.check_raises "lat 91" (Coord.Invalid_coordinate "latitude 91.000000 out of [-90, 90]")
    (fun () -> ignore (Coord.make ~lat:91.0 ~lon:0.0));
  (match Coord.make_opt ~lat:Float.nan ~lon:0.0 with
  | None -> ()
  | Some _ -> Alcotest.fail "NaN accepted")

let test_coord_antipode () =
  let a = Coord.antipode nyc in
  check_float "antipode lat" (-40.71) (Coord.lat a);
  check_close 1e-6 "antipode lon" 105.99 (Coord.lon a);
  (* Antipode distance is half the Earth's circumference. *)
  check_close 5.0 "antipode distance" (Float.pi *. Distance.earth_radius_km)
    (Distance.haversine_km nyc a)

let test_coord_parse_roundtrip () =
  List.iter
    (fun c ->
      match Coord.of_string (Coord.to_string c) with
      | Some c' -> Alcotest.(check bool) "parse(pp) = id" true (Coord.equal ~eps:0.01 c c')
      | None -> Alcotest.fail "roundtrip parse failed")
    [ nyc; london; sydney; singapore ]

let test_coord_parse_decimal () =
  match Coord.of_string "40.71, -74.01" with
  | Some c -> Alcotest.(check bool) "decimal pair" true (Coord.equal ~eps:1e-6 c nyc)
  | None -> Alcotest.fail "decimal parse failed"

let test_coord_parse_garbage () =
  Alcotest.(check (option reject)) "garbage"
    None
    (Option.map (fun _ -> ()) (Coord.of_string "not a coordinate"))

let test_coord_compare_total () =
  Alcotest.(check bool) "self" true (Coord.compare nyc nyc = 0);
  Alcotest.(check bool) "antisym" true
    (Coord.compare nyc london = -Coord.compare london nyc)

(* --- Distance --- *)

let test_haversine_known () =
  (* Reference great-circle distances (±0.5%). *)
  let d = Distance.haversine_km nyc london in
  Alcotest.(check bool) "NYC-London ~5570 km" true (d > 5540.0 && d < 5600.0);
  let d2 = Distance.haversine_km sydney singapore in
  Alcotest.(check bool) "Sydney-Singapore ~6300 km" true (d2 > 6250.0 && d2 < 6350.0)

let test_haversine_zero () =
  check_float "self distance" 0.0 (Distance.haversine_km nyc nyc)

let test_haversine_symmetry () =
  check_close 1e-9 "symmetry" (Distance.haversine_km nyc sydney)
    (Distance.haversine_km sydney nyc)

let test_vincenty_close_to_haversine () =
  let h = Distance.haversine_km nyc london and v = Distance.vincenty_km nyc london in
  Alcotest.(check bool) "within 0.6%" true (Float.abs (h -. v) /. v < 0.006)

let test_vincenty_zero () =
  check_float "vincenty self" 0.0 (Distance.vincenty_km nyc nyc)

let test_equirectangular_close_for_short () =
  let a = Coord.make ~lat:48.85 ~lon:2.35 and b = Coord.make ~lat:48.90 ~lon:2.40 in
  let h = Distance.haversine_km a b and e = Distance.equirectangular_km a b in
  Alcotest.(check bool) "within 1%" true (Float.abs (h -. e) /. h < 0.01)

let test_path_length () =
  check_float "empty" 0.0 (Distance.path_length_km []);
  check_float "single" 0.0 (Distance.path_length_km [ nyc ]);
  let two = Distance.path_length_km [ nyc; london ] in
  check_close 1e-9 "two points" (Distance.haversine_km nyc london) two;
  let three = Distance.path_length_km [ nyc; london; singapore ] in
  check_close 1e-9 "additive" (two +. Distance.haversine_km london singapore) three

let test_initial_bearing () =
  let b = Distance.initial_bearing_deg nyc london in
  Alcotest.(check bool) "NYC->London heads NE" true (b > 40.0 && b < 60.0);
  let equator_east =
    Distance.initial_bearing_deg (Coord.make ~lat:0.0 ~lon:0.0) (Coord.make ~lat:0.0 ~lon:10.0)
  in
  check_close 1e-6 "due east" 90.0 equator_east

(* --- Geodesic --- *)

let test_intermediate_endpoints () =
  Alcotest.(check bool) "f=0" true (Coord.equal ~eps:1e-9 nyc (Geodesic.intermediate nyc london 0.0));
  Alcotest.(check bool) "f=1" true (Coord.equal ~eps:1e-9 london (Geodesic.intermediate nyc london 1.0))

let test_midpoint_equidistant () =
  let m = Geodesic.midpoint nyc london in
  let d1 = Distance.haversine_km nyc m and d2 = Distance.haversine_km m london in
  check_close 0.5 "equidistant" d1 d2

let test_waypoints_count_and_length () =
  let pts = Geodesic.waypoints nyc sydney ~n:10 in
  Alcotest.(check int) "n+1 points" 11 (List.length pts);
  let direct = Distance.haversine_km nyc sydney in
  let along = Distance.path_length_km pts in
  check_close 1.0 "arc length preserved" direct along

let test_waypoints_invalid () =
  Alcotest.check_raises "n=0" (Invalid_argument "Geodesic.waypoints: n < 1") (fun () ->
      ignore (Geodesic.waypoints nyc london ~n:0))

let test_point_at_km_clamps () =
  let path = Geodesic.waypoints nyc london ~n:8 in
  Alcotest.(check bool) "d=0 is start" true
    (Coord.equal ~eps:1e-9 nyc (Geodesic.point_at_km path 0.0));
  Alcotest.(check bool) "d>len is end" true
    (Coord.equal ~eps:1e-6 london (Geodesic.point_at_km path 1e9))

let test_point_at_km_midway () =
  let path = Geodesic.waypoints nyc london ~n:50 in
  let total = Distance.path_length_km path in
  let p = Geodesic.point_at_km path (total /. 2.0) in
  check_close 2.0 "halfway point" (total /. 2.0) (Distance.haversine_km nyc p)

let test_positions_along_spacing () =
  let path = Geodesic.waypoints nyc london ~n:50 in
  let total = Distance.path_length_km path in
  let positions = Geodesic.positions_along path ~spacing_km:500.0 in
  Alcotest.(check int) "count" (int_of_float (Float.ceil (total /. 500.0)) - 1)
    (List.length positions);
  List.iteri
    (fun i (d, _) -> check_close 1e-9 "chainage" (float_of_int (i + 1) *. 500.0) d)
    positions

let test_positions_along_short_path () =
  let path = [ nyc; Coord.make ~lat:40.9 ~lon:(-74.0) ] in
  Alcotest.(check int) "no interior positions" 0
    (List.length (Geodesic.positions_along path ~spacing_km:150.0))

(* --- Geomagnetic --- *)

let test_dipole_pole_is_90 () =
  check_close 1e-6 "pole" 90.0 (Geomagnetic.dipole_latitude Geomagnetic.north_pole)

let test_dipole_latitude_ranges () =
  List.iter
    (fun c ->
      let l = Geomagnetic.dipole_latitude c in
      Alcotest.(check bool) "in range" true (l >= -90.0 && l <= 90.0))
    [ nyc; london; sydney; singapore ]

let test_dipole_north_atlantic_higher () =
  (* Geomagnetic latitude of the US northeast exceeds its geographic
     latitude (the dipole pole sits over arctic Canada). *)
  Alcotest.(check bool) "NYC geomag > geographic" true
    (Geomagnetic.dipole_latitude nyc > Coord.lat nyc)

let test_l_shell_increases_poleward () =
  let l_sing = Geomagnetic.l_shell singapore and l_lon = Geomagnetic.l_shell london in
  Alcotest.(check bool) "London L > Singapore L" true (l_lon > l_sing);
  Alcotest.(check bool) "L >= 1" true (l_sing >= 1.0)

(* --- Latband --- *)

let test_tiers () =
  Alcotest.(check bool) "39 low" true (Latband.tier_of_abs_lat 39.0 = Latband.Low);
  Alcotest.(check bool) "40 low (strict)" true (Latband.tier_of_abs_lat 40.0 = Latband.Low);
  Alcotest.(check bool) "41 mid" true (Latband.tier_of_abs_lat 41.0 = Latband.Mid);
  Alcotest.(check bool) "60 mid (strict)" true (Latband.tier_of_abs_lat 60.0 = Latband.Mid);
  Alcotest.(check bool) "61 high" true (Latband.tier_of_abs_lat 61.0 = Latband.High);
  Alcotest.(check bool) "negative symmetric" true (Latband.tier_of_abs_lat (-65.0) = Latband.High)

let test_tier_order () =
  Alcotest.(check bool) "High > Mid" true (Latband.compare_tier Latband.High Latband.Mid > 0);
  Alcotest.(check bool) "max" true (Latband.max_tier Latband.Low Latband.Mid = Latband.Mid)

let test_tier_custom_thresholds () =
  Alcotest.(check bool) "custom" true
    (Latband.tier_of_abs_lat ~mid_threshold:30.0 ~high_threshold:50.0 45.0 = Latband.Mid);
  Alcotest.check_raises "bad thresholds"
    (Invalid_argument "Latband: thresholds must satisfy 0 <= mid <= high") (fun () ->
      ignore (Latband.tier_of_abs_lat ~mid_threshold:50.0 ~high_threshold:30.0 45.0))

let test_histogram_binning () =
  let h = Latband.histogram ~bin_deg:10.0 [ (-89.0, 1.0); (0.5, 2.0); (89.0, 3.0) ] in
  Alcotest.(check int) "18 bins" 18 (Array.length h.Latband.counts);
  check_float "first bin" 1.0 h.Latband.counts.(0);
  check_float "middle bin" 2.0 h.Latband.counts.(9);
  check_float "last bin" 3.0 h.Latband.counts.(17)

let test_histogram_invalid () =
  Alcotest.check_raises "bin must divide"
    (Invalid_argument "Latband.histogram: bin_deg must divide 180") (fun () ->
      ignore (Latband.histogram ~bin_deg:7.0 []))

let test_pdf_normalization () =
  let h = Latband.histogram ~bin_deg:2.0 [ (10.0, 1.0); (50.0, 4.0); (-30.0, 5.0) ] in
  let total = List.fold_left (fun acc (_, d) -> acc +. (d *. 2.0)) 0.0 (Latband.pdf h) in
  check_close 1e-6 "densities integrate to 100%" 100.0 total

let test_pdf_empty () =
  let h = Latband.histogram ~bin_deg:2.0 [] in
  List.iter (fun (_, d) -> check_float "zero density" 0.0 d) (Latband.pdf h)

let test_fraction_above () =
  let items = [ (45.0, 1.0); (-50.0, 1.0); (10.0, 2.0) ] in
  check_close 1e-9 "half above 40" 0.5 (Latband.fraction_above items ~threshold:40.0);
  check_float "none above 80" 0.0 (Latband.fraction_above items ~threshold:80.0);
  check_float "empty" 0.0 (Latband.fraction_above [] ~threshold:40.0)

let test_threshold_curve_monotone () =
  let items = List.init 100 (fun i -> (float_of_int i -. 50.0, 1.0)) in
  let curve = Latband.threshold_curve items in
  let rec decreasing = function
    | (_, a) :: ((_, b) :: _ as rest) -> a >= b && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone decreasing" true (decreasing curve);
  Alcotest.(check int) "10 thresholds" 10 (List.length curve)

(* --- Region --- *)

let test_continent_of_cities () =
  let open Region in
  let checks =
    [ (nyc, North_america); (london, Europe); (sydney, Oceania); (singapore, Asia);
      (Coord.make ~lat:(-23.55) ~lon:(-46.63), South_america);
      (Coord.make ~lat:6.52 ~lon:3.38, Africa);
      (Coord.make ~lat:35.68 ~lon:139.69, Asia);
      (Coord.make ~lat:55.76 ~lon:37.62, Europe) ]
  in
  List.iter
    (fun (c, expected) ->
      match continent_of c with
      | Some k ->
          Alcotest.(check string) "continent" (continent_to_string expected)
            (continent_to_string k)
      | None -> Alcotest.fail "no continent for a major city")
    checks

let test_ocean_is_not_land () =
  let mid_pacific = Coord.make ~lat:0.0 ~lon:(-150.0) in
  let mid_atlantic = Coord.make ~lat:30.0 ~lon:(-45.0) in
  Alcotest.(check bool) "pacific" false (Region.on_land mid_pacific);
  Alcotest.(check bool) "atlantic" false (Region.on_land mid_atlantic)

let test_continent_of_nearest_total () =
  let mid_pacific = Coord.make ~lat:0.0 ~lon:(-150.0) in
  (* Offshore points always get labeled. *)
  ignore (Region.continent_of_nearest mid_pacific);
  Alcotest.(check bool) "nearest to London is Europe" true
    (Region.continent_of_nearest london = Region.Europe)

let test_polygon_validation () =
  Alcotest.check_raises "too few vertices"
    (Invalid_argument "Region.polygon: fewer than 3 vertices") (fun () ->
      ignore (Region.polygon [ (0.0, 0.0); (1.0, 1.0) ]))

let test_polygon_contains () =
  let square = Region.polygon [ (0.0, 0.0); (0.0, 10.0); (10.0, 10.0); (10.0, 0.0) ] in
  Alcotest.(check bool) "inside" true (Region.contains square (Coord.make ~lat:5.0 ~lon:5.0));
  Alcotest.(check bool) "outside" false (Region.contains square (Coord.make ~lat:15.0 ~lon:5.0))

let test_continent_of_string_roundtrip () =
  List.iter
    (fun k ->
      match Region.continent_of_string (Region.continent_to_string k) with
      | Some k' -> Alcotest.(check bool) "roundtrip" true (Region.equal_continent k k')
      | None -> Alcotest.fail "roundtrip failed")
    Region.all_continents

(* --- Grid_index --- *)

let sample_points =
  List.init 200 (fun i ->
      let lat = Float.rem (float_of_int (i * 37)) 160.0 -. 80.0 in
      let lon = Float.rem (float_of_int (i * 91)) 340.0 -. 170.0 in
      (Coord.make ~lat ~lon, i))

let test_grid_index_within_matches_brute_force () =
  let idx = Grid_index.of_list sample_points in
  let probe = Coord.make ~lat:10.0 ~lon:20.0 in
  let radius = 3000.0 in
  let got =
    Grid_index.within_km idx probe ~radius_km:radius
    |> List.map (fun (_, v, _) -> v)
    |> List.sort Int.compare
  in
  let expected =
    List.filter (fun (c, _) -> Distance.haversine_km probe c <= radius) sample_points
    |> List.map snd |> List.sort Int.compare
  in
  Alcotest.(check (list int)) "same hits" expected got

let test_grid_index_nearest () =
  let idx = Grid_index.of_list sample_points in
  let probe = Coord.make ~lat:45.0 ~lon:(-120.0) in
  match Grid_index.nearest idx probe with
  | None -> Alcotest.fail "no nearest"
  | Some (_, _, d) ->
      let brute =
        List.fold_left
          (fun acc (c, _) -> Float.min acc (Distance.haversine_km probe c))
          Float.infinity sample_points
      in
      check_close 1e-6 "nearest matches brute force" brute d

let test_grid_index_empty_nearest () =
  let idx = Grid_index.create () in
  Alcotest.(check bool) "empty nearest" true (Grid_index.nearest idx nyc = None)

let test_grid_index_size_and_fold () =
  let idx = Grid_index.of_list sample_points in
  Alcotest.(check int) "size" 200 (Grid_index.size idx);
  let sum = Grid_index.fold idx ~init:0 ~f:(fun acc _ v -> acc + v) in
  Alcotest.(check int) "fold visits all" (199 * 200 / 2) sum

let test_grid_index_polar_query () =
  let idx = Grid_index.of_list [ (Coord.make ~lat:89.0 ~lon:0.0, 1) ] in
  let hits = Grid_index.within_km idx (Coord.make ~lat:89.5 ~lon:170.0) ~radius_km:300.0 in
  Alcotest.(check int) "finds near-pole point across longitudes" 1 (List.length hits)

(* --- Projection --- *)

let test_projection_corners () =
  let p = Projection.equirectangular ~width:100 ~height:50 () in
  (match Projection.to_xy p (Coord.make ~lat:89.99 ~lon:(-179.99)) with
  | Some (x, y) ->
      Alcotest.(check int) "NW x" 0 x;
      Alcotest.(check int) "NW y" 0 y
  | None -> Alcotest.fail "NW corner out");
  match Projection.to_xy p (Coord.make ~lat:(-89.99) ~lon:179.99) with
  | Some (x, y) ->
      Alcotest.(check int) "SE x" 99 x;
      Alcotest.(check int) "SE y" 49 y
  | None -> Alcotest.fail "SE corner out"

let test_projection_out_of_bounds () =
  let p =
    Projection.equirectangular ~bounds:(20.0, 60.0, -20.0, 40.0) ~width:10 ~height:10 ()
  in
  Alcotest.(check bool) "outside" true (Projection.to_xy p sydney = None)

let test_projection_roundtrip () =
  let p = Projection.equirectangular ~width:360 ~height:180 () in
  match Projection.to_xy p nyc with
  | Some (x, y) ->
      let c = Projection.of_xy p x y in
      Alcotest.(check bool) "roundtrip within a cell" true
        (Float.abs (Coord.lat c -. Coord.lat nyc) < 1.5
        && Float.abs (Coord.lon c -. Coord.lon nyc) < 1.5)
  | None -> Alcotest.fail "projection failed"

let test_projection_invalid () =
  Alcotest.check_raises "zero width" (Invalid_argument "Projection: non-positive size")
    (fun () -> ignore (Projection.equirectangular ~width:0 ~height:10 ()))

let test_mercator_orders_rows () =
  let p = Projection.equirectangular ~width:100 ~height:60 () in
  match (Projection.mercator_y p london, Projection.mercator_y p singapore) with
  | Some (_, y_london), Some (_, y_sing) ->
      Alcotest.(check bool) "london above singapore" true (y_london < y_sing)
  | _ -> Alcotest.fail "mercator projection failed"

(* --- QCheck properties --- *)

let arb_lat = QCheck.float_range (-90.0) 90.0
let arb_lon = QCheck.float_range (-500.0) 500.0

let prop_normalize_lon_in_range =
  QCheck.Test.make ~name:"normalize_lon lands in (-180, 180]" ~count:500 arb_lon (fun lon ->
      let l = Angle.normalize_lon lon in
      l > -180.0 && l <= 180.0)

let prop_haversine_bounds =
  QCheck.Test.make ~name:"haversine within [0, pi*R]" ~count:300
    QCheck.(quad arb_lat arb_lon arb_lat arb_lon)
    (fun (la1, lo1, la2, lo2) ->
      let a = Coord.make ~lat:la1 ~lon:lo1 and b = Coord.make ~lat:la2 ~lon:lo2 in
      let d = Distance.haversine_km a b in
      d >= 0.0 && d <= (Float.pi *. Distance.earth_radius_km) +. 1.0)

let prop_haversine_triangle =
  QCheck.Test.make ~name:"haversine triangle inequality" ~count:200
    QCheck.(triple (pair arb_lat arb_lon) (pair arb_lat arb_lon) (pair arb_lat arb_lon))
    (fun ((a1, o1), (a2, o2), (a3, o3)) ->
      let a = Coord.make ~lat:a1 ~lon:o1
      and b = Coord.make ~lat:a2 ~lon:o2
      and c = Coord.make ~lat:a3 ~lon:o3 in
      Distance.haversine_km a c
      <= Distance.haversine_km a b +. Distance.haversine_km b c +. 1e-6)

let prop_intermediate_on_segment =
  QCheck.Test.make ~name:"geodesic intermediate splits distance" ~count:200
    QCheck.(triple (pair arb_lat arb_lon) (pair arb_lat arb_lon) (float_range 0.0 1.0))
    (fun ((a1, o1), (a2, o2), f) ->
      let a = Coord.make ~lat:a1 ~lon:o1 and b = Coord.make ~lat:a2 ~lon:o2 in
      let total = Distance.haversine_km a b in
      QCheck.assume (total > 1.0 && total < 19000.0);
      let m = Geodesic.intermediate a b f in
      let d1 = Distance.haversine_km a m and d2 = Distance.haversine_km m b in
      Float.abs (d1 +. d2 -. total) < 1.0)

let prop_tier_total =
  QCheck.Test.make ~name:"every latitude gets a tier" ~count:500 arb_lat (fun lat ->
      match Latband.tier_of_abs_lat lat with
      | Latband.High | Latband.Mid | Latband.Low -> true)

let prop_histogram_preserves_weight =
  QCheck.Test.make ~name:"histogram preserves total weight" ~count:200
    QCheck.(small_list (pair arb_lat (float_range 0.0 10.0)))
    (fun items ->
      let h = Latband.histogram ~bin_deg:5.0 items in
      let total_in = List.fold_left (fun a (_, w) -> a +. w) 0.0 items in
      let total_out = Array.fold_left ( +. ) 0.0 h.Latband.counts in
      Float.abs (total_in -. total_out) < 1e-9)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_normalize_lon_in_range; prop_haversine_bounds; prop_haversine_triangle;
      prop_intermediate_on_segment; prop_tier_total; prop_histogram_preserves_weight ]

let () =
  Alcotest.run "geo"
    [
      ( "angle",
        [ Alcotest.test_case "deg/rad roundtrip" `Quick test_deg_rad_roundtrip;
          Alcotest.test_case "normalize_lon wraps" `Quick test_normalize_lon_wraps;
          Alcotest.test_case "normalize_lat clamps" `Quick test_normalize_lat_clamps;
          Alcotest.test_case "angular_diff" `Quick test_angular_diff ] );
      ( "coord",
        [ Alcotest.test_case "make wraps lon" `Quick test_coord_make_valid;
          Alcotest.test_case "make rejects bad input" `Quick test_coord_make_invalid;
          Alcotest.test_case "antipode" `Quick test_coord_antipode;
          Alcotest.test_case "parse/pp roundtrip" `Quick test_coord_parse_roundtrip;
          Alcotest.test_case "parse decimal pair" `Quick test_coord_parse_decimal;
          Alcotest.test_case "parse garbage" `Quick test_coord_parse_garbage;
          Alcotest.test_case "total order" `Quick test_coord_compare_total ] );
      ( "distance",
        [ Alcotest.test_case "known distances" `Quick test_haversine_known;
          Alcotest.test_case "zero distance" `Quick test_haversine_zero;
          Alcotest.test_case "symmetry" `Quick test_haversine_symmetry;
          Alcotest.test_case "vincenty vs haversine" `Quick test_vincenty_close_to_haversine;
          Alcotest.test_case "vincenty zero" `Quick test_vincenty_zero;
          Alcotest.test_case "equirectangular short range" `Quick
            test_equirectangular_close_for_short;
          Alcotest.test_case "path length" `Quick test_path_length;
          Alcotest.test_case "initial bearing" `Quick test_initial_bearing ] );
      ( "geodesic",
        [ Alcotest.test_case "intermediate endpoints" `Quick test_intermediate_endpoints;
          Alcotest.test_case "midpoint equidistant" `Quick test_midpoint_equidistant;
          Alcotest.test_case "waypoints count+length" `Quick test_waypoints_count_and_length;
          Alcotest.test_case "waypoints invalid" `Quick test_waypoints_invalid;
          Alcotest.test_case "point_at_km clamps" `Quick test_point_at_km_clamps;
          Alcotest.test_case "point_at_km midway" `Quick test_point_at_km_midway;
          Alcotest.test_case "positions_along spacing" `Quick test_positions_along_spacing;
          Alcotest.test_case "positions_along short path" `Quick
            test_positions_along_short_path ] );
      ( "geomagnetic",
        [ Alcotest.test_case "dipole pole" `Quick test_dipole_pole_is_90;
          Alcotest.test_case "latitude in range" `Quick test_dipole_latitude_ranges;
          Alcotest.test_case "north atlantic anomaly" `Quick test_dipole_north_atlantic_higher;
          Alcotest.test_case "L-shell poleward" `Quick test_l_shell_increases_poleward ] );
      ( "latband",
        [ Alcotest.test_case "tier boundaries" `Quick test_tiers;
          Alcotest.test_case "tier order" `Quick test_tier_order;
          Alcotest.test_case "custom thresholds" `Quick test_tier_custom_thresholds;
          Alcotest.test_case "histogram binning" `Quick test_histogram_binning;
          Alcotest.test_case "histogram invalid" `Quick test_histogram_invalid;
          Alcotest.test_case "pdf normalization" `Quick test_pdf_normalization;
          Alcotest.test_case "pdf empty" `Quick test_pdf_empty;
          Alcotest.test_case "fraction above" `Quick test_fraction_above;
          Alcotest.test_case "threshold curve monotone" `Quick test_threshold_curve_monotone ] );
      ( "region",
        [ Alcotest.test_case "continents of cities" `Quick test_continent_of_cities;
          Alcotest.test_case "ocean is not land" `Quick test_ocean_is_not_land;
          Alcotest.test_case "nearest is total" `Quick test_continent_of_nearest_total;
          Alcotest.test_case "polygon validation" `Quick test_polygon_validation;
          Alcotest.test_case "polygon contains" `Quick test_polygon_contains;
          Alcotest.test_case "continent string roundtrip" `Quick
            test_continent_of_string_roundtrip ] );
      ( "grid_index",
        [ Alcotest.test_case "within matches brute force" `Quick
            test_grid_index_within_matches_brute_force;
          Alcotest.test_case "nearest" `Quick test_grid_index_nearest;
          Alcotest.test_case "empty nearest" `Quick test_grid_index_empty_nearest;
          Alcotest.test_case "size and fold" `Quick test_grid_index_size_and_fold;
          Alcotest.test_case "polar query" `Quick test_grid_index_polar_query ] );
      ( "projection",
        [ Alcotest.test_case "corners" `Quick test_projection_corners;
          Alcotest.test_case "out of bounds" `Quick test_projection_out_of_bounds;
          Alcotest.test_case "roundtrip" `Quick test_projection_roundtrip;
          Alcotest.test_case "invalid" `Quick test_projection_invalid;
          Alcotest.test_case "mercator row order" `Quick test_mercator_orders_rows ] );
      ("properties", qcheck_tests);
    ]
