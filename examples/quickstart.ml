(* Quickstart: build the submarine cable dataset and measure what a
   Carrington-class storm does to it under the paper's failure states.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. Build the synthetic-but-calibrated submarine cable map:
     470 cables, 1241 landing stations (see DESIGN.md). *)
  let network = Datasets.Cache.submarine () in
  Format.printf "dataset: %a@." Infra.Network.pp_summary network;

  (* 2. Pick a failure model.  S1 is the paper's high-failure state:
     repeaters fail with probability 1 / 0.1 / 0.01 depending on the
     cable's highest-latitude endpoint (>60, 40-60, <40 degrees). *)
  let model = Stormsim.Failure_model.s1 in

  (* 3. Compile a simulation plan per repeater spacing — the per-cable
     death probabilities are precomputed once — and run the Monte-Carlo
     experiment against it. *)
  List.iter
    (fun spacing_km ->
      let plan = Stormsim.Plan.compile ~spacing_km ~network ~model () in
      let s = Stormsim.Montecarlo.run_plan ~trials:10 ~seed:42 plan in
      Printf.printf
        "S1, repeaters every %3.0f km: %4.1f%% (+-%.1f) cables dead, %4.1f%% (+-%.1f) \
         landing stations cut off\n"
        spacing_km s.Stormsim.Montecarlo.cables_mean s.Stormsim.Montecarlo.cables_std
        s.Stormsim.Montecarlo.nodes_mean s.Stormsim.Montecarlo.nodes_std)
    Infra.Repeater.paper_spacings_km;

  (* 4. Contrast with the low-failure state S2.  A compiled plan also
     gives the closed-form expectation without sampling. *)
  let plan_s2 =
    Stormsim.Plan.compile ~spacing_km:150.0 ~network ~model:Stormsim.Failure_model.s2 ()
  in
  let s2 = Stormsim.Montecarlo.run_plan ~trials:10 ~seed:42 plan_s2 in
  Printf.printf "S2, repeaters every 150 km: %4.1f%% cables dead\n"
    s2.Stormsim.Montecarlo.cables_mean;

  (* 5. How likely is such a storm?  The paper's bracket. *)
  let lo, hi = Spaceweather.Probability.decadal_range in
  Printf.printf "probability of a Carrington-scale event: %.1f%%-%.1f%% per decade\n"
    (100.0 *. lo) (100.0 *. hi)
