(* A Carrington-2.0 scenario walked end to end: launch, early warning,
   ground effects, infrastructure impact, and the value of the shutdown
   lead time (sections 2, 3 and 5.2 of the paper).

     dune exec examples/carrington_scenario.exe *)

let hr () = print_endline (String.make 72 '-')

let () =
  let cme = Spaceweather.Cme.carrington_1859 in

  (* 1. Launch and early warning. *)
  hr ();
  print_endline "T+0: coronagraphs detect a fast halo CME";
  let tl = Spaceweather.Forecast.timeline cme in
  Format.printf "  launch speed %.0f km/s; %a@." cme.Spaceweather.Cme.speed_km_s
    Spaceweather.Forecast.pp_timeline tl;
  let dst = Spaceweather.Cme.expected_dst cme in
  Printf.printf "  expected storm: Dst %.0f nT (%s class)\n" dst
    (Spaceweather.Dst.severity_to_string (Spaceweather.Dst.severity_of_dst dst));

  (* 2. Ground effects at representative locations. *)
  hr ();
  print_endline "ground geoelectric fields at impact:";
  let storm = Gic.Disturbance.storm_of_dst dst in
  List.iter
    (fun city ->
      let c = Datasets.Cities.find city in
      let pos = c.Datasets.Cities.pos in
      Printf.printf
        "  %-12s geomag lat %5.1f  dB %6.0f nT   E-field %5.2f V/km (%s ground)\n" city
        (Geo.Geomagnetic.dipole_latitude pos)
        (Gic.Disturbance.db_at storm pos)
        (Gic.Efield.amplitude_v_per_km storm pos)
        (Gic.Conductivity.profile_for pos).Gic.Conductivity.name)
    [ "Oslo"; "London"; "New York"; "Tokyo"; "Singapore"; "Lagos" ];

  (* 3. GIC on a transatlantic cable. *)
  hr ();
  print_endline "GIC in a New York - Bude power-feeding line:";
  let path =
    Geo.Geodesic.waypoints (Datasets.Cities.coord "New York") (Datasets.Cities.coord "Bude")
      ~n:40
  in
  let total = Geo.Distance.path_length_km path in
  let grounds = Infra.Grounding.chainages ~length_km:total () in
  let r = Gic.Induced.compute ~storm ~path ~ground_chainages_km:grounds () in
  Printf.printf "  %.0f km route, %d grounded sections, peak GIC %.1f A (vs 1 A feed)\n"
    total
    (List.length r.Gic.Induced.sections)
    r.Gic.Induced.peak_gic_a;

  (* 4. Network impact under the paper's model and the physical model. *)
  hr ();
  print_endline "network impact:";
  let networks =
    [ ("submarine", Datasets.Cache.submarine ());
      ("US long-haul", Datasets.Cache.intertubes ()) ]
  in
  let s = Stormsim.Scenario.run ~use_physical:true ~cme ~networks () in
  Format.printf "%a" Stormsim.Scenario.pp s;

  (* 5. What the 17-hour lead buys (5.2): de-powering reduces peak GIC
     somewhat, but GIC flows through a powered-off cable too. *)
  hr ();
  let plan =
    Stormsim.Mitigation.shutdown_plan ~cme ~network:(List.assoc "submarine" networks) ()
  in
  Printf.printf
    "shutdown decision window %.1f h: expected cable losses %.1f%% powered vs %.1f%% \
     de-powered (benefit %.1f points)\n"
    plan.Stormsim.Mitigation.actionable_lead_h plan.Stormsim.Mitigation.cables_failed_on_pct
    plan.Stormsim.Mitigation.cables_failed_off_pct plan.Stormsim.Mitigation.benefit_pct
