(* Country-scale connectivity under superstorm failure states — the
   paper's section 4.3.4 case studies, plus a per-country cable census.

     dune exec examples/country_connectivity.exe *)

let () =
  let net = Datasets.Cache.submarine () in

  (* Cable census for the countries the paper discusses. *)
  print_endline "cable census (direct international cables per country):";
  List.iter
    (fun country ->
      let nodes = Datasets.Submarine.nodes_in_country net country in
      let cables =
        List.concat_map (Infra.Network.cables_at net) nodes
        |> List.sort_uniq (fun (a : Infra.Cable.t) b -> Int.compare a.Infra.Cable.id b.Infra.Cable.id)
      in
      let long = List.filter (fun (c : Infra.Cable.t) -> c.Infra.Cable.length_km > 3000.0) cables in
      Printf.printf "  %-14s %3d landing stations, %3d cables (%d long-haul > 3000 km)\n"
        country (List.length nodes) (List.length cables) (List.length long))
    [ "United States"; "United Kingdom"; "China"; "India"; "Singapore"; "Brazil";
      "South Africa"; "Australia"; "New Zealand" ];

  (* The paper's case studies, evaluated over 100 Monte-Carlo trials. *)
  print_newline ();
  print_endline "case studies (probability the stated connectivity is LOST):";
  let findings = Stormsim.Country.run_all ~trials:100 net in
  List.iter
    (fun (f : Stormsim.Country.finding) ->
      Printf.printf "  %-24s %-3s  P(loss) %.2f   paper: %s\n"
        f.Stormsim.Country.spec.Stormsim.Country.id
        f.Stormsim.Country.spec.Stormsim.Country.state_name
        f.Stormsim.Country.loss_probability
        f.Stormsim.Country.spec.Stormsim.Country.expectation)
    findings;

  (* The asymmetry the paper highlights: Ellalink (Brazil-Portugal,
     6,200 km) vs Columbus-III (Florida-Portugal, 9,833 km). *)
  print_newline ();
  let survival length_km =
    let n = Infra.Repeater.count_for_length ~spacing_km:150.0 ~length_km in
    0.99 ** float_of_int n
  in
  Printf.printf
    "why Brazil keeps Europe: under S1 (low tier p=0.01/repeater) a 6,200 km cable \
     survives with %.2f, a 9,833 km one with %.2f\n"
    (survival 6200.0) (survival 9833.0)
