(* Topology planning for resilience (section 5.1 of the paper): find the
   structural weak points of today's submarine map, then evaluate
   low-latitude augmentation cables.

     dune exec examples/topology_planning.exe *)

let () =
  let net = Datasets.Cache.submarine () in
  let g, edge_cable = Infra.Network.to_graph net in

  (* 1. Structural weak points of the healthy network. *)
  let bridges = Netgraph.Structure.bridges g in
  let cuts = Netgraph.Structure.articulation_points g in
  Printf.printf "healthy topology: %d nodes, %d edges, %d bridge edges, %d cut nodes\n"
    (Netgraph.Graph.nb_nodes g) (Netgraph.Graph.nb_edges g) (List.length bridges)
    (List.length cuts);

  (* The most critical single cables: bridges belonging to long systems. *)
  let bridge_cables =
    List.map edge_cable bridges
    |> List.sort_uniq Int.compare
    |> List.map (Infra.Network.cable net)
    |> List.filter (fun (c : Infra.Cable.t) -> c.Infra.Cable.length_km > 2000.0)
    |> List.sort
         (fun (a : Infra.Cable.t) b ->
           Float.compare b.Infra.Cable.length_km a.Infra.Cable.length_km)
  in
  print_endline "longest single-point-of-failure cables:";
  List.iteri
    (fun i (c : Infra.Cable.t) ->
      if i < 8 then
        Printf.printf "  %-28s %7.0f km (%s tier)\n" c.Infra.Cable.name
          c.Infra.Cable.length_km
          (Geo.Latband.tier_to_string (Infra.Cable.risk_tier c)))
    bridge_cables;

  (* 2. Hub criticality: betweenness of the landing graph. *)
  let cb = Netgraph.Centrality.betweenness g in
  let scored =
    Hashtbl.fold
      (fun n v acc -> ((Infra.Network.node net n).Infra.Network.name, v) :: acc)
      cb []
  in
  print_endline "most central landing stations (betweenness):";
  List.iter
    (fun (name, v) -> Printf.printf "  %-20s %.0f\n" name v)
    (Netgraph.Centrality.top_k scored ~k:8);

  (* 3. Expected post-storm partitions under S1. *)
  let parts = Stormsim.Mitigation.predicted_partitions ~network:net () in
  Printf.printf "expected S1 partitions: %d fragments; largest %s\n" (List.length parts)
    (String.concat ", "
       (List.filteri (fun i _ -> i < 6) (List.map (fun c -> string_of_int (List.length c)) parts)));

  (* 4. Where would new low-latitude cables help most? *)
  let base = Stormsim.Mitigation.expected_surviving_pairs ~network:net () in
  Printf.printf "S1 objective before augmentation: %.2f continent pairs with a surviving cable\n"
    base;
  let augs = Stormsim.Mitigation.plan_augmentation ~budget:4 ~network:net () in
  print_endline "greedy augmentation plan:";
  List.iter
    (fun (a : Stormsim.Mitigation.augmentation) ->
      Printf.printf "  + %-16s -> %-16s %6.0f km   gain %.3f\n" a.Stormsim.Mitigation.from_city
        a.Stormsim.Mitigation.to_city a.Stormsim.Mitigation.length_km a.Stormsim.Mitigation.gain)
    augs
