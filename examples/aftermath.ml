(* The weeks after the storm: grid coupling, traffic shifts, service
   availability and the repair campaign (paper §3.2.2, §5.4, §5.5).

     dune exec examples/aftermath.exe *)

let hr () = print_endline (String.make 72 '-')

let () =
  let net = Datasets.Cache.submarine () in

  (* 1. Coupled grid + cable darkness (5.5). *)
  print_endline "day 0: coupled power-grid and cable failures (Carrington + S1)";
  let r =
    Stormsim.Powergrid.simulate ~trials:20 ~network:net ~model:Stormsim.Failure_model.s1
      ~dst_nt:(-1200.0) ()
  in
  Printf.printf
    "  landing stations dark: %.0f%% from cables, %.0f%% from grid outage, %.0f%% \
     combined (x%.1f amplification)\n"
    r.Stormsim.Powergrid.nodes_cable_dark_pct r.Stormsim.Powergrid.nodes_grid_dark_pct
    r.Stormsim.Powergrid.nodes_dark_pct r.Stormsim.Powergrid.amplification;
  Printf.printf "  grids down: %s\n" (String.concat ", " r.Stormsim.Powergrid.regions_down);

  (* 2. What still routes (5.5's BGP-shift example, at S2 severity where
     the network survives partially). *)
  hr ();
  let base, after =
    Stormsim.Traffic.storm_shift ~trials:10 ~network:net ~model:Stormsim.Failure_model.s2 ()
  in
  Printf.printf
    "traffic under S2: %.0f%% of inter-continent demand still deliverable (was \
     %.0f%%); peak per-cable load %.1f -> %.1f units\n"
    after.Stormsim.Traffic.delivered_pct base.Stormsim.Traffic.delivered_pct
    base.Stormsim.Traffic.max_cable_load after.Stormsim.Traffic.max_cable_load;

  (* 3. Which services stay up (5.4). *)
  hr ();
  print_endline "geo-distributed services under predicted S1 partitions:";
  List.iter
    (fun (a : Stormsim.Resilience_test.availability) ->
      Printf.printf "  %-20s read %5.1f%%  write %5.1f%%\n"
        a.Stormsim.Resilience_test.service.Stormsim.Resilience_test.name
        a.Stormsim.Resilience_test.read_pct a.Stormsim.Resilience_test.write_pct)
    (Stormsim.Resilience_test.run_suite ~network:net ());
  let before =
    { Stormsim.Resilience_test.name = "eu-only"; replicas = [ "London"; "Amsterdam"; "Paris" ];
      write_quorum = 2; read_quorum = 1 }
  in
  let after_svc =
    { before with Stormsim.Resilience_test.name = "low-lat";
                  replicas = [ "Singapore"; "Sao Paulo"; "Mumbai" ] }
  in
  Printf.printf "  re-placing a 3-replica service at low latitudes: +%.1f points write availability\n"
    (Stormsim.Resilience_test.placement_gain ~network:net ~before ~after:after_svc);

  (* 4. The repair campaign (3.2.2). *)
  hr ();
  let tl, dead =
    Stormsim.Recovery.storm_recovery ~trials:5 ~network:net ~model:Stormsim.Failure_model.s1 ()
  in
  Printf.printf
    "repair campaign: %.0f cables dead; with 60 cable ships 50%% restored in %.0f days, \
     90%% in %.0f days, full in %.0f days\n"
    dead tl.Stormsim.Recovery.days_to_50_pct tl.Stormsim.Recovery.days_to_90_pct
    tl.Stormsim.Recovery.days_to_full;
  List.iter
    (fun ships ->
      let dead_arr =
        Array.init (Infra.Network.nb_cables net) (fun i -> i mod 3 = 0)
      in
      let t =
        Stormsim.Recovery.plan
          ~params:{ Stormsim.Recovery.default_params with Stormsim.Recovery.ships }
          ~network:net ~dead:dead_arr ()
      in
      Printf.printf "  fleet of %3d ships: full restoration in %.0f days\n" ships
        t.Stormsim.Recovery.days_to_full)
    [ 30; 60; 120 ];

  (* 5. The bill. *)
  hr ();
  let dark = r.Stormsim.Powergrid.nodes_dark_pct /. 100.0 in
  Printf.printf
    "US economic impact at the coupled darkness level (%.0f%%) over the 90%%-repair \
     window: $%.0f billion\n"
    (100.0 *. dark)
    (Stormsim.Recovery.us_outage_cost_usd ~dark_fraction:dark
       ~days:tl.Stormsim.Recovery.days_to_90_pct
    /. 1e9)
