(** Scenario sweeps: parameter grids as a first-class streaming
    workload.

    The paper's contribution is a {e space} of outcomes — failure
    probability × storm intensity × infrastructure assumptions — not one
    storm.  A sweep turns that space into a grid: a list of {!axis}
    values over the simulate parameters ([network], [model],
    [spacing_km], [itu_scale], [seed], [trials]), expanded into the
    cartesian product of {!cell}s, executed, and streamed back one JSONL
    {!row} per cell.

    Three properties define the engine:

    - {b Plan dedup.}  Cells are grouped by canonical {!plan_key}, so
      each distinct [(network, model, spacing)] triple compiles exactly
      one {!Plan.t} no matter how many cells share it, and cells that
      are statistically identical ({!batch_key}: same plan {e and} same
      trial count) share one [run_trials_par] pass — the per-cell
      statistics fan out of a single batch.
    - {b Determinism.}  Trials run on the persistent {!Exec} domain
      pool ([jobs] only changes how many domains sample), batches run
      in first-occurrence order, and rows are emitted in cell order
      through a reorder buffer — the streamed bytes are identical for
      any [jobs] count.
    - {b Streaming.}  [emit] fires as soon as a cell's batch completes,
      so a 1000-cell sweep shows progress instead of a long silence.

    Counters: [sweep.runs], [sweep.cells], [sweep.batches],
    [sweep.plans_compiled] and [sweep.rows_streamed] land on
    {!Obs.Metrics}; a [sweep] progress run ticks once per emitted row. *)

type network_id = Submarine | Intertubes | Itu

val network_id_to_string : network_id -> string

val network_id_of_string : string -> (network_id, string) result

type cell = {
  network : network_id;
  model : Failure_model.t;
  spacing_km : float;
  itu_scale : float;  (** only meaningful for {!Itu} *)
  seed : int;  (** dataset build seed and trial seed *)
  trials : int;
}

val default_cell : cell
(** The service defaults: submarine, uniform 0.01, 150 km, scale 0.3,
    seed {!Datasets.default_seed}, 10 trials. *)

val max_trials : int
(** Per-cell trial-count cap (100_000) — trials multiply work without
    bound, so absurd values are refused at parse time. *)

val max_cells : int
(** Expansion cap (65_536 cells) — a grid is refused, not truncated,
    when its cartesian product exceeds this. *)

(** {2 Axes and expansion} *)

type raw_value = Str of string | Num of float
(** One axis value before per-key validation: CLI flags arrive as
    {!Str}, JSON numbers as {!Num} (JSON strings as {!Str}). *)

type axis
(** One validated grid dimension: a parameter key plus the values it
    ranges over.  Duplicate values are legal (they expand into distinct
    cells that collapse into one batch); an empty axis expands to zero
    cells. *)

val axis_key : axis -> string

val axis_length : axis -> int

val axis_of_raw : string -> raw_value list -> (axis, string) result
(** Validate one axis: the key must be one of [network | model |
    spacing_km | itu_scale | seed | trials] and every value must parse
    for that key ([model] accepts model names and bare probabilities;
    numeric keys accept {!Num} or numeric strings). *)

val axis_of_spec : string -> (axis, string) result
(** Parse a CLI axis spec ["key=v1,v2,..."].  A single value pins the
    parameter; an empty value list (["key="]) makes an empty axis. *)

val expand : ?base:cell -> axis list -> (cell array, string) result
(** Cartesian product over [base] (default {!default_cell}): the first
    axis varies slowest, the last fastest — the nesting order of the
    flags/fields as given.  No axes means the single [base] cell.
    [Error] on a repeated axis key or a product over {!max_cells}. *)

(** {2 Canonical keys} *)

val model_key : Failure_model.t -> string
(** Collision-free model key: every constructor field printed with
    [%.17g] (shared with the server's cache keys). *)

val network_key : cell -> string
(** Dataset identity: name + build seed, with the ITU scale included
    only for {!Itu} — it is normalized out of non-ITU keys so
    equivalent cells share a plan. *)

val plan_key : cell -> string
(** [(network_key, model_key, spacing_km)] — two cells with equal plan
    keys share one compiled {!Plan.t}. *)

val batch_key : cell -> string
(** {!plan_key} + trial count.  Equal batch keys mean statistically
    identical cells (the trial seed is the dataset seed, already in
    {!network_key}): they share one trial batch. *)

(** {2 Execution} *)

type row = { cell_index : int; cell : cell; stats : Montecarlo.series }

val row_line : row -> string
(** The cell's result as one compact JSON line ([\n]-terminated) —
    the same field shape as the [/simulate] body, plus ["cell"]. *)

type summary = {
  cells : int;
  rows : int;  (** rows emitted — always [cells] on success *)
  plans_compiled : int;  (** distinct plans this run compiled *)
  batches : int;  (** trial batches run — [<= cells] when keys repeat *)
}

val run :
  ?jobs:int -> cells:cell array -> emit:(row -> unit) -> unit -> summary
(** Execute a sweep.  Batches run sequentially in first-occurrence
    order; each batch's trials are parallelized over [jobs] (default
    {!Exec.default_jobs}) worker domains.  [emit] receives rows in
    strict cell order, each as soon as its batch has completed —
    byte-identical output for any [jobs].  @raise Invalid_argument via
    the trial engine if a cell is invalid (cells built by {!expand} are
    always valid). *)
