(** Infrastructure-distribution analyses: Figures 3, 4 and 5.

    Pure functions from datasets to plottable series; the [Report] library
    renders them and the bench harness prints them. *)

type pdf_series = { label : string; points : (float * float) list }
(** [(latitude bin centre, probability density %)] — Fig. 3 axes. *)

type threshold_series = { label : string; points : (float * float) list }
(** [(|latitude| threshold, percent above)] — Fig. 4 axes. *)

type cdf_series = { label : string; points : (float * float) list }
(** [(length km, cumulative fraction)] — Fig. 5 axes. *)

val fig3 : submarine:Infra.Network.t -> pdf_series list
(** Population and submarine-endpoint latitude PDFs over 2° bins. *)

val fig4a :
  submarine:Infra.Network.t -> intertubes:Infra.Network.t -> threshold_series list
(** Submarine endpoints, one-hop endpoints, Intertubes endpoints and
    population above each 10°-step threshold. *)

val fig4b :
  routers:float array ->
  ixps:Datasets.Ixp.t array ->
  dns:Datasets.Dns_roots.instance array ->
  threshold_series list
(** Internet routers, IXPs, DNS root servers and population. *)

val fig5 :
  submarine:Infra.Network.t ->
  intertubes:Infra.Network.t ->
  itu:Infra.Network.t ->
  cdf_series list
(** Cable-length CDFs of the three networks. *)

val mass_above : pdf_series -> threshold:float -> float
(** Probability mass of the PDF beyond |latitude| > [threshold],
    estimated as Σ density × bin width over qualifying sample points.
    Bin widths come from consecutive sample abscissae (half the gap to
    each neighbour for interior points, the adjacent gap at the edges),
    so the estimate tracks the series' actual grid instead of assuming
    one. *)

val fraction_above : threshold_series -> float -> float
(** Interpolated percent-above at an arbitrary threshold (testing
    helper). *)
