type metric =
  | Direct_loss
  | Routed_loss
  | Long_haul_isolated of float

type spec = {
  id : string;
  description : string;
  group_a : string list;
  group_b : string list;
  metric : metric;
  state : Failure_model.t;
  state_name : string;
  expectation : string;
}

type finding = {
  spec : spec;
  loss_probability : float;
  direct_cables : int;
}

let s1 = Failure_model.s1
let s2 = Failure_model.s2

let europe =
  [ "United Kingdom"; "Ireland"; "France"; "Spain"; "Portugal"; "Germany";
    "Netherlands"; "Belgium"; "Denmark"; "Norway"; "Sweden"; "Finland";
    "Iceland"; "Italy"; "Greece" ]

let northeast_us =
  [ "city:New York"; "city:Shirley NY"; "city:Wall Township"; "city:Manasquan";
    "city:Tuckerton"; "city:Virginia Beach"; "city:Halifax" ]

let paper_case_studies =
  [
    {
      id = "us-europe-s1";
      description = "US East coast to Europe under high failures";
      group_a = [ "United States" ];
      group_b = europe;
      metric = Direct_loss;
      state = s1;
      state_name = "S1";
      expectation = "US-Europe connectivity is lost with a probability of ~1.0";
    };
    {
      id = "ne-europe-s1";
      description = "North East US (and Canada) to Europe under high failures";
      group_a = northeast_us;
      group_b = europe;
      metric = Direct_loss;
      state = s1;
      state_name = "S1";
      expectation = "connectivity fails completely (probability ~1.0)";
    };
    {
      id = "ne-europe-s2";
      description = "North East US (and Canada) to Europe under low failures";
      group_a = northeast_us;
      group_b = europe;
      metric = Direct_loss;
      state = s2;
      state_name = "S2";
      expectation = "fails completely with probability ~0.8 in the paper's dataset";
    };
    {
      id = "california-pacific-s2";
      description = "California to Hawaii/Japan/Hong Kong/Mexico under low failures";
      group_a =
        [ "city:Hermosa Beach"; "city:Los Angeles"; "city:Morro Bay";
          "city:San Luis Obispo"; "city:Grover Beach"; "city:Manchester CA" ];
      group_b = [ "city:Honolulu"; "city:Chikura"; "city:Shima"; "city:Hong Kong" ];
      metric = Direct_loss;
      state = s2;
      state_name = "S2";
      expectation = "unaffected (loss probability near 0)";
    };
    {
      id = "florida-south-s2";
      description = "Florida to Brazil/Bahamas under low failures";
      group_a =
        [ "city:Miami"; "city:Boca Raton"; "city:Hollywood FL";
          "city:West Palm Beach"; "city:Jacksonville Beach" ];
      group_b = [ "Brazil"; "Bahamas" ];
      metric = Direct_loss;
      state = s2;
      state_name = "S2";
      expectation = "not affected under the low-failure scenario";
    };
    {
      id = "uswest-longhaul-s1";
      description = "US West coast long-distance connectivity under high failures";
      group_a =
        [ "city:Hermosa Beach"; "city:Los Angeles"; "city:Morro Bay";
          "city:San Luis Obispo"; "city:Grover Beach"; "city:Seattle";
          "city:Portland"; "city:Pacific City"; "city:Nedonna Beach";
          "city:Bandon"; "city:Manchester CA" ];
      group_b = [];
      metric = Long_haul_isolated 3000.0;
      state = s1;
      state_name = "S1";
      expectation = "all long-distance connectivity lost except ~one trans-Pacific cable";
    };
    {
      id = "hawaii-us-s1";
      description = "Hawaii to continental US under high failures";
      group_a = [ "city:Honolulu"; "city:Hilo"; "city:Kahului"; "city:Lihue" ];
      group_b =
        [ "city:Morro Bay"; "city:Hermosa Beach"; "city:Pacific City";
          "city:San Luis Obispo" ];
      metric = Direct_loss;
      state = s1;
      state_name = "S1";
      expectation = "Hawaii remains connected to the continental US";
    };
    {
      id = "hawaii-australia-s1";
      description = "Hawaii to Australia under high failures";
      group_a = [ "city:Honolulu" ];
      group_b = [ "Australia" ];
      metric = Direct_loss;
      state = s1;
      state_name = "S1";
      expectation = "Hawaii loses its connectivity to Australia";
    };
    {
      id = "alaska-bc-s1";
      description = "Alaska to British Columbia under high failures";
      group_a = [ "city:Anchorage"; "city:Juneau"; "city:Ketchikan" ];
      group_b = [ "city:Prince Rupert"; "city:Vancouver" ];
      metric = Direct_loss;
      state = s1;
      state_name = "S1";
      expectation = "Alaska keeps only its link to British Columbia";
    };
    {
      id = "shanghai-longhaul-s2";
      description = "Shanghai long-distance connectivity under low failures";
      group_a = [ "city:Shanghai" ];
      group_b = [];
      metric = Long_haul_isolated 1000.0;
      state = s2;
      state_name = "S2";
      expectation =
        "Shanghai loses all long-distance connectivity (its cables are all >= 28,000 km)";
    };
    {
      id = "china-longhaul-s1";
      description = "China long-distance connectivity under high failures";
      group_a =
        [ "city:Shanghai"; "city:Hong Kong"; "city:Shantou"; "city:Chongming";
          "city:Qingdao"; "city:Xiamen"; "city:Lantau Island"; "city:Macau" ];
      group_b = [];
      metric = Long_haul_isolated 3000.0;
      state = s1;
      state_name = "S1";
      expectation = "loses all long-distance cables except about one";
    };
    {
      id = "india-hubs-s1";
      description = "Mumbai and Chennai international connectivity under high failures";
      group_a = [ "city:Mumbai"; "city:Chennai" ];
      group_b = [ "Singapore"; "United Arab Emirates"; "Oman"; "Sri Lanka" ];
      metric = Direct_loss;
      state = s1;
      state_name = "S1";
      expectation = "Mumbai and Chennai do not lose connectivity even with high failures";
    };
    {
      id = "singapore-hub-s1";
      description = "Singapore hub connectivity under high failures";
      group_a = [ "Singapore" ];
      group_b = [ "India"; "Australia"; "Indonesia"; "Malaysia" ];
      metric = Direct_loss;
      state = s1;
      state_name = "S1";
      expectation =
        "several cables remain; Chennai, Perth and Jakarta stay reachable";
    };
    {
      id = "uk-europe-s1";
      description = "UK to neighbouring Europe under high failures";
      group_a = [ "United Kingdom" ];
      group_b = [ "France"; "Norway"; "Ireland"; "Netherlands"; "Belgium"; "Germany" ];
      metric = Direct_loss;
      state = s1;
      state_name = "S1";
      expectation = "connectivity to neighbouring European locations remains";
    };
    {
      id = "uk-northamerica-s1";
      description = "UK to North America under high failures";
      group_a = [ "United Kingdom" ];
      group_b = [ "United States"; "Canada" ];
      metric = Direct_loss;
      state = s1;
      state_name = "S1";
      expectation = "connectivity to North America is lost";
    };
    {
      id = "southafrica-coasts-s1";
      description = "South Africa along both African coasts under high failures";
      group_a = [ "South Africa" ];
      group_b = [ "Portugal"; "Nigeria"; "Somalia"; "Mozambique"; "Kenya"; "Angola" ];
      metric = Direct_loss;
      state = s1;
      state_name = "S1";
      expectation = "retains connectivity on both the eastern and western coasts";
    };
    {
      id = "nz-australia-s1";
      description = "New Zealand to Australia under high failures";
      group_a = [ "New Zealand" ];
      group_b = [ "Australia" ];
      metric = Direct_loss;
      state = s1;
      state_name = "S1";
      expectation = "New Zealand keeps only its connectivity to Australia";
    };
    {
      id = "nz-uswest-s1";
      description = "New Zealand trans-Pacific (to US) under high failures";
      group_a = [ "New Zealand" ];
      group_b = [ "United States" ];
      metric = Direct_loss;
      state = s1;
      state_name = "S1";
      expectation = "other long-distance connectivity is lost";
    };
    {
      id = "australia-jakarta-s1";
      description = "Australia to Jakarta/Singapore under high failures";
      group_a = [ "Australia" ];
      group_b = [ "Indonesia"; "Singapore" ];
      metric = Direct_loss;
      state = s1;
      state_name = "S1";
      expectation = "the longest unaffected cable links Australia with Jakarta and Singapore";
    };
    {
      id = "brazil-europe-s1";
      description = "Brazil to Europe under high failures";
      group_a = [ "Brazil" ];
      group_b = [ "Portugal"; "Spain" ];
      metric = Direct_loss;
      state = s1;
      state_name = "S1";
      expectation =
        "Brazil retains connectivity to Europe (Ellalink is 6,200 km vs 9,833 km from Florida)";
    };
    {
      id = "brazil-northamerica-s1";
      description = "Brazil to North America under high failures";
      group_a = [ "Brazil" ];
      group_b = [ "United States" ];
      metric = Direct_loss;
      state = s1;
      state_name = "S1";
      expectation = "Brazil loses its connectivity to North America";
    };
  ]

let resolve_group net names =
  let city_prefix = "city:" in
  List.concat_map
    (fun name ->
      if String.length name > String.length city_prefix
         && String.sub name 0 (String.length city_prefix) = city_prefix
      then
        let city = String.sub name 5 (String.length name - 5) in
        match Datasets.Submarine.hub_node net city with
        | Some id -> [ id ]
        | None -> []
      else Datasets.Submarine.nodes_in_country net name)
    names
  |> List.sort_uniq Int.compare

let cables_between net group_a group_b =
  let in_a = Hashtbl.create 64 and in_b = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace in_a n ()) group_a;
  List.iter (fun n -> Hashtbl.replace in_b n ()) group_b;
  let out = ref [] in
  for c = 0 to Infra.Network.nb_cables net - 1 do
    let cable = Infra.Network.cable net c in
    let lands tbl = List.exists (Hashtbl.mem tbl) cable.Infra.Cable.landings in
    if lands in_a && lands in_b then out := cable :: !out
  done;
  List.rev !out

let long_haul_cables net group_a min_len =
  let in_a = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace in_a n ()) group_a;
  let out = ref [] in
  for c = 0 to Infra.Network.nb_cables net - 1 do
    let cable = Infra.Network.cable net c in
    if cable.Infra.Cable.length_km >= min_len
       && List.exists (Hashtbl.mem in_a) cable.Infra.Cable.landings
    then out := cable :: !out
  done;
  List.rev !out

(* [dead] is a predicate on cable ids (see [Capacity.flow_between]). *)
let routed_lost net dead group_a group_b =
  match (group_a, group_b) with
  | [], _ | _, [] -> true
  | a0 :: _, _ ->
      let g = Infra.Network.graph_surviving net ~dead in
      let reach = Netgraph.Traversal.reachable_set g a0 in
      (* All of group_a is connected in the baseline (single fabric), so
         testing from one representative suffices for loss of the whole
         group; we check every b. *)
      not (List.exists (fun b -> Hashtbl.mem reach b) group_b)

let evaluate ?(trials = 50) ?(seed = 23) ?(spacing_km = 150.0) ?jobs net spec =
  let group_a = resolve_group net spec.group_a in
  let group_b = resolve_group net spec.group_b in
  let watched =
    match spec.metric with
    | Direct_loss -> cables_between net group_a group_b
    | Long_haul_isolated min_len -> long_haul_cables net group_a min_len
    | Routed_loss -> []
  in
  let plan = Plan.compile ~spacing_km ~network:net ~model:spec.state () in
  let losses =
    Plan.run_trials_par ?jobs plan ~trials ~seed:(seed + Hashtbl.hash spec.id) ~init:0
      ~map:(fun ~rng:_ ~dead ->
        match spec.metric with
        | Direct_loss | Long_haul_isolated _ ->
            watched = []
            || List.for_all
                 (fun (c : Infra.Cable.t) -> Deadset.get dead c.Infra.Cable.id)
                 watched
        | Routed_loss -> routed_lost net (Deadset.get dead) group_a group_b)
      ~merge:(fun losses lost -> if lost then losses + 1 else losses)
  in
  {
    spec;
    loss_probability = float_of_int losses /. float_of_int trials;
    direct_cables = List.length watched;
  }

let run_all ?trials ?seed ?spacing_km ?jobs net =
  List.map (evaluate ?trials ?seed ?spacing_km ?jobs net) paper_case_studies
