type t = {
  network : Infra.Network.t;
  model : Failure_model.t;
  spacing_km : float;
  per_repeater : float array;
  death : float array;
  per_repeater_fn : Infra.Cable.t -> float;
      (* kept for [sample_recompute_into], the legacy reference path *)
}

let compiles = Obs.Metrics.counter "plan.compiles"
let trials_total = Obs.Metrics.counter "plan.trials"

let compile ?(spacing_km = 150.0) ~network ~model () =
  if spacing_km <= 0.0 then invalid_arg "Plan.compile: spacing_km <= 0";
  Obs.Metrics.incr compiles;
  Obs.Span.with_ ~name:"plan.compile" @@ fun () ->
  let per_repeater_fn = Failure_model.compile model ~network in
  let m = Infra.Network.nb_cables network in
  let per_repeater = Array.make m 0.0 in
  let death = Array.make m 0.0 in
  for c = 0 to m - 1 do
    let cable = Infra.Network.cable network c in
    let p = per_repeater_fn cable in
    per_repeater.(c) <- p;
    death.(c) <- Failure_model.cable_death_prob ~per_repeater:p ~spacing_km cable
  done;
  { network; model; spacing_km; per_repeater; death; per_repeater_fn }

let network t = t.network
let model t = t.model
let spacing_km t = t.spacing_km
let nb_cables t = Array.length t.death
let death_prob t c = t.death.(c)
let per_repeater_prob t c = t.per_repeater.(c)

let sample_into t rng dead =
  let m = Array.length t.death in
  if Array.length dead <> m then invalid_arg "Plan.sample_into: buffer size mismatch";
  Obs.Metrics.incr trials_total;
  for c = 0 to m - 1 do
    dead.(c) <- Rng.bernoulli rng ~p:t.death.(c)
  done

let sample t rng =
  let dead = Array.make (Array.length t.death) false in
  sample_into t rng dead;
  dead

let sample_recompute_into t rng dead =
  let m = Infra.Network.nb_cables t.network in
  if Array.length dead <> m then
    invalid_arg "Plan.sample_recompute_into: buffer size mismatch";
  for c = 0 to m - 1 do
    let cable = Infra.Network.cable t.network c in
    let p =
      Failure_model.cable_death_prob ~per_repeater:(t.per_repeater_fn cable)
        ~spacing_km:t.spacing_km cable
    in
    dead.(c) <- Rng.bernoulli rng ~p
  done

let expected_cables_failed_pct t =
  let m = Array.length t.death in
  if m = 0 then 0.0
  else begin
    let sum = ref 0.0 in
    for c = 0 to m - 1 do
      sum := !sum +. t.death.(c)
    done;
    100.0 *. !sum /. float_of_int m
  end

let run_trials t ~trials ~seed ~init ~f =
  if trials <= 0 then invalid_arg "Plan.run_trials: trials <= 0";
  Obs.Span.with_ ~name:"plan.run_trials" @@ fun () ->
  Obs.Progress.start ~label:"trials" ~total:trials;
  let master = Rng.create seed in
  let dead = Array.make (Array.length t.death) false in
  let acc = ref init in
  for _ = 1 to trials do
    let rng = Rng.split master in
    sample_into t rng dead;
    acc := f !acc ~rng ~dead;
    Obs.Progress.tick ()
  done;
  Obs.Progress.finish ();
  !acc

let par_runs = Obs.Metrics.counter "plan.par_runs"

let run_trials_par t ?jobs ~trials ~seed ~init ~map ~merge =
  if trials <= 0 then invalid_arg "Plan.run_trials_par: trials <= 0";
  let jobs =
    match jobs with
    | None -> Exec.default_jobs ()
    | Some j -> if j <= 0 then invalid_arg "Plan.run_trials_par: jobs <= 0" else j
  in
  Obs.Metrics.incr par_runs;
  Obs.Span.with_ ~name:"plan.run_trials" @@ fun () ->
  (* Determinism, part 1 — sequential pre-split: every trial RNG is split
     off the master on the calling domain, in trial order, exactly as the
     sequential [run_trials] loop interleaves them.  The master only
     advances through splits (sampling draws from the trial RNGs), so the
     per-trial streams are bit-identical to the sequential engine's. *)
  let master = Rng.create seed in
  let rngs = Array.make trials master in
  for i = 0 to trials - 1 do
    rngs.(i) <- Rng.split master
  done;
  let m = Array.length t.death in
  let results = Array.make trials None in
  Obs.Progress.start ~label:"trials" ~total:trials;
  Exec.parallel_for ~jobs ~n:trials (fun ~lo ~hi ->
      (* One dead buffer per claimed chunk: worker-owned, so [map] sees
         the same reused-buffer contract as [run_trials]'s [f]. *)
      let dead = Array.make m false in
      for i = lo to hi - 1 do
        sample_into t rngs.(i) dead;
        results.(i) <- Some (map ~rng:rngs.(i) ~dead);
        Obs.Progress.tick ()
      done);
  (* Determinism, part 2 — ordered merge: fold in trial order regardless
     of which domain produced which result, so [~jobs:1] and [~jobs:n]
     accumulate (floats included) in the same sequence. *)
  let acc = ref init in
  for i = 0 to trials - 1 do
    match results.(i) with
    | Some v -> acc := merge !acc v
    | None -> assert false (* parallel_for covers [0, trials) *)
  done;
  Obs.Progress.finish ();
  !acc
