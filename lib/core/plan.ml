type t = {
  network : Infra.Network.t;
  model : Failure_model.t;
  spacing_km : float;
  per_repeater : float array;
  death : float array;
  death_max : float; (* max of [death]: the skip-sampler's envelope *)
  per_repeater_fn : Infra.Cable.t -> float;
      (* kept for [sample_recompute_into], the legacy reference path *)
  (* Node→cable incidence in CSR form, computed eagerly at compile time
     (a lazily published mutable field would be a data race under the
     OCaml 5 memory model once worker domains read it).  Lets
     [unreachable_attached_pct] walk each attached node's incident
     cables with early exit instead of allocating two bool arrays and
     chasing landing lists per trial. *)
  node_off : int array; (* length nb_nodes + 1 *)
  node_cables : int array; (* incident cable ids, grouped per node *)
  attached : int; (* nodes with >= 1 incident cable *)
}

let compiles = Obs.Metrics.counter "plan.compiles"
let trials_total = Obs.Metrics.counter "plan.trials"

let compile ?(spacing_km = 150.0) ~network ~model () =
  if spacing_km <= 0.0 then invalid_arg "Plan.compile: spacing_km <= 0";
  Obs.Metrics.incr compiles;
  Obs.Span.with_ ~name:"plan.compile" @@ fun () ->
  let per_repeater_fn = Failure_model.compile model ~network in
  let m = Infra.Network.nb_cables network in
  let per_repeater = Array.make m 0.0 in
  let death = Array.make m 0.0 in
  let death_max = ref 0.0 in
  for c = 0 to m - 1 do
    let cable = Infra.Network.cable network c in
    let p = per_repeater_fn cable in
    per_repeater.(c) <- p;
    let d = Failure_model.cable_death_prob ~per_repeater:p ~spacing_km cable in
    death.(c) <- d;
    if d > !death_max then death_max := d
  done;
  (* CSR incidence: two passes — per-node degree, prefix sum, fill. *)
  let n = Infra.Network.nb_nodes network in
  let deg = Array.make n 0 in
  for c = 0 to m - 1 do
    List.iter
      (fun l -> deg.(l) <- deg.(l) + 1)
      (Infra.Network.cable network c).Infra.Cable.landings
  done;
  let node_off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    node_off.(v + 1) <- node_off.(v) + deg.(v)
  done;
  let node_cables = Array.make node_off.(n) 0 in
  let cursor = Array.copy node_off in
  for c = 0 to m - 1 do
    List.iter
      (fun l ->
        node_cables.(cursor.(l)) <- c;
        cursor.(l) <- cursor.(l) + 1)
      (Infra.Network.cable network c).Infra.Cable.landings
  done;
  let attached = Array.fold_left (fun acc d -> if d > 0 then acc + 1 else acc) 0 deg in
  {
    network;
    model;
    spacing_km;
    per_repeater;
    death;
    death_max = !death_max;
    per_repeater_fn;
    node_off;
    node_cables;
    attached;
  }

let network t = t.network
let model t = t.model
let spacing_km t = t.spacing_km
let nb_cables t = Array.length t.death
let death_prob t c = t.death.(c)
let per_repeater_prob t c = t.per_repeater.(c)

let check_buffer name t dead =
  if Deadset.length dead <> Array.length t.death then
    invalid_arg (name ^ ": buffer size mismatch")

(* The uncounted kernels: no metrics traffic at all; they return the
   number of raw RNG draws made so callers can settle [rng.draws] in one
   batched [Rng.note_draws] per trial (or per chunk, in the parallel
   driver). *)

let sample_exact_raw t rng dead =
  Deadset.clear dead;
  let death = t.death in
  (* The batched sweep keeps the generator state in unboxed locals —
     per-draw [Raw.bernoulli] calls cost ~10 words of Int64 boxes each,
     which at one draw per cable per trial was most of the trial loop's
     allocation (and, under many domains, its minor-GC barriers). *)
  Rng.Raw.fill_bernoulli rng death ~set:(fun c -> Deadset.unsafe_set_dead dead c);
  Array.length death

(* Geometric skip-sampling under the envelope [p_max = death_max]: draw
   the gap to the next *candidate* cable from Geometric(p_max) — in the
   sparse-failure regime almost every cable survives, so we sample the
   gaps instead of every cable — then thin the candidate to its true
   probability by accepting with [death.(c) / p_max].  Marginally each
   cable dies with exactly [death.(c)], independently; the *draw order*
   differs from the exact kernel, which is why this mode is opt-in with
   its own golden hashes. *)
let sample_skip_raw t rng dead =
  Deadset.clear dead;
  let death = t.death in
  let m = Array.length death in
  let p_max = t.death_max in
  if p_max <= 0.0 then 0 (* nothing can die; no draws *)
  else if p_max >= 1.0 then
    (* Degenerate envelope: every cable is a candidate (log (1 - p_max)
       is -inf), so gap draws are pure overhead — thin directly. *)
    sample_exact_raw t rng dead
  else begin
    let q = log1p (-.p_max) in (* ln (1 - p_max) < 0 *)
    let draws = ref 0 in
    let c = ref 0 in
    while !c < m do
      let u = Rng.Raw.next_float53 rng in
      incr draws;
      (* floor (ln u / ln (1-p)) is Geometric(p) on {0, 1, ...}; u = 0
         (possible: 53-bit grid) means an infinite gap — no candidate
         left in range. *)
      if u = 0.0 then c := m
      else begin
        let gap = log u /. q in
        if gap >= float_of_int (m - !c) then c := m
        else begin
          c := !c + int_of_float gap;
          let pc = Array.unsafe_get death !c in
          if pc > 0.0 then begin
            incr draws;
            if Rng.Raw.next_float53 rng *. p_max < pc then Deadset.unsafe_set_dead dead !c
          end;
          incr c
        end
      end
    done;
    !draws
  end

let sample_into t rng dead =
  check_buffer "Plan.sample_into" t dead;
  Obs.Metrics.incr trials_total;
  Rng.note_draws (sample_exact_raw t rng dead)

let sample_skip_into t rng dead =
  check_buffer "Plan.sample_skip_into" t dead;
  Obs.Metrics.incr trials_total;
  Rng.note_draws (sample_skip_raw t rng dead)

let sample t rng =
  let dead = Deadset.create (Array.length t.death) in
  sample_into t rng dead;
  dead

let sample_recompute_into t rng dead =
  check_buffer "Plan.sample_recompute_into" t dead;
  let m = Infra.Network.nb_cables t.network in
  for c = 0 to m - 1 do
    let cable = Infra.Network.cable t.network c in
    let p =
      Failure_model.cable_death_prob ~per_repeater:(t.per_repeater_fn cable)
        ~spacing_km:t.spacing_km cable
    in
    Deadset.set dead c (Rng.bernoulli rng ~p)
  done

let unreachable_attached_pct t dead =
  check_buffer "Plan.unreachable_attached_pct" t dead;
  if t.attached = 0 then 0.0
  else begin
    let off = t.node_off and cables = t.node_cables in
    let n = Array.length off - 1 in
    let unreachable = ref 0 in
    for v = 0 to n - 1 do
      let s = Array.unsafe_get off v and e = Array.unsafe_get off (v + 1) in
      if e > s then begin
        (* Early exit on the first live cable: in the common regime most
           nodes keep a live cable within their first few incidences.
           A while loop, not a local rec — the closure capture allocated
           per node and this runs once per node per trial. *)
        let i = ref s in
        while !i < e && Deadset.unsafe_get dead (Array.unsafe_get cables !i) do
          incr i
        done;
        if !i = e then incr unreachable
      end
    done;
    100.0 *. float_of_int !unreachable /. float_of_int t.attached
  end

let expected_cables_failed_pct t =
  let m = Array.length t.death in
  if m = 0 then 0.0
  else begin
    let sum = ref 0.0 in
    for c = 0 to m - 1 do
      sum := !sum +. t.death.(c)
    done;
    100.0 *. !sum /. float_of_int m
  end

let run_trials ?(sampling = `Exact) t ~trials ~seed ~init ~f =
  if trials <= 0 then invalid_arg "Plan.run_trials: trials <= 0";
  Obs.Span.with_ ~name:"plan.run_trials" @@ fun () ->
  let progress = Obs.Progress.start ~label:"trials" ~total:trials in
  let master = Rng.create seed in
  let dead = Deadset.create (Array.length t.death) in
  let acc = ref init in
  for _ = 1 to trials do
    let rng = Rng.split master in
    (match sampling with
    | `Exact -> sample_into t rng dead
    | `Skip -> sample_skip_into t rng dead);
    acc := f !acc ~rng ~dead;
    Obs.Progress.tick progress
  done;
  Obs.Progress.finish progress;
  !acc

let par_runs = Obs.Metrics.counter "plan.par_runs"

let run_trials_par ?jobs ?(sampling = `Exact) t ~trials ~seed ~init ~map ~merge =
  if trials <= 0 then invalid_arg "Plan.run_trials_par: trials <= 0";
  let jobs =
    match jobs with
    | None -> Exec.default_jobs ()
    | Some j -> if j <= 0 then invalid_arg "Plan.run_trials_par: jobs <= 0" else j
  in
  Obs.Metrics.incr par_runs;
  Obs.Span.with_ ~name:"plan.run_trials" @@ fun () ->
  (* Determinism, part 1 — indexed splits: trial [i] draws from
     [Rng.split_ith master i], the exact stream the sequential engine's
     i-th [Rng.split master] yields, computed without mutating the
     master.  No pre-split pass, no array of [trials] generators: a
     worker derives any trial's stream from two integers. *)
  let master = Rng.create seed in
  let m = Array.length t.death in
  (* [Exec.parallel_for] inlines [jobs = 1] as a single [body ~lo:0
     ~hi:trials] call that ignores [~chunk]; pinning [chunk = trials]
     there keeps [chunk_results] at exactly one slot either way. *)
  let chunk = if jobs = 1 then trials else Int.max 1 (trials / (8 * jobs)) in
  let nchunks = (trials + chunk - 1) / chunk in
  (* Per-chunk result accumulators, one owned array per claimed chunk:
     no per-trial [Some] boxing, and workers never store into adjacent
     slots of a shared results array (false sharing) — a chunk's array
     is touched by exactly one domain until the ordered merge below. *)
  let chunk_results = Array.make nchunks [||] in
  let progress = Obs.Progress.start ~label:"trials" ~total:trials in
  Exec.parallel_for ~chunk ~jobs ~n:trials (fun ~lo ~hi ->
      (* One dead buffer per claimed chunk: worker-owned, so [map] sees
         the same reused-buffer contract as [run_trials]'s [f].  Counter
         updates are batched per chunk — the sequential engine pays one
         counted draw per split plus [m] per exact sample, so credit
         exactly that many raw draws here to keep totals identical. *)
      let dead = Deadset.create m in
      let draws = ref 0 in
      let run_one i =
        let rng = Rng.split_ith master i in
        incr draws;
        draws :=
          !draws
          + (match sampling with
            | `Exact -> sample_exact_raw t rng dead
            | `Skip -> sample_skip_raw t rng dead);
        map ~rng ~dead
      in
      let count = hi - lo in
      let out = Array.make count (run_one lo) in
      for k = 1 to count - 1 do
        out.(k) <- run_one (lo + k)
      done;
      chunk_results.(lo / chunk) <- out;
      Rng.note_draws !draws;
      Obs.Metrics.add trials_total count;
      Obs.Progress.tick ~n:count progress);
  (* Determinism, part 2 — ordered merge: fold in trial order regardless
     of which domain produced which chunk, so [~jobs:1] and [~jobs:n]
     accumulate (floats included) in the same sequence. *)
  let acc = ref init in
  for ci = 0 to nchunks - 1 do
    let out = chunk_results.(ci) in
    for k = 0 to Array.length out - 1 do
      acc := merge !acc out.(k)
    done
  done;
  Obs.Progress.finish progress;
  !acc
