type t = {
  network : Infra.Network.t;
  model : Failure_model.t;
  spacing_km : float;
  per_repeater : float array;
  death : float array;
  per_repeater_fn : Infra.Cable.t -> float;
      (* kept for [sample_recompute_into], the legacy reference path *)
}

let compiles = Obs.Metrics.counter "plan.compiles"
let trials_total = Obs.Metrics.counter "plan.trials"

let compile ?(spacing_km = 150.0) ~network ~model () =
  if spacing_km <= 0.0 then invalid_arg "Plan.compile: spacing_km <= 0";
  Obs.Metrics.incr compiles;
  Obs.Span.with_ ~name:"plan.compile" @@ fun () ->
  let per_repeater_fn = Failure_model.compile model ~network in
  let m = Infra.Network.nb_cables network in
  let per_repeater = Array.make m 0.0 in
  let death = Array.make m 0.0 in
  for c = 0 to m - 1 do
    let cable = Infra.Network.cable network c in
    let p = per_repeater_fn cable in
    per_repeater.(c) <- p;
    death.(c) <- Failure_model.cable_death_prob ~per_repeater:p ~spacing_km cable
  done;
  { network; model; spacing_km; per_repeater; death; per_repeater_fn }

let network t = t.network
let model t = t.model
let spacing_km t = t.spacing_km
let nb_cables t = Array.length t.death
let death_prob t c = t.death.(c)
let per_repeater_prob t c = t.per_repeater.(c)

let sample_into t rng dead =
  let m = Array.length t.death in
  if Array.length dead <> m then invalid_arg "Plan.sample_into: buffer size mismatch";
  Obs.Metrics.incr trials_total;
  for c = 0 to m - 1 do
    dead.(c) <- Rng.bernoulli rng ~p:t.death.(c)
  done

let sample t rng =
  let dead = Array.make (Array.length t.death) false in
  sample_into t rng dead;
  dead

let sample_recompute_into t rng dead =
  let m = Infra.Network.nb_cables t.network in
  if Array.length dead <> m then
    invalid_arg "Plan.sample_recompute_into: buffer size mismatch";
  for c = 0 to m - 1 do
    let cable = Infra.Network.cable t.network c in
    let p =
      Failure_model.cable_death_prob ~per_repeater:(t.per_repeater_fn cable)
        ~spacing_km:t.spacing_km cable
    in
    dead.(c) <- Rng.bernoulli rng ~p
  done

let expected_cables_failed_pct t =
  let m = Array.length t.death in
  if m = 0 then 0.0
  else begin
    let sum = ref 0.0 in
    for c = 0 to m - 1 do
      sum := !sum +. t.death.(c)
    done;
    100.0 *. !sum /. float_of_int m
  end

let run_trials t ~trials ~seed ~init ~f =
  if trials <= 0 then invalid_arg "Plan.run_trials: trials <= 0";
  let master = Rng.create seed in
  let dead = Array.make (Array.length t.death) false in
  let acc = ref init in
  for _ = 1 to trials do
    let rng = Rng.split master in
    sample_into t rng dead;
    acc := f !acc ~rng ~dead
  done;
  !acc
