(** Post-storm repair and economic impact (§3.2.2, §5.5).

    A submarine repair requires locating the fault from the landing
    stations, sailing a cable ship out and splicing — days to weeks per
    fault, with a worldwide fleet of only a few tens of ships.  A
    superstorm breaks hundreds of cables at once, each possibly at many
    repeaters, so restoration is a queueing problem.  Economic impact uses
    the paper's $7 B/day figure for a US-wide outage, scaled by the dark
    fraction. *)

type params = {
  ships : int;  (** worldwide repair fleet (default 60) *)
  base_repair_days : float;  (** locate + splice one fault (10) *)
  transit_days_per_1000km : float;  (** sailing to the fault (1.5) *)
  faults_per_10_repeaters : float;
      (** damaged repeaters needing separate splices per 10 repeaters (1) *)
}

val default_params : params

type timeline = {
  days_to_50_pct : float;  (** half the dead cables restored *)
  days_to_90_pct : float;
  days_to_full : float;
  series : (float * float) list;  (** (day, fraction of cables restored) *)
  total_ship_days : float;
}

val plan :
  ?params:params ->
  network:Infra.Network.t ->
  dead:bool array ->
  unit ->
  timeline
(** Greedy schedule: ships always take the shortest remaining job
    (restores cable count fastest, like real triage toward
    single-fault cables).  Fully deterministic — the schedule is a pure
    function of [params] and [dead]; it draws no randomness (an earlier
    version advertised a [?seed] it silently ignored).
    @raise Invalid_argument on array size mismatch or non-positive
    fleet. *)

val us_outage_cost_usd :
  dark_fraction:float -> days:float -> float
(** [7e9 × dark_fraction × days] — the paper's §1 figure linearly
    scaled. *)

val storm_recovery :
  ?trials:int ->
  ?seed:int ->
  ?spacing_km:float ->
  ?jobs:int ->
  network:Infra.Network.t ->
  model:Failure_model.t ->
  unit ->
  timeline * float
(** Average repair timeline over storm trials, plus the mean number of
    dead cables per trial.  Trials run through {!Plan.run_trials_par}:
    deterministic in [seed] for any [jobs]. *)
