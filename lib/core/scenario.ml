type impact = {
  network : string;
  model : Failure_model.t;
  cables_failed_pct : float;
  nodes_unreachable_pct : float;
}

type t = {
  cme : Spaceweather.Cme.t;
  dst_nt : float;
  severity : Spaceweather.Dst.severity;
  timeline : Spaceweather.Forecast.timeline;
  impacts : impact list;
}

let model_for_severity sev =
  let open Spaceweather.Dst in
  match sev with
  | Carrington -> Failure_model.s1
  | Extreme | Severe -> Failure_model.s2
  | Intense -> Failure_model.tiered ~high:0.01 ~mid:0.001 ~low:0.0001
  | Moderate | Minor | Quiet ->
      Failure_model.tiered ~high:0.001 ~mid:0.0001 ~low:0.00001

let impact_of ?(trials = 10) ?jobs ~seed ~spacing_km ~model (name, net) =
  let plan = Plan.compile ~spacing_km ~network:net ~model () in
  let series = Montecarlo.run_plan ~trials ?jobs ~seed plan in
  {
    network = name;
    model;
    cables_failed_pct = series.Montecarlo.cables_mean;
    nodes_unreachable_pct = series.Montecarlo.nodes_mean;
  }

let run ?(trials = 10) ?(seed = 17) ?(spacing_km = 150.0) ?(use_physical = false)
    ?jobs ~cme ~networks () =
  let dst_nt = Spaceweather.Cme.expected_dst cme in
  let severity = Spaceweather.Dst.severity_of_dst dst_nt in
  let timeline = Spaceweather.Forecast.timeline cme in
  let model = model_for_severity severity in
  let probabilistic =
    List.map (impact_of ~trials ?jobs ~seed ~spacing_km ~model) networks
  in
  let physical =
    if not use_physical then []
    else
      let model = Failure_model.Gic_physical { dst_nt; scale_a = 30.0 } in
      List.map (impact_of ~trials ?jobs ~seed:(seed + 1) ~spacing_km ~model) networks
  in
  { cme; dst_nt; severity; timeline; impacts = probabilistic @ physical }

let historical ~name ~networks =
  match Spaceweather.Storm_catalog.find name with
  | None -> None
  | Some event ->
      Some (run ~cme:event.Spaceweather.Storm_catalog.cme ~networks ())

let pp ppf t =
  Format.fprintf ppf "@[<v>CME %.0f km/s -> Dst %.0f nT (%s)@,%a@,"
    t.cme.Spaceweather.Cme.speed_km_s t.dst_nt
    (Spaceweather.Dst.severity_to_string t.severity)
    Spaceweather.Forecast.pp_timeline t.timeline;
  List.iter
    (fun i ->
      Format.fprintf ppf "%-12s %-24s cables %5.1f%%  nodes %5.1f%%@," i.network
        (Failure_model.to_string i.model) i.cables_failed_pct i.nodes_unreachable_pct)
    t.impacts;
  Format.fprintf ppf "@]"
