(** Country-scale connectivity case studies (§4.3.4).

    Each finding measures, over Monte-Carlo trials of a failure state, the
    probability that two groups of landing nodes lose connectivity —
    either {e direct} (no surviving cable lands in both groups) or
    {e routed} (no surviving multi-hop path in the submarine graph) — or
    that a city keeps any long-haul cable at all.  The finding carries
    the paper's qualitative expectation for EXPERIMENTS.md. *)

type metric =
  | Direct_loss  (** every cable landing in both groups is dead *)
  | Routed_loss  (** no surviving path between the groups *)
  | Long_haul_isolated of float
      (** every cable of at least the given length landing in group A is
          dead (group B unused) *)

type spec = {
  id : string;
  description : string;
  group_a : string list;  (** country names or [city:<name>] hub selectors *)
  group_b : string list;
  metric : metric;
  state : Failure_model.t;
  state_name : string;
  expectation : string;  (** the paper's qualitative claim *)
}

type finding = {
  spec : spec;
  loss_probability : float;  (** fraction of trials the metric fired *)
  direct_cables : int;  (** cables landing in both groups (context) *)
}

val paper_case_studies : spec list
(** The §4.3.4 case studies: US coasts, China/Shanghai, India, Singapore,
    UK, South Africa, Australia/New Zealand, Brazil, Hawaii, Alaska. *)

val resolve_group : Infra.Network.t -> string list -> int list
(** Country names resolve through node country labels; ["city:Name"]
    selectors resolve through {!Datasets.Submarine.hub_node}. *)

val evaluate :
  ?trials:int ->
  ?seed:int ->
  ?spacing_km:float ->
  ?jobs:int ->
  Infra.Network.t ->
  spec ->
  finding
(** Monte-Carlo evaluation of one case study (default 50 trials,
    150 km spacing).  Trials run on {!Plan.run_trials_par}: the result
    is deterministic in [seed] for any [jobs]. *)

val run_all :
  ?trials:int -> ?seed:int -> ?spacing_km:float -> ?jobs:int ->
  Infra.Network.t -> finding list
(** Evaluate every paper case study. *)
