(* Bytes-backed bitvector: 1 bit per cable instead of [bool array]'s
   byte (plus header) — an 8× smaller per-trial footprint, a memset
   [clear], and a table-driven popcount for the failed-cable count the
   drivers take after every trial.  The trial kernel clears and then
   sets bits only for deaths, so the common (surviving) cable costs no
   write at all. *)

type t = { bits : Bytes.t; length : int }

let create length =
  if length < 0 then invalid_arg "Deadset.create: length < 0";
  { bits = Bytes.make ((length + 7) lsr 3) '\000'; length }

let length t = t.length

let clear t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'

let unsafe_get t i =
  Char.code (Bytes.unsafe_get t.bits (i lsr 3)) lsr (i land 7) land 1 = 1

let get t i =
  if i < 0 || i >= t.length then invalid_arg "Deadset.get: index out of bounds";
  unsafe_get t i

let unsafe_set_dead t i =
  let b = i lsr 3 in
  Bytes.unsafe_set t.bits b
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.bits b) lor (1 lsl (i land 7))))

let set_dead t i =
  if i < 0 || i >= t.length then invalid_arg "Deadset.set_dead: index out of bounds";
  unsafe_set_dead t i

let set t i v =
  if i < 0 || i >= t.length then invalid_arg "Deadset.set: index out of bounds";
  let b = i lsr 3 in
  let mask = 1 lsl (i land 7) in
  let byte = Char.code (Bytes.unsafe_get t.bits b) in
  Bytes.unsafe_set t.bits b
    (Char.unsafe_chr (if v then byte lor mask else byte land lnot mask))

let popcount8 =
  Array.init 256 (fun i ->
      let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + (n land 1)) in
      go i 0)

let count_dead t =
  (* Bits past [length] are never set ([set]/[set_dead] bounds-check, the
     kernel writes only cable indices), so whole-byte popcounts are
     exact. *)
  let acc = ref 0 in
  for b = 0 to Bytes.length t.bits - 1 do
    acc := !acc + Array.unsafe_get popcount8 (Char.code (Bytes.unsafe_get t.bits b))
  done;
  !acc

let to_bool_array t = Array.init t.length (unsafe_get t)

let of_bool_array a =
  let t = create (Array.length a) in
  Array.iteri (fun i v -> if v then unsafe_set_dead t i) a;
  t
