let run_cables ?(trials = 10) ?jobs ~network ~model () =
  (Montecarlo.run ~trials ?jobs ~seed:61 ~network ~spacing_km:150.0 ~model ())
    .Montecarlo.cables_mean

let threshold_sweep ?(trials = 10) ?(thresholds = [ 30.0; 35.0; 40.0; 45.0; 50.0 ])
    ?jobs ~network () =
  List.map
    (fun mid ->
      let model =
        Failure_model.Latitude_tiered
          { high = 1.0; mid = 0.1; low = 0.01; mid_threshold = mid;
            high_threshold = mid +. 20.0 }
      in
      (mid, run_cables ~trials ?jobs ~network ~model ()))
    thresholds

let geographic_vs_geomagnetic ?(trials = 10) ?jobs ~network () =
  [
    ( "S1",
      run_cables ~trials ?jobs ~network ~model:Failure_model.s1 (),
      run_cables ~trials ?jobs ~network ~model:Failure_model.s1_geomag () );
    ( "S2",
      run_cables ~trials ?jobs ~network ~model:Failure_model.s2 (),
      run_cables ~trials ?jobs ~network ~model:Failure_model.s2_geomag () );
  ]

let spacing_sweep ?(trials = 10)
    ?(spacings = [ 50.0; 75.0; 100.0; 125.0; 150.0; 175.0; 200.0 ]) ?jobs ~network
    ~model () =
  List.map
    (fun spacing_km ->
      let s = Montecarlo.run ~trials ?jobs ~seed:67 ~network ~spacing_km ~model () in
      (spacing_km, s.Montecarlo.cables_mean))
    spacings

let seed_sensitivity ?(seeds = [ 1; 2; 3; 4; 5 ]) ?(trials = 10) ?jobs ~probability () =
  let values =
    List.map
      (fun seed ->
        let network = Datasets.Submarine.build ~seed () in
        run_cables ~trials ?jobs ~network
          ~model:(Failure_model.uniform probability) ())
      seeds
  in
  Stats.mean_stddev values

let scale_a_sweep ?(scales = [ 5.0; 10.0; 20.0; 30.0; 60.0; 120.0 ]) ~network ~dst_nt () =
  List.map
    (fun scale_a ->
      let model = Failure_model.Gic_physical { dst_nt; scale_a } in
      ( scale_a,
        Montecarlo.expected_cables_failed_pct ~network ~spacing_km:150.0 ~model ))
    scales
