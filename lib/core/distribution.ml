type pdf_series = { label : string; points : (float * float) list }
type threshold_series = { label : string; points : (float * float) list }
type cdf_series = { label : string; points : (float * float) list }

let pdf_of_items ~label items : pdf_series =
  let h = Geo.Latband.histogram ~bin_deg:2.0 items in
  { label; points = Geo.Latband.pdf h }

let fig3 ~submarine =
  [
    pdf_of_items ~label:"Population" (Datasets.Population.latitude_weights ~bin_deg:2.0);
    pdf_of_items ~label:"Submarine endpoints" (Infra.Network.endpoint_latitudes submarine);
  ]

let threshold_of_items ~label items =
  ({ label; points = Geo.Latband.threshold_curve items } : threshold_series)

let one_hop_series submarine =
  (* For each threshold: endpoints above it, plus endpoints below it with a
     direct cable to a node above it (Fig. 4a's "one-hop endpoints"). *)
  let lats = Infra.Network.endpoint_latitudes submarine in
  let total = float_of_int (List.length lats) in
  let points =
    List.map
      (fun th ->
        let above =
          List.length (List.filter (fun (l, _) -> Float.abs l > th) lats)
        in
        let one_hop = List.length (Infra.Network.one_hop_endpoints submarine ~threshold:th) in
        (th, 100.0 *. float_of_int (above + one_hop) /. total))
      [ 0.; 10.; 20.; 30.; 40.; 50.; 60.; 70.; 80.; 90. ]
  in
  ({ label = "One-hop endpoints"; points } : threshold_series)

let fig4a ~submarine ~intertubes =
  [
    threshold_of_items ~label:"Submarine endpoints"
      (Infra.Network.endpoint_latitudes submarine);
    one_hop_series submarine;
    threshold_of_items ~label:"Intertubes endpoints"
      (Infra.Network.endpoint_latitudes intertubes);
    threshold_of_items ~label:"Population"
      (Datasets.Population.latitude_weights ~bin_deg:2.0);
  ]

let fig4b ~routers ~ixps ~dns =
  [
    threshold_of_items ~label:"Internet routers"
      (Array.to_list (Array.map (fun l -> (l, 1.0)) routers));
    threshold_of_items ~label:"IXPs" (Datasets.Ixp.latitudes ixps);
    threshold_of_items ~label:"DNS root servers" (Datasets.Dns_roots.latitudes dns);
    threshold_of_items ~label:"Population"
      (Datasets.Population.latitude_weights ~bin_deg:2.0);
  ]

let cdf_of_network ~label net =
  ({ label; points = Stats.cdf_points (Infra.Network.cable_lengths net) } : cdf_series)

let fig5 ~submarine ~intertubes ~itu =
  [
    cdf_of_network ~label:"ITU (global, land)" itu;
    cdf_of_network ~label:"Intertubes (US, land)" intertubes;
    cdf_of_network ~label:"Submarine (global)" submarine;
  ]

let mass_above (s : pdf_series) ~threshold =
  (* Trapezoid-style mass estimate with per-point bin widths derived from
     the sample grid itself: interior points span half the gap to each
     neighbour, edge points the single adjacent gap.  On a uniform grid
     this reduces to (density x bin width) per point. *)
  let points = Array.of_list s.points in
  let n = Array.length points in
  let width i =
    let x j = fst points.(j) in
    if n <= 1 then 0.0
    else if i = 0 then x 1 -. x 0
    else if i = n - 1 then x (n - 1) -. x (n - 2)
    else (x (i + 1) -. x (i - 1)) /. 2.0
  in
  let acc = ref 0.0 in
  Array.iteri
    (fun i (lat, d) -> if Float.abs lat > threshold then acc := !acc +. (d *. width i))
    points;
  !acc

let fraction_above (s : threshold_series) th =
  (* Piecewise-linear interpolation over the threshold curve. *)
  let rec scan = function
    | (t1, v1) :: ((t2, v2) :: _ as rest) ->
        if th < t1 then v1
        else if th <= t2 then v1 +. ((th -. t1) /. (t2 -. t1) *. (v2 -. v1))
        else scan rest
    | [ (_, v) ] -> v
    | [] -> 0.0
  in
  scan s.points
