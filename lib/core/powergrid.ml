type region = {
  name : string;
  countries : string list;
  reference : Geo.Coord.t;
  gic_vulnerability : float;
}

let r name countries lat lon gic_vulnerability =
  { name; countries; reference = Geo.Coord.make ~lat ~lon; gic_vulnerability }

let world_regions =
  [
    (* The three US interconnects of the paper's §5.5 example, plus
       Canada split out for Quebec 1989. *)
    r "US-Eastern" [ "United States" ] 41.0 (-78.0) 1.2;
    r "US-Western" [ "United States" ] 40.0 (-112.0) 1.0;
    r "ERCOT-Texas" [ "United States" ] 31.0 (-98.0) 0.8;
    r "Canada" [ "Canada" ] 50.0 (-75.0) 1.5;
    r "Central America" [ "Mexico"; "Guatemala"; "El Salvador"; "Honduras"; "Nicaragua";
                          "Costa Rica"; "Panama"; "Cuba"; "Jamaica"; "Dominican Republic";
                          "Puerto Rico"; "US Virgin Islands"; "Bahamas"; "Barbados"; "Curacao"; "Haiti";
                          "Belize" ]
      19.0 (-95.0) 0.7;
    r "South America" [ "Brazil"; "Argentina"; "Chile"; "Peru"; "Ecuador"; "Colombia";
                        "Venezuela"; "Guyana"; "Suriname"; "French Guiana"; "Uruguay";
                        "Paraguay"; "Bolivia"; "Trinidad and Tobago" ]
      (-18.0) (-55.0) 0.8;
    r "Nordic" [ "Norway"; "Sweden"; "Finland"; "Denmark"; "Iceland"; "Faroe Islands" ]
      61.0 15.0 1.5;
    r "UK-Ireland" [ "United Kingdom"; "Ireland" ] 53.0 (-2.0) 1.2;
    r "Continental Europe"
      [ "France"; "Spain"; "Portugal"; "Germany"; "Netherlands"; "Belgium"; "Switzerland";
        "Austria"; "Italy"; "Poland"; "Czechia"; "Slovakia"; "Hungary"; "Romania";
        "Bulgaria"; "Serbia"; "Croatia"; "Greece"; "Lithuania"; "Latvia"; "Estonia";
        "Malta"; "Cyprus"; "Luxembourg"; "Slovenia"; "Albania"; "North Macedonia";
        "Bosnia and Herzegovina"; "Montenegro"; "Kosovo"; "Moldova" ]
      49.0 8.0 1.0;
    r "Russia-CIS" [ "Russia"; "Ukraine"; "Belarus"; "Kazakhstan"; "Uzbekistan";
                     "Kyrgyzstan"; "Tajikistan"; "Turkmenistan"; "Georgia"; "Armenia";
                     "Azerbaijan"; "Mongolia" ]
      56.0 45.0 1.3;
    r "Middle East" [ "Turkey"; "Israel"; "Lebanon"; "Jordan"; "Syria"; "Iraq"; "Kuwait";
                      "Saudi Arabia"; "Qatar"; "Bahrain"; "United Arab Emirates"; "Oman";
                      "Yemen"; "Iran" ]
      28.0 45.0 0.7;
    r "South Asia" [ "India"; "Pakistan"; "Afghanistan"; "Nepal"; "Bhutan"; "Bangladesh";
                     "Sri Lanka"; "Maldives" ]
      22.0 78.0 0.7;
    r "East Asia" [ "China"; "Taiwan"; "Japan"; "South Korea"; "North Korea" ] 35.0 115.0 0.9;
    r "Southeast Asia" [ "Myanmar"; "Thailand"; "Vietnam"; "Cambodia"; "Laos"; "Malaysia";
                         "Singapore"; "Indonesia"; "Philippines"; "Brunei" ]
      5.0 105.0 0.6;
    r "Oceania" [ "Australia"; "New Zealand"; "Papua New Guinea"; "Fiji"; "New Caledonia";
                  "Vanuatu"; "Solomon Islands"; "Samoa"; "American Samoa"; "Tonga";
                  "Kiribati"; "Marshall Islands"; "Micronesia"; "Palau"; "Guam";
                  "Northern Mariana Islands"; "French Polynesia"; "Cook Islands" ]
      (-30.0) 145.0 0.8;
    r "Africa" [ "Egypt"; "Nigeria"; "DR Congo"; "Angola"; "South Africa"; "Kenya";
                 "Tanzania"; "Ethiopia"; "Djibouti"; "Somalia"; "Sudan"; "Ghana";
                 "Cote d'Ivoire"; "Senegal"; "Mali"; "Burkina Faso"; "Niger"; "Guinea";
                 "Sierra Leone"; "Liberia"; "Togo"; "Benin"; "Cameroon"; "Gabon"; "Congo";
                 "Equatorial Guinea"; "Mauritania"; "Morocco"; "Algeria"; "Tunisia";
                 "Libya"; "Zambia"; "Zimbabwe"; "Mozambique"; "Madagascar"; "Mauritius"; "Malawi";
                 "Chad"; "Central African Republic"; "South Sudan";
                 "Reunion"; "Seychelles"; "Comoros"; "Uganda"; "Rwanda"; "Burundi";
                 "Botswana"; "Namibia"; "Cape Verde"; "Gambia"; "Guinea-Bissau";
                 "Sao Tome and Principe" ]
      0.0 20.0 0.6;
  ]

let region_of_country country =
  List.find_opt (fun reg -> List.mem country reg.countries) world_regions

(* For US nodes the interconnect depends on longitude. *)
let region_of_node (node : Infra.Network.node) =
  if node.Infra.Network.country = "United States" then begin
    let lon = Geo.Coord.lon node.Infra.Network.pos
    and lat = Geo.Coord.lat node.Infra.Network.pos in
    let name =
      if lon < -104.0 || lat > 49.0 || lon < -140.0 then "US-Western"
      else if lat < 33.5 && lon > -104.0 && lon < -93.5 then "ERCOT-Texas"
      else "US-Eastern"
    in
    List.find_opt (fun reg -> reg.name = name) world_regions
  end
  else region_of_country node.Infra.Network.country

let failure_probability reg ~dst_nt =
  let storm = Gic.Disturbance.storm_of_dst dst_nt in
  let glat = Geo.Geomagnetic.dipole_latitude reg.reference in
  let factor = Gic.Disturbance.latitude_factor storm ~geomag_lat:glat in
  (* Strength scaling: a 1989-class storm saturates fully exposed grids
     (Quebec collapsed); weaker storms rarely topple them. *)
  let strength = Float.min 1.5 (Float.abs dst_nt /. 589.0) in
  Float.min 1.0 (factor *. strength *. reg.gic_vulnerability)

let outage_days rng reg ~dst_nt =
  (* Breaker-level events recover in hours-days; transformer damage under
     extreme storms takes months (the paper quotes up to 2 years). *)
  let severity = Float.min 2.0 (Float.abs dst_nt /. 589.0) *. reg.gic_vulnerability in
  let median = 0.5 +. (30.0 *. Float.max 0.0 (severity -. 0.5)) in
  Rng.lognormal rng ~mu:(log (Float.max 0.25 median)) ~sigma:0.8

type coupled_result = {
  cables_failed_pct : float;
  nodes_cable_dark_pct : float;
  nodes_grid_dark_pct : float;
  nodes_dark_pct : float;
  amplification : float;
  regions_down : string list;
}

let simulate ?(trials = 30) ?(seed = 31) ?(backup_days = 3.0) ?(spacing_km = 150.0)
    ~network ~model ~dst_nt () =
  Obs.Span.with_ ~name:"powergrid.simulate" @@ fun () ->
  let p = Plan.compile ~spacing_km ~network ~model () in
  let n = Infra.Network.nb_nodes network in
  let node_region =
    Array.init n (fun i -> region_of_node (Infra.Network.node network i))
  in
  let cables_acc = ref 0.0 in
  let cable_dark = ref 0.0 and grid_dark = ref 0.0 and dark = ref 0.0 in
  let region_down_count = Hashtbl.create 16 in
  Plan.run_trials p ~trials ~seed ~init:() ~f:(fun () ~rng ~dead ->
    cables_acc := !cables_acc +. Montecarlo.cables_failed_pct network dead;
    (* Grid outcomes for this trial. *)
    let grid_out = Hashtbl.create 16 in
    List.iter
      (fun reg ->
        let p = failure_probability reg ~dst_nt in
        if Rng.bernoulli rng ~p then begin
          let days = outage_days rng reg ~dst_nt in
          if days > backup_days then begin
            Hashtbl.replace grid_out reg.name ();
            Hashtbl.replace region_down_count reg.name
              (1 + Option.value ~default:0 (Hashtbl.find_opt region_down_count reg.name))
          end
        end)
      world_regions;
    (* Node darkness. *)
    let has_cable = Array.make n false and has_live = Array.make n false in
    for c = 0 to Infra.Network.nb_cables network - 1 do
      let cable = Infra.Network.cable network c in
      List.iter
        (fun l ->
          has_cable.(l) <- true;
          if not (Deadset.get dead c) then has_live.(l) <- true)
        cable.Infra.Cable.landings
    done;
    let total = ref 0 and cdark = ref 0 and gdark = ref 0 and either = ref 0 in
    for i = 0 to n - 1 do
      if has_cable.(i) then begin
        incr total;
        let cable_down = not has_live.(i) in
        let grid_down =
          match node_region.(i) with
          | Some reg -> Hashtbl.mem grid_out reg.name
          | None -> false
        in
        if cable_down then incr cdark;
        if grid_down then incr gdark;
        if cable_down || grid_down then incr either
      end
    done;
    let pct x = 100.0 *. float_of_int x /. float_of_int (Int.max 1 !total) in
    cable_dark := !cable_dark +. pct !cdark;
    grid_dark := !grid_dark +. pct !gdark;
    dark := !dark +. pct !either);
  let t = float_of_int trials in
  let cable_dark = !cable_dark /. t and grid_dark = !grid_dark /. t and dark = !dark /. t in
  {
    cables_failed_pct = !cables_acc /. t;
    nodes_cable_dark_pct = cable_dark;
    nodes_grid_dark_pct = grid_dark;
    nodes_dark_pct = dark;
    amplification = dark /. Float.max 0.1 cable_dark;
    regions_down =
      Hashtbl.fold
        (fun name count acc -> if 2 * count > trials then name :: acc else acc)
        region_down_count []
      |> List.sort String.compare;
  }
