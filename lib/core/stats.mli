(** Descriptive statistics for Monte-Carlo outputs and distribution
    figures. *)

val mean : float list -> float
(** 0 for []. *)

val stddev : float list -> float
(** {e Population} standard deviation (÷n, not the ÷(n−1) sample
    estimator); 0 for fewer than 2 samples.  The choice is load-bearing:
    every published mean±sd table was produced with ÷n, so changing the
    estimator silently shifts golden values — don't "fix" it. *)

val mean_stddev : float list -> float * float

val percentile : float list -> p:float -> float
(** Nearest-rank percentile, [p] in [[0, 100]].  @raise Invalid_argument
    on an empty list or out-of-range [p]. *)

val median : float list -> float

val cdf_points : float list -> (float * float) list
(** Empirical CDF steps [(value, fraction ≤ value)], values ascending.
    [] for []. *)

val cdf : float list -> float -> float
(** [cdf l] sorts the samples once (into an array) and returns an
    evaluator answering each probe with a binary search — partially apply
    it when sweeping many thresholds over the same samples:
    [let f = Stats.cdf samples in List.map f thresholds] is
    O(n log n + q log n) where per-probe {!cdf_at} re-walks the list. *)

val cdf_at : float list -> float -> float
(** Fraction of samples ≤ the probe value: [cdf l x] for a single probe.
    Prefer {!cdf} when probing the same samples repeatedly. *)

val histogram : float list -> lo:float -> hi:float -> bins:int -> int array
(** Counts per equal-width bin; out-of-range samples clamp to the edge
    bins.  @raise Invalid_argument if [bins <= 0] or [hi <= lo]. *)

val summary : float list -> string
(** Human-readable one-liner: mean/stddev/min/median/max. *)
