type demand = {
  from_continent : Geo.Region.continent;
  to_continent : Geo.Region.continent;
  volume : float;
}

(* Rough continent shares of Internet demand (population-weighted with a
   development factor). *)
let continent_weight =
  let open Geo.Region in
  [ (Asia, 45.0); (Europe, 15.0); (Africa, 11.0); (North_america, 8.0);
    (South_america, 6.0); (Oceania, 1.0) ]

let gravity_demands () =
  let pairs =
    let rec go = function
      | [] -> []
      | (a, wa) :: rest ->
          List.map (fun (b, wb) -> (a, b, wa *. wb)) rest @ go rest
    in
    go continent_weight
  in
  let total = List.fold_left (fun acc (_, _, v) -> acc +. v) 0.0 pairs in
  List.map
    (fun (a, b, v) ->
      { from_continent = a; to_continent = b; volume = 100.0 *. v /. total })
    pairs

type routing = {
  delivered_pct : float;
  max_cable_load : float;
  mean_cable_load : float;
  overloaded_cables : int;
}

(* Gateway: the surviving landing station of a continent with the most
   live cables. *)
let gateways network ~alive_graph =
  let best = Hashtbl.create 8 in
  for i = 0 to Infra.Network.nb_nodes network - 1 do
    let node = Infra.Network.node network i in
    let k = Geo.Region.continent_of_nearest node.Infra.Network.pos in
    let deg = Netgraph.Graph.degree alive_graph i in
    if deg > 0 then
      match Hashtbl.find_opt best k with
      | Some (_, d) when d >= deg -> ()
      | _ -> Hashtbl.replace best k (i, deg)
  done;
  best

(* [dead] is a predicate on cable ids; [route] adapts the public
   [bool array] form, the trial driver passes its bitvector directly. *)
let route_internal ?dead ?baseline_max ~network ~demands () =
  let dead = match dead with Some d -> d | None -> fun _ -> false in
  let g = Infra.Network.graph_surviving network ~dead in
  (* Edge ids of graph_without_cables are renumbered; rebuild with mapping
     via to_graph-style expansion: we need cable lengths as weights, so we
     recompute a fresh expansion with the same keep predicate. *)
  let gw = gateways network ~alive_graph:g in
  (* Edge weight: spread the cable's length over its hops. *)
  let edge_weights = Hashtbl.create 1024 in
  let edge_cable_tbl = Hashtbl.create 1024 in
  let next_edge = ref 0 in
  for c = 0 to Infra.Network.nb_cables network - 1 do
    let cable = Infra.Network.cable network c in
    if not (dead c) then begin
      let hops = Infra.Cable.hop_count cable in
      let rec walk = function
        | _ :: (_ :: _ as rest) ->
            Hashtbl.replace edge_weights !next_edge
              (cable.Infra.Cable.length_km /. float_of_int (Int.max 1 hops));
            Hashtbl.replace edge_cable_tbl !next_edge c;
            incr next_edge;
            walk rest
        | [ _ ] | [] -> ()
      in
      walk cable.Infra.Cable.landings
    end
  done;
  let weight e = Option.value ~default:1.0 (Hashtbl.find_opt edge_weights e) in
  let cable_load = Array.make (Infra.Network.nb_cables network) 0.0 in
  let delivered = ref 0.0 and total = ref 0.0 in
  List.iter
    (fun d ->
      total := !total +. d.volume;
      match (Hashtbl.find_opt gw d.from_continent, Hashtbl.find_opt gw d.to_continent) with
      | Some (a, _), Some (b, _) -> (
          match Netgraph.Paths.shortest_path g ~weight a b with
          | Some (_, path) ->
              delivered := !delivered +. d.volume;
              (* Charge the load to each cable along the path: recover the
                 edge between consecutive path nodes. *)
              let rec charge = function
                | x :: (y :: _ as rest) ->
                    (* Cheapest live edge between x and y. *)
                    let best = ref None in
                    List.iter
                      (fun (m, eid) ->
                        if m = y then
                          match !best with
                          | Some (_, w) when w <= weight eid -> ()
                          | _ -> best := Some (eid, weight eid))
                      (Netgraph.Graph.neighbors g x);
                    (match !best with
                    | Some (eid, _) -> (
                        match Hashtbl.find_opt edge_cable_tbl eid with
                        | Some c -> cable_load.(c) <- cable_load.(c) +. d.volume
                        | None -> ())
                    | None -> ());
                    charge rest
                | [ _ ] | [] -> ()
              in
              charge path
          | None -> ())
      | _ -> ())
    demands;
  let loaded = Array.to_list cable_load |> List.filter (fun l -> l > 0.0) in
  let max_load = List.fold_left Float.max 0.0 loaded in
  let mean_load = Stats.mean loaded in
  (* The overload threshold compares against the healthy network's peak
     load; when the caller didn't supply one (healthy routing), this run
     is its own baseline. *)
  let base = Option.value ~default:max_load baseline_max in
  {
    delivered_pct = (if !total <= 0.0 then 0.0 else 100.0 *. !delivered /. !total);
    max_cable_load = max_load;
    mean_cable_load = mean_load;
    overloaded_cables =
      List.length (List.filter (fun l -> l > 2.0 *. Float.max 1e-9 base) loaded);
  }

let routes = Obs.Metrics.counter "traffic.routes"

let route ?dead ?baseline_max ~network ~demands () =
  Obs.Metrics.incr routes;
  Obs.Span.with_ ~name:"traffic.route" @@ fun () ->
  (* A damaged-network call without an explicit baseline routes the
     healthy network first: the overload threshold must come from *this*
     network, never from whatever network a previous call happened to
     route (the old global memo went stale exactly that way). *)
  let baseline_max =
    match (baseline_max, dead) with
    | (Some _ as b), _ -> b
    | None, Some d when not (Array.for_all not d) ->
        Some (route_internal ~network ~demands ()).max_cable_load
    | None, _ -> None
  in
  let dead = Option.map (fun d c -> d.(c)) dead in
  route_internal ?dead ?baseline_max ~network ~demands ()

let storm_shift ?(trials = 10) ?(seed = 47) ?(spacing_km = 150.0) ?jobs ~network ~model
    () =
  let demands = gravity_demands () in
  let baseline = route ~network ~demands () in
  let p = Plan.compile ~spacing_km ~network ~model () in
  let acc =
    Plan.run_trials_par ?jobs p ~trials ~seed ~init:[]
      ~map:(fun ~rng:_ ~dead ->
        route_internal ~dead:(Deadset.get dead) ~baseline_max:baseline.max_cable_load
          ~network ~demands ())
      ~merge:(fun acc r -> r :: acc)
  in
  let avg f = Stats.mean (List.map f acc) in
  let after =
    {
      delivered_pct = avg (fun r -> r.delivered_pct);
      max_cable_load = avg (fun r -> r.max_cable_load);
      mean_cable_load = avg (fun r -> r.mean_cable_load);
      overloaded_cables =
        int_of_float (Float.round (avg (fun r -> float_of_int r.overloaded_cables)));
    }
  in
  (baseline, after)
