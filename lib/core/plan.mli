(** Compiled simulation plans: the one storm-trial engine.

    Every Monte-Carlo analysis in the repository reduces to the same
    kernel — kill each cable of a network independently with its death
    probability under a failure model, then measure something on the
    surviving topology.  A {!t} compiles the [(network, model,
    repeater-spacing)] triple once: the per-repeater and per-cable death
    probabilities become flat [float array]s indexed by cable id, so the
    hot loop of a trial is an array read and one Bernoulli draw per cable
    instead of a closure application and a [**] per cable per trial.
    Compilation also precomputes the node→cable incidence (CSR), giving
    {!unreachable_attached_pct} an allocation-free per-trial reachability
    metric.

    Trial outcomes are {!Deadset.t} bitvectors — see that module for the
    representation and the reuse contract ([dead] buffers are scratch;
    copy what must outlive a callback).

    Draw-order contract: {!sample} performs exactly one Bernoulli draw
    per cable, in cable-index order — byte-identical to the historical
    [Failure_model.compile]-per-consumer loops, so seeds reproduce the
    published numbers unchanged.  {!run_trials} reproduces the historical
    master-RNG pattern: [Rng.create seed], then one [Rng.split] per trial.
    The opt-in [`Skip] sampling mode (geometric skip-sampling for the
    sparse-failure regime) draws in a different order by design and is
    pinned by its own golden hashes.

    Observability: compiles and trials are counted on the [plan.compiles]
    and [plan.trials] metrics ([plan.par_runs] counts {!run_trials_par}
    invocations), and compilation runs under a ["plan.compile"] span (all
    off-by-default, see DESIGN.md).  Hot loops draw through the
    uncounted {!Rng.Raw} stream and settle [rng.draws] in batched
    {!Rng.note_draws} calls — per trial sequentially, per work-stealing
    chunk in the parallel driver — so counter totals stay exactly equal
    across job counts without a sharded-atomic hit per draw.  Both trial
    drivers feed the live progress meter ({!Obs.Progress}, batched per
    chunk in the parallel driver), rendered on stderr under the
    [--progress] CLI flag and costing one branch per batch otherwise. *)

type t

val compile :
  ?spacing_km:float ->
  network:Infra.Network.t ->
  model:Failure_model.t ->
  unit ->
  t
(** Precompute per-cable probabilities (default spacing 150 km, the
    paper's baseline) and the node→cable incidence.  For
    {!Failure_model.Gic_physical} this runs the full GIC exposure
    pipeline once.  @raise Invalid_argument if [spacing_km <= 0.]. *)

val network : t -> Infra.Network.t
val model : t -> Failure_model.t
val spacing_km : t -> float

val nb_cables : t -> int
(** Number of cables, i.e. the length of every sampled [dead] set. *)

val death_prob : t -> int -> float
(** [death_prob t c] — probability that cable [c] dies (≥ 1 repeater
    fails): [1 - (1-p)^n] precomputed at compile time. *)

val per_repeater_prob : t -> int -> float
(** The model's per-repeater failure probability for cable [c] (the
    value the historical [Failure_model.compile model ~network] closure
    returned). *)

val sample : t -> Rng.t -> Deadset.t
(** One storm trial: a fresh per-cable death set.  Exactly one Bernoulli
    draw per cable, in cable-index order. *)

val sample_into : t -> Rng.t -> Deadset.t -> unit
(** {!sample} into a caller-owned buffer of length {!nb_cables} — the
    zero-allocation per-trial path.  @raise Invalid_argument on size
    mismatch. *)

val sample_skip_into : t -> Rng.t -> Deadset.t -> unit
(** Geometric skip-sampling under the plan's max death probability
    [p_max]: gaps to the next candidate cable are Geometric([p_max])
    draws and candidates are thinned by [death/p_max], so expected draw
    count is about [2·p_max·cables + 1] instead of [cables] — a large
    win in the sparse-failure regime ([p_max] ≪ 1).  Marginal death
    probabilities (and independence) match {!sample_into} exactly; the
    {e draw order} does not, so results for a given seed differ
    trial-by-trial while agreeing in distribution.  @raise
    Invalid_argument on size mismatch. *)

val sample_recompute_into : t -> Rng.t -> Deadset.t -> unit
(** Reference implementation of the pre-plan hot loop: re-applies the
    model closure and recomputes [1 - (1-p)^n] for every cable on every
    call.  Draw-for-draw identical to {!sample_into}; it exists so the
    bench can quantify the compiled plan's win and tests can assert
    equivalence.  Not for production use. *)

val unreachable_attached_pct : t -> Deadset.t -> float
(** Percentage of cable-bearing nodes whose every incident cable is dead
    — the same value as [Montecarlo.nodes_unreachable_pct] on the plan's
    network, computed allocation-free from the compiled CSR incidence
    with early exit on the first live cable.  @raise Invalid_argument on
    size mismatch. *)

val expected_cables_failed_pct : t -> float
(** Closed-form expectation (no sampling): mean of the per-cable death
    probabilities, in percent.  Matches the historical
    [Montecarlo.expected_cables_failed_pct] bit-for-bit. *)

val run_trials :
  ?sampling:[ `Exact | `Skip ] ->
  t ->
  trials:int ->
  seed:int ->
  init:'acc ->
  f:('acc -> rng:Rng.t -> dead:Deadset.t -> 'acc) ->
  'acc
(** The shared trial driver: fold [f] over [trials] independent storm
    trials.  Reproduces the historical pattern exactly — a master
    generator [Rng.create seed] split once per trial; [dead] is sampled
    before [f] runs, so [f] may keep drawing from [rng] for its own
    per-trial randomness (grid outages, repair jitter, ...).

    [sampling] (default [`Exact]) selects the per-trial sampler:
    [`Exact] is {!sample_into} (the byte-stable historical stream),
    [`Skip] is {!sample_skip_into}.

    [dead] is a single buffer reused across trials: copy it if it must
    outlive the callback.  @raise Invalid_argument if [trials <= 0]. *)

val run_trials_par :
  ?jobs:int ->
  ?sampling:[ `Exact | `Skip ] ->
  t ->
  trials:int ->
  seed:int ->
  init:'acc ->
  map:(rng:Rng.t -> dead:Deadset.t -> 'a) ->
  merge:('acc -> 'a -> 'acc) ->
  'acc
(** Domain-parallel {!run_trials}, deterministic by construction: for the
    same [seed] and [sampling], [~jobs:1] and [~jobs:n] produce
    byte-identical results — and both match what {!run_trials} computes
    with [f acc ~rng ~dead = merge acc (map ~rng ~dead)].

    How the determinism is kept (see DESIGN.md §6):
    - {e indexed splits} — trial [i] draws from [Rng.split_ith master i],
      a pure function of the seed and the trial index equal to the
      stream the sequential engine's i-th [Rng.split] yields: the
      historical draw order, so seeds keep reproducing the published
      numbers, and no pre-split array of [trials] generators is built;
    - {e ordered merge} — each work-stealing chunk accumulates its [map]
      results into its own array (no shared option-array, no false
      sharing) and the chunks are folded left-to-right in trial order,
      so float accumulation order never depends on domain scheduling.

    [jobs] defaults to {!Exec.default_jobs} (the [--jobs] flag /
    [SOLARSTORM_JOBS] environment variable, else 1); trials are dealt to
    domains by chunked work-stealing ({!Exec.parallel_for}, persistent
    pool).  [map] runs on worker domains: it must not touch shared
    mutable state — [Obs] metrics are fine (atomic), [Obs.Span] records
    into a per-domain ring (worker spans show up in profiles with their
    domain id), and [dead] is a worker-owned buffer valid only for the
    duration of the call (copy it to keep it).  [map] may keep drawing
    from [rng] for its own per-trial randomness, exactly like [f] in
    {!run_trials}.

    @raise Invalid_argument if [trials <= 0] or [jobs <= 0]. *)
