(** Compiled simulation plans: the one storm-trial engine.

    Every Monte-Carlo analysis in the repository reduces to the same
    kernel — kill each cable of a network independently with its death
    probability under a failure model, then measure something on the
    surviving topology.  A {!t} compiles the [(network, model,
    repeater-spacing)] triple once: the per-repeater and per-cable death
    probabilities become flat [float array]s indexed by cable id, so the
    hot loop of a trial is an array read and one Bernoulli draw per cable
    instead of a closure application and a [**] per cable per trial.

    Draw-order contract: {!sample} performs exactly one Bernoulli draw
    per cable, in cable-index order — byte-identical to the historical
    [Failure_model.compile]-per-consumer loops, so seeds reproduce the
    published numbers unchanged.  {!run_trials} reproduces the historical
    master-RNG pattern: [Rng.create seed], then one [Rng.split] per trial.

    Observability: compiles and trials are counted on the [plan.compiles]
    and [plan.trials] metrics ([plan.par_runs] counts {!run_trials_par}
    invocations), and compilation runs under a ["plan.compile"] span (all
    off-by-default, see DESIGN.md).  Both trial drivers feed the live
    progress meter: one {!Obs.Progress.tick} per completed trial
    (workers share the atomic counter), rendered on stderr under the
    [--progress] CLI flag and costing one branch per trial otherwise. *)

type t

val compile :
  ?spacing_km:float ->
  network:Infra.Network.t ->
  model:Failure_model.t ->
  unit ->
  t
(** Precompute per-cable probabilities (default spacing 150 km, the
    paper's baseline).  For {!Failure_model.Gic_physical} this runs the
    full GIC exposure pipeline once.  @raise Invalid_argument if
    [spacing_km <= 0.]. *)

val network : t -> Infra.Network.t
val model : t -> Failure_model.t
val spacing_km : t -> float

val nb_cables : t -> int
(** Number of cables, i.e. the length of every sampled [dead] array. *)

val death_prob : t -> int -> float
(** [death_prob t c] — probability that cable [c] dies (≥ 1 repeater
    fails): [1 - (1-p)^n] precomputed at compile time. *)

val per_repeater_prob : t -> int -> float
(** The model's per-repeater failure probability for cable [c] (the
    value the historical [Failure_model.compile model ~network] closure
    returned). *)

val sample : t -> Rng.t -> bool array
(** One storm trial: a fresh per-cable death array.  Exactly one
    Bernoulli draw per cable, in cable-index order. *)

val sample_into : t -> Rng.t -> bool array -> unit
(** {!sample} into a caller-owned buffer of length {!nb_cables} — the
    zero-allocation per-trial path.  @raise Invalid_argument on size
    mismatch. *)

val sample_recompute_into : t -> Rng.t -> bool array -> unit
(** Reference implementation of the pre-plan hot loop: re-applies the
    model closure and recomputes [1 - (1-p)^n] for every cable on every
    call.  Draw-for-draw identical to {!sample_into}; it exists so the
    bench can quantify the compiled plan's win and tests can assert
    equivalence.  Not for production use. *)

val expected_cables_failed_pct : t -> float
(** Closed-form expectation (no sampling): mean of the per-cable death
    probabilities, in percent.  Matches the historical
    [Montecarlo.expected_cables_failed_pct] bit-for-bit. *)

val run_trials :
  t ->
  trials:int ->
  seed:int ->
  init:'acc ->
  f:('acc -> rng:Rng.t -> dead:bool array -> 'acc) ->
  'acc
(** The shared trial driver: fold [f] over [trials] independent storm
    trials.  Reproduces the historical pattern exactly — a master
    generator [Rng.create seed] split once per trial; [dead] is sampled
    before [f] runs, so [f] may keep drawing from [rng] for its own
    per-trial randomness (grid outages, repair jitter, ...).

    [dead] is a single buffer reused across trials: copy it if it must
    outlive the callback.  @raise Invalid_argument if [trials <= 0]. *)

val run_trials_par :
  t ->
  ?jobs:int ->
  trials:int ->
  seed:int ->
  init:'acc ->
  map:(rng:Rng.t -> dead:bool array -> 'a) ->
  merge:('acc -> 'a -> 'acc) ->
  'acc
(** Domain-parallel {!run_trials}, deterministic by construction: for the
    same [seed], [~jobs:1] and [~jobs:n] produce byte-identical results —
    and both match what {!run_trials} computes with
    [f acc ~rng ~dead = merge acc (map ~rng ~dead)].

    How the determinism is kept (see DESIGN.md §6):
    - {e sequential pre-split} — all [trials] RNGs are split off the
      master [Rng.create seed] up front, on the calling domain, in trial
      order: the historical draw order, so seeds keep reproducing the
      published numbers;
    - {e ordered merge} — per-trial [map] results are buffered by trial
      index and folded left-to-right, so float accumulation order never
      depends on domain scheduling.

    [jobs] defaults to {!Exec.default_jobs} (the [--jobs] flag /
    [SOLARSTORM_JOBS] environment variable, else 1); trials are dealt to
    domains by chunked work-stealing ({!Exec.parallel_for}).  [map] runs
    on worker domains: it must not touch shared mutable state — [Obs]
    metrics are fine (atomic), [Obs.Span] records into a per-domain ring
    (worker spans show up in profiles with their domain id), and [dead]
    is a worker-owned buffer valid only for the duration of the call
    (copy it to keep it).  [map] may keep
    drawing from [rng] for its own per-trial randomness, exactly like
    [f] in {!run_trials}.

    @raise Invalid_argument if [trials <= 0] or [jobs <= 0]. *)
