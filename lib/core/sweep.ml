(* Grid expansion, plan-key dedup, shared-batch execution.  See the
   interface; the implementation notes that matter:

   - keys reuse the server cache-key discipline: %.17g for every float
     that feeds a key (%g would fold distinct probabilities together)
     and the ITU scale normalized out of non-ITU keys, so equivalent
     cells genuinely share a plan;
   - batches execute sequentially in first-occurrence order, trials
     parallel *within* a batch ({!Montecarlo.run_plan} over the
     persistent [Exec] pool).  Parallelizing across batches would
     buy nothing (the pool is already saturated by one batch) and
     would block streaming behind a join barrier;
   - the reorder buffer is trivial because of that ordering: cell 0's
     batch is batch 0, so after batch [b] completes every cell whose
     batch index <= b that hasn't been emitted yet is ready. *)

type network_id = Submarine | Intertubes | Itu

let network_id_to_string = function
  | Submarine -> "submarine"
  | Intertubes -> "intertubes"
  | Itu -> "itu"

let network_id_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "submarine" -> Ok Submarine
  | "intertubes" -> Ok Intertubes
  | "itu" -> Ok Itu
  | s -> Error (Printf.sprintf "unknown network %S (submarine | intertubes | itu)" s)

type cell = {
  network : network_id;
  model : Failure_model.t;
  spacing_km : float;
  itu_scale : float;
  seed : int;
  trials : int;
}

let default_cell =
  {
    network = Submarine;
    model = Failure_model.uniform 0.01;
    spacing_km = 150.0;
    itu_scale = 0.3;
    seed = Datasets.default_seed;
    trials = 10;
  }

let max_trials = 100_000
let max_cells = 65_536

(* --- axes --- *)

type raw_value = Str of string | Num of float

type axis = { key : string; sets : (cell -> cell) array }

let axis_key a = a.key
let axis_length a = Array.length a.sets

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

let num_of_raw key = function
  | Num v -> Ok v
  | Str s -> (
      match float_of_string_opt (String.trim s) with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "axis %S: %S is not a number" key s))

let int_of_raw key r =
  let* v = num_of_raw key r in
  if Float.is_integer v && Float.abs v <= 1e15 then Ok (int_of_float v)
  else Error (Printf.sprintf "axis %S: values must be integers" key)

let setter_of_raw key (r : raw_value) : (cell -> cell, string) result =
  match key with
  | "network" -> (
      match r with
      | Str s ->
          let* n = network_id_of_string s in
          Ok (fun c -> { c with network = n })
      | Num _ -> Error "axis \"network\": values must be network names")
  | "model" -> (
      let* m =
        match r with
        | Str s -> Failure_model.of_string s
        | Num p when p >= 0.0 && p <= 1.0 -> Ok (Failure_model.uniform p)
        | Num _ -> Error "axis \"model\": a numeric model must be a probability in [0, 1]"
      in
      Ok (fun c -> { c with model = m }))
  | "spacing_km" ->
      let* s = num_of_raw key r in
      if Float.is_finite s && s > 0.0 then Ok (fun c -> { c with spacing_km = s })
      else Error "axis \"spacing_km\": values must be > 0"
  | "itu_scale" ->
      let* s = num_of_raw key r in
      if Float.is_finite s && s > 0.0 && s <= 1.0 then
        Ok (fun c -> { c with itu_scale = s })
      else Error "axis \"itu_scale\": values must be in (0, 1]"
  | "seed" ->
      let* seed = int_of_raw key r in
      Ok (fun c -> { c with seed })
  | "trials" ->
      let* t = int_of_raw key r in
      if t < 1 then Error "axis \"trials\": values must be >= 1"
      else if t > max_trials then
        Error (Printf.sprintf "axis \"trials\": values must be <= %d" max_trials)
      else Ok (fun c -> { c with trials = t })
  | key ->
      Error
        (Printf.sprintf
           "unknown axis %S (network | model | spacing_km | itu_scale | seed | trials)"
           key)

let axis_of_raw key raws =
  let* sets =
    List.fold_left
      (fun acc r ->
        let* acc = acc in
        let* set = setter_of_raw key r in
        Ok (set :: acc))
      (Ok []) raws
  in
  Ok { key; sets = Array.of_list (List.rev sets) }

let axis_of_spec spec =
  match String.index_opt spec '=' with
  | None | Some 0 ->
      Error (Printf.sprintf "malformed axis %S (expected key=v1,v2,...)" spec)
  | Some i ->
      let key = String.trim (String.sub spec 0 i) in
      let values = String.sub spec (i + 1) (String.length spec - i - 1) in
      let raws =
        (* "key=" is an explicitly empty axis (zero cells); an empty
           value *between* commas is a spelling mistake, caught by the
           per-key parser. *)
        if String.trim values = "" then []
        else List.map (fun v -> Str v) (String.split_on_char ',' values)
      in
      axis_of_raw key raws

let expand ?(base = default_cell) axes =
  let* () =
    let rec dup = function
      | [] -> Ok ()
      | a :: rest ->
          if List.exists (fun b -> b.key = a.key) rest then
            Error (Printf.sprintf "axis %S given more than once" a.key)
          else dup rest
    in
    dup axes
  in
  let axes = Array.of_list axes in
  let* total =
    Array.fold_left
      (fun acc a ->
        let* acc = acc in
        let n = acc * Array.length a.sets in
        if n > max_cells then
          Error (Printf.sprintf "grid expands to more than %d cells" max_cells)
        else Ok n)
      (Ok 1) axes
  in
  (* First axis slowest: stride of axis j is the product of the lengths
     of the axes after it. *)
  let n_axes = Array.length axes in
  let strides = Array.make n_axes 1 in
  for j = n_axes - 2 downto 0 do
    strides.(j) <- strides.(j + 1) * Array.length axes.(j + 1).sets
  done;
  Ok
    (Array.init total (fun i ->
         let c = ref base in
         for j = 0 to n_axes - 1 do
           let len = Array.length axes.(j).sets in
           c := axes.(j).sets.((i / strides.(j)) mod len) !c
         done;
         !c))

(* --- canonical keys --- *)

let model_key m =
  let open Failure_model in
  match m with
  | Uniform p -> Printf.sprintf "u:%.17g" p
  | Latitude_tiered { high; mid; low; mid_threshold; high_threshold } ->
      Printf.sprintf "lt:%.17g:%.17g:%.17g:%.17g:%.17g" high mid low mid_threshold
        high_threshold
  | Gic_physical { dst_nt; scale_a } -> Printf.sprintf "gic:%.17g:%.17g" dst_nt scale_a
  | Geomag_tiered { high; mid; low; mid_threshold; high_threshold } ->
      Printf.sprintf "gt:%.17g:%.17g:%.17g:%.17g:%.17g" high mid low mid_threshold
        high_threshold

let network_key c =
  match c.network with
  | Itu -> Printf.sprintf "itu:%d:%.17g" c.seed c.itu_scale
  | n -> Printf.sprintf "%s:%d" (network_id_to_string n) c.seed

let plan_key c =
  Printf.sprintf "%s|%s|spacing=%.17g" (network_key c) (model_key c.model) c.spacing_km

let batch_key c = Printf.sprintf "%s|trials=%d" (plan_key c) c.trials

(* --- execution --- *)

type row = { cell_index : int; cell : cell; stats : Montecarlo.series }

let row_line r =
  let open Obs.Json in
  let c = r.cell in
  let s = r.stats in
  let mean_std mean std = Object [ ("mean", Number mean); ("std", Number std) ] in
  to_string
    (Object
       ([
          ("cell", Number (float_of_int r.cell_index));
          ("network", String (network_id_to_string c.network));
          ("model", String (Failure_model.to_string c.model));
          ("spacing_km", Number c.spacing_km);
        ]
       @ (match c.network with
         | Itu -> [ ("itu_scale", Number c.itu_scale) ]
         | _ -> [])
       @ [
           ("seed", Number (float_of_int c.seed));
           ("trials", Number (float_of_int c.trials));
           ( "cables_failed_pct",
             mean_std s.Montecarlo.cables_mean s.Montecarlo.cables_std );
           ( "nodes_unreachable_pct",
             mean_std s.Montecarlo.nodes_mean s.Montecarlo.nodes_std );
         ]))
  ^ "\n"

type summary = { cells : int; rows : int; plans_compiled : int; batches : int }

let c_runs = Obs.Metrics.counter "sweep.runs"
let c_cells = Obs.Metrics.counter "sweep.cells"
let c_batches = Obs.Metrics.counter "sweep.batches"
let c_plans = Obs.Metrics.counter "sweep.plans_compiled"
let c_rows = Obs.Metrics.counter "sweep.rows_streamed"

let build_network c =
  match c.network with
  | Submarine -> Datasets.Cache.submarine ~seed:c.seed ()
  | Intertubes -> Datasets.Cache.intertubes ~seed:c.seed ()
  | Itu -> Datasets.Cache.itu ~seed:c.seed ~scale:c.itu_scale ()

let run ?jobs ~cells ~emit () =
  let n = Array.length cells in
  Obs.Metrics.incr c_runs;
  Obs.Metrics.add c_cells n;
  (* Group cells into batches keyed by [batch_key], numbered in first-
     occurrence order so batch order follows cell order. *)
  let batch_ids : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let reps = ref [] in
  let nbatches = ref 0 in
  let cell_batch =
    Array.map
      (fun c ->
        let k = batch_key c in
        match Hashtbl.find_opt batch_ids k with
        | Some b -> b
        | None ->
            let b = !nbatches in
            Hashtbl.add batch_ids k b;
            reps := c :: !reps;
            incr nbatches;
            b)
      cells
  in
  let reps = Array.of_list (List.rev !reps) in
  let results : Montecarlo.series option array = Array.make !nbatches None in
  let plan_tbl : (string, Plan.t) Hashtbl.t = Hashtbl.create 16 in
  let plans_compiled = ref 0 in
  let progress = Obs.Progress.start ~label:"sweep" ~total:n in
  let next = ref 0 in
  let emit_ready () =
    while
      !next < n
      && match results.(cell_batch.(!next)) with Some _ -> true | None -> false
    do
      let i = !next in
      (match results.(cell_batch.(i)) with
      | Some stats -> emit { cell_index = i; cell = cells.(i); stats }
      | None -> assert false);
      Obs.Metrics.incr c_rows;
      Obs.Progress.tick progress;
      incr next
    done
  in
  Array.iteri
    (fun b rep ->
      let plan =
        let pk = plan_key rep in
        match Hashtbl.find_opt plan_tbl pk with
        | Some plan -> plan
        | None ->
            let network = build_network rep in
            let plan =
              Plan.compile ~spacing_km:rep.spacing_km ~network ~model:rep.model ()
            in
            Hashtbl.add plan_tbl pk plan;
            incr plans_compiled;
            Obs.Metrics.incr c_plans;
            plan
      in
      let stats = Montecarlo.run_plan ?jobs ~trials:rep.trials ~seed:rep.seed plan in
      Obs.Metrics.incr c_batches;
      results.(b) <- Some stats;
      emit_ready ())
    reps;
  Obs.Progress.finish progress;
  { cells = n; rows = !next; plans_compiled = !plans_compiled; batches = !nbatches }
