type trial_result = {
  dead : bool array;
  cables_failed_pct : float;
  nodes_unreachable_pct : float;
}

type series = {
  cables_mean : float;
  cables_std : float;
  nodes_mean : float;
  nodes_std : float;
}

let cables_failed_pct net dead =
  let m = Infra.Network.nb_cables net in
  if m = 0 then 0.0 else 100.0 *. float_of_int (Deadset.count_dead dead) /. float_of_int m

let nodes_unreachable_pct net dead =
  let n = Infra.Network.nb_nodes net in
  let has_cable = Array.make n false and has_live = Array.make n false in
  for c = 0 to Infra.Network.nb_cables net - 1 do
    let cable = Infra.Network.cable net c in
    List.iter
      (fun l ->
        has_cable.(l) <- true;
        if not (Deadset.get dead c) then has_live.(l) <- true)
      cable.Infra.Cable.landings
  done;
  let total = ref 0 and unreachable = ref 0 in
  for i = 0 to n - 1 do
    if has_cable.(i) then begin
      incr total;
      if not has_live.(i) then incr unreachable
    end
  done;
  if !total = 0 then 0.0 else 100.0 *. float_of_int !unreachable /. float_of_int !total

let trials_total = Obs.Metrics.counter "mc.trials_total"
let cables_failed_total = Obs.Metrics.counter "mc.cables_failed"

let observe_trial dead =
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr trials_total;
    Obs.Metrics.add cables_failed_total (Deadset.count_dead dead)
  end

let trial rng ~plan =
  Obs.Span.with_ ~name:"mc.trial" (fun () ->
      let dead = Plan.sample plan rng in
      observe_trial dead;
      {
        dead = Deadset.to_bool_array dead;
        cables_failed_pct = cables_failed_pct (Plan.network plan) dead;
        (* The compiled CSR incidence: same value as
           [nodes_unreachable_pct], no per-trial allocation. *)
        nodes_unreachable_pct = Plan.unreachable_attached_pct plan dead;
      })

let run_plan ?(trials = 10) ?jobs ~seed plan =
  if trials <= 0 then invalid_arg "Montecarlo.run: trials <= 0";
  Obs.Span.with_ ~name:"mc.run" @@ fun () ->
  let network = Plan.network plan in
  let cables, nodes =
    Plan.run_trials_par ?jobs plan ~trials ~seed ~init:([], [])
      ~map:(fun ~rng:_ ~dead ->
        Obs.Span.with_ ~name:"mc.trial" @@ fun () ->
        observe_trial dead;
        (cables_failed_pct network dead, Plan.unreachable_attached_pct plan dead))
      ~merge:(fun (cables, nodes) (c, n) -> (c :: cables, n :: nodes))
  in
  let cables_mean, cables_std = Stats.mean_stddev cables in
  let nodes_mean, nodes_std = Stats.mean_stddev nodes in
  { cables_mean; cables_std; nodes_mean; nodes_std }

let run ?(trials = 10) ?jobs ~seed ~network ~spacing_km ~model () =
  if trials <= 0 then invalid_arg "Montecarlo.run: trials <= 0";
  if spacing_km <= 0.0 then invalid_arg "Montecarlo.run: spacing <= 0";
  let plan = Plan.compile ~spacing_km ~network ~model () in
  run_plan ~trials ?jobs ~seed plan

let expected_cables_failed_pct ~network ~spacing_km ~model =
  Plan.expected_cables_failed_pct (Plan.compile ~spacing_km ~network ~model ())
