(** Repeater-failure models (§4.3 of the paper).

    The paper sweeps a {e uniform} per-repeater failure probability
    (Figs 6–7) and two {e latitude-tiered} states S1/S2 that assign each
    cable a per-repeater probability from the tier of its
    highest-|latitude| endpoint (Fig. 8).  A third, physics-based model
    maps the GIC computed by the [Gic]/[Infra.Exposure] pipeline to a
    failure probability — the extension ablation of DESIGN.md. *)

type t =
  | Uniform of float  (** same probability for every repeater *)
  | Latitude_tiered of {
      high : float;  (** |lat| > high_threshold *)
      mid : float;  (** mid_threshold < |lat| <= high_threshold *)
      low : float;  (** |lat| <= mid_threshold *)
      mid_threshold : float;
      high_threshold : float;
    }
  | Gic_physical of {
      dst_nt : float;  (** storm strength driving the GIC pipeline *)
      scale_a : float;  (** GIC amps at which failure probability is 1−1/e *)
    }
  | Geomag_tiered of {
      high : float;
      mid : float;
      low : float;
      mid_threshold : float;
      high_threshold : float;
    }
      (** Like {!Latitude_tiered} but tiers come from the maximum
          |{e geomagnetic} (dipole) latitude| over the cable's landings —
          the physically motivated variant (auroral electrojets organize
          around the geomagnetic pole, which sits over arctic Canada, so
          North Atlantic routes gain ~10°).  The ablation of
          EXPERIMENTS.md §4.3.4. *)

val uniform : float -> t
(** @raise Invalid_argument if the probability is outside [[0, 1]]. *)

val s1 : t
(** High-failure state: [1; 0.1; 0.01] across tiers (>60°, 40–60°, <40°). *)

val s2 : t
(** Low-failure state: [0.1; 0.01; 0.001]. *)

val tiered : high:float -> mid:float -> low:float -> t
(** Tiered model with the paper's 40°/60° thresholds.
    @raise Invalid_argument if any probability is outside [[0, 1]]. *)

val carrington_physical : t
(** {!Gic_physical} at Dst −1200 nT with a 30 A damage scale. *)

val s1_geomag : t
(** S1's probabilities with geomagnetic-latitude tiers. *)

val s2_geomag : t
(** S2's probabilities with geomagnetic-latitude tiers. *)

val of_string : string -> (t, string) result
(** Parse a model spec as the CLI and the HTTP service accept it:
    [s1 | s2 | physical | s1-geomag | s2-geomag], or a bare probability
    in [[0, 1]] meaning {!uniform}.  Case-insensitive; [Error] carries a
    usage message. *)

val to_string : t -> string

val compile : t -> network:Infra.Network.t -> Infra.Cable.t -> float
(** [compile model ~network] is the per-repeater failure probability
    function for cables of [network].  For {!Gic_physical} the full
    network exposure is computed once at compile time (partial
    application: [let p = compile model ~network in ...]). *)

val cable_death_prob :
  per_repeater:float -> spacing_km:float -> Infra.Cable.t -> float
(** Probability that at least one of the cable's repeaters fails:
    [1 - (1-p)^n].  A cable with no repeater never dies. *)
