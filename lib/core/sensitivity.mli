(** Sensitivity analyses / ablations for the modeling choices DESIGN.md
    calls out.

    The paper itself flags two: the 40° threshold is "conservative"
    (studies use 40 ± 10°), and repeater-failure modeling is the main
    unknown.  Each function returns plottable rows.  Sweeps run their
    Monte-Carlo trials on {!Plan.run_trials_par}: results are
    deterministic in the seeds for any [jobs]. *)

val threshold_sweep :
  ?trials:int ->
  ?thresholds:float list ->
  ?jobs:int ->
  network:Infra.Network.t ->
  unit ->
  (float * float) list
(** [(mid-threshold, S1 submarine cables failed %)] — how the headline
    tiered result moves when the vulnerable-latitude boundary shifts
    across 30–50° (the high tier stays 20° above the mid). *)

val geographic_vs_geomagnetic :
  ?trials:int -> ?jobs:int -> network:Infra.Network.t -> unit ->
  (string * float * float) list
(** [(state, geographic %, geomagnetic %)] for S1 and S2 cable failures:
    the dipole-latitude ablation (North Atlantic routes gain ~10° of
    effective latitude). *)

val spacing_sweep :
  ?trials:int ->
  ?spacings:float list ->
  ?jobs:int ->
  network:Infra.Network.t ->
  model:Failure_model.t ->
  unit ->
  (float * float) list
(** [(spacing km, cables failed %)] over a fine spacing grid. *)

val seed_sensitivity :
  ?seeds:int list -> ?trials:int -> ?jobs:int -> probability:float -> unit ->
  float * float
(** Rebuild the submarine dataset under each seed, run the uniform sweep
    point, and return (mean, stddev) of cables-failed % across dataset
    seeds — how much of the result is dataset noise. *)

val scale_a_sweep :
  ?scales:float list -> network:Infra.Network.t -> dst_nt:float -> unit ->
  (float * float) list
(** [(damage scale A, expected cables failed %)] for the GIC-physical
    model: the repeater-fragility knob the paper says nobody can measure
    yet. *)
