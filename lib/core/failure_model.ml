type t =
  | Uniform of float
  | Latitude_tiered of {
      high : float;
      mid : float;
      low : float;
      mid_threshold : float;
      high_threshold : float;
    }
  | Gic_physical of { dst_nt : float; scale_a : float }
  | Geomag_tiered of {
      high : float;
      mid : float;
      low : float;
      mid_threshold : float;
      high_threshold : float;
    }

let check_prob p =
  if p < 0.0 || p > 1.0 then invalid_arg "Failure_model: probability outside [0, 1]"

let uniform p =
  check_prob p;
  Uniform p

let tiered ~high ~mid ~low =
  check_prob high;
  check_prob mid;
  check_prob low;
  Latitude_tiered { high; mid; low; mid_threshold = 40.0; high_threshold = 60.0 }

let s1 = tiered ~high:1.0 ~mid:0.1 ~low:0.01
let s2 = tiered ~high:0.1 ~mid:0.01 ~low:0.001

let carrington_physical = Gic_physical { dst_nt = -1200.0; scale_a = 30.0 }

let geomag_tiered ~high ~mid ~low =
  check_prob high;
  check_prob mid;
  check_prob low;
  Geomag_tiered { high; mid; low; mid_threshold = 40.0; high_threshold = 60.0 }

let s1_geomag = geomag_tiered ~high:1.0 ~mid:0.1 ~low:0.01
let s2_geomag = geomag_tiered ~high:0.1 ~mid:0.01 ~low:0.001

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "s1" -> Ok s1
  | "s2" -> Ok s2
  | "physical" -> Ok carrington_physical
  | "s1-geomag" -> Ok s1_geomag
  | "s2-geomag" -> Ok s2_geomag
  | s -> (
      match float_of_string_opt s with
      | Some p when p >= 0.0 && p <= 1.0 -> Ok (uniform p)
      | _ ->
          Error
            "expected s1 | s2 | physical | s1-geomag | s2-geomag | probability \
             in [0,1]")

let to_string = function
  | Uniform p -> Printf.sprintf "uniform(%g)" p
  | Latitude_tiered { high; mid; low; _ } ->
      Printf.sprintf "tiered[%g; %g; %g]" high mid low
  | Gic_physical { dst_nt; scale_a } ->
      Printf.sprintf "gic-physical(Dst=%g, scale=%gA)" dst_nt scale_a
  | Geomag_tiered { high; mid; low; _ } ->
      Printf.sprintf "geomag-tiered[%g; %g; %g]" high mid low

let compiles = Obs.Metrics.counter "fm.compiles"

let compile model ~network =
  Obs.Metrics.incr compiles;
  Obs.Span.with_ ~name:"fm.compile" @@ fun () ->
  match model with
  | Uniform p -> fun (_ : Infra.Cable.t) -> p
  | Latitude_tiered { high; mid; low; mid_threshold; high_threshold } ->
      fun c ->
        let tier =
          Geo.Latband.tier_of_abs_lat ~mid_threshold ~high_threshold
            c.Infra.Cable.max_abs_lat
        in
        (match tier with Geo.Latband.High -> high | Geo.Latband.Mid -> mid | Geo.Latband.Low -> low)
  | Gic_physical { dst_nt; scale_a } ->
      let storm = Gic.Disturbance.storm_of_dst dst_nt in
      let exposures = Infra.Exposure.network_exposures ~storm network in
      fun c ->
        Infra.Exposure.failure_probability ~scale_a exposures.(c.Infra.Cable.id)
  | Geomag_tiered { high; mid; low; mid_threshold; high_threshold } ->
      (* Memoize the per-cable geomagnetic extremum: it needs the node
         coordinates, which only the network knows. *)
      let max_geomag = Hashtbl.create 64 in
      let geomag_of c =
        match Hashtbl.find_opt max_geomag c.Infra.Cable.id with
        | Some v -> v
        | None ->
            let v =
              List.fold_left
                (fun acc l ->
                  Float.max acc
                    (Float.abs
                       (Geo.Geomagnetic.dipole_latitude (Infra.Network.node_coord network l))))
                0.0 c.Infra.Cable.landings
            in
            Hashtbl.replace max_geomag c.Infra.Cable.id v;
            v
      in
      fun c ->
        (match
           Geo.Latband.tier_of_abs_lat ~mid_threshold ~high_threshold (geomag_of c)
         with
        | Geo.Latband.High -> high
        | Geo.Latband.Mid -> mid
        | Geo.Latband.Low -> low)

let cable_death_prob ~per_repeater ~spacing_km c =
  let n = Infra.Cable.repeater_count c ~spacing_km in
  if n = 0 then 0.0 else 1.0 -. ((1.0 -. per_repeater) ** float_of_int n)
