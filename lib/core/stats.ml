let mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

(* Population (÷n) estimator, deliberately: the published tables were
   produced with it, so "fixing" this to the sample (÷(n−1)) estimator
   would shift every mean±sd column in EXPERIMENTS.md.  See stats.mli. *)
let stddev l =
  match l with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean l in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 l
        /. float_of_int (List.length l)
      in
      sqrt var

let mean_stddev l = (mean l, stddev l)

let percentile l ~p =
  if l = [] then invalid_arg "Stats.percentile: empty list";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p outside [0, 100]";
  let a = Array.of_list l in
  Array.sort Float.compare a;
  let n = Array.length a in
  let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) in
  a.(Int.max 0 (Int.min (n - 1) (rank - 1)))

let median l = percentile l ~p:50.0

let cdf_points l =
  match l with
  | [] -> []
  | _ ->
      let a = Array.of_list l in
      Array.sort Float.compare a;
      let n = Array.length a in
      Array.to_list (Array.mapi (fun i v -> (v, float_of_int (i + 1) /. float_of_int n)) a)

let cdf l =
  (* Sort once, answer every query with a binary search: sweeping q
     thresholds over n samples is O(n log n + q log n), where the old
     per-query [List.filter] re-walk was O(qn). *)
  let a = Array.of_list l in
  Array.sort Float.compare a;
  let n = Array.length a in
  fun x ->
    if n = 0 then 0.0
    else begin
      (* Upper bound: number of elements <= x. *)
      let lo = ref 0 and hi = ref n in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if a.(mid) <= x then lo := mid + 1 else hi := mid
      done;
      float_of_int !lo /. float_of_int n
    end

let cdf_at l x = cdf l x

let histogram l ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Stats.histogram: bins <= 0";
  if hi <= lo then invalid_arg "Stats.histogram: hi <= lo";
  let counts = Array.make bins 0 in
  List.iter
    (fun x ->
      let i = int_of_float ((x -. lo) /. (hi -. lo) *. float_of_int bins) in
      let i = Int.max 0 (Int.min (bins - 1) i) in
      counts.(i) <- counts.(i) + 1)
    l;
  counts

let summary l =
  match l with
  | [] -> "n=0"
  | _ ->
      let m, s = mean_stddev l in
      let sorted = List.sort Float.compare l in
      let min_v = List.hd sorted and max_v = List.nth sorted (List.length sorted - 1) in
      Printf.sprintf "n=%d mean=%.3f sd=%.3f min=%.3f med=%.3f max=%.3f"
        (List.length l) m s min_v (median l) max_v
