(** Capacity-weighted failure analysis.

    The paper counts cables; operators count terabits.  This module
    assigns each cable a design capacity (fiber pairs shrink with span
    length — a transoceanic trunk carries fewer pairs than a festoon),
    and measures surviving inter-region capacity with max-flow, including
    the min-cut cables that bottleneck a corridor. *)

val cable_capacity_tbps : Infra.Cable.t -> float
(** Deterministic design capacity: [pairs × 15 Tbps] with 8 pairs below
    2,000 km, 6 below 8,000 km, 4 above (repeater power limits pair
    count on long spans). *)

val network_capacity_tbps : Infra.Network.t -> float
(** Total installed capacity. *)

type corridor = {
  name : string;
  from_countries : string list;
  to_countries : string list;
}

val atlantic : corridor
(** US/Canada ↔ Europe. *)

val brazil_europe : corridor
val pacific : corridor
(** US ↔ East Asia. *)

val asia_europe : corridor

type corridor_report = {
  corridor : corridor;
  healthy_tbps : float;
  expected_tbps : float;  (** mean over storm trials *)
  surviving_pct : float;
  min_cut_cables : string list;  (** bottleneck cables of the healthy corridor *)
}

val analyze_corridor :
  ?trials:int ->
  ?seed:int ->
  ?spacing_km:float ->
  ?jobs:int ->
  network:Infra.Network.t ->
  model:Failure_model.t ->
  corridor ->
  corridor_report
(** Max-flow capacity between the corridor's country groups, healthy and
    after Monte-Carlo storm failures ({!Plan.run_trials_par}:
    deterministic in [seed] for any [jobs]).  Corridors whose side
    resolves to no nodes report zeros. *)

val standard_report :
  ?trials:int -> ?jobs:int -> network:Infra.Network.t -> model:Failure_model.t ->
  unit -> corridor_report list
(** The four standard corridors. *)
