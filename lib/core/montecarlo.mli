(** Monte-Carlo failure trials over a cable network.

    The experiment unit of Figs 6–8: kill each cable independently with
    its death probability (≥ 1 repeater failing), then measure the
    fraction of cables failed and of nodes unreachable.  Following §4.3.1
    of the paper, a node is unreachable when {e all} cables landing at it
    have failed.

    Trial sampling lives in {!Plan}: callers that run many analyses over
    the same [(network, model, spacing)] triple should {!Plan.compile}
    once and pass the plan around; {!run} is the convenience wrapper that
    compiles and immediately runs. *)

type trial_result = {
  dead : bool array;
      (** per-cable death flags, indexed by cable id (a snapshot of the
          trial's {!Deadset.t}, safe to keep) *)
  cables_failed_pct : float;
  nodes_unreachable_pct : float;
}

type series = {
  cables_mean : float;
  cables_std : float;
  nodes_mean : float;
  nodes_std : float;
}
(** Mean ± stddev over the trials, in percent. *)

val trial : Rng.t -> plan:Plan.t -> trial_result
(** One trial against a compiled plan. *)

val cables_failed_pct : Infra.Network.t -> Deadset.t -> float

val nodes_unreachable_pct : Infra.Network.t -> Deadset.t -> float
(** Percentage of {e cable-bearing} nodes whose every incident cable is
    dead (nodes without any cable are excluded from the denominator).
    Network-only reference path; trial loops holding a compiled plan use
    the allocation-free {!Plan.unreachable_attached_pct}, which computes
    the same value. *)

val run_plan : ?trials:int -> ?jobs:int -> seed:int -> Plan.t -> series
(** [run_plan plan] aggregates [trials] (default 10) independent trials
    of an already-compiled plan through {!Plan.run_trials_par}.
    Deterministic in [seed] alone — [jobs] (default
    {!Exec.default_jobs}) only changes how many domains sample, never
    the result.  @raise Invalid_argument if [trials <= 0]. *)

val run :
  ?trials:int ->
  ?jobs:int ->
  seed:int ->
  network:Infra.Network.t ->
  spacing_km:float ->
  model:Failure_model.t ->
  unit ->
  series
(** [run] aggregates [trials] (default 10, as in the paper) independent
    trials: [Plan.compile] followed by {!run_plan}.  Deterministic in
    [seed] for any [jobs].  @raise Invalid_argument if [trials <= 0] or
    [spacing_km <= 0.]. *)

val expected_cables_failed_pct :
  network:Infra.Network.t -> spacing_km:float -> model:Failure_model.t -> float
(** Closed-form expectation (no sampling): mean of the per-cable death
    probabilities, in percent.  Used by tests to validate the Monte-Carlo
    engine and by the mitigation planner.  Equivalent to compiling a plan
    and reading {!Plan.expected_cables_failed_pct}. *)
