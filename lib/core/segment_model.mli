(** Segment-level failure ablation.

    The paper assumes a single repeater failure kills the {e entire}
    multi-branch cable ("even a single repeater failure can leave all
    parallel fibers in the cable unusable", §3.2.1).  That is pessimistic
    for branched systems: in practice a branching unit can isolate a dead
    segment while other branches keep working.  This ablation fails each
    landing-to-landing hop independently (repeaters apportioned to hops by
    great-circle share) and measures how much of the paper's headline
    survives the assumption change. *)

type comparison = {
  cable_level_nodes_pct : float;  (** nodes unreachable, paper's model *)
  segment_level_nodes_pct : float;  (** nodes unreachable, hop-level model *)
  cable_level_cables_pct : float;
  segment_level_segments_pct : float;  (** hops failed, hop-level model *)
}

val trial_segments : Rng.t -> plan:Plan.t -> bool array
(** One hop-level trial against a compiled plan: element [i] is the death
    flag of the [i]-th hop in cable-major order (the edge order of
    {!Infra.Network.to_graph}).  Per-hop death probabilities are derived
    from the plan's per-repeater probabilities and the hop lengths, so
    this does {e not} consume the plan's per-cable draw sequence. *)

val nodes_unreachable_pct_segments : Infra.Network.t -> bool array -> float
(** A node is unreachable when every incident {e hop} is dead. *)

val compare_models :
  ?trials:int ->
  ?seed:int ->
  ?spacing_km:float ->
  network:Infra.Network.t ->
  model:Failure_model.t ->
  unit ->
  comparison
(** Same failure state through both assumptions (default 10 trials). *)
