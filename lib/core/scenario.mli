(** End-to-end storm scenarios: CME → forecast → GIC → failures.

    Ties the whole pipeline together for the examples and the CLI: a CME
    is launched, the warning timeline computed, the expected Dst mapped to
    a disturbance, and the failure impact on one or more networks
    evaluated with both the paper's probabilistic model (tier chosen by
    storm class) and the physics-based GIC model. *)

type impact = {
  network : string;
  model : Failure_model.t;
  cables_failed_pct : float;
  nodes_unreachable_pct : float;
}

type t = {
  cme : Spaceweather.Cme.t;
  dst_nt : float;
  severity : Spaceweather.Dst.severity;
  timeline : Spaceweather.Forecast.timeline;
  impacts : impact list;
}

val model_for_severity : Spaceweather.Dst.severity -> Failure_model.t
(** Paper-style tiered model matched to the storm class: S2 for
    severe/extreme storms, S1 for Carrington-class, a mild tier below. *)

val run :
  ?trials:int ->
  ?seed:int ->
  ?spacing_km:float ->
  ?use_physical:bool ->
  ?jobs:int ->
  cme:Spaceweather.Cme.t ->
  networks:(string * Infra.Network.t) list ->
  unit ->
  t
(** Evaluate a scenario.  With [use_physical] (default false) the
    GIC-physical model is also run per network and appended to
    [impacts].  Monte-Carlo trials run on {!Plan.run_trials_par}:
    deterministic in [seed] for any [jobs]. *)

val historical : name:string -> networks:(string * Infra.Network.t) list -> t option
(** Scenario for a catalogued historical event ({!Spaceweather.Storm_catalog});
    [None] when the name does not resolve. *)

val pp : Format.formatter -> t -> unit
