let cable_capacity_tbps (c : Infra.Cable.t) =
  let pairs =
    if c.Infra.Cable.length_km < 2000.0 then 8.0
    else if c.Infra.Cable.length_km < 8000.0 then 6.0
    else 4.0
  in
  pairs *. 15.0

let network_capacity_tbps net =
  let total = ref 0.0 in
  for i = 0 to Infra.Network.nb_cables net - 1 do
    total := !total +. cable_capacity_tbps (Infra.Network.cable net i)
  done;
  !total

type corridor = {
  name : string;
  from_countries : string list;
  to_countries : string list;
}

let atlantic =
  {
    name = "US/Canada - Europe";
    from_countries = [ "United States"; "Canada" ];
    to_countries =
      [ "United Kingdom"; "Ireland"; "France"; "Spain"; "Portugal"; "Germany";
        "Netherlands"; "Belgium"; "Denmark"; "Norway"; "Iceland" ];
  }

let brazil_europe =
  { name = "Brazil - Europe"; from_countries = [ "Brazil" ];
    to_countries = [ "Portugal"; "Spain"; "France" ] }

let pacific =
  { name = "US - East Asia"; from_countries = [ "United States" ];
    to_countries = [ "Japan"; "China"; "Taiwan"; "South Korea"; "Philippines" ] }

let asia_europe =
  { name = "Asia - Europe"; from_countries = [ "India"; "Singapore"; "China"; "Japan" ];
    to_countries = [ "France"; "Italy"; "United Kingdom"; "Germany"; "Greece" ] }

type corridor_report = {
  corridor : corridor;
  healthy_tbps : float;
  expected_tbps : float;
  surviving_pct : float;
  min_cut_cables : string list;
}

let group_nodes net countries =
  List.concat_map (Datasets.Submarine.nodes_in_country net) countries

(* [dead] is a predicate on cable ids so the trial driver can pass its
   bitvector dead-set without materializing a bool array per trial. *)
let flow_between net ~dead ~sources ~sinks =
  let g = Infra.Network.graph_surviving net ~dead in
  (* Rebuild the edge -> cable mapping with the same keep predicate the
     graph used, so capacities line up with edge ids. *)
  let edge_cable = Hashtbl.create 1024 in
  let next = ref 0 in
  for c = 0 to Infra.Network.nb_cables net - 1 do
    if not (dead c) then begin
      let cable = Infra.Network.cable net c in
      let hops = Infra.Cable.hop_count cable in
      for _ = 1 to hops do
        Hashtbl.replace edge_cable !next c;
        incr next
      done
    end
  done;
  let capacity e =
    match Hashtbl.find_opt edge_cable e with
    | Some c -> cable_capacity_tbps (Infra.Network.cable net c)
    | None -> 0.0
  in
  Netgraph.Flow.max_flow_multi g ~capacity ~sources ~sinks

let analyze_corridor ?(trials = 10) ?(seed = 71) ?(spacing_km = 150.0) ?jobs ~network
    ~model corridor =
  let sources = group_nodes network corridor.from_countries in
  let sinks =
    (* A node can belong to both shores only through data errors; drop
       overlaps from the sink side. *)
    List.filter
      (fun n -> not (List.mem n sources))
      (group_nodes network corridor.to_countries)
  in
  if sources = [] || sinks = [] then
    { corridor; healthy_tbps = 0.0; expected_tbps = 0.0; surviving_pct = 0.0;
      min_cut_cables = [] }
  else begin
    let healthy = flow_between network ~dead:(fun _ -> false) ~sources ~sinks in
    let p = Plan.compile ~spacing_km ~network ~model () in
    let acc =
      Plan.run_trials_par ?jobs p ~trials ~seed ~init:0.0
        ~map:(fun ~rng:_ ~dead -> flow_between network ~dead:(Deadset.get dead) ~sources ~sinks)
        ~merge:( +. )
    in
    let expected = acc /. float_of_int trials in
    (* Min-cut cables of the healthy corridor: multi-terminal minimum cut
       between the two shores. *)
    let min_cut_cables =
      let g, edge_cable = Infra.Network.to_graph network in
      let capacity e =
        let c = edge_cable e in
        if c >= 0 then cable_capacity_tbps (Infra.Network.cable network c) else 0.0
      in
      Netgraph.Flow.min_cut_edges_multi g ~capacity ~sources ~sinks
      |> List.map (fun e -> (Infra.Network.cable network (edge_cable e)).Infra.Cable.name)
      |> List.sort_uniq String.compare
    in
    {
      corridor;
      healthy_tbps = healthy;
      expected_tbps = expected;
      surviving_pct = (if healthy <= 0.0 then 0.0 else 100.0 *. expected /. healthy);
      min_cut_cables;
    }
  end

let standard_report ?trials ?jobs ~network ~model () =
  List.map
    (analyze_corridor ?trials ?jobs ~network ~model)
    [ atlantic; brazil_europe; pacific; asia_europe ]
