(** Inter-continental traffic shifts after cable failures (§5.5).

    The paper's example: if every New York cable dies, BGP shifts the
    transatlantic demand onto surviving paths and may overload cables in
    California.  This module builds a gravity-model demand matrix between
    continents, routes it over the (surviving) submarine graph along
    shortest paths, and measures deliverability and per-cable load. *)

type demand = {
  from_continent : Geo.Region.continent;
  to_continent : Geo.Region.continent;
  volume : float;  (** arbitrary units; total normalized to 100 *)
}

val gravity_demands : unit -> demand list
(** Demand ∝ product of the continents' population shares (Antarctica
    excluded), normalized to a total of 100 units across ordered-free
    pairs. *)

type routing = {
  delivered_pct : float;  (** demand share with a surviving path *)
  max_cable_load : float;  (** largest per-cable load, demand units *)
  mean_cable_load : float;  (** over cables carrying any traffic *)
  overloaded_cables : int;  (** cables above [overload_factor] × baseline max *)
}

val route :
  ?dead:bool array ->
  ?baseline_max:float ->
  network:Infra.Network.t ->
  demands:demand list ->
  unit ->
  routing
(** Route each continent-pair demand along one shortest (by length) path
    between the continents' highest-degree surviving landing stations.
    [dead] marks failed cables (default: none).  Overload counts cables
    whose load exceeds twice [baseline_max], the healthy network's peak
    load; when absent it is computed by routing the healthy network first
    ([dead] with failures) or taken from this very run (healthy call).
    Callers looping over many failure samples should pass the healthy
    [max_cable_load] explicitly to avoid re-routing the baseline each
    time — {!storm_shift} does. *)

val storm_shift :
  ?trials:int ->
  ?seed:int ->
  ?spacing_km:float ->
  ?jobs:int ->
  network:Infra.Network.t ->
  model:Failure_model.t ->
  unit ->
  routing * routing
(** [(baseline, after)] — average routing metrics over Monte-Carlo storm
    trials ({!Plan.run_trials_par}: deterministic in [seed] for any
    [jobs]). *)
