type comparison = {
  cable_level_nodes_pct : float;
  segment_level_nodes_pct : float;
  cable_level_cables_pct : float;
  segment_level_segments_pct : float;
}

(* Hop lengths of a cable, apportioning the stated length by great-circle
   share. *)
let hop_lengths network (cable : Infra.Cable.t) =
  let landings =
    List.map (fun l -> (l, Infra.Network.node_coord network l)) cable.Infra.Cable.landings
  in
  Infra.Cable.segment_lengths landings ~length_km:cable.Infra.Cable.length_km

let trial_segments rng ~plan =
  let network = Plan.network plan in
  let spacing_km = Plan.spacing_km plan in
  let hops = ref [] in
  for c = 0 to Infra.Network.nb_cables network - 1 do
    let cable = Infra.Network.cable network c in
    let p = Plan.per_repeater_prob plan c in
    List.iter
      (fun len ->
        let n = Infra.Repeater.count_for_length ~spacing_km ~length_km:len in
        let death = 1.0 -. ((1.0 -. p) ** float_of_int n) in
        hops := Rng.bernoulli rng ~p:death :: !hops)
      (hop_lengths network cable)
  done;
  Array.of_list (List.rev !hops)

let nodes_unreachable_pct_segments network dead_hops =
  let n = Infra.Network.nb_nodes network in
  let has_hop = Array.make n false and has_live = Array.make n false in
  let hop_idx = ref 0 in
  for c = 0 to Infra.Network.nb_cables network - 1 do
    let cable = Infra.Network.cable network c in
    let rec walk = function
      | a :: (b :: _ as rest) ->
          let dead = dead_hops.(!hop_idx) in
          incr hop_idx;
          has_hop.(a) <- true;
          has_hop.(b) <- true;
          if not dead then begin
            has_live.(a) <- true;
            has_live.(b) <- true
          end;
          walk rest
      | [ _ ] | [] -> ()
    in
    walk cable.Infra.Cable.landings
  done;
  let total = ref 0 and unreachable = ref 0 in
  for i = 0 to n - 1 do
    if has_hop.(i) then begin
      incr total;
      if not has_live.(i) then incr unreachable
    end
  done;
  if !total = 0 then 0.0 else 100.0 *. float_of_int !unreachable /. float_of_int !total

(* Not Plan.run_trials: the segment comparison consumes TWO master splits
   per trial (one for the cable-level trial, one for the segment-level
   re-roll), which the shared driver's one-split-per-trial contract can't
   express without changing the historical draw sequence. *)
let compare_models ?(trials = 10) ?(seed = 83) ?(spacing_km = 150.0) ~network ~model () =
  let plan = Plan.compile ~spacing_km ~network ~model () in
  let master = Rng.create seed in
  let cn = ref 0.0 and sn = ref 0.0 and cc = ref 0.0 and ss = ref 0.0 in
  for _ = 1 to trials do
    let rng = Rng.split master in
    let cable_trial = Montecarlo.trial rng ~plan in
    cn := !cn +. cable_trial.Montecarlo.nodes_unreachable_pct;
    cc := !cc +. cable_trial.Montecarlo.cables_failed_pct;
    let rng2 = Rng.split master in
    let hops = trial_segments rng2 ~plan in
    sn := !sn +. nodes_unreachable_pct_segments network hops;
    let failed = Array.fold_left (fun a d -> if d then a + 1 else a) 0 hops in
    ss := !ss +. (100.0 *. float_of_int failed /. float_of_int (Int.max 1 (Array.length hops)))
  done;
  let t = float_of_int trials in
  {
    cable_level_nodes_pct = !cn /. t;
    segment_level_nodes_pct = !sn /. t;
    cable_level_cables_pct = !cc /. t;
    segment_level_segments_pct = !ss /. t;
  }
