type params = {
  ships : int;
  base_repair_days : float;
  transit_days_per_1000km : float;
  faults_per_10_repeaters : float;
}

let default_params =
  { ships = 60; base_repair_days = 10.0; transit_days_per_1000km = 1.5;
    faults_per_10_repeaters = 1.0 }

type timeline = {
  days_to_50_pct : float;
  days_to_90_pct : float;
  days_to_full : float;
  series : (float * float) list;
  total_ship_days : float;
}

let job_duration params (cable : Infra.Cable.t) =
  let repeaters =
    float_of_int (Infra.Cable.repeater_count cable ~spacing_km:150.0)
  in
  let faults = Float.max 1.0 (repeaters /. 10.0 *. params.faults_per_10_repeaters) in
  let transit = cable.Infra.Cable.length_km /. 1000.0 *. params.transit_days_per_1000km in
  (faults *. params.base_repair_days) +. transit

let plan ?(params = default_params) ~network ~dead () =
  if Array.length dead <> Infra.Network.nb_cables network then
    invalid_arg "Recovery.plan: dead array size mismatch";
  if params.ships <= 0 then invalid_arg "Recovery.plan: non-positive fleet";
  let jobs = ref [] in
  Array.iteri
    (fun c is_dead ->
      if is_dead then jobs := job_duration params (Infra.Network.cable network c) :: !jobs)
    dead;
  (* Shortest job first: restores the most cables earliest. *)
  let jobs = List.sort Float.compare !jobs in
  let total_jobs = List.length jobs in
  if total_jobs = 0 then
    { days_to_50_pct = 0.0; days_to_90_pct = 0.0; days_to_full = 0.0;
      series = [ (0.0, 1.0) ]; total_ship_days = 0.0 }
  else begin
    (* Greedy multi-server schedule: assign each job to the ship that
       frees up first. *)
    let ships = Array.make params.ships 0.0 in
    let completions = ref [] in
    List.iter
      (fun d ->
        (* Ship with minimal busy-until. *)
        let best = ref 0 in
        Array.iteri (fun i t -> if t < ships.(!best) then best := i) ships;
        ships.(!best) <- ships.(!best) +. d;
        completions := ships.(!best) :: !completions)
      jobs;
    let completions = List.sort Float.compare !completions in
    let total_ship_days = List.fold_left ( +. ) 0.0 jobs in
    let at_fraction f =
      let k = Int.max 1 (int_of_float (Float.ceil (f *. float_of_int total_jobs))) in
      List.nth completions (k - 1)
    in
    let series =
      List.mapi
        (fun i day -> (day, float_of_int (i + 1) /. float_of_int total_jobs))
        completions
    in
    {
      days_to_50_pct = at_fraction 0.5;
      days_to_90_pct = at_fraction 0.9;
      days_to_full = at_fraction 1.0;
      series;
      total_ship_days;
    }
  end

let us_outage_cost_usd ~dark_fraction ~days = 7e9 *. dark_fraction *. days

(* The representative restoration curve: the trial whose days_to_90_pct
   is the (lower) median, ties broken by trial order.  Averaging the
   scalar fields while returning an arbitrary trial's curve — as an
   earlier version did with the last trial — made the curve disagree
   with the summary numbers printed next to it. *)
let median_series tls =
  let indexed = List.mapi (fun i t -> (t.days_to_90_pct, i, t)) tls in
  let sorted =
    List.sort
      (fun (a, i, _) (b, j, _) ->
        match Float.compare a b with 0 -> Int.compare i j | c -> c)
      indexed
  in
  match List.nth_opt sorted ((List.length sorted - 1) / 2) with
  | Some (_, _, t) -> t.series
  | None -> []

let storm_recovery ?(trials = 10) ?(seed = 53) ?(spacing_km = 150.0) ?jobs ~network
    ~model () =
  let p = Plan.compile ~spacing_km ~network ~model () in
  let tls, deads =
    Plan.run_trials_par ?jobs p ~trials ~seed ~init:([], [])
      ~map:(fun ~rng:_ ~dead ->
        let failed = float_of_int (Deadset.count_dead dead) in
        (plan ~network ~dead:(Deadset.to_bool_array dead) (), failed))
      ~merge:(fun (tls, deads) (tl, failed) -> (tl :: tls, failed :: deads))
  in
  let avg f = Stats.mean (List.map f tls) in
  let combined =
    {
      days_to_50_pct = avg (fun t -> t.days_to_50_pct);
      days_to_90_pct = avg (fun t -> t.days_to_90_pct);
      days_to_full = avg (fun t -> t.days_to_full);
      series = median_series (List.rev tls);
      total_ship_days = avg (fun t -> t.total_ship_days);
    }
  in
  (combined, Stats.mean deads)
