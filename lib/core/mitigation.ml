(* Shutdown planning. *)

type shutdown_plan = {
  actionable_lead_h : float;
  power_off_factor : float;
  cables_failed_on_pct : float;
  cables_failed_off_pct : float;
  benefit_pct : float;
}

let shutdown_plan ?(power_off_factor = 0.8) ~cme ~network () =
  if power_off_factor <= 0.0 || power_off_factor > 1.0 then
    invalid_arg "Mitigation.shutdown_plan: factor outside (0, 1]";
  let dst = Spaceweather.Cme.expected_dst cme in
  let timeline = Spaceweather.Forecast.timeline cme in
  let on_model = Failure_model.Gic_physical { dst_nt = dst; scale_a = 30.0 } in
  (* De-powering scales the peak GIC by [power_off_factor]; equivalent to
     raising the damage scale by 1/factor. *)
  let off_model =
    Failure_model.Gic_physical { dst_nt = dst; scale_a = 30.0 /. power_off_factor }
  in
  let expected model =
    Montecarlo.expected_cables_failed_pct ~network ~spacing_km:150.0 ~model
  in
  let on_pct = expected on_model and off_pct = expected off_model in
  {
    actionable_lead_h = timeline.Spaceweather.Forecast.actionable_lead_h;
    power_off_factor;
    cables_failed_on_pct = on_pct;
    cables_failed_off_pct = off_pct;
    benefit_pct = on_pct -. off_pct;
  }

type shutdown_decision = {
  storm_window_h : float;
  failure_fraction_powered : float;
  failure_fraction_off : float;
  repair_days_powered : float;
  repair_days_off : float;
  downtime_powered_days : float;
  downtime_off_days : float;
  recommended : bool;
}

let shutdown_decision ?(power_off_factor = 0.8) ?(severe_dst = -250.0) ~cme ~network () =
  let dst = Spaceweather.Cme.expected_dst cme in
  let profile = Gic.Time_series.default ~dst_min:dst in
  let storm_window_h = Gic.Time_series.duration_below profile ~dst_threshold:severe_dst in
  let expected scale_a =
    Montecarlo.expected_cables_failed_pct ~network ~spacing_km:150.0
      ~model:(Failure_model.Gic_physical { dst_nt = dst; scale_a })
    /. 100.0
  in
  let f_on = expected 30.0 in
  let f_off = expected (30.0 /. power_off_factor) in
  (* Shortest-job-first fleet approximation: 90% of the cable count is
     restored after roughly 90% of the total ship-days divided by the
     fleet, because short jobs are front-loaded. *)
  let mean_job =
    let m = Infra.Network.nb_cables network in
    if m = 0 then 0.0
    else begin
      let sum = ref 0.0 in
      for c = 0 to m - 1 do
        let cable = Infra.Network.cable network c in
        let repeaters = float_of_int (Infra.Cable.repeater_count cable ~spacing_km:150.0) in
        sum :=
          !sum
          +. (Float.max 1.0 (repeaters /. 10.0) *. Recovery.default_params.Recovery.base_repair_days)
          +. (cable.Infra.Cable.length_km /. 1000.0
             *. Recovery.default_params.Recovery.transit_days_per_1000km)
      done;
      !sum /. float_of_int m
    end
  in
  let repair_days f =
    let dead = f *. float_of_int (Infra.Network.nb_cables network) in
    0.9 *. dead *. mean_job /. float_of_int Recovery.default_params.Recovery.ships
  in
  let repair_on = repair_days f_on and repair_off = repair_days f_off in
  let downtime_powered_days = f_on *. repair_on in
  (* Forecast uncertainty means a precautionary shutdown is at least a
     day long even when the model predicts a short severe window. *)
  let shutdown_days = Float.max 1.0 (storm_window_h /. 24.0) in
  let downtime_off_days = shutdown_days +. (f_off *. repair_off) in
  {
    storm_window_h;
    failure_fraction_powered = f_on;
    failure_fraction_off = f_off;
    repair_days_powered = repair_on;
    repair_days_off = repair_off;
    downtime_powered_days;
    downtime_off_days;
    recommended = downtime_off_days < downtime_powered_days;
  }

(* Topology augmentation. *)

type augmentation = {
  from_city : string;
  to_city : string;
  length_km : float;
  gain : float;
}

let candidate_links =
  [
    ("Fortaleza", "Lagos");
    ("Fortaleza", "Sines");
    ("Rio de Janeiro", "Cape Town");
    ("Miami", "Fortaleza");
    ("Panama City", "Honolulu");
    ("Mumbai", "Mombasa");
    ("Singapore", "Colombo");
    ("Darwin", "Davao");
    ("Lima", "Papeete");
    ("Papeete", "Sydney");
    ("Honolulu", "Manila");
    ("Cape Town", "Perth");
  ]

let continent_of_node net i =
  Geo.Region.continent_of_nearest (Infra.Network.node_coord net i)

(* Survival probability of cable [c] under a compiled plan. *)
let survival plan c = 1.0 -. Plan.death_prob plan c

(* Expected number of ordered-free continent pairs with >= 1 surviving
   direct cable.  Pairs with no cable at all contribute 0. *)
let pair_key a b =
  let sa = Geo.Region.continent_to_string a and sb = Geo.Region.continent_to_string b in
  if String.compare sa sb <= 0 then (sa, sb) else (sb, sa)

let surviving_pairs_with ~plan extra_cables =
  let network = Plan.network plan in
  let death_products = Hashtbl.create 32 in
  let note a b surv =
    if a <> b then begin
      let key = pair_key a b in
      let cur = Option.value ~default:1.0 (Hashtbl.find_opt death_products key) in
      Hashtbl.replace death_products key (cur *. (1.0 -. surv))
    end
  in
  for c = 0 to Infra.Network.nb_cables network - 1 do
    let cable = Infra.Network.cable network c in
    let surv = survival plan c in
    let continents =
      List.sort_uniq compare (List.map (continent_of_node network) cable.Infra.Cable.landings)
    in
    List.iter
      (fun a -> List.iter (fun b -> note a b surv) continents)
      continents
  done;
  (* Extra (hypothetical) cables: (continent_a, continent_b, survival). *)
  List.iter (fun (a, b, surv) -> note a b surv) extra_cables;
  Hashtbl.fold (fun _ death acc -> acc +. (1.0 -. death)) death_products 0.0

let expected_surviving_pairs ?(state = Failure_model.s1) ~network () =
  surviving_pairs_with ~plan:(Plan.compile ~network ~model:state ()) []

(* Survival of a hypothetical new low-latitude cable between two cities
   under the tiered model: its tier comes from its endpoint latitudes. *)
let hypothetical_survival ~state a_city b_city =
  let a = Datasets.Cities.find a_city and b = Datasets.Cities.find b_city in
  let length_km = 1.1 *. Geo.Distance.haversine_km a.Datasets.Cities.pos b.Datasets.Cities.pos in
  let max_abs_lat =
    Float.max (Geo.Coord.abs_lat a.Datasets.Cities.pos) (Geo.Coord.abs_lat b.Datasets.Cities.pos)
  in
  let per_repeater =
    match state with
    | Failure_model.Uniform p -> p
    | Failure_model.Latitude_tiered { high; mid; low; mid_threshold; high_threshold }
    | Failure_model.Geomag_tiered { high; mid; low; mid_threshold; high_threshold } -> (
        (* For hypothetical cables the geographic and geomagnetic variants
           are approximated alike from the endpoint latitudes. *)
        match Geo.Latband.tier_of_abs_lat ~mid_threshold ~high_threshold max_abs_lat with
        | Geo.Latband.High -> high
        | Geo.Latband.Mid -> mid
        | Geo.Latband.Low -> low)
    | Failure_model.Gic_physical _ -> 0.01
  in
  let n = Infra.Repeater.count_for_length ~spacing_km:150.0 ~length_km in
  let surv = (1.0 -. per_repeater) ** float_of_int n in
  (a, b, length_km, surv)

let plan_augmentation ?(budget = 3) ?(state = Failure_model.s1) ~network () =
  if budget < 0 then invalid_arg "Mitigation.plan_augmentation: negative budget";
  (* One compile serves the base score and every candidate × round
     rescore below — the greedy loop used to recompile the model for
     each. *)
  let plan = Plan.compile ~network ~model:state () in
  let base = surviving_pairs_with ~plan [] in
  let rec pick chosen chosen_extra base_score remaining budget_left =
    if budget_left = 0 then List.rev chosen
    else
      let scored =
        List.map
          (fun (ca, cb) ->
            let a, b, len, surv = hypothetical_survival ~state ca cb in
            let extra =
              ( Geo.Region.continent_of_nearest a.Datasets.Cities.pos,
                Geo.Region.continent_of_nearest b.Datasets.Cities.pos,
                surv )
            in
            let score = surviving_pairs_with ~plan (extra :: chosen_extra) in
            ((ca, cb), len, extra, score -. base_score))
          remaining
      in
      match List.sort (fun (_, _, _, g1) (_, _, _, g2) -> Float.compare g2 g1) scored with
      | [] -> List.rev chosen
      | ((ca, cb), len, extra, gain) :: _ ->
          if gain <= 1e-9 then List.rev chosen
          else
            pick
              ({ from_city = ca; to_city = cb; length_km = len; gain } :: chosen)
              (extra :: chosen_extra) (base_score +. gain)
              (List.filter (fun (x, y) -> (x, y) <> (ca, cb)) remaining)
              (budget_left - 1)
  in
  pick [] [] base candidate_links budget

(* Partition prediction. *)

let predicted_partitions ?(state = Failure_model.s1) ?(survival_cutoff = 0.5) ~network () =
  if survival_cutoff < 0.0 || survival_cutoff > 1.0 then
    invalid_arg "Mitigation.predicted_partitions: cutoff outside [0, 1]";
  let plan = Plan.compile ~network ~model:state () in
  let dead =
    Array.init (Infra.Network.nb_cables network) (fun c ->
        survival plan c < survival_cutoff)
  in
  let g = Infra.Network.graph_without_cables network ~dead in
  Netgraph.Traversal.connected_components g
  |> List.sort (fun a b -> Int.compare (List.length b) (List.length a))
