(** The paper's primary contribution: quantifying solar-superstorm impact
    on Internet infrastructure.

    - {!Failure_model}, {!Plan}, {!Montecarlo}: §4.3's repeater-failure
      machinery — models compile into plans, plans drive every trial;
    - {!Distribution}: Figs 3–5 (infrastructure vs population, lengths);
    - {!Resilience}: Figs 6–8 (uniform and latitude-tiered sweeps);
    - {!Country}: §4.3.4 country-scale case studies;
    - {!Systems}: §4.4 (ASes, data centers, DNS);
    - {!Scenario}: end-to-end CME → impact pipelines;
    - {!Sweep}: parameter grids expanded, plan-deduplicated and
      streamed as JSONL rows;
    - {!Mitigation}: §5's shutdown/augmentation/partition planning;
    - {!Stats}: shared descriptive statistics. *)

module Stats = Stats
module Deadset = Deadset
module Failure_model = Failure_model
module Plan = Plan
module Montecarlo = Montecarlo
module Distribution = Distribution
module Resilience = Resilience
module Country = Country
module Systems = Systems
module Scenario = Scenario
module Sweep = Sweep
module Mitigation = Mitigation
module Powergrid = Powergrid
module Traffic = Traffic
module Recovery = Recovery
module Resilience_test = Resilience_test
module Sensitivity = Sensitivity
module Capacity = Capacity
module Hybrid = Hybrid
module Segment_model = Segment_model
