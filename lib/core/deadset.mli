(** Dead-cable sets as [Bytes]-backed bitvectors.

    The per-trial outcome of the storm kernel — which cables died — used
    to be a [bool array]: one byte per cable, a full clearing loop per
    trial, and a counting fold per consumer.  A bitvector is 8× denser
    (the whole submarine network's flags fit in a few cache lines),
    clears with one [Bytes.fill], and counts deaths with a table-driven
    popcount; the sampling loop writes only on death, so surviving
    cables — the overwhelming majority in the sparse-failure regime —
    cost no store at all.

    Indices are cable ids, [0 .. length - 1].  A [Deadset.t] is a
    mutable scratch buffer with the same ownership contract the [bool
    array] had: trial drivers reuse one per worker and callbacks must
    copy ({!to_bool_array}) anything they keep. *)

type t

val create : int -> t
(** All-alive set for [length] cables.
    @raise Invalid_argument if negative. *)

val length : t -> int

val clear : t -> unit
(** Mark every cable alive (one memset). *)

val get : t -> int -> bool
(** [get t c] — is cable [c] dead?  @raise Invalid_argument out of
    bounds. *)

val set_dead : t -> int -> unit
(** Mark cable [c] dead.  @raise Invalid_argument out of bounds. *)

val set : t -> int -> bool -> unit
(** Set cable [c]'s flag explicitly.  @raise Invalid_argument out of
    bounds. *)

val unsafe_get : t -> int -> bool
(** {!get} without the bounds check — for kernel loops whose index range
    is already validated. *)

val unsafe_set_dead : t -> int -> unit
(** {!set_dead} without the bounds check. *)

val count_dead : t -> int
(** Number of dead cables (popcount). *)

val to_bool_array : t -> bool array
(** Snapshot as the legacy representation (allocates). *)

val of_bool_array : bool array -> t
