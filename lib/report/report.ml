(** Reporting substrate: plain-text tables, ASCII plots and world maps,
    CSV export, and the per-figure regeneration harness ({!Figures}). *)

module Table = Table
module Ascii_plot = Ascii_plot
module Worldmap = Worldmap
module Csv = Csv
module Markdown = Markdown
module Figures = Figures
module Obs_report = Obs_report
