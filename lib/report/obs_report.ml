let hist_cell ~bounds ~counts ~sum ~count =
  let mean = if count = 0 then 0.0 else sum /. float_of_int count in
  let cells =
    List.init (Array.length counts) (fun i ->
        let le =
          if i < Array.length bounds then Printf.sprintf "%g" bounds.(i) else "+Inf"
        in
        Printf.sprintf "%s:%d" le counts.(i))
  in
  Printf.sprintf "count=%d mean=%g [%s]" count mean (String.concat " " cells)

let metrics_table (snap : Obs.Metrics.snapshot) =
  let rows =
    List.map
      (fun (name, v) ->
        match v with
        | Obs.Metrics.Counter n -> [ name; "counter"; string_of_int n ]
        | Obs.Metrics.Gauge g -> [ name; "gauge"; Printf.sprintf "%g" g ]
        | Obs.Metrics.Histogram { bounds; counts; sum; count } ->
            [ name; "histogram"; hist_cell ~bounds ~counts ~sum ~count ])
      snap
  in
  Table.render ~header:[ "metric"; "kind"; "value" ] rows

let spans_table events =
  let rows =
    List.map
      (fun (s : Obs.Span.summary) ->
        [ s.Obs.Span.span_name;
          string_of_int s.Obs.Span.calls;
          Printf.sprintf "%.3f" (Int64.to_float s.Obs.Span.total_ns /. 1e6) ])
      (Obs.Span.summarize events)
  in
  Table.render ~header:[ "span"; "calls"; "total_ms" ] rows

let render ?(events = []) snap =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Observability summary\n";
  Buffer.add_string buf (metrics_table snap);
  (match Obs.Span.summarize events with
  | [] -> ()
  | _ ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (spans_table events);
      let d = Obs.Span.dropped () in
      if d > 0 then
        Buffer.add_string buf
          (Printf.sprintf "(ring full: %d oldest events dropped)\n" d));
  Buffer.contents buf
