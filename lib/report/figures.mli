(** Figure-regeneration harness: one function per table/figure of the
    paper (DESIGN.md §3).  Each returns the rendered text (data rows plus
    an ASCII plot where the paper has a plot); the bench executable and
    the CLI print them. *)

type context
(** Lazy handle on the figure datasets.  Construction is free; each
    dataset is built on first use (via [Datasets.Cache], shared
    process-wide), so rendering one figure builds only what that figure
    reads. *)

val make_context : ?seed:int -> ?itu_scale:float -> ?caida_ases:int -> unit -> context
(** [itu_scale] (default 0.3) and [caida_ases] (default 8000) trade
    fidelity for run time; the defaults keep [dune exec bench/main.exe]
    under a few minutes. *)

val submarine : context -> Infra.Network.t
val intertubes : context -> Infra.Network.t
val itu : context -> Infra.Network.t
val ases : context -> Datasets.Caida.asys array
val dns : context -> Datasets.Dns_roots.instance array
val ixps : context -> Datasets.Ixp.t array
(** Dataset accessors; each forces (and caches) its dataset on first
    call. *)

val fig1 : context -> string
(** World map of submarine cables + landing stations + IXPs. *)

val fig2 : context -> string
(** World map of hyperscale data centers. *)

val fig3 : context -> string
val fig4a : context -> string
val fig4b : context -> string
val fig5 : context -> string

val fig6 : ?trials:int -> context -> string
val fig7 : ?trials:int -> context -> string
val fig8 : ?trials:int -> context -> string

val fig9a : context -> string
val fig9b : context -> string

val countries : ?trials:int -> context -> string
(** §4.3.4 case-study table. *)

val systems : context -> string
(** §4.4 systems table (ASes / DCs / DNS). *)

val probability : unit -> string
(** §2.3 occurrence-probability table. *)

val mitigation : context -> string
(** §5 planning outputs: shutdown benefit, augmentation plan,
    predicted partitions. *)

(** {1 Extension experiments} (DESIGN.md §3 ablations and the paper's
    future-work items) *)

val leo : unit -> string
(** §3.3 satellite analysis: Feb-2022 replay and a Carrington assessment
    of a Starlink-class constellation. *)

val grid_coupling : ?trials:int -> context -> string
(** §5.5 power-grid interdependence: coupled darkness and amplification. *)

val aftermath : ?trials:int -> context -> string
(** Recovery timeline, economic cost and traffic-shift analysis. *)

val service_resilience : context -> string
(** §5.4 resilience tests of sample geo-distributed services. *)

val ablations : ?trials:int -> context -> string
(** Threshold / geomagnetic-tier / spacing / repeater-fragility
    sensitivity tables. *)

val risk_horizon : unit -> string
(** Stochastic storm sequences: decadal Carrington probabilities under
    the modulated Poisson model. *)

val interdomain : unit -> string
(** §5.3: BGP vs. multipath continuity on a Gao–Rexford AS topology under
    storm-induced AS failures. *)

val capacity : ?trials:int -> context -> string
(** Capacity-weighted corridor analysis: max-flow Tbps between shores,
    surviving share under S1/S2 and the min-cut cables. *)

val all : ?trials:int -> context -> (string * string) list
(** [(figure id, rendered text)] for everything above, in paper order;
    paper figures first, extension experiments after. *)
