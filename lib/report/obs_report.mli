(** Human-readable rendering of {!Obs} metric snapshots and span traces,
    using the shared {!Table} layout.  This is the [--metrics -] output of
    the CLI; the machine formats live in [Obs.Export]. *)

val metrics_table : Obs.Metrics.snapshot -> string

val spans_table : Obs.Span.event list -> string
(** Aggregated per-span-name calls and total inclusive milliseconds. *)

val render : ?events:Obs.Span.event list -> Obs.Metrics.snapshot -> string
(** Full summary: metrics table plus (when [events] pair up into spans) a
    span table and a dropped-events note. *)
