(* Datasets are memoized lazies: a context costs nothing to make, each
   dataset is built on the first figure that needs it (through the
   process-wide Datasets.Cache, so contexts with the same parameters
   share the builds too). *)
type context = {
  submarine : Infra.Network.t Lazy.t;
  intertubes : Infra.Network.t Lazy.t;
  itu : Infra.Network.t Lazy.t;
  ases : Datasets.Caida.asys array Lazy.t;
  dns : Datasets.Dns_roots.instance array Lazy.t;
  ixps : Datasets.Ixp.t array Lazy.t;
}

let make_context ?(seed = Datasets.default_seed) ?(itu_scale = 0.3) ?(caida_ases = 8000)
    () =
  {
    submarine = lazy (Datasets.Cache.submarine ~seed ());
    intertubes = lazy (Datasets.Cache.intertubes ~seed ());
    itu = lazy (Datasets.Cache.itu ~seed ~scale:itu_scale ());
    ases = lazy (Datasets.Cache.caida ~seed ~ases:caida_ases ());
    dns = lazy (Datasets.Cache.dns_roots ~seed ());
    ixps = lazy (Datasets.Cache.ixp ~seed ());
  }

let submarine ctx = Lazy.force ctx.submarine
let intertubes ctx = Lazy.force ctx.intertubes
let itu ctx = Lazy.force ctx.itu
let ases ctx = Lazy.force ctx.ases
let dns ctx = Lazy.force ctx.dns
let ixps ctx = Lazy.force ctx.ixps

let networks ctx =
  [ ("Submarine", submarine ctx); ("Intertubes", intertubes ctx); ("ITU", itu ctx) ]

let fig1 ctx =
  let ixp_points = Array.to_list (Array.map (fun i -> i.Datasets.Ixp.pos) (ixps ctx)) in
  let layers =
    Worldmap.network_layers ~cable_glyph:'-' ~node_glyph:'o' (submarine ctx)
    @ [ Worldmap.Points ('X', ixp_points) ]
  in
  "Figure 1: submarine cables (-), landing stations (o) and IXPs (X)\n"
  ^ Worldmap.render layers

let fig2 _ctx =
  let points op =
    List.map (fun s -> s.Datasets.Datacenters.pos) (Datasets.Datacenters.(match op with `G -> google | `F -> facebook))
  in
  "Figure 2: data centers - Google (G), Facebook (F)\n"
  ^ Worldmap.render
      [ Worldmap.Points ('G', points `G); Worldmap.Points ('F', points `F) ]

let to_plot_series (l : (string * (float * float) list) list) =
  List.map (fun (label, points) -> { Ascii_plot.label; points }) l

let fig3 ctx =
  let series = Stormsim.Distribution.fig3 ~submarine:(submarine ctx) in
  let plot =
    Ascii_plot.plot ~x_label:"latitude (deg)" ~y_label:"probability density (%)"
      ~title:"Figure 3: PDF of population and submarine endpoints vs latitude"
      (to_plot_series
         (List.map (fun (s : Stormsim.Distribution.pdf_series) -> (s.label, s.points)) series))
  in
  let above40 (s : Stormsim.Distribution.pdf_series) =
    Stormsim.Distribution.mass_above s ~threshold:40.0
  in
  plot
  ^ String.concat ""
      (List.map
         (fun (s : Stormsim.Distribution.pdf_series) ->
           Printf.sprintf "  %s: %.1f%% above |40 deg|\n" s.label (above40 s))
         series)

let threshold_figure ~title series =
  let plot =
    Ascii_plot.plot ~x_label:"|latitude| threshold (deg)" ~y_label:"% above threshold"
      ~title
      (to_plot_series
         (List.map
            (fun (s : Stormsim.Distribution.threshold_series) -> (s.label, s.points))
            series))
  in
  let rows =
    List.map
      (fun (s : Stormsim.Distribution.threshold_series) ->
        (s.label, List.map snd s.points))
      series
  in
  let header = "series" :: List.map (fun t -> Printf.sprintf "%.0f" t)
                  (List.map fst (match series with
                     | (s : Stormsim.Distribution.threshold_series) :: _ -> s.points
                     | [] -> []))
  in
  plot ^ Table.render_floats ~header ~fmt:(Printf.sprintf "%.1f") rows

let fig4a ctx =
  threshold_figure
    ~title:"Figure 4a: long-distance cable endpoints above latitude thresholds"
    (Stormsim.Distribution.fig4a ~submarine:(submarine ctx) ~intertubes:(intertubes ctx))

let fig4b ctx =
  let routers = Datasets.Caida.router_latitudes (ases ctx) in
  threshold_figure ~title:"Figure 4b: other infrastructure above latitude thresholds"
    (Stormsim.Distribution.fig4b ~routers ~ixps:(ixps ctx) ~dns:(dns ctx))

let fig5 ctx =
  let series =
    Stormsim.Distribution.fig5 ~submarine:(submarine ctx) ~intertubes:(intertubes ctx)
      ~itu:(itu ctx)
  in
  let plot =
    Ascii_plot.plot ~log_x:true ~x_label:"length (km)" ~y_label:"CDF"
      ~title:"Figure 5: cable length CDFs"
      (to_plot_series
         (List.map (fun (s : Stormsim.Distribution.cdf_series) -> (s.label, s.points)) series))
  in
  let quants (s : Stormsim.Distribution.cdf_series) =
    let lengths = List.map fst s.points in
    Printf.sprintf "  %-22s median %7.0f km   p99 %8.0f km   max %8.0f km\n" s.label
      (Stormsim.Stats.median lengths)
      (Stormsim.Stats.percentile lengths ~p:99.0)
      (List.fold_left Float.max 0.0 lengths)
  in
  plot ^ String.concat "" (List.map quants series)

let sweep_figure ~title ~value points =
  let spacings = Infra.Repeater.paper_spacings_km in
  String.concat "\n"
    (List.map
       (fun spacing ->
         let networks =
           List.sort_uniq compare
             (List.map (fun (p : Stormsim.Resilience.sweep_point) -> p.network) points)
         in
         let series =
           List.map
             (fun net ->
               {
                 Ascii_plot.label = net;
                 points =
                   List.filter_map
                     (fun (p : Stormsim.Resilience.sweep_point) ->
                       if p.network = net && Float.abs (p.spacing_km -. spacing) < 1e-9
                       then Some (p.probability, value p.series)
                       else None)
                     points;
               })
             networks
         in
         let rows =
           List.concat_map
             (fun (p : Stormsim.Resilience.sweep_point) ->
               if Float.abs (p.spacing_km -. spacing) < 1e-9 then
                 [ [ p.network;
                     Printf.sprintf "%.3f" p.probability;
                     Printf.sprintf "%.1f" (value p.series);
                     Printf.sprintf "%.1f"
                       ((fun (s : Stormsim.Montecarlo.series) ->
                          if value p.series = s.cables_mean then s.cables_std else s.nodes_std)
                          p.series) ] ]
               else [])
             points
         in
         Ascii_plot.plot ~log_x:true ~x_label:"prob. of repeater failure"
           ~y_label:"%"
           ~title:(Printf.sprintf "%s - repeater distance %.0f km" title spacing)
           series
         ^ Table.render ~header:[ "network"; "p"; "mean%"; "std" ] rows)
       spacings)

let fig6 ?(trials = 10) ctx =
  let points = Stormsim.Resilience.fig6_7 ~trials ~networks:(networks ctx) () in
  sweep_figure ~title:"Figure 6: cables failed (%) under uniform repeater failure"
    ~value:(fun s -> s.Stormsim.Montecarlo.cables_mean)
    points

let fig7 ?(trials = 10) ctx =
  let points = Stormsim.Resilience.fig6_7 ~trials ~networks:(networks ctx) () in
  sweep_figure ~title:"Figure 7: nodes unreachable (%) under uniform repeater failure"
    ~value:(fun s -> s.Stormsim.Montecarlo.nodes_mean)
    points

let fig8 ?(trials = 10) ctx =
  let nets = [ ("Submarine", (submarine ctx)); ("Intertubes", (intertubes ctx)) ] in
  let points = Stormsim.Resilience.fig8 ~trials ~networks:nets () in
  let rows =
    List.map
      (fun (p : Stormsim.Resilience.tiered_point) ->
        [ p.state;
          Printf.sprintf "%.0f" p.spacing_km;
          p.network;
          Printf.sprintf "%.1f" p.series.Stormsim.Montecarlo.cables_mean;
          Printf.sprintf "%.1f" p.series.Stormsim.Montecarlo.cables_std;
          Printf.sprintf "%.1f" p.series.Stormsim.Montecarlo.nodes_mean;
          Printf.sprintf "%.1f" p.series.Stormsim.Montecarlo.nodes_std ])
      points
  in
  "Figure 8: failures under non-uniform (latitude-tiered) repeater failure\n"
  ^ "S1 = [1; 0.1; 0.01], S2 = [0.1; 0.01; 0.001] over tiers >60 / 40-60 / <40 deg\n"
  ^ Table.render
      ~header:[ "state"; "spacing"; "network"; "cables%"; "sd"; "nodes%"; "sd" ]
      rows

let fig9a ctx =
  let summary = Stormsim.Systems.analyze_ases (ases ctx) in
  Ascii_plot.plot ~x_label:"|latitude| threshold (deg)" ~y_label:"ASes with presence (%)"
    ~title:"Figure 9a: reach of ASes above latitude thresholds"
    [ { Ascii_plot.label = "ASes"; points = summary.Stormsim.Systems.reach_curve } ]
  ^ Printf.sprintf "  ASes with presence above |40 deg|: %.1f%%\n"
      summary.Stormsim.Systems.reach_above_40_pct

let fig9b ctx =
  let summary = Stormsim.Systems.analyze_ases (ases ctx) in
  (* Subsample the CDF for plotting. *)
  let cdf = summary.Stormsim.Systems.spread_cdf in
  let n = List.length cdf in
  let sampled = List.filteri (fun i _ -> i mod Int.max 1 (n / 200) = 0) cdf in
  Ascii_plot.plot ~x_label:"spread of ASes (degrees of latitude)" ~y_label:"CDF"
    ~title:"Figure 9b: CDF of AS latitude spread"
    [ { Ascii_plot.label = "ASes"; points = sampled } ]
  ^ Printf.sprintf "  median spread %.3f deg; p90 %.3f deg (1 deg ~ 111 km)\n"
      summary.Stormsim.Systems.median_spread_deg summary.Stormsim.Systems.p90_spread_deg

let countries ?(trials = 50) ctx =
  let findings = Stormsim.Country.run_all ~trials (submarine ctx) in
  let rows =
    List.map
      (fun (f : Stormsim.Country.finding) ->
        [ f.spec.Stormsim.Country.id;
          f.spec.Stormsim.Country.state_name;
          Printf.sprintf "%d" f.direct_cables;
          Printf.sprintf "%.2f" f.loss_probability;
          f.spec.Stormsim.Country.expectation ])
      findings
  in
  "Country-scale connectivity (4.3.4): probability the connectivity metric is LOST\n"
  ^ Table.render ~header:[ "case"; "state"; "cables"; "P(loss)"; "paper expectation" ] rows

let systems ctx =
  let asys = Stormsim.Systems.analyze_ases (ases ctx) in
  let dcs = Stormsim.Systems.analyze_datacenters () in
  let dns = Stormsim.Systems.analyze_dns (dns ctx) in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "Systems resilience (4.4)\n";
  Buffer.add_string buf
    (Printf.sprintf
       "ASes: %d total; %.1f%% reach above |40|; spread median %.2f deg, p90 %.2f deg\n"
       asys.Stormsim.Systems.total asys.Stormsim.Systems.reach_above_40_pct
       asys.Stormsim.Systems.median_spread_deg asys.Stormsim.Systems.p90_spread_deg);
  List.iter
    (fun (d : Stormsim.Systems.dc_summary) ->
      Buffer.add_string buf
        (Printf.sprintf
           "%-9s %2d sites, %d continents, spread %5.1f deg, %4.1f%% above |40|, score %.3f\n"
           (Datasets.Datacenters.operator_to_string d.Stormsim.Systems.operator)
           d.Stormsim.Systems.sites d.Stormsim.Systems.continents
           d.Stormsim.Systems.latitude_spread_deg d.Stormsim.Systems.share_above_40_pct
           d.Stormsim.Systems.resilience_score))
    dcs;
  Buffer.add_string buf
    (Printf.sprintf
       "DNS roots: %d instances / %d letters / %d continents, %.1f%% above |40|, score %.3f\n"
       dns.Stormsim.Systems.instances dns.Stormsim.Systems.letters
       dns.Stormsim.Systems.continents dns.Stormsim.Systems.share_above_40_pct
       dns.Stormsim.Systems.resilience_score);
  Buffer.contents buf

let probability () =
  let open Spaceweather in
  let rows =
    [ [ "Riley 2012 power-law, P(Carrington-class)/decade";
        Printf.sprintf "%.3f" Probability.riley_decadal ];
      [ "Kirchen 2020 estimate /decade"; Printf.sprintf "%.3f" Probability.kirchen_decadal ];
      [ "Bernoulli once-in-100y event /decade";
        Printf.sprintf "%.3f" Probability.bernoulli_decadal_of_centennial ];
      [ "Direct-impact large events /century (low)";
        Printf.sprintf "%.1f" (Probability.direct_impact_per_century ~low:true) ];
      [ "Direct-impact large events /century (high)";
        Printf.sprintf "%.1f" (Probability.direct_impact_per_century ~low:false) ];
      [ "Carrington transit time (model)";
        Printf.sprintf "%.1f h" (Cme.transit_hours Cme.carrington_1859) ];
      [ "Expected events 2021-2050 (base 1/31.5 per yr)";
        Printf.sprintf "%.2f"
          (Probability.expected_events ~base_rate_per_year:(1.0 /. 31.5) ~start:2021.0
             ~stop:2050.0) ] ]
  in
  "Occurrence probabilities (2.3)\n" ^ Table.render ~header:[ "quantity"; "value" ] rows

let mitigation ctx =
  let open Stormsim in
  let plan =
    Mitigation.shutdown_plan ~cme:Spaceweather.Cme.carrington_1859 ~network:(submarine ctx) ()
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "Mitigation planning (5)\n";
  Buffer.add_string buf
    (Printf.sprintf
       "Shutdown: lead %.1f h; expected cable failures %.1f%% powered vs %.1f%% off (benefit %.1f pts)\n"
       plan.Mitigation.actionable_lead_h plan.Mitigation.cables_failed_on_pct
       plan.Mitigation.cables_failed_off_pct plan.Mitigation.benefit_pct);
  let augs = Mitigation.plan_augmentation ~network:(submarine ctx) () in
  Buffer.add_string buf "Augmentation plan (greedy, S1 objective):\n";
  List.iter
    (fun (a : Mitigation.augmentation) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-16s -> %-16s %6.0f km  gain %.3f pairs\n"
           a.Mitigation.from_city a.Mitigation.to_city a.Mitigation.length_km
           a.Mitigation.gain))
    augs;
  let parts = Mitigation.predicted_partitions ~network:(submarine ctx) () in
  Buffer.add_string buf
    (Printf.sprintf "Predicted partitions under S1 (cables with <50%% survival removed): %d components; largest sizes %s\n"
       (List.length parts)
       (String.concat ", "
          (List.filteri (fun i _ -> i < 5) (List.map (fun c -> string_of_int (List.length c)) parts))));
  Buffer.contents buf

(* --- Extension experiments --- *)

let leo () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "LEO constellations under storms (3.3 extension; anchors: Feb 2022 Starlink, \
     Halloween 2003 drag)\n";
  let feb = Leo.Storm_impact.feb_2022_starlink () in
  Buffer.add_string buf (Format.asprintf "Feb 2022 replay: %a@." Leo.Storm_impact.pp feb);
  let car =
    Leo.Storm_impact.assess ~dst_nt:(-1200.0) Leo.Constellation.starlink_phase1
  in
  Buffer.add_string buf (Format.asprintf "Carrington: %a@." Leo.Storm_impact.pp car);
  Buffer.add_string buf
    (Printf.sprintf
       "drag enhancement at 550 km: 1989-class x%.1f, Carrington-class x%.0f\n"
       (Leo.Atmosphere.enhancement (Leo.Atmosphere.of_storm (-589.0)) ~alt_km:550.0)
       (Leo.Atmosphere.enhancement (Leo.Atmosphere.of_storm (-1200.0)) ~alt_km:550.0));
  Buffer.contents buf

let grid_coupling ?(trials = 10) ctx =
  let r =
    Stormsim.Powergrid.simulate ~trials ~network:(submarine ctx)
      ~model:Stormsim.Failure_model.s1 ~dst_nt:(-1200.0) ()
  in
  Printf.sprintf
    "Power-grid interdependence (5.5): Carrington + S1 on the submarine network\n\
     cables failed %.1f%%; landing stations dark: cables-only %.1f%%, grid-only %.1f%%, \
     either %.1f%% (amplification x%.2f)\n\
     grids down in most trials: %s\n"
    r.Stormsim.Powergrid.cables_failed_pct r.Stormsim.Powergrid.nodes_cable_dark_pct
    r.Stormsim.Powergrid.nodes_grid_dark_pct r.Stormsim.Powergrid.nodes_dark_pct
    r.Stormsim.Powergrid.amplification
    (String.concat ", " r.Stormsim.Powergrid.regions_down)

let aftermath ?(trials = 5) ctx =
  let buf = Buffer.create 512 in
  let tl, dead =
    Stormsim.Recovery.storm_recovery ~trials ~network:(submarine ctx)
      ~model:Stormsim.Failure_model.s1 ()
  in
  Buffer.add_string buf
    (Printf.sprintf
       "Aftermath of an S1 storm on the submarine network:\n\
        %.0f cables dead on average; repairs (60 ships): 50%% back in %.0f d, 90%% in \
        %.0f d, all in %.0f d (%.0f ship-days of work)\n"
       dead tl.Stormsim.Recovery.days_to_50_pct tl.Stormsim.Recovery.days_to_90_pct
       tl.Stormsim.Recovery.days_to_full tl.Stormsim.Recovery.total_ship_days);
  Buffer.add_string buf
    (Printf.sprintf "US economic impact at 30%% dark for the 90%%-repair window: $%.0f B\n"
       (Stormsim.Recovery.us_outage_cost_usd ~dark_fraction:0.3
          ~days:tl.Stormsim.Recovery.days_to_90_pct
       /. 1e9));
  let base, after =
    Stormsim.Traffic.storm_shift ~trials ~network:(submarine ctx)
      ~model:Stormsim.Failure_model.s2 ()
  in
  Buffer.add_string buf
    (Printf.sprintf
       "Traffic shifts under S2 (5.5): delivered %.0f%% -> %.0f%%; peak cable load %.1f \
        -> %.1f demand units\n"
       base.Stormsim.Traffic.delivered_pct after.Stormsim.Traffic.delivered_pct
       base.Stormsim.Traffic.max_cable_load after.Stormsim.Traffic.max_cable_load);
  Buffer.contents buf

let service_resilience ctx =
  let results = Stormsim.Resilience_test.run_suite ~network:(submarine ctx) () in
  let rows =
    List.map
      (fun (a : Stormsim.Resilience_test.availability) ->
        [ a.Stormsim.Resilience_test.service.Stormsim.Resilience_test.name;
          string_of_int
            (List.length a.Stormsim.Resilience_test.service.Stormsim.Resilience_test.replicas);
          Printf.sprintf "%.1f" a.Stormsim.Resilience_test.read_pct;
          Printf.sprintf "%.1f" a.Stormsim.Resilience_test.write_pct;
          Printf.sprintf "%.2f" a.Stormsim.Resilience_test.reachable_replicas_mean ])
      results
  in
  "Service resilience tests (5.4): availability under predicted S1 partitions\n"
  ^ Table.render ~header:[ "service"; "replicas"; "read%"; "write%"; "reach" ] rows

let ablations ?(trials = 10) ctx =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "Ablations\n";
  Buffer.add_string buf "1. Vulnerable-latitude threshold (S1 submarine cables failed %):\n";
  List.iter
    (fun (th, v) -> Buffer.add_string buf (Printf.sprintf "   mid=%2.0f deg  %.1f%%\n" th v))
    (Stormsim.Sensitivity.threshold_sweep ~trials ~network:(submarine ctx) ());
  Buffer.add_string buf "2. Geographic vs geomagnetic tiers (cables failed %):\n";
  List.iter
    (fun (state, geo, gm) ->
      Buffer.add_string buf (Printf.sprintf "   %s: %.1f%% -> %.1f%%\n" state geo gm))
    (Stormsim.Sensitivity.geographic_vs_geomagnetic ~trials ~network:(submarine ctx) ());
  Buffer.add_string buf "3. Repeater spacing sweep (uniform p=0.01):\n";
  List.iter
    (fun (s, v) -> Buffer.add_string buf (Printf.sprintf "   %3.0f km  %.1f%%\n" s v))
    (Stormsim.Sensitivity.spacing_sweep ~trials ~network:(submarine ctx)
       ~model:(Stormsim.Failure_model.uniform 0.01) ());
  Buffer.add_string buf "4. GIC damage scale (Carrington physical, expected cables failed %):\n";
  List.iter
    (fun (s, v) -> Buffer.add_string buf (Printf.sprintf "   %4.0f A  %.1f%%\n" s v))
    (Stormsim.Sensitivity.scale_a_sweep ~network:(submarine ctx) ~dst_nt:(-1200.0) ());
  Buffer.add_string buf
    "5. Whole-cable vs segment-level failure (S1; the paper's single-repeater-kills-cable assumption):\n";
  let seg =
    Stormsim.Segment_model.compare_models ~trials ~network:(submarine ctx)
      ~model:Stormsim.Failure_model.s1 ()
  in
  Buffer.add_string buf
    (Printf.sprintf
       "   nodes unreachable: %.1f%% (cable-level) vs %.1f%% (segment-level); hops failed %.1f%%\n"
       seg.Stormsim.Segment_model.cable_level_nodes_pct
       seg.Stormsim.Segment_model.segment_level_nodes_pct
       seg.Stormsim.Segment_model.segment_level_segments_pct);
  Buffer.contents buf

let risk_horizon () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "Decadal risk under the modulated Poisson model (2.3 extension):\n";
  List.iter
    (fun (a, b) ->
      let p =
        Spaceweather.Event_generator.carrington_in_window ~trials:300 ~seed:77 ~start:a
          ~stop:b ()
      in
      Buffer.add_string buf
        (Printf.sprintf "   %4.0f-%4.0f  P(Carrington-class impact) = %.2f\n" a b p))
    [ (2021.0, 2031.0); (2031.0, 2041.0); (2041.0, 2051.0); (2051.0, 2061.0) ];
  Buffer.add_string buf
    "   (long-run unmodulated decadal probability: 0.12; the coming decades sit on the\n\
    \    rising flank of the Gleissberg cycle)\n";
  Buffer.contents buf

let capacity ?(trials = 5) ctx =
  let rows model_name model =
    List.map
      (fun (r : Stormsim.Capacity.corridor_report) ->
        [ r.Stormsim.Capacity.corridor.Stormsim.Capacity.name;
          model_name;
          Printf.sprintf "%.0f" r.Stormsim.Capacity.healthy_tbps;
          Printf.sprintf "%.0f" r.Stormsim.Capacity.expected_tbps;
          Printf.sprintf "%.0f" r.Stormsim.Capacity.surviving_pct;
          String.concat "/"
            (List.filteri (fun i _ -> i < 3) r.Stormsim.Capacity.min_cut_cables) ])
      (Stormsim.Capacity.standard_report ~trials ~network:(submarine ctx) ~model ())
  in
  Printf.sprintf "Corridor capacity (max-flow, Tbps); installed total %.0f Tbps\n"
    (Stormsim.Capacity.network_capacity_tbps (submarine ctx))
  ^ Table.render
      ~header:[ "corridor"; "state"; "healthy"; "expected"; "surv%"; "min-cut (top 3)" ]
      (rows "S1" Stormsim.Failure_model.s1 @ rows "S2" Stormsim.Failure_model.s2)

let interdomain () =
  let t = Interdomain.As_topology.generate ~n:1500 () in
  let rows =
    List.map
      (fun (label, dst) ->
        let o = Interdomain.Storm.compare_protocols ~pairs:200 t ~dst_nt:dst in
        [ label;
          Printf.sprintf "%.1f" o.Interdomain.Storm.ases_down_pct;
          Printf.sprintf "%.1f" o.Interdomain.Storm.reachability_pct;
          Printf.sprintf "%.1f" o.Interdomain.Storm.bgp_continuity_pct;
          Printf.sprintf "%.1f" o.Interdomain.Storm.multipath_continuity_pct;
          Printf.sprintf "%.2f" o.Interdomain.Storm.mean_disjoint_paths ])
      [ ("intense (-300)", -300.0); ("extreme (-600)", -600.0);
        ("carrington (-1200)", -1200.0) ]
  in
  "Interdomain routing under AS failures (5.3): single-path BGP vs multipath\n\
   (1,500-AS Gao-Rexford topology; continuity = pre-storm path(s) survive)\n"
  ^ Table.render
      ~header:[ "storm"; "ASes down%"; "reachable%"; "BGP cont%"; "multipath%"; "paths" ]
      rows

let render_ns =
  Obs.Metrics.histogram "figures.render_ns"
    ~buckets:[| 1e6; 1e7; 1e8; 1e9; 1e10; 1e11 |]

(* Render one figure under a span named after its id, feeding the
   per-figure render-time histogram.  When observability is off this is
   the bare [f ()]. *)
let timed id f =
  if not (Obs.enabled ()) then (id, f ())
  else
    Obs.Span.with_ ~name:("figures." ^ id) (fun () ->
        let t0 = Obs.Span.now () in
        let text = f () in
        Obs.Metrics.observe render_ns (Int64.to_float (Int64.sub (Obs.Span.now ()) t0));
        (id, text))

let all ?(trials = 10) ctx =
  [
    timed "fig1" (fun () -> fig1 ctx);
    timed "fig2" (fun () -> fig2 ctx);
    timed "fig3" (fun () -> fig3 ctx);
    timed "fig4a" (fun () -> fig4a ctx);
    timed "fig4b" (fun () -> fig4b ctx);
    timed "fig5" (fun () -> fig5 ctx);
    timed "fig6" (fun () -> fig6 ~trials ctx);
    timed "fig7" (fun () -> fig7 ~trials ctx);
    timed "fig8" (fun () -> fig8 ~trials ctx);
    timed "fig9a" (fun () -> fig9a ctx);
    timed "fig9b" (fun () -> fig9b ctx);
    timed "countries" (fun () -> countries ~trials:(Int.max 20 trials) ctx);
    timed "systems" (fun () -> systems ctx);
    timed "probability" (fun () -> probability ());
    timed "mitigation" (fun () -> mitigation ctx);
    timed "leo" (fun () -> leo ());
    timed "grid-coupling" (fun () -> grid_coupling ~trials ctx);
    timed "aftermath" (fun () -> aftermath ~trials:(Int.min 5 trials) ctx);
    timed "service-resilience" (fun () -> service_resilience ctx);
    timed "ablations" (fun () -> ablations ~trials ctx);
    timed "risk-horizon" (fun () -> risk_horizon ());
    timed "interdomain" (fun () -> interdomain ());
    timed "capacity" (fun () -> capacity ~trials:(Int.min 5 trials) ctx);
  ]
