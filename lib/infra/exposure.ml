type t = {
  cable_id : int;
  peak_gic_a : float;
  stress_ratio : float;
  worst_section_km : float * float;
}

let path_of_cable ~network (c : Cable.t) =
  (* Sample each landing-to-landing hop so that the field integration sees
     intermediate latitudes, not just the endpoints. *)
  let coords = List.map (Network.node_coord network) c.Cable.landings in
  let rec expand = function
    | a :: (b :: _ as rest) ->
        let pts = Geo.Geodesic.sample_every_km a b ~step_km:250.0 in
        (* Drop b; the next hop re-adds it. *)
        List.filteri (fun i _ -> i < List.length pts - 1) pts @ expand rest
    | [ last ] -> [ last ]
    | [] -> []
  in
  expand coords

let exposure_evals = Obs.Metrics.counter "gic.exposure_evals"

let peak_gic_hist =
  Obs.Metrics.histogram "gic.peak_gic_a"
    ~buckets:[| 1.0; 3.0; 10.0; 30.0; 100.0; 300.0; 1000.0 |]

let of_cable ?interval_km ~storm ~network (c : Cable.t) =
  Obs.Metrics.incr exposure_evals;
  let path = path_of_cable ~network c in
  let grounds = Grounding.chainages ?interval_km ~length_km:c.Cable.length_km () in
  if grounds = [] then
    { cable_id = c.Cable.id; peak_gic_a = 0.0; stress_ratio = 0.0; worst_section_km = (0.0, 0.0) }
  else
    let result = Gic.Induced.compute ~storm ~path ~ground_chainages_km:grounds () in
    let worst =
      List.fold_left
        (fun ((_, _, g_best) as best) (s : Gic.Induced.section) ->
          if Float.abs s.Gic.Induced.gic_a > g_best then
            (s.Gic.Induced.start_km, s.Gic.Induced.end_km, Float.abs s.Gic.Induced.gic_a)
          else best)
        (0.0, 0.0, 0.0) result.Gic.Induced.sections
    in
    let a, b, _ = worst in
    Obs.Metrics.observe peak_gic_hist result.Gic.Induced.peak_gic_a;
    {
      cable_id = c.Cable.id;
      peak_gic_a = result.Gic.Induced.peak_gic_a;
      stress_ratio = result.Gic.Induced.peak_gic_a /. 1.0;
      worst_section_km = (a, b);
    }

let failure_probability ?(scale_a = 30.0) t =
  if scale_a <= 0.0 then invalid_arg "Exposure.failure_probability: scale <= 0";
  1.0 -. exp (-.t.peak_gic_a /. scale_a)

let network_exposures ?interval_km ~storm network =
  Obs.Span.with_ ~name:"gic.network_exposures" @@ fun () ->
  Array.init (Network.nb_cables network) (fun i ->
      of_cable ?interval_km ~storm ~network (Network.cable network i))
