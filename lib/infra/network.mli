(** A physical cable network: named nodes with coordinates plus cables.

    This is the object the Monte-Carlo failure simulator and the figure
    harness consume.  Conversion to a {!Netgraph.Graph.t} expands each
    cable's landing chain into consecutive edges that all carry the
    cable's identity, so killing a cable removes every edge it
    contributes. *)

type node = {
  id : int;
  name : string;
  country : string;
  pos : Geo.Coord.t;
}

type t = private {
  name : string;
  nodes : node array;  (** indexed by node id *)
  cables : Cable.t array;
}

val create : name:string -> nodes:node list -> cables:Cable.t list -> t
(** @raise Invalid_argument if node ids are not exactly [0 .. n-1], cable
    ids are not exactly [0 .. m-1], or a cable references an unknown
    node. *)

val node : t -> int -> node
val cable : t -> int -> Cable.t
val nb_nodes : t -> int
val nb_cables : t -> int

val node_coord : t -> int -> Geo.Coord.t

val cables_at : t -> int -> Cable.t list
(** Cables with a landing at the node. *)

val to_graph : t -> Netgraph.Graph.t * (int -> int)
(** The connectivity graph and the edge-id → cable-id mapping. *)

val graph_without_cables : t -> dead:bool array -> Netgraph.Graph.t
(** Connectivity graph restricted to cables whose [dead] flag is false.
    @raise Invalid_argument if [dead] length differs from [nb_cables]. *)

val graph_surviving : t -> dead:(int -> bool) -> Netgraph.Graph.t
(** {!graph_without_cables} with a predicate instead of a flag array:
    keeps cables for which [dead cable_id] is false.  Lets callers pass
    bitvector-backed dead-sets (or any other representation) without
    materializing a [bool array]. *)

val cable_lengths : t -> float list
(** All cable lengths, km (Fig. 5 input). *)

val longest_cable : t -> Cable.t
(** The cable with the greatest length.  @raise Invalid_argument on a
    network without cables. *)

val endpoint_latitudes : t -> (float * float) list
(** [(latitude, weight 1.)] for every node that has at least one cable
    landing — the "endpoints" of Figs 3–4. *)

val one_hop_endpoints : t -> threshold:float -> int list
(** Nodes at or below the |latitude| threshold that have a direct cable to
    a node above it (the "one-hop endpoints" of Fig. 4a). *)

val mean_repeaters_per_cable : t -> spacing_km:float -> float

val cables_without_repeaters : t -> spacing_km:float -> int

val pp_summary : Format.formatter -> t -> unit
