type node = { id : int; name : string; country : string; pos : Geo.Coord.t }

type t = { name : string; nodes : node array; cables : Cable.t array }

let create ~name ~nodes ~cables =
  let nodes = Array.of_list nodes in
  let cables = Array.of_list cables in
  Array.iteri
    (fun i n ->
      if n.id <> i then invalid_arg "Network.create: node ids must be 0..n-1 in order")
    nodes;
  Array.iteri
    (fun i (c : Cable.t) ->
      if c.Cable.id <> i then
        invalid_arg "Network.create: cable ids must be 0..m-1 in order";
      List.iter
        (fun l ->
          if l < 0 || l >= Array.length nodes then
            invalid_arg
              (Printf.sprintf "Network.create: cable %d lands at unknown node %d" i l))
        c.Cable.landings)
    cables;
  { name; nodes; cables }

let node t i = t.nodes.(i)
let cable t i = t.cables.(i)
let nb_nodes t = Array.length t.nodes
let nb_cables t = Array.length t.cables

let node_coord t i = t.nodes.(i).pos

let cables_at t n =
  Array.fold_right
    (fun (c : Cable.t) acc -> if List.mem n c.Cable.landings then c :: acc else acc)
    t.cables []

(* Edge ids: sequential as we expand cables; a side table maps them back. *)
let expand_edges t ~keep =
  let edge_cable = ref [] in
  let next_edge = ref 0 in
  let g = ref Netgraph.Graph.empty in
  Array.iteri (fun i n -> if n.id = i then g := Netgraph.Graph.add_node !g i) t.nodes;
  Array.iter
    (fun (c : Cable.t) ->
      if keep c then
        let rec hops = function
          | a :: (b :: _ as rest) ->
              g := Netgraph.Graph.add_edge !g ~id:!next_edge a b;
              edge_cable := (!next_edge, c.Cable.id) :: !edge_cable;
              incr next_edge;
              hops rest
          | [ _ ] | [] -> ()
        in
        hops c.Cable.landings)
    t.cables;
  let tbl = Hashtbl.create 256 in
  List.iter (fun (e, cid) -> Hashtbl.replace tbl e cid) !edge_cable;
  (!g, tbl)

let to_graph t =
  let g, tbl = expand_edges t ~keep:(fun _ -> true) in
  (g, fun e -> match Hashtbl.find_opt tbl e with Some c -> c | None -> -1)

let graph_without_cables t ~dead =
  if Array.length dead <> Array.length t.cables then
    invalid_arg "Network.graph_without_cables: dead array size mismatch";
  let g, _ = expand_edges t ~keep:(fun c -> not dead.(c.Cable.id)) in
  g

let graph_surviving t ~dead =
  let g, _ = expand_edges t ~keep:(fun c -> not (dead c.Cable.id)) in
  g

let cable_lengths t =
  Array.to_list (Array.map (fun (c : Cable.t) -> c.Cable.length_km) t.cables)

let longest_cable t =
  if Array.length t.cables = 0 then invalid_arg "Network.longest_cable: no cables";
  Array.fold_left
    (fun (best : Cable.t) (c : Cable.t) ->
      if c.Cable.length_km > best.Cable.length_km then c else best)
    t.cables.(0) t.cables

let endpoint_latitudes t =
  let has_cable = Array.make (Array.length t.nodes) false in
  Array.iter
    (fun (c : Cable.t) -> List.iter (fun l -> has_cable.(l) <- true) c.Cable.landings)
    t.cables;
  Array.to_list t.nodes
  |> List.filter_map (fun n ->
         if has_cable.(n.id) then Some (Geo.Coord.lat n.pos, 1.0) else None)

let one_hop_endpoints t ~threshold =
  let above n = Geo.Coord.abs_lat t.nodes.(n).pos > threshold in
  let flagged = Hashtbl.create 64 in
  Array.iter
    (fun (c : Cable.t) ->
      let landings = c.Cable.landings in
      if List.exists above landings then
        List.iter (fun n -> if not (above n) then Hashtbl.replace flagged n ()) landings)
    t.cables;
  Hashtbl.fold (fun n () acc -> n :: acc) flagged [] |> List.sort Int.compare

let mean_repeaters_per_cable t ~spacing_km =
  let m = Array.length t.cables in
  if m = 0 then 0.0
  else
    let total =
      Array.fold_left
        (fun acc c -> acc + Cable.repeater_count c ~spacing_km)
        0 t.cables
    in
    float_of_int total /. float_of_int m

let cables_without_repeaters t ~spacing_km =
  Array.fold_left
    (fun acc c -> if Cable.needs_repeaters c ~spacing_km then acc else acc + 1)
    0 t.cables

let pp_summary ppf t =
  let lengths = cable_lengths t in
  let total_len = List.fold_left ( +. ) 0.0 lengths in
  Format.fprintf ppf "%s: %d nodes, %d cables, %.0f km total"
    t.name (nb_nodes t) (nb_cables t) total_len
