(* Hash table + intrusive doubly-linked recency list.  [head] is the
   most recently used node, [tail] the eviction candidate. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  cap : int;
  table : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Lru.create: negative capacity";
  { cap = capacity; table = Hashtbl.create (max 16 capacity); head = None; tail = None }

let capacity t = t.cap
let length t = Hashtbl.length t.table

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some n ->
      unlink t n;
      push_front t n;
      Some n.value

let add t key value =
  if t.cap = 0 then None
  else begin
    (match Hashtbl.find_opt t.table key with
    | Some n ->
        n.value <- value;
        unlink t n;
        push_front t n
    | None ->
        let n = { key; value; prev = None; next = None } in
        Hashtbl.replace t.table key n;
        push_front t n);
    if Hashtbl.length t.table > t.cap then (
      match t.tail with
      | None -> None
      | Some lru ->
          unlink t lru;
          Hashtbl.remove t.table lru.key;
          Some (lru.key, lru.value))
    else None
  end

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

let keys_newest_first t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.key :: acc) n.next
  in
  go [] t.head

(* Lock-striped sharding: each shard is an independent (mutex, plain
   LRU) pair and a key always hashes to the same shard, so two domains
   only contend when they touch keys of the same stripe.  Recency (and
   therefore eviction) is per shard — with the canonical-request keys
   well spread by [Hashtbl.hash] this approximates global LRU while
   keeping the critical section one stripe wide. *)
module Sharded = struct
  type 'a shard = { mu : Mutex.t; lru : 'a t }
  type nonrec 'a t = { shards : 'a shard array; total : int }

  let default_shards = 8

  let create ?(shards = default_shards) ~capacity () =
    if capacity < 0 then invalid_arg "Lru.Sharded.create: negative capacity";
    if shards <= 0 then invalid_arg "Lru.Sharded.create: shards <= 0";
    (* Never more shards than entries (an empty stripe is pure waste),
       and per-shard caps that sum exactly to [capacity] so the global
       bound stays exact: the first [capacity mod n] stripes take the
       remainder. *)
    let n = Int.min shards (Int.max 1 capacity) in
    let per i = (capacity / n) + if i < capacity mod n then 1 else 0 in
    {
      shards =
        Array.init n (fun i ->
            { mu = Mutex.create (); lru = create ~capacity:(per i) });
      total = capacity;
    }

  let capacity t = t.total
  let shard_count t = Array.length t.shards

  let locked s f =
    Mutex.lock s.mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock s.mu) (fun () -> f s.lru)

  let shard_of t key = t.shards.(Hashtbl.hash key mod Array.length t.shards)
  let find t key = locked (shard_of t key) (fun l -> find l key)
  let add t key value = locked (shard_of t key) (fun l -> add l key value)
  let length t = Array.fold_left (fun acc s -> acc + locked s length) 0 t.shards
  let clear t = Array.iter (fun s -> locked s clear) t.shards

  let keys_newest_first t =
    List.concat_map
      (fun s -> locked s keys_newest_first)
      (Array.to_list t.shards)
end
