(* Hash table + intrusive doubly-linked recency list.  [head] is the
   most recently used node, [tail] the eviction candidate. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  cap : int;
  table : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Lru.create: negative capacity";
  { cap = capacity; table = Hashtbl.create (max 16 capacity); head = None; tail = None }

let capacity t = t.cap
let length t = Hashtbl.length t.table

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some n ->
      unlink t n;
      push_front t n;
      Some n.value

let add t key value =
  if t.cap = 0 then None
  else begin
    (match Hashtbl.find_opt t.table key with
    | Some n ->
        n.value <- value;
        unlink t n;
        push_front t n
    | None ->
        let n = { key; value; prev = None; next = None } in
        Hashtbl.replace t.table key n;
        push_front t n);
    if Hashtbl.length t.table > t.cap then (
      match t.tail with
      | None -> None
      | Some lru ->
          unlink t lru;
          Hashtbl.remove t.table lru.key;
          Some (lru.key, lru.value))
    else None
  end

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

let keys_newest_first t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.key :: acc) n.next
  in
  go [] t.head
