(** The dependency-free simulation service behind [solarstorm serve]:
    a hardened HTTP/1.1 layer ({!Http}), method × path routing
    ({!Router}), the endpoint handlers ({!Handlers}), a lock-striped
    canonical-key LRU result cache plus the shared compute/encode path
    ({!Api}, {!Lru}), the bounded MPSC channel ({!Chan}) feeding an
    acceptor + worker-domain-pool socket loop with backpressure and
    graceful drain ({!Service}), the pipelined loopback load generator
    ({!Loadgen}), and the windowed self-monitoring surface: the global
    sampler state ({!Monitor}), the /dashboard renderer ({!Dashboard})
    and the live terminal view ({!Top}).

    Design notes in DESIGN.md §8; quickstart in README "Serving". *)

module Http = Http
module Lru = Lru
module Chan = Chan
module Api = Api
module Router = Router
module Handlers = Handlers
module Service = Service
module Loadgen = Loadgen
module Monitor = Monitor
module Dashboard = Dashboard
module Top = Top
