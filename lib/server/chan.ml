(* Mutex + condition over a Queue: the service moves a handful of jobs
   per request, so a lock-free design would buy nothing — the interesting
   property is the bound, which is what turns overload into an immediate
   503 instead of an unbounded backlog. *)

type 'a t = {
  mu : Mutex.t;
  nonempty : Condition.t;
  q : 'a Queue.t;
  cap : int; (* 0 = unbounded *)
}

let create ?(capacity = 0) () =
  if capacity < 0 then invalid_arg "Chan.create: negative capacity";
  { mu = Mutex.create (); nonempty = Condition.create (); q = Queue.create (); cap = capacity }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let try_push t v =
  locked t @@ fun () ->
  if t.cap > 0 && Queue.length t.q >= t.cap then false
  else begin
    Queue.push v t.q;
    Condition.signal t.nonempty;
    true
  end

let push t v =
  locked t @@ fun () ->
  Queue.push v t.q;
  Condition.signal t.nonempty

let pop t =
  locked t @@ fun () ->
  while Queue.is_empty t.q do
    Condition.wait t.nonempty t.mu
  done;
  Queue.pop t.q

let try_pop t = locked t @@ fun () -> Queue.take_opt t.q
let length t = locked t @@ fun () -> Queue.length t.q
