(* Process-global self-monitoring state: one {!Obs.Timeseries} ring and
   one {!Obs.Alerts} engine shared by the sampler domain, the /varz,
   /alertz and /dashboard handlers, and one-shot CLI consumers.

   Global for the same reason the metrics registry is global: handlers
   are plain [request -> response] functions with no channel back to the
   [Service.run] invocation that owns them.  [configure] replaces the
   whole state atomically (handlers grab the record once per request),
   and [Service.run] reconfigures at startup, so tests that boot
   multiple loopback servers in sequence each get a fresh ring. *)

type t = {
  ts : Obs.Timeseries.t;
  alerts : Obs.Alerts.t;
  step_s : float;
}

let make ?clock ?(step_s = 1.0) ?(retention = 600) ?(rules = []) () =
  let step_s = if step_s > 0.0 then step_s else 1.0 in
  let ts =
    Obs.Timeseries.create ?clock
      ~step_ns:(Int64.of_float (step_s *. 1e9))
      ~retention ()
  in
  { ts; alerts = Obs.Alerts.create rules; step_s }

let state = Atomic.make (lazy (make ()))

let configure ?clock ?step_s ?retention ?rules () =
  let m = make ?clock ?step_s ?retention ?rules () in
  Atomic.set state (lazy m);
  m

let current () = Lazy.force (Atomic.get state)

(* One sampler tick: freeze a snapshot, then judge every rule against
   the updated ring.  Also the one-shot path for CLI consumers that have
   no background sampler. *)
let sample_now () =
  let m = current () in
  Obs.Timeseries.sample m.ts;
  Obs.Alerts.evaluate m.alerts m.ts

let timeseries () = (current ()).ts
let alerts () = (current ()).alerts
let step_s () = (current ()).step_s
