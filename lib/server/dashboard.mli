(** Pure renderer behind [GET /dashboard]: windowed series to a
    self-refreshing HTML page with inline SVG sparklines.  Zero
    client-side dependencies — polling is a [<meta refresh>], charts are
    [<svg><polyline>]. *)

val spark_svg : ?w:int -> ?h:int -> float list -> string
(** Inline SVG sparkline of the values, min–max scaled; a flat or
    single-point series renders as a midline, an empty one as an empty
    [<svg>]. *)

type row = {
  row_name : string;
  row_kind : string;
  row_value : string;  (** latest reading, pre-formatted *)
  row_series : float list;
}

type alert_row = { al_rule : string; al_state : string; al_value : string }

val render :
  window_s:float ->
  step_s:float ->
  samples:int ->
  rows:row list ->
  alerts:alert_row list ->
  string
(** The full page.  All caller-supplied strings are HTML-escaped. *)
