(* Single-worker readiness loop.  Every iteration:

     1. select() over the listen socket plus every pending connection
        (zero timeout when some connection still buffers pipelined
        bytes — that work needs no socket readiness);
     2. accept everything waiting, 503-ing the overflow past
        [max_pending];
     3. serve ONE request per ready connection, in connection order —
        round-robin fairness so a pipelining client cannot starve the
        rest;
     4. close connections that are done (peer EOF, Connection: close,
        protocol error, write failure) or idle past [idle_timeout_s].

   The loop re-checks the stop flag each tick, so SIGINT/SIGTERM latency
   is bounded by [idle_poll_s] plus the request in flight. *)

type config = {
  host : string;
  port : int;
  max_pending : int;
  max_head : int;
  max_body : int;
  read_timeout_s : float;
  idle_timeout_s : float;
  idle_poll_s : float;
  drain_grace_s : float;
  log : string -> unit;
  trace_seed : int option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 8080;
    max_pending = 64;
    max_head = Http.default_limits.Http.max_head;
    max_body = Http.default_limits.Http.max_body;
    read_timeout_s = 5.0;
    idle_timeout_s = 30.0;
    idle_poll_s = 0.25;
    drain_grace_s = 2.0;
    log = (fun s -> print_string s; flush stdout);
    trace_seed = None;
  }

(* Per-request trace ids: one SplitMix64 stream, rendered as 16 hex
   chars.  With [trace_seed] set the n-th request of every run gets the
   same id (reproducible tests and CI gates); otherwise the stream is
   seeded from wall clock ⊕ pid at [run] time.  A plain ref: ids are
   only drawn from the single worker loop. *)
let trace_state = ref 0L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let seed_traces = function
  | Some seed -> trace_state := mix64 (Int64.of_int seed)
  | None ->
      trace_state :=
        mix64
          (Int64.logxor
             (Int64.of_float (Unix.gettimeofday () *. 1e6))
             (Int64.of_int (Unix.getpid ())))

let next_trace_id () =
  trace_state := Int64.add !trace_state 0x9e3779b97f4a7c15L;
  Printf.sprintf "%016Lx" (mix64 !trace_state)

let m_requests = Obs.Metrics.counter "server.requests"
let m_accepted = Obs.Metrics.counter "server.conns.accepted"
let m_busy = Obs.Metrics.counter "server.rejected.busy"
let m_2xx = Obs.Metrics.counter "server.resp.2xx"
let m_4xx = Obs.Metrics.counter "server.resp.4xx"
let m_5xx = Obs.Metrics.counter "server.resp.5xx"
let g_pending = Obs.Metrics.gauge "server.pending"

let h_request_ms =
  Obs.Metrics.histogram "server.request.ms"
    ~buckets:[| 1.0; 5.0; 25.0; 100.0; 500.0; 2000.0; 10000.0 |]

let count_status status =
  Obs.Metrics.incr
    (if status >= 500 then m_5xx else if status >= 400 then m_4xx else m_2xx)

let stop_flag = Atomic.make false
let stop () = Atomic.set stop_flag true

let install_signal_handlers () =
  let h = Sys.Signal_handle (fun _ -> stop ()) in
  Sys.set_signal Sys.sigint h;
  Sys.set_signal Sys.sigterm h

type client = { fd : Unix.file_descr; conn : Http.conn; mutable last_active : float }

let rec write_all fd s off len =
  if len > 0 then begin
    match Unix.write_substring fd s off len with
    | n -> write_all fd s (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off len
  end

let send_response fd ~close resp =
  count_status resp.Http.status;
  let bytes = Http.to_string ~close resp in
  match write_all fd bytes 0 (String.length bytes) with
  | () -> true
  | exception Unix.Unix_error (_, _, _) -> false

let close_client c = try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ()

let meth_string = function Http.GET -> "GET" | Http.POST -> "POST" | Http.Other s -> s

(* One access-log line per request ({!Obs.Log} is a no-op unless the
   serve CLI enabled it with [--log]).  Emitted inside the request's
   trace context, so the line carries the same id as the [X-Trace-Id]
   header and the request's spans. *)
let access_log ~meth ~path ~status ~bytes ~dur_ms ~cache =
  Obs.Log.info "http.access"
    [
      ("method", Obs.Json.String meth);
      ("path", Obs.Json.String path);
      ("status", Obs.Json.Number (float_of_int status));
      ("bytes", Obs.Json.Number (float_of_int bytes));
      ("dur_ms", Obs.Json.Number dur_ms);
      ( "cache",
        Obs.Json.String
          (match cache with Some `Hit -> "hit" | Some `Miss -> "miss" | None -> "-") );
    ]

(* Serve one request off a ready connection.  [force_close] is the drain
   path: whatever happens, the peer is told the connection is done. *)
let serve_one ~routes ~limits ~force_close c =
  match Http.parse_request ~limits c.conn with
  | Error Http.Eof -> `Close
  | Error e ->
      let resp = Http.error_response e in
      access_log ~meth:"-" ~path:"-" ~status:resp.Http.status
        ~bytes:(String.length resp.Http.body) ~dur_ms:0.0 ~cache:None;
      ignore (send_response c.fd ~close:true resp);
      `Close
  | Ok req ->
      Obs.Metrics.incr m_requests;
      let trace = next_trace_id () in
      Obs.Span.with_trace trace @@ fun () ->
      Obs.Span.with_ ~name:"server.request" @@ fun () ->
      let t0 = Obs.Span.now () in
      let resp = Router.dispatch ~routes req in
      let dur_ms = Int64.to_float (Int64.sub (Obs.Span.now ()) t0) /. 1e6 in
      Obs.Metrics.observe h_request_ms dur_ms;
      (* Echo the id so a slow response can be chased into the trace
         ([--profile]) and the access log without any server-side
         lookup. *)
      let resp =
        { resp with Http.extra_headers = ("X-Trace-Id", trace) :: resp.Http.extra_headers }
      in
      access_log ~meth:(meth_string req.Http.meth) ~path:(Http.path req)
        ~status:resp.Http.status ~bytes:(String.length resp.Http.body) ~dur_ms
        ~cache:(Api.take_cache_outcome ());
      let close = force_close || Http.wants_close req in
      c.last_active <- Unix.gettimeofday ();
      if send_response c.fd ~close resp && not close then `Keep else `Close

let busy_response =
  Http.response ~status:503 (Http.error_body "server busy: pending queue full")

(* Accept everything the listen socket has ready; the caller made it
   non-blocking, so the burst ends at EWOULDBLOCK. *)
let rec accept_burst cfg lsock clients =
  match Unix.accept ~cloexec:true lsock with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      clients
  | fd, _addr ->
      if List.length clients >= cfg.max_pending then begin
        Obs.Metrics.incr m_busy;
        ignore (send_response fd ~close:true busy_response);
        (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
        accept_burst cfg lsock clients
      end
      else begin
        Obs.Metrics.incr m_accepted;
        let c =
          {
            fd;
            conn = Http.conn_of_fd ~timeout_s:cfg.read_timeout_s fd;
            last_active = Unix.gettimeofday ();
          }
        in
        accept_burst cfg lsock (clients @ [ c ])
      end

let select_readable fds timeout =
  match Unix.select fds [] [] timeout with
  | ready, _, _ -> ready
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> []

(* Serve whatever is already readable, then close everything.  A client
   mid-request gets its response; idle keep-alive connections just get
   closed. *)
let drain cfg routes limits clients =
  let deadline = Unix.gettimeofday () +. cfg.drain_grace_s in
  let rec go clients =
    if clients = [] then []
    else
      let now = Unix.gettimeofday () in
      if now >= deadline then clients
      else begin
        let buffered, rest = List.partition (fun c -> Http.buffered c.conn) clients in
        let ready_fds =
          match rest with
          | [] -> []
          | _ ->
              select_readable
                (List.map (fun c -> c.fd) rest)
                (if buffered <> [] then 0.0 else Float.min 0.05 (deadline -. now))
        in
        let ready, waiting =
          List.partition
            (fun c -> Http.buffered c.conn || List.mem c.fd ready_fds)
            clients
        in
        if ready = [] then go waiting
        else begin
          List.iter
            (fun c ->
              (match serve_one ~routes ~limits ~force_close:true c with
              | `Keep | `Close -> ());
              close_client c)
            ready;
          go waiting
        end
      end
  in
  let leftover = go clients in
  List.iter close_client leftover

let run ?on_ready cfg =
  Atomic.set stop_flag false;
  seed_traces cfg.trace_seed;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let limits = { Http.max_head = cfg.max_head; Http.max_body = cfg.max_body } in
  let routes = Handlers.routes () in
  let lsock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close lsock with Unix.Unix_error (_, _, _) -> ())
    (fun () ->
      Unix.setsockopt lsock Unix.SO_REUSEADDR true;
      Unix.bind lsock (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
      Unix.listen lsock 64;
      Unix.set_nonblock lsock;
      let port =
        match Unix.getsockname lsock with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> cfg.port
      in
      Option.iter (fun f -> f ~port) on_ready;
      cfg.log (Printf.sprintf "solarstorm serve: listening on http://%s:%d\n" cfg.host port);
      let clients = ref [] in
      while not (Atomic.get stop_flag) do
        Obs.Metrics.set g_pending (float_of_int (List.length !clients));
        let any_buffered = List.exists (fun c -> Http.buffered c.conn) !clients in
        let ready_fds =
          select_readable
            (lsock :: List.map (fun c -> c.fd) !clients)
            (if any_buffered then 0.0 else cfg.idle_poll_s)
        in
        if List.mem lsock ready_fds then clients := accept_burst cfg lsock !clients;
        let now = Unix.gettimeofday () in
        clients :=
          List.filter_map
            (fun c ->
              if Http.buffered c.conn || List.mem c.fd ready_fds then
                match serve_one ~routes ~limits ~force_close:false c with
                | `Keep -> Some c
                | `Close ->
                    close_client c;
                    None
              else if now -. c.last_active > cfg.idle_timeout_s then begin
                close_client c;
                None
              end
              else Some c)
            !clients
      done;
      cfg.log "solarstorm serve: draining\n";
      drain cfg routes limits !clients;
      clients := [];
      cfg.log "solarstorm serve: stopped\n")
